(* Tests for the floor serving subsystem: the domain pool, flow
   persistence (byte-stable round trips), the device CSV, and the
   batched serving engine's verdict parity with the in-memory flow. *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Tester = Stc.Tester
module Adaptive_guard = Stc.Adaptive_guard
module Pool = Stc_process.Pool
module Flow_io = Stc_floor.Flow_io
module Device_csv = Stc_floor.Device_csv
module Floor = Stc_floor.Floor
module Rng = Stc_numerics.Rng

(* spec names deliberately contain spaces (like the op-amp's) to cover
   field encoding *)
let specs =
  [|
    Spec.make ~name:"dc gain" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"slew rate" ~unit_label:"V/us" ~nominal:1.0 ~lower:0.5
      ~upper:1.5;
    Spec.make ~name:"sum spec" ~unit_label:"V" ~nominal:2.0 ~lower:1.2
      ~upper:2.8;
    Spec.make ~name:"noise" ~unit_label:"" ~nominal:0.0 ~lower:(-1.0) ~upper:1.0;
  |]

let population seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let noise = Rng.gaussian rng ~mean:0.0 ~sigma:0.6 in
      [| a; b; a +. b; noise |])

let data seed n = Device_data.make ~specs ~values:(population seed n)

let config =
  {
    Compaction.default_config with
    Compaction.tolerance = 0.02;
    guard_fraction = 0.02;
  }

let trained_flow = lazy (Compaction.make_flow config (data 1 400) ~dropped:[| 2 |])

let check_verdict =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Guard_band.verdict_to_string v))
    Guard_band.equal_verdict

(* ------------------------------- pool ----------------------------- *)

let pool_tests =
  [
    Alcotest.test_case "every task runs exactly once" `Quick (fun () ->
        List.iter
          (fun domains ->
            Pool.with_pool ~domains (fun pool ->
                let hits = Array.make 101 0 in
                Pool.run pool ~n:101 (fun i -> hits.(i) <- hits.(i) + 1);
                Alcotest.(check bool) "all once" true
                  (Array.for_all (fun h -> h = 1) hits)))
          [ 1; 4 ]);
    Alcotest.test_case "pool is reusable across jobs" `Quick (fun () ->
        Pool.with_pool ~domains:3 (fun pool ->
            let total = Atomic.make 0 in
            for _ = 1 to 5 do
              Pool.run pool ~n:40 (fun i ->
                  ignore (Atomic.fetch_and_add total (i + 1)))
            done;
            Alcotest.(check int) "5 * sum(1..40)" (5 * 820) (Atomic.get total)));
    Alcotest.test_case "zero tasks is a no-op" `Quick (fun () ->
        Pool.with_pool ~domains:2 (fun pool -> Pool.run pool ~n:0 ignore));
    Alcotest.test_case "task exception reaches the submitter" `Quick (fun () ->
        Pool.with_pool ~domains:2 (fun pool ->
            match Pool.run pool ~n:10 (fun i -> if i = 7 then failwith "boom") with
            | exception Failure _ -> ()
            | () -> Alcotest.fail "expected the task failure to propagate"));
    Alcotest.test_case "bad domain counts rejected" `Quick (fun () ->
        (match Pool.create ~domains:0 with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

(* ------------------------- flow persistence ----------------------- *)

let roundtrip flow =
  match Flow_io.to_string flow with
  | Error e -> Alcotest.fail e
  | Ok text ->
    (match Flow_io.of_string text with
     | Error e -> Alcotest.fail e
     | Ok reloaded -> (text, reloaded))

let flow_io_tests =
  [
    Alcotest.test_case "guard-band flow round-trips byte-stably" `Quick
      (fun () ->
        let flow = Lazy.force trained_flow in
        let text, reloaded = roundtrip flow in
        Alcotest.(check string) "serialize(load(s)) = s" text
          (match Flow_io.to_string reloaded with
           | Ok t -> t
           | Error e -> Alcotest.fail e));
    Alcotest.test_case "reloaded flow reproduces verdicts exactly" `Quick
      (fun () ->
        let flow = Lazy.force trained_flow in
        let _, reloaded = roundtrip flow in
        Array.iter
          (fun row ->
            Alcotest.check check_verdict "same verdict"
              (Compaction.flow_verdict flow row)
              (Compaction.flow_verdict reloaded row))
          (population 2 300));
    Alcotest.test_case "spec definitions survive the trip" `Quick (fun () ->
        let flow = Lazy.force trained_flow in
        let _, reloaded = roundtrip flow in
        Array.iter2
          (fun (a : Spec.t) (b : Spec.t) ->
            Alcotest.(check string) "name" a.Spec.name b.Spec.name;
            Alcotest.(check string) "unit" a.Spec.unit_label b.Spec.unit_label;
            Alcotest.(check (float 0.0)) "lower" a.Spec.range.Spec.lower
              b.Spec.range.Spec.lower;
            Alcotest.(check (float 0.0)) "upper" a.Spec.range.Spec.upper
              b.Spec.range.Spec.upper)
          flow.Compaction.specs reloaded.Compaction.specs);
    Alcotest.test_case "single-model band round-trips" `Quick (fun () ->
        let no_guard = { config with Compaction.guard_fraction = 0.0 } in
        let flow = Compaction.make_flow no_guard (data 3 300) ~dropped:[| 2 |] in
        let text, reloaded = roundtrip flow in
        Alcotest.(check bool) "single preserved" true
          (match reloaded.Compaction.band with
           | Some band -> Guard_band.is_single band
           | None -> false);
        Alcotest.(check string) "byte-stable" text
          (Result.get_ok (Flow_io.to_string reloaded)));
    Alcotest.test_case "identity flow (no band) round-trips" `Quick (fun () ->
        let flow = Compaction.identity_flow specs in
        let text, reloaded = roundtrip flow in
        Alcotest.(check bool) "no band" true (reloaded.Compaction.band = None);
        Alcotest.(check string) "byte-stable" text
          (Result.get_ok (Flow_io.to_string reloaded)));
    Alcotest.test_case "opaque bands are refused" `Quick (fun () ->
        let adaptive = Adaptive_guard.train (data 4 300) ~dropped:[| 2 |] in
        (match Flow_io.to_string (Adaptive_guard.flow adaptive) with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected an error for a closure band"));
    Alcotest.test_case "garbage and truncation rejected" `Quick (fun () ->
        (match Flow_io.of_string "not a flow\n" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected a header error");
        let flow = Lazy.force trained_flow in
        let text, _ = roundtrip flow in
        let truncated = String.sub text 0 (String.length text / 2) in
        (match Flow_io.of_string truncated with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected a truncation error"));
    Alcotest.test_case "constant-band flow round-trips" `Quick (fun () ->
        let flow = Lazy.force trained_flow in
        let constant =
          {
            flow with
            Compaction.band =
              Some
                (Guard_band.of_models
                   ~tight:(Guard_band.constant (-1))
                   ~loose:(Guard_band.constant 1));
          }
        in
        let text, reloaded = roundtrip constant in
        Alcotest.(check string) "byte-stable" text
          (Result.get_ok (Flow_io.to_string reloaded));
        Alcotest.check check_verdict "constant disagreement guards"
          Guard_band.Guard
          (Compaction.flow_verdict reloaded [| 1.0; 1.0; 2.0; 0.0 |]));
  ]

(* ------------------------------ CSV ------------------------------- *)

let csv_tests =
  [
    Alcotest.test_case "device rows round-trip bit-identically" `Quick
      (fun () ->
        let rows = population 5 50 in
        let path = Filename.temp_file "stc_csv" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Device_csv.write ~path ~specs ~rows;
            match Device_csv.read ~path with
            | Error e -> Alcotest.fail e
            | Ok (names, rows') ->
              Alcotest.(check int) "columns" 4 (Array.length names);
              Alcotest.(check string) "header name" "slew rate" names.(1);
              Alcotest.(check int) "rows" 50 (Array.length rows');
              Array.iteri
                (fun i row ->
                  Array.iteri
                    (fun j v ->
                      Alcotest.(check (float 0.0)) "cell" v rows'.(i).(j))
                    row)
                rows));
    Alcotest.test_case "ragged CSV rejected" `Quick (fun () ->
        let path = Filename.temp_file "stc_csv" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "a,b\n1.0,2.0\n3.0\n";
            close_out oc;
            match Device_csv.read ~path with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "expected a column-count error"));
  ]

(* ---------------------------- engine ------------------------------ *)

let engine_tests =
  [
    Alcotest.test_case "verdicts independent of batch size and domains" `Quick
      (fun () ->
        let flow = Lazy.force trained_flow in
        let stream = population 6 500 in
        let expected = Array.map (Compaction.flow_verdict flow) stream in
        List.iter
          (fun (batch_size, domains) ->
            Floor.with_engine ~config:{ Floor.batch_size; domains } flow
              (fun engine ->
                let outcomes = Floor.process engine stream in
                Array.iteri
                  (fun i o ->
                    Alcotest.check check_verdict
                      (Printf.sprintf "row %d (batch %d, domains %d)" i
                         batch_size domains)
                      expected.(i) o.Floor.verdict)
                  outcomes))
          [ (1, 1); (7, 1); (64, 3); (500, 4); (512, 2) ]);
    Alcotest.test_case "guard parts queue as Retest without a callback" `Quick
      (fun () ->
        let flow = Lazy.force trained_flow in
        let stream = population 6 500 in
        Floor.with_engine flow (fun engine ->
            let outcomes = Floor.process engine stream in
            Array.iter
              (fun o ->
                match (o.Floor.verdict, o.Floor.bin) with
                | Guard_band.Guard, Tester.Retest -> ()
                | Guard_band.Guard, _ -> Alcotest.fail "guard not queued"
                | Guard_band.Good, Tester.Ship -> ()
                | Guard_band.Bad, Tester.Scrap -> ()
                | (Guard_band.Good | Guard_band.Bad), _ ->
                  Alcotest.fail "confident part misbinned")
              outcomes));
    Alcotest.test_case "retest callback matches the simulated tester" `Quick
      (fun () ->
        let flow = Lazy.force trained_flow in
        let test = data 6 500 in
        let full_test row = Array.for_all2 Spec.passes specs row in
        let _, expected = Tester.run ~resolve_guard:true flow test in
        Floor.with_engine ~config:{ Floor.batch_size = 64; domains = 2 } flow
          (fun engine ->
            let (_ : Floor.outcome array) =
              Floor.process ~retest:full_test engine (Device_data.values test)
            in
            let s = Floor.stats engine in
            Alcotest.(check int) "shipped" expected.Tester.shipped s.Floor.shipped;
            Alcotest.(check int) "scrapped" expected.Tester.scrapped
              s.Floor.scrapped;
            Alcotest.(check int) "retested" expected.Tester.retested
              s.Floor.retested));
    Alcotest.test_case "stats accumulate across process calls" `Quick (fun () ->
        let flow = Lazy.force trained_flow in
        let stream = population 7 130 in
        Floor.with_engine ~config:{ Floor.batch_size = 32; domains = 1 } flow
          (fun engine ->
            let (_ : Floor.outcome array) = Floor.process engine stream in
            let (_ : Floor.outcome array) = Floor.process engine stream in
            let s = Floor.stats engine in
            Alcotest.(check int) "devices" 260 s.Floor.devices;
            Alcotest.(check int) "batches" 10 s.Floor.batches;
            Alcotest.(check int) "bins partition" s.Floor.devices
              (s.Floor.shipped + s.Floor.scrapped + s.Floor.retested);
            Floor.reset_stats engine;
            Alcotest.(check int) "reset" 0 (Floor.stats engine).Floor.devices));
    Alcotest.test_case "row width validated" `Quick (fun () ->
        let flow = Lazy.force trained_flow in
        Floor.with_engine flow (fun engine ->
            match Floor.process engine [| [| 1.0; 2.0 |] |] with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "served flow survives the disk round trip" `Quick
      (fun () ->
        let flow = Lazy.force trained_flow in
        let path = Filename.temp_file "stc_flow" ".stc" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            (match Flow_io.save ~path flow with
             | Ok () -> ()
             | Error e -> Alcotest.fail e);
            let reloaded =
              match Flow_io.load ~path with
              | Ok f -> f
              | Error e -> Alcotest.fail e
            in
            let stream = population 8 200 in
            Floor.with_engine reloaded (fun engine ->
                let outcomes = Floor.process engine stream in
                Array.iteri
                  (fun i o ->
                    Alcotest.check check_verdict "verdict"
                      (Compaction.flow_verdict flow stream.(i))
                      o.Floor.verdict)
                  outcomes)));
  ]

let suites =
  [
    ("floor.pool", pool_tests);
    ("floor.flow_io", flow_io_tests);
    ("floor.csv", csv_tests);
    ("floor.engine", engine_tests);
  ]
