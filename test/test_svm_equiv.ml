(* The warm-start/flat-storage equivalence gate.

   The SMO hot path now (a) seeds solves from the previous candidate's
   alphas and (b) computes kernels over contiguous flat storage. This
   suite pins the contract that makes both safe: warm-started solves
   converge to the same optimum as cold ones (within the KKT
   tolerance), and a full warm-started compaction produces the very
   same stc-flow-1 bytes as a cold one on the paper's benches.

   `make ci` runs this file by name — if the suite ever stops being
   registered, the filter matches nothing and alcotest exits nonzero. *)

module Kernel = Stc_svm.Kernel
module Smo = Stc_svm.Smo
module Svr = Stc_svm.Svr
module Rng = Stc_numerics.Rng
module Compaction = Stc.Compaction
module Order = Stc.Order
module Experiment = Stc.Experiment
module Flow_io = Stc_floor.Flow_io
module Obs = Stc_obs.Registry

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- random dual problems ------------------------- *)

type prob = {
  n : int;
  c : float;
  problem : Smo.problem;
  q : float array array;
}

(* A random C-SVC dual: both classes present, RBF kernel, modest size.
   Everything is derived from the seed, so qcheck shrinking stays
   meaningful. *)
let make_problem seed =
  let rng = Rng.create (1_000 + seed) in
  let n = 8 + Rng.int rng 17 in
  let dim = 1 + Rng.int rng 3 in
  let x =
    Array.init n (fun _ ->
        Array.init dim (fun _ -> Rng.uniform rng (-1.5) 1.5))
  in
  let y = Array.init n (fun i -> if i land 1 = 0 then 1.0 else -1.0) in
  let c = Rng.uniform rng 0.5 10.0 in
  let kernel = Kernel.rbf (Rng.uniform rng 0.2 2.0) in
  let q =
    Array.init n (fun i ->
        Array.init n (fun j -> y.(i) *. y.(j) *. Kernel.eval kernel x.(i) x.(j)))
  in
  let problem =
    {
      Smo.size = n;
      q_row = (fun i -> q.(i));
      q_diag = Array.init n (fun i -> q.(i).(i));
      p = Array.make n (-1.0);
      y;
      c = Array.make n c;
    }
  in
  { n; c; problem; q }

(* Random feasible start: equal values assigned to (+,−) index pairs,
   so yᵀα = 0 holds exactly and every coordinate is inside [0, C]. *)
let random_feasible_alpha rng { n; c; _ } =
  let alpha = Array.make n 0.0 in
  let pos = ref [] and neg = ref [] in
  for i = n - 1 downto 0 do
    if i land 1 = 0 then pos := i :: !pos else neg := i :: !neg
  done;
  List.iter2
    (fun i j ->
      let v = Rng.uniform rng 0.0 c in
      alpha.(i) <- v;
      alpha.(j) <- v)
    (List.filteri (fun k _ -> k < List.length !neg) !pos)
    (List.filteri (fun k _ -> k < List.length !pos) !neg);
  alpha

(* g_t = Σᵢ αᵢ yᵢ K(i,t), recovered through Q (Q_ti = y_t yᵢ K); the
   decision value is f_t = g_t − rho. *)
let decision_values { n; q; problem; _ } (sol : Smo.solution) =
  Array.init n (fun t ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (sol.Smo.alpha.(i) *. q.(t).(i))
      done;
      (problem.Smo.y.(t) *. !acc) -. sol.Smo.rho)

let eps = 1e-5

(* Two eps-KKT points of the same dual: objectives agree to O(n·C·eps). *)
let tol p = 5.0 *. float_of_int p.n *. p.c *. eps

(* Decision values agree only to O(√(n·C·eps)): for minimisers α₁, α₂
   with objective gap g, the difference d = α₁ − α₂ has dᵀQd ≤ 2g, so
   by Cauchy–Schwarz in the Q-seminorm |(Qd)ₜ| ≤ √(Qₜₜ · 2g) — a square
   root of the suboptimality, not a multiple of it (plus a rho shift of
   the same order when the free-variable band moves). *)
let tol_decision p = 4.0 *. sqrt (float_of_int p.n *. p.c *. eps)

let check_objective_and_box ?(what = "warm") p (cold : Smo.solution)
    (warm : Smo.solution) =
  let t = tol p in
  if Float.abs (cold.Smo.objective -. warm.Smo.objective) > t then
    QCheck.Test.fail_reportf "%s objective %.17g vs cold %.17g (tol %g)" what
      warm.Smo.objective cold.Smo.objective t;
  Array.iteri
    (fun i a ->
      if a < -1e-12 || a > p.c +. 1e-12 then
        QCheck.Test.fail_reportf "%s alpha(%d) = %.17g outside [0, %g]" what i
          a p.c)
    warm.Smo.alpha

let check_same_optimum ?(what = "warm") p (cold : Smo.solution)
    (warm : Smo.solution) =
  check_objective_and_box ~what p cold warm;
  let fc = decision_values p cold and fw = decision_values p warm in
  let td = tol_decision p in
  Array.iteri
    (fun i c_i ->
      if Float.abs (c_i -. fw.(i)) > td *. (1.0 +. Float.abs c_i) then
        QCheck.Test.fail_reportf "%s decision f(%d) = %.17g vs cold %.17g" what
          i fw.(i) c_i)
    fc;
  true

(* The maximal-violating-pair gap (libsvm's stopping quantity),
   recomputed from scratch: gmax over the "up" set plus gmax2 over the
   "down" set of G = Qα + p. A solve that claims convergence must sit
   below the tolerance independently of its own incremental gradient. *)
let kkt_gap p (sol : Smo.solution) =
  let n = p.n in
  let a = sol.Smo.alpha and y = p.problem.Smo.y in
  let grad =
    Array.init n (fun t ->
        let acc = ref p.problem.Smo.p.(t) in
        for i = 0 to n - 1 do
          acc := !acc +. (a.(i) *. p.q.(t).(i))
        done;
        !acc)
  in
  let gmax = ref Float.neg_infinity and gmax2 = ref Float.neg_infinity in
  for t = 0 to n - 1 do
    if y.(t) = 1.0 then begin
      if a.(t) < p.c && -.grad.(t) > !gmax then gmax := -.grad.(t);
      if a.(t) > 0.0 && grad.(t) > !gmax2 then gmax2 := grad.(t)
    end
    else begin
      if a.(t) > 0.0 && grad.(t) > !gmax then gmax := grad.(t);
      if a.(t) < p.c && -.grad.(t) > !gmax2 then gmax2 := -.grad.(t)
    end
  done;
  !gmax +. !gmax2

(* Weaker than [check_same_optimum], but sound for degenerate duals:
   when Q is nearly singular (near-duplicate points, tiny gamma) the
   ε-KKT set is a long flat valley and decision values legitimately
   differ between its points, while the objective and the KKT gap are
   pinned for every member. *)
let check_reaches_optimum ?(what = "warm") p (cold : Smo.solution)
    (warm : Smo.solution) =
  check_objective_and_box ~what p cold warm;
  let gap = kkt_gap p warm in
  (* 1.5×: the solver stops on its incrementally-updated gradient,
     which drifts from the recomputed one by rounding only *)
  if gap >= 1.5 *. eps then
    QCheck.Test.fail_reportf "%s KKT gap %.17g >= %.17g" what gap (1.5 *. eps);
  true

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 9_999)

let smo_equiv_tests =
  [
    qtest
      (QCheck.Test.make ~count:40
         ~name:"warm start from the cold optimum stays at the optimum"
         seed_arb
         (fun seed ->
           let p = make_problem seed in
           let cold = Smo.solve ~eps p.problem in
           let warm = Smo.solve ~eps ~alpha0:cold.Smo.alpha p.problem in
           (* restarting at an eps-KKT point must terminate almost
              immediately — this is what makes warm starts pay *)
           if warm.Smo.iterations > cold.Smo.iterations then
             QCheck.Test.fail_reportf
               "restart took %d iterations vs %d from zero"
               warm.Smo.iterations cold.Smo.iterations;
           check_same_optimum ~what:"restart" p cold warm));
    qtest
      (QCheck.Test.make ~count:40
         ~name:"warm start from a random feasible point finds the cold optimum"
         seed_arb
         (fun seed ->
           let p = make_problem seed in
           let rng = Rng.create (77_000 + seed) in
           let cold = Smo.solve ~eps p.problem in
           let alpha0 = random_feasible_alpha rng p in
           let warm = Smo.solve ~eps ~alpha0 p.problem in
           check_reaches_optimum p cold warm));
    qtest
      (QCheck.Test.make ~count:25
         ~name:"Svr warm state reproduces the cold model's predictions"
         seed_arb
         (fun seed ->
           let rng = Rng.create (55_000 + seed) in
           let l = 12 + Rng.int rng 20 in
           let dim = 1 + Rng.int rng 3 in
           let mk_x () =
             Array.init l (fun _ ->
                 Array.init dim (fun _ -> Rng.uniform rng (-1.0) 1.0))
           in
           let labels x =
             Array.map
               (fun xi ->
                 if Array.fold_left ( +. ) 0.0 xi > 0.0 then 1.0 else -1.0)
               x
           in
           let c = 10.0 and kernel = Kernel.rbf 1.0 in
           let x1 = mk_x () in
           let x2 = mk_x () in
           (* the second problem differs in features and labels — the
              warm state must still be a legal start for it *)
           let warm = Svr.warm_state () in
           let _seeded = Svr.train ~c ~kernel ~warm ~x:x1 ~y:(labels x1) () in
           let m_warm = Svr.train ~c ~kernel ~warm ~x:x2 ~y:(labels x2) () in
           let m_cold = Svr.train ~c ~kernel ~x:x2 ~y:(labels x2) () in
           (match Stc_qa.Oracle.svr_dual_feasible ~c m_warm with
           | Ok () -> ()
           | Error e -> QCheck.Test.fail_reportf "warm model infeasible: %s" e);
           Array.iteri
             (fun i xi ->
               let pw = Svr.predict m_warm xi and pc = Svr.predict m_cold xi in
               (* both solves stop at eps-KKT (default 1e-3) points of
                  the same dual; predictions agree to O(√(n·C·eps)),
                  see [tol_decision] *)
               let t = 0.1 *. (1.0 +. Float.abs pc) in
               if Float.abs (pw -. pc) > t then
                 QCheck.Test.fail_reportf
                   "warm f(x%d) = %.17g but cold %.17g" i pw pc;
               if (pw >= 0.0) <> (pc >= 0.0) && Float.abs pc > 0.1 then
                 QCheck.Test.fail_reportf "warm flips the sign at x%d" i)
             x2;
           true));
  ]

(* ----------------- bit-identical compacted flows ----------------- *)

let c_warm_starts = Obs.counter "stc_smo_warm_starts_total"

let flow_string flow =
  match Flow_io.to_string flow with
  | Ok s -> s
  | Error e -> Alcotest.failf "Flow_io.to_string: %s" e

let check_warm_cold_flows name ?order config ~train ~test =
  let before = Obs.Counter.get c_warm_starts in
  let cold =
    Compaction.greedy ?order { config with Compaction.warm_start = false }
      ~train ~test
  in
  let mid = Obs.Counter.get c_warm_starts in
  Alcotest.(check int) (name ^ ": cold run never warm-starts") 0 (mid - before);
  let warm =
    Compaction.greedy ?order { config with Compaction.warm_start = true }
      ~train ~test
  in
  let after = Obs.Counter.get c_warm_starts in
  Alcotest.(check bool) (name ^ ": warm run used warm starts") true
    (after - mid > 0);
  (* every greedy decision identical... *)
  List.iter2
    (fun (cs : Compaction.step) (ws : Compaction.step) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: step on spec %d" name cs.Compaction.spec_index)
        cs.Compaction.spec_index ws.Compaction.spec_index;
      Alcotest.(check bool)
        (Printf.sprintf "%s: decision on spec %d" name cs.Compaction.spec_index)
        cs.Compaction.accepted ws.Compaction.accepted)
    cold.Compaction.steps warm.Compaction.steps;
  (* ...and the persisted flow bit-identical *)
  Alcotest.(check string)
    (name ^ ": stc-flow-1 bytes")
    (flow_string cold.Compaction.flow)
    (flow_string warm.Compaction.flow)

let flow_equiv_tests =
  [
    Alcotest.test_case "op-amp: warm and cold flows bit-identical" `Quick
      (fun () ->
        let train, test =
          Experiment.generate_opamp ~seed:701 ~n_train:80 ~n_test:40 ()
        in
        check_warm_cold_flows "opamp"
          ~order:(Order.Given Experiment.opamp_examination_order)
          Experiment.opamp_config ~train ~test);
    Alcotest.test_case "MEMS: warm and cold flows bit-identical" `Quick
      (fun () ->
        (* large enough that accepted candidates have non-trivial
           (nonzero-alpha) models — seeds from an all-zero model are a
           cold start and correctly don't count as warm *)
        let train, test =
          Experiment.generate_mems ~seed:702 ~n_train:400 ~n_test:200 ()
        in
        check_warm_cold_flows "mems" Experiment.mems_config ~train ~test);
  ]

let suites =
  [
    ("svm_equiv.smo", smo_equiv_tests); ("svm_equiv.flows", flow_equiv_tests);
  ]
