(* Tests for process variation and Monte-Carlo generation. *)

module Variation = Stc_process.Variation
module Montecarlo = Stc_process.Montecarlo
module Rng = Stc_numerics.Rng
module Stats = Stc_numerics.Stats

let qtest = QCheck_alcotest.to_alcotest

let variation_tests =
  [
    Alcotest.test_case "fixed never varies" `Quick (fun () ->
        let p = Variation.param "x" 3.0 Variation.Fixed in
        let rng = Rng.create 1 in
        for _ = 1 to 50 do
          Alcotest.(check (float 0.0)) "fixed" 3.0 (Variation.sample rng p)
        done);
    Alcotest.test_case "uniform_pct bounds" `Quick (fun () ->
        let p = Variation.uniform_pct "w" 10.0 ~pct:0.10 in
        let rng = Rng.create 2 in
        for _ = 1 to 1000 do
          let v = Variation.sample rng p in
          Alcotest.(check bool) "within ±10%" true (v >= 9.0 && v < 11.0)
        done);
    Alcotest.test_case "uniform_pct handles negative nominal" `Quick (fun () ->
        let p = Variation.uniform_pct "skew" (-2.0) ~pct:0.10 in
        let rng = Rng.create 3 in
        for _ = 1 to 200 do
          let v = Variation.sample rng p in
          Alcotest.(check bool) "within band" true (v >= -2.2 && v <= -1.8)
        done);
    Alcotest.test_case "uniform mean near nominal" `Quick (fun () ->
        let p = Variation.uniform_pct "c" 5.0 ~pct:0.10 in
        let rng = Rng.create 4 in
        let xs = Array.init 20000 (fun _ -> Variation.sample rng p) in
        Alcotest.(check (float 0.01)) "mean" 5.0 (Stats.mean xs));
    Alcotest.test_case "normal_relative sigma" `Quick (fun () ->
        let p = Variation.param "x" 10.0 (Variation.Normal_relative 0.05) in
        let rng = Rng.create 5 in
        let xs = Array.init 20000 (fun _ -> Variation.sample rng p) in
        Alcotest.(check (float 0.02)) "sd" 0.5 (Stats.stddev xs));
    Alcotest.test_case "uniform_absolute range" `Quick (fun () ->
        let p = Variation.param "x" 0.0 (Variation.Uniform_absolute (2.0, 4.0)) in
        let rng = Rng.create 6 in
        for _ = 1 to 500 do
          let v = Variation.sample rng p in
          Alcotest.(check bool) "range" true (v >= 2.0 && v < 4.0)
        done);
    qtest
      (QCheck.Test.make ~name:"sample_all aligns with params" ~count:50
         QCheck.(int_range 0 10000)
         (fun seed ->
           let params =
             Array.init 5 (fun i ->
                 Variation.uniform_pct (string_of_int i) (float_of_int (i + 1))
                   ~pct:0.10)
           in
           let rng = Rng.create seed in
           let draw = Variation.sample_all rng params in
           Array.length draw = 5
           && Array.for_all2
                (fun v p ->
                  let nominal = p.Variation.nominal in
                  v >= 0.9 *. nominal && v <= 1.1 *. nominal)
                draw params));
  ]

(* A toy analytic device: two parameters, three "specs". *)
let toy_device =
  {
    Montecarlo.device_name = "toy";
    params =
      [|
        Variation.uniform_pct "a" 1.0 ~pct:0.10;
        Variation.uniform_pct "b" 2.0 ~pct:0.10;
      |];
    spec_count = 3;
    simulate =
      (fun v -> Some [| v.(0); v.(1); v.(0) +. v.(1) |]);
  }

let flaky_device threshold =
  {
    toy_device with
    Montecarlo.device_name = "flaky";
    simulate = (fun v -> if v.(0) > threshold then None else Some [| v.(0); v.(1); 0.0 |]);
  }

let montecarlo_tests =
  [
    Alcotest.test_case "generates requested count" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 1) toy_device ~n:57 in
        Alcotest.(check int) "inputs" 57 (Array.length d.Montecarlo.inputs);
        Alcotest.(check int) "specs" 57 (Array.length d.Montecarlo.specs);
        Alcotest.(check int) "no discards" 0 d.Montecarlo.discarded);
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let a = Montecarlo.generate (Rng.create 42) toy_device ~n:10 in
        let b = Montecarlo.generate (Rng.create 42) toy_device ~n:10 in
        Alcotest.(check (float 0.0)) "same draw"
          a.Montecarlo.inputs.(3).(1) b.Montecarlo.inputs.(3).(1));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Montecarlo.generate (Rng.create 1) toy_device ~n:5 in
        let b = Montecarlo.generate (Rng.create 2) toy_device ~n:5 in
        Alcotest.(check bool) "differ" true
          (a.Montecarlo.inputs.(0).(0) <> b.Montecarlo.inputs.(0).(0)));
    Alcotest.test_case "spec derived consistently" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 7) toy_device ~n:20 in
        Array.iteri
          (fun i input ->
            Alcotest.(check (float 1e-12)) "sum spec"
              (input.(0) +. input.(1))
              d.Montecarlo.specs.(i).(2))
          d.Montecarlo.inputs);
    Alcotest.test_case "failed draws are redrawn and counted" `Quick (fun () ->
        (* fails roughly half the time: a > 1.0 *)
        let d = Montecarlo.generate ~max_failure_ratio:10.0 (Rng.create 3)
                  (flaky_device 1.0) ~n:30
        in
        Alcotest.(check int) "count" 30 (Array.length d.Montecarlo.inputs);
        Alcotest.(check bool) "some discards" true (d.Montecarlo.discarded > 0);
        Array.iter
          (fun input ->
            Alcotest.(check bool) "survivors below threshold" true (input.(0) <= 1.0))
          d.Montecarlo.inputs);
    Alcotest.test_case "hopeless device raises" `Quick (fun () ->
        (match Montecarlo.generate (Rng.create 1) (flaky_device 0.0) ~n:30 with
         | exception Montecarlo.Too_many_failures _ -> ()
         | _ -> Alcotest.fail "expected Too_many_failures"));
    Alcotest.test_case "split and take" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 5) toy_device ~n:20 in
        let a, b = Montecarlo.split d ~at:12 in
        Alcotest.(check int) "left" 12 (Array.length a.Montecarlo.inputs);
        Alcotest.(check int) "right" 8 (Array.length b.Montecarlo.inputs);
        Alcotest.(check (float 0.0)) "boundary preserved"
          d.Montecarlo.specs.(12).(0) b.Montecarlo.specs.(0).(0);
        let t = Montecarlo.take d 5 in
        Alcotest.(check int) "take" 5 (Array.length t.Montecarlo.specs));
    Alcotest.test_case "uniform generation carries unit weights" `Quick
      (fun () ->
        let d = Montecarlo.generate (Rng.create 5) toy_device ~n:12 in
        Alcotest.(check int) "length" 12 (Array.length d.Montecarlo.weights);
        Array.iter
          (fun w -> Alcotest.(check (float 0.0)) "unit weight" 1.0 w)
          d.Montecarlo.weights;
        let a, b = Montecarlo.split d ~at:7 in
        Alcotest.(check int) "left weights" 7
          (Array.length a.Montecarlo.weights);
        Alcotest.(check int) "right weights" 5
          (Array.length b.Montecarlo.weights));
    Alcotest.test_case "take/split apportion the discarded count" `Quick
      (fun () ->
        let d =
          Montecarlo.generate ~max_failure_ratio:10.0 (Rng.create 3)
            (flaky_device 1.0) ~n:30
        in
        Alcotest.(check bool) "has discards" true (d.Montecarlo.discarded > 0);
        let a, b = Montecarlo.split d ~at:12 in
        Alcotest.(check int) "halves sum exactly" d.Montecarlo.discarded
          (a.Montecarlo.discarded + b.Montecarlo.discarded);
        Alcotest.(check int) "left share is proportional"
          (d.Montecarlo.discarded * 12 / 30)
          a.Montecarlo.discarded;
        Alcotest.(check int) "take matches split's left share"
          a.Montecarlo.discarded
          (Montecarlo.take d 12).Montecarlo.discarded;
        Alcotest.(check int) "take all keeps everything"
          d.Montecarlo.discarded
          (Montecarlo.take d 30).Montecarlo.discarded;
        Alcotest.(check int) "take none keeps nothing" 0
          (Montecarlo.take d 0).Montecarlo.discarded);
    Alcotest.test_case "failure cap aborts promptly in serial and parallel"
      `Quick (fun () ->
        (* a hopeless device: with n=30 and the default ratio the cap is
           max 10 (0.5·30) = 15 failures, so exactly 16 simulations run
           before the abort — in the serial generator and in the
           parallel one at domains:1 alike *)
        let count_calls generate =
          let calls = ref 0 in
          let counting =
            {
              toy_device with
              Montecarlo.device_name = "hopeless";
              simulate =
                (fun _ ->
                  incr calls;
                  None);
            }
          in
          (match generate counting with
           | exception Montecarlo.Too_many_failures _ -> ()
           | _ -> Alcotest.fail "expected Too_many_failures");
          !calls
        in
        let serial =
          count_calls (fun d -> Montecarlo.generate (Rng.create 1) d ~n:30)
        in
        let parallel =
          count_calls (fun d ->
              Montecarlo.generate_parallel ~domains:1 ~seed:1 d ~n:30)
        in
        Alcotest.(check int) "serial aborts after cap+1 calls" 16 serial;
        Alcotest.(check int) "parallel (1 domain) matches" serial parallel);
    Alcotest.test_case "spec_column extracts" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 5) toy_device ~n:8 in
        let col = Montecarlo.spec_column d 2 in
        Alcotest.(check int) "length" 8 (Array.length col);
        Alcotest.(check (float 0.0)) "value" d.Montecarlo.specs.(3).(2) col.(3));
  ]

let parallel_tests =
  [
    Alcotest.test_case "domain count does not change the dataset" `Quick
      (fun () ->
        let one = Montecarlo.generate_parallel ~domains:1 ~seed:11 toy_device ~n:64 in
        let four = Montecarlo.generate_parallel ~domains:4 ~seed:11 toy_device ~n:64 in
        Alcotest.(check int) "count" 64 (Array.length four.Montecarlo.inputs);
        let flatten d =
          Array.to_list (Array.map Array.to_list d.Montecarlo.inputs)
          @ Array.to_list (Array.map Array.to_list d.Montecarlo.specs)
        in
        Alcotest.(check (list (list (float 0.0)))) "identical datasets"
          (flatten one) (flatten four));
    Alcotest.test_case "parallel retries keep determinism" `Quick (fun () ->
        let flaky = flaky_device 1.0 in
        let one =
          Montecarlo.generate_parallel ~max_failure_ratio:10.0 ~domains:1
            ~seed:3 flaky ~n:40
        in
        let four =
          Montecarlo.generate_parallel ~max_failure_ratio:10.0 ~domains:4
            ~seed:3 flaky ~n:40
        in
        Alcotest.(check int) "same discards" one.Montecarlo.discarded
          four.Montecarlo.discarded;
        Array.iteri
          (fun i row ->
            Alcotest.(check (float 0.0)) "same draw" row.(0)
              four.Montecarlo.inputs.(i).(0))
          one.Montecarlo.inputs);
    Alcotest.test_case "parallel failure cap raises" `Quick (fun () ->
        match
          Montecarlo.generate_parallel ~domains:2 ~seed:1 (flaky_device 0.0)
            ~n:30
        with
        | exception Montecarlo.Too_many_failures _ -> ()
        | _ -> Alcotest.fail "expected Too_many_failures");
  ]

(* --------------------------- enrichment --------------------------- *)

module Enrich = Stc_process.Enrich

(* Limits on the toy device placed so the uniform yield sits away from
   0 %/100 % — a boundary exists for the sampler to enrich. *)
let toy_limits =
  [|
    (neg_infinity, 1.05);  (* a: ~75 % pass, one-sided *)
    (1.85, infinity);      (* b: ~87 % pass, one-sided *)
    (2.80, 3.20);          (* a+b: two-sided *)
  |]

let enrich_tests =
  [
    Alcotest.test_case "bit-identical across 1/2/4 domains" `Quick (fun () ->
        match
          Stc_qa.Oracle.enrichment_deterministic ~domain_counts:[ 1; 2; 4 ]
            ~seed:11 ~pilot:40 ~n:160 toy_device ~limits:toy_limits
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "weighted yield matches uniform yield" `Quick (fun () ->
        match
          Stc_qa.Oracle.enrichment_unbiased ~seed:7 ~pilot:80 ~n:500
            toy_device ~limits:toy_limits
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "boundary density exceeds uniform at equal budget"
      `Quick (fun () ->
        let n = 500 in
        let enriched, stats =
          Enrich.generate ~seed:19 ~pilot:100 toy_device ~limits:toy_limits ~n
        in
        Alcotest.(check bool) "surrogate fitted" true
          stats.Enrich.surrogate_ok;
        let uniform =
          Montecarlo.generate_parallel ~seed:1019 toy_device ~n
        in
        (* a shared yardstick: sigmas measured on the uniform set *)
        let sigmas = Enrich.spec_sigmas uniform in
        let density d =
          Enrich.boundary_fraction ~limits:toy_limits ~sigmas ~width:0.5 d
        in
        let du = density uniform and de = density enriched in
        if not (de > du) then
          Alcotest.failf "enriched density %.3f not above uniform %.3f" de du);
    Alcotest.test_case "stats are coherent" `Quick (fun () ->
        let d, stats =
          Enrich.generate ~seed:3 ~pilot:50 toy_device ~limits:toy_limits
            ~n:200
        in
        Alcotest.(check int) "pilot" 50 stats.Enrich.pilot;
        Alcotest.(check int) "enriched" 150 stats.Enrich.enriched;
        Alcotest.(check bool) "proposals cover the enriched draws" true
          (stats.Enrich.proposals >= stats.Enrich.enriched);
        Alcotest.(check bool) "acceptance in (0, 1]" true
          (stats.Enrich.acceptance_rate > 0.0
          && stats.Enrich.acceptance_rate <= 1.0);
        for i = 0 to 49 do
          Alcotest.(check (float 0.0)) "pilot weight is 1" 1.0
            d.Montecarlo.weights.(i)
        done;
        Array.iter
          (fun w ->
            Alcotest.(check bool) "weights finite positive" true
              (Float.is_finite w && w > 0.0))
          d.Montecarlo.weights);
    Alcotest.test_case "degenerate pilot falls back to uniform" `Quick
      (fun () ->
        (* constant specs: zero pilot spread, no usable surrogate *)
        let flat =
          {
            toy_device with
            Montecarlo.device_name = "flat";
            simulate = (fun _ -> Some [| 1.0; 2.0; 3.0 |]);
          }
        in
        let d, stats =
          Enrich.generate ~seed:5 ~pilot:30 flat ~limits:toy_limits ~n:100
        in
        Alcotest.(check bool) "degraded" false stats.Enrich.surrogate_ok;
        Array.iter
          (fun w -> Alcotest.(check (float 0.0)) "unit weights" 1.0 w)
          d.Montecarlo.weights);
    Alcotest.test_case "argument validation" `Quick (fun () ->
        let expect_invalid f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        expect_invalid (fun () ->
            Enrich.generate ~seed:1 ~pilot:0 toy_device ~limits:toy_limits
              ~n:10);
        expect_invalid (fun () ->
            Enrich.generate ~seed:1 ~pilot:10 toy_device ~limits:toy_limits
              ~n:10);
        expect_invalid (fun () ->
            Enrich.generate ~seed:1 ~pilot:2 toy_device ~limits:[| (0.0, 1.0) |]
              ~n:10));
  ]

let suites =
  [
    ("process.variation", variation_tests);
    ("process.montecarlo", montecarlo_tests);
    ("process.parallel", parallel_tests);
    ("process.enrich", enrich_tests);
  ]
