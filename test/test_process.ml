(* Tests for process variation and Monte-Carlo generation. *)

module Variation = Stc_process.Variation
module Montecarlo = Stc_process.Montecarlo
module Rng = Stc_numerics.Rng
module Stats = Stc_numerics.Stats

let qtest = QCheck_alcotest.to_alcotest

let variation_tests =
  [
    Alcotest.test_case "fixed never varies" `Quick (fun () ->
        let p = Variation.param "x" 3.0 Variation.Fixed in
        let rng = Rng.create 1 in
        for _ = 1 to 50 do
          Alcotest.(check (float 0.0)) "fixed" 3.0 (Variation.sample rng p)
        done);
    Alcotest.test_case "uniform_pct bounds" `Quick (fun () ->
        let p = Variation.uniform_pct "w" 10.0 ~pct:0.10 in
        let rng = Rng.create 2 in
        for _ = 1 to 1000 do
          let v = Variation.sample rng p in
          Alcotest.(check bool) "within ±10%" true (v >= 9.0 && v < 11.0)
        done);
    Alcotest.test_case "uniform_pct handles negative nominal" `Quick (fun () ->
        let p = Variation.uniform_pct "skew" (-2.0) ~pct:0.10 in
        let rng = Rng.create 3 in
        for _ = 1 to 200 do
          let v = Variation.sample rng p in
          Alcotest.(check bool) "within band" true (v >= -2.2 && v <= -1.8)
        done);
    Alcotest.test_case "uniform mean near nominal" `Quick (fun () ->
        let p = Variation.uniform_pct "c" 5.0 ~pct:0.10 in
        let rng = Rng.create 4 in
        let xs = Array.init 20000 (fun _ -> Variation.sample rng p) in
        Alcotest.(check (float 0.01)) "mean" 5.0 (Stats.mean xs));
    Alcotest.test_case "normal_relative sigma" `Quick (fun () ->
        let p = Variation.param "x" 10.0 (Variation.Normal_relative 0.05) in
        let rng = Rng.create 5 in
        let xs = Array.init 20000 (fun _ -> Variation.sample rng p) in
        Alcotest.(check (float 0.02)) "sd" 0.5 (Stats.stddev xs));
    Alcotest.test_case "uniform_absolute range" `Quick (fun () ->
        let p = Variation.param "x" 0.0 (Variation.Uniform_absolute (2.0, 4.0)) in
        let rng = Rng.create 6 in
        for _ = 1 to 500 do
          let v = Variation.sample rng p in
          Alcotest.(check bool) "range" true (v >= 2.0 && v < 4.0)
        done);
    qtest
      (QCheck.Test.make ~name:"sample_all aligns with params" ~count:50
         QCheck.(int_range 0 10000)
         (fun seed ->
           let params =
             Array.init 5 (fun i ->
                 Variation.uniform_pct (string_of_int i) (float_of_int (i + 1))
                   ~pct:0.10)
           in
           let rng = Rng.create seed in
           let draw = Variation.sample_all rng params in
           Array.length draw = 5
           && Array.for_all2
                (fun v p ->
                  let nominal = p.Variation.nominal in
                  v >= 0.9 *. nominal && v <= 1.1 *. nominal)
                draw params));
  ]

(* A toy analytic device: two parameters, three "specs". *)
let toy_device =
  {
    Montecarlo.device_name = "toy";
    params =
      [|
        Variation.uniform_pct "a" 1.0 ~pct:0.10;
        Variation.uniform_pct "b" 2.0 ~pct:0.10;
      |];
    spec_count = 3;
    simulate =
      (fun v -> Some [| v.(0); v.(1); v.(0) +. v.(1) |]);
  }

let flaky_device threshold =
  {
    toy_device with
    Montecarlo.device_name = "flaky";
    simulate = (fun v -> if v.(0) > threshold then None else Some [| v.(0); v.(1); 0.0 |]);
  }

let montecarlo_tests =
  [
    Alcotest.test_case "generates requested count" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 1) toy_device ~n:57 in
        Alcotest.(check int) "inputs" 57 (Array.length d.Montecarlo.inputs);
        Alcotest.(check int) "specs" 57 (Array.length d.Montecarlo.specs);
        Alcotest.(check int) "no discards" 0 d.Montecarlo.discarded);
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let a = Montecarlo.generate (Rng.create 42) toy_device ~n:10 in
        let b = Montecarlo.generate (Rng.create 42) toy_device ~n:10 in
        Alcotest.(check (float 0.0)) "same draw"
          a.Montecarlo.inputs.(3).(1) b.Montecarlo.inputs.(3).(1));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Montecarlo.generate (Rng.create 1) toy_device ~n:5 in
        let b = Montecarlo.generate (Rng.create 2) toy_device ~n:5 in
        Alcotest.(check bool) "differ" true
          (a.Montecarlo.inputs.(0).(0) <> b.Montecarlo.inputs.(0).(0)));
    Alcotest.test_case "spec derived consistently" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 7) toy_device ~n:20 in
        Array.iteri
          (fun i input ->
            Alcotest.(check (float 1e-12)) "sum spec"
              (input.(0) +. input.(1))
              d.Montecarlo.specs.(i).(2))
          d.Montecarlo.inputs);
    Alcotest.test_case "failed draws are redrawn and counted" `Quick (fun () ->
        (* fails roughly half the time: a > 1.0 *)
        let d = Montecarlo.generate ~max_failure_ratio:10.0 (Rng.create 3)
                  (flaky_device 1.0) ~n:30
        in
        Alcotest.(check int) "count" 30 (Array.length d.Montecarlo.inputs);
        Alcotest.(check bool) "some discards" true (d.Montecarlo.discarded > 0);
        Array.iter
          (fun input ->
            Alcotest.(check bool) "survivors below threshold" true (input.(0) <= 1.0))
          d.Montecarlo.inputs);
    Alcotest.test_case "hopeless device raises" `Quick (fun () ->
        (match Montecarlo.generate (Rng.create 1) (flaky_device 0.0) ~n:30 with
         | exception Montecarlo.Too_many_failures _ -> ()
         | _ -> Alcotest.fail "expected Too_many_failures"));
    Alcotest.test_case "split and take" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 5) toy_device ~n:20 in
        let a, b = Montecarlo.split d ~at:12 in
        Alcotest.(check int) "left" 12 (Array.length a.Montecarlo.inputs);
        Alcotest.(check int) "right" 8 (Array.length b.Montecarlo.inputs);
        Alcotest.(check (float 0.0)) "boundary preserved"
          d.Montecarlo.specs.(12).(0) b.Montecarlo.specs.(0).(0);
        let t = Montecarlo.take d 5 in
        Alcotest.(check int) "take" 5 (Array.length t.Montecarlo.specs));
    Alcotest.test_case "spec_column extracts" `Quick (fun () ->
        let d = Montecarlo.generate (Rng.create 5) toy_device ~n:8 in
        let col = Montecarlo.spec_column d 2 in
        Alcotest.(check int) "length" 8 (Array.length col);
        Alcotest.(check (float 0.0)) "value" d.Montecarlo.specs.(3).(2) col.(3));
  ]

let parallel_tests =
  [
    Alcotest.test_case "domain count does not change the dataset" `Quick
      (fun () ->
        let one = Montecarlo.generate_parallel ~domains:1 ~seed:11 toy_device ~n:64 in
        let four = Montecarlo.generate_parallel ~domains:4 ~seed:11 toy_device ~n:64 in
        Alcotest.(check int) "count" 64 (Array.length four.Montecarlo.inputs);
        let flatten d =
          Array.to_list (Array.map Array.to_list d.Montecarlo.inputs)
          @ Array.to_list (Array.map Array.to_list d.Montecarlo.specs)
        in
        Alcotest.(check (list (list (float 0.0)))) "identical datasets"
          (flatten one) (flatten four));
    Alcotest.test_case "parallel retries keep determinism" `Quick (fun () ->
        let flaky = flaky_device 1.0 in
        let one =
          Montecarlo.generate_parallel ~max_failure_ratio:10.0 ~domains:1
            ~seed:3 flaky ~n:40
        in
        let four =
          Montecarlo.generate_parallel ~max_failure_ratio:10.0 ~domains:4
            ~seed:3 flaky ~n:40
        in
        Alcotest.(check int) "same discards" one.Montecarlo.discarded
          four.Montecarlo.discarded;
        Array.iteri
          (fun i row ->
            Alcotest.(check (float 0.0)) "same draw" row.(0)
              four.Montecarlo.inputs.(i).(0))
          one.Montecarlo.inputs);
    Alcotest.test_case "parallel failure cap raises" `Quick (fun () ->
        match
          Montecarlo.generate_parallel ~domains:2 ~seed:1 (flaky_device 0.0)
            ~n:30
        with
        | exception Montecarlo.Too_many_failures _ -> ()
        | _ -> Alcotest.fail "expected Too_many_failures");
  ]

let suites =
  [
    ("process.variation", variation_tests);
    ("process.montecarlo", montecarlo_tests);
    ("process.parallel", parallel_tests);
  ]
