(* Aggregates every suite into one alcotest binary: `dune runtest`. *)

let () =
  Alcotest.run "stc"
    (Test_numerics.suites
     @ Test_circuit.suites
     @ Test_spice.suites
     @ Test_io.suites
     @ Test_more.suites
     @ Test_mems.suites
     @ Test_svm.suites
     @ Test_process.suites
     @ Test_core.suites
     @ Test_floor.suites
     @ Test_extensions.suites
     @ Test_integration.suites
     @ Test_qa.suites @ Test_resilience.suites @ Test_net.suites
     @ Test_obs.suites @ Test_units.suites @ Test_svm_equiv.suites
     @ Test_learner.suites @ Test_golden.suites)
