(* Adversarial QA: the Stc_qa generators, differential oracles and
   fault-injection checks, both as qcheck properties (replayable via
   QCHECK_SEED, like the rest of the suite) and as deterministic
   alcotest cases pinning the hardened error paths. *)

module Spec = Stc.Spec
module Compaction = Stc.Compaction
module Flow_io = Stc_floor.Flow_io
module Device_csv = Stc_floor.Device_csv
module Floor = Stc_floor.Floor
module Pool = Stc_process.Pool
module Rng = Stc_numerics.Rng
module Gen = Stc_qa.Gen
module Oracle = Stc_qa.Oracle
module Faults = Stc_qa.Faults
module Selftest = Stc_qa.Selftest

let qtest = QCheck_alcotest.to_alcotest
let check = function Ok () -> () | Error e -> Alcotest.fail e
let prop = function Ok () -> true | Error e -> QCheck.Test.fail_report e

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------ qcheck properties ----------------------- *)

let property_tests =
  [
    qtest
      (QCheck.Test.make ~name:"floor matches the reference binner" ~count:30
         (Gen.arb_flow_with_rows ~rows_per_flow:10)
         (fun (flow, rows) ->
           prop
             (Oracle.floor_matches ~batch_sizes:[ 1; 7; 64 ]
                ~domain_counts:[ 1; 4 ] flow rows)));
    qtest
      (QCheck.Test.make ~name:"floor matches reference under retest" ~count:20
         (Gen.arb_flow_with_rows ~rows_per_flow:8)
         (fun (flow, rows) ->
           let retest row =
             Array.for_all2 Spec.passes flow.Compaction.specs row
           in
           prop
             (Oracle.floor_matches ~retest ~batch_sizes:[ 3 ]
                ~domain_counts:[ 2 ] flow rows)));
    qtest
      (QCheck.Test.make ~name:"flow print/parse/print is canonical" ~count:200
         Gen.arb_flow
         (fun flow -> prop (Oracle.flow_roundtrips flow)));
    qtest
      (QCheck.Test.make ~name:"verdicts survive the disk round trip" ~count:100
         (Gen.arb_flow_with_rows ~rows_per_flow:6)
         (fun (flow, rows) -> prop (Oracle.flow_verdicts_survive flow rows)));
    qtest
      (QCheck.Test.make ~name:"svm decisions match brute force" ~count:200
         (QCheck.make (fun st ->
              let dim = 1 + Random.State.int st 5 in
              let probe =
                Array.init dim (fun _ ->
                    -1.5 +. (4.0 *. Random.State.float st 1.0))
              in
              (Gen.svr ~dim st, Gen.svc ~dim st, probe)))
         (fun (svr, svc, probe) ->
           let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
           prop
             (let* () = Oracle.svr_agrees svr probe in
              let* () = Oracle.svc_agrees svc probe in
              let* () = Oracle.svr_roundtrips svr in
              Oracle.svc_roundtrips svc)));
  ]

(* ----------------------- flow_io error paths ---------------------- *)

(* A minimal hand-written flow so each test controls the exact bytes. *)
let base_flow_text =
  "stc-flow-1\n" ^ "guard_fraction 0\n" ^ "measured_guard 0\n" ^ "specs 1\n"
  ^ "spec gain V 1 0 2\n" ^ "kept 1 0\n" ^ "dropped 0\n" ^ "band none\n"

let replace_line i repl text =
  String.split_on_char '\n' text
  |> List.mapi (fun j line -> if j = i then repl else line)
  |> String.concat "\n"

let expect_error_containing what needle = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error e ->
    if not (contains e needle) then
      Alcotest.failf "%s: error %S does not mention %S" what e needle

let flow_io_error_tests =
  [
    Alcotest.test_case "the minimal flow parses" `Quick (fun () ->
        match Flow_io.of_string base_flow_text with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "unknown version is named" `Quick (fun () ->
        expect_error_containing "version skew" "unsupported flow version"
          (Flow_io.of_string (replace_line 0 "stc-flow-9" base_flow_text)));
    Alcotest.test_case "non-flow header is still distinct" `Quick (fun () ->
        expect_error_containing "bad header" "expected"
          (Flow_io.of_string (replace_line 0 "not-a-flow" base_flow_text)));
    Alcotest.test_case "truncation names the line" `Quick (fun () ->
        let cut =
          String.concat "\n"
            [ "stc-flow-1"; "guard_fraction 0"; "measured_guard 0"; "" ]
        in
        expect_error_containing "truncation" "truncated"
          (Flow_io.of_string cut);
        expect_error_containing "truncation line number" "line 4"
          (Flow_io.of_string cut));
    Alcotest.test_case "non-finite guard fraction rejected" `Quick (fun () ->
        expect_error_containing "nan fraction" "non-finite"
          (Flow_io.of_string
             (replace_line 1 "guard_fraction nan" base_flow_text)));
    Alcotest.test_case "guard fraction range checked" `Quick (fun () ->
        expect_error_containing "fraction 1.5" "out of range"
          (Flow_io.of_string
             (replace_line 1 "guard_fraction 1.5" base_flow_text)));
    Alcotest.test_case "kept/dropped must partition" `Quick (fun () ->
        expect_error_containing "double-listed index" "partition"
          (Flow_io.of_string (replace_line 6 "dropped 1 0" base_flow_text)));
    Alcotest.test_case "non-finite spec bound rejected" `Quick (fun () ->
        expect_error_containing "inf bound" "non-finite"
          (Flow_io.of_string
             (replace_line 4 "spec gain V 1 0 inf" base_flow_text)));
    Alcotest.test_case "load reports a missing file" `Quick (fun () ->
        match Flow_io.load ~path:"/nonexistent/flow.stc" with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error _ -> ());
  ]

(* --------------------- device CSV error paths --------------------- *)

let with_temp_text text f =
  let path = Filename.temp_file "stc_qa_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      f path)

let device_csv_tests =
  [
    Alcotest.test_case "NaN cell names line and column" `Quick (fun () ->
        with_temp_text "a,b\n1,2\n3,nan\n" (fun path ->
            expect_error_containing "nan cell" "line 3"
              (Device_csv.read ~path);
            expect_error_containing "nan cell" "non-finite"
              (Device_csv.read ~path)));
    Alcotest.test_case "inf cell rejected" `Quick (fun () ->
        with_temp_text "a\ninf\n" (fun path ->
            expect_error_containing "inf cell" "non-finite"
              (Device_csv.read ~path)));
    Alcotest.test_case "ragged row names the line" `Quick (fun () ->
        with_temp_text "a,b\n1,2,3\n" (fun path ->
            expect_error_containing "ragged" "line 2" (Device_csv.read ~path)));
    Alcotest.test_case "non-numeric cell names the cell" `Quick (fun () ->
        with_temp_text "a,b\n1,oops\n" (fun path ->
            expect_error_containing "text cell" "oops" (Device_csv.read ~path)));
    Alcotest.test_case "write refuses non-finite values" `Quick (fun () ->
        let specs = [| Spec.make ~name:"a" ~unit_label:"V" ~nominal:1.0 ~lower:0.0 ~upper:2.0 |] in
        let path = Filename.temp_file "stc_qa_test" ".csv" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            match Device_csv.write ~path ~specs ~rows:[| [| Float.nan |] |] with
            | () -> Alcotest.fail "expected Invalid_argument"
            | exception Invalid_argument msg ->
              if not (contains msg "non-finite") then
                Alcotest.failf "unexpected message %S" msg));
  ]

(* ------------------------- floor strict mode ----------------------- *)

let floor_strict_tests =
  [
    Alcotest.test_case "strict rejects non-finite kept cells" `Quick (fun () ->
        let flow = Gen.run ~seed:5 Gen.flow in
        let k = Array.length flow.Compaction.specs in
        if Array.length flow.Compaction.kept = 0 then () (* nothing read *)
        else
          Floor.with_engine flow (fun engine ->
              let bad = Array.make k Float.nan in
              (match Floor.process ~strict:true engine [| bad |] with
               | _ -> Alcotest.fail "expected Invalid_argument"
               | exception Invalid_argument msg ->
                 if not (contains msg "non-finite") then
                   Alcotest.failf "unexpected message %S" msg);
              (* the rejected batch must not move the counters *)
              Alcotest.(check int) "no devices counted" 0
                (Floor.stats engine).Floor.devices;
              (* default mode degrades deterministically instead *)
              let o = Floor.process engine [| bad |] in
              Alcotest.(check bool) "nan scraps" true
                (o.(0).Floor.bin = Stc.Tester.Scrap)));
  ]

(* ------------------------- fault injection ------------------------ *)

let fault_tests =
  let flow_at seed = Gen.run ~seed Gen.flow in
  [
    Alcotest.test_case "corrupted flows reject or reparse" `Quick (fun () ->
        let rng = Rng.create 42 in
        for seed = 1 to 10 do
          match Faults.check_flow_corruption rng ~trials:40 (flow_at seed) with
          | Ok (_rejected, _accepted) -> ()
          | Error e -> Alcotest.fail e
        done);
    Alcotest.test_case "version skew and truncation are typed" `Quick (fun () ->
        check (Faults.check_version_skew (flow_at 3)));
    Alcotest.test_case "CSV rejects injected bad rows" `Quick (fun () ->
        let rng = Rng.create 7 in
        for seed = 1 to 5 do
          let flow, rows =
            Gen.run ~seed (Gen.flow_with_rows ~rows_per_flow:8)
          in
          check
            (Faults.check_csv_rejects_bad_rows rng ~trials:20
               ~specs:flow.Compaction.specs ~rows)
        done);
    Alcotest.test_case "floor survives injected bad rows" `Quick (fun () ->
        let rng = Rng.create 11 in
        for seed = 1 to 5 do
          check (Faults.check_floor_bad_rows rng ~trials:15 (flow_at seed))
        done);
  ]

(* ----------------------------- pool ------------------------------- *)

let pool_tests =
  [
    Alcotest.test_case "worker exception is contained" `Quick (fun () ->
        check (Faults.check_pool_worker_failure ~domains:1);
        check (Faults.check_pool_worker_failure ~domains:4));
    Alcotest.test_case "stalled worker loses no tasks" `Quick (fun () ->
        check (Faults.check_pool_worker_delay ~domains:4 ~delay_s:0.01));
    Alcotest.test_case "zero tasks and shutdown misuse" `Quick (fun () ->
        check (Faults.check_pool_misuse ()));
    Alcotest.test_case "one pool serves two job shapes" `Quick (fun () ->
        Pool.with_pool ~domains:3 (fun pool ->
            let squares = Array.make 64 0 in
            Pool.run pool ~n:64 (fun i -> squares.(i) <- i * i);
            Alcotest.(check int) "square job" 85344
              (Array.fold_left ( + ) 0 squares);
            let hits = Array.make 17 0 in
            Pool.run pool ~n:17 (fun i -> hits.(i) <- hits.(i) + 1);
            Alcotest.(check (array int)) "each task once" (Array.make 17 1)
              hits));
  ]

(* ---------------------------- selftest ----------------------------- *)

let selftest_tests =
  [
    Alcotest.test_case "reduced sweep passes" `Quick (fun () ->
        let report = Selftest.run ~seed:7 ~flows:12 ~rows_per_flow:6 () in
        if not (Selftest.ok report) then Alcotest.fail (Selftest.render report);
        let rendered = Selftest.render report in
        Alcotest.(check bool) "render carries the verdict" true
          (contains rendered "all sections passed"));
  ]

let suites =
  [
    ("qa.properties", property_tests);
    ("qa.flow_io_errors", flow_io_error_tests);
    ("qa.device_csv_errors", device_csv_tests);
    ("qa.floor_strict", floor_strict_tests);
    ("qa.faults", fault_tests);
    ("qa.pool", pool_tests);
    ("qa.selftest", selftest_tests);
  ]
