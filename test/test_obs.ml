(* Laws for the observability layer: the atomic metric registry must
   not lose concurrent updates (exercised through a real worker pool),
   histograms must conserve their observations, spans must nest
   well-formedly, and both text exporters must round-trip exactly. *)

module Obs = Stc_obs.Registry
module Trace = Stc_obs.Trace
module Json = Stc_obs.Json
module Clock = Stc_obs.Clock
module Pool = Stc_process.Pool
module Rng = Stc_numerics.Rng

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------ clock ----------------------------- *)

let clock_tests =
  [
    Alcotest.test_case "monotonic stub works on this platform" `Quick
      (fun () ->
        (* every deadline in the tree assumes this; if the C stub ever
           breaks, fail loudly here rather than hang a timeout *)
        Alcotest.(check bool) "CLOCK_MONOTONIC available" true
          Clock.monotonic);
    Alcotest.test_case "now never goes backwards" `Quick (fun () ->
        let prev = ref (Clock.now ()) in
        for _ = 1 to 10_000 do
          let t = Clock.now () in
          if t < !prev then
            Alcotest.failf "clock stepped back: %.9f -> %.9f" !prev t;
          prev := t
        done);
    Alcotest.test_case "now advances across a real sleep" `Quick (fun () ->
        let t0 = Clock.now () in
        Thread.delay 0.02;
        let dt = Clock.now () -. t0 in
        Alcotest.(check bool)
          (Printf.sprintf "measured %.4fs across a 20ms sleep" dt)
          true
          (dt >= 0.015 && dt < 10.0));
  ]

(* ----------------------------- counters --------------------------- *)

let counter_tests =
  [
    Alcotest.test_case "incr and add accumulate" `Quick (fun () ->
        let c = Obs.Counter.make () in
        Obs.Counter.incr c;
        Obs.Counter.add c 41;
        Alcotest.(check int) "42" 42 (Obs.Counter.get c));
    Alcotest.test_case "negative add rejected (monotone)" `Quick (fun () ->
        let c = Obs.Counter.make () in
        (match Obs.Counter.add c (-1) with
         | exception Invalid_argument _ -> ()
         | () -> Alcotest.fail "expected Invalid_argument");
        Alcotest.(check int) "untouched" 0 (Obs.Counter.get c));
    Alcotest.test_case "pool concurrency: domains x increments sum exactly"
      `Quick (fun () ->
        (* the race-freedom law: every increment from every worker
           domain lands; nothing is lost to a read-modify-write race *)
        let c = Obs.Counter.make () in
        let tasks = 64 and per_task = 2000 in
        Pool.with_pool ~domains:4 (fun pool ->
            Pool.run pool ~n:tasks (fun _ ->
                for _ = 1 to per_task do
                  Obs.Counter.incr c
                done));
        Alcotest.(check int) "exact sum" (tasks * per_task) (Obs.Counter.get c));
    Alcotest.test_case "gauge CAS add survives pool concurrency" `Quick
      (fun () ->
        (* 1.0 increments are exact in binary floating point, so the
           CAS retry loop must produce the exact integer total *)
        let g = Obs.Gauge.make () in
        let tasks = 64 and per_task = 500 in
        Pool.with_pool ~domains:4 (fun pool ->
            Pool.run pool ~n:tasks (fun _ ->
                for _ = 1 to per_task do
                  Obs.Gauge.add g 1.0
                done));
        Alcotest.(check (float 0.0)) "exact sum"
          (float_of_int (tasks * per_task))
          (Obs.Gauge.get g));
  ]

(* ---------------------------- histograms -------------------------- *)

let histogram_tests =
  [
    qtest
      (QCheck.Test.make ~name:"bucket counts sum to observation count"
         ~count:100
         QCheck.(small_list (float_range (-1.0) 200.0))
         (fun vs ->
           let h = Obs.Histogram.make () in
           List.iter (Obs.Histogram.observe h) vs;
           let total =
             Array.fold_left
               (fun acc (_, n) -> acc + n)
               0
               (Obs.Histogram.bucket_counts h)
           in
           total = List.length vs && Obs.Histogram.count h = List.length vs));
    qtest
      (QCheck.Test.make ~name:"sum equals the total of observations" ~count:100
         QCheck.(small_list (int_range 0 1000))
         (fun vs ->
           (* integers are exact, so no tolerance is needed even though
              the additions race through a CAS loop *)
           let h = Obs.Histogram.make () in
           List.iter (fun v -> Obs.Histogram.observe h (float_of_int v)) vs;
           Obs.Histogram.sum h
           = List.fold_left (fun a v -> a +. float_of_int v) 0.0 vs));
    Alcotest.test_case "bounds are inclusive upper edges" `Quick (fun () ->
        let h = Obs.Histogram.make ~buckets:[| 1.0; 2.0; 4.0 |] () in
        Obs.Histogram.observe h 1.0 (* lands in le_1 *);
        Obs.Histogram.observe h 1.5 (* lands in le_2 *);
        Obs.Histogram.observe h 100.0 (* overflow *);
        Alcotest.(check (array (pair (float 0.0) int)))
          "placement"
          [| (1.0, 1); (2.0, 1); (4.0, 0); (Float.infinity, 1) |]
          (Obs.Histogram.bucket_counts h));
    Alcotest.test_case "NaN counts in overflow without poisoning the sum"
      `Quick (fun () ->
        let h = Obs.Histogram.make ~buckets:[| 1.0 |] () in
        Obs.Histogram.observe h 0.5;
        Obs.Histogram.observe h Float.nan;
        Alcotest.(check int) "count" 2 (Obs.Histogram.count h);
        Alcotest.(check (float 0.0)) "sum" 0.5 (Obs.Histogram.sum h);
        Alcotest.(check int) "overflow" 1
          (snd (Obs.Histogram.bucket_counts h).(1)));
    Alcotest.test_case "invalid bucket bounds rejected" `Quick (fun () ->
        List.iter
          (fun buckets ->
            match Obs.Histogram.make ~buckets () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument")
          [ [||]; [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| Float.nan |] ]);
    Alcotest.test_case "time observes even when the thunk raises" `Quick
      (fun () ->
        let h = Obs.Histogram.make () in
        (match Obs.Histogram.time h (fun () -> failwith "boom") with
         | exception Failure _ -> ()
         | () -> Alcotest.fail "expected the exception to propagate");
        Alcotest.(check int) "observed" 1 (Obs.Histogram.count h));
  ]

(* ----------------------------- registry --------------------------- *)

(* A scratch registry with pseudo-random contents, driven by a seed so
   qcheck shrinks to a reproducible case. *)
let populate seed =
  let r = Obs.create () in
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng 6 in
  for i = 0 to n - 1 do
    match Rng.int rng 3 with
    | 0 ->
      let c = Obs.counter ~registry:r (Printf.sprintf "c%d_total" i) in
      Obs.Counter.add c (Rng.int rng 100000)
    | 1 ->
      let g = Obs.gauge ~registry:r (Printf.sprintf "g%d" i) in
      Obs.Gauge.set g (Rng.uniform rng (-1e9) 1e9)
    | _ ->
      let h = Obs.histogram ~registry:r (Printf.sprintf "h%d_s" i) in
      for _ = 0 to Rng.int rng 30 do
        Obs.Histogram.observe h (Rng.uniform rng 0.0 150.0)
      done
  done;
  r

let registry_tests =
  [
    Alcotest.test_case "lookups intern by name" `Quick (fun () ->
        let r = Obs.create () in
        Obs.Counter.incr (Obs.counter ~registry:r "stc_test_total");
        Obs.Counter.incr (Obs.counter ~registry:r "stc_test_total");
        Alcotest.(check int) "shared" 2
          (Obs.Counter.get (Obs.counter ~registry:r "stc_test_total")));
    Alcotest.test_case "kind clash rejected" `Quick (fun () ->
        let r = Obs.create () in
        ignore (Obs.counter ~registry:r "stc_test_total");
        (match Obs.gauge ~registry:r "stc_test_total" with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "bad names rejected" `Quick (fun () ->
        let r = Obs.create () in
        List.iter
          (fun name ->
            match Obs.counter ~registry:r name with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail ("accepted bad name " ^ name))
          [ ""; "has space"; "has:colon"; "has\nnewline" ]);
    Alcotest.test_case "flatten is sorted and complete" `Quick (fun () ->
        let r = Obs.create () in
        ignore (Obs.gauge ~registry:r "z");
        ignore (Obs.counter ~registry:r "a_total");
        let names = List.map fst (Obs.flatten ~registry:r ()) in
        Alcotest.(check (list string)) "sorted" [ "a_total"; "z" ] names);
    Alcotest.test_case "reset zeroes every metric" `Quick (fun () ->
        let r = populate 7 in
        Obs.reset ~registry:r ();
        List.iter
          (fun (name, v) ->
            if v <> 0.0 then Alcotest.fail (name ^ " survived reset"))
          (Obs.flatten ~registry:r ()));
    qtest
      (QCheck.Test.make ~name:"text export round-trips to the flatten view"
         ~count:200
         QCheck.(int_bound 100000)
         (fun seed ->
           let r = populate seed in
           Obs.parse_text (Obs.to_text ~registry:r ())
           = Ok (Obs.flatten ~registry:r ())));
    Alcotest.test_case "parse_text rejects junk" `Quick (fun () ->
        List.iter
          (fun text ->
            match Obs.parse_text text with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail ("parsed junk " ^ String.escaped text))
          [
            "";
            "wrong-header\ncounter a 1";
            "stc-metrics-1\nwidget a 1";
            "stc-metrics-1\ncounter a one";
            "stc-metrics-1\nhist h 1 2 nocolon";
          ]);
    Alcotest.test_case "json export carries every metric" `Quick (fun () ->
        let r = Obs.create () in
        Obs.Counter.add (Obs.counter ~registry:r "jobs_total") 3;
        Obs.Histogram.observe (Obs.histogram ~registry:r "lat_s") 0.5;
        let json = Obs.to_json ~registry:r () in
        List.iter
          (fun needle ->
            let found =
              let nl = String.length needle and jl = String.length json in
              let rec go i =
                i + nl <= jl && (String.sub json i nl = needle || go (i + 1))
              in
              go 0
            in
            if not found then Alcotest.fail ("missing " ^ needle))
          [ "\"jobs_total\": 3"; "\"lat_s\""; "\"count\": 1"; "\"buckets\"" ]);
  ]

(* ------------------------------ tracer ---------------------------- *)

(* Every tracer test runs with the global tracer freshly enabled and
   leaves it disabled and empty, so no other suite sees stray spans. *)
let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ();
      Trace.set_capacity 65536)
    f

let trace_tests =
  [
    Alcotest.test_case "disabled tracing records nothing" `Quick (fun () ->
        Trace.clear ();
        Alcotest.(check bool) "off" false (Trace.enabled ());
        Alcotest.(check int) "42" 42 (Trace.with_span "t" (fun () -> 42));
        Alcotest.(check int) "no spans" 0 (List.length (Trace.spans ())));
    Alcotest.test_case "spans record on exception too" `Quick (fun () ->
        with_tracing @@ fun () ->
        (match Trace.with_span "boom" (fun () -> failwith "x") with
         | exception Failure _ -> ()
         | () -> Alcotest.fail "expected the exception to propagate");
        match Trace.spans () with
        | [ (s, name) ] ->
          Alcotest.(check string) "name" "boom" name;
          Alcotest.(check bool) "root" true (s.Trace.parent = 0)
        | l -> Alcotest.fail (Printf.sprintf "%d spans" (List.length l)));
    qtest
      (QCheck.Test.make ~name:"random span trees nest well-formedly" ~count:50
         QCheck.(int_bound 100000)
         (fun seed ->
           with_tracing @@ fun () ->
           let rng = Rng.create seed in
           let rec tree depth =
             Trace.with_span
               (Printf.sprintf "n%d" depth)
               (fun () ->
                 if depth < 4 then
                   for _ = 1 to Rng.int rng 3 do
                     tree (depth + 1)
                   done)
           in
           for _ = 1 to 1 + Rng.int rng 4 do
             tree 0
           done;
           Trace.check_well_formed (Trace.spans ()) = Ok ()));
    qtest
      (QCheck.Test.make ~name:"trace text round-trips every field" ~count:50
         QCheck.(int_bound 100000)
         (fun seed ->
           with_tracing @@ fun () ->
           let rng = Rng.create seed in
           for i = 0 to 3 + Rng.int rng 5 do
             Trace.with_span
               (Printf.sprintf "op %d with spaces" i)
               (fun () -> Trace.with_span "inner" ignore)
           done;
           Trace.parse (Trace.to_text ()) = Ok (Trace.spans ())));
    Alcotest.test_case "eviction keeps parents of retained children" `Quick
      (fun () ->
        with_tracing @@ fun () ->
        Trace.set_capacity 8;
        for i = 0 to 49 do
          Trace.with_span
            (Printf.sprintf "root%d" i)
            (fun () -> Trace.with_span "child" (fun () -> Trace.with_span "grandchild" ignore))
        done;
        let spans = Trace.spans () in
        Alcotest.(check int) "bounded" 8 (List.length spans);
        match Trace.check_well_formed spans with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "pool workers trace as independent roots" `Quick
      (fun () ->
        with_tracing @@ fun () ->
        Pool.with_pool ~domains:4 (fun pool ->
            Pool.run pool ~n:16 (fun i ->
                Trace.with_span
                  (Printf.sprintf "task%d" i)
                  (fun () -> Trace.with_span "step" ignore)));
        let spans = Trace.spans () in
        Alcotest.(check int) "all recorded" 32 (List.length spans);
        (match Trace.check_well_formed spans with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
        (* nesting never crosses domains: each parent link stays on the
           worker that opened it (check_well_formed verifies this, but
           assert the root structure explicitly too) *)
        List.iter
          (fun (s, name) ->
            let is_root = s.Trace.parent = 0 in
            let is_task = String.length name >= 4 && String.sub name 0 4 = "task" in
            if is_task <> is_root then
              Alcotest.fail (name ^ ": wrong nesting level"))
          spans);
    Alcotest.test_case "invalid capacity rejected" `Quick (fun () ->
        match Trace.set_capacity 0 with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
  ]

(* ------------------------------- json ----------------------------- *)

let json_tests =
  [
    Alcotest.test_case "numbers use shortest round-trip form" `Quick (fun () ->
        Alcotest.(check string) "0.1" "0.1" (Json.num_to_string 0.1);
        Alcotest.(check string) "int" "42" (Json.num_to_string 42.0);
        Alcotest.(check string) "nan is null" "null" (Json.num_to_string Float.nan);
        Alcotest.(check string) "inf is null" "null"
          (Json.num_to_string Float.infinity);
        (* the shortest form must read back to the identical float *)
        let v = 0.069928169250488281 in
        Alcotest.(check (float 0.0)) "round trip" v
          (float_of_string (Json.num_to_string v)));
    Alcotest.test_case "strings escaped per RFC 8259" `Quick (fun () ->
        Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\n\\u0001\""
          (Json.to_string (Json.Str "a\"b\\c\n\x01")));
    Alcotest.test_case "compact and indented forms agree modulo whitespace"
      `Quick (fun () ->
        let doc =
          Json.Obj
            [
              ("name", Json.Str "x");
              ("xs", Json.List [ Json.Num 1.0; Json.Bool true; Json.Null ]);
            ]
        in
        let strip s =
          String.concat ""
            (String.split_on_char '\n'
               (String.concat ""
                  (String.split_on_char ' ' s)))
        in
        Alcotest.(check string) "same tokens"
          (strip (Json.to_string ~indent:false doc))
          (strip (Json.to_string ~indent:true doc)));
    Alcotest.test_case "of_string inverts to_string" `Quick (fun () ->
        let doc =
          Json.Obj
            [
              ("name", Json.Str "x\"y\\z\n\t\x02");
              ("unicode", Json.Str "\xc3\xa9\xe2\x82\xac");
              ( "xs",
                Json.List
                  [
                    Json.Num 1.5;
                    Json.Num (-0.25);
                    Json.Num 1e-300;
                    Json.Bool true;
                    Json.Bool false;
                    Json.Null;
                  ] );
              ("empty_list", Json.List []);
              ("empty_obj", Json.Obj []);
              ("nested", Json.Obj [ ("deep", Json.List [ Json.Obj [] ]) ]);
            ]
        in
        List.iter
          (fun indent ->
            match Json.of_string (Json.to_string ~indent doc) with
            | Ok back ->
              Alcotest.(check string)
                (Printf.sprintf "round trip (indent %b)" indent)
                (Json.to_string doc) (Json.to_string back)
            | Error e -> Alcotest.fail e)
          [ false; true ]);
    Alcotest.test_case "of_string accepts standard JSON forms" `Quick
      (fun () ->
        List.iter
          (fun (text, expected) ->
            match Json.of_string text with
            | Ok doc ->
              Alcotest.(check string)
                text expected
                (Json.to_string ~indent:false doc)
            | Error e -> Alcotest.fail (text ^ ": " ^ e))
          [
            ("  null  ", "null");
            ("-1.25e2", "-125");
            ("\"\\u00e9\\u20ac\"", "\"\xc3\xa9\xe2\x82\xac\"");
            ("\"\\ud83d\\ude00\"", "\"\xf0\x9f\x98\x80\"");
            ("[1,2,[3]]", "[1,2,[3]]");
            ("{\"a\": {\"b\": []}}", "{\"a\":{\"b\":[]}}");
          ]);
    Alcotest.test_case "of_string rejects malformed documents" `Quick
      (fun () ->
        List.iter
          (fun text ->
            match Json.of_string text with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed" text))
          [
            "";
            "nul";
            "{";
            "[1,]";
            "{\"a\":}";
            "{\"a\" 1}";
            "\"unterminated";
            "\"bad \\q escape\"";
            "01";
            "1 2";
            "[1] trailing";
            "\"\\ud83d\"";
            "nan";
          ]);
    Alcotest.test_case "member looks up object fields" `Quick (fun () ->
        let doc = Json.Obj [ ("a", Json.Num 1.0); ("b", Json.Null) ] in
        Alcotest.(check bool) "hit" true (Json.member "a" doc = Some (Json.Num 1.0));
        Alcotest.(check bool) "miss" true (Json.member "c" doc = None);
        Alcotest.(check bool) "non-object" true
          (Json.member "a" (Json.List []) = None));
    Alcotest.test_case "registry JSON export parses with of_string" `Quick
      (fun () ->
        let r = Obs.create () in
        let c = Obs.counter ~registry:r "stc_test_json_total" in
        Obs.Counter.add c 7;
        let h = Obs.histogram ~registry:r "stc_test_json_s" in
        Obs.Histogram.observe h 0.004;
        match Json.of_string (Obs.to_json ~registry:r ()) with
        | Error e -> Alcotest.fail e
        | Ok doc ->
          (match Json.member "stc_test_json_total" doc with
           | Some (Json.Num v) -> Alcotest.(check (float 0.0)) "counter" 7.0 v
           | _ -> Alcotest.fail "counter missing from JSON export");
          (match Json.member "stc_test_json_s" doc with
           | Some (Json.Obj _ as h) -> (
             match Json.member "count" h with
             | Some (Json.Num c) ->
               Alcotest.(check (float 0.0)) "histogram count" 1.0 c
             | _ -> Alcotest.fail "histogram lacks a count")
           | _ -> Alcotest.fail "histogram missing from JSON export"));
  ]

(* A writer storm against a concurrent exporter: every export must be a
   parseable snapshot, and the final counts must be exact — the lock-free
   registry never tears or drops an increment. *)
let concurrency_tests =
  [
    Alcotest.test_case "export while incrementing stays consistent" `Quick
      (fun () ->
        let r = Obs.create () in
        let c = Obs.counter ~registry:r "stc_storm_total" in
        let g = Obs.gauge ~registry:r "stc_storm_level" in
        let writers = 4 in
        let per_writer = 5000 in
        let stop = Atomic.make false in
        let exports = ref 0 in
        let export_errors = ref [] in
        let exporter =
          Thread.create
            (fun () ->
              while not (Atomic.get stop) do
                (match Obs.parse_text (Obs.to_text ~registry:r ()) with
                 | Ok flat ->
                   incr exports;
                   (match List.assoc_opt "stc_storm_total" flat with
                    | Some v ->
                      if
                        v < 0.0
                        || v > float_of_int (writers * per_writer)
                        || Float.rem v 1.0 <> 0.0
                      then
                        export_errors :=
                          Printf.sprintf "torn counter value %g" v
                          :: !export_errors
                    | None ->
                      export_errors := "counter missing" :: !export_errors)
                 | Error e -> export_errors := e :: !export_errors);
                Thread.yield ()
              done)
            ()
        in
        let ts =
          List.init writers (fun k ->
              Thread.create
                (fun () ->
                  for i = 1 to per_writer do
                    Obs.Counter.incr c;
                    if i mod 64 = 0 then begin
                      Obs.Gauge.set g (float_of_int (k + i));
                      (* hand the runtime lock over so the exporter
                         really interleaves with the storm *)
                      Thread.yield ()
                    end
                  done)
                ())
        in
        List.iter Thread.join ts;
        (* never stop before the exporter has taken at least one
           snapshot, or the race assertion below is vacuous *)
        let spins = ref 0 in
        while !exports = 0 && !spins < 10_000 do
          incr spins;
          Thread.delay 0.001
        done;
        Atomic.set stop true;
        Thread.join exporter;
        (match !export_errors with
         | [] -> ()
         | e :: _ -> Alcotest.fail e);
        Alcotest.(check bool) "exporter actually raced the writers" true
          (!exports > 0);
        Alcotest.(check int) "no increment lost" (writers * per_writer)
          (Obs.Counter.get c));
  ]

let suites =
  [
    ("obs clock", clock_tests);
    ("obs counters", counter_tests);
    ("obs histograms", histogram_tests);
    ("obs registry", registry_tests);
    ("obs tracer", trace_tests);
    ("obs json", json_tests);
    ("obs concurrency", concurrency_tests);
  ]
