(* Tests for the SVM substrate: kernels, the SMO solver, SVC, SVR,
   scaling, metrics and cross-validation. *)

module Kernel = Stc_svm.Kernel
module Smo = Stc_svm.Smo
module Svc = Stc_svm.Svc
module Svr = Stc_svm.Svr
module Scale = Stc_svm.Scale
module Metrics_bin = Stc_svm.Metrics_bin
module Cross_val = Stc_svm.Cross_val
module Row_cache = Stc_svm.Row_cache
module Rng = Stc_numerics.Rng

let check_close tol = Alcotest.(check (float tol))

let qtest = QCheck_alcotest.to_alcotest

let vec_pair =
  QCheck.(pair (array_of_size (Gen.return 4) (float_range (-5.) 5.))
            (array_of_size (Gen.return 4) (float_range (-5.) 5.)))

let kernel_tests =
  [
    Alcotest.test_case "linear kernel is dot product" `Quick (fun () ->
        check_close 1e-12 "dot" 11.0
          (Kernel.eval Kernel.linear [| 1.; 2. |] [| 3.; 4. |]));
    Alcotest.test_case "rbf at zero distance is 1" `Quick (fun () ->
        check_close 1e-12 "k(x,x)" 1.0
          (Kernel.eval (Kernel.rbf 0.5) [| 1.; 2. |] [| 1.; 2. |]));
    Alcotest.test_case "default gamma" `Quick (fun () ->
        check_close 1e-12 "1/dim" 0.25 (Kernel.default_gamma ~dim:4));
    qtest
      (QCheck.Test.make ~name:"kernels are symmetric" ~count:200 vec_pair
         (fun (x, y) ->
           List.for_all
             (fun k ->
               let a = Kernel.eval k x y and b = Kernel.eval k y x in
               Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a))
             [ Kernel.linear; Kernel.rbf 0.3;
               Kernel.Polynomial { gamma = 0.5; coef0 = 1.0; degree = 3 };
               Kernel.Sigmoid { gamma = 0.1; coef0 = 0.0 } ]));
    qtest
      (QCheck.Test.make ~name:"rbf bounded by (0,1]" ~count:200 vec_pair
         (fun (x, y) ->
           let v = Kernel.eval (Kernel.rbf 0.7) x y in
           v > 0.0 && v <= 1.0));
    qtest
      (QCheck.Test.make ~name:"rbf 2x2 gram is PSD" ~count:200 vec_pair
         (fun (x, y) ->
           let k = Kernel.rbf 0.4 in
           let kxx = Kernel.eval k x x and kyy = Kernel.eval k y y in
           let kxy = Kernel.eval k x y in
           (* PSD for 2 points: det >= 0 and trace >= 0 *)
           (kxx *. kyy) -. (kxy *. kxy) >= -1e-9));
  ]

(* Analytic two-point SVC problem: points x=-1 (y=-1), x=+1 (y=+1) with
   linear kernel. Dual optimum: alpha1 = alpha2 = 0.5 (unbounded C),
   decision f(x) = x. *)
let smo_tests =
  [
    Alcotest.test_case "two-point analytic optimum" `Quick (fun () ->
        let x = [| [| -1.0 |]; [| 1.0 |] |] in
        let y = [| -1.0; 1.0 |] in
        let q_row i =
          Array.init 2 (fun j -> y.(i) *. y.(j) *. (x.(i).(0) *. x.(j).(0)))
        in
        let problem =
          {
            Smo.size = 2;
            q_row;
            q_diag = [| 1.0; 1.0 |];
            p = [| -1.0; -1.0 |];
            y;
            c = [| 100.0; 100.0 |];
          }
        in
        let sol = Smo.solve problem in
        check_close 1e-6 "alpha0" 0.5 sol.Smo.alpha.(0);
        check_close 1e-6 "alpha1" 0.5 sol.Smo.alpha.(1);
        check_close 1e-6 "rho" 0.0 sol.Smo.rho);
    Alcotest.test_case "box constraints respected" `Quick (fun () ->
        let rng = Rng.create 9 in
        let n = 40 in
        let x = Array.init n (fun _ -> [| Rng.uniform rng (-1.) 1.; Rng.uniform rng (-1.) 1. |]) in
        let y = Array.init n (fun i -> if x.(i).(0) +. x.(i).(1) > 0.0 then 1.0 else -1.0) in
        let k = Kernel.rbf 1.0 in
        let q_row i = Array.init n (fun j -> y.(i) *. y.(j) *. Kernel.eval k x.(i) x.(j)) in
        let c = 2.5 in
        let problem =
          {
            Smo.size = n;
            q_row;
            q_diag = Array.init n (fun i -> Kernel.eval k x.(i) x.(i));
            p = Array.make n (-1.0);
            y;
            c = Array.make n c;
          }
        in
        let sol = Smo.solve problem in
        Array.iter
          (fun a ->
            Alcotest.(check bool) "0 <= a <= C" true (a >= -1e-9 && a <= c +. 1e-9))
          sol.Smo.alpha;
        (* equality constraint y^T alpha = 0 *)
        let dot = ref 0.0 in
        Array.iteri (fun i a -> dot := !dot +. (y.(i) *. a)) sol.Smo.alpha;
        check_close 1e-6 "y.alpha" 0.0 !dot);
    Alcotest.test_case "objective decreases vs zero start" `Quick (fun () ->
        (* at alpha = 0 the SVC objective is 0; the optimum must be <= 0 *)
        let x = [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |] in
        let y = [| -1.0; -1.0; 1.0; 1.0 |] in
        let k = Kernel.rbf 0.5 in
        let q_row i = Array.init 4 (fun j -> y.(i) *. y.(j) *. Kernel.eval k x.(i) x.(j)) in
        let problem =
          {
            Smo.size = 4;
            q_row;
            q_diag = Array.init 4 (fun i -> Kernel.eval k x.(i) x.(i));
            p = Array.make 4 (-1.0);
            y;
            c = Array.make 4 10.0;
          }
        in
        let sol = Smo.solve problem in
        Alcotest.(check bool) "obj <= 0" true (sol.Smo.objective <= 1e-9));
  ]

let svc_tests =
  [
    Alcotest.test_case "separates linear data" `Quick (fun () ->
        let rng = Rng.create 4 in
        let make n =
          Array.init n (fun _ ->
              let a = Rng.uniform rng (-1.) 1. and b = Rng.uniform rng (-1.) 1. in
              ([| a; b |], if a +. b > 0.1 || a +. b < -0.1 then
                 (if a +. b > 0.0 then 1 else -1) else if Rng.bool rng then 1 else -1))
        in
        let data = make 200 in
        let x = Array.map fst data and y = Array.map snd data in
        let m = Svc.train ~c:1.0 ~kernel:Kernel.linear ~x ~y () in
        let correct =
          Array.fold_left
            (fun acc (xi, yi) -> if Svc.predict m xi = yi then acc + 1 else acc)
            0 data
        in
        Alcotest.(check bool) "90%+ train accuracy" true (correct > 180));
    Alcotest.test_case "xor needs rbf" `Quick (fun () ->
        let x = [| [| 0.; 0. |]; [| 0.; 1. |]; [| 1.; 0. |]; [| 1.; 1. |] |] in
        let y = [| -1; 1; 1; -1 |] in
        let m = Svc.train ~c:100.0 ~kernel:(Kernel.rbf 2.0) ~x ~y () in
        Array.iteri
          (fun i xi -> Alcotest.(check int) "xor" y.(i) (Svc.predict m xi))
          x);
    Alcotest.test_case "decision sign consistent with predict" `Quick (fun () ->
        let x = [| [| 0. |]; [| 1. |]; [| 2. |]; [| 3. |] |] in
        let y = [| -1; -1; 1; 1 |] in
        let m = Svc.train ~x ~y () in
        Array.iter
          (fun xi ->
            let d = Svc.decision m xi and p = Svc.predict m xi in
            Alcotest.(check bool) "sign" true ((d >= 0.0) = (p = 1)))
          x);
    Alcotest.test_case "rejects bad labels" `Quick (fun () ->
        (match Svc.train ~x:[| [| 0. |] |] ~y:[| 2 |] () with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "rejects single class" `Quick (fun () ->
        (match Svc.train ~x:[| [| 0. |]; [| 1. |] |] ~y:[| 1; 1 |] () with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "support vectors bounded by data" `Quick (fun () ->
        let rng = Rng.create 12 in
        let n = 100 in
        let x = Array.init n (fun _ -> [| Rng.uniform rng (-1.) 1. |]) in
        let y = Array.map (fun xi -> if xi.(0) > 0.0 then 1 else -1) x in
        let m = Svc.train ~c:1.0 ~x ~y () in
        Alcotest.(check bool) "nsv <= n" true (Svc.n_support m <= n);
        Alcotest.(check bool) "margin points only" true (Svc.n_support m < n));
  ]

let svr_tests =
  [
    Alcotest.test_case "fits a line within epsilon" `Quick (fun () ->
        let x = Array.init 30 (fun i -> [| float_of_int i /. 10.0 |]) in
        let y = Array.map (fun xi -> (2.0 *. xi.(0)) -. 1.0) x in
        let m = Svr.train ~c:100.0 ~epsilon:0.05 ~kernel:Kernel.linear ~x ~y () in
        Array.iteri
          (fun i xi ->
            Alcotest.(check bool) "within tube" true
              (Float.abs (Svr.predict m xi -. y.(i)) <= 0.06))
          x);
    Alcotest.test_case "fits sin with rbf" `Quick (fun () ->
        let x = Array.init 60 (fun i -> [| float_of_int i /. 60.0 *. 6.28 |]) in
        let y = Array.map (fun xi -> sin xi.(0)) x in
        let m = Svr.train ~c:100.0 ~epsilon:0.02 ~kernel:(Kernel.rbf 1.0) ~x ~y () in
        let max_err =
          Array.fold_left
            (fun acc xi -> Float.max acc (Float.abs (Svr.predict m xi -. sin xi.(0))))
            0.0 x
        in
        Alcotest.(check bool) "max err < 0.05" true (max_err < 0.05));
    Alcotest.test_case "classifies by sign on +-1 targets" `Quick (fun () ->
        let x = Array.init 40 (fun i -> [| float_of_int i |]) in
        let y = Array.map (fun xi -> if xi.(0) >= 20.0 then 1.0 else -1.0) x in
        let m = Svr.train ~c:10.0 ~epsilon:0.1 ~kernel:(Kernel.rbf 0.01) ~x ~y () in
        let errs =
          Array.fold_left
            (fun acc xi ->
              let truth = if xi.(0) >= 20.0 then 1 else -1 in
              if Svr.classify m xi <> truth then acc + 1 else acc)
            0 x
        in
        Alcotest.(check bool) "at most 2 boundary errors" true (errs <= 2));
    Alcotest.test_case "constant target stays in tube" `Quick (fun () ->
        let x = Array.init 10 (fun i -> [| float_of_int i |]) in
        let y = Array.make 10 3.0 in
        let m = Svr.train ~c:10.0 ~epsilon:0.1 ~x ~y () in
        Alcotest.(check bool) "predicts ~3" true
          (Float.abs (Svr.predict m [| 4.5 |] -. 3.0) <= 0.15));
    Alcotest.test_case "rejects negative epsilon" `Quick (fun () ->
        (match Svr.train ~epsilon:(-1.0) ~x:[| [| 0. |] |] ~y:[| 0.0 |] () with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

let scale_tests =
  [
    Alcotest.test_case "minmax maps to [0,1]" `Quick (fun () ->
        let x = [| [| 0.0; 10.0 |]; [| 5.0; 20.0 |]; [| 10.0; 30.0 |] |] in
        let s = Scale.fit_minmax x in
        Alcotest.(check (array (float 1e-12))) "first row" [| 0.0; 0.0 |]
          (Scale.apply s x.(0));
        Alcotest.(check (array (float 1e-12))) "last row" [| 1.0; 1.0 |]
          (Scale.apply s x.(2));
        Alcotest.(check (array (float 1e-12))) "mid row" [| 0.5; 0.5 |]
          (Scale.apply s x.(1)));
    Alcotest.test_case "constant feature maps to midpoint" `Quick (fun () ->
        let x = [| [| 7.0 |]; [| 7.0 |] |] in
        let s = Scale.fit_minmax x in
        Alcotest.(check (array (float 1e-12))) "mid" [| 0.5 |] (Scale.apply s x.(0)));
    Alcotest.test_case "standard scaling zero mean unit sd" `Quick (fun () ->
        let x = [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |]; [| 4.0 |] |] in
        let s = Scale.fit_standard x in
        let scaled = Scale.apply_all s x in
        let col = Array.map (fun r -> r.(0)) scaled in
        check_close 1e-9 "mean" 0.0 (Stc_numerics.Stats.mean col);
        check_close 1e-9 "sd" 1.0 (Stc_numerics.Stats.stddev col));
  ]

let metrics_tests =
  [
    Alcotest.test_case "confusion and rates" `Quick (fun () ->
        let truth = [| 1; 1; -1; -1; 1 |] in
        let predicted = [| 1; -1; -1; 1; 1 |] in
        let c = Metrics_bin.confusion ~truth ~predicted in
        Alcotest.(check int) "tp" 2 c.Metrics_bin.tp;
        Alcotest.(check int) "fn" 1 c.Metrics_bin.fn;
        Alcotest.(check int) "fp" 1 c.Metrics_bin.fp;
        Alcotest.(check int) "tn" 1 c.Metrics_bin.tn;
        check_close 1e-12 "accuracy" 0.6 (Metrics_bin.accuracy c);
        check_close 1e-12 "precision" (2.0 /. 3.0) (Metrics_bin.precision c);
        check_close 1e-12 "recall" (2.0 /. 3.0) (Metrics_bin.recall c));
    Alcotest.test_case "empty-safe rates" `Quick (fun () ->
        let c = Metrics_bin.confusion ~truth:[||] ~predicted:[||] in
        check_close 0.0 "accuracy" 0.0 (Metrics_bin.accuracy c);
        check_close 0.0 "f1" 0.0 (Metrics_bin.f1 c));
  ]

let cross_val_tests =
  [
    Alcotest.test_case "kfold partitions all indices" `Quick (fun () ->
        let rng = Rng.create 2 in
        let folds = Cross_val.kfold_indices rng ~n:23 ~folds:5 in
        let all = Array.concat (Array.to_list folds) in
        Array.sort compare all;
        Alcotest.(check (array int)) "partition" (Array.init 23 (fun i -> i)) all);
    Alcotest.test_case "cv accuracy high on separable data" `Quick (fun () ->
        let rng = Rng.create 6 in
        let n = 120 in
        let x = Array.init n (fun _ -> [| Rng.uniform rng (-1.) 1. |]) in
        let y = Array.map (fun xi -> if xi.(0) > 0.0 then 1 else -1) x in
        let acc = Cross_val.svc_accuracy ~c:10.0 (Rng.create 1) ~x ~y ~folds:4 in
        Alcotest.(check bool) "acc > 0.9" true (acc > 0.9));
    Alcotest.test_case "grid search picks a winner" `Quick (fun () ->
        let rng = Rng.create 8 in
        let n = 80 in
        let x = Array.init n (fun _ -> [| Rng.uniform rng (-1.) 1.; Rng.uniform rng (-1.) 1. |]) in
        let y = Array.map (fun xi -> if xi.(0) *. xi.(1) > 0.0 then 1 else -1) x in
        let r =
          Cross_val.grid_search_svc (Rng.create 3) ~x ~y ~folds:3
            ~cs:[| 1.0; 10.0 |] ~gammas:[| 0.5; 2.0 |]
        in
        Alcotest.(check bool) "reasonable accuracy" true
          (r.Cross_val.accuracy > 0.7));
  ]

let cache_tests =
  [
    Alcotest.test_case "caches and evicts" `Quick (fun () ->
        let calls = ref 0 in
        let cache =
          Row_cache.create ~size:10 ~row_bytes:8 ~budget_bytes:(8 * 16)
            (fun i ->
              incr calls;
              [| float_of_int i |])
        in
        (* 16-row capacity; touch 3 rows twice: 3 misses, 3 hits *)
        List.iter (fun i -> ignore (Row_cache.get cache i)) [ 0; 1; 2; 0; 1; 2 ];
        Alcotest.(check int) "computed once each" 3 !calls;
        Alcotest.(check int) "hits" 3 (Row_cache.hits cache));
    Alcotest.test_case "eviction keeps working" `Quick (fun () ->
        let cache =
          Row_cache.create ~size:100 ~row_bytes:8 ~budget_bytes:(8 * 16)
            (fun i -> [| float_of_int i |])
        in
        for i = 0 to 99 do
          let r = Row_cache.get cache i in
          Alcotest.(check (float 0.0)) "value" (float_of_int i) r.(0)
        done);
  ]

module Platt = Stc_svm.Platt

let platt_tests =
  [
    Alcotest.test_case "probabilities bounded and monotone" `Quick (fun () ->
        (* clearly separated decision values: f > 0 means +1 *)
        let decision_values = [| -3.0; -2.0; -1.0; 1.0; 2.0; 3.0 |] in
        let labels = [| -1; -1; -1; 1; 1; 1 |] in
        let t = Platt.fit ~decision_values ~labels in
        let previous = ref (-1.0) in
        List.iter
          (fun f ->
            let p = Platt.probability t f in
            Alcotest.(check bool) "in (0,1)" true (p > 0.0 && p < 1.0);
            Alcotest.(check bool) "monotone in f" true (p >= !previous);
            previous := p)
          [ -4.0; -2.0; 0.0; 2.0; 4.0 ]);
    Alcotest.test_case "separating point maps near 0.5" `Quick (fun () ->
        let rng = Rng.create 21 in
        let decision_values = Array.init 200 (fun _ -> Rng.uniform rng (-2.0) 2.0) in
        let labels = Array.map (fun f -> if f > 0.0 then 1 else -1) decision_values in
        let t = Platt.fit ~decision_values ~labels in
        let p0 = Platt.probability t 0.0 in
        Alcotest.(check bool) "p(0) ~ 0.5" true (p0 > 0.3 && p0 < 0.7);
        Alcotest.(check bool) "confident positive" true (Platt.probability t 2.0 > 0.8);
        Alcotest.(check bool) "confident negative" true (Platt.probability t (-2.0) < 0.2));
    Alcotest.test_case "noisy overlap gives soft probabilities" `Quick (fun () ->
        let rng = Rng.create 22 in
        let decision_values = Array.init 400 (fun _ -> Rng.uniform rng (-1.0) 1.0) in
        let labels =
          Array.map
            (fun f ->
              (* 75% agreement with the sign: noisy boundary *)
              if Rng.float rng < 0.75 then (if f > 0.0 then 1 else -1)
              else if f > 0.0 then -1
              else 1)
            decision_values
        in
        let t = Platt.fit ~decision_values ~labels in
        let p1 = Platt.probability t 1.0 in
        Alcotest.(check bool) "soft, not saturated" true (p1 > 0.55 && p1 < 0.95));
    Alcotest.test_case "calibrated svc end to end" `Quick (fun () ->
        let rng = Rng.create 23 in
        let n = 200 in
        let x = Array.init n (fun _ -> [| Rng.uniform rng (-1.) 1. |]) in
        let y = Array.map (fun xi -> if xi.(0) > 0.0 then 1 else -1) x in
        let m = Svc.train ~c:10.0 ~x ~y () in
        let t = Platt.calibrate_svc m ~x ~y in
        Alcotest.(check bool) "deep positive is confident" true
          (Platt.probability t (Svc.decision m [| 0.8 |]) > 0.9);
        Alcotest.(check bool) "deep negative is confident" true
          (Platt.probability t (Svc.decision m [| -0.8 |]) < 0.1);
        Alcotest.(check int) "classify_at threshold" 1
          (Platt.classify_at t ~threshold:0.5 (Svc.decision m [| 0.8 |])));
    Alcotest.test_case "length mismatch rejected" `Quick (fun () ->
        (match Platt.fit ~decision_values:[| 1.0 |] ~labels:[| 1; -1 |] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

(* SMO optimality spot-check: the solver's objective must beat random
   feasible points of the same dual problem. *)
let smo_optimality_tests =
  [
    Alcotest.test_case "solver beats random feasible alphas" `Quick (fun () ->
        let rng = Rng.create 31 in
        let n = 30 in
        let x = Array.init n (fun _ -> [| Rng.uniform rng (-1.) 1.; Rng.uniform rng (-1.) 1. |]) in
        let y = Array.init n (fun i -> if x.(i).(0) > 0.0 then 1.0 else -1.0) in
        let k = Kernel.rbf 1.0 in
        let q i j = y.(i) *. y.(j) *. Kernel.eval k x.(i) x.(j) in
        let c = 5.0 in
        let problem =
          {
            Smo.size = n;
            q_row = (fun i -> Array.init n (fun j -> q i j));
            q_diag = Array.init n (fun i -> Kernel.eval k x.(i) x.(i));
            p = Array.make n (-1.0);
            y;
            c = Array.make n c;
          }
        in
        let sol = Smo.solve problem in
        let objective alpha =
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              acc := !acc +. (0.5 *. alpha.(i) *. alpha.(j) *. q i j)
            done;
            acc := !acc -. alpha.(i)
          done;
          !acc
        in
        let solver_obj = objective sol.Smo.alpha in
        (* random feasible points: draw, then project y.alpha back to 0 by
           pairing a positive- and a negative-label coordinate *)
        for _ = 1 to 20 do
          let alpha = Array.init n (fun _ -> Rng.uniform rng 0.0 c) in
          (* repair the equality constraint roughly: shift along a +/- pair *)
          let dot = ref 0.0 in
          Array.iteri (fun i a -> dot := !dot +. (y.(i) *. a)) alpha;
          (* find adjustable coordinates *)
          (try
             for i = 0 to n - 1 do
               let adjust = -. !dot *. y.(i) in
               let target = alpha.(i) +. adjust in
               if target >= 0.0 && target <= c then begin
                 alpha.(i) <- target;
                 dot := 0.0;
                 raise Exit
               end
             done
           with Exit -> ());
          if Float.abs !dot < 1e-9 then
            Alcotest.(check bool) "no feasible point beats the solver" true
              (objective alpha >= solver_obj -. 1e-6)
        done);
  ]

module Flat = Stc_svm.Flat
module Pool = Stc_process.Pool

(* Table-driven pins for the gamma heuristics: the flat-storage refactor
   must not shift them. [median_gamma] samples pairs deterministically
   (offsets < 8 or multiples of n/64), so small inputs enumerate all
   pairs and the medians below are hand-computable. *)
let gamma_tests =
  [
    Alcotest.test_case "default gamma table" `Quick (fun () ->
        List.iter
          (fun (dim, expected) ->
            check_close 0.0
              (Printf.sprintf "1/%d" dim)
              expected
              (Kernel.default_gamma ~dim))
          [ (1, 1.0); (2, 0.5); (4, 0.25); (8, 0.125); (10, 0.1) ]);
    Alcotest.test_case "default gamma rejects non-positive dim" `Quick
      (fun () ->
        Alcotest.check_raises "dim 0"
          (Invalid_argument "Kernel.default_gamma: dim must be positive")
          (fun () -> ignore (Kernel.default_gamma ~dim:0)));
    Alcotest.test_case "median gamma table" `Quick (fun () ->
        List.iter
          (fun (name, x, expected) ->
            check_close 0.0 name expected (Kernel.median_gamma x))
          [
            (* two points, one distance: ‖0−2‖² = 4, median 4, γ = 1/4 *)
            ("two points", [| [| 0.0 |]; [| 2.0 |] |], 0.25);
            (* distances {1, 4, 9} listed by offset: median 4 → 1/4 *)
            ("three points", [| [| 0.0 |]; [| 1.0 |]; [| 3.0 |] |], 0.25);
            (* distances {1,1,1,4,4,9} sorted, index 3 → 4 → 1/4 *)
            ( "four collinear",
              [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |],
              0.25 );
            (* zero-distance pair is excluded: remaining {4, 4} → 1/4 *)
            ( "duplicate point excluded",
              [| [| 0.0 |]; [| 0.0 |]; [| 2.0 |] |],
              0.25 );
            (* 2-D: ‖(0,0)−(1,1)‖² = 2 → 1/2 *)
            ("two 2-D points", [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |] |], 0.5);
          ]);
    Alcotest.test_case "median gamma degenerate fallbacks" `Quick (fun () ->
        (* fewer than two points: flat 1.0 *)
        check_close 0.0 "empty" 1.0 (Kernel.median_gamma [||]);
        check_close 0.0 "single" 1.0 (Kernel.median_gamma [| [| 7.0 |] |]);
        (* all points identical: no nonzero distance → default 1/dim *)
        check_close 0.0 "identical 2-D" 0.5
          (Kernel.median_gamma [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |]));
  ]

let flat_tests =
  [
    Alcotest.test_case "flat round trip and accessors" `Quick (fun () ->
        let rows = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
        let fx = Flat.of_rows rows in
        Alcotest.(check int) "n" 3 (Flat.n_rows fx);
        Alcotest.(check int) "dim" 2 (Flat.dim fx);
        Alcotest.(check (array (float 0.0))) "row 1" rows.(1) (Flat.row fx 1);
        check_close 0.0 "get" 6.0 (Flat.get fx 2 1);
        check_close 0.0 "dot 0·1" 11.0 (Flat.dot fx 0 1);
        check_close 0.0 "dot 1·2" 39.0 (Flat.dot fx 1 2);
        check_close 0.0 "dist2" 8.0 (Flat.dist2 fx 0 1);
        check_close 0.0 "dot_vec" 11.0 (Flat.dot_vec fx 0 [| 3.0; 4.0 |]));
    Alcotest.test_case "flat rejects ragged and bad indices" `Quick (fun () ->
        Alcotest.check_raises "ragged"
          (Invalid_argument "Flat.of_rows: ragged row 1 (1 <> 2)") (fun () ->
            ignore (Flat.of_rows [| [| 1.0; 2.0 |]; [| 3.0 |] |]));
        let fx = Flat.of_rows [| [| 1.0 |] |] in
        Alcotest.check_raises "row out of range"
          (Invalid_argument "Flat: row 1") (fun () -> ignore (Flat.row fx 1));
        Alcotest.check_raises "vec mismatch"
          (Invalid_argument "Flat: vector length 2 <> dim 1") (fun () ->
            ignore (Flat.dot_vec fx 0 [| 1.0; 2.0 |])));
  ]

(* Parallel CV must be bit-identical to serial: same winners, same fold
   scores, to the last bit, whatever the domain count and even after a
   worker stall on the same pool. *)
let parallel_cv_tests =
  let make_data seed n =
    let rng = Rng.create seed in
    let x =
      Array.init n (fun _ ->
          [| Rng.uniform rng (-1.) 1.; Rng.uniform rng (-1.) 1. |])
    in
    let y = Array.map (fun xi -> if xi.(0) +. xi.(1) > 0.0 then 1 else -1) x in
    (x, y)
  in
  let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let check_grid_equal msg (a : Cross_val.grid_result) (b : Cross_val.grid_result) =
    Alcotest.(check (float 0.0)) (msg ^ ": c") a.Cross_val.c b.Cross_val.c;
    Alcotest.(check (float 0.0)) (msg ^ ": gamma") a.Cross_val.gamma
      b.Cross_val.gamma;
    Alcotest.(check bool) (msg ^ ": accuracy bit-identical") true
      (bits_equal a.Cross_val.accuracy b.Cross_val.accuracy)
  in
  let cs = [| 1.0; 10.0 |] and gammas = [| 0.5; 1.0; 2.0 |] in
  [
    Alcotest.test_case "grid search bit-identical across 1/2/4 domains"
      `Quick (fun () ->
        let x, y = make_data 41 60 in
        let serial =
          Cross_val.grid_search_svc (Rng.create 5) ~x ~y ~folds:3 ~cs ~gammas
        in
        List.iter
          (fun domains ->
            let parallel =
              Pool.with_pool ~domains (fun pool ->
                  Cross_val.grid_search_svc ~pool (Rng.create 5) ~x ~y ~folds:3
                    ~cs ~gammas)
            in
            check_grid_equal
              (Printf.sprintf "%d domains" domains)
              serial parallel)
          [ 1; 2; 4 ]);
    Alcotest.test_case "fold scores bit-identical serial vs pool" `Quick
      (fun () ->
        let x, y = make_data 43 50 in
        let serial =
          Cross_val.svc_fold_scores ~c:5.0 (Rng.create 9) ~x ~y ~folds:5
        in
        let parallel =
          Pool.with_pool ~domains:4 (fun pool ->
              Cross_val.svc_fold_scores ~c:5.0 ~pool (Rng.create 9) ~x ~y
                ~folds:5)
        in
        Alcotest.(check int) "fold count" (Array.length serial)
          (Array.length parallel);
        Array.iteri
          (fun f s ->
            Alcotest.(check bool)
              (Printf.sprintf "fold %d bit-identical" f)
              true (bits_equal s parallel.(f)))
          serial);
    Alcotest.test_case "svr sign accuracy bit-identical serial vs pool" `Quick
      (fun () ->
        let x, yi = make_data 47 40 in
        let y = Array.map float_of_int yi in
        let serial =
          Cross_val.svr_sign_accuracy ~c:5.0 (Rng.create 11) ~x ~y ~folds:4
        in
        let parallel =
          Pool.with_pool ~domains:3 (fun pool ->
              Cross_val.svr_sign_accuracy ~c:5.0 ~pool (Rng.create 11) ~x ~y
                ~folds:4)
        in
        Alcotest.(check bool) "bit-identical" true (bits_equal serial parallel));
    Alcotest.test_case "grid search survives an injected stalling worker"
      `Quick (fun () ->
        (* the Faults harness first: a stalled worker must not lose work *)
        (match Stc_qa.Faults.check_pool_worker_delay ~domains:4 ~delay_s:0.05 with
        | Ok () -> ()
        | Error e -> Alcotest.failf "pool fault harness: %s" e);
        let x, y = make_data 53 60 in
        let serial =
          Cross_val.grid_search_svc (Rng.create 5) ~x ~y ~folds:3 ~cs ~gammas
        in
        Pool.with_pool ~domains:4 (fun pool ->
            (* inject the stall on the very pool the search then uses *)
            Pool.run pool ~n:8 (fun i -> if i = 0 then Unix.sleepf 0.05);
            let parallel =
              Cross_val.grid_search_svc ~pool (Rng.create 5) ~x ~y ~folds:3 ~cs
                ~gammas
            in
            check_grid_equal "after stall" serial parallel));
  ]

let suites =
  [
    ("svm.kernel", kernel_tests);
    ("svm.smo", smo_tests);
    ("svm.svc", svc_tests);
    ("svm.svr", svr_tests);
    ("svm.scale", scale_tests);
    ("svm.metrics", metrics_tests);
    ("svm.cross_val", cross_val_tests);
    ("svm.row_cache", cache_tests);
    ("svm.platt", platt_tests);
    ("svm.smo_optimality", smo_optimality_tests);
    ("svm.gamma", gamma_tests);
    ("svm.flat", flat_tests);
    ("svm.parallel_cv", parallel_cv_tests);
  ]
