(* Tests for the resilience layer: the stc-journal-1 write-ahead format,
   kill/resume bit-identical compaction, the retry policy, degraded-mode
   serving, and supervised pool deadlines. *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Journal = Stc.Journal
module Order = Stc.Order
module Pool = Stc_process.Pool
module Flow_io = Stc_floor.Flow_io
module Floor = Stc_floor.Floor
module Retry = Stc_floor.Retry
module Faults = Stc_qa.Faults
module Gen = Stc_qa.Gen
module Rng = Stc_numerics.Rng

let check_fault = Alcotest.(check (result unit string)) "fault check" (Ok ())

(* naive substring search; enough for asserting error-message content *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let with_temp f =
  let path = Filename.temp_file "stc_test" ".stcj" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* a small correlated population: the greedy loop accepts some
   candidates and rejects others, so journals carry both decisions *)
let specs =
  [|
    Spec.make ~name:"dc gain" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"slew rate" ~unit_label:"V/us" ~nominal:1.0 ~lower:0.5
      ~upper:1.5;
    Spec.make ~name:"sum spec" ~unit_label:"V" ~nominal:2.0 ~lower:1.2
      ~upper:2.8;
    Spec.make ~name:"noise" ~unit_label:"" ~nominal:0.0 ~lower:(-1.0) ~upper:1.0;
  |]

let population seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let noise = Rng.gaussian rng ~mean:0.0 ~sigma:0.6 in
      [| a; b; a +. b; noise |])

let data seed n = Device_data.make ~specs ~values:(population seed n)

let config =
  {
    Compaction.default_config with
    Compaction.tolerance = 0.05;
    guard_fraction = 0.02;
  }

let flow_bytes flow =
  match Flow_io.to_string flow with
  | Ok text -> text
  | Error e -> Alcotest.failf "flow does not serialise: %s" e

(* ---------------------------- journal format ---------------------- *)

let format_tests =
  [
    Alcotest.test_case "canonical text is exact" `Quick (fun () ->
        let replay =
          {
            Journal.fingerprint = "0123456789abcdef";
            entries =
              [| { Journal.spec_index = 4; accepted = true; error = 0.125 } |];
            complete = true;
          }
        in
        Alcotest.(check string)
          "exact bytes"
          "stc-journal-1\nfingerprint 0123456789abcdef\nstep 0 4 1 0.125\n\
           done 1\n"
          (Journal.to_string replay));
    Alcotest.test_case "truncation and mutation contract" `Quick (fun () ->
        check_fault (Faults.check_journal_truncation ()));
    Alcotest.test_case "bad fingerprint rejected with line" `Quick (fun () ->
        match Journal.of_string "stc-journal-1\nfingerprint 012345\n" with
        | Ok _ -> Alcotest.fail "short fingerprint accepted"
        | Error e ->
          Alcotest.(check bool) "names line 2" true (contains ~affix:"line 2" e));
    Alcotest.test_case "writer refuses appends after finish" `Quick (fun () ->
        with_temp (fun path ->
            let w =
              match Journal.create ~path ~fingerprint:"0123456789abcdef" with
              | Ok w -> w
              | Error e -> Alcotest.failf "create: %s" e
            in
            let entry =
              { Journal.spec_index = 0; accepted = false; error = 0.5 }
            in
            Alcotest.(check (result unit string)) "append" (Ok ())
              (Journal.append w entry);
            Alcotest.(check (result unit string)) "finish" (Ok ())
              (Journal.finish w);
            (match Journal.append w entry with
             | Ok () -> Alcotest.fail "append after finish succeeded"
             | Error _ -> ());
            Journal.close w;
            match Journal.load ~path with
            | Ok r ->
              Alcotest.(check bool) "complete" true r.Journal.complete;
              Alcotest.(check int) "one entry" 1 (Array.length r.Journal.entries)
            | Error e -> Alcotest.failf "load: %s" e));
    Alcotest.test_case "open_append rejects foreign and complete" `Quick
      (fun () ->
        with_temp (fun path ->
            let w =
              match Journal.create ~path ~fingerprint:"0123456789abcdef" with
              | Ok w -> w
              | Error e -> Alcotest.failf "create: %s" e
            in
            Journal.close w;
            (match Journal.open_append ~path ~fingerprint:"fedcba9876543210" with
             | Ok _ -> Alcotest.fail "foreign fingerprint accepted"
             | Error e ->
               Alcotest.(check bool) "names the mismatch" true
                 (contains ~affix:"fingerprint" e));
            match Journal.open_append ~path ~fingerprint:"0123456789abcdef" with
            | Ok w2 ->
              Alcotest.(check (result unit string)) "finish empty" (Ok ())
                (Journal.finish w2);
              Journal.close w2;
              (match
                 Journal.open_append ~path ~fingerprint:"0123456789abcdef"
               with
               | Ok _ -> Alcotest.fail "complete journal reopened"
               | Error _ -> ())
            | Error e -> Alcotest.failf "open_append: %s" e));
    Alcotest.test_case "recover salvages a final record cut mid-write" `Quick
      (fun () ->
        with_temp (fun path ->
            let fingerprint = "0123456789abcdef" in
            (match Journal.create ~path ~fingerprint with
             | Error e -> Alcotest.failf "create: %s" e
             | Ok w ->
               for i = 0 to 1 do
                 match
                   Journal.append w
                     { Journal.spec_index = i; accepted = true; error = 0.25 }
                 with
                 | Ok () -> ()
                 | Error e -> Alcotest.failf "append: %s" e
               done;
               Journal.close w);
            let intact = read_file path in
            (* a kill inside write(2): the final record has no newline *)
            let oc =
              open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
            in
            output_string oc "step 2 5 1 0.";
            close_out oc;
            (match Journal.load ~path with
             | Ok _ -> Alcotest.fail "strict load accepted a partial record"
             | Error e ->
               Alcotest.(check bool) "strict error has a line" true
                 (contains ~affix:"line" e));
            (match Journal.recover ~path with
             | Error e -> Alcotest.failf "recover: %s" e
             | Ok (r, dropped) ->
               Alcotest.(check int) "intact entries survive" 2
                 (Array.length r.Journal.entries);
               Alcotest.(check bool) "incomplete" false r.Journal.complete;
               Alcotest.(check bool) "partial bytes dropped" true (dropped > 0));
            Alcotest.(check string) "file truncated to the intact prefix"
              intact (read_file path);
            match Journal.open_append ~path ~fingerprint with
            | Error e -> Alcotest.failf "open_append after recover: %s" e
            | Ok w ->
              Alcotest.(check int) "continues at the boundary" 2
                (Journal.entries_written w);
              Journal.close w));
    Alcotest.test_case "recover rejects mid-file corruption" `Quick (fun () ->
        with_temp (fun path ->
            let text =
              "stc-journal-1\nfingerprint 0123456789abcdef\n\
               step 9 0 1 0.25\nstep 1 1 1 0.25\n"
            in
            let oc = open_out_bin path in
            output_string oc text;
            close_out oc;
            match Journal.recover ~path with
            | Ok _ -> Alcotest.fail "recover accepted mid-file corruption"
            | Error e ->
              Alcotest.(check bool) "carries a line number" true
                (contains ~affix:"line" e)));
  ]

(* qcheck: any generated journal prints canonically; any corruption of
   it is rejected with a typed error or re-accepted canonically *)
let arb_journal = QCheck.make ~print:Journal.to_string Gen.journal

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:200 ~name:"journal print/parse canonical"
        arb_journal (fun r ->
          let text = Journal.to_string r in
          match Journal.of_string text with
          | Error e -> QCheck.Test.fail_reportf "does not reparse: %s" e
          | Ok r' -> Journal.to_string r' = text);
      QCheck.Test.make ~count:50 ~name:"journal corruption never escapes"
        arb_journal (fun r ->
          let rng = Rng.create 77 in
          match Faults.check_journal_corruption rng ~trials:20 r with
          | Ok (_rejected, _accepted) -> true
          | Error e -> QCheck.Test.fail_reportf "%s" e);
    ]

(* ----------------------- kill/resume compaction ------------------- *)

let greedy_journalled path cfg ~train ~test ~replay =
  let order = Order.compute Order.By_failure_count train in
  let fingerprint = Compaction.journal_fingerprint cfg ~train ~test ~order in
  let w =
    if replay = [||] then Journal.create ~path ~fingerprint
    else Journal.open_append ~path ~fingerprint
  in
  match w with
  | Error e -> Alcotest.failf "journal writer: %s" e
  | Ok w ->
    Fun.protect
      ~finally:(fun () -> Journal.close w)
      (fun () ->
        Compaction.greedy_resumable ~journal:w ~replay cfg ~train ~test)

let resume_tests =
  [
    Alcotest.test_case "kill after every step resumes bit-identical" `Slow
      (fun () ->
        let train = data 11 160 and test = data 12 90 in
        let reference = Compaction.greedy config ~train ~test in
        let ref_bytes = flow_bytes reference.Compaction.flow in
        let full_journal, entries =
          with_temp (fun path ->
              let r = greedy_journalled path config ~train ~test ~replay:[||] in
              Alcotest.(check string) "journalled run = plain run" ref_bytes
                (flow_bytes r.Compaction.flow);
              match Journal.load ~path with
              | Error e -> Alcotest.failf "load full journal: %s" e
              | Ok loaded ->
                Alcotest.(check bool) "complete" true loaded.Journal.complete;
                Alcotest.(check int) "one entry per examined spec"
                  (List.length r.Compaction.steps)
                  (Array.length loaded.Journal.entries);
                (read_file path, loaded.Journal.entries))
        in
        let order = Order.compute Order.By_failure_count train in
        let fingerprint =
          Compaction.journal_fingerprint config ~train ~test ~order
        in
        (* kill the run after L journaled steps, for every L *)
        for cut = 0 to Array.length entries do
          with_temp (fun path ->
              (* rebuild the crash artefact: header + first [cut] records,
                 no done trailer (the writer died before finish) *)
              (match Journal.create ~path ~fingerprint with
               | Error e -> Alcotest.failf "create: %s" e
               | Ok w ->
                 for i = 0 to cut - 1 do
                   match Journal.append w entries.(i) with
                   | Ok () -> ()
                   | Error e -> Alcotest.failf "append: %s" e
                 done;
                 Journal.close w);
              let replay = Array.sub entries 0 cut in
              let resumed =
                greedy_journalled path config ~train ~test ~replay
              in
              Alcotest.(check string)
                (Printf.sprintf "flow after kill at step %d" cut)
                ref_bytes
                (flow_bytes resumed.Compaction.flow);
              Alcotest.(check string)
                (Printf.sprintf "journal after kill at step %d" cut)
                full_journal (read_file path))
        done);
    Alcotest.test_case "fingerprint binds config, data and order" `Quick
      (fun () ->
        let train = data 21 60 and test = data 22 40 in
        let order = Order.compute Order.By_failure_count train in
        let fp = Compaction.journal_fingerprint config ~train ~test ~order in
        let fp_tol =
          Compaction.journal_fingerprint
            { config with Compaction.tolerance = 0.06 }
            ~train ~test ~order
        in
        let fp_data =
          Compaction.journal_fingerprint config ~train:(data 23 60) ~test
            ~order
        in
        let fp_order =
          Compaction.journal_fingerprint config ~train ~test
            ~order:(Array.of_list (List.rev (Array.to_list order)))
        in
        Alcotest.(check bool) "tolerance changes fp" true (fp <> fp_tol);
        Alcotest.(check bool) "train data changes fp" true (fp <> fp_data);
        Alcotest.(check bool) "order changes fp" true (fp <> fp_order);
        Alcotest.(check string) "fingerprint is stable" fp
          (Compaction.journal_fingerprint config ~train ~test ~order));
    Alcotest.test_case "replay refuses a foreign step" `Quick (fun () ->
        let train = data 31 60 and test = data 32 40 in
        let order = Order.compute Order.By_failure_count train in
        let bogus =
          [|
            {
              Journal.spec_index = (order.(0) + 1) mod Array.length specs;
              accepted = true;
              error = 0.0;
            };
          |]
        in
        Alcotest.check_raises "order mismatch"
          (Invalid_argument
             (Printf.sprintf
                "Compaction.greedy_resumable: journal step 0 examined spec %d \
                 but this run examines spec %d (order or data mismatch)"
                bogus.(0).Journal.spec_index order.(0)))
          (fun () ->
            ignore
              (Compaction.greedy_resumable ~replay:bogus config ~train ~test)));
  ]

(* qcheck: save→resume round-trips greedy results on random populations *)
let arb_population =
  let open QCheck.Gen in
  let gen =
    Gen.specs ~min_specs:2 ~max_specs:3 () >>= fun sp ->
    Gen.rows sp ~n:30 >>= fun train_rows ->
    Gen.rows sp ~n:20 >>= fun test_rows ->
    return (sp, train_rows, test_rows)
  in
  QCheck.make
    ~print:(fun (sp, _, _) ->
      String.concat ", "
        (Array.to_list (Array.map (fun s -> s.Spec.name) sp)))
    gen

let qcheck_resume_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:8 ~name:"random populations resume bit-identical"
        arb_population (fun (sp, train_rows, test_rows) ->
          let train = Device_data.make ~specs:sp ~values:train_rows in
          let test = Device_data.make ~specs:sp ~values:test_rows in
          with_temp (fun path ->
              let full =
                greedy_journalled path config ~train ~test ~replay:[||]
              in
              let entries =
                match Journal.load ~path with
                | Ok r -> r.Journal.entries
                | Error e -> QCheck.Test.fail_reportf "load: %s" e
              in
              let cut = Array.length entries / 2 in
              with_temp (fun path2 ->
                  let order = Order.compute Order.By_failure_count train in
                  let fingerprint =
                    Compaction.journal_fingerprint config ~train ~test ~order
                  in
                  (match Journal.create ~path:path2 ~fingerprint with
                   | Error e -> QCheck.Test.fail_reportf "create: %s" e
                   | Ok w ->
                     Array.iteri
                       (fun i e ->
                         if i < cut then
                           match Journal.append w e with
                           | Ok () -> ()
                           | Error err ->
                             QCheck.Test.fail_reportf "append: %s" err)
                       entries;
                     Journal.close w);
                  let resumed =
                    greedy_journalled path2 config ~train ~test
                      ~replay:(Array.sub entries 0 cut)
                  in
                  flow_bytes resumed.Compaction.flow
                  = flow_bytes full.Compaction.flow)));
    ]

(* ------------------------------- retry ---------------------------- *)

exception Transient_glitch
exception Broken

let retry_tests =
  [
    Alcotest.test_case "backoff is deterministic, jittered, capped" `Quick
      (fun () ->
        let p =
          {
            Retry.default_policy with
            Retry.base_delay_s = 0.01;
            max_delay_s = 0.04;
            jitter = 0.5;
          }
        in
        for retry = 1 to 6 do
          let d = Retry.delay_s p ~retry in
          let nominal =
            Stdlib.min p.Retry.max_delay_s
              (p.Retry.base_delay_s *. (2.0 ** float_of_int (retry - 1)))
          in
          Alcotest.(check bool)
            (Printf.sprintf "retry %d in [half, full] of %g" retry nominal)
            true
            (d <= nominal && d >= 0.5 *. nominal);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "retry %d deterministic" retry)
            d (Retry.delay_s p ~retry)
        done;
        Alcotest.(check bool) "capped" true
          (Retry.delay_s p ~retry:10 <= p.Retry.max_delay_s));
    Alcotest.test_case "flaky call succeeds after retries" `Quick (fun () ->
        let slept = ref [] in
        let sleep d = slept := d :: !slept in
        let calls = ref 0 in
        let p = { Retry.default_policy with Retry.attempts = 5 } in
        let result, retries =
          Retry.run ~sleep p (fun () ->
              incr calls;
              if !calls <= 2 then raise Transient_glitch;
              !calls)
        in
        Alcotest.(check (result int string)) "value" (Ok 3)
          (Result.map_error Printexc.to_string result);
        Alcotest.(check int) "retries" 2 retries;
        Alcotest.(check (list (float 0.0))) "slept the schedule"
          [ Retry.delay_s p ~retry:2; Retry.delay_s p ~retry:1 ]
          !slept);
    Alcotest.test_case "exhaustion returns the last error" `Quick (fun () ->
        let calls = ref 0 in
        let p = { Retry.default_policy with Retry.attempts = 3 } in
        let result, retries =
          Retry.run ~sleep:ignore p (fun () ->
              incr calls;
              raise Transient_glitch)
        in
        Alcotest.(check int) "three attempts" 3 !calls;
        Alcotest.(check int) "two retries" 2 retries;
        (match result with
         | Error Transient_glitch -> ()
         | _ -> Alcotest.fail "expected the injected exception"));
    Alcotest.test_case "permanent failures stop immediately" `Quick (fun () ->
        let calls = ref 0 in
        let p =
          {
            Retry.default_policy with
            Retry.attempts = 5;
            classify =
              (function Broken -> Retry.Permanent | _ -> Retry.Transient);
          }
        in
        let result, retries =
          Retry.run ~sleep:ignore p (fun () ->
              incr calls;
              raise Broken)
        in
        Alcotest.(check int) "one attempt" 1 !calls;
        Alcotest.(check int) "no retries" 0 retries;
        (match result with
         | Error Broken -> ()
         | _ -> Alcotest.fail "expected Broken"));
    Alcotest.test_case "fatal runtime exceptions are never retried" `Quick
      (fun () ->
        let calls = ref 0 in
        let p = { Retry.default_policy with Retry.attempts = 5 } in
        (match
           Retry.run ~sleep:ignore p (fun () ->
               incr calls;
               assert false)
         with
        | exception Assert_failure _ -> ()
        | _ -> Alcotest.fail "Assert_failure did not propagate");
        Alcotest.(check int) "single attempt" 1 !calls);
    Alcotest.test_case "attempts < 1 rejected" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Retry.run: attempts must be >= 1")
          (fun () ->
            ignore
              (Retry.run ~sleep:ignore
                 { Retry.default_policy with Retry.attempts = 0 }
                 (fun () -> ()))));
    Alcotest.test_case "schedule is a pure function of the seed" `Quick
      (fun () ->
        (* two engines with the same policy must sleep the exact same
           schedule; a different seed must jitter differently somewhere *)
        let schedule seed =
          let slept = ref [] in
          let p =
            {
              Retry.default_policy with
              Retry.attempts = 6;
              base_delay_s = 0.01;
              max_delay_s = 10.0;
              jitter = 0.9;
              seed;
            }
          in
          let (_ : (unit, exn) result * int) =
            Retry.run
              ~sleep:(fun d -> slept := d :: !slept)
              p
              (fun () -> raise Transient_glitch)
          in
          List.rev !slept
        in
        Alcotest.(check (list (float 0.0))) "same seed, same schedule"
          (schedule 17) (schedule 17);
        Alcotest.(check int) "five sleeps for six attempts" 5
          (List.length (schedule 17));
        Alcotest.(check bool) "different seeds jitter apart" true
          (schedule 17 <> schedule 18);
        (* and delay_s itself is pure: repeated queries never advance
           hidden state *)
        let p = { Retry.default_policy with Retry.seed = 17; jitter = 0.9 } in
        let first = List.init 5 (fun i -> Retry.delay_s p ~retry:(i + 1)) in
        let second = List.init 5 (fun i -> Retry.delay_s p ~retry:(i + 1)) in
        Alcotest.(check (list (float 0.0))) "delay_s is pure" first second);
  ]

(* -------------------------- floor resilience ---------------------- *)

let trained_flow = lazy (Compaction.make_flow config (data 41 300) ~dropped:[| 2 |])

let floor_tests =
  [
    Alcotest.test_case "flaky retest ships after retries" `Quick (fun () ->
        check_fault (Faults.check_floor_flaky_retest ~fail_first:2));
    Alcotest.test_case "permanent failure degrades, drops nothing" `Quick
      (fun () ->
        check_fault (Faults.check_floor_degraded ~classify_permanent:false);
        check_fault (Faults.check_floor_degraded ~classify_permanent:true));
    Alcotest.test_case "batch deadline sheds, does not latch" `Quick (fun () ->
        check_fault (Faults.check_floor_batch_deadline ()));
    Alcotest.test_case "fatal retest bug surfaces, does not degrade" `Quick
      (fun () ->
        (* every in-range device escalates: the tight model votes fail,
           the loose one votes pass *)
        let spec name =
          Spec.make ~name ~unit_label:"" ~nominal:0.5 ~lower:0.0 ~upper:1.0
        in
        let guard_flow =
          {
            Compaction.specs = [| spec "kept"; spec "dropped" |];
            kept = [| 0 |];
            dropped = [| 1 |];
            band =
              Some
                (Guard_band.of_models
                   ~tight:(Guard_band.constant (-1))
                   ~loose:(Guard_band.constant 1));
            guard_fraction = 0.01;
            measured_guard = false;
          }
        in
        Floor.with_engine guard_flow (fun engine ->
            let retest _row : bool = assert false in
            (match
               Floor.process ~retest ~retry:Retry.default_policy engine
                 [| [| 0.5; 0.5 |] |]
             with
            | exception Assert_failure _ -> ()
            | _ -> Alcotest.fail "a retest bug was swallowed by the policy");
            Alcotest.(check bool) "a bug must not latch degraded mode" false
              (Floor.degraded engine)));
    Alcotest.test_case "strict rejection leaves stats untouched" `Quick
      (fun () ->
        let flow = Lazy.force trained_flow in
        Floor.with_engine flow (fun engine ->
            let good = population 42 12 in
            let (_ : Floor.outcome array) = Floor.process engine good in
            let before = Floor.stats engine in
            Alcotest.(check int) "devices counted" 12 before.Floor.devices;
            Alcotest.(check int) "one batch" 1 before.Floor.batches;
            let bad = population 42 12 in
            bad.(7).(0) <- Float.nan;
            (match Floor.process ~strict:true engine bad with
             | exception Invalid_argument _ -> ()
             | _ -> Alcotest.fail "strict accepted a NaN row");
            Alcotest.(check bool) "stats unchanged by the rejected call" true
              (Floor.stats engine = before);
            Alcotest.(check bool) "not degraded" false (Floor.degraded engine);
            Floor.reset_stats engine;
            Alcotest.(check bool) "reset to empty" true
              (Floor.stats engine = Floor.empty_stats);
            Alcotest.(check bool) "reset clears degraded" false
              (Floor.degraded engine)));
    Alcotest.test_case "process validates batch_deadline_s" `Quick (fun () ->
        let flow = Lazy.force trained_flow in
        Floor.with_engine flow (fun engine ->
            Alcotest.check_raises "non-positive deadline"
              (Invalid_argument "Floor.process: batch_deadline_s must be positive")
              (fun () ->
                ignore
                  (Floor.process ~batch_deadline_s:0.0 engine
                     (population 43 2)))));
  ]

(* --------------------------- pool deadlines ----------------------- *)

let pool_tests =
  [
    Alcotest.test_case "deadline contract, 1 domain" `Slow (fun () ->
        check_fault (Faults.check_pool_deadline ~domains:1));
    Alcotest.test_case "deadline contract, 4 domains" `Slow (fun () ->
        check_fault (Faults.check_pool_deadline ~domains:4));
    Alcotest.test_case "in-time supervised run raises task errors" `Quick
      (fun () ->
        Pool.with_pool ~domains:2 (fun pool ->
            (match
               Pool.run ~deadline_s:30.0 pool ~n:16 (fun i ->
                   if i = 5 then failwith "task boom")
             with
             | exception Failure m ->
               Alcotest.(check string) "the task's error" "task boom" m
             | () -> Alcotest.fail "task error swallowed");
            (* and the error slot is clean afterwards *)
            Pool.run ~deadline_s:30.0 pool ~n:8 ignore));
    Alcotest.test_case "deadline_s must be positive" `Quick (fun () ->
        Pool.with_pool ~domains:1 (fun pool ->
            Alcotest.check_raises "invalid"
              (Invalid_argument "Pool.run: deadline_s must be positive")
              (fun () -> Pool.run ~deadline_s:0.0 pool ~n:1 ignore)));
    Alcotest.test_case "heartbeats are fresh after a run" `Quick (fun () ->
        Pool.with_pool ~domains:3 (fun pool ->
            Pool.run pool ~n:64 ignore;
            let ages = Pool.heartbeat_ages pool in
            Alcotest.(check int) "one per helper" 2 (Array.length ages);
            Array.iter
              (fun age ->
                Alcotest.(check bool) "recent" true (age >= 0.0 && age < 10.0))
              ages));
    Alcotest.test_case "timeout with parked helpers does not brick the pool"
      `Slow (fun () ->
        (* regression: with fewer tasks than domains, some helpers are
           still parked (or mid-spawn) when the deadline clears the job
           slot; they must wait for the next submission, not die on the
           empty slot and leave every later job's pending count short *)
        Pool.with_pool ~domains:4 (fun pool ->
            for round = 1 to 4 do
              (* a genuine stall: the claiming workers are zombied at the
                 end of the grace pass and replacements spawned *)
              (match
                 Pool.run ~deadline_s:0.02 pool ~n:2 (fun _ ->
                     Unix.sleepf 0.3)
               with
              | exception Pool.Timeout -> ()
              | () ->
                Alcotest.failf "round %d: stalled job beat the deadline" round);
              (* immediately fire deadlines so short they clear the job
                 slot while the replacements are still booting and the
                 surviving helpers are still parked (a run fast enough
                 to finish anyway is also legal) *)
              for _ = 1 to 5 do
                match Pool.run ~deadline_s:1e-6 pool ~n:4 (fun _ -> ()) with
                | exception Pool.Timeout -> ()
                | () -> ()
              done
            done;
            let acc = Atomic.make 0 in
            match
              Pool.run ~deadline_s:30.0 pool ~n:100 (fun i ->
                  ignore (Atomic.fetch_and_add acc i))
            with
            | exception e ->
              Alcotest.failf "pool bricked after timeouts: %s"
                (Printexc.to_string e)
            | () ->
              Alcotest.(check int) "no work lost" (99 * 100 / 2)
                (Atomic.get acc)));
    Alcotest.test_case "stats start clean" `Quick (fun () ->
        Pool.with_pool ~domains:2 (fun pool ->
            let s = Pool.stats pool in
            Alcotest.(check int) "timeouts" 0 s.Pool.timeouts;
            Alcotest.(check int) "respawned" 0 s.Pool.respawned));
  ]

let suites =
  [
    ("resilience: journal format", format_tests @ qcheck_tests);
    ("resilience: kill/resume", resume_tests @ qcheck_resume_tests);
    ("resilience: retry policy", retry_tests);
    ("resilience: degraded floor", floor_tests);
    ("resilience: pool deadlines", pool_tests);
  ]
