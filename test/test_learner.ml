(* The learner-zoo differential gate.

   The compaction loop consumes learners only through the LEARNER
   contract (Stc.Learner): train / predict / save / load / name. This
   suite pins everything that makes a second model family safe to
   promote next to the reference ε-SVR:

   - the pure-OCaml MLP's forward pass against a brute-force
     reimplementation, its stc-mlp-1 canonicality law, and the
     determinism-of-training contract (same data ⇒ same bytes);
   - the mutual-information ranker against an O(bins·n)-per-cell
     reference scorer, bit-for-bit, and its permutation invariance;
   - LEARNER save/load laws for every serialisable family;
   - the stc-flow-2 container: round trip, verdict survival, v1 bytes
     untouched for SVR-only flows, and fast line-numbered rejection of
     mlp-under-v1, unknown versions, truncation and family-tag
     mismatches;
   - the differential promotion gate itself: the default MLP must
     match-or-beat SVR escape/yield-loss on the op-amp and MEMS
     benches, and a deliberately bad learner (zero-epoch MLP — a
     deterministic random init) must be rejected.

   `make learners` runs this file by name — if the suite is ever
   deregistered, the empty filter makes alcotest exit nonzero. *)

module Mlp = Stc_learn.Mlp
module Mi = Stc_learn.Mi
module Learner = Stc.Learner
module Compaction = Stc.Compaction
module Order = Stc.Order
module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Experiment = Stc.Experiment
module Guard_band = Stc.Guard_band
module Flow_io = Stc_floor.Flow_io
module Rng = Stc_numerics.Rng
module Gen = Stc_qa.Gen
module Oracle = Stc_qa.Oracle

let qtest = QCheck_alcotest.to_alcotest
let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 9_999)

let check_ok what = function
  | Ok _ -> true
  | Error e -> QCheck.Test.fail_reportf "%s: %s" what e

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------ MLP ------------------------------- *)

(* A small two-class training set whose boundary is a hyperplane with
   margin noise — enough structure that SGD actually moves. *)
let mlp_training_set ~seed ~n ~dim =
  let rng = Rng.create seed in
  let x =
    Array.init n (fun _ ->
        Array.init dim (fun _ -> Rng.uniform rng (-1.5) 1.5))
  in
  let y =
    Array.map
      (fun xi -> if Array.fold_left ( +. ) 0.0 xi > 0.1 then 1.0 else -1.0)
      x
  in
  (x, y)

let mlp_tests =
  [
    qtest
      (QCheck.Test.make ~count:200
         ~name:"predict matches the brute-force forward pass" seed_arb
         (fun seed ->
           let rng = Rng.create (41_000 + seed) in
           let dim = 1 + Rng.int rng 4 in
           let m = Gen.run ~seed (Gen.mlp ~dim) in
           let v = Array.init dim (fun _ -> Rng.uniform rng (-2.0) 2.0) in
           check_ok "mlp_agrees" (Oracle.mlp_agrees m v)));
    qtest
      (QCheck.Test.make ~count:200
         ~name:"stc-mlp-1 canonicality: print → parse → print" seed_arb
         (fun seed ->
           let dim = 1 + (seed mod 4) in
           let m = Gen.run ~seed (Gen.mlp ~dim) in
           check_ok "mlp_roundtrips" (Oracle.mlp_roundtrips m)));
    qtest
      (QCheck.Test.make ~count:60
         ~name:"reloaded model predicts bit-identically" seed_arb
         (fun seed ->
           let rng = Rng.create (42_000 + seed) in
           let dim = 1 + Rng.int rng 4 in
           let m = Gen.run ~seed (Gen.mlp ~dim) in
           let m' =
             match Mlp.of_string (Mlp.to_string m) with
             | Ok m' -> m'
             | Error e -> QCheck.Test.fail_reportf "reload failed: %s" e
           in
           for _ = 1 to 20 do
             let v = Array.init dim (fun _ -> Rng.uniform rng (-2.0) 2.0) in
             let a = Mlp.predict m v and b = Mlp.predict m' v in
             if Int64.bits_of_float a <> Int64.bits_of_float b then
               QCheck.Test.fail_reportf
                 "reloaded prediction %.17g differs from %.17g" b a
           done;
           true));
    qtest
      (QCheck.Test.make ~count:10
         ~name:"training is deterministic: same data, same bytes" seed_arb
         (fun seed ->
           let x, y = mlp_training_set ~seed:(43_000 + seed) ~n:40 ~dim:3 in
           let config = { Mlp.default_config with Mlp.epochs = 30 } in
           let a = Mlp.to_string (Mlp.train ~config ~x ~y ()) in
           let b = Mlp.to_string (Mlp.train ~config ~x ~y ()) in
           if a <> b then
             QCheck.Test.fail_reportf "two trainings differ:\n%s\nvs\n%s" a b;
           true));
    qtest
      (QCheck.Test.make ~count:10
         ~name:"trained models also satisfy forward-ref and round trip"
         seed_arb
         (fun seed ->
           let x, y = mlp_training_set ~seed:(44_000 + seed) ~n:40 ~dim:3 in
           let config = { Mlp.default_config with Mlp.epochs = 30 } in
           let m = Mlp.train ~config ~x ~y () in
           check_ok "round trip" (Oracle.mlp_roundtrips m)
           && Array.for_all
                (fun v -> check_ok "agree" (Oracle.mlp_agrees m v))
                x));
    Alcotest.test_case "of_string rejects corrupt texts" `Quick (fun () ->
        let m = Gen.run ~seed:7 (Gen.mlp ~dim:3) in
        let text = Mlp.to_string m in
        let expect_error what s =
          match Mlp.of_string s with
          | Ok _ -> Alcotest.failf "%s: corrupt text was accepted" what
          | Error _ -> ()
        in
        expect_error "bad tag"
          ("stc-mlp-9" ^ String.sub text 9 (String.length text - 9));
        (* drop the whole final ("out ...") line, not just trailing
           bytes — a shortened float still parses *)
        let cut = String.rindex_from text (String.length text - 2) '\n' in
        expect_error "truncated" (String.sub text 0 (cut + 1));
        expect_error "trailing data" (text ^ "extra\n");
        expect_error "empty" "";
        expect_error "non-finite"
          (Str.global_replace (Str.regexp "out ") "out nan " text));
  ]

(* ------------------------ mutual information ---------------------- *)

let mi_data ~seed ~n =
  let rng = Rng.create seed in
  let values = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0) in
  let labels =
    Array.init n (fun i ->
        if Rng.uniform rng 0.0 1.0 < 0.3 then (if i land 1 = 0 then 1 else -1)
        else if values.(i) > 0.0 then 1
        else -1)
  in
  (values, labels)

let mi_tests =
  [
    qtest
      (QCheck.Test.make ~count:200
         ~name:"score matches the full-rescan reference bit-for-bit" seed_arb
         (fun seed ->
           let rng = Rng.create (45_000 + seed) in
           let n = 2 + Rng.int rng 60 in
           let values, labels = mi_data ~seed:(seed + 1) ~n in
           let bins = 1 + Rng.int rng 12 in
           check_ok "mi_matches_ref" (Oracle.mi_matches_ref ~bins ~labels values)));
    qtest
      (QCheck.Test.make ~count:200
         ~name:"score is invariant under joint permutation" seed_arb
         (fun seed ->
           let rng = Rng.create (46_000 + seed) in
           let n = 2 + Rng.int rng 60 in
           let values, labels = mi_data ~seed:(seed + 2) ~n in
           let permutation = Array.init n (fun i -> i) in
           Rng.shuffle rng permutation;
           check_ok "mi_permutation_invariant"
             (Oracle.mi_permutation_invariant ~permutation ~labels values)));
    Alcotest.test_case "informative columns outrank constant ones" `Quick
      (fun () ->
        let n = 200 in
        let rng = Rng.create 47 in
        let informative = Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0) in
        let labels =
          Array.map (fun v -> if v > 0.0 then 1 else -1) informative
        in
        let constant = Array.make n 0.25 in
        let noise = Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0) in
        let scores = Mi.scores ~labels [| constant; informative; noise |] in
        Alcotest.(check (float 0.0)) "constant column carries no information"
          0.0 scores.(0);
        if scores.(1) <= scores.(2) then
          Alcotest.failf "label-defining column scored %.6f <= noise %.6f"
            scores.(1) scores.(2);
        let rank = Mi.rank ~labels [| constant; informative; noise |] in
        Alcotest.(check int) "least informative first" 0 rank.(0);
        Alcotest.(check int) "most informative last" 1
          rank.(Array.length rank - 1));
  ]

(* --------------------- LEARNER save/load laws --------------------- *)

let learner_io_tests =
  [
    qtest
      (QCheck.Test.make ~count:120
         ~name:"save → load → save is byte-identical for every family"
         seed_arb
         (fun seed ->
           let rng = Rng.create (48_000 + seed) in
           let dim = 1 + Rng.int rng 3 in
           let m = Gen.run ~seed (Gen.model ~dim) in
           let text =
             match Learner.save m with
             | Ok t -> t
             | Error e -> QCheck.Test.fail_reportf "save: %s" e
           in
           let m' =
             match Learner.load text with
             | Ok m' -> m'
             | Error e -> QCheck.Test.fail_reportf "load: %s" e
           in
           (match Learner.save m' with
           | Ok text' when text' = text -> ()
           | Ok text' ->
             QCheck.Test.fail_reportf "resave differs:\n%svs\n%s" text text'
           | Error e -> QCheck.Test.fail_reportf "resave: %s" e);
           for _ = 1 to 10 do
             let v = Array.init dim (fun _ -> Rng.uniform rng (-2.0) 2.0) in
             if Learner.predict m v <> Learner.predict m' v then
               QCheck.Test.fail_reportf "reloaded model flips a verdict"
           done;
           true));
    Alcotest.test_case "load rejects trailing content" `Quick (fun () ->
        let m = Gen.run ~seed:3 (Gen.model ~dim:2) in
        let text = ok_or_fail "save" (Learner.save m) in
        match Learner.load (text ^ "model constant 1\n") with
        | Ok _ -> Alcotest.fail "trailing model was accepted"
        | Error _ -> ());
  ]

(* ----------------------- stc-flow-2 container --------------------- *)

(* The synthetic compactible population also used by the gate tests:
   spec 3 is spec 0 plus ±0.01 noise, so it can be dropped only by
   actually learning the relationship, and labels are mixed. *)
let synthetic ~seed ~n =
  let k = 4 in
  let specs =
    Array.init k (fun j ->
        Spec.make ~name:(Printf.sprintf "s%d" j) ~unit_label:"V" ~nominal:0.0
          ~lower:(-1.0) ~upper:1.0)
  in
  let rng = Rng.create seed in
  let rows =
    Array.init n (fun _ ->
        let row = Array.init k (fun _ -> Rng.uniform rng (-1.5) 1.5) in
        row.(k - 1) <- row.(0) +. Rng.uniform rng (-0.01) 0.01;
        row)
  in
  Device_data.make ~specs ~values:rows

let mlp_flow () =
  let train = synthetic ~seed:11 ~n:150 in
  let config =
    { Compaction.default_config with Compaction.learner = Learner.default_mlp }
  in
  Compaction.make_flow config train ~dropped:[| 3 |]

let flow_text flow = ok_or_fail "Flow_io.to_string" (Flow_io.to_string flow)

let replace_once ~from ~into text =
  match Str.bounded_split_delim (Str.regexp_string from) text 2 with
  | [ before; after ] -> before ^ into ^ after
  | _ -> Alcotest.failf "fixture does not contain %S" from

let expect_parse_error what ~mentions text =
  match Flow_io.of_string text with
  | Ok _ -> Alcotest.failf "%s: corrupt flow was accepted" what
  | Error e ->
    List.iter
      (fun needle ->
        let re = Str.regexp_string needle in
        match Str.search_forward re e 0 with
        | _ -> ()
        | exception Not_found ->
          Alcotest.failf "%s: error %S does not mention %S" what e needle)
      mentions

let flow2_tests =
  [
    Alcotest.test_case "MLP flows write stc-flow-2 and round trip" `Quick
      (fun () ->
        let flow = mlp_flow () in
        Alcotest.(check string)
          "version_of_flow" Flow_io.version2
          (Flow_io.version_of_flow flow);
        let text = flow_text flow in
        let header = String.sub text 0 (String.index text '\n') in
        Alcotest.(check string) "header line" Flow_io.version2 header;
        ok_or_fail "flow_roundtrips" (Oracle.flow_roundtrips flow));
    Alcotest.test_case "reloaded MLP flow reproduces every verdict" `Quick
      (fun () ->
        let flow = mlp_flow () in
        let rows = Device_data.values (synthetic ~seed:12 ~n:100) in
        ok_or_fail "flow_verdicts_survive"
          (Oracle.flow_verdicts_survive flow rows));
    Alcotest.test_case "SVR-only flows keep the stc-flow-1 header" `Quick
      (fun () ->
        let train = synthetic ~seed:11 ~n:150 in
        let config =
          { Compaction.default_config with Compaction.tolerance = 0.10 }
        in
        let flow = Compaction.make_flow config train ~dropped:[| 3 |] in
        Alcotest.(check string)
          "version_of_flow" Flow_io.version
          (Flow_io.version_of_flow flow);
        let text = flow_text flow in
        let header = String.sub text 0 (String.index text '\n') in
        Alcotest.(check string) "header line" Flow_io.version header);
    Alcotest.test_case "an MLP model under a v1 header is rejected" `Quick
      (fun () ->
        let text = flow_text (mlp_flow ()) in
        let downgraded =
          replace_once ~from:Flow_io.version2 ~into:Flow_io.version text
        in
        expect_parse_error "mlp under v1"
          ~mentions:[ "line "; "mlp"; "not allowed" ]
          downgraded);
    Alcotest.test_case "future container versions are rejected" `Quick
      (fun () ->
        let text = flow_text (mlp_flow ()) in
        let skewed =
          replace_once ~from:Flow_io.version2 ~into:"stc-flow-3" text
        in
        expect_parse_error "stc-flow-3"
          ~mentions:[ "unsupported flow version" ]
          skewed);
    Alcotest.test_case "a truncated flow is rejected" `Quick (fun () ->
        let text = flow_text (mlp_flow ()) in
        let truncated = String.sub text 0 (String.length text / 2) in
        expect_parse_error "truncated" ~mentions:[ "line " ] truncated);
    Alcotest.test_case "a family-tag mismatch fails at the model line" `Quick
      (fun () ->
        let text = flow_text (mlp_flow ()) in
        let swapped = replace_once ~from:"stc-mlp-1" ~into:"stc-svr-1" text in
        expect_parse_error "family mismatch"
          ~mentions:[ "line "; "model family mismatch" ]
          swapped);
  ]

(* ------------------------- promotion gates ------------------------ *)

let check_promotes name ?order config ~train ~test ~candidate =
  match Oracle.learner_promotes ?order ~candidate config ~train ~test with
  | Error e -> Alcotest.failf "%s: candidate was rejected: %s" name e
  | Ok p ->
    if p.Oracle.candidate_dropped = 0 then
      Alcotest.failf "%s: candidate promoted without compacting anything" name;
    if p.Oracle.candidate_escape_pct > p.Oracle.baseline_escape_pct then
      Alcotest.failf "%s: escape %.3f%% above baseline %.3f%%" name
        p.Oracle.candidate_escape_pct p.Oracle.baseline_escape_pct;
    if p.Oracle.candidate_loss_pct > p.Oracle.baseline_loss_pct then
      Alcotest.failf "%s: yield loss %.3f%% above baseline %.3f%%" name
        p.Oracle.candidate_loss_pct p.Oracle.baseline_loss_pct

let gate_tests =
  [
    Alcotest.test_case "MLP promotes on the op-amp bench" `Quick (fun () ->
        let train, test =
          Experiment.generate_opamp ~seed:701 ~n_train:80 ~n_test:40 ()
        in
        check_promotes "opamp"
          ~order:(Order.Given Experiment.opamp_examination_order)
          Experiment.opamp_config ~train ~test
          ~candidate:Learner.default_mlp);
    Alcotest.test_case "MLP promotes on the MEMS bench" `Quick (fun () ->
        let train, test =
          Experiment.generate_mems ~seed:702 ~n_train:200 ~n_test:100 ()
        in
        check_promotes "mems" Experiment.mems_config ~train ~test
          ~candidate:Learner.default_mlp);
    Alcotest.test_case "MLP promotes under the MI examination order" `Quick
      (fun () ->
        let train, test =
          Experiment.generate_opamp ~seed:701 ~n_train:80 ~n_test:40 ()
        in
        check_promotes "opamp/mi" ~order:Order.By_mutual_information
          Experiment.opamp_config ~train ~test
          ~candidate:Learner.default_mlp);
    Alcotest.test_case "a zero-epoch MLP is rejected by the gate" `Quick
      (fun () ->
        let train = synthetic ~seed:11 ~n:150 in
        let test = synthetic ~seed:12 ~n:100 in
        let config =
          { Compaction.default_config with Compaction.tolerance = 0.10 }
        in
        let bad =
          Compaction.Mlp { Mlp.default_config with Mlp.epochs = 0 }
        in
        match
          Oracle.learner_promotes ~candidate:bad config ~train ~test
        with
        | Ok p ->
          Alcotest.failf
            "bad learner promoted: baseline dropped %d, candidate dropped %d"
            p.Oracle.baseline_dropped p.Oracle.candidate_dropped
        | Error _ -> ());
    Alcotest.test_case "the gate's baseline actually compacts the fixture"
      `Quick (fun () ->
        (* guards the bad-learner test above against becoming vacuous:
           if SVR ever stops dropping a spec here, the rejection would
           no longer demonstrate anything *)
        let train = synthetic ~seed:11 ~n:150 in
        let test = synthetic ~seed:12 ~n:100 in
        let config =
          { Compaction.default_config with Compaction.tolerance = 0.10 }
        in
        let r = Compaction.greedy config ~train ~test in
        let dropped = Array.length r.Compaction.flow.Compaction.dropped in
        if dropped < 1 then
          Alcotest.failf "baseline SVR dropped %d specs on the fixture" dropped);
  ]

let suites =
  [
    ("learner.mlp", mlp_tests);
    ("learner.mi", mi_tests);
    ("learner.io", learner_io_tests);
    ("learner.flow2", flow2_tests);
    ("learner.gate", gate_tests);
  ]
