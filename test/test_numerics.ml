(* Unit and property tests for the stc_numerics substrate. *)

module Vec = Stc_numerics.Vec
module Mat = Stc_numerics.Mat
module Lu = Stc_numerics.Lu
module Cmat = Stc_numerics.Cmat
module Rng = Stc_numerics.Rng
module Stats = Stc_numerics.Stats
module Ode = Stc_numerics.Ode
module Roots = Stc_numerics.Roots
module Interp = Stc_numerics.Interp
module Poly = Stc_numerics.Poly

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------- Vec ------------------------------ *)

let vec_tests =
  [
    Alcotest.test_case "dot" `Quick (fun () ->
        check_float "dot" 32.0 (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]));
    Alcotest.test_case "add/sub/scale" `Quick (fun () ->
        let x = [| 1.; 2. |] and y = [| 3.; 5. |] in
        Alcotest.(check (array (float 1e-12))) "add" [| 4.; 7. |] (Vec.add x y);
        Alcotest.(check (array (float 1e-12))) "sub" [| -2.; -3. |] (Vec.sub x y);
        Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4. |] (Vec.scale 2.0 x));
    Alcotest.test_case "axpy in place" `Quick (fun () ->
        let y = [| 1.; 1. |] in
        Vec.axpy 2.0 [| 3.; 4. |] y;
        Alcotest.(check (array (float 1e-12))) "axpy" [| 7.; 9. |] y);
    Alcotest.test_case "norms" `Quick (fun () ->
        check_float "norm2" 5.0 (Vec.norm2 [| 3.; 4. |]);
        check_float "norm_inf" 4.0 (Vec.norm_inf [| 3.; -4. |]);
        check_float "empty inf" 0.0 (Vec.norm_inf [||]));
    Alcotest.test_case "dim mismatch rejected" `Quick (fun () ->
        Alcotest.check_raises "add" (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)")
          (fun () -> ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |])));
    Alcotest.test_case "max_index" `Quick (fun () ->
        Alcotest.(check int) "max" 1 (Vec.max_index [| 1.; 9.; 3. |]));
    qtest
      (QCheck.Test.make ~name:"dist2 = |x-y|^2" ~count:200
         QCheck.(pair (array_of_size (Gen.return 5) (float_range (-100.) 100.))
                   (array_of_size (Gen.return 5) (float_range (-100.) 100.)))
         (fun (x, y) ->
           let d = Vec.dist2 x y in
           let s = Vec.sub x y in
           Float.abs (d -. Vec.dot s s) <= 1e-6 *. (1.0 +. Float.abs d)));
    qtest
      (QCheck.Test.make ~name:"Cauchy-Schwarz" ~count:200
         QCheck.(pair (array_of_size (Gen.return 6) (float_range (-10.) 10.))
                   (array_of_size (Gen.return 6) (float_range (-10.) 10.)))
         (fun (x, y) ->
           Float.abs (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-9));
  ]

(* ----------------------------- Mat / Lu --------------------------- *)

let random_matrix rng n =
  Mat.init n n (fun i j ->
      let base = Rng.uniform rng (-1.0) 1.0 in
      (* diagonal dominance keeps the system comfortably nonsingular *)
      if i = j then base +. 10.0 else base)

let mat_tests =
  [
    Alcotest.test_case "identity mul" `Quick (fun () ->
        let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
        let p = Mat.mul (Mat.identity 2) a in
        Alcotest.(check (float 1e-12)) "00" 1.0 (Mat.get p 0 0);
        Alcotest.(check (float 1e-12)) "11" 4.0 (Mat.get p 1 1));
    Alcotest.test_case "transpose involution" `Quick (fun () ->
        let a = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
        let tt = Mat.transpose (Mat.transpose a) in
        Alcotest.(check (float 1e-12)) "entry" 6.0 (Mat.get tt 1 2);
        Alcotest.(check (pair int int)) "dims" (2, 3) (Mat.dims tt));
    Alcotest.test_case "mul_vec" `Quick (fun () ->
        let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
        Alcotest.(check (array (float 1e-12))) "Ax" [| 5.; 11. |]
          (Mat.mul_vec a [| 1.; 2. |]));
    Alcotest.test_case "lu solves 3x3" `Quick (fun () ->
        let a = Mat.of_rows [| [| 2.; 1.; 1. |]; [| 1.; 3.; 2. |]; [| 1.; 0.; 0. |] |] in
        let x = Lu.solve_system a [| 4.; 5.; 6. |] in
        (* from row 3: x0 = 6 *)
        check_close 1e-9 "x0" 6.0 x.(0));
    Alcotest.test_case "lu det" `Quick (fun () ->
        let a = Mat.of_rows [| [| 2.; 0. |]; [| 0.; 3. |] |] in
        check_close 1e-9 "det" 6.0 (Lu.det (Lu.factor a)));
    Alcotest.test_case "singular raises" `Quick (fun () ->
        let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
        (match Lu.factor a with
         | exception Lu.Singular _ -> ()
         | _ -> Alcotest.fail "expected Singular"));
    Alcotest.test_case "least squares fits line" `Quick (fun () ->
        (* y = 2x + 1 on 4 points *)
        let a = Mat.of_rows [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |]; [| 1.; 3. |] |] in
        let x = Lu.least_squares a [| 1.; 3.; 5.; 7. |] in
        check_close 1e-9 "intercept" 1.0 x.(0);
        check_close 1e-9 "slope" 2.0 x.(1));
    qtest
      (QCheck.Test.make ~name:"lu: A (A^-1 b) = b" ~count:50
         QCheck.(int_range 0 100000)
         (fun seed ->
           let rng = Rng.create seed in
           let n = 2 + Rng.int rng 9 in
           let a = random_matrix rng n in
           let b = Array.init n (fun _ -> Rng.uniform rng (-5.0) 5.0) in
           let x = Lu.solve_system a b in
           let r = Vec.sub (Mat.mul_vec a x) b in
           Vec.norm_inf r <= 1e-8));
  ]

(* ------------------------------ Cmat ------------------------------ *)

let complex_close msg a b =
  Alcotest.(check (float 1e-9)) (msg ^ ".re") a.Complex.re b.Complex.re;
  Alcotest.(check (float 1e-9)) (msg ^ ".im") a.Complex.im b.Complex.im

let cmat_tests =
  [
    Alcotest.test_case "complex solve 2x2" `Quick (fun () ->
        (* (1+j) x = 2 -> x = 1 - j *)
        let a = Cmat.init 1 1 (fun _ _ -> { Complex.re = 1.0; im = 1.0 }) in
        let x = Cmat.solve a [| { Complex.re = 2.0; im = 0.0 } |] in
        complex_close "x" { Complex.re = 1.0; im = -1.0 } x.(0));
    Alcotest.test_case "combine embeds g + jwc" `Quick (fun () ->
        let g = Mat.of_rows [| [| 1.0 |] |] and c = Mat.of_rows [| [| 2.0 |] |] in
        let m = Cmat.combine g c 3.0 in
        complex_close "entry" { Complex.re = 1.0; im = 6.0 } (Cmat.get m 0 0));
    qtest
      (QCheck.Test.make ~name:"cmat residual" ~count:30
         QCheck.(int_range 0 100000)
         (fun seed ->
           let rng = Rng.create seed in
           let n = 2 + Rng.int rng 5 in
           let a =
             Cmat.init n n (fun i j ->
                 let re = Rng.uniform rng (-1.0) 1.0 in
                 let im = Rng.uniform rng (-1.0) 1.0 in
                 if i = j then { Complex.re = re +. 8.0; im } else { Complex.re = re; im })
           in
           let b =
             Array.init n (fun _ ->
                 { Complex.re = Rng.uniform rng (-2.0) 2.0;
                   im = Rng.uniform rng (-2.0) 2.0 })
           in
           let x = Cmat.solve a b in
           let r = Cmat.mul_vec a x in
           Array.for_all2
             (fun ri bi -> Complex.norm (Complex.sub ri bi) <= 1e-8)
             r b));
  ]

(* ------------------------------- Rng ------------------------------ *)

let rng_tests =
  [
    Alcotest.test_case "deterministic from seed" `Quick (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        for _ = 1 to 100 do
          Alcotest.(check (float 0.0)) "same stream" (Rng.float a) (Rng.float b)
        done);
    Alcotest.test_case "split decorrelates" `Quick (fun () ->
        let a = Rng.create 42 in
        let b = Rng.split a in
        let xa = Rng.float a and xb = Rng.float b in
        Alcotest.(check bool) "different" true (xa <> xb));
    Alcotest.test_case "uniform bounds" `Quick (fun () ->
        let rng = Rng.create 1 in
        for _ = 1 to 1000 do
          let x = Rng.uniform rng 2.0 3.0 in
          Alcotest.(check bool) "in range" true (x >= 2.0 && x < 3.0)
        done);
    Alcotest.test_case "normal moments" `Quick (fun () ->
        let rng = Rng.create 7 in
        let xs = Array.init 20000 (fun _ -> Rng.normal rng) in
        check_close 0.05 "mean" 0.0 (Stats.mean xs);
        check_close 0.05 "sd" 1.0 (Stats.stddev xs));
    Alcotest.test_case "int bounds and coverage" `Quick (fun () ->
        let rng = Rng.create 3 in
        let seen = Array.make 5 false in
        for _ = 1 to 1000 do
          let k = Rng.int rng 5 in
          Alcotest.(check bool) "bound" true (k >= 0 && k < 5);
          seen.(k) <- true
        done;
        Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen));
    Alcotest.test_case "shuffle is permutation" `Quick (fun () ->
        let rng = Rng.create 5 in
        let a = Array.init 50 (fun i -> i) in
        Rng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted);
  ]

(* ------------------------------ Stats ----------------------------- *)

let stats_tests =
  [
    Alcotest.test_case "mean/variance" `Quick (fun () ->
        let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
        check_float "mean" 5.0 (Stats.mean xs);
        check_close 1e-9 "variance" (32.0 /. 7.0) (Stats.variance xs));
    Alcotest.test_case "quantiles" `Quick (fun () ->
        let xs = [| 1.; 2.; 3.; 4.; 5. |] in
        check_float "median" 3.0 (Stats.median xs);
        check_float "q0" 1.0 (Stats.quantile xs 0.0);
        check_float "q1" 5.0 (Stats.quantile xs 1.0);
        check_float "q25" 2.0 (Stats.quantile xs 0.25));
    Alcotest.test_case "quantile pins: interpolation and duplicates" `Quick
      (fun () ->
        check_float "median unsorted" 2.0 (Stats.median [| 3.; 1.; 2. |]);
        check_float "even-length median" 2.5 (Stats.median [| 4.; 1.; 3.; 2. |]);
        check_float "q75 interpolates" 3.25
          (Stats.quantile [| 1.; 2.; 3.; 4. |] 0.75);
        check_float "duplicates" 5.0 (Stats.median [| 5.; 5.; 5.; 5.; 1. |]);
        check_float "singleton" 7.0 (Stats.quantile [| 7.0 |] 0.99));
    Alcotest.test_case "quantile adversarial inputs" `Quick (fun () ->
        (* Float.compare gives a deterministic total order: NaNs sort
           first, so quantiles over the non-NaN tail stay finite *)
        check_float "median skips the leading nan" 0.75
          (Stats.median [| Float.nan; 1.0; 2.0; 0.5 |]);
        check_float "q1 with a nan present" 2.0
          (Stats.quantile [| Float.nan; 2.0; 1.0 |] 1.0);
        check_float "infinities at the extremes do not disturb" 3.0
          (Stats.median [| Float.infinity; 2.0; Float.neg_infinity; 4.0 |]);
        check_float "negative zero does not disturb" 0.0
          (Stats.median [| -0.0; 0.0; 0.0 |]);
        Alcotest.(check bool)
          "all-nan median is nan" true
          (Float.is_nan (Stats.median [| Float.nan; Float.nan |])));
    Alcotest.test_case "correlation of linear data" `Quick (fun () ->
        let xs = [| 1.; 2.; 3.; 4. |] in
        let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
        check_close 1e-9 "corr" 1.0 (Stats.correlation xs ys);
        let yneg = Array.map (fun x -> -.x) xs in
        check_close 1e-9 "anticorr" (-1.0) (Stats.correlation xs yneg));
    Alcotest.test_case "constant column correlation is 0" `Quick (fun () ->
        check_float "corr" 0.0 (Stats.correlation [| 1.; 1.; 1. |] [| 1.; 2.; 3. |]));
    Alcotest.test_case "histogram clamps outliers" `Quick (fun () ->
        (* bins are [0,0.5) and [0.5,1): 0.5 and 0.6 land in the second *)
        let h = Stats.histogram [| -10.; 0.45; 0.6; 99. |] ~bins:2 ~lo:0.0 ~hi:1.0 in
        Alcotest.(check (array int)) "counts" [| 2; 2 |] h);
    qtest
      (QCheck.Test.make ~name:"quantile monotone in q" ~count:100
         QCheck.(array_of_size (Gen.int_range 2 40) (float_range (-50.) 50.))
         (fun xs ->
           QCheck.assume (Array.length xs >= 2);
           let q1 = Stats.quantile xs 0.3 and q2 = Stats.quantile xs 0.7 in
           q1 <= q2 +. 1e-12));
  ]

(* ---------------------------- Ode/Roots --------------------------- *)

let ode_tests =
  [
    Alcotest.test_case "rk4 exponential decay" `Quick (fun () ->
        let f _ y = [| -.y.(0) |] in
        let final = Ode.integrate_final f ~t0:0.0 ~t1:1.0 ~dt:0.01 ~y0:[| 1.0 |] in
        check_close 1e-6 "e^-1" (exp (-1.0)) final.(0));
    Alcotest.test_case "rk4 harmonic oscillator conserves energy" `Quick (fun () ->
        let f _ y = [| y.(1); -.y.(0) |] in
        let final = Ode.integrate_final f ~t0:0.0 ~t1:(2.0 *. Float.pi) ~dt:0.001
                      ~y0:[| 1.0; 0.0 |]
        in
        check_close 1e-5 "x back to 1" 1.0 final.(0);
        check_close 1e-5 "v back to 0" 0.0 final.(1));
    Alcotest.test_case "trajectory includes endpoints" `Quick (fun () ->
        let f _ _ = [| 1.0 |] in
        let traj = Ode.integrate f ~t0:0.0 ~t1:0.35 ~dt:0.1 ~y0:[| 0.0 |] in
        let t_last, y_last = traj.(Array.length traj - 1) in
        check_close 1e-12 "t end" 0.35 t_last;
        check_close 1e-9 "y = t" 0.35 y_last.(0));
  ]

let roots_tests =
  [
    Alcotest.test_case "bisect sqrt2" `Quick (fun () ->
        let r = Roots.bisect (fun x -> (x *. x) -. 2.0) 0.0 2.0 in
        check_close 1e-9 "sqrt2" (sqrt 2.0) r);
    Alcotest.test_case "brent sqrt2" `Quick (fun () ->
        let r = Roots.brent (fun x -> (x *. x) -. 2.0) 0.0 2.0 in
        check_close 1e-9 "sqrt2" (sqrt 2.0) r);
    Alcotest.test_case "brent transcendental" `Quick (fun () ->
        let r = Roots.brent (fun x -> cos x -. x) 0.0 1.0 in
        check_close 1e-9 "dottie" 0.7390851332151607 r);
    Alcotest.test_case "no sign change rejected" `Quick (fun () ->
        (match Roots.brent (fun x -> (x *. x) +. 1.0) 0.0 1.0 with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "find_bracket" `Quick (fun () ->
        match Roots.find_bracket (fun x -> x -. 0.55) ~lo:0.0 ~hi:1.0 ~steps:10 with
        | Some (a, b) ->
          Alcotest.(check bool) "brackets root" true (a <= 0.55 && 0.55 <= b)
        | None -> Alcotest.fail "expected a bracket");
  ]

(* --------------------------- Interp/Poly -------------------------- *)

let interp_tests =
  [
    Alcotest.test_case "linear interpolation" `Quick (fun () ->
        let pts = [| (0.0, 0.0); (1.0, 10.0) |] in
        check_float "mid" 5.0 (Interp.linear pts 0.5);
        check_float "clamp lo" 0.0 (Interp.linear pts (-1.0));
        check_float "clamp hi" 10.0 (Interp.linear pts 2.0));
    Alcotest.test_case "crossing detection" `Quick (fun () ->
        let pts = [| (0.0, 0.0); (1.0, 2.0); (2.0, 0.0) |] in
        (match Interp.crossing pts ~level:1.0 ~direction:`Rising with
         | Some t -> check_float "rising" 0.5 t
         | None -> Alcotest.fail "no rising crossing");
        (match Interp.crossing pts ~level:1.0 ~direction:`Falling with
         | Some t -> check_float "falling" 1.5 t
         | None -> Alcotest.fail "no falling crossing");
        Alcotest.(check int) "both" 2
          (List.length (Interp.crossings pts ~level:1.0 ~direction:`Any)));
    Alcotest.test_case "linspace/logspace" `Quick (fun () ->
        let xs = Interp.linspace 0.0 1.0 5 in
        check_float "second" 0.25 xs.(1);
        let ls = Interp.logspace 1.0 1000.0 4 in
        check_close 1e-9 "log step" 10.0 ls.(1));
    Alcotest.test_case "poly eval/derive" `Quick (fun () ->
        (* 1 + 2x + 3x^2 *)
        let p = [| 1.; 2.; 3. |] in
        check_float "eval" 17.0 (Poly.eval p 2.0);
        Alcotest.(check (array (float 1e-12))) "derive" [| 2.; 6. |] (Poly.derive p));
    Alcotest.test_case "poly fit quadratic exactly" `Quick (fun () ->
        let pts = Array.init 6 (fun i ->
            let x = float_of_int i in
            (x, 2.0 +. (0.5 *. x) -. (3.0 *. x *. x)))
        in
        let c = Poly.fit pts ~degree:2 in
        check_close 1e-7 "c0" 2.0 c.(0);
        check_close 1e-7 "c1" 0.5 c.(1);
        check_close 1e-7 "c2" (-3.0) c.(2));
    Alcotest.test_case "poly roots_in" `Quick (fun () ->
        (* (x-0.55)(x+1.35): roots off the scan grid *)
        let roots =
          Poly.roots_in [| -0.7425; 0.8; 1. |] ~lo:(-5.0) ~hi:5.0 ~steps:100
        in
        Alcotest.(check int) "two roots" 2 (List.length roots);
        (match roots with
         | [ r1; r2 ] ->
           Alcotest.(check (float 1e-6)) "first" (-1.35) r1;
           Alcotest.(check (float 1e-6)) "second" 0.55 r2
         | _ -> Alcotest.fail "expected exactly two roots"));
    qtest
      (QCheck.Test.make ~name:"poly add is pointwise" ~count:100
         QCheck.(triple (array_of_size (Gen.int_range 0 5) (float_range (-3.) 3.))
                   (array_of_size (Gen.int_range 0 5) (float_range (-3.) 3.))
                   (float_range (-2.) 2.))
         (fun (a, b, x) ->
           let lhs = Poly.eval (Poly.add a b) x in
           let rhs = Poly.eval a x +. Poly.eval b x in
           Float.abs (lhs -. rhs) <= 1e-6 *. (1.0 +. Float.abs rhs)));
    qtest
      (QCheck.Test.make ~name:"poly mul is pointwise" ~count:100
         QCheck.(triple (array_of_size (Gen.int_range 0 4) (float_range (-3.) 3.))
                   (array_of_size (Gen.int_range 0 4) (float_range (-3.) 3.))
                   (float_range (-2.) 2.))
         (fun (a, b, x) ->
           let lhs = Poly.eval (Poly.mul a b) x in
           let rhs = Poly.eval a x *. Poly.eval b x in
           Float.abs (lhs -. rhs) <= 1e-6 *. (1.0 +. Float.abs rhs)));
  ]

(* Properties over randomly generated instances (the deterministic unit
   tests above pin specific values; these pin laws). *)
let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs b)

let property_tests =
  [
    qtest
      (QCheck.Test.make ~name:"lu solves diagonally dominant systems" ~count:100
         QCheck.(pair (int_range 1 8) (int_range 0 10_000))
         (fun (n, seed) ->
           let rng = Rng.create ((seed * 7919) + 11) in
           let a =
             Mat.init n n (fun i j ->
                 if i = j then 0.0 else Rng.uniform rng (-1.0) 1.0)
           in
           (* strict dominance keeps the condition number small, so the
              residual bound below is honest rather than generous *)
           for i = 0 to n - 1 do
             let s = ref 0.0 in
             for j = 0 to n - 1 do
               s := !s +. Float.abs (Mat.get a i j)
             done;
             Mat.set a i i (!s +. 1.0 +. Rng.float rng)
           done;
           let b = Vec.init n (fun _ -> Rng.uniform rng (-5.0) 5.0) in
           let x = Lu.solve_system a b in
           let r = Vec.sub (Mat.mul_vec a x) b in
           Vec.norm_inf r <= 1e-10 *. (1.0 +. Vec.norm_inf b)));
    qtest
      (QCheck.Test.make ~name:"stats mean/variance match naive two-pass"
         ~count:200
         QCheck.(
           array_of_size (Gen.int_range 2 50) (float_range (-100.0) 100.0))
         (fun xs ->
           let n = float_of_int (Array.length xs) in
           let m = Array.fold_left ( +. ) 0.0 xs /. n in
           let v =
             Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
             /. (n -. 1.0)
           in
           close (Stats.mean xs) m && close (Stats.variance xs) v));
    qtest
      (QCheck.Test.make ~name:"rng split streams are deterministic" ~count:100
         QCheck.(pair (int_range 0 100_000) (int_range 2 5))
         (fun (seed, n_splits) ->
           let draw () =
             let root = Rng.create seed in
             let streams = Array.init n_splits (fun _ -> Rng.split root) in
             ( Array.map
                 (fun s -> Array.init 8 (fun _ -> Rng.uint64 s))
                 streams,
               Array.init 4 (fun _ -> Rng.uint64 root) )
           in
           let a = draw () and b = draw () in
           (* replaying the seed reproduces every sub-stream AND leaves
              the parent at the same point; sibling streams differ *)
           a = b && fst a |> fun streams -> streams.(0) <> streams.(1)));
  ]

let suites =
  [
    ("numerics.vec", vec_tests);
    ("numerics.mat_lu", mat_tests);
    ("numerics.cmat", cmat_tests);
    ("numerics.rng", rng_tests);
    ("numerics.stats", stats_tests);
    ("numerics.ode", ode_tests);
    ("numerics.roots", roots_tests);
    ("numerics.interp_poly", interp_tests);
    ("numerics.properties", property_tests);
  ]
