(* The network serving stack: protocol frames, the versioned registry
   with hot reload, and the live loopback server against the offline
   Floor reference. *)

module Compaction = Stc.Compaction
module Tester = Stc.Tester
module Guard_band = Stc.Guard_band
module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Gen = Stc_qa.Gen
module Protocol = Stc_net.Protocol
module Registry = Stc_net.Registry
module Server = Stc_net.Server
module Client = Stc_net.Client
module Obs = Stc_obs.Registry
module Json = Stc_obs.Json

let pooled seed ~rows =
  Gen.run ~seed (Gen.flow_with_rows ~rows_per_flow:rows)

(* the contract the wire must reproduce bit-identically *)
let offline_reference flow rows =
  Floor.with_engine flow (fun engine ->
      Floor.process ~retest:(Floor.full_test flow) engine rows)

let outcome =
  Alcotest.testable
    (fun fmt o -> Format.pp_print_string fmt (Protocol.format_outcome o))
    ( = )

let check_outcomes what reference got =
  Alcotest.(check (array outcome)) what reference got

let save_flow_tmp flow =
  let path = Filename.temp_file "stc_test_net" ".flow" in
  (match Flow_io.save ~path flow with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("cannot save flow: " ^ e));
  path

let with_served ?config flow f =
  let path = save_flow_tmp flow in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let registry = Registry.create () in
      let entry =
        match Registry.load registry ~name:"dut" ~path with
        | Ok e -> e
        | Error e -> Alcotest.fail e
      in
      Fun.protect
        ~finally:(fun () -> Registry.shutdown registry)
        (fun () ->
          Server.with_server ?config registry (fun server ->
              f ~server ~registry ~entry ~path)))

let with_client ~server f =
  let c = Client.connect ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.quit c) (fun () -> f c)

let get = function Ok v -> v | Error e -> Alcotest.fail e

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------ protocol -------------------------- *)

let protocol_tests =
  [
    Alcotest.test_case "requests round-trip through the wire form" `Quick
      (fun () ->
        List.iter
          (fun req ->
            match Protocol.parse_request (Protocol.format_request req) with
            | Ok back ->
              Alcotest.(check string)
                "round trip"
                (Protocol.format_request req)
                (Protocol.format_request back)
            | Error e -> Alcotest.fail e)
          [
            Protocol.Ping;
            Protocol.Flows;
            Protocol.Flush;
            Protocol.Quit;
            Protocol.Shutdown;
            Protocol.Metrics Protocol.Text;
            Protocol.Metrics Protocol.Json;
            Protocol.Info "opamp";
            Protocol.Stats "mems.hot-1";
            Protocol.Batch ("a_b:c", 4096);
            Protocol.Bin ("dut", [| 0.1; -3.25e-7; 1234567.875; 0.0 |]);
            Protocol.Reload { flow = "dut"; path = None };
            Protocol.Reload
              { flow = "dut"; path = Some "/tmp/with space/flow.stc" };
            Protocol.Health None;
            Protocol.Health (Some "mems.hot-1");
          ]);
    Alcotest.test_case "rows keep every bit through %.17g" `Quick (fun () ->
        let row =
          [| 1.0 /. 3.0; -1.2345678901234567e-300; 6.02214076e23; 0.1 |]
        in
        let back = get (Protocol.parse_row (Protocol.format_row row)) in
        Alcotest.(check (array (float 0.0))) "bit-identical" row back);
    Alcotest.test_case "all nine outcomes round-trip" `Quick (fun () ->
        List.iter
          (fun bin ->
            List.iter
              (fun verdict ->
                let o = { Floor.bin; verdict } in
                Alcotest.check outcome "round trip" o
                  (get (Protocol.parse_outcome (Protocol.format_outcome o))))
              [ Guard_band.Good; Guard_band.Bad; Guard_band.Guard ])
          [ Tester.Ship; Tester.Scrap; Tester.Retest ]);
    Alcotest.test_case "malformed requests are typed errors" `Quick (fun () ->
        List.iter
          (fun line ->
            match Protocol.parse_request line with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed" line))
          [
            "";
            "BOGUS";
            "BIN";
            "BIN dut";
            "BIN dut 1.0,x";
            "BIN dut 1.0,nan";
            "BIN b@d 1.0";
            "BATCH dut -1";
            "BATCH dut many";
            "METRICS xml";
            "INFO";
            "bin dut 1.0";
            "HEALTH b@d";
            "HEALTH two flows";
          ]);
    Alcotest.test_case "flow names are fenced" `Quick (fun () ->
        List.iter
          (fun (name, ok) ->
            Alcotest.(check bool) name ok (Protocol.flow_name_ok name))
          [
            ("opamp", true);
            ("mems.hot:T-40_v2", true);
            (String.make 64 'x', true);
            (String.make 65 'x', false);
            ("", false);
            ("sp ace", false);
            ("new\nline", false);
            ("s/lash", false);
          ]);
    Alcotest.test_case "replies parse and never embed frame breaks" `Quick
      (fun () ->
        (match Protocol.parse_reply (Protocol.ok_line "pong") with
         | Ok (`Ok "pong") -> ()
         | _ -> Alcotest.fail "OK reply");
        (match
           Protocol.parse_reply (Protocol.err_line ~code:"bad-row" "line\nbreak")
         with
         | Ok (`Err ("bad-row", msg)) ->
           Alcotest.(check bool) "flattened" false (String.contains msg '\n')
         | _ -> Alcotest.fail "ERR reply");
        match Protocol.parse_reply "NONSENSE" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage reply parsed");
  ]

(* ------------------------------ registry -------------------------- *)

let registry_tests =
  [
    Alcotest.test_case "add, find, duplicate and bad names" `Quick (fun () ->
        let flow, _ = pooled 31 ~rows:4 in
        let r = Registry.create () in
        let entry = get (Registry.add r ~name:"a" flow) in
        Alcotest.(check bool) "found" true (Registry.find r "a" <> None);
        Alcotest.(check bool) "missing" true (Registry.find r "b" = None);
        (match Registry.add r ~name:"a" flow with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "duplicate accepted");
        (match Registry.add r ~name:"b a d" flow with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "invalid name accepted");
        let st = Registry.status entry in
        Alcotest.(check int) "version 1" 1 st.Registry.version;
        Alcotest.(check string)
          "fingerprint is the flow's"
          (get (Flow_io.fingerprint flow))
          st.Registry.fingerprint;
        Registry.shutdown r);
    Alcotest.test_case "process refuses width mismatches whole" `Quick
      (fun () ->
        let flow, rows = pooled 32 ~rows:3 in
        let r = Registry.create () in
        let entry = get (Registry.add r ~name:"a" flow) in
        let bad = Array.append rows [| [| 1.0 |] |] in
        (match Registry.process entry bad with
         | Error e ->
           Alcotest.(check bool) "names the flow" true
             (String.length e > 0)
         | Ok _ -> Alcotest.fail "ragged batch accepted");
        let reference = offline_reference flow rows in
        check_outcomes "intact rows still served" reference
          (get (Registry.process entry rows));
        Registry.shutdown r);
    Alcotest.test_case "reload: unchanged, swapped, failed, forced" `Quick
      (fun () ->
        let flow, rows = pooled 33 ~rows:4 in
        let path = Filename.temp_file "stc_test_net" ".flow" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            (match Flow_io.save ~path flow with
             | Ok () -> ()
             | Error e -> Alcotest.fail e);
            let r = Registry.create () in
            let entry = get (Registry.load r ~name:"a" ~path) in
            (* same bytes: no churn *)
            (match Registry.reload r ~name:"a" with
             | Ok (`Unchanged st) ->
               Alcotest.(check int) "version kept" 1 st.Registry.version
             | Ok (`Reloaded _) -> Alcotest.fail "same bytes churned the engine"
             | Error e -> Alcotest.fail e);
            (* forced: a genuine swap of identical semantics *)
            (match Registry.reload ~force:true r ~name:"a" with
             | Ok (`Reloaded st) ->
               Alcotest.(check int) "version bumped" 2 st.Registry.version
             | Ok (`Unchanged _) -> Alcotest.fail "force did not swap"
             | Error e -> Alcotest.fail e);
            let reference = offline_reference flow rows in
            check_outcomes "identical verdicts after forced swap" reference
              (get (Registry.process entry rows));
            (* a different flow: swap + versions advance *)
            let identity = Compaction.identity_flow flow.Compaction.specs in
            (match Flow_io.save ~path identity with
             | Ok () -> ()
             | Error e -> Alcotest.fail e);
            (match Registry.reload r ~name:"a" with
             | Ok (`Reloaded st) ->
               Alcotest.(check int) "version 3" 3 st.Registry.version;
               Alcotest.(check int) "all specs kept now"
                 (Array.length flow.Compaction.specs)
                 st.Registry.kept
             | Ok (`Unchanged _) -> Alcotest.fail "new flow not swapped"
             | Error e -> Alcotest.fail e);
            (* a corrupt file must leave the new flow serving *)
            let oc = open_out path in
            output_string oc "stc-flow-999\ngarbage\n";
            close_out oc;
            (match Registry.reload r ~name:"a" with
             | Error _ -> ()
             | Ok _ -> Alcotest.fail "corrupt file accepted");
            let st = Registry.status entry in
            Alcotest.(check int) "version untouched" 3 st.Registry.version;
            check_outcomes "identity flow still serving"
              (offline_reference identity rows)
              (get (Registry.process entry rows));
            Registry.shutdown r));
    Alcotest.test_case "breaker trips on repeated crashes, recycle heals"
      `Quick (fun () ->
        let flow, rows = pooled 35 ~rows:4 in
        let breaker =
          (* a huge cooldown pins the breaker open: this test drives the
             manual recycle path, the chaos gate drives the auto one *)
          {
            Registry.failure_threshold = 2;
            cooldown_s = 30.0;
            cooldown_backoff = 2.0;
            max_cooldown_s = 60.0;
          }
        in
        let r = Registry.create ~breaker () in
        let entry = get (Registry.add r ~name:"a" flow) in
        let reference = offline_reference flow rows in
        let shed_reference =
          Array.map
            (fun _ ->
              { Floor.bin = Tester.Retest; verdict = Guard_band.Guard })
            rows
        in
        check_outcomes "healthy before faults" reference
          (get (Registry.process entry rows));
        Registry.inject_engine_faults entry 2;
        check_outcomes "first crash sheds RETEST" shed_reference
          (get (Registry.process entry rows));
        Alcotest.(check bool) "one failure stays closed" true
          (Registry.breaker entry = Registry.Closed);
        check_outcomes "second crash sheds RETEST" shed_reference
          (get (Registry.process entry rows));
        Alcotest.(check bool) "threshold trips the breaker" true
          (Registry.breaker entry = Registry.Open);
        check_outcomes "open breaker sheds without the engine" shed_reference
          (get (Registry.process entry rows));
        Alcotest.(check int) "trip recorded" 1
          (Registry.status entry).Registry.breaker_trips;
        Registry.recycle entry;
        Alcotest.(check bool) "recycle closes the breaker" true
          (Registry.breaker entry = Registry.Closed);
        check_outcomes "bit-identical after recycle" reference
          (get (Registry.process entry rows));
        Registry.shutdown r);
    Alcotest.test_case "reload without a source is an error" `Quick (fun () ->
        let flow, _ = pooled 34 ~rows:3 in
        let r = Registry.create () in
        let _entry = get (Registry.add r ~name:"a" flow) in
        (match Registry.reload r ~name:"a" with
         | Error e ->
           Alcotest.(check bool) "mentions source" true
             (String.length e > 0)
         | Ok _ -> Alcotest.fail "reload without source succeeded");
        (match Registry.reload r ~name:"ghost" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "unknown flow reloaded");
        Registry.shutdown r);
  ]

(* ------------------------------- server --------------------------- *)

let server_tests =
  [
    Alcotest.test_case "streamed and batched rows match the offline engine"
      `Quick (fun () ->
        let flow, rows = pooled 41 ~rows:24 in
        let reference = offline_reference flow rows in
        with_served flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            with_client ~server (fun c ->
                check_outcomes "BATCH path" reference
                  (get (Client.bin_batch c ~flow:"dut" rows));
                check_outcomes "pipelined BIN path" reference
                  (get (Client.stream c ~flow:"dut" rows));
                (match Client.ping c with
                 | Ok () -> ()
                 | Error e -> Alcotest.fail e))));
    Alcotest.test_case "deadline flush answers a trickling client" `Quick
      (fun () ->
        let flow, rows = pooled 42 ~rows:4 in
        let reference = offline_reference flow rows in
        let config =
          { Server.default_config with
            Server.flush_rows = 1000; flush_deadline_s = 0.02 }
        in
        with_served ~config flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            with_client ~server (fun c ->
                (* one lone BIN, nothing else: only the deadline can
                   flush it *)
                Client.send_line c
                  (Protocol.format_request (Protocol.Bin ("dut", rows.(0))));
                let t0 = Unix.gettimeofday () in
                let o = get (Protocol.parse_outcome (Client.recv_line c)) in
                let waited = Unix.gettimeofday () -. t0 in
                Alcotest.check outcome "verdict" reference.(0) o;
                Alcotest.(check bool) "within ~10x deadline" true
                  (waited < 0.2))));
    Alcotest.test_case "unknown flows and bad rows keep the order" `Quick
      (fun () ->
        let flow, rows = pooled 43 ~rows:6 in
        let reference = offline_reference flow rows in
        with_served flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            with_client ~server (fun c ->
                (* a bad row in the middle of a pipeline: replies stay
                   aligned, the connection stays up *)
                Client.send_line c
                  (Protocol.format_request (Protocol.Bin ("dut", rows.(0))));
                Client.send_line c
                  (Protocol.format_request (Protocol.Bin ("ghost", rows.(1))));
                Client.send_line c
                  (Protocol.format_request (Protocol.Bin ("dut", rows.(2))));
                Client.send_line c (Protocol.format_request Protocol.Flush);
                Alcotest.check outcome "row 0" reference.(0)
                  (get (Protocol.parse_outcome (Client.recv_line c)));
                (match Protocol.parse_reply (Client.recv_line c) with
                 | Ok (`Err ("unknown-flow", _)) -> ()
                 | other ->
                   Alcotest.fail
                     (match other with
                      | Ok (`Ok d) -> "unexpected OK " ^ d
                      | Ok (`Err (c, m)) -> "unexpected ERR " ^ c ^ " " ^ m
                      | Error e -> e));
                Alcotest.check outcome "row 2" reference.(2)
                  (get (Protocol.parse_outcome (Client.recv_line c)));
                (match Protocol.parse_reply (Client.recv_line c) with
                 | Ok (`Ok _) -> ()
                 | _ -> Alcotest.fail "missing FLUSH ack"))));
    Alcotest.test_case
      "concurrent clients stay bit-identical across a live hot reload"
      `Quick (fun () ->
        let flow, rows = pooled 44 ~rows:40 in
        let reference = offline_reference flow rows in
        with_served flow (fun ~server ~registry ~entry ~path ->
            let n_clients = 4 in
            let iters = 3 in
            let errors = Array.make n_clients None in
            let running = Atomic.make n_clients in
            let threads =
              Array.init n_clients (fun k ->
                  Thread.create
                    (fun () ->
                      Fun.protect
                        ~finally:(fun () -> Atomic.decr running)
                        (fun () ->
                          try
                            with_client ~server (fun c ->
                                for _ = 1 to iters do
                                  let got =
                                    get
                                      (if k mod 2 = 0 then
                                         Client.bin_batch c ~flow:"dut" rows
                                       else Client.stream c ~flow:"dut" rows)
                                  in
                                  check_outcomes "verdicts" reference got
                                done)
                          with e -> errors.(k) <- Some (Printexc.to_string e)))
                    ())
            in
            (* mid-run: a protocol reload to the identical file (no-op)
               and forced in-process swaps (genuine drains) *)
            let reloads = ref 0 in
            with_client ~server (fun admin ->
                (match Client.reload admin ~flow:"dut" () with
                 | Ok (`Unchanged, _) -> ()
                 | Ok (`Reloaded, _) ->
                   Alcotest.fail "identical file reported Reloaded"
                 | Error e -> Alcotest.fail e);
                while Atomic.get running > 0 && !reloads < 100 do
                  (match
                     Registry.reload ~force:true ~path registry ~name:"dut"
                   with
                   | Ok (`Reloaded _) -> incr reloads
                   | Ok (`Unchanged _) -> Alcotest.fail "force did not swap"
                   | Error e -> Alcotest.fail e);
                  Thread.delay 0.002
                done);
            Array.iter Thread.join threads;
            Array.iter
              (function
                | None -> ()
                | Some e -> Alcotest.fail ("client thread: " ^ e))
              errors;
            Alcotest.(check bool) "at least one live swap" true (!reloads > 0);
            Alcotest.(check int) "version tracked every swap" (1 + !reloads)
              (Registry.status entry).Registry.version));
    Alcotest.test_case "METRICS serves live parseable counters" `Quick
      (fun () ->
        let flow, rows = pooled 45 ~rows:12 in
        with_served flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            with_client ~server (fun c ->
                let (_ : Floor.outcome array) =
                  get (Client.bin_batch c ~flow:"dut" rows)
                in
                (* the text form round-trips through the stc-metrics-1
                   parser *)
                let text = get (Client.metrics c ()) in
                let flat = get (Obs.parse_text text) in
                let value name =
                  match List.assoc_opt name flat with
                  | Some v -> v
                  | None -> Alcotest.fail ("missing metric " ^ name)
                in
                Alcotest.(check bool) "requests counted" true
                  (value "stc_net_requests_total" >= 1.0);
                Alcotest.(check bool) "rows counted" true
                  (value "stc_net_rows_total" >= float_of_int (Array.length rows));
                Alcotest.(check bool) "batches counted" true
                  (value "stc_net_batches_total" >= 1.0);
                (* the JSON form parses with the Stc_obs JSON parser *)
                let json = get (Client.metrics c ~format:Protocol.Json ()) in
                match Json.of_string json with
                | Error e -> Alcotest.fail ("metrics JSON: " ^ e)
                | Ok doc -> (
                  match Json.member "stc_net_requests_total" doc with
                  | Some (Json.Num n) ->
                    Alcotest.(check bool) "JSON requests counted" true (n >= 1.0)
                  | _ ->
                    Alcotest.fail
                      "metrics JSON lacks stc_net_requests_total"))));
    Alcotest.test_case "client killed mid-batch does not kill the server"
      `Quick (fun () ->
        (* the SIGPIPE regression (fault path also swept in selftest):
           a client pushes a full batch plus a tail of PINGs and closes
           without reading, so the handler writes into a dead socket;
           the server must tear down that connection, count a
           disconnect, and keep serving *)
        let flow, rows = pooled 48 ~rows:16 in
        let reference = offline_reference flow rows in
        let disconnects_before =
          float_of_int (Obs.Counter.get (Obs.counter "stc_net_disconnects_total"))
        in
        with_served flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
            let buf = Buffer.create 1024 in
            Buffer.add_string buf
              (Printf.sprintf "BATCH dut %d\n" (Array.length rows));
            Array.iter
              (fun r -> Buffer.add_string buf (Protocol.format_row r ^ "\n"))
              rows;
            for _ = 1 to 32 do
              Buffer.add_string buf "PING\n"
            done;
            let s = Buffer.contents buf in
            ignore (Unix.write_substring fd s 0 (String.length s));
            (* SO_LINGER 0 turns the close into an immediate RST, so
               the handler's replies meet a dead socket no matter how
               fast it drains its queue *)
            Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
            Unix.close fd;
            (* wait (bounded) for the handler to hit the dead socket *)
            let deadline = Unix.gettimeofday () +. 2.0 in
            let disconnects () =
              float_of_int
                (Obs.Counter.get (Obs.counter "stc_net_disconnects_total"))
            in
            while
              disconnects () <= disconnects_before
              && Unix.gettimeofday () < deadline
            do
              Thread.delay 0.01
            done;
            Alcotest.(check bool) "disconnect counted" true
              (disconnects () > disconnects_before);
            (* the server is alive and bit-identical for a fresh client *)
            with_client ~server (fun c ->
                check_outcomes "after write-after-close" reference
                  (get (Client.bin_batch c ~flow:"dut" rows)))));
    Alcotest.test_case "HEALTH tracks the per-flow breaker over the wire"
      `Quick (fun () ->
        let flow, rows = pooled 49 ~rows:6 in
        let reference = offline_reference flow rows in
        with_served flow (fun ~server ~registry:_ ~entry ~path:_ ->
            with_client ~server (fun c ->
                let h = get (Client.health c ()) in
                Alcotest.(check bool) "server healthy" true
                  (contains ~needle:"health serving" h
                  && contains ~needle:"breakers-open 0" h);
                let hf = get (Client.health c ~flow:"dut" ()) in
                Alcotest.(check bool) "flow breaker closed" true
                  (contains ~needle:"breaker closed" hf);
                (match Client.health c ~flow:"ghost" () with
                 | Error _ -> ()
                 | Ok d -> Alcotest.fail ("HEALTH on a ghost flow: " ^ d));
                (* crash the engine past the default threshold: the
                   rows still get replies (RETEST), HEALTH flips *)
                Registry.inject_engine_faults entry 3;
                for _ = 1 to 3 do
                  let shed = get (Client.bin_batch c ~flow:"dut" rows) in
                  Array.iter
                    (fun (o : Floor.outcome) ->
                      Alcotest.(check bool) "shed as RETEST" true
                        (o.Floor.bin = Tester.Retest))
                    shed
                done;
                let hf = get (Client.health c ~flow:"dut" ()) in
                Alcotest.(check bool) "flow breaker open" true
                  (contains ~needle:"breaker open" hf);
                let h = get (Client.health c ()) in
                Alcotest.(check bool) "server counts the open breaker" true
                  (contains ~needle:"breakers-open 1" h);
                (* a manual recycle heals it, bit-identically *)
                Registry.recycle entry;
                let hf = get (Client.health c ~flow:"dut" ()) in
                Alcotest.(check bool) "flow breaker closed again" true
                  (contains ~needle:"breaker closed" hf);
                check_outcomes "bit-identical after recycle" reference
                  (get (Client.bin_batch c ~flow:"dut" rows)))));
    Alcotest.test_case "drain answers half-flushed batches then stops"
      `Quick (fun () ->
        let flow, rows = pooled 50 ~rows:20 in
        let reference = offline_reference flow rows in
        let n = Array.length rows in
        let half = n / 2 in
        let config =
          { Server.default_config with Server.drain_deadline_s = 10.0 }
        in
        with_served ~config flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            (* two clients park a half-delivered BATCH each *)
            let open_half () =
              let c = Client.connect ~port:(Server.port server) () in
              Client.send_line c
                (Protocol.format_request (Protocol.Batch ("dut", n)));
              for i = 0 to half - 1 do
                Client.send_line c (Protocol.format_row rows.(i))
              done;
              c
            in
            let a = open_half () in
            let b = open_half () in
            let idle = Client.connect ~port:(Server.port server) () in
            with_client ~server (fun admin ->
                match Client.shutdown admin with
                | Ok () -> ()
                | Error e -> Alcotest.fail e);
            let t0 = Unix.gettimeofday () in
            let waiter =
              Thread.create (fun () -> Server.wait ~poll_s:0.01 server) ()
            in
            let deadline = Unix.gettimeofday () +. 2.0 in
            while
              (not (Server.draining server))
              && Unix.gettimeofday () < deadline
            do
              Thread.delay 0.005
            done;
            Alcotest.(check bool) "draining engaged" true
              (Server.draining server);
            (* a new connection is shed with a typed line *)
            let rej = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect rej
              (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
            let rej_ic = Unix.in_channel_of_descr rej in
            (match input_line rej_ic with
             | line ->
               Alcotest.(check bool) "ERR draining for new connections" true
                 (contains ~needle:"ERR draining" line)
             | exception End_of_file ->
               Alcotest.fail "new connection closed without ERR draining");
            close_in_noerr rej_ic;
            (* new work on an already-open connection is refused too *)
            (match Client.health idle () with
             | Error e ->
               Alcotest.(check bool) "HEALTH says draining" true
                 (contains ~needle:"draining" e)
             | Ok d -> Alcotest.fail ("HEALTH during drain: " ^ d));
            Client.close idle;
            (* the parked batches deliver their second halves under the
               drain and still get every verdict, bit-identically *)
            let finish c =
              for i = half to n - 1 do
                Client.send_line c (Protocol.format_row rows.(i))
              done;
              (match Protocol.parse_reply (Client.recv_line c) with
               | Ok (`Ok _) -> ()
               | _ -> Alcotest.fail "missing batch ack");
              let got =
                Array.init n (fun _ ->
                    get (Protocol.parse_outcome (Client.recv_line c)))
              in
              check_outcomes "drained batch bit-identical" reference got;
              Client.quit c
            in
            finish a;
            finish b;
            Thread.join waiter;
            let waited = Unix.gettimeofday () -. t0 in
            Alcotest.(check bool) "stopped well before the drain deadline"
              true (waited < 8.0);
            Alcotest.(check bool) "stopped" false (Server.running server)));
    Alcotest.test_case "SHUTDOWN latches and wait stops the server" `Quick
      (fun () ->
        let flow, _ = pooled 46 ~rows:3 in
        with_served flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            with_client ~server (fun c ->
                (match Client.shutdown c with
                 | Ok () -> ()
                 | Error e -> Alcotest.fail e);
                Alcotest.(check bool) "latched" true
                  (Server.shutdown_requested server));
            Server.wait ~poll_s:0.01 server;
            Alcotest.(check bool) "stopped" false (Server.running server)));
    Alcotest.test_case "INFO, FLOWS and STATS describe the route" `Quick
      (fun () ->
        let flow, rows = pooled 47 ~rows:5 in
        with_served flow (fun ~server ~registry:_ ~entry:_ ~path:_ ->
            with_client ~server (fun c ->
                let (_ : Floor.outcome array) =
                  get (Client.bin_batch c ~flow:"dut" rows)
                in
                let lines = get (Client.flows c) in
                Alcotest.(check int) "one flow" 1 (List.length lines);
                Alcotest.(check bool) "names the route" true
                  (String.length (List.hd lines) > 5);
                let info = get (Client.info c ~flow:"dut") in
                Alcotest.(check bool) "info has fingerprint" true
                  (String.length info > 0);
                let stats = get (Client.stats c ~flow:"dut") in
                Alcotest.(check bool) "stats counted the devices" true
                  (String.length stats > 0);
                match Client.info c ~flow:"ghost" with
                | Error _ -> ()
                | Ok _ -> Alcotest.fail "INFO on a ghost flow succeeded")));
  ]

let suites =
  [
    ("net protocol", protocol_tests);
    ("net registry", registry_tests);
    ("net server", server_tests);
  ]
