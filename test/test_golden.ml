(* Paper-golden regression suite: locks the headline results of the
   paper's evaluation (Sec. 5) behind explicit thresholds, so a change
   that quietly degrades compaction quality fails the build.

   Two tiers, both seeded and deterministic:
   - smoke (always on): reduced populations, loosened thresholds — a
     canary that the whole pipeline still compacts at all;
   - paper level (STC_SLOW=1): near-paper populations and the paper's
     own acceptance bars — op-amp drops at least 5 of the 11 tests with
     defect escape <= 1.0% and yield loss <= 1.5%; MEMS eliminates both
     temperature tests at <= 0.5% error with > 50% cost saving. *)

module Experiment = Stc.Experiment
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Cost = Stc.Cost
module Order = Stc.Order

let slow =
  match Sys.getenv_opt "STC_SLOW" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let seed = 2005

let check_le name limit v =
  if not (v <= limit) then
    Alcotest.failf "%s: %.3f exceeds the golden threshold %.3f" name v limit

let check_ge name floor v =
  if not (v >= floor) then
    Alcotest.failf "%s: %.3f below the golden threshold %.3f" name v floor

(* ------------------------- op-amp greedy -------------------------- *)

let opamp_greedy ~n_train ~n_test =
  let train, test = Experiment.generate_opamp ~seed ~n_train ~n_test () in
  let result =
    Compaction.greedy
      ~order:(Order.Given Experiment.opamp_examination_order)
      Experiment.opamp_config ~train ~test
  in
  let counts = Compaction.evaluate_flow result.Compaction.flow test in
  (Array.length result.Compaction.flow.Compaction.dropped, counts)

let opamp_case ~label ~n_train ~n_test ~min_dropped ~max_escape ~max_loss =
  Alcotest.test_case label `Slow (fun () ->
      let dropped, counts = opamp_greedy ~n_train ~n_test in
      check_ge "tests dropped" (float_of_int min_dropped)
        (float_of_int dropped);
      check_le "defect escape %" max_escape (Metrics.escape_pct counts);
      check_le "yield loss %" max_loss (Metrics.loss_pct counts))

(* --------------------- MEMS temperature tests --------------------- *)

let mems_both ~n_train ~n_test =
  let train, test = Experiment.generate_mems ~seed ~n_train ~n_test () in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  let counts, _ =
    Compaction.eliminate Experiment.mems_config ~train ~test ~dropped:both
  in
  let room = Array.init 5 (fun k -> k) in
  let room_pass = ref 0 in
  for i = 0 to Device_data.n_instances test - 1 do
    if Device_data.passes_subset test ~instance:i ~subset:room then
      incr room_pass
  done;
  let cost =
    Cost.tri_temperature ~n:counts.Metrics.total ~room_pass:!room_pass
      ~guard:counts.Metrics.guards ()
  in
  (counts, cost)

let mems_case ~label ~n_train ~n_test ~max_error ~min_saving =
  Alcotest.test_case label `Slow (fun () ->
      let counts, cost = mems_both ~n_train ~n_test in
      check_le "defect escape %" max_error (Metrics.escape_pct counts);
      check_le "yield loss %" max_error (Metrics.loss_pct counts);
      check_ge "cost saving %" min_saving cost.Cost.saving_pct)

(* --------------------- stc-flow-2 byte pin ------------------------ *)

(* The first multi-model-family container: an op-amp flow trained with
   the MLP learner must keep producing these exact bytes. The pin
   covers the whole chain — MLP training determinism, the stc-mlp-1
   body, Model_text embedding, and the stc-flow-2 container — so any
   accidental format or arithmetic drift fails here by fingerprint. *)
let flow2_fingerprint = "bc4fa8c4800083cf"

let flow2_pin =
  Alcotest.test_case "golden: stc-flow-2 op-amp flow bytes pinned" `Quick
    (fun () ->
      let train, test =
        Experiment.generate_opamp ~seed:701 ~n_train:80 ~n_test:40 ()
      in
      let config =
        {
          Experiment.opamp_config with
          Compaction.learner = Stc.Learner.default_mlp;
        }
      in
      let result =
        Compaction.greedy
          ~order:(Order.Given Experiment.opamp_examination_order)
          config ~train ~test
      in
      let text =
        match Stc_floor.Flow_io.to_string result.Compaction.flow with
        | Ok s -> s
        | Error e -> Alcotest.failf "flow does not serialise: %s" e
      in
      let header = String.sub text 0 (String.index text '\n') in
      Alcotest.(check string) "container version" "stc-flow-2" header;
      let fp =
        match Stc_floor.Flow_io.fingerprint result.Compaction.flow with
        | Ok fp -> fp
        | Error e -> Alcotest.failf "flow does not fingerprint: %s" e
      in
      Alcotest.(check string) "flow fingerprint" flow2_fingerprint fp)

(* ------------------------------ tiers ----------------------------- *)

let smoke_tests =
  [
    opamp_case ~label:"smoke: op-amp greedy still compacts" ~n_train:150
      ~n_test:80 ~min_dropped:3 ~max_escape:4.0 ~max_loss:4.0;
    mems_case ~label:"smoke: MEMS temperature tests eliminable" ~n_train:300
      ~n_test:300 ~max_error:1.5 ~min_saving:40.0;
    flow2_pin;
  ]

let paper_tests =
  if not slow then
    [
      Alcotest.test_case "paper-level tier skipped (set STC_SLOW=1)" `Quick
        (fun () -> ());
    ]
  else
    [
      opamp_case ~label:"paper: >=5 of 11 op-amp tests dropped" ~n_train:1200
        ~n_test:400 ~min_dropped:5 ~max_escape:1.0 ~max_loss:1.5;
      mems_case ~label:"paper: both temperature tests at <=0.5% error"
        ~n_train:1000 ~n_test:1000 ~max_error:0.5 ~min_saving:50.0;
    ]

let suites =
  [ ("golden: smoke", smoke_tests); ("golden: paper level", paper_tests) ]
