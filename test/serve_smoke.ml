(* Serve-smoke: end-to-end loopback exercise of the stc_net stack, run
   by `make serve-smoke` (and `make ci`). Boots a server on an
   ephemeral port, pushes 100 devices through it from two concurrent
   clients — one on the BATCH path, one on the pipelined BIN path —
   while the main thread hot-reloads the flow under the traffic, then
   scrapes METRICS in both formats and shuts the server down over the
   wire. Every outcome must be bit-identical to the offline
   [Floor.process] reference. Exits 0 on success, 1 on any failure. *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Flow_io = Stc_floor.Flow_io
module Floor = Stc_floor.Floor
module Rng = Stc_numerics.Rng
module Registry = Stc_net.Registry
module Server = Stc_net.Server
module Client = Stc_net.Client
module Protocol = Stc_net.Protocol
module Obs = Stc_obs.Registry
module Json = Stc_obs.Json

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"V" ~nominal:2.0 ~lower:1.3 ~upper:2.5;
  |]

let population seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      [| a; b; a +. b |])

let train_flow () =
  let train = Device_data.make ~specs ~values:(population 1 800) in
  let test = Device_data.make ~specs ~values:(population 2 400) in
  let config =
    {
      Compaction.default_config with
      Compaction.guard_fraction = 0.02;
      tolerance = 0.03;
      learner =
        Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = Some 4.0 };
    }
  in
  let result =
    Compaction.greedy ~order:(Stc.Order.Given [| 2; 0; 1 |]) config ~train ~test
  in
  result.Compaction.flow

let same_outcomes reference got =
  Array.length reference = Array.length got
  && Array.for_all2
       (fun a b -> Protocol.format_outcome a = Protocol.format_outcome b)
       reference got

let () =
  let flow = train_flow () in
  let path = Filename.temp_file "stc_smoke" ".flow" in
  (match Flow_io.save ~path flow with
   | Ok () -> ()
   | Error e -> failwith e);
  (* the contract the wire must reproduce, per client *)
  let devices = [| population 3 50; population 4 50 |] in
  let reference =
    Array.map
      (fun rows ->
        Floor.with_engine flow (fun engine ->
            Floor.process ~retest:(Floor.full_test flow) engine rows))
      devices
  in
  let registry = Registry.create () in
  (match Registry.load registry ~name:"dut" ~path with
   | Ok _ -> ()
   | Error e -> failwith e);
  Server.with_server registry (fun server ->
      let port = Server.port server in
      Printf.printf "serve-smoke: 127.0.0.1:%d pid %d\n%!" port
        (Unix.getpid ());

      (* two concurrent clients, one per serving path *)
      let results = [| None; None |] in
      let clients_done = Atomic.make 0 in
      let worker i send =
        Thread.create
          (fun () ->
            let c = Client.connect ~port () in
            Fun.protect
              ~finally:(fun () ->
                Client.quit c;
                Atomic.incr clients_done)
              (fun () -> results.(i) <- Some (send c devices.(i))))
          ()
      in
      let t0 = worker 0 (fun c rows -> Client.bin_batch c ~flow:"dut" rows) in
      let t1 = worker 1 (fun c rows -> Client.stream c ~flow:"dut" rows) in

      (* hot reload the identical flow under the traffic: every swap is
         a genuine engine replacement, so outcomes prove atomicity *)
      let reloads = ref 0 in
      while Atomic.get clients_done < 2 do
        (match Registry.reload registry ~name:"dut" ~force:true ~path with
         | Ok (`Reloaded _) -> incr reloads
         | Ok (`Unchanged _) -> ()
         | Error e -> failwith ("mid-run reload failed: " ^ e));
        Thread.yield ()
      done;
      Thread.join t0;
      Thread.join t1;
      check
        (Printf.sprintf "hot reload exercised under load (%d swaps)" !reloads)
        (!reloads > 0);
      Array.iteri
        (fun i result ->
          let what = if i = 0 then "BATCH client" else "BIN-stream client" in
          match result with
          | Some (Ok outcomes) ->
            check
              (Printf.sprintf "%s bit-identical to offline reference (%d devices)"
                 what (Array.length outcomes))
              (same_outcomes reference.(i) outcomes)
          | Some (Error e) -> check (what ^ ": " ^ e) false
          | None -> check (what ^ " returned no result") false)
        results;

      (* metrics scrape, both formats, through a fresh connection *)
      let c = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.metrics c () with
           | Error e -> check ("METRICS text: " ^ e) false
           | Ok text -> (
             match Obs.parse_text text with
             | Error e -> check ("METRICS text parse: " ^ e) false
             | Ok metrics ->
               let value name =
                 match List.assoc_opt name metrics with
                 | Some v -> v
                 | None -> -1.0
               in
               check "METRICS text parses, 100 rows counted"
                 (value "stc_net_rows_total" >= 100.0);
               check "METRICS counts both request paths"
                 (value "stc_net_batches_total" >= 1.0
                 && value "stc_net_flushes_total" >= 1.0)));
          (match Client.metrics c ~format:Protocol.Json () with
           | Error e -> check ("METRICS json: " ^ e) false
           | Ok payload -> (
             match Json.of_string payload with
             | Error e -> check ("METRICS json parse: " ^ e) false
             | Ok doc ->
               check "METRICS json parses with nonzero request counter"
                 (match Json.member "stc_net_requests_total" doc with
                  | Some (Json.Num n) -> n >= 1.0
                  | _ -> false);
               (* the overload-defense counters must be exported even
                  when idle (0 until an attack), so dashboards can
                  alert on them without waiting for an incident *)
               let exported name =
                 match Json.member name doc with
                 | Some (Json.Num n) -> n >= 0.0
                 | _ -> false
               in
               check "METRICS json exports the load-shedding counter"
                 (exported "stc_net_shed_total");
               check "METRICS json exports the idle-reap counter"
                 (exported "stc_net_idle_reaped_total");
               check "METRICS json exports the write-timeout counter"
                 (exported "stc_net_write_timeouts_total");
               check "METRICS json exports the accept-error counter"
                 (exported "stc_net_accept_errors_total")));
          (* clean shutdown over the wire *)
          match Client.shutdown c with
          | Ok () -> ()
          | Error e -> check ("SHUTDOWN: " ^ e) false);
      Server.wait ~poll_s:0.01 server;
      check "server stopped after wire SHUTDOWN" (not (Server.running server)));
  Registry.shutdown registry;
  (try Sys.remove path with Sys_error _ -> ());
  if !failures = 0 then begin
    print_endline "serve-smoke: all checks passed";
    exit 0
  end
  else begin
    Printf.eprintf "serve-smoke: %d check(s) failed\n" !failures;
    exit 1
  end
