(* Chaos gate: the stc_net serving stack under deliberate abuse, run
   by `make chaos` (and `make ci`). Each scenario boots a real loopback
   server and attacks it — a connection flood past the admission cap, a
   slow-loris opener, a client that never reads its replies, and a
   crash-injected flow engine driving the circuit breaker through a
   full trip/recover cycle. The contract under every attack: the abuse
   is shed or reaped with a typed ERR line, the process survives, and a
   well-behaved client's verdicts stay bit-identical to the offline
   [Floor.process] reference. Exits 0 on success, 1 on any failure. *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Rng = Stc_numerics.Rng
module Net_faults = Stc_qa.Net_faults

let failures = ref 0

let check name = function
  | Ok () -> Printf.printf "ok   %s\n%!" name
  | Error e ->
    incr failures;
    Printf.printf "FAIL %s: %s\n%!" name e

let specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"V" ~nominal:2.0 ~lower:1.3 ~upper:2.5;
  |]

let population seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      [| a; b; a +. b |])

let train_flow () =
  let train = Device_data.make ~specs ~values:(population 11 800) in
  let test = Device_data.make ~specs ~values:(population 12 400) in
  let config =
    {
      Compaction.default_config with
      Compaction.guard_fraction = 0.02;
      tolerance = 0.03;
      learner =
        Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = Some 4.0 };
    }
  in
  let result =
    Compaction.greedy ~order:(Stc.Order.Given [| 2; 0; 1 |]) config ~train ~test
  in
  result.Compaction.flow

let () =
  let flow = train_flow () in
  let pooled = (flow, population 13 40) in
  Printf.printf "chaos: pid %d\n%!" (Unix.getpid ());
  check "connection flood sheds past max-conns, admitted stay correct"
    (Net_faults.check_connection_flood pooled);
  check "slow-loris opener reaped by the idle deadline"
    (Net_faults.check_slow_loris pooled);
  check "reply-ignoring client torn down by the write deadline"
    (Net_faults.check_reply_ignorer pooled);
  check "crashing engine trips, sheds RETEST, auto-recycles, recovers"
    (Net_faults.check_breaker_cycle pooled);
  if !failures = 0 then begin
    print_endline "chaos: all scenarios survived";
    exit 0
  end
  else begin
    Printf.eprintf "chaos: %d scenario(s) failed\n" !failures;
    exit 1
  end
