(* Tests for the stc core library: specs, data handling, guard banding,
   grid compaction, lookup tables, orderings, cost model and the
   compaction loop itself on synthetic devices with known structure. *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Calibration = Stc.Calibration
module Guard_band = Stc.Guard_band
module Metrics = Stc.Metrics
module Grid_compact = Stc.Grid_compact
module Lookup = Stc.Lookup
module Order = Stc.Order
module Cost = Stc.Cost
module Compaction = Stc.Compaction
module Tester = Stc.Tester
module Report = Stc.Report
module Rng = Stc_numerics.Rng

let check_close tol = Alcotest.(check (float tol))

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------ Spec ------------------------------ *)

let demo_spec = Spec.make ~name:"s" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:2.0

let spec_tests =
  [
    Alcotest.test_case "within is inclusive" `Quick (fun () ->
        Alcotest.(check bool) "lower" true (Spec.passes demo_spec 0.5);
        Alcotest.(check bool) "upper" true (Spec.passes demo_spec 2.0);
        Alcotest.(check bool) "below" false (Spec.passes demo_spec 0.49);
        Alcotest.(check bool) "above" false (Spec.passes demo_spec 2.01));
    Alcotest.test_case "normalize endpoints" `Quick (fun () ->
        check_close 1e-12 "lower->0" 0.0 (Spec.normalize demo_spec 0.5);
        check_close 1e-12 "upper->1" 1.0 (Spec.normalize demo_spec 2.0));
    Alcotest.test_case "perturb moves boundaries relative to magnitude" `Quick
      (fun () ->
        let wide = Spec.perturb demo_spec ~fraction:0.1 in
        check_close 1e-12 "lower out" 0.45 wide.Spec.range.Spec.lower;
        check_close 1e-12 "upper out" 2.2 wide.Spec.range.Spec.upper;
        let tight = Spec.perturb demo_spec ~fraction:(-0.1) in
        check_close 1e-12 "lower in" 0.55 tight.Spec.range.Spec.lower;
        check_close 1e-12 "upper in" 1.8 tight.Spec.range.Spec.upper);
    Alcotest.test_case "zero boundary does not move" `Quick (fun () ->
        let s = Spec.make ~name:"z" ~unit_label:"-" ~nominal:0.2 ~lower:0.0 ~upper:1.0 in
        let wide = Spec.perturb s ~fraction:0.1 in
        check_close 0.0 "lower fixed" 0.0 wide.Spec.range.Spec.lower);
    Alcotest.test_case "collapsing perturbation rejected" `Quick (fun () ->
        let s = Spec.make ~name:"n" ~unit_label:"-" ~nominal:1.0 ~lower:0.9 ~upper:1.1 in
        (match Spec.perturb s ~fraction:(-0.5) with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected collapse"));
    Alcotest.test_case "invalid range rejected" `Quick (fun () ->
        (match Spec.make ~name:"bad" ~unit_label:"-" ~nominal:0.0 ~lower:1.0 ~upper:1.0 with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    qtest
      (QCheck.Test.make ~name:"normalize/denormalize round trip" ~count:200
         QCheck.(float_range (-10.) 10.)
         (fun v ->
           let u = Spec.normalize demo_spec v in
           Float.abs (Spec.denormalize demo_spec u -. v) <= 1e-9));
    qtest
      (QCheck.Test.make ~name:"pass iff normalized in [0,1]" ~count:200
         QCheck.(float_range (-10.) 10.)
         (fun v ->
           let u = Spec.normalize demo_spec v in
           Spec.passes demo_spec v = (u >= 0.0 && u <= 1.0)));
    qtest
      (QCheck.Test.make ~name:"widened range accepts nominal passes" ~count:200
         QCheck.(float_range 0.5 2.0)
         (fun v ->
           Spec.passes (Spec.perturb demo_spec ~fraction:0.05) v));
  ]

(* --------------------------- Device_data -------------------------- *)

let three_specs =
  [|
    Spec.make ~name:"a" ~unit_label:"-" ~nominal:1.0 ~lower:0.0 ~upper:2.0;
    Spec.make ~name:"b" ~unit_label:"-" ~nominal:1.0 ~lower:0.0 ~upper:2.0;
    Spec.make ~name:"c" ~unit_label:"-" ~nominal:2.0 ~lower:0.5 ~upper:3.5;
  |]

let small_data =
  Device_data.make ~specs:three_specs
    ~values:
      [|
        [| 1.0; 1.0; 2.0 |];  (* good *)
        [| 2.5; 1.0; 3.5 |];  (* fails a *)
        [| 1.0; 1.0; 4.0 |];  (* fails c *)
        [| 0.5; 0.5; 1.0 |];  (* good *)
      |]

let device_data_tests =
  [
    Alcotest.test_case "yield fraction" `Quick (fun () ->
        check_close 1e-12 "2/4" 0.5 (Device_data.yield_fraction small_data));
    Alcotest.test_case "pass labels for subsets" `Quick (fun () ->
        Alcotest.(check (array int)) "subset {c}" [| 1; 1; -1; 1 |]
          (Device_data.pass_labels small_data ~subset:[| 2 |]);
        Alcotest.(check (array int)) "subset {a}" [| 1; -1; 1; 1 |]
          (Device_data.pass_labels small_data ~subset:[| 0 |]);
        Alcotest.(check (array int)) "all" [| 1; -1; -1; 1 |]
          (Device_data.pass_labels small_data ~subset:[| 0; 1; 2 |]));
    Alcotest.test_case "normalized features select columns" `Quick (fun () ->
        let row = Device_data.normalized_row small_data ~instance:0 ~keep:[| 0; 2 |] in
        check_close 1e-12 "a normalized" 0.5 row.(0);
        check_close 1e-12 "c normalized" 0.5 row.(1));
    Alcotest.test_case "ragged rows rejected" `Quick (fun () ->
        (match Device_data.make ~specs:three_specs ~values:[| [| 1.0 |] |] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "spec_column" `Quick (fun () ->
        Alcotest.(check (array (float 0.0))) "col c" [| 2.0; 3.5; 4.0; 1.0 |]
          (Device_data.spec_column small_data 2));
  ]

(* --------------------------- Calibration -------------------------- *)

let calibration_tests =
  [
    Alcotest.test_case "scale maps nominal exactly" `Quick (fun () ->
        let c = Calibration.fit Calibration.Scale ~measured_nominal:24376.0
                  ~target_nominal:14000.0
        in
        check_close 1e-6 "nominal" 14000.0 (Calibration.apply c 24376.0);
        check_close 1e-6 "proportional" 7000.0 (Calibration.apply c 12188.0));
    Alcotest.test_case "shift maps nominal exactly" `Quick (fun () ->
        let c = Calibration.fit Calibration.Shift ~measured_nominal:0.0176
                  ~target_nominal:0.0001
        in
        check_close 1e-12 "nominal" 0.0001 (Calibration.apply c 0.0176));
    Alcotest.test_case "scale falls back on zero nominal" `Quick (fun () ->
        let c = Calibration.fit Calibration.Scale ~measured_nominal:0.0
                  ~target_nominal:0.0
        in
        check_close 1e-12 "identity-ish" 0.3 (Calibration.apply c 0.3));
    Alcotest.test_case "apply_all element-wise" `Quick (fun () ->
        let cs =
          [|
            Calibration.fit Calibration.Scale ~measured_nominal:2.0 ~target_nominal:1.0;
            Calibration.identity;
          |]
        in
        Alcotest.(check (array (float 1e-12))) "mapped" [| 2.0; 5.0 |]
          (Calibration.apply_all cs [| 4.0; 5.0 |]));
  ]

(* --------------------------- Guard band --------------------------- *)

let guard_band_tests =
  [
    Alcotest.test_case "agreement and disagreement" `Quick (fun () ->
        let band =
          Guard_band.make
            ~tight:(fun v -> if v.(0) > 0.6 then 1 else -1)
            ~loose:(fun v -> if v.(0) > 0.4 then 1 else -1)
        in
        Alcotest.(check string) "good" "good"
          (Guard_band.verdict_to_string (Guard_band.classify band [| 0.8 |]));
        Alcotest.(check string) "bad" "bad"
          (Guard_band.verdict_to_string (Guard_band.classify band [| 0.2 |]));
        Alcotest.(check string) "guard" "guard"
          (Guard_band.verdict_to_string (Guard_band.classify band [| 0.5 |])));
    Alcotest.test_case "single never guards" `Quick (fun () ->
        let band = Guard_band.single (fun v -> if v.(0) > 0.5 then 1 else -1) in
        Alcotest.(check bool) "never guard" true
          (List.for_all
             (fun x ->
               not
                 (Guard_band.equal_verdict
                    (Guard_band.classify band [| x |])
                    Guard_band.Guard))
             [ 0.0; 0.25; 0.5; 0.75; 1.0 ]));
  ]

(* ----------------------------- Metrics ---------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "tally percentages" `Quick (fun () ->
        let truth = [| true; true; false; false; true |] in
        let verdicts =
          [| Guard_band.Good; Guard_band.Bad; Guard_band.Good; Guard_band.Bad;
             Guard_band.Guard |]
        in
        let c = Metrics.tally ~truth ~verdicts in
        check_close 1e-9 "escape 1/5" 20.0 (Metrics.escape_pct c);
        check_close 1e-9 "loss 1/5" 20.0 (Metrics.loss_pct c);
        check_close 1e-9 "guard 1/5" 20.0 (Metrics.guard_pct c);
        check_close 1e-9 "yield 3/5" 60.0 (Metrics.yield_pct c);
        check_close 1e-9 "err 2/5" 40.0 (Metrics.prediction_error_pct c));
    Alcotest.test_case "empty tally" `Quick (fun () ->
        let c = Metrics.tally ~truth:[||] ~verdicts:[||] in
        check_close 0.0 "escape" 0.0 (Metrics.escape_pct c));
  ]

(* --------------------------- Grid compact ------------------------- *)

let grid_tests =
  [
    Alcotest.test_case "pure cells merge, mixed cells keep" `Quick (fun () ->
        (* resolution 2 over [0,1]: cell (0,0) mixed, cell (1,1) pure *)
        let config = { Grid_compact.resolution = 2; clip_lo = 0.0; clip_hi = 1.0 } in
        let features =
          [| [| 0.1; 0.1 |]; [| 0.2; 0.2 |]; [| 0.9; 0.9 |]; [| 0.8; 0.8 |] |]
        in
        let labels = [| 1; -1; 1; 1 |] in
        let r = Grid_compact.compact ~config ~features ~labels () in
        Alcotest.(check int) "kept originals" 2 r.Grid_compact.kept_original;
        Alcotest.(check int) "merged cells" 1 r.Grid_compact.merged_cells;
        Alcotest.(check int) "total rows" 3 (Array.length r.Grid_compact.features));
    Alcotest.test_case "merged point is cell centre" `Quick (fun () ->
        let config = { Grid_compact.resolution = 2; clip_lo = 0.0; clip_hi = 1.0 } in
        let r =
          Grid_compact.compact ~config ~features:[| [| 0.9 |] |] ~labels:[| 1 |] ()
        in
        check_close 1e-12 "centre" 0.75 r.Grid_compact.features.(0).(0);
        Alcotest.(check int) "label" 1 r.Grid_compact.labels.(0));
    Alcotest.test_case "empty input" `Quick (fun () ->
        let r = Grid_compact.compact ~features:[||] ~labels:[||] () in
        Alcotest.(check int) "rows" 0 (Array.length r.Grid_compact.features));
    qtest
      (QCheck.Test.make ~name:"output never larger than input + cells" ~count:50
         QCheck.(int_range 0 10000)
         (fun seed ->
           let rng = Rng.create seed in
           let n = 5 + Rng.int rng 200 in
           let features =
             Array.init n (fun _ -> [| Rng.float rng; Rng.float rng |])
           in
           let labels = Array.init n (fun _ -> if Rng.bool rng then 1 else -1) in
           let r = Grid_compact.compact ~features ~labels () in
           Array.length r.Grid_compact.features <= n + r.Grid_compact.merged_cells
           && Array.length r.Grid_compact.features
              = Array.length r.Grid_compact.labels));
    qtest
      (QCheck.Test.make ~name:"single-class data collapses to cells" ~count:30
         QCheck.(int_range 0 10000)
         (fun seed ->
           let rng = Rng.create seed in
           let n = 20 + Rng.int rng 100 in
           let features =
             Array.init n (fun _ -> [| Rng.float rng; Rng.float rng |])
           in
           let labels = Array.make n 1 in
           let r = Grid_compact.compact ~features ~labels () in
           r.Grid_compact.kept_original = 0
           && Array.for_all (fun l -> l = 1) r.Grid_compact.labels));
  ]

(* ------------------------------ Lookup ---------------------------- *)

let lookup_tests =
  [
    Alcotest.test_case "table reproduces a simple classifier" `Quick (fun () ->
        let classify v =
          if v.(0) +. v.(1) > 1.0 then Guard_band.Good else Guard_band.Bad
        in
        let config = { Lookup.default_config with Lookup.resolution = 64 } in
        let table = Lookup.build ~config ~dim:2 classify in
        let rng = Rng.create 11 in
        let points =
          Array.init 500 (fun _ -> [| Rng.float rng; Rng.float rng |])
        in
        let agreement = Lookup.agreement table classify ~points in
        Alcotest.(check bool) "high agreement" true (agreement > 0.95));
    Alcotest.test_case "clamps out-of-window points" `Quick (fun () ->
        let table = Lookup.build ~dim:1 (fun v ->
            if v.(0) > 0.5 then Guard_band.Good else Guard_band.Bad)
        in
        Alcotest.(check string) "far right is good" "good"
          (Guard_band.verdict_to_string (Lookup.lookup table [| 99.0 |]));
        Alcotest.(check string) "far left is bad" "bad"
          (Guard_band.verdict_to_string (Lookup.lookup table [| -99.0 |])));
    Alcotest.test_case "cell budget enforced" `Quick (fun () ->
        let config = { Lookup.default_config with Lookup.resolution = 64 } in
        (match Lookup.build ~config ~dim:6 (fun _ -> Guard_band.Good) with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected cap"));
    Alcotest.test_case "verdict counts total" `Quick (fun () ->
        let table = Lookup.build ~dim:2 (fun _ -> Guard_band.Guard) in
        let g, b, u = Lookup.verdict_counts table in
        Alcotest.(check int) "all guard" (Lookup.cells table) u;
        Alcotest.(check int) "none else" 0 (g + b));
  ]

(* ------------------------------ Order ----------------------------- *)

let order_tests =
  [
    Alcotest.test_case "failure counts" `Quick (fun () ->
        Alcotest.(check (array int)) "counts" [| 1; 0; 1 |]
          (Order.failure_counts small_data));
    Alcotest.test_case "by_failure_count sorts ascending" `Quick (fun () ->
        let order = Order.compute Order.By_failure_count small_data in
        Alcotest.(check int) "first is b (0 fails)" 1 order.(0));
    Alcotest.test_case "given order validated" `Quick (fun () ->
        (match Order.compute (Order.Given [| 0; 0; 1 |]) small_data with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected rejection of non-permutation"));
    Alcotest.test_case "correlation order puts correlated first" `Quick (fun () ->
        (* build data where spec2 = spec0 exactly, spec1 independent *)
        let rng = Rng.create 3 in
        let values =
          Array.init 100 (fun _ ->
              let a = Rng.float rng and b = Rng.float rng in
              [| a; b; a |])
        in
        let specs =
          Array.init 3 (fun i ->
              Spec.make ~name:(string_of_int i) ~unit_label:"-" ~nominal:0.5
                ~lower:0.0 ~upper:1.0)
        in
        let data = Device_data.make ~specs ~values in
        let order = Order.compute Order.By_correlation data in
        Alcotest.(check bool) "spec1 comes last" true (order.(2) = 1));
    qtest
      (QCheck.Test.make ~name:"computed orders are permutations" ~count:20
         QCheck.(int_range 0 1000)
         (fun seed ->
           let rng = Rng.create seed in
           let values =
             Array.init 30 (fun _ -> Array.init 3 (fun _ -> Rng.float rng))
           in
           let data = Device_data.make ~specs:three_specs ~values in
           List.for_all
             (fun strategy ->
               let order = Order.compute strategy data in
               let sorted = Array.copy order in
               Array.sort compare sorted;
               sorted = [| 0; 1; 2 |])
             [ Order.By_failure_count; Order.By_correlation ]));
  ]

(* ------------------------------- Cost ----------------------------- *)

let cost_tests =
  [
    Alcotest.test_case "paper's Sec 5.2 dollar arithmetic" `Quick (fun () ->
        (* 1000 devices, 774 pass room, 84 in guard band *)
        let r = Cost.tri_temperature ~n:1000 ~room_pass:774 ~guard:84 () in
        check_close 1e-9 "full $2548" 2548.0 r.Cost.full;
        check_close 1e-9 "compacted $1168" 1168.0 r.Cost.compacted;
        Alcotest.(check bool) "saving ~54%" true
          (r.Cost.saving_pct > 54.0 && r.Cost.saving_pct < 54.5));
    Alcotest.test_case "zero guard maximises saving" `Quick (fun () ->
        let r0 = Cost.tri_temperature ~n:100 ~room_pass:80 ~guard:0 () in
        let r1 = Cost.tri_temperature ~n:100 ~room_pass:80 ~guard:50 () in
        Alcotest.(check bool) "monotone" true (r0.Cost.saving_pct > r1.Cost.saving_pct));
    Alcotest.test_case "inconsistent counts rejected" `Quick (fun () ->
        (match Cost.tri_temperature ~n:10 ~room_pass:11 ~guard:0 () with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "per-spec flow accounting" `Quick (fun () ->
        let r =
          Cost.per_spec_flow ~spec_costs:[| 1.0; 2.0; 3.0 |] ~kept:[| 0 |]
            ~guard_rate:0.1
        in
        check_close 1e-12 "full" 6.0 r.Cost.full_cost;
        check_close 1e-12 "compacted" 1.0 r.Cost.compacted_cost;
        check_close 1e-12 "overhead" 0.6 r.Cost.retest_overhead;
        check_close 1e-9 "saving" (1.0 -. (1.6 /. 6.0)) r.Cost.saving_fraction);
  ]

(* ---------------------------- Compaction --------------------------- *)

(* Synthetic device with a known redundancy: s2 = s0 + s1 exactly, so
   the test for s2 is informationally redundant given s0 and s1. A
   fourth spec s3 is independent noise, hence NOT predictable. *)
let synthetic_specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"-" ~nominal:2.0 ~lower:1.2 ~upper:2.8;
    Spec.make ~name:"s3" ~unit_label:"-" ~nominal:0.0 ~lower:(-1.0) ~upper:1.0;
  |]

let synthetic_data seed n =
  let rng = Rng.create seed in
  let values =
    Array.init n (fun _ ->
        let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        let noise = Rng.gaussian rng ~mean:0.0 ~sigma:0.6 in
        [| a; b; a +. b; noise |])
  in
  Device_data.make ~specs:synthetic_specs ~values

let compaction_config =
  {
    Compaction.default_config with
    Compaction.tolerance = 0.02;
    guard_fraction = 0.02;
  }

let compaction_tests =
  [
    Alcotest.test_case "identity flow has no error" `Quick (fun () ->
        let data = synthetic_data 1 300 in
        let flow = Compaction.identity_flow synthetic_specs in
        let c = Compaction.evaluate_flow flow data in
        check_close 0.0 "escape" 0.0 (Metrics.escape_pct c);
        check_close 0.0 "loss" 0.0 (Metrics.loss_pct c);
        check_close 0.0 "guard" 0.0 (Metrics.guard_pct c));
    Alcotest.test_case "dependent spec is predictable" `Quick (fun () ->
        let train = synthetic_data 2 500 and test = synthetic_data 3 300 in
        let band, nominal =
          Compaction.train_predictor compaction_config train ~dropped:[| 2 |]
        in
        ignore band;
        let e =
          Compaction.prediction_error nominal test ~kept:[| 0; 1; 3 |]
            ~dropped:[| 2 |]
        in
        Alcotest.(check bool) "error < 3%" true (e < 0.03));
    Alcotest.test_case "independent spec is not predictable" `Quick (fun () ->
        let train = synthetic_data 2 500 and test = synthetic_data 3 300 in
        let _, nominal =
          Compaction.train_predictor compaction_config train ~dropped:[| 3 |]
        in
        let e =
          Compaction.prediction_error nominal test ~kept:[| 0; 1; 2 |]
            ~dropped:[| 3 |]
        in
        Alcotest.(check bool) "error > 5%" true (e > 0.05));
    Alcotest.test_case "greedy drops s2 and keeps s3" `Quick (fun () ->
        let train = synthetic_data 4 500 and test = synthetic_data 5 300 in
        let result = Compaction.greedy compaction_config ~train ~test in
        let dropped = Array.to_list result.Compaction.flow.Compaction.dropped in
        Alcotest.(check bool) "s2 dropped" true (List.mem 2 dropped);
        Alcotest.(check bool) "s3 kept" true (not (List.mem 3 dropped)));
    Alcotest.test_case "zero tolerance drops nothing unpredictable" `Quick
      (fun () ->
        let train = synthetic_data 4 400 and test = synthetic_data 5 200 in
        let config = { compaction_config with Compaction.tolerance = -1.0 } in
        let result = Compaction.greedy config ~train ~test in
        Alcotest.(check int) "nothing dropped" 0
          (Array.length result.Compaction.flow.Compaction.dropped));
    Alcotest.test_case "flow error stays below tolerance on test" `Quick
      (fun () ->
        let train = synthetic_data 6 600 and test = synthetic_data 7 400 in
        let result = Compaction.greedy compaction_config ~train ~test in
        let c = Compaction.evaluate_flow result.Compaction.flow test in
        (* guard-banded flow errors should not exceed the nominal-model
           tolerance by much *)
        Alcotest.(check bool) "escape+loss < 5%" true
          (Metrics.prediction_error_pct c < 5.0));
    Alcotest.test_case "steps cover every spec exactly once" `Quick (fun () ->
        let train = synthetic_data 4 300 and test = synthetic_data 5 200 in
        let result = Compaction.greedy compaction_config ~train ~test in
        let indices =
          List.map (fun s -> s.Compaction.spec_index) result.Compaction.steps
        in
        Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3 ]
          (List.sort compare indices));
    Alcotest.test_case "eliminate respects explicit drop set" `Quick (fun () ->
        let train = synthetic_data 8 400 and test = synthetic_data 9 300 in
        let counts, flow =
          Compaction.eliminate compaction_config ~train ~test ~dropped:[| 2 |]
        in
        Alcotest.(check (array int)) "kept" [| 0; 1; 3 |] flow.Compaction.kept;
        Alcotest.(check bool) "small error" true
          (Metrics.prediction_error_pct counts < 4.0));
    Alcotest.test_case "verdict reads only kept columns" `Quick (fun () ->
        let train = synthetic_data 8 400 in
        let flow = Compaction.make_flow compaction_config train ~dropped:[| 2 |] in
        let row_a = [| 1.0; 1.0; 2.0; 0.0 |] in
        let row_b = [| 1.0; 1.0; 999.0; 0.0 |] in
        (* s2 differs wildly but is not measured: same verdict *)
        Alcotest.(check bool) "same verdict" true
          (Guard_band.equal_verdict
             (Compaction.flow_verdict flow row_a)
             (Compaction.flow_verdict flow row_b)));
    Alcotest.test_case "duplicate dropped index rejected" `Quick (fun () ->
        let train = synthetic_data 8 100 in
        (match Compaction.make_flow compaction_config train ~dropped:[| 2; 2 |] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "grid compaction preserves accuracy" `Quick (fun () ->
        let train = synthetic_data 10 600 and test = synthetic_data 11 300 in
        let with_grid =
          { compaction_config with Compaction.grid = Some Grid_compact.default_config }
        in
        let _, nominal = Compaction.train_predictor with_grid train ~dropped:[| 2 |] in
        let e =
          Compaction.prediction_error nominal test ~kept:[| 0; 1; 3 |] ~dropped:[| 2 |]
        in
        Alcotest.(check bool) "error < 5%" true (e < 0.05));
  ]

(* ------------------------------ Tester ---------------------------- *)

let tester_tests =
  [
    Alcotest.test_case "resolved guard parts never escape" `Quick (fun () ->
        let train = synthetic_data 12 500 and test = synthetic_data 13 300 in
        let flow = Compaction.make_flow compaction_config train ~dropped:[| 2 |] in
        let outcomes, summary = Tester.run ~resolve_guard:true flow test in
        Array.iter
          (fun o ->
            match (o.Tester.verdict, o.Tester.bin) with
            | Guard_band.Guard, Tester.Ship ->
              Alcotest.(check bool) "shipped guard is good" true o.Tester.truth_good
            | Guard_band.Guard, Tester.Scrap ->
              Alcotest.(check bool) "scrapped guard is bad" false o.Tester.truth_good
            | (Guard_band.Good | Guard_band.Bad), (Tester.Ship | Tester.Scrap)
            | _, Tester.Retest -> ())
          outcomes;
        Alcotest.(check int) "bins total" 300 (summary.Tester.shipped + summary.Tester.scrapped));
    Alcotest.test_case "unresolved guard parts are binned Retest" `Quick
      (fun () ->
        let train = synthetic_data 12 500 and test = synthetic_data 13 300 in
        let flow = Compaction.make_flow compaction_config train ~dropped:[| 2 |] in
        let _, s_resolve = Tester.run ~resolve_guard:true flow test in
        let outcomes, s_queue = Tester.run ~resolve_guard:false flow test in
        Array.iter
          (fun o ->
            match (o.Tester.verdict, o.Tester.bin) with
            | Guard_band.Guard, Tester.Retest -> ()
            | Guard_band.Guard, (Tester.Ship | Tester.Scrap) ->
              Alcotest.fail "guard part escaped the retest queue"
            | (Guard_band.Good | Guard_band.Bad), Tester.Retest ->
              Alcotest.fail "confident part queued for retest"
            | (Guard_band.Good | Guard_band.Bad), (Tester.Ship | Tester.Scrap)
              -> ())
          outcomes;
        Alcotest.(check int) "bins partition the lot" 300
          (s_queue.Tester.shipped + s_queue.Tester.scrapped
          + s_queue.Tester.retested);
        Alcotest.(check int) "same retest volume either way"
          s_resolve.Tester.retested s_queue.Tester.retested;
        Alcotest.(check bool) "queueing cannot ship more" true
          (s_queue.Tester.shipped <= s_resolve.Tester.shipped));
    Alcotest.test_case "lookup tester agrees with direct flow" `Quick (fun () ->
        let train = synthetic_data 14 500 and test = synthetic_data 15 200 in
        let flow = Compaction.make_flow compaction_config train ~dropped:[| 2 |] in
        (match Tester.with_lookup flow ~resolution:48 with
         | None -> Alcotest.fail "expected a lookup table"
         | Some table ->
           let agree = ref 0 in
           for i = 0 to Device_data.n_instances test - 1 do
             let row = Device_data.instance_row test i in
             if
               Guard_band.equal_verdict
                 (Tester.lookup_flow_verdict flow table row)
                 (Compaction.flow_verdict flow row)
             then incr agree
           done;
           Alcotest.(check bool) "≥95% agreement" true
             (float_of_int !agree /. 200.0 > 0.95)));
  ]

(* ------------------------------ Report ---------------------------- *)

let report_tests =
  [
    Alcotest.test_case "table renders aligned" `Quick (fun () ->
        let s = Report.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
        Alcotest.(check bool) "has rule" true (String.length s > 0);
        Alcotest.(check bool) "rows present" true
          (String.split_on_char '\n' s |> List.length >= 4));
    Alcotest.test_case "table arity mismatch rejected" `Quick (fun () ->
        (match Report.table ~header:[ "a" ] [ [ "1"; "2" ] ] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "series length mismatch rejected" `Quick (fun () ->
        (match Report.series ~x_label:"x" ~x:[ "1" ] [ ("c", [ 1.0; 2.0 ]) ] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "pct formatting" `Quick (fun () ->
        Alcotest.(check string) "fmt" "0.60%" (Report.pct 0.6));
    Alcotest.test_case "ascii plot dimensions" `Quick (fun () ->
        let points = Array.init 100 (fun i -> (float_of_int i, sin (float_of_int i))) in
        let s = Report.ascii_plot ~width:40 ~height:10 points in
        let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
        Alcotest.(check int) "height" 10 (List.length lines));
  ]

let suites =
  [
    ("core.spec", spec_tests);
    ("core.device_data", device_data_tests);
    ("core.calibration", calibration_tests);
    ("core.guard_band", guard_band_tests);
    ("core.metrics", metrics_tests);
    ("core.grid_compact", grid_tests);
    ("core.lookup", lookup_tests);
    ("core.order", order_tests);
    ("core.cost", cost_tests);
    ("core.compaction", compaction_tests);
    ("core.tester", tester_tests);
    ("core.report", report_tests);
  ]
