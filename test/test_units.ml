(* Property-style unit tests for the small core modules the big suites
   only exercise incidentally: the cost model's arithmetic laws, the
   report renderer's layout invariants, calibration's order-preserving
   affine maps, and the adaptive guard band's margin behaviour. *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Guard_band = Stc.Guard_band
module Adaptive_guard = Stc.Adaptive_guard
module Calibration = Stc.Calibration
module Cost = Stc.Cost
module Report = Stc.Report
module Rng = Stc_numerics.Rng

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------- Cost ----------------------------- *)

let cost_tests =
  [
    qtest
      (QCheck.Test.make ~name:"tri_temperature closed forms" ~count:200
         QCheck.(triple (int_range 1 5000) (int_range 0 5000) (int_range 0 5000))
         (fun (n, room_pass, guard) ->
           QCheck.assume (room_pass <= n && guard <= n);
           let r = Cost.tri_temperature ~n ~room_pass ~guard () in
           (* full: everyone at room, room-passers again at hot and cold;
              compacted: everyone at room, guard devices at all three *)
           r.Cost.full = float_of_int (n + (2 * room_pass))
           && r.Cost.compacted = float_of_int (n + (2 * guard))));
    qtest
      (QCheck.Test.make ~name:"saving decreases as the guard band grows"
         ~count:100
         QCheck.(pair (int_range 1 1000) (int_range 0 999))
         (fun (n, g) ->
           QCheck.assume (g + 1 <= n);
           let r0 = Cost.tri_temperature ~n ~room_pass:n ~guard:g () in
           let r1 = Cost.tri_temperature ~n ~room_pass:n ~guard:(g + 1) () in
           r1.Cost.saving_pct <= r0.Cost.saving_pct));
    Alcotest.test_case "unit cost scales both flows linearly" `Quick (fun () ->
        let base = Cost.tri_temperature ~n:100 ~room_pass:80 ~guard:10 () in
        let scaled =
          Cost.tri_temperature ~unit_cost:2.5 ~n:100 ~room_pass:80 ~guard:10 ()
        in
        Alcotest.(check (float 1e-9)) "full" (2.5 *. base.Cost.full)
          scaled.Cost.full;
        Alcotest.(check (float 1e-9)) "compacted" (2.5 *. base.Cost.compacted)
          scaled.Cost.compacted;
        Alcotest.(check (float 1e-9)) "saving unchanged" base.Cost.saving_pct
          scaled.Cost.saving_pct);
    Alcotest.test_case "out-of-range counts rejected" `Quick (fun () ->
        List.iter
          (fun (n, room_pass, guard) ->
            match Cost.tri_temperature ~n ~room_pass ~guard () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument")
          [ (10, 11, 0); (10, 0, 11); (10, -1, 0); (10, 0, -1) ]);
    qtest
      (QCheck.Test.make ~name:"per_spec_flow conserves cost" ~count:100
         QCheck.(pair (list_of_size (Gen.int_range 1 6) (float_range 0.1 10.0))
                   (float_range 0.0 1.0))
         (fun (costs, guard_rate) ->
           let spec_costs = Array.of_list costs in
           let kept = [| 0 |] in
           let r = Cost.per_spec_flow ~spec_costs ~kept ~guard_rate in
           let close a b = Float.abs (a -. b) <= 1e-9 in
           close r.Cost.full_cost
             (Array.fold_left ( +. ) 0.0 spec_costs)
           && close r.Cost.compacted_cost spec_costs.(0)
           && close r.Cost.retest_overhead (guard_rate *. r.Cost.full_cost)
           && close r.Cost.expected_cost
                (r.Cost.compacted_cost +. r.Cost.retest_overhead)));
    Alcotest.test_case "zero guard rate means zero overhead" `Quick (fun () ->
        let r =
          Cost.per_spec_flow ~spec_costs:[| 1.0; 4.0 |] ~kept:[| 1 |]
            ~guard_rate:0.0
        in
        Alcotest.(check (float 0.0)) "overhead" 0.0 r.Cost.retest_overhead;
        Alcotest.(check (float 1e-12)) "expected = compacted"
          r.Cost.compacted_cost r.Cost.expected_cost);
  ]

(* ------------------------------ Report ---------------------------- *)

let lines s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let report_tests =
  [
    qtest
      (QCheck.Test.make ~name:"table lines all share one width" ~count:100
         QCheck.(pair (int_range 1 5) (int_range 1 6))
         (fun (cols, rows) ->
           let header = List.init cols (fun c -> Printf.sprintf "col%d" c) in
           let cell r c = String.make (1 + ((r + c) mod 7)) 'x' in
           let body =
             List.init rows (fun r -> List.init cols (fun c -> cell r c))
           in
           let widths =
             List.map String.length (lines (Report.table ~header body))
           in
           match widths with
           | [] -> false
           | w :: rest -> List.for_all (fun w' -> w' = w) rest));
    Alcotest.test_case "series renders one row per x" `Quick (fun () ->
        let s =
          Report.series ~x_label:"n" ~x:[ "1"; "2"; "3" ]
            [ ("up", [ 1.0; 2.0; 3.0 ]); ("down", [ 3.0; 2.0; 1.0 ]) ]
        in
        (* header + separator + 3 data rows *)
        Alcotest.(check int) "rows" 5 (List.length (lines s)));
    Alcotest.test_case "pct and g3 formats" `Quick (fun () ->
        Alcotest.(check string) "pct" "12.35%" (Report.pct 12.345);
        Alcotest.(check string) "g3" "1.23" (Report.g3 1.234);
        Alcotest.(check string) "g3 sci" "1.23e+06" (Report.g3 1.234e6));
    Alcotest.test_case "ascii_plot stays inside its canvas" `Quick (fun () ->
        let rng = Rng.create 11 in
        let pts =
          Array.init 500 (fun _ ->
              (Rng.uniform rng (-5.0) 5.0, Rng.uniform rng (-2.0) 2.0))
        in
        let ls = lines (Report.ascii_plot ~width:30 ~height:12 pts) in
        Alcotest.(check bool) "height bounded" true (List.length ls <= 14);
        List.iter
          (fun l ->
            Alcotest.(check bool) "width bounded" true (String.length l <= 34))
          ls);
  ]

(* ---------------------------- Calibration ------------------------- *)

let calibration_tests =
  [
    qtest
      (QCheck.Test.make ~name:"fit maps measured nominal onto target"
         ~count:200
         QCheck.(triple bool (float_range 0.5 1000.0) (float_range 0.5 1000.0))
         (fun (scale, measured, target) ->
           let mode = if scale then Calibration.Scale else Calibration.Shift in
           let c =
             Calibration.fit mode ~measured_nominal:measured
               ~target_nominal:target
           in
           Float.abs (Calibration.apply c measured -. target)
           <= 1e-9 *. Float.max 1.0 (Float.abs target)));
    qtest
      (QCheck.Test.make ~name:"apply preserves order (monotone affine)"
         ~count:200
         QCheck.(triple bool (pair (float_range (-100.0) 100.0)
                                (float_range (-100.0) 100.0))
                   (float_range 0.5 50.0))
         (fun (scale, (a, b), nominal) ->
           let mode = if scale then Calibration.Scale else Calibration.Shift in
           let c =
             Calibration.fit mode ~measured_nominal:nominal ~target_nominal:7.0
           in
           compare a b = compare (Calibration.apply c a) (Calibration.apply c b)));
    Alcotest.test_case "identity is the identity" `Quick (fun () ->
        List.iter
          (fun v ->
            Alcotest.(check (float 0.0)) "id" v
              (Calibration.apply Calibration.identity v))
          [ -3.5; 0.0; 0.125; 1e9 ]);
    Alcotest.test_case "apply_all checks lengths" `Quick (fun () ->
        match
          Calibration.apply_all [| Calibration.identity |] [| 1.0; 2.0 |]
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "describe names the mode" `Quick (fun () ->
        let scale =
          Calibration.fit Calibration.Scale ~measured_nominal:2.0
            ~target_nominal:4.0
        in
        Alcotest.(check bool) "non-empty" true
          (String.length (Calibration.describe scale) > 0);
        Alcotest.(check bool) "distinct from identity" true
          (Calibration.describe scale
           <> Calibration.describe Calibration.identity));
  ]

(* --------------------------- Adaptive_guard ----------------------- *)

(* the synthetic redundant-spec device shared with test_extensions *)
let ag_specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"-" ~nominal:2.0 ~lower:1.2 ~upper:2.8;
  |]

let ag_population seed n =
  let rng = Rng.create seed in
  let values =
    Array.init n (fun _ ->
        let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        [| a; b; a +. b |])
  in
  Device_data.make ~specs:ag_specs ~values

let adaptive_guard_tests =
  [
    Alcotest.test_case "margin grows with the guard target" `Quick (fun () ->
        let train = ag_population 21 600 in
        let margin target =
          Adaptive_guard.margin
            (Adaptive_guard.train
               ~config:
                 { Adaptive_guard.default_config with
                   Adaptive_guard.target_guard = target }
               train ~dropped:[| 2 |])
        in
        let m2 = margin 0.02 and m10 = margin 0.10 and m25 = margin 0.25 in
        Alcotest.(check bool) "monotone" true (m2 <= m10 && m10 <= m25));
    Alcotest.test_case "band verdicts partition by decision value" `Quick
      (fun () ->
        let train = ag_population 22 600 in
        let t =
          Adaptive_guard.train
            ~config:
              { Adaptive_guard.default_config with
                Adaptive_guard.target_guard = 0.10 }
            train ~dropped:[| 2 |]
        in
        let band = Adaptive_guard.band t in
        let rng = Rng.create 23 in
        let seen_good = ref false and seen_other = ref false in
        for _ = 1 to 200 do
          let v =
            [| Rng.uniform rng 0.3 1.7; Rng.uniform rng 0.3 1.7 |]
          in
          match Guard_band.classify band v with
          | Guard_band.Good -> seen_good := true
          | Guard_band.Bad | Guard_band.Guard -> seen_other := true
        done;
        Alcotest.(check bool) "both sides reachable" true
          (!seen_good && !seen_other));
    Alcotest.test_case "flow records the dropped specs" `Quick (fun () ->
        let train = ag_population 24 400 in
        let t = Adaptive_guard.train train ~dropped:[| 2 |] in
        let flow = Adaptive_guard.flow t in
        Alcotest.(check (array int)) "dropped" [| 2 |]
          flow.Compaction.dropped;
        Alcotest.(check (array int)) "kept" [| 0; 1 |] flow.Compaction.kept);
    Alcotest.test_case "flow verdicts stay consistent on a fresh population"
      `Quick (fun () ->
        let train = ag_population 25 800 and test = ag_population 26 500 in
        let t =
          Adaptive_guard.train
            ~config:
              { Adaptive_guard.default_config with
                Adaptive_guard.target_guard = 0.05 }
            train ~dropped:[| 2 |]
        in
        let counts = Compaction.evaluate_flow (Adaptive_guard.flow t) test in
        (* sanity: the adaptive flow neither ships everything nor guards
           everything, and error stays small on redundant data *)
        Alcotest.(check bool) "guard sane" true
          (Metrics.guard_pct counts < 30.0);
        Alcotest.(check bool) "escape small" true
          (Metrics.escape_pct counts < 5.0));
  ]

let suites =
  [
    ("units: cost model", cost_tests);
    ("units: report rendering", report_tests);
    ("units: calibration", calibration_tests);
    ("units: adaptive guard", adaptive_guard_tests);
  ]
