# Convenience targets; `make check` is the tier-1 gate used by CI.

# Seed for the QA sweep (`make qa`); override with QA_SEED=... — it is
# exported as QCHECK_SEED so the qcheck properties in the test suite
# replay the same stream.
QA_SEED ?= 2005

.PHONY: all build check test bench examples qa ci clean

all: build

build:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

qa:
	QCHECK_SEED=$(QA_SEED) dune runtest
	dune exec bin/stc_cli.exe -- selftest --seed $(QA_SEED) --quiet

# Everything the CI workflow runs: build, tier-1 tests, then the QA
# sweep (qcheck properties + `stc selftest`) under the pinned seed.
ci:
	dune build @all
	dune runtest
	$(MAKE) qa

examples:
	dune exec examples/quickstart.exe
	dune exec examples/floor_serving.exe

clean:
	dune clean
