# Convenience targets; `make check` is the tier-1 gate used by CI.

.PHONY: all build check test bench examples clean

all: build

build:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/floor_serving.exe

clean:
	dune clean
