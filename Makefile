# Convenience targets; `make check` is the tier-1 gate used by CI.

# Seed for the QA sweep (`make qa`); override with QA_SEED=... — it is
# exported as QCHECK_SEED so the qcheck properties in the test suite
# replay the same stream.
QA_SEED ?= 2005

.PHONY: all build check test bench bench-json golden examples qa equiv enrich learners serve-smoke chaos ci clean

all: build

build:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The bench harness always writes BENCH_compaction.json, BENCH_svm.json,
# BENCH_floor.json, BENCH_net.json and BENCH_process.json (stc-bench-1
# schema, see DESIGN.md) next to its text output; this target exists so
# CI and scripts have a stable name for "run the benches for their
# machine-readable results".
bench-json:
	dune exec bench/main.exe

# The paper-golden regression tier at near-paper populations (several
# minutes); the smoke tier runs in the default `dune runtest`.
golden:
	STC_SLOW=1 dune exec test/test_main.exe -- test golden

qa:
	QCHECK_SEED=$(QA_SEED) dune runtest
	dune exec bin/stc_cli.exe -- selftest --seed $(QA_SEED) --quiet

# The SMO warm-start / flat-storage equivalence gate (test_svm_equiv.ml):
# warm-started solves reach the cold optimum and warm-started compaction
# emits bit-identical stc-flow-1 bytes. Run by name so that if the suite
# is ever deregistered, the empty filter makes alcotest exit nonzero —
# CI cannot silently skip it.
equiv:
	dune exec test/test_main.exe -- test svm_equiv

# The boundary-enrichment determinism gate (test_process.ml, suite
# process.enrich): the enriched dataset must be bit-identical at 1, 2
# and 4 domains and the importance-weighted yield must agree with an
# independent uniform population. Run by name so a deregistered suite
# makes alcotest exit nonzero — CI cannot silently skip it.
enrich:
	dune exec test/test_main.exe -- test process.enrich

# The learner-zoo differential gate (test_learner.ml): the MLP forward
# pass vs a brute-force reference, stc-mlp-1/stc-flow-2 round trips,
# determinism of training, the MI ranker vs its full-rescan reference,
# and the promotion gate — every non-SVR learner must match or beat
# SVR escape/yield loss on the op-amp and MEMS benches at equal
# tolerance, and a deliberately bad learner must be rejected. Run by
# name so a deregistered suite makes alcotest exit nonzero.
learners:
	dune exec test/test_main.exe -- test learner

# End-to-end network serving smoke: a loopback server on an ephemeral
# port, 100 devices from two concurrent clients (BATCH and pipelined
# BIN paths), a hot reload under the traffic, METRICS in both formats
# and a clean wire SHUTDOWN — all bit-checked against the offline
# Floor reference. Exits nonzero on any mismatch.
serve-smoke:
	dune exec test/serve_smoke.exe

# The chaos gate (test/chaos.ml): a loopback server under deliberate
# abuse — connection flood past the admission cap, slow-loris opener,
# reply-ignoring client, crash-injected flow engine driving the
# circuit breaker through trip/shed/recycle/recover. Every scenario
# must be shed or reaped with a typed ERR line while a well-behaved
# client stays bit-identical to the offline Floor reference.
chaos:
	dune exec test/chaos.exe

# Everything the CI workflow runs: build, tier-1 tests, the QA sweep
# (qcheck properties + `stc selftest`) under the pinned seed, the SMO
# equivalence gate, the enrichment determinism gate and the learner-zoo
# differential gate (each fails if its suite is skipped), then the
# network serving smoke and the chaos gate.
ci:
	dune build @all
	dune runtest
	$(MAKE) qa
	$(MAKE) equiv
	$(MAKE) enrich
	$(MAKE) learners
	$(MAKE) serve-smoke
	$(MAKE) chaos

examples:
	dune exec examples/quickstart.exe
	dune exec examples/floor_serving.exe
	dune exec examples/net_serving.exe

clean:
	dune clean
