(* Command-line driver for the test-compaction experiments.

   stc opamp  — greedy compaction of the 11 op-amp specification tests
   stc mems   — hot/cold temperature-test elimination + cost analysis
   stc sweep  — accuracy vs training-set size
   stc specs  — print the specification tables
   stc train  — train an op-amp flow and persist it (with a device CSV)
   stc serve  — reload a flow and bin a CSV of devices on the floor engine
   stc server — persistent multi-client TCP flow server with hot reload
   stc flow   — inspect saved flow files (stc flow info FILE)
   stc selftest — adversarial QA sweep: differential oracles + fault injection

   Exit codes: 0 success; 1 genuine failure (failing selftest, server
   crash); 2 data error (corrupt flow file, bad CSV, unusable journal);
   124+ cmdliner usage errors. *)

module Experiment = Stc.Experiment
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Cost = Stc.Cost
module Spec = Stc.Spec
module Order = Stc.Order
module Report = Stc.Report
module Journal = Stc.Journal
module Flow_io = Stc_floor.Flow_io
module Device_csv = Stc_floor.Device_csv
module Floor = Stc_floor.Floor

open Cmdliner

(* Data errors — a corrupt flow file, a bad CSV, an unusable journal —
   are the operator's problem, not a crash: one clean line on stderr,
   exit code 2 (1 is reserved for genuine failures like a failing
   selftest, and cmdliner uses 124+ for usage errors). *)
let die_data fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "stc: %s\n" s;
      exit 2)
    fmt

let guard_data_errors f =
  try f () with
  | Sys_error e -> die_data "%s" e
  | Failure e -> die_data "%s" e

(* ------------------------------ options --------------------------- *)

let seed =
  Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"SEED" ~doc:"Monte-Carlo seed.")

let n_train =
  Arg.(value & opt int 800 & info [ "train" ] ~docv:"N" ~doc:"Training instances.")

let n_test =
  Arg.(value & opt int 400 & info [ "test" ] ~docv:"N" ~doc:"Test instances.")

let tolerance =
  Arg.(value & opt float 0.01
       & info [ "tolerance" ] ~docv:"FRAC"
           ~doc:"Prediction-error tolerance e_T (fraction).")

let guard =
  Arg.(value & opt (some float) None
       & info [ "guard" ] ~docv:"FRAC"
           ~doc:"Guard-band boundary perturbation (fraction of the boundary).")

let order_conv =
  let parse = function
    | "functional" -> Ok `Functional
    | "failures" -> Ok `Failures
    | "correlation" -> Ok `Correlation
    | "cluster" -> Ok `Cluster
    | "mi" -> Ok `Mi
    | s -> Error (`Msg (Printf.sprintf "unknown order %S" s))
  in
  let print fmt o =
    Format.pp_print_string fmt
      (match o with
       | `Functional -> "functional"
       | `Failures -> "failures"
       | `Correlation -> "correlation"
       | `Cluster -> "cluster"
       | `Mi -> "mi")
  in
  Arg.conv (parse, print)

let order =
  Arg.(value & opt order_conv `Functional
       & info [ "order" ] ~docv:"STRATEGY"
           ~doc:"Examination order: functional | failures | correlation | \
                 cluster | mi (mutual-information ranking, least \
                 informative first).")

let learner_conv =
  let parse = function
    | "svr" -> Ok `Svr
    | "svc" -> Ok `Svc
    | "mlp" -> Ok `Mlp
    | s -> Error (`Msg (Printf.sprintf "unknown learner %S" s))
  in
  let print fmt l =
    Format.pp_print_string fmt
      (match l with `Svr -> "svr" | `Svc -> "svc" | `Mlp -> "mlp")
  in
  Arg.conv (parse, print)

let learner =
  Arg.(value & opt learner_conv `Svr
       & info [ "learner" ] ~docv:"L"
           ~doc:"Statistical model: svr | svc | mlp. The MLP is admitted \
                 by the differential promotion gate (test/test_learner.ml): \
                 it matches or beats SVR escape and yield loss on the \
                 op-amp and MEMS benches at equal tolerance. Flows trained \
                 with mlp persist as stc-flow-2.")

let grid_resolution =
  Arg.(value & opt (some int) None
       & info [ "grid" ] ~docv:"RES"
           ~doc:"Enable grid training-data compaction at this resolution.")

let parallel =
  Arg.(value & flag
       & info [ "parallel" ]
           ~doc:"Fan the Monte-Carlo simulations out across CPU cores \
                 (deterministic per seed, but a different stream than the \
                 sequential generator).")

let enrich_arg =
  Arg.(value & flag
       & info [ "enrich" ]
           ~doc:"Boundary-biased training population: a uniform pilot fits \
                 per-spec margins, then the remaining budget is drawn near \
                 the acceptance boundary with importance weights recorded so \
                 population statistics stay unbiased. Always fans out across \
                 CPU cores; deterministic per seed at any core count.")

let pilot_arg =
  Arg.(value & opt (some int) None
       & info [ "pilot" ] ~docv:"N"
           ~doc:"Pilot population size for $(b,--enrich) (default: \
                 a quarter of the training size, at least 10).")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Write-ahead journal for the greedy loop (stc-journal-1 \
                 format): every accept/reject decision is flushed to \
                 $(docv) before the loop advances, so a killed run can \
                 continue with $(b,--resume) instead of retraining.")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Replay the decisions recorded in $(b,--journal) and \
                 continue from the first unjournaled candidate. The \
                 resumed run produces a flow bit-identical to an \
                 uninterrupted one; a journal from a different config, \
                 population, or order is rejected.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"After the run, export the process metric registry \
                 (stc-metrics-1 text format: SMO iterations, kernel \
                 evaluations and cache hit rate, pool queue/job \
                 latencies, compaction accept/reject counts, floor \
                 batch latencies) to $(docv).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Enable span tracing for this run and write the retained \
                 spans (stc-trace-1 text format, one per-candidate-drop \
                 span tree per greedy step) to $(docv).")

let write_text_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

(* Observability envelope for a command: tracing is switched on for the
   run when --trace was given, and both exports are written even when
   the wrapped command raises (but not when it exits: a data error dies
   before there is anything worth dumping). *)
let with_obs ~metrics ~trace f =
  if trace <> None then Stc_obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      (match metrics with
       | None -> ()
       | Some path ->
         write_text_file path (Stc_obs.Registry.to_text ());
         Printf.printf "metrics -> %s\n" path);
      match trace with
      | None -> ()
      | Some path ->
        write_text_file path (Stc_obs.Trace.to_text ());
        Stc_obs.Trace.set_enabled false;
        Printf.printf "trace -> %s\n" path)
    f

(* The journalled greedy loop behind --journal/--resume. The journal is
   bound to this exact run by its fingerprint, so resuming against
   changed data or flags dies cleanly instead of silently diverging. *)
let greedy_with_journal ~journal ~resume ~order config ~train ~test =
  match journal with
  | None ->
    if resume then die_data "--resume requires --journal FILE";
    Compaction.greedy ~order config ~train ~test
  | Some path ->
    let examination = Order.compute order train in
    let fingerprint =
      Compaction.journal_fingerprint config ~train ~test ~order:examination
    in
    let fresh () =
      match Journal.create ~path ~fingerprint with
      | Error e -> die_data "cannot create journal %s: %s" path e
      | Ok w ->
        Fun.protect
          ~finally:(fun () -> Journal.close w)
          (fun () ->
            Compaction.greedy_resumable ~order ~journal:w config ~train ~test)
    in
    if not resume then fresh ()
    else if not (Sys.file_exists path) then begin
      Printf.printf "journal %s does not exist yet: starting fresh\n%!" path;
      fresh ()
    end
    else begin
      match Journal.recover ~path with
      | Error e -> die_data "cannot resume journal %s: %s" path e
      | Ok (r, salvaged) ->
        if salvaged > 0 then
          Printf.printf
            "journal %s: dropped a final record cut mid-write (%d bytes)\n%!"
            path salvaged;
        if r.Journal.fingerprint <> fingerprint then
          die_data
            "journal %s was written for a different run (config, seed, \
             population, or order changed)"
            path;
        let n = Array.length r.Journal.entries in
        if r.Journal.complete then begin
          Printf.printf "journal %s is complete: replaying all %d steps\n%!"
            path n;
          Compaction.greedy_resumable ~order ~replay:r.Journal.entries config
            ~train ~test
        end
        else begin
          Printf.printf "resuming %s: replaying %d journaled steps\n%!" path n;
          match Journal.open_append ~path ~fingerprint with
          | Error e -> die_data "cannot append to journal %s: %s" path e
          | Ok w ->
            Fun.protect
              ~finally:(fun () -> Journal.close w)
              (fun () ->
                Compaction.greedy_resumable ~order ~journal:w
                  ~replay:r.Journal.entries config ~train ~test)
        end
    end

let make_config (base : Compaction.config) ~tolerance ~guard ~learner
    ~grid_resolution =
  let learner =
    match learner with
    | `Svr -> Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = None }
    | `Svc -> Compaction.C_svc { c = 10.0; gamma = None }
    | `Mlp -> Stc.Learner.default_mlp
  in
  let grid =
    Option.map
      (fun resolution -> { Stc.Grid_compact.default_config with resolution })
      grid_resolution
  in
  {
    base with
    Compaction.tolerance;
    learner;
    grid;
    guard_fraction =
      (match guard with Some g -> g | None -> base.Compaction.guard_fraction);
  }

let print_flow_metrics flow test =
  let counts = Compaction.evaluate_flow flow test in
  Printf.printf
    "escape %s  loss %s  guard %s  (test yield %.1f%%)\n"
    (Report.pct (Metrics.escape_pct counts))
    (Report.pct (Metrics.loss_pct counts))
    (Report.pct (Metrics.guard_pct counts))
    (Metrics.yield_pct counts)

(* ------------------------------ opamp ----------------------------- *)

(* Shared by `stc opamp` and `stc train`: either the historical uniform
   populations, or (--enrich) a boundary-biased training set with
   importance weights plus a uniform test set. *)
let opamp_populations ~parallel ~enrich ~pilot ~seed ~n_train ~n_test =
  if not enrich then begin
    Printf.printf "generating %d op-amp instances (seed %d)...\n%!"
      (n_train + n_test) seed;
    Experiment.generate_opamp ~parallel ~seed ~n_train ~n_test ()
  end
  else begin
    let pilot =
      match pilot with Some p -> p | None -> Stdlib.max 10 (n_train / 4)
    in
    if pilot <= 0 || pilot >= n_train then
      die_data "--pilot must be between 1 and %d (got %d with --train %d)"
        (n_train - 1) pilot n_train;
    Printf.printf
      "generating %d op-amp instances (seed %d, enriched: pilot %d)...\n%!"
      (n_train + n_test) seed pilot;
    let train, test, stats =
      Experiment.generate_opamp_enriched ~seed ~pilot ~n_train ~n_test ()
    in
    Printf.printf
      "enrichment: %d pilot + %d enriched, %d proposals, acceptance %.1f%%, \
       boundary hit rate %.1f%%%s\n"
      stats.Stc_process.Enrich.pilot stats.Stc_process.Enrich.enriched
      stats.Stc_process.Enrich.proposals
      (100.0 *. stats.Stc_process.Enrich.acceptance_rate)
      (100.0 *. stats.Stc_process.Enrich.boundary_hit_rate)
      (if stats.Stc_process.Enrich.surrogate_ok then ""
       else " (surrogate fit degraded to uniform)");
    Printf.printf "train yield %.1f%% raw, %.1f%% weighted\n"
      (100.0 *. Device_data.yield_fraction train)
      (100.0 *. Device_data.weighted_yield_fraction train);
    (train, test)
  end

let run_opamp seed n_train n_test tolerance guard order learner grid_resolution
    parallel enrich pilot journal resume metrics trace =
  guard_data_errors @@ fun () ->
  with_obs ~metrics ~trace @@ fun () ->
  let train, test =
    opamp_populations ~parallel ~enrich ~pilot ~seed ~n_train ~n_test
  in
  Printf.printf "train yield %.1f%%, test yield %.1f%%\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test);
  let config =
    make_config Experiment.opamp_config ~tolerance ~guard ~learner
      ~grid_resolution
  in
  let order =
    match order with
    | `Functional -> Order.Given Experiment.opamp_examination_order
    | `Failures -> Order.By_failure_count
    | `Correlation -> Order.By_correlation
    | `Cluster -> Order.By_cluster 0.8
    | `Mi -> Order.By_mutual_information
  in
  let result = greedy_with_journal ~journal ~resume ~order config ~train ~test in
  let specs = Device_data.specs train in
  List.iter
    (fun s ->
      Printf.printf "  %-24s e_p=%5.2f%%  %s\n"
        specs.(s.Compaction.spec_index).Spec.name
        (100.0 *. s.Compaction.error)
        (if s.Compaction.accepted then "eliminated" else "kept"))
    result.Compaction.steps;
  Printf.printf "kept %d of %d tests; "
    (Array.length result.Compaction.flow.Compaction.kept)
    (Array.length specs);
  print_flow_metrics result.Compaction.flow test

let opamp_cmd =
  let term =
    Term.(const run_opamp $ seed $ n_train $ n_test $ tolerance $ guard $ order
          $ learner $ grid_resolution $ parallel $ enrich_arg $ pilot_arg
          $ journal_arg $ resume_arg $ metrics_arg $ trace_arg)
  in
  Cmd.v (Cmd.info "opamp" ~doc:"Greedy compaction of the op-amp test set") term

(* ------------------------------- mems ----------------------------- *)

let run_mems seed n_train n_test tolerance guard learner grid_resolution
    parallel =
  Printf.printf "generating %d MEMS instances (seed %d)...\n%!"
    (n_train + n_test) seed;
  let train, test = Experiment.generate_mems ~parallel ~seed ~n_train ~n_test () in
  Printf.printf "train yield %.1f%%, test yield %.1f%%\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test);
  let config =
    make_config Experiment.mems_config ~tolerance ~guard ~learner
      ~grid_resolution
  in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  List.iter
    (fun (name, dropped) ->
      let counts, _ = Compaction.eliminate config ~train ~test ~dropped in
      Printf.printf "eliminate %-5s escape %s  loss %s  guard %s\n" name
        (Report.pct (Metrics.escape_pct counts))
        (Report.pct (Metrics.loss_pct counts))
        (Report.pct (Metrics.guard_pct counts)))
    [
      ("-40C", Experiment.mems_cold_indices);
      ("80C", Experiment.mems_hot_indices);
      ("both", both);
    ];
  (* cost story for eliminating both temperature tests *)
  let counts, _ = Compaction.eliminate config ~train ~test ~dropped:both in
  let room_pass =
    let room = Array.init 5 (fun k -> k) in
    let count = ref 0 in
    for i = 0 to Device_data.n_instances test - 1 do
      if Device_data.passes_subset test ~instance:i ~subset:room then incr count
    done;
    !count
  in
  let r =
    Cost.tri_temperature ~n:counts.Metrics.total ~room_pass
      ~guard:counts.Metrics.guards ()
  in
  Printf.printf "cost: full $%.0f -> compacted $%.0f (saving %.1f%%)\n"
    r.Cost.full r.Cost.compacted r.Cost.saving_pct

let mems_cmd =
  let term =
    Term.(const run_mems $ seed $ n_train $ n_test $ tolerance $ guard
          $ learner $ grid_resolution $ parallel)
  in
  Cmd.v
    (Cmd.info "mems" ~doc:"Eliminate the MEMS hot/cold temperature tests")
    term

(* ------------------------------- sweep ----------------------------- *)

let sizes_arg =
  Arg.(value & opt (list int) [ 50; 100; 200; 400; 800 ]
       & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Training sizes to sweep.")

let run_sweep seed n_test sizes =
  let n_train = List.fold_left Stdlib.max 1 sizes in
  Printf.printf "generating %d op-amp instances (seed %d)...\n%!"
    (n_train + n_test) seed;
  let train, test = Experiment.generate_opamp ~seed ~n_train ~n_test () in
  let dropped = [| 0; 1; 2; 5; 6; 8; 9; 10 |] in
  List.iter
    (fun n ->
      let subset =
        Device_data.make
          ~specs:(Device_data.specs train)
          ~values:(Array.sub (Device_data.values train) 0 n)
      in
      let counts, _ =
        Compaction.eliminate Experiment.opamp_config ~train:subset ~test ~dropped
      in
      Printf.printf "n=%5d  escape %s  loss %s  guard %s\n" n
        (Report.pct (Metrics.escape_pct counts))
        (Report.pct (Metrics.loss_pct counts))
        (Report.pct (Metrics.guard_pct counts)))
    (List.sort compare sizes)

let sweep_cmd =
  let term = Term.(const run_sweep $ seed $ n_test $ sizes_arg) in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Prediction accuracy vs training-set size (Fig. 6)")
    term

(* ------------------------------- specs ----------------------------- *)

let run_specs () =
  let render title specs =
    let rows =
      Array.to_list
        (Array.map
           (fun s ->
             [
               s.Spec.name;
               s.Spec.unit_label;
               Report.g3 s.Spec.nominal;
               Printf.sprintf "%s..%s" (Report.g3 s.Spec.range.Spec.lower)
                 (Report.g3 s.Spec.range.Spec.upper);
             ])
           specs)
    in
    print_string
      (Report.table ~title ~header:[ "specification"; "unit"; "nominal"; "range" ]
         rows);
    print_newline ()
  in
  render "Op-amp (Table 1)" Experiment.opamp_specs;
  render "MEMS accelerometer (Table 2, per temperature)" Experiment.mems_room_specs

let specs_cmd =
  Cmd.v (Cmd.info "specs" ~doc:"Print the specification tables")
    Term.(const run_specs $ const ())

(* ------------------------------- train ----------------------------- *)

let save_flow_arg =
  Arg.(required & opt (some string) None
       & info [ "save-flow" ] ~docv:"FILE"
           ~doc:"Write the trained flow (stc-flow-1 format) to $(docv).")

let save_test_arg =
  Arg.(value & opt (some string) None
       & info [ "save-test" ] ~docv:"FILE"
           ~doc:"Also write the held-out test population as a device CSV, \
                 ready for $(b,stc serve --input).")

let run_train seed n_train n_test tolerance guard order learner grid_resolution
    parallel enrich pilot save_flow save_test journal resume metrics trace =
  guard_data_errors @@ fun () ->
  with_obs ~metrics ~trace @@ fun () ->
  let train, test =
    opamp_populations ~parallel ~enrich ~pilot ~seed ~n_train ~n_test
  in
  let config =
    make_config Experiment.opamp_config ~tolerance ~guard ~learner
      ~grid_resolution
  in
  let order =
    match order with
    | `Functional -> Order.Given Experiment.opamp_examination_order
    | `Failures -> Order.By_failure_count
    | `Correlation -> Order.By_correlation
    | `Cluster -> Order.By_cluster 0.8
    | `Mi -> Order.By_mutual_information
  in
  let result = greedy_with_journal ~journal ~resume ~order config ~train ~test in
  let flow = result.Compaction.flow in
  Printf.printf "kept %d of %d tests; "
    (Array.length flow.Compaction.kept)
    (Array.length flow.Compaction.specs);
  print_flow_metrics flow test;
  (match Flow_io.save ~path:save_flow flow with
   | Ok () -> Printf.printf "flow -> %s\n" save_flow
   | Error e -> die_data "cannot save flow: %s" e);
  match save_test with
  | None -> ()
  | Some path ->
    Device_csv.write ~path ~specs:(Device_data.specs test)
      ~rows:(Device_data.values test);
    Printf.printf "test population (%d devices) -> %s\n"
      (Device_data.n_instances test) path

let train_cmd =
  let term =
    Term.(const run_train $ seed $ n_train $ n_test $ tolerance $ guard $ order
          $ learner $ grid_resolution $ parallel $ enrich_arg $ pilot_arg
          $ save_flow_arg $ save_test_arg
          $ journal_arg $ resume_arg $ metrics_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Train an op-amp compaction flow and persist it for serving")
    term

(* ------------------------------- serve ----------------------------- *)

let flow_file_arg =
  Arg.(required & opt (some string) None
       & info [ "flow" ] ~docv:"FILE" ~doc:"Flow saved by $(b,stc train).")

let input_arg =
  Arg.(required & opt (some string) None
       & info [ "input" ] ~docv:"CSV"
           ~doc:"Device measurement rows; $(b,-) streams them from stdin.")

let batch_arg =
  Arg.(value & opt int 256
       & info [ "batch" ] ~docv:"N" ~doc:"Devices per dispatched batch.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains (including the caller).")

let queue_guard_arg =
  Arg.(value & flag
       & info [ "queue-guard" ]
           ~doc:"Bin guard-band parts Retest instead of escalating them to \
                 the full specification test on the spot.")

let batch_deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "batch-deadline" ] ~docv:"SECONDS"
           ~doc:"Bound each batch's guard-escalation phase: once a batch \
                 has run this long, its remaining guard parts are binned \
                 Retest (counted as degraded) instead of waiting on more \
                 full-test calls.")

let run_serve flow_file input batch domains queue_guard batch_deadline metrics
    trace =
  guard_data_errors @@ fun () ->
  with_obs ~metrics ~trace @@ fun () ->
  if batch < 1 then begin
    Printf.eprintf "--batch must be >= 1 (got %d)\n" batch;
    exit 1
  end;
  if domains < 1 then begin
    Printf.eprintf "--domains must be >= 1 (got %d)\n" domains;
    exit 1
  end;
  (match batch_deadline with
   | Some d when d <= 0.0 ->
     Printf.eprintf "--batch-deadline must be positive (got %g)\n" d;
     exit 1
   | _ -> ());
  let flow =
    match Flow_io.load ~path:flow_file with
    | Ok flow -> flow
    | Error e -> die_data "cannot load flow %s: %s" flow_file e
  in
  let src = if input = "-" then "stdin" else input in
  let reader =
    match
      if input = "-" then Device_csv.reader_of_channel stdin
      else Device_csv.open_reader ~path:input
    with
    | Ok r -> r
    | Error e -> die_data "cannot read devices from %s: %s" src e
  in
  Fun.protect ~finally:(fun () -> Device_csv.close_reader reader) @@ fun () ->
  let specs = flow.Compaction.specs in
  let width = Array.length (Device_csv.header reader) in
  if width <> Array.length specs then
    die_data "input %s has %d columns but the flow has %d specs" src width
      (Array.length specs);
  Printf.printf "%s: %d kept of %d specs, batch %d, domains %d\n%!" src
    (Array.length flow.Compaction.kept)
    (Array.length specs) batch domains;
  (* the full (adaptive) test: measure every spec — the CSV already
     carries all columns, so full test = judge the complete row *)
  let retest = if queue_guard then None else Some (Floor.full_test flow) in
  Floor.with_engine
    ~config:{ Floor.batch_size = batch; domains }
    flow
    (fun engine ->
      (* pull batch-sized chunks so a floor-scale stream (or an endless
         stdin pipe) never materialises in memory *)
      let rec pump total =
        match Device_csv.next_batch reader ~max:batch with
        | Error e -> die_data "cannot read devices from %s: %s" src e
        | Ok [||] -> total
        | Ok rows ->
          let (_ : Floor.outcome array) =
            Floor.process ?retest ?batch_deadline_s:batch_deadline engine rows
          in
          pump (total + Array.length rows)
      in
      let total = pump 0 in
      Printf.printf "%d devices binned\n" total;
      print_string (Floor.report engine))

let serve_cmd =
  let term =
    Term.(const run_serve $ flow_file_arg $ input_arg $ batch_arg $ domains_arg
          $ queue_guard_arg $ batch_deadline_arg $ metrics_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Bin a stream of devices with a saved flow on the floor engine")
    term

(* ------------------------------- server ---------------------------- *)

module Net_registry = Stc_net.Registry
module Net_server = Stc_net.Server
module Retry = Stc_floor.Retry

let listen_arg =
  Arg.(value & opt int 0
       & info [ "listen" ] ~docv:"PORT"
           ~doc:"TCP port to listen on; 0 (the default) picks an ephemeral \
                 port and prints it.")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let server_flows_arg =
  Arg.(non_empty & opt_all (pair ~sep:'=' string string) []
       & info [ "flow" ] ~docv:"NAME=FILE"
           ~doc:"Serve the stc-flow-1 file $(i,FILE) under the route \
                 $(i,NAME) (repeatable; each flow gets its own engine).")

let flush_rows_arg =
  Arg.(value & opt int Net_server.default_config.Net_server.flush_rows
       & info [ "flush-rows" ] ~docv:"N"
           ~doc:"Flush a connection's pipelined BIN rows as one batch once \
                 $(docv) are pending.")

let flush_deadline_arg =
  Arg.(value & opt float Net_server.default_config.Net_server.flush_deadline_s
       & info [ "flush-deadline" ] ~docv:"SECONDS"
           ~doc:"Flush pending rows once the oldest is $(docv) old, so a \
                 trickling client still gets verdicts promptly.")

let max_pending_arg =
  Arg.(value & opt int Net_server.default_config.Net_server.max_pending
       & info [ "max-pending" ] ~docv:"N"
           ~doc:"Bound on a connection's pending-row queue (and on a single \
                 BATCH): reaching it forces a flush before the next read, \
                 so a runaway client is throttled by TCP itself.")

let max_conns_arg =
  Arg.(value & opt int Net_server.default_config.Net_server.max_connections
       & info [ "max-conns" ] ~docv:"N"
           ~doc:"Concurrent client connections; arrivals past the cap are \
                 shed with one $(i,ERR busy) line and a clean close.")

let idle_timeout_arg =
  Arg.(value & opt float Net_server.default_config.Net_server.idle_timeout_s
       & info [ "idle-timeout" ] ~docv:"SECONDS"
           ~doc:"Reap a connection that has sent no bytes for $(docv) \
                 (slow-loris defense); 0 or negative disables the reaper.")

let write_timeout_arg =
  Arg.(value & opt float Net_server.default_config.Net_server.write_timeout_s
       & info [ "write-timeout" ] ~docv:"SECONDS"
           ~doc:"Tear down a connection whose peer stops reading replies \
                 once a blocked write has waited $(docv); 0 or negative \
                 waits forever.")

let drain_deadline_arg =
  Arg.(value & opt float Net_server.default_config.Net_server.drain_deadline_s
       & info [ "drain-deadline" ] ~docv:"SECONDS"
           ~doc:"On SIGTERM/SIGINT or a wire SHUTDOWN the server drains: \
                 it stops accepting, answers every in-flight batch, and \
                 exits — forcing the remaining connections closed after \
                 $(docv).")

let retries_arg =
  Arg.(value & opt int 1
       & info [ "retries" ] ~docv:"N"
           ~doc:"Attempts (including the first) for each guard-band \
                 escalation, with exponential backoff between them; 1 \
                 disables retry.")

let reload_signal_arg =
  Arg.(value & flag
       & info [ "reload-signal" ]
           ~doc:"Re-read every flow's file on SIGHUP and hot-swap the \
                 changed ones atomically (a parse error leaves the old \
                 flow serving; an unchanged fingerprint is a no-op).")

let run_server host listen flows flush_rows flush_deadline max_pending
    max_conns idle_timeout write_timeout drain_deadline queue_guard
    batch_deadline retries reload_signal batch domains metrics trace =
  guard_data_errors @@ fun () ->
  with_obs ~metrics ~trace @@ fun () ->
  if batch < 1 || domains < 1 then begin
    Printf.eprintf "--batch and --domains must be >= 1\n";
    exit 1
  end;
  if flush_rows < 1 || max_pending < 1 || max_conns < 1 then begin
    Printf.eprintf "--flush-rows, --max-pending and --max-conns must be >= 1\n";
    exit 1
  end;
  if flush_deadline <= 0.0 then begin
    Printf.eprintf "--flush-deadline must be positive (got %g)\n" flush_deadline;
    exit 1
  end;
  if drain_deadline <= 0.0 then begin
    Printf.eprintf "--drain-deadline must be positive (got %g)\n" drain_deadline;
    exit 1
  end;
  if retries < 1 then begin
    Printf.eprintf "--retries must be >= 1 (got %d)\n" retries;
    exit 1
  end;
  let registry =
    Net_registry.create ~floor_config:{ Floor.batch_size = batch; domains } ()
  in
  List.iter
    (fun (name, path) ->
      match Net_registry.load registry ~name ~path with
      | Ok _ -> Printf.printf "flow %s <- %s\n%!" name path
      | Error e -> die_data "%s" e)
    flows;
  let config =
    {
      Net_server.default_config with
      Net_server.host;
      port = listen;
      flush_rows;
      flush_deadline_s = flush_deadline;
      max_pending;
      max_connections = max_conns;
      idle_timeout_s = idle_timeout;
      write_timeout_s = write_timeout;
      drain_deadline_s = drain_deadline;
      escalate = not queue_guard;
      retry =
        (if retries > 1 then
           Some { Retry.default_policy with Retry.attempts = retries }
         else None);
      batch_deadline_s = batch_deadline;
    }
  in
  let server = Net_server.create ~config registry in
  (* signal handlers only latch atomics; the real work — reload I/O,
     thread joins — happens on the main thread via wait's on_tick *)
  let stop_requested = Atomic.make false in
  let hup = Atomic.make false in
  let latch signal atom =
    try Sys.set_signal signal (Sys.Signal_handle (fun _ -> Atomic.set atom true))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  latch Sys.sigint stop_requested;
  latch Sys.sigterm stop_requested;
  if reload_signal then latch Sys.sighup hup;
  Net_server.start server;
  Printf.printf "listening on %s:%d (%d flows)\n%!" host
    (Net_server.port server) (List.length flows);
  let announced_drain = ref false in
  let on_tick () =
    if Atomic.get stop_requested then begin
      (* graceful exit: stop accepting, answer every in-flight batch,
         then let wait observe the drained (or expired) server and
         stop it — no accepted device is dropped *)
      if not !announced_drain then begin
        announced_drain := true;
        Printf.printf "draining (deadline %gs)...\n%!" drain_deadline
      end;
      Net_server.drain server
    end
    else if Atomic.exchange hup false then
      List.iter
        (fun name ->
          match Net_registry.reload registry ~name with
          | Ok (`Reloaded st) ->
            Printf.printf "reloaded %s -> version %d (%s)\n%!" name
              st.Net_registry.version st.Net_registry.fingerprint
          | Ok (`Unchanged _) -> Printf.printf "%s unchanged\n%!" name
          | Error e -> Printf.eprintf "reload %s failed: %s\n%!" name e)
        (Net_registry.names registry)
  in
  Net_server.wait ~on_tick server;
  Net_server.stop server;
  Net_registry.shutdown registry;
  Printf.printf "server stopped\n"

let server_cmd =
  let term =
    Term.(const run_server $ host_arg $ listen_arg $ server_flows_arg
          $ flush_rows_arg $ flush_deadline_arg $ max_pending_arg
          $ max_conns_arg $ idle_timeout_arg $ write_timeout_arg
          $ drain_deadline_arg $ queue_guard_arg $ batch_deadline_arg
          $ retries_arg $ reload_signal_arg $ batch_arg $ domains_arg
          $ metrics_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "server"
       ~doc:"Serve flows to concurrent network clients over the stc line \
             protocol, with live METRICS and zero-downtime hot reload")
    term

(* -------------------------------- flow ----------------------------- *)

let flow_file_pos =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"Flow file saved by $(b,stc train).")

let run_flow_info file =
  guard_data_errors @@ fun () ->
  let flow =
    match Flow_io.load ~path:file with
    | Ok f -> f
    | Error e -> die_data "cannot load flow %s: %s" file e
  in
  let fingerprint =
    match Flow_io.fingerprint flow with
    | Ok fp -> fp
    | Error e -> die_data "cannot fingerprint flow %s: %s" file e
  in
  let specs = flow.Compaction.specs in
  let kept = flow.Compaction.kept in
  let dropped = flow.Compaction.dropped in
  Printf.printf "file           %s\n" file;
  Printf.printf "format         %s\n" (Flow_io.version_of_flow flow);
  Printf.printf "fingerprint    %s\n" fingerprint;
  Printf.printf "specs          %d\n" (Array.length specs);
  Printf.printf "kept           %d\n" (Array.length kept);
  Printf.printf "dropped        %d\n" (Array.length dropped);
  Printf.printf "guard fraction %.17g\n" flow.Compaction.guard_fraction;
  Printf.printf "measured guard %b\n" flow.Compaction.measured_guard;
  Printf.printf "band           %s\n"
    (match flow.Compaction.band with
     | Some _ -> "trained guard-band model pair"
     | None -> "none (identity flow)");
  let name i = specs.(i).Spec.name in
  Array.iter (fun i -> Printf.printf "  keep %s\n" (name i)) kept;
  Array.iter (fun i -> Printf.printf "  drop %s\n" (name i)) dropped

let flow_info_cmd =
  Cmd.v
    (Cmd.info "info"
       ~doc:"Print a saved flow's format version, fingerprint, kept and \
             dropped specifications, and guard-band settings")
    Term.(const run_flow_info $ flow_file_pos)

let flow_cmd =
  Cmd.group (Cmd.info "flow" ~doc:"Inspect saved stc-flow-1 files")
    [ flow_info_cmd ]

(* ----------------------------- selftest ---------------------------- *)

let flows_arg =
  Arg.(value & opt int 1000
       & info [ "flows" ] ~docv:"N"
           ~doc:"Generated flows for the differential oracle (the acceptance \
                 bar is 1000).")

let rows_arg =
  Arg.(value & opt int 16
       & info [ "rows" ] ~docv:"N" ~doc:"Device rows per generated flow.")

let quiet_arg =
  Arg.(value & flag
       & info [ "quiet" ] ~doc:"Only print the final report table.")

let run_selftest seed flows rows quiet =
  guard_data_errors @@ fun () ->
  if flows < 1 || rows < 1 then begin
    Printf.eprintf "--flows and --rows must be >= 1\n";
    exit 1
  end;
  let progress =
    if quiet then fun _ -> ()
    else fun line -> Printf.printf "%s\n%!" line
  in
  let report = Stc_qa.Selftest.run ~seed ~flows ~rows_per_flow:rows ~progress () in
  print_string (Stc_qa.Selftest.render report);
  if not (Stc_qa.Selftest.ok report) then exit 1

let selftest_cmd =
  let term = Term.(const run_selftest $ seed $ flows_arg $ rows_arg $ quiet_arg) in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:"Adversarial QA sweep: property generators, differential oracles \
             against the floor engine and SVM solvers, serialisation round \
             trips, and fault injection")
    term

(* ------------------------------- main ------------------------------ *)

let () =
  let exits =
    Cmd.Exit.info 0 ~doc:"on success."
    :: Cmd.Exit.info 1
         ~doc:"on a genuine failure: a failing selftest, an option out of \
               range, a server that could not run."
    :: Cmd.Exit.info 2
         ~doc:"on a data error: a corrupt flow file, a bad device CSV, an \
               unusable journal."
    :: Cmd.Exit.defaults
  in
  let info =
    Cmd.info "stc" ~version:"1.0.0" ~exits
      ~doc:"Specification test compaction for analog circuits and MEMS"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            opamp_cmd;
            mems_cmd;
            sweep_cmd;
            specs_cmd;
            train_cmd;
            serve_cmd;
            server_cmd;
            flow_cmd;
            selftest_cmd;
          ]))
