(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation section (Sec. 5), then times the pipeline stages
   with Bechamel.

   Scale: by default the op-amp populations are reduced (the paper's
   5000+1000 instances cost ~5 minutes of MNA simulation); run with
   STC_FULL=1 in the environment to reproduce at full paper scale.
   All seeds are fixed — output is deterministic. *)

module Experiment = Stc.Experiment
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Guard_band = Stc.Guard_band
module Cost = Stc.Cost
module Spec = Stc.Spec
module Order = Stc.Order
module Report = Stc.Report
module Grid_compact = Stc.Grid_compact
module Journal = Stc.Journal
module Rng = Stc_numerics.Rng
module Json = Stc_obs.Json
module Obs = Stc_obs.Registry

let full_scale =
  match Sys.getenv_opt "STC_FULL" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let opamp_train_n = if full_scale then 5000 else 1200
let opamp_test_n = if full_scale then 1000 else 400
let mems_train_n = 1000
let mems_test_n = 1000

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every section runs against a freshly reset
   metric registry, so its flattened metrics are the section's own
   counts, and lands as {name, params, wall_s, metrics} in one of
   BENCH_compaction.json / BENCH_svm.json / BENCH_floor.json.          *)
(* ------------------------------------------------------------------ *)

let bench_groups = [ "compaction"; "svm"; "floor"; "net"; "process" ]
let bench_records : (string * Json.t) list ref = ref []

let p_int k v = (k, Json.Num (float_of_int v))
let p_bool k v = (k, Json.Bool v)

let opamp_params =
  [
    p_int "n_train" opamp_train_n;
    p_int "n_test" opamp_test_n;
    p_bool "full_scale" full_scale;
  ]

let mems_params =
  [
    p_int "n_train" mems_train_n;
    p_int "n_test" mems_test_n;
    p_bool "full_scale" full_scale;
  ]

let bench ~group ~name ?(params = []) f =
  if not (List.mem group bench_groups) then
    invalid_arg (Printf.sprintf "bench: unknown group %S" group);
  Obs.reset ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* the section's own latency also lands in histogram form, so even a
     purely presentational section exports a non-empty metrics object *)
  Obs.Histogram.observe (Obs.histogram "stc_bench_section_s") wall_s;
  let metrics =
    List.filter_map
      (fun (k, v) -> if v = 0.0 then None else Some (k, Json.Num v))
      (Obs.flatten ())
  in
  bench_records :=
    ( group,
      Json.Obj
        [
          ("name", Json.Str name);
          ("params", Json.Obj params);
          ("wall_s", Json.Num wall_s);
          ("metrics", Json.Obj metrics);
        ] )
    :: !bench_records;
  r

let write_bench_json () =
  List.iter
    (fun group ->
      let sections =
        List.rev
          (List.filter_map
             (fun (g, j) -> if g = group then Some j else None)
             !bench_records)
      in
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "stc-bench-1");
            ("scale", Json.Str (if full_scale then "full" else "reduced"));
            ("sections", Json.List sections);
          ]
      in
      let path = Printf.sprintf "BENCH_%s.json" group in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Json.to_string doc);
          output_char oc '\n');
      Printf.printf "[%d sections -> %s]\n" (List.length sections) path)
    bench_groups

let spec_name specs j = specs.(j).Spec.name

(* Data is generated once and shared across the sections. *)
let opamp_data =
  lazy
    (let t0 = Unix.gettimeofday () in
     let d = Experiment.generate_opamp ~seed:2005 ~n_train:opamp_train_n
               ~n_test:opamp_test_n ()
     in
     Printf.printf "[generated %d op-amp instances in %.1f s]\n"
       (opamp_train_n + opamp_test_n)
       (Unix.gettimeofday () -. t0);
     d)

let mems_data =
  lazy (Experiment.generate_mems ~seed:2005 ~n_train:mems_train_n ~n_test:mems_test_n ())

(* ------------------------------------------------------------------ *)
(* Table 1: op-amp specifications and population yields                *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: op-amp specifications (nominals, ranges) and yields";
  let train, test = Lazy.force opamp_data in
  let specs = Device_data.specs train in
  let rows =
    Array.to_list
      (Array.mapi
         (fun j s ->
           let col = Device_data.spec_column train j in
           [
             s.Spec.name;
             s.Spec.unit_label;
             Report.g3 s.Spec.nominal;
             Printf.sprintf "%s..%s" (Report.g3 s.Spec.range.Spec.lower)
               (Report.g3 s.Spec.range.Spec.upper);
             Report.g3 (Stc_numerics.Stats.median col);
           ])
         specs)
  in
  print_string
    (Report.table
       ~header:[ "specification"; "unit"; "nominal"; "range"; "measured median" ]
       rows);
  Printf.printf
    "yield: train %.1f%% / test %.1f%%   (paper: 75.4%% / 84.8%%)\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test)

(* ------------------------------------------------------------------ *)
(* Figure 5: error vs cumulatively eliminated op-amp tests             *)
(* ------------------------------------------------------------------ *)

let figure5 () =
  section
    "Figure 5: yield loss / defect escape / guard band vs cumulative \
     test elimination (op-amp)";
  let train, test = Lazy.force opamp_data in
  let specs = Device_data.specs train in
  let config = Experiment.opamp_config in
  let order = Experiment.opamp_examination_order in
  (* eliminate cumulatively in the functional-analysis order; at each
     prefix, train the guard-banded predictor and evaluate on test *)
  let steps = 8 in
  let labels = ref [] and loss = ref [] and escape = ref [] and guard = ref [] in
  for k = 1 to steps do
    let dropped = Array.sub order 0 k in
    let counts, _ = Compaction.eliminate config ~train ~test ~dropped in
    labels := spec_name specs order.(k - 1) :: !labels;
    loss := Metrics.loss_pct counts :: !loss;
    escape := Metrics.escape_pct counts :: !escape;
    guard := Metrics.guard_pct counts :: !guard
  done;
  print_string
    (Report.series ~x_label:"eliminated test (cumulative)"
       ~x:(List.rev !labels)
       [
         ("yield loss %", List.rev !loss);
         ("defect escape %", List.rev !escape);
         ("in guard band %", List.rev !guard);
       ]);
  Printf.printf
    "(paper: ~5 of 11 tests dropped at 0.6%% escape / 0.9%% loss, stable guard band)\n"

(* ------------------------------------------------------------------ *)
(* Greedy compaction (the Fig. 2 loop) on the op-amp                   *)
(* ------------------------------------------------------------------ *)

let greedy_opamp () =
  section "Greedy compaction (Fig. 2 procedure) on the op-amp";
  let train, test = Lazy.force opamp_data in
  let specs = Device_data.specs train in
  let result =
    Compaction.greedy
      ~order:(Order.Given Experiment.opamp_examination_order)
      Experiment.opamp_config ~train ~test
  in
  let rows =
    List.map
      (fun s ->
        [
          spec_name specs s.Compaction.spec_index;
          Printf.sprintf "%.2f%%" (100.0 *. s.Compaction.error);
          (if s.Compaction.accepted then "eliminated" else "kept");
        ])
      result.Compaction.steps
  in
  print_string
    (Report.table ~header:[ "candidate test"; "prediction error e_p"; "decision" ] rows);
  let counts = Compaction.evaluate_flow result.Compaction.flow test in
  Printf.printf
    "dropped %d of %d tests; final flow: escape %s, loss %s, guard %s\n"
    (Array.length result.Compaction.flow.Compaction.dropped)
    (Array.length specs)
    (Report.pct (Metrics.escape_pct counts))
    (Report.pct (Metrics.loss_pct counts))
    (Report.pct (Metrics.guard_pct counts))

(* ------------------------------------------------------------------ *)
(* Figure 6: accuracy vs number of training instances                  *)
(* ------------------------------------------------------------------ *)

let figure6 () =
  section
    "Figure 6: error vs training-set size. The paper eliminates the 3-dB \
     bandwidth test; in our population that test is subsumed by the kept \
     specs at any training size, so we eliminate slew rate + quiescent \
     current — the hard-to-predict pair where training data matters";
  let train, test = Lazy.force opamp_data in
  let config = Experiment.opamp_config in
  let dropped = [| 3; 7 |] in
  let sizes =
    if full_scale then [ 50; 100; 250; 500; 1000; 2000; 3500; 5000 ]
    else [ 50; 100; 200; 400; 800; opamp_train_n ]
  in
  let rows =
    List.map
      (fun n ->
        let subset =
          Device_data.make
            ~specs:(Device_data.specs train)
            ~values:(Array.sub (Device_data.values train) 0 n)
        in
        let counts, _ = Compaction.eliminate config ~train:subset ~test ~dropped in
        (n, counts))
      sizes
  in
  print_string
    (Report.series ~x_label:"training instances"
       ~x:(List.map (fun (n, _) -> string_of_int n) rows)
       [
         ("yield loss %", List.map (fun (_, c) -> Metrics.loss_pct c) rows);
         ("defect escape %", List.map (fun (_, c) -> Metrics.escape_pct c) rows);
         ("in guard band %", List.map (fun (_, c) -> Metrics.guard_pct c) rows);
       ]);
  Printf.printf "(paper: loss and escape shrink as training data grows)\n"

(* ------------------------------------------------------------------ *)
(* Table 2: MEMS specifications and yields                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: MEMS accelerometer specifications and yields";
  let train, test = Lazy.force mems_data in
  let rows =
    Array.to_list
      (Array.map
         (fun s ->
           [
             s.Spec.name;
             s.Spec.unit_label;
             Report.g3 s.Spec.nominal;
             Printf.sprintf "%s..%s" (Report.g3 s.Spec.range.Spec.lower)
               (Report.g3 s.Spec.range.Spec.upper);
           ])
         Experiment.mems_room_specs)
  in
  print_string
    (Report.table ~header:[ "specification"; "unit"; "nominal"; "range" ] rows);
  Printf.printf
    "tested at -40 degC / 14.85 degC / 80 degC; yield: train %.1f%% / test %.1f%%   (paper: 77.4%% / 79.3%%)\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test)

(* ------------------------------------------------------------------ *)
(* Table 3: eliminating the temperature tests                          *)
(* ------------------------------------------------------------------ *)

let table3_counts =
  lazy
    (let train, test = Lazy.force mems_data in
     let config = Experiment.mems_config in
     let both =
       Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
     in
     List.map
       (fun (name, dropped) ->
         let counts, flow = Compaction.eliminate config ~train ~test ~dropped in
         (name, counts, flow))
       [
         ("-40", Experiment.mems_cold_indices);
         ("80", Experiment.mems_hot_indices);
         ("Both", both);
       ])

let table3 () =
  section "Table 3: eliminating the hot/cold temperature tests (MEMS)";
  let rows =
    List.map
      (fun (name, counts, _) ->
        [
          name;
          Report.pct (Metrics.escape_pct counts);
          Report.pct (Metrics.loss_pct counts);
          Report.pct (Metrics.guard_pct counts);
        ])
      (Lazy.force table3_counts)
  in
  print_string
    (Report.table
       ~header:
         [ "eliminated test"; "defect escape"; "yield loss"; "in guard band" ]
       rows);
  Printf.printf
    "(paper: -40: 0.1/0.0/2.6  80: 0.1/0.1/5.8  Both: 0.2/0.1/8.4)\n"

(* ------------------------------------------------------------------ *)
(* Sec. 5.2: test-cost arithmetic                                      *)
(* ------------------------------------------------------------------ *)

let cost_analysis () =
  section "Sec 5.2: tri-temperature test-cost saving (MEMS)";
  let _, test = Lazy.force mems_data in
  let room_subset = Array.init 5 (fun k -> k) in
  let room_pass =
    let count = ref 0 in
    for i = 0 to Device_data.n_instances test - 1 do
      if Device_data.passes_subset test ~instance:i ~subset:room_subset then
        incr count
    done;
    !count
  in
  (match Lazy.force table3_counts with
   | [ _; _; (_, counts, _) ] ->
     let n = counts.Metrics.total in
     let guard = counts.Metrics.guards in
     let r = Cost.tri_temperature ~n ~room_pass ~guard () in
     Printf.printf
       "%d devices, %d pass room tests, %d in guard band\n\
        full tri-temperature flow: $%.0f\n\
        compacted flow (room + guard retest): $%.0f\n\
        saving: %.1f%%   (paper: $2548 -> $1168, ~54%%)\n"
       n room_pass guard r.Cost.full r.Cost.compacted r.Cost.saving_pct
   | _ -> assert false);
  (* also verify the paper's own arithmetic *)
  let paper = Cost.tri_temperature ~n:1000 ~room_pass:774 ~guard:84 () in
  Printf.printf
    "check with the paper's own counts (774 room pass, 84 guard): $%.0f -> $%.0f (%.1f%%)\n"
    paper.Cost.full paper.Cost.compacted paper.Cost.saving_pct

(* ------------------------------------------------------------------ *)
(* Figure 3: derived acceptance region                                 *)
(* ------------------------------------------------------------------ *)

let figure3 () =
  section
    "Figure 3: acceptance region over the two kept specs after dropping \
     a dependent third (synthetic)";
  (* s2 = s0 + s1; after dropping s2's test the acceptance region over
     (s0, s1) is the rectangle clipped by the 1.3 <= s0+s1 <= 2.5 band *)
  let specs =
    [|
      Spec.make ~name:"s0" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
      Spec.make ~name:"s1" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
      Spec.make ~name:"s2" ~unit_label:"-" ~nominal:2.0 ~lower:1.3 ~upper:2.5;
    |]
  in
  let rng = Rng.create 3 in
  let values =
    Array.init 1500 (fun _ ->
        let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.3 in
        let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.3 in
        [| a; b; a +. b |])
  in
  let train = Device_data.make ~specs ~values in
  let config =
    { Compaction.default_config with Compaction.guard_fraction = 0.02 }
  in
  let flow = Compaction.make_flow config train ~dropped:[| 2 |] in
  (* sample the verdict over the (s0, s1) plane; '#' = accepted *)
  let samples = ref [] in
  for i = 0 to 59 do
    for j = 0 to 59 do
      let a = 0.3 +. (1.5 *. float_of_int i /. 59.0) in
      let b = 0.3 +. (1.5 *. float_of_int j /. 59.0) in
      let verdict = Compaction.flow_verdict flow [| a; b; 0.0 |] in
      if Guard_band.equal_verdict verdict Guard_band.Good then
        samples := (a, b) :: !samples
    done
  done;
  print_string (Report.ascii_plot ~width:60 ~height:24 (Array.of_list !samples));
  Printf.printf
    "(accepted (s0, s1) points: the rectangle corners where s0+s1 would \
     violate s2's range are carved away, as in Fig. 3)\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_ordering () =
  section "Ablation: test-examination ordering strategies (op-amp greedy)";
  let train, test = Lazy.force opamp_data in
  let strategies =
    [
      ("functional analysis (paper)", Order.Given Experiment.opamp_examination_order);
      ("fewest failures first", Order.By_failure_count);
      ("most correlated first", Order.By_correlation);
      ("correlation clustering", Order.By_cluster 0.8);
    ]
  in
  let rows =
    List.map
      (fun (name, order) ->
        let result =
          Compaction.greedy ~order Experiment.opamp_config ~train ~test
        in
        let counts = Compaction.evaluate_flow result.Compaction.flow test in
        [
          name;
          string_of_int (Array.length result.Compaction.flow.Compaction.dropped);
          Report.pct (Metrics.escape_pct counts);
          Report.pct (Metrics.loss_pct counts);
          Report.pct (Metrics.guard_pct counts);
        ])
      strategies
  in
  print_string
    (Report.table
       ~header:[ "ordering"; "tests dropped"; "escape"; "loss"; "guard" ]
       rows)

let ablation_learner () =
  section "Ablation: epsilon-SVR (paper) vs C-SVC classification";
  let train, test = Lazy.force opamp_data in
  let learners =
    [
      ("epsilon-SVR", Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = None });
      ("C-SVC", Compaction.C_svc { c = 10.0; gamma = None });
    ]
  in
  let rows =
    List.map
      (fun (name, learner) ->
        let config = { Experiment.opamp_config with Compaction.learner } in
        let result =
          Compaction.greedy
            ~order:(Order.Given Experiment.opamp_examination_order)
            config ~train ~test
        in
        let counts = Compaction.evaluate_flow result.Compaction.flow test in
        [
          name;
          string_of_int (Array.length result.Compaction.flow.Compaction.dropped);
          Report.pct (Metrics.escape_pct counts);
          Report.pct (Metrics.loss_pct counts);
          Report.pct (Metrics.guard_pct counts);
        ])
      learners
  in
  print_string
    (Report.table
       ~header:[ "learner"; "tests dropped"; "escape"; "loss"; "guard" ]
       rows)

(* The learner zoo under the differential promotion gate's conditions:
   every learner × examination-order combination runs the same greedy
   compaction at equal tolerance, so escape / yield loss / train
   wall-time are directly comparable across families. *)
let learner_zoo () =
  section "Learner zoo: svr/mlp x greedy(functional)/mi at equal tolerance";
  let train, test = Lazy.force opamp_data in
  let learners =
    [ ("svr", Stc.Learner.default_svr); ("mlp", Stc.Learner.default_mlp) ]
  in
  let orders =
    [
      ("greedy", Order.Given Experiment.opamp_examination_order);
      ("mi", Order.By_mutual_information);
    ]
  in
  let g name v = Obs.Gauge.set (Obs.gauge name) v in
  let rows =
    List.concat_map
      (fun (lname, learner) ->
        List.map
          (fun (oname, order) ->
            let config = { Experiment.opamp_config with Compaction.learner } in
            let t0 = Unix.gettimeofday () in
            let result = Compaction.greedy ~order config ~train ~test in
            let wall = Unix.gettimeofday () -. t0 in
            let counts = Compaction.evaluate_flow result.Compaction.flow test in
            let dropped =
              Array.length result.Compaction.flow.Compaction.dropped
            in
            let tag k = Printf.sprintf "stc_bench_zoo_%s_%s_%s" lname oname k in
            g (tag "dropped") (float_of_int dropped);
            g (tag "escape_pct") (Metrics.escape_pct counts);
            g (tag "loss_pct") (Metrics.loss_pct counts);
            g (tag "train_s") wall;
            [
              Printf.sprintf "%s / %s" lname oname;
              string_of_int dropped;
              Report.pct (Metrics.escape_pct counts);
              Report.pct (Metrics.loss_pct counts);
              Printf.sprintf "%.2f s" wall;
            ])
          orders)
      learners
  in
  print_string
    (Report.table
       ~header:[ "learner / order"; "tests dropped"; "escape"; "loss"; "train" ]
       rows)

let ablation_grid () =
  section "Ablation: grid-based training-data compaction (Sec 4.3)";
  let train, test = Lazy.force mems_data in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  let variants =
    [
      ("no compaction", None);
      ("grid res 6", Some { Grid_compact.default_config with Grid_compact.resolution = 6 });
      ("grid res 10", Some { Grid_compact.default_config with Grid_compact.resolution = 10 });
    ]
  in
  let rows =
    List.map
      (fun (name, grid) ->
        let config = { Experiment.mems_config with Compaction.grid } in
        let t0 = Unix.gettimeofday () in
        let counts, _ = Compaction.eliminate config ~train ~test ~dropped:both in
        let dt = Unix.gettimeofday () -. t0 in
        let training_rows =
          match grid with
          | None -> Device_data.n_instances train
          | Some g ->
            let features =
              Device_data.features train ~keep:(Array.init 5 (fun k -> k))
            in
            let labels = Device_data.pass_labels train ~subset:both in
            let r = Grid_compact.compact ~config:g ~features ~labels () in
            Array.length r.Grid_compact.features
        in
        [
          name;
          string_of_int training_rows;
          Report.pct (Metrics.escape_pct counts);
          Report.pct (Metrics.loss_pct counts);
          Report.pct (Metrics.guard_pct counts);
          Printf.sprintf "%.2f s" dt;
        ])
      variants
  in
  print_string
    (Report.table
       ~header:
         [ "training data"; "rows"; "escape"; "loss"; "guard"; "train time" ]
       rows)

let ablation_guard_width () =
  section "Ablation: guard-band width vs error and retest volume (MEMS)";
  let train, test = Lazy.force mems_data in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  let rows =
    List.map
      (fun gf ->
        let config = { Experiment.mems_config with Compaction.guard_fraction = gf } in
        let counts, _ = Compaction.eliminate config ~train ~test ~dropped:both in
        [
          Printf.sprintf "+/-%.1f%%" (100.0 *. gf);
          Report.pct (Metrics.escape_pct counts);
          Report.pct (Metrics.loss_pct counts);
          Report.pct (Metrics.guard_pct counts);
        ])
      [ 0.0; 0.01; 0.025; 0.05; 0.1 ]
  in
  print_string
    (Report.table ~header:[ "guard width"; "escape"; "loss"; "guard" ] rows);
  Printf.printf
    "(the paper's trade-off: wider guard bands trade retest volume for error)\n"

let ablation_regression () =
  section
    "Ablation: classification (paper, Sec 4.1) vs regression-then-threshold \
     baseline";
  let train, test = Lazy.force opamp_data in
  let dropped = [| 0; 1; 2; 5; 6; 8; 9; 10 |] in
  let kept = [| 3; 4; 7 |] in
  let t0 = Unix.gettimeofday () in
  let _, nominal =
    Compaction.train_predictor Experiment.opamp_config train ~dropped
  in
  let classification_time = Unix.gettimeofday () -. t0 in
  let classification_error =
    Compaction.prediction_error nominal test ~kept ~dropped
  in
  let t0 = Unix.gettimeofday () in
  let baseline = Stc.Regression_baseline.train train ~dropped in
  let regression_time = Unix.gettimeofday () -. t0 in
  let regression_error = Stc.Regression_baseline.prediction_error baseline test in
  print_string
    (Report.table
       ~header:[ "approach"; "models"; "e_p on test"; "train time" ]
       [
         [
           "epsilon-SVM classification"; "3 (nominal+guard pair)";
           Report.pct (100.0 *. classification_error);
           Printf.sprintf "%.2f s" classification_time;
         ];
         [
           "per-spec value regression";
           string_of_int (Array.length dropped);
           Report.pct (100.0 *. regression_error);
           Printf.sprintf "%.2f s" regression_time;
         ];
       ]);
  Printf.printf
    "(Sec 4.1: regression must model the whole response surface; \
     classification only the class boundary)\n"

let ablation_adaptive_guard () =
  section
    "Extension: distribution-based guard band (paper future work, Sec 6) \
     vs fixed range perturbation";
  let train, test = Lazy.force mems_data in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  let fixed_counts, _ =
    Compaction.eliminate Experiment.mems_config ~train ~test ~dropped:both
  in
  let rows_fixed =
    [
      Printf.sprintf "fixed +/-%g%% range perturbation"
        (100.0 *. Experiment.mems_config.Compaction.guard_fraction);
      Report.pct (Metrics.escape_pct fixed_counts);
      Report.pct (Metrics.loss_pct fixed_counts);
      Report.pct (Metrics.guard_pct fixed_counts);
    ]
  in
  let rows_adaptive =
    List.map
      (fun target ->
        let config =
          { Stc.Adaptive_guard.default_config with
            Stc.Adaptive_guard.target_guard = target }
        in
        let adaptive = Stc.Adaptive_guard.train ~config train ~dropped:both in
        let counts =
          Compaction.evaluate_flow (Stc.Adaptive_guard.flow adaptive) test
        in
        [
          Printf.sprintf "adaptive margin, target %.0f%% (got m=%.3f)"
            (100.0 *. target)
            (Stc.Adaptive_guard.margin adaptive);
          Report.pct (Metrics.escape_pct counts);
          Report.pct (Metrics.loss_pct counts);
          Report.pct (Metrics.guard_pct counts);
        ])
      [ 0.02; 0.05; 0.10 ]
  in
  print_string
    (Report.table ~header:[ "guard policy"; "escape"; "loss"; "guard" ]
       (rows_fixed :: rows_adaptive))

let ablation_process_model () =
  section
    "Extension: correlated process + injected defects (paper future work, \
     Sec 6)";
  let device = Experiment.mems_device () in
  let specs = Experiment.mems_specs in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  let config = Experiment.mems_config in
  (* correlated (die-level) variation: same marginal spread, shared factor *)
  let rows_corr =
    List.map
      (fun rho ->
        let data =
          Stc_process.Process_model.correlated_device (Rng.create 77) device
            ~die_correlation:rho ~n:2000
        in
        let train_mc, test_mc = Stc_process.Montecarlo.split data ~at:1000 in
        let train = Device_data.of_montecarlo ~specs train_mc in
        let test = Device_data.of_montecarlo ~specs test_mc in
        let counts, _ = Compaction.eliminate config ~train ~test ~dropped:both in
        [
          Printf.sprintf "correlated rho=%.1f" rho;
          Printf.sprintf "%.1f%%" (100.0 *. Device_data.yield_fraction test);
          Report.pct (Metrics.escape_pct counts);
          Report.pct (Metrics.loss_pct counts);
          Report.pct (Metrics.guard_pct counts);
        ])
      [ 0.0; 0.5; 0.9 ]
  in
  (* defect injection: train on the clean population, test on a defective
     one — do structural faults escape the compacted flow? *)
  let train, _ = Lazy.force mems_data in
  let defective_mc =
    Stc_process.Process_model.defective_draws (Rng.create 78) device
      { Stc_process.Process_model.rate = 0.05; severity = 3.0 }
      ~n:1000
  in
  let defective = Device_data.of_montecarlo ~specs defective_mc in
  let counts, _ = Compaction.eliminate config ~train ~test:defective ~dropped:both in
  let row_defect =
    [
      "5% injected gross defects";
      Printf.sprintf "%.1f%%" (100.0 *. Device_data.yield_fraction defective);
      Report.pct (Metrics.escape_pct counts);
      Report.pct (Metrics.loss_pct counts);
      Report.pct (Metrics.guard_pct counts);
    ]
  in
  print_string
    (Report.table
       ~header:[ "population"; "test yield"; "escape"; "loss"; "guard" ]
       (rows_corr @ [ row_defect ]))

(* ------------------------------------------------------------------ *)
(* Boundary-biased enrichment at equal simulation budget               *)
(* ------------------------------------------------------------------ *)

let boundary_enrichment () =
  section
    "Boundary-biased enrichment: acceptance-boundary density and \
     guard-band quality at equal simulation budget (op-amp)";
  let module Enrich = Stc_process.Enrich in
  let train_u, _ = Lazy.force opamp_data in
  let specs = Device_data.specs train_u in
  let limits = Experiment.spec_limits specs in
  let pilot = Stdlib.max 10 (opamp_train_n / 4) in
  let t0 = Unix.gettimeofday () in
  let train_e, test, stats =
    Experiment.generate_opamp_enriched ~seed:2005 ~pilot
      ~n_train:opamp_train_n ~n_test:opamp_test_n ()
  in
  let t_enrich = Unix.gettimeofday () -. t0 in
  Printf.printf
    "[enriched %d op-amp instances (pilot %d, %d proposals, acceptance \
     %.2f) in %.1f s]\n"
    (stats.Enrich.pilot + stats.Enrich.enriched)
    stats.Enrich.pilot stats.Enrich.proposals stats.Enrich.acceptance_rate
    t_enrich;
  (* boundary density: fraction of instances whose worst normalised
     margin sits within [width] pilot-sigmas of a spec limit; sigmas
     come from the uniform population so both arms use one yardstick *)
  let sigmas =
    Array.init (Array.length specs) (fun j ->
        Stc_numerics.Stats.stddev (Device_data.spec_column train_u j))
  in
  let width = 0.5 in
  let density data =
    let values = Device_data.values data in
    let hits =
      Array.fold_left
        (fun acc row ->
          let m = Enrich.margin_of_specs ~limits ~sigmas row in
          if Float.abs m <= width then acc + 1 else acc)
        0 values
    in
    float_of_int hits /. float_of_int (Stdlib.max 1 (Array.length values))
  in
  let d_uniform = density train_u and d_enriched = density train_e in
  (* same elimination on each training set, judged on one shared
     uniform test population: does boundary-focused data buy a better
     guard band at the same number of simulations? *)
  let dropped = [| 3; 7 |] in
  let config = Experiment.opamp_config in
  let counts_u, _ = Compaction.eliminate config ~train:train_u ~test ~dropped in
  let counts_e, _ = Compaction.eliminate config ~train:train_e ~test ~dropped in
  let yield_u = 100.0 *. Device_data.yield_fraction train_u in
  let wyield_e = 100.0 *. Device_data.weighted_yield_fraction train_e in
  let raw_yield_e = 100.0 *. Device_data.yield_fraction train_e in
  let row name d yield counts =
    [
      name;
      Printf.sprintf "%.1f%%" (100.0 *. d);
      Printf.sprintf "%.1f%%" yield;
      Report.pct (Metrics.escape_pct counts);
      Report.pct (Metrics.loss_pct counts);
      Report.pct (Metrics.guard_pct counts);
    ]
  in
  print_string
    (Report.table
       ~header:
         [
           "training population"; "boundary density"; "est. yield";
           "escape"; "loss"; "guard";
         ]
       [
         row "uniform" d_uniform yield_u counts_u;
         row "boundary-enriched (weighted)" d_enriched wyield_e counts_e;
       ]);
  Printf.printf
    "enriched boundary density %.2fx uniform (width %.1f sigma); raw \
     enriched yield %.1f%% vs importance-weighted %.1f%% (uniform %.1f%%)\n"
    (d_enriched /. Stdlib.max 1e-9 d_uniform)
    width raw_yield_e wyield_e yield_u;
  (* headline numbers for BENCH_process.json *)
  let g name v = Obs.Gauge.set (Obs.gauge name) v in
  g "stc_bench_enrich_density_uniform" d_uniform;
  g "stc_bench_enrich_density_enriched" d_enriched;
  g "stc_bench_enrich_density_ratio"
    (d_enriched /. Stdlib.max 1e-9 d_uniform);
  g "stc_bench_enrich_density_improved"
    (if d_enriched > d_uniform then 1.0 else 0.0);
  g "stc_bench_enrich_yield_uniform_pct" yield_u;
  g "stc_bench_enrich_yield_weighted_pct" wyield_e;
  g "stc_bench_enrich_yield_abs_err_pct" (Float.abs (wyield_e -. yield_u));
  g "stc_bench_enrich_acceptance_rate" stats.Enrich.acceptance_rate;
  g "stc_bench_enrich_boundary_hit_rate" stats.Enrich.boundary_hit_rate;
  g "stc_bench_enrich_generate_s" t_enrich;
  g "stc_bench_enrich_escape_pct_uniform" (Metrics.escape_pct counts_u);
  g "stc_bench_enrich_escape_pct_enriched" (Metrics.escape_pct counts_e);
  g "stc_bench_enrich_loss_pct_uniform" (Metrics.loss_pct counts_u);
  g "stc_bench_enrich_loss_pct_enriched" (Metrics.loss_pct counts_e);
  g "stc_bench_enrich_guard_pct_uniform" (Metrics.guard_pct counts_u);
  g "stc_bench_enrich_guard_pct_enriched" (Metrics.guard_pct counts_e)

(* ------------------------------------------------------------------ *)
(* SMO hot path: warm starts + flat kernels + parallel CV              *)
(* ------------------------------------------------------------------ *)

let svm_hotpath () =
  section
    "SVM hot path: warm-started, flat-storage SMO (cold vs warm) and \
     parallel cross-validation";
  let train, test = Lazy.force opamp_data in
  let order = Order.Given Experiment.opamp_examination_order in
  let c_iter = Obs.counter "stc_smo_iterations_total" in
  let c_kev = Obs.counter "stc_svm_kernel_evals_total" in
  let c_warm = Obs.counter "stc_smo_warm_starts_total" in
  let h_train = Obs.histogram "stc_compaction_train_s" in
  (* the same reduced-scale greedy compaction as [greedy_opamp], run
     cold then warm; SMO train time is the per-candidate training
     histogram, so validation and final-flow cost is excluded *)
  let run warm_start =
    let config = { Experiment.opamp_config with Compaction.warm_start } in
    let t0 = Obs.Histogram.sum h_train in
    let i0 = Obs.Counter.get c_iter and k0 = Obs.Counter.get c_kev in
    let w0 = Unix.gettimeofday () in
    let r = Compaction.greedy ~order config ~train ~test in
    let wall = Unix.gettimeofday () -. w0 in
    ( r,
      wall,
      Obs.Histogram.sum h_train -. t0,
      Obs.Counter.get c_iter - i0,
      Obs.Counter.get c_kev - k0 )
  in
  let cold_r, cold_wall, cold_train, cold_iter, cold_kev = run false in
  let warm0 = Obs.Counter.get c_warm in
  let warm_r, warm_wall, warm_train, warm_iter, warm_kev = run true in
  let warm_starts = Obs.Counter.get c_warm - warm0 in
  let flows_identical =
    Stc_floor.Flow_io.to_string cold_r.Compaction.flow
    = Stc_floor.Flow_io.to_string warm_r.Compaction.flow
  in
  let rate evals s = float_of_int evals /. Stdlib.max 1e-9 s in
  print_string
    (Report.table
       ~header:
         [ "greedy run"; "SMO train"; "wall"; "iterations"; "kernel evals/s" ]
       [
         [
           "cold (warm_start=false)";
           Printf.sprintf "%.2f s" cold_train;
           Printf.sprintf "%.2f s" cold_wall;
           string_of_int cold_iter;
           Printf.sprintf "%.2fM" (rate cold_kev cold_train /. 1e6);
         ];
         [
           "warm (warm_start=true)";
           Printf.sprintf "%.2f s" warm_train;
           Printf.sprintf "%.2f s" warm_wall;
           string_of_int warm_iter;
           Printf.sprintf "%.2fM" (rate warm_kev warm_train /. 1e6);
         ];
       ]);
  Printf.printf
    "SMO train %.2fx faster warm; %d iterations saved across %d warm \
     starts; flows bit-identical: %b\n"
    (cold_train /. Stdlib.max 1e-9 warm_train)
    (cold_iter - warm_iter) warm_starts flows_identical;
  (* parallel grid search on a pool, against the serial path *)
  let dropped = [| 3; 7 |] in
  let kept = [| 0; 1; 2; 4; 5; 6; 8; 9; 10 |] in
  let n_cv = Stdlib.min 360 (Device_data.n_instances train) in
  let x = Array.sub (Device_data.features train ~keep:kept) 0 n_cv in
  let y = Array.sub (Device_data.pass_labels train ~subset:dropped) 0 n_cv in
  let cs = [| 1.0; 10.0 |] and gammas = [| 0.5; 2.0 |] in
  let grid rng_seed pool =
    let t0 = Unix.gettimeofday () in
    let r =
      Stc_svm.Cross_val.grid_search_svc ?pool (Rng.create rng_seed) ~x ~y
        ~folds:3 ~cs ~gammas
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let serial, t_serial = grid 17 None in
  let domains = Stdlib.min 4 (Domain.recommended_domain_count ()) in
  let parallel, t_parallel =
    Stc_process.Pool.with_pool ~domains (fun pool -> grid 17 (Some pool))
  in
  let cv_identical =
    serial.Stc_svm.Cross_val.c = parallel.Stc_svm.Cross_val.c
    && serial.Stc_svm.Cross_val.gamma = parallel.Stc_svm.Cross_val.gamma
    && Int64.equal
         (Int64.bits_of_float serial.Stc_svm.Cross_val.accuracy)
         (Int64.bits_of_float parallel.Stc_svm.Cross_val.accuracy)
  in
  Printf.printf
    "grid search (%d points x 3 folds, %d rows): serial %.3f s, %d domains \
     %.3f s (%.2fx); winners bit-identical: %b\n"
    (Array.length cs * Array.length gammas)
    n_cv t_serial domains t_parallel
    (t_serial /. Stdlib.max 1e-9 t_parallel)
    cv_identical;
  (* headline numbers for BENCH_svm.json *)
  let g name v = Obs.Gauge.set (Obs.gauge name) v in
  g "stc_bench_smo_train_cold_s" cold_train;
  g "stc_bench_smo_train_warm_s" warm_train;
  g "stc_bench_smo_train_speedup"
    (cold_train /. Stdlib.max 1e-9 warm_train);
  g "stc_bench_smo_iterations_saved" (float_of_int (cold_iter - warm_iter));
  g "stc_bench_kernel_evals_per_s_cold" (rate cold_kev cold_train);
  g "stc_bench_kernel_evals_per_s_warm" (rate warm_kev warm_train);
  g "stc_bench_flows_bit_identical" (if flows_identical then 1.0 else 0.0);
  g "stc_bench_cv_serial_s" t_serial;
  g "stc_bench_cv_parallel_s" t_parallel;
  g "stc_bench_cv_bit_identical" (if cv_identical then 1.0 else 0.0)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  section "Bechamel micro-benchmarks (ns per run)";
  let open Bechamel in
  let train, _ = Lazy.force mems_data in
  let room = Array.init 5 (fun k -> k) in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  let features = Device_data.features train ~keep:room in
  let labels = Device_data.pass_labels train ~subset:both in
  let small_x = Array.sub features 0 200 in
  let small_y = Array.sub labels 0 200 in
  let svr_model =
    Stc_svm.Svr.train ~c:10.0 ~epsilon:0.1 ~x:small_x
      ~y:(Array.map float_of_int small_y)
      ()
  in
  let flow = Compaction.make_flow Experiment.mems_config train ~dropped:both in
  let row0 = Device_data.instance_row train 0 in
  let mems_geometry = Stc_mems.Geometry.nominal in
  let opamp_sys =
    Stc_circuit.Mna.build
      (Stc_circuit.Opamp.netlist Stc_circuit.Opamp.nominal
         Stc_circuit.Opamp.Open_loop_gain)
  in
  let opamp_x0 =
    Stc_circuit.Opamp.initial_guess Stc_circuit.Opamp.nominal opamp_sys
  in
  let tests =
    [
      Test.make ~name:"mems_tri_temperature_simulation"
        (Staged.stage (fun () ->
             ignore (Stc_mems.Measure_mems.tri_temperature mems_geometry)));
      Test.make ~name:"svr_train_200x5"
        (Staged.stage (fun () ->
             ignore
               (Stc_svm.Svr.train ~c:10.0 ~epsilon:0.1 ~x:small_x
                  ~y:(Array.map float_of_int small_y)
                  ())));
      Test.make ~name:"svr_predict"
        (Staged.stage (fun () -> ignore (Stc_svm.Svr.predict svr_model features.(0))));
      Test.make ~name:"flow_verdict"
        (Staged.stage (fun () -> ignore (Compaction.flow_verdict flow row0)));
      Test.make ~name:"grid_compact_1000x5"
        (Staged.stage (fun () -> ignore (Grid_compact.compact ~features ~labels ())));
      Test.make ~name:"opamp_dc_operating_point"
        (Staged.stage (fun () ->
             ignore (Stc_circuit.Dc.solve ~x0:opamp_x0 opamp_sys)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-38s %14.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-38s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Floor serving: save/load round trip + throughput vs domain count    *)
(* ------------------------------------------------------------------ *)

let floor_serving () =
  section "Floor serving: persisted op-amp flow, throughput vs domains";
  let train, test = Lazy.force opamp_data in
  let dropped = [| 0; 1; 2; 5; 6; 8; 9; 10 |] in
  let flow = Compaction.make_flow Experiment.opamp_config train ~dropped in
  (* serve what production would serve: the flow after a disk round trip *)
  let flow =
    match Stc_floor.Flow_io.to_string flow with
    | Error e -> failwith e
    | Ok text ->
      Printf.printf "persisted flow: %d bytes, byte-stable %b\n"
        (String.length text)
        (match Stc_floor.Flow_io.of_string text with
         | Ok reloaded -> Stc_floor.Flow_io.to_string reloaded = Ok text
         | Error e -> failwith e);
      (match Stc_floor.Flow_io.of_string text with
       | Ok reloaded -> reloaded
       | Error e -> failwith e)
  in
  let base_rows = Device_data.values test in
  let n_base = Array.length base_rows in
  let replicas = if full_scale then 200 else 100 in
  let stream =
    Array.init (n_base * replicas) (fun i -> base_rows.(i mod n_base))
  in
  Printf.printf "(%d hardware threads available to this process)\n"
    (Domain.recommended_domain_count ());
  let serve domains =
    Stc_floor.Floor.with_engine
      ~config:{ Stc_floor.Floor.batch_size = 4096; domains }
      flow
      (fun engine ->
        let outcomes = Stc_floor.Floor.process engine stream in
        ( Array.map (fun o -> o.Stc_floor.Floor.verdict) outcomes,
          Stc_floor.Floor.stats engine ))
  in
  let reference, base_stats = serve 1 in
  let base_rate =
    float_of_int base_stats.Stc_floor.Floor.devices
    /. base_stats.Stc_floor.Floor.elapsed_s
  in
  let rows =
    List.map
      (fun domains ->
        let verdicts, stats =
          if domains = 1 then (reference, base_stats) else serve domains
        in
        let identical =
          Array.for_all2 Guard_band.equal_verdict verdicts reference
        in
        let rate =
          float_of_int stats.Stc_floor.Floor.devices
          /. stats.Stc_floor.Floor.elapsed_s
        in
        [
          string_of_int domains;
          string_of_int stats.Stc_floor.Floor.devices;
          Printf.sprintf "%.3f s" stats.Stc_floor.Floor.elapsed_s;
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.2fx" (rate /. base_rate);
          (if identical then "yes" else "NO");
        ])
      [ 1; 2; 4 ]
  in
  print_string
    (Report.table
       ~header:[ "domains"; "devices"; "elapsed"; "devices/s"; "speedup";
                 "verdicts = 1-domain" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Resilience: what do the safety nets cost when nothing goes wrong?   *)
(* ------------------------------------------------------------------ *)

let resilience () =
  section
    "Resilience: journaling, supervision and deadline overhead (target <5%)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let overhead base t =
    if base <= 0.0 then "-"
    else Printf.sprintf "%+.1f%%" (100.0 *. ((t /. base) -. 1.0))
  in
  let train, test = Lazy.force opamp_data in
  let config = Experiment.opamp_config in
  let order = Order.Given Experiment.opamp_examination_order in
  (* 1. write-ahead journaling on the greedy loop: every decided step is
     serialised and flushed before the loop advances *)
  let plain, t_plain =
    time (fun () -> Compaction.greedy ~order config ~train ~test)
  in
  let path = Filename.temp_file "stc_bench" ".stcj" in
  let ord = Order.compute order train in
  let fingerprint = Compaction.journal_fingerprint config ~train ~test ~order:ord in
  let journalled, t_journal =
    time (fun () ->
        match Journal.create ~path ~fingerprint with
        | Error e -> failwith e
        | Ok w ->
          Fun.protect
            ~finally:(fun () -> Journal.close w)
            (fun () -> Compaction.greedy_resumable ~journal:w ~order config ~train ~test))
  in
  let identical =
    Stc_floor.Flow_io.to_string plain.Compaction.flow
    = Stc_floor.Flow_io.to_string journalled.Compaction.flow
  in
  (* 2. what the journal buys: resuming replays the decisions instead of
     retraining the SVMs *)
  let replay =
    match Journal.load ~path with Ok r -> r.Journal.entries | Error e -> failwith e
  in
  Sys.remove path;
  let resumed, t_resume =
    time (fun () -> Compaction.greedy_resumable ~replay ~order config ~train ~test)
  in
  let resume_identical =
    Stc_floor.Flow_io.to_string plain.Compaction.flow
    = Stc_floor.Flow_io.to_string resumed.Compaction.flow
  in
  (* 3. pool supervision: deadline polling + heartbeats vs the plain
     participating dispatch. Tasks carry real work (~a verdict's worth
     of arithmetic) so the measurement is dispatch overhead, not
     scheduler noise on empty jobs. *)
  let pool_jobs = 50 and pool_n = 512 in
  let sink = ref 0.0 in
  let task i =
    let acc = ref 0.0 in
    for k = 1 to 200 do
      acc := !acc +. sin (float_of_int (i + k))
    done;
    sink := !acc
  in
  let (), t_pool_plain =
    time (fun () ->
        Stc_process.Pool.with_pool ~domains:4 (fun pool ->
            for _ = 1 to pool_jobs do
              Stc_process.Pool.run pool ~n:pool_n task
            done))
  in
  let (), t_pool_deadline =
    time (fun () ->
        Stc_process.Pool.with_pool ~domains:4 (fun pool ->
            for _ = 1 to pool_jobs do
              Stc_process.Pool.run ~deadline_s:60.0 pool ~n:pool_n task
            done))
  in
  (* 4. floor batch deadline: the per-batch clock check on a deadline
     that never fires *)
  let flow =
    Compaction.make_flow config train ~dropped:[| 0; 1; 2; 5; 6; 8; 9; 10 |]
  in
  let base_rows = Device_data.values test in
  let n_base = Array.length base_rows in
  let stream = Array.init (n_base * 50) (fun i -> base_rows.(i mod n_base)) in
  let serve ?batch_deadline_s () =
    Stc_floor.Floor.with_engine
      ~config:{ Stc_floor.Floor.batch_size = 4096; domains = 1 }
      flow
      (fun engine ->
        ignore (Stc_floor.Floor.process ?batch_deadline_s engine stream);
        (Stc_floor.Floor.stats engine).Stc_floor.Floor.elapsed_s)
  in
  let t_floor_plain = serve () in
  let t_floor_deadline = serve ~batch_deadline_s:3600.0 () in
  print_string
    (Report.table
       ~header:[ "stage"; "baseline"; "with safety net"; "overhead" ]
       [
         [
           Printf.sprintf "greedy + journal (%d steps)" (Array.length replay);
           Printf.sprintf "%.2f s" t_plain;
           Printf.sprintf "%.2f s" t_journal;
           overhead t_plain t_journal;
         ];
         [
           Printf.sprintf "pool dispatch x%d (~deadline_s)" pool_jobs;
           Printf.sprintf "%.3f s" t_pool_plain;
           Printf.sprintf "%.3f s" t_pool_deadline;
           overhead t_pool_plain t_pool_deadline;
         ];
         [
           Printf.sprintf "floor serving %d rows (~batch_deadline_s)"
             (Array.length stream);
           Printf.sprintf "%.3f s" t_floor_plain;
           Printf.sprintf "%.3f s" t_floor_deadline;
           overhead t_floor_plain t_floor_deadline;
         ];
       ]);
  Printf.printf
    "journalled flow bit-identical: %b; resume replayed %d steps in %.3f s \
     (%.0fx faster than retraining); resumed flow bit-identical: %b\n"
    identical (Array.length replay) t_resume
    (t_plain /. Stdlib.max 1e-9 t_resume)
    resume_identical

(* ------------------------------------------------------------------ *)
(* QA harness: generator and differential-oracle throughput            *)
(* ------------------------------------------------------------------ *)

let qa_harness () =
  section "QA harness: generator + differential-oracle throughput";
  let flows = if full_scale then 400 else 100 in
  let rows_per_flow = 16 in
  let st = Stc_qa.Gen.state ~seed:2005 in
  let t0 = Unix.gettimeofday () in
  let pairs =
    Array.init flows (fun _ -> Stc_qa.Gen.flow_with_rows ~rows_per_flow st)
  in
  let t_gen = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun (flow, rows) ->
      ignore (Stc_qa.Oracle.reference_outcomes flow rows))
    pairs;
  let t_ref = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let mismatches =
    Array.fold_left
      (fun acc (flow, rows) ->
        match
          Stc_qa.Oracle.floor_matches ~batch_sizes:[ 7 ] ~domain_counts:[ 1 ]
            flow rows
        with
        | Ok () -> acc
        | Error _ -> acc + 1)
      0 pairs
  in
  let t_diff = Unix.gettimeofday () -. t0 in
  let rate n t = if t <= 0.0 then "-" else Printf.sprintf "%.0f" (float_of_int n /. t) in
  let n_rows = flows * rows_per_flow in
  print_string
    (Report.table
       ~header:[ "stage"; "work"; "elapsed"; "rate" ]
       [
         [ "generate flow+rows"; string_of_int flows;
           Printf.sprintf "%.3f s" t_gen; rate flows t_gen ^ " flows/s" ];
         [ "reference binner"; string_of_int n_rows;
           Printf.sprintf "%.3f s" t_ref; rate n_rows t_ref ^ " rows/s" ];
         [ "differential check"; string_of_int flows;
           Printf.sprintf "%.3f s" t_diff; rate flows t_diff ^ " flows/s" ];
       ]);
  Printf.printf "differential mismatches: %d (must be 0)\n" mismatches

(* ------------------------------------------------------------------ *)
(* Network serving: the loopback line protocol vs the direct engine    *)
(* ------------------------------------------------------------------ *)

let net_rows = if full_scale then 20000 else 4000
let net_batch = 512

let net_serving () =
  section "Network serving: loopback line protocol vs direct engine";
  let st = Stc_qa.Gen.state ~seed:2005 in
  let flow, base = Stc_qa.Gen.flow_with_rows ~rows_per_flow:64 st in
  let n_base = Array.length base in
  let rows = Array.init net_rows (fun i -> base.(i mod n_base)) in
  let chunks =
    List.init
      ((net_rows + net_batch - 1) / net_batch)
      (fun k ->
        Array.sub rows (k * net_batch)
          (Stdlib.min net_batch (net_rows - (k * net_batch))))
  in
  let t_direct =
    Stc_floor.Floor.with_engine flow (fun engine ->
        let retest = Stc_floor.Floor.full_test flow in
        let t0 = Unix.gettimeofday () in
        ignore (Stc_floor.Floor.process ~retest engine rows);
        Unix.gettimeofday () -. t0)
  in
  let registry = Stc_net.Registry.create () in
  (match Stc_net.Registry.add registry ~name:"dut" flow with
   | Ok _ -> ()
   | Error e -> failwith e);
  let time_wire send =
    Stc_net.Server.with_server registry (fun server ->
        let c = Stc_net.Client.connect ~port:(Stc_net.Server.port server) () in
        Fun.protect
          ~finally:(fun () -> Stc_net.Client.quit c)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            List.iter
              (fun chunk ->
                match send c chunk with
                | Ok (_ : Stc_floor.Floor.outcome array) -> ()
                | Error e -> failwith e)
              chunks;
            Unix.gettimeofday () -. t0))
  in
  let t_batch = time_wire (fun c -> Stc_net.Client.bin_batch c ~flow:"dut") in
  let t_stream = time_wire (fun c -> Stc_net.Client.stream c ~flow:"dut") in
  Stc_net.Registry.shutdown registry;
  let rate t =
    if t <= 0.0 then "-"
    else Printf.sprintf "%.0f rows/s" (float_of_int net_rows /. t)
  in
  let relative t =
    if t_direct <= 0.0 then "-" else Printf.sprintf "%.2fx" (t /. t_direct)
  in
  print_string
    (Report.table
       ~header:[ "path"; "rows"; "elapsed"; "rate"; "vs direct" ]
       [
         [ "direct Floor.process"; string_of_int net_rows;
           Printf.sprintf "%.3f s" t_direct; rate t_direct; "1.00x" ];
         [ Printf.sprintf "loopback BATCH (%d/req)" net_batch;
           string_of_int net_rows; Printf.sprintf "%.3f s" t_batch;
           rate t_batch; relative t_batch ];
         [ Printf.sprintf "loopback BIN pipeline (%d/flush)" net_batch;
           string_of_int net_rows; Printf.sprintf "%.3f s" t_stream;
           rate t_stream; relative t_stream ];
       ])

(* ------------------------------------------------------------------ *)
(* Overload: a well-behaved client's throughput and tail latency while
   a connection flood hammers the same server, with the admission cap
   doing its job (flood shed at accept) vs. an open door (every flood
   connection admitted and competing for the engine).                  *)
(* ------------------------------------------------------------------ *)

let overload_batches = if full_scale then 48 else 16
let overload_batch = 128
let overload_flood = 16

let net_overload () =
  section "Overload: well-behaved client under a connection flood";
  let st = Stc_qa.Gen.state ~seed:2005 in
  let flow, base = Stc_qa.Gen.flow_with_rows ~rows_per_flow:64 st in
  let n_base = Array.length base in
  let chunk = Array.init overload_batch (fun i -> base.(i mod n_base)) in
  let shed_total () =
    Obs.Counter.get (Obs.counter "stc_net_shed_total")
  in
  let run ~max_connections =
    let registry = Stc_net.Registry.create () in
    (match Stc_net.Registry.add registry ~name:"dut" flow with
     | Ok _ -> ()
     | Error e -> failwith e);
    let config =
      { Stc_net.Server.default_config with Stc_net.Server.max_connections }
    in
    let shed0 = shed_total () in
    let result =
      Stc_net.Server.with_server ~config registry (fun server ->
          let port = Stc_net.Server.port server in
          (* admit the measured client before the flood arrives *)
          let c = Stc_net.Client.connect ~port () in
          Fun.protect
            ~finally:(fun () -> Stc_net.Client.quit c)
            (fun () ->
              let stop = Atomic.make false in
              let flood =
                Array.init overload_flood (fun _ ->
                    Thread.create
                      (fun () ->
                        try
                          let fc = Stc_net.Client.connect ~port () in
                          Fun.protect
                            ~finally:(fun () -> Stc_net.Client.close fc)
                            (fun () ->
                              let rec spin () =
                                if not (Atomic.get stop) then
                                  match
                                    Stc_net.Client.bin_batch fc ~flow:"dut"
                                      chunk
                                  with
                                  | Ok _ -> spin ()
                                  | Error _ -> () (* shed: ERR busy *)
                              in
                              spin ())
                        with _ -> ())
                      ())
              in
              Fun.protect
                ~finally:(fun () ->
                  Atomic.set stop true;
                  Array.iter Thread.join flood)
                (fun () ->
                  (* let the flood actually arrive before measuring *)
                  Thread.delay 0.05;
                  let lat = Array.make overload_batches 0.0 in
                  let t0 = Unix.gettimeofday () in
                  for i = 0 to overload_batches - 1 do
                    let s = Unix.gettimeofday () in
                    (match Stc_net.Client.bin_batch c ~flow:"dut" chunk with
                     | Ok _ -> ()
                     | Error e -> failwith ("measured client: " ^ e));
                    lat.(i) <- Unix.gettimeofday () -. s
                  done;
                  let total = Unix.gettimeofday () -. t0 in
                  Array.sort compare lat;
                  let pct p =
                    let n = Array.length lat in
                    lat.(Stdlib.min (n - 1)
                           (int_of_float (ceil (p *. float_of_int n)) - 1))
                  in
                  (total, pct 0.50, pct 0.99))))
    in
    Stc_net.Registry.shutdown registry;
    let shed = shed_total () - shed0 in
    (result, shed)
  in
  let (t_shed, p50_shed, p99_shed), shed_n = run ~max_connections:4 in
  let (t_open, p50_open, p99_open), open_n = run ~max_connections:256 in
  let rows_done = overload_batches * overload_batch in
  let rate t =
    if t <= 0.0 then "-"
    else Printf.sprintf "%.0f rows/s" (float_of_int rows_done /. t)
  in
  let ms t = Printf.sprintf "%.1f ms" (1000.0 *. t) in
  print_string
    (Report.table
       ~header:[ "admission"; "shed"; "rate"; "p50"; "p99" ]
       [
         [ Printf.sprintf "cap 4 (%d flooders shed)" overload_flood;
           string_of_int shed_n; rate t_shed; ms p50_shed; ms p99_shed ];
         [ Printf.sprintf "cap 256 (%d flooders admitted)" overload_flood;
           string_of_int open_n; rate t_open; ms p50_open; ms p99_open ];
       ]);
  Printf.printf
    "flood amplification without shedding: p99 %.1fx, throughput %.2fx\n"
    (if p99_shed > 0.0 then p99_open /. p99_shed else 0.0)
    (if t_open > 0.0 then t_shed /. t_open else 0.0)

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "Specification Test Compaction reproduction harness (%s scale)\n"
    (if full_scale then "full paper" else "reduced; set STC_FULL=1 for paper");
  let c = bench ~group:"compaction" in
  let s = bench ~group:"svm" in
  let f = bench ~group:"floor" in
  c ~name:"table2_mems_specs" ~params:mems_params table2;
  c ~name:"table3_temperature_elimination" ~params:mems_params table3;
  c ~name:"cost_analysis" ~params:mems_params cost_analysis;
  c ~name:"figure3_acceptance_region" figure3;
  c ~name:"ablation_grid_compaction" ~params:mems_params ablation_grid;
  c ~name:"ablation_guard_width" ~params:mems_params ablation_guard_width;
  c ~name:"ablation_adaptive_guard" ~params:mems_params ablation_adaptive_guard;
  c ~name:"ablation_process_model" ~params:mems_params ablation_process_model;
  c ~name:"table1_opamp_specs" ~params:opamp_params table1;
  c ~name:"figure5_cumulative_elimination" ~params:opamp_params figure5;
  c ~name:"greedy_opamp" ~params:opamp_params greedy_opamp;
  c ~name:"figure6_training_size" ~params:opamp_params figure6;
  c ~name:"ablation_ordering" ~params:opamp_params ablation_ordering;
  s ~name:"svm_hotpath" ~params:opamp_params svm_hotpath;
  s ~name:"ablation_learner" ~params:opamp_params ablation_learner;
  s ~name:"learner_zoo" ~params:opamp_params learner_zoo;
  s ~name:"ablation_regression_baseline" ~params:opamp_params ablation_regression;
  f ~name:"floor_serving" ~params:opamp_params floor_serving;
  c ~name:"resilience_overhead" ~params:opamp_params resilience;
  let pr = bench ~group:"process" in
  pr ~name:"boundary_enrichment"
    ~params:
      (p_int "pilot" (Stdlib.max 10 (opamp_train_n / 4)) :: opamp_params)
    boundary_enrichment;
  f ~name:"qa_harness"
    ~params:[ p_int "flows" (if full_scale then 400 else 100); p_int "rows_per_flow" 16 ]
    qa_harness;
  s ~name:"microbenchmarks" ~params:mems_params microbenchmarks;
  let n = bench ~group:"net" in
  n ~name:"loopback_vs_direct"
    ~params:[ p_int "rows" net_rows; p_int "batch" net_batch ]
    net_serving;
  n ~name:"overload"
    ~params:
      [
        p_int "batches" overload_batches;
        p_int "batch" overload_batch;
        p_int "flood" overload_flood;
      ]
    net_overload;
  write_bench_json ();
  Printf.printf "\ndone.\n"
