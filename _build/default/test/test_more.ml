(* Second-round coverage: integration options, experiment wiring, and
   API edge cases not covered by the per-module suites. *)

module Netlist = Stc_circuit.Netlist
module Wave = Stc_circuit.Wave
module Mna = Stc_circuit.Mna
module Dc = Stc_circuit.Dc
module Ac = Stc_circuit.Ac
module Tran = Stc_circuit.Tran
module Waveform = Stc_circuit.Waveform
module Experiment = Stc.Experiment
module Compaction = Stc.Compaction
module Spec = Stc.Spec
module Variation = Stc_process.Variation
module Montecarlo = Stc_process.Montecarlo
module Rng = Stc_numerics.Rng

let check_close tol = Alcotest.(check (float tol))

let rc_step r c =
  let step =
    Wave.Pulse
      { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 1e-9; fall = 1e-9;
        width = 1.0; period = 0.0 }
  in
  Netlist.of_elements
    [
      Netlist.vwave "vin" "in" "0" step;
      Netlist.r "r1" "in" "out" r;
      Netlist.c "c1" "out" "0" c;
    ]

let tran_option_tests =
  [
    Alcotest.test_case "backward euler also converges on RC" `Quick (fun () ->
        let r = 1000.0 and c = 1e-6 in
        let tau = r *. c in
        let sys = Mna.build (rc_step r c) in
        let options =
          { (Tran.default_options ~dt:(tau /. 100.0)) with
            Tran.method_ = Tran.Backward_euler }
        in
        let result = Tran.run ~options sys ~tstop:(5.0 *. tau) ~dt:(tau /. 100.0) in
        let w = Tran.node_waveform sys result "out" in
        check_close 5e-3 "final" (1.0 -. exp (-5.0)) (Waveform.final w));
    Alcotest.test_case "trapezoidal beats BE on accuracy" `Quick (fun () ->
        let r = 1000.0 and c = 1e-6 in
        let tau = r *. c in
        let sys = Mna.build (rc_step r c) in
        let run method_ =
          let options =
            { (Tran.default_options ~dt:(tau /. 20.0)) with Tran.method_ }
          in
          let result = Tran.run ~options sys ~tstop:tau ~dt:(tau /. 20.0) in
          let w = Tran.node_waveform sys result "out" in
          Float.abs (Waveform.final w -. (1.0 -. exp (-1.0)))
        in
        Alcotest.(check bool) "trap error <= BE error" true
          (run Tran.Trapezoidal <= run Tran.Backward_euler));
    Alcotest.test_case "time steps land on breakpoints" `Quick (fun () ->
        let step =
          Wave.Pulse
            { v1 = 0.0; v2 = 1.0; delay = 3.3e-4; rise = 1e-5; fall = 1e-5;
              width = 1.0; period = 0.0 }
        in
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vwave "vin" "in" "0" step;
                 Netlist.r "r1" "in" "out" 1000.0;
                 Netlist.c "c1" "out" "0" 1e-6;
               ])
        in
        let result = Tran.run sys ~tstop:1e-3 ~dt:1e-4 in
        Alcotest.(check bool) "3.3e-4 is a sample" true
          (Array.exists (fun t -> Float.abs (t -. 3.3e-4) < 1e-12) result.Tran.times));
    Alcotest.test_case "invalid tstop rejected" `Quick (fun () ->
        let sys = Mna.build (rc_step 1000.0 1e-6) in
        (match Tran.run sys ~tstop:(-1.0) ~dt:1e-5 with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

let ac_helper_tests =
  [
    Alcotest.test_case "db and phase helpers" `Quick (fun () ->
        check_close 1e-9 "20dB" 20.0 (Ac.db { Complex.re = 10.0; im = 0.0 });
        Alcotest.(check bool) "zero is -inf" true
          (Ac.db Complex.zero = Float.neg_infinity);
        check_close 1e-9 "90 degrees" 90.0
          (Ac.phase_deg { Complex.re = 0.0; im = 1.0 }));
    Alcotest.test_case "node_response extracts ground as zero" `Quick (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [ Netlist.vac "v" "a" "0" ~dc:0.0 ~mag:1.0; Netlist.r "r" "a" "0" 1.0 ])
        in
        let op = Dc.solve sys in
        let pts = Ac.sweep sys ~op ~freqs:[| 1.0; 10.0 |] in
        let resp = Ac.node_response sys pts "0" in
        Array.iter (fun (_, z) -> check_close 0.0 "ground" 0.0 (Complex.norm z)) resp);
  ]

let experiment_tests =
  [
    Alcotest.test_case "op-amp process model has 14 parameters" `Quick (fun () ->
        let device = Experiment.opamp_device () in
        Alcotest.(check int) "params" 14 (Array.length device.Montecarlo.params);
        Alcotest.(check int) "specs" 11 device.Montecarlo.spec_count);
    Alcotest.test_case "mems process model has 17 parameters" `Quick (fun () ->
        let device = Experiment.mems_device () in
        Alcotest.(check int) "params" 17 (Array.length device.Montecarlo.params);
        Alcotest.(check int) "specs" 15 device.Montecarlo.spec_count);
    Alcotest.test_case "mems spec blocks share ranges across temps" `Quick
      (fun () ->
        let specs = Experiment.mems_specs in
        for i = 0 to 4 do
          Alcotest.(check (float 0.0)) "cold lower"
            specs.(i).Spec.range.Spec.lower specs.(i + 5).Spec.range.Spec.lower;
          Alcotest.(check (float 0.0)) "hot upper"
            specs.(i).Spec.range.Spec.upper specs.(i + 10).Spec.range.Spec.upper
        done);
    Alcotest.test_case "temperature indices partition correctly" `Quick (fun () ->
        let all =
          Array.to_list Experiment.mems_cold_indices
          @ Array.to_list Experiment.mems_hot_indices
        in
        Alcotest.(check int) "10 temperature tests" 10 (List.length all);
        List.iter
          (fun j -> Alcotest.(check bool) "not a room index" true (j >= 5))
          all);
    Alcotest.test_case "examination order is a permutation of 11" `Quick
      (fun () ->
        let sorted = Array.copy Experiment.opamp_examination_order in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "0..10" (Array.init 11 (fun i -> i)) sorted);
    Alcotest.test_case "uncalibrated mems differs from calibrated" `Quick
      (fun () ->
        let a, _ = Experiment.generate_mems ~calibrate:false ~seed:9 ~n_train:5 ~n_test:1 () in
        let b, _ = Experiment.generate_mems ~calibrate:true ~seed:9 ~n_train:5 ~n_test:1 () in
        (* same draws, different measurement scale (e.g. bandwidth) *)
        Alcotest.(check bool) "bandwidth scaled" true
          (Stc.Device_data.value a ~instance:0 ~spec:4
           <> Stc.Device_data.value b ~instance:0 ~spec:4));
  ]

let montecarlo_more_tests =
  [
    Alcotest.test_case "generate_with custom draw" `Quick (fun () ->
        let device =
          {
            Montecarlo.device_name = "custom";
            params = [| Variation.uniform_pct "a" 1.0 ~pct:0.1 |];
            spec_count = 1;
            simulate = (fun v -> Some [| v.(0) *. 2.0 |]);
          }
        in
        let d =
          Montecarlo.generate_with (Rng.create 1) device
            ~draw:(fun _ -> [| 3.0 |])
            ~n:5
        in
        Array.iter
          (fun row -> Alcotest.(check (float 0.0)) "spec = 6" 6.0 row.(0))
          d.Montecarlo.specs);
    Alcotest.test_case "sequential and parallel streams both deterministic"
      `Quick (fun () ->
        let device =
          {
            Montecarlo.device_name = "toy";
            params = [| Variation.uniform_pct "a" 1.0 ~pct:0.1 |];
            spec_count = 1;
            simulate = (fun v -> Some [| v.(0) |]);
          }
        in
        let a = Montecarlo.generate_parallel ~domains:2 ~seed:5 device ~n:50 in
        let b = Montecarlo.generate_parallel ~domains:2 ~seed:5 device ~n:50 in
        Alcotest.(check bool) "reproducible" true
          (a.Montecarlo.specs = b.Montecarlo.specs));
  ]

let flow_edge_tests =
  [
    Alcotest.test_case "flow with everything dropped relies on model only"
      `Quick (fun () ->
        let specs =
          [|
            Spec.make ~name:"a" ~unit_label:"-" ~nominal:0.5 ~lower:0.0 ~upper:1.0;
            Spec.make ~name:"b" ~unit_label:"-" ~nominal:0.5 ~lower:0.0 ~upper:1.0;
          |]
        in
        let rng = Rng.create 3 in
        let values =
          Array.init 300 (fun _ -> [| Rng.float rng; Rng.float rng |])
        in
        let train = Stc.Device_data.make ~specs ~values in
        (* drop both: kept is empty; the model has no features, so the
           degenerate constant classifier applies *)
        (match Compaction.make_flow Compaction.default_config train ~dropped:[| 0; 1 |] with
         | flow ->
           Alcotest.(check int) "kept none" 0 (Array.length flow.Compaction.kept);
           ignore (Compaction.flow_verdict flow [| 0.5; 0.5 |])
         | exception Invalid_argument _ -> ()));
    Alcotest.test_case "evaluate_flow rejects mismatched data" `Quick (fun () ->
        let specs1 =
          [| Spec.make ~name:"a" ~unit_label:"-" ~nominal:0.5 ~lower:0.0 ~upper:1.0 |]
        in
        let flow = Compaction.identity_flow specs1 in
        let other =
          Stc.Device_data.make
            ~specs:
              [|
                Spec.make ~name:"x" ~unit_label:"-" ~nominal:0.0 ~lower:(-1.0)
                  ~upper:1.0;
                Spec.make ~name:"y" ~unit_label:"-" ~nominal:0.0 ~lower:(-1.0)
                  ~upper:1.0;
              |]
            ~values:[| [| 0.0; 0.0 |] |]
        in
        (match Compaction.evaluate_flow flow other with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

let cluster_tests =
  [
    Alcotest.test_case "exact copies cluster together" `Quick (fun () ->
        let specs =
          Array.init 4 (fun i ->
              Spec.make ~name:(string_of_int i) ~unit_label:"-" ~nominal:0.5
                ~lower:0.0 ~upper:1.0)
        in
        let rng = Rng.create 17 in
        let values =
          Array.init 200 (fun _ ->
              let a = Rng.float rng and b = Rng.float rng in
              [| a; a; b; b |])
        in
        let data = Stc.Device_data.make ~specs ~values in
        let groups = Stc.Order.clusters data ~threshold:0.9 in
        Alcotest.(check int) "two clusters" 2 (List.length groups);
        List.iter
          (fun g -> Alcotest.(check int) "pairs" 2 (List.length g))
          groups);
    Alcotest.test_case "cluster order keeps a representative last" `Quick
      (fun () ->
        let specs =
          Array.init 3 (fun i ->
              Spec.make ~name:(string_of_int i) ~unit_label:"-" ~nominal:0.5
                ~lower:0.0 ~upper:1.0)
        in
        let rng = Rng.create 18 in
        (* spec 0 and 1 identical (cluster); spec 2 independent.
           spec 1 fails more often than spec 0 would alone... all three
           share the same ranges, so failure counts of 0 and 1 are equal;
           the representative is then either — the property to check is
           that exactly one of {0,1} is examined before the other two
           positions are filled *)
        let values =
          Array.init 300 (fun _ ->
              let a = Rng.float rng *. 1.4 and b = Rng.float rng in
              [| a; a; b |])
        in
        let data = Stc.Device_data.make ~specs ~values in
        let order = Stc.Order.compute (Stc.Order.By_cluster 0.9) data in
        Alcotest.(check int) "length" 3 (Array.length order);
        (* the first examined spec must be one of the correlated pair *)
        Alcotest.(check bool) "first is 0 or 1" true
          (order.(0) = 0 || order.(0) = 1));
    Alcotest.test_case "threshold 1.1 gives all singletons" `Quick (fun () ->
        let specs =
          Array.init 3 (fun i ->
              Spec.make ~name:(string_of_int i) ~unit_label:"-" ~nominal:0.5
                ~lower:0.0 ~upper:1.0)
        in
        let rng = Rng.create 19 in
        let values =
          Array.init 100 (fun _ -> Array.init 3 (fun _ -> Rng.float rng))
        in
        let data = Stc.Device_data.make ~specs ~values in
        let groups = Stc.Order.clusters data ~threshold:1.1 in
        Alcotest.(check int) "three singletons" 3 (List.length groups));
  ]

let dc_sweep_tests =
  [
    Alcotest.test_case "divider transfer is linear in the source" `Quick
      (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vdc "vin" "in" "0" 0.0;
                 Netlist.r "r1" "in" "mid" 1000.0;
                 Netlist.r "r2" "mid" "0" 1000.0;
               ])
        in
        let points = Dc.sweep sys ~source:"vin" ~values:[| 0.0; 2.0; 4.0 |] in
        Array.iter
          (fun (v, x) ->
            (* the swept system has the same node order: rebuild index *)
            check_close 1e-6 "half" (v /. 2.0) x.(1) |> ignore;
            ignore (v, x))
          points;
        Alcotest.(check int) "three points" 3 (Array.length points));
    Alcotest.test_case "nmos inverter transfer is monotone falling" `Quick
      (fun () ->
        let netlist =
          Netlist.of_elements
            [
              Netlist.vdc "vdd" "vdd" "0" 5.0;
              Netlist.vdc "vin" "g" "0" 0.0;
              Netlist.r "rload" "vdd" "d" 10e3;
              Netlist.nmos "m1" ~d:"d" ~g:"g" ~s:"0" ~w:20e-6 ~l:1e-6 ();
            ]
        in
        let sys = Mna.build netlist in
        let values = Array.init 11 (fun i -> 0.5 *. float_of_int i) in
        let points = Dc.sweep sys ~source:"vin" ~values in
        let out_index = Mna.node_index sys "d" in
        let previous = ref Float.infinity in
        Array.iter
          (fun (_, x) ->
            let vout = x.(out_index) in
            Alcotest.(check bool) "monotone non-increasing" true
              (vout <= !previous +. 1e-9);
            previous := vout)
          points;
        (* rail-to-rail-ish swing *)
        let _, first = points.(0) and _, last = points.(10) in
        Alcotest.(check bool) "off output high" true (first.(out_index) > 4.9);
        Alcotest.(check bool) "on output low" true (last.(out_index) < 1.0));
    Alcotest.test_case "sweeping a resistor is rejected" `Quick (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [ Netlist.vdc "v" "a" "0" 1.0; Netlist.r "r1" "a" "0" 1.0 ])
        in
        (match Dc.sweep sys ~source:"r1" ~values:[| 1.0 |] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

let suites =
  [
    ("more.clusters", cluster_tests);
    ("more.dc_sweep", dc_sweep_tests);
    ("more.tran_options", tran_option_tests);
    ("more.ac_helpers", ac_helper_tests);
    ("more.experiment", experiment_tests);
    ("more.montecarlo", montecarlo_more_tests);
    ("more.flow_edges", flow_edge_tests);
  ]
