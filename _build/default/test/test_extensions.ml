(* Tests for the extension modules: the regression-then-threshold
   baseline (Sec. 4.1 comparison), distribution-based adaptive guard
   banding, richer process models and parallel Monte-Carlo. *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Guard_band = Stc.Guard_band
module Regression_baseline = Stc.Regression_baseline
module Adaptive_guard = Stc.Adaptive_guard
module Variation = Stc_process.Variation
module Montecarlo = Stc_process.Montecarlo
module Process_model = Stc_process.Process_model
module Rng = Stc_numerics.Rng
module Stats = Stc_numerics.Stats

(* the synthetic redundant-spec device from test_core *)
let specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"-" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"-" ~nominal:2.0 ~lower:1.2 ~upper:2.8;
  |]

let population seed n =
  let rng = Rng.create seed in
  let values =
    Array.init n (fun _ ->
        let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        [| a; b; a +. b |])
  in
  Device_data.make ~specs ~values

let regression_tests =
  [
    Alcotest.test_case "predicts the dependent spec's value" `Quick (fun () ->
        let train = population 1 800 in
        let t = Regression_baseline.train train ~dropped:[| 2 |] in
        (* s2 = s0 + s1: check the value prediction directly *)
        let features = [| Spec.normalize specs.(0) 1.1; Spec.normalize specs.(1) 0.9 |] in
        let predicted = (Regression_baseline.predict_values t features).(0) in
        Alcotest.(check (float 0.12)) "s2 ~ 2.0" 2.0 predicted);
    Alcotest.test_case "low error on dependent spec" `Quick (fun () ->
        let train = population 1 800 and test = population 2 500 in
        let t = Regression_baseline.train train ~dropped:[| 2 |] in
        let e = Regression_baseline.prediction_error t test in
        Alcotest.(check bool) "error < 5%" true (e < 0.05));
    Alcotest.test_case "classify agrees with thresholded values" `Quick (fun () ->
        let train = population 3 500 in
        let t = Regression_baseline.train train ~dropped:[| 2 |] in
        let check features =
          let v = (Regression_baseline.predict_values t features).(0) in
          let expected = if Spec.passes specs.(2) v then 1 else -1 in
          Alcotest.(check int) "consistent" expected
            (Regression_baseline.classify t features)
        in
        check [| 0.5; 0.5 |];
        check [| 0.9; 0.9 |];
        check [| 0.1; 0.1 |]);
    Alcotest.test_case "kept/dropped bookkeeping" `Quick (fun () ->
        let train = population 4 200 in
        let t = Regression_baseline.train train ~dropped:[| 1 |] in
        Alcotest.(check (array int)) "kept" [| 0; 2 |] (Regression_baseline.kept t);
        Alcotest.(check (array int)) "dropped" [| 1 |]
          (Regression_baseline.dropped t));
    Alcotest.test_case "empty dropped rejected" `Quick (fun () ->
        let train = population 4 100 in
        (match Regression_baseline.train train ~dropped:[||] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

let adaptive_tests =
  [
    Alcotest.test_case "margin is the |f| quantile" `Quick (fun () ->
        let train = population 5 600 in
        let t = Adaptive_guard.train
            ~config:{ Adaptive_guard.default_config with
                      Adaptive_guard.target_guard = 0.10 }
            train ~dropped:[| 2 |]
        in
        Alcotest.(check bool) "positive margin" true (Adaptive_guard.margin t > 0.0));
    Alcotest.test_case "guard volume tracks the target" `Quick (fun () ->
        let train = population 5 800 and test = population 6 800 in
        let run target =
          let t = Adaptive_guard.train
              ~config:{ Adaptive_guard.default_config with
                        Adaptive_guard.target_guard = target }
              train ~dropped:[| 2 |]
          in
          let counts = Compaction.evaluate_flow (Adaptive_guard.flow t) test in
          Metrics.guard_pct counts
        in
        let g5 = run 0.05 and g15 = run 0.15 in
        Alcotest.(check bool) "5% target lands 1..12%" true (g5 > 1.0 && g5 < 12.0);
        Alcotest.(check bool) "wider target guards more" true (g15 > g5));
    Alcotest.test_case "zero target degenerates cleanly" `Quick (fun () ->
        let train = population 5 400 in
        let t = Adaptive_guard.train
            ~config:{ Adaptive_guard.default_config with
                      Adaptive_guard.target_guard = 0.0 }
            train ~dropped:[| 2 |]
        in
        Alcotest.(check (float 0.0)) "margin 0" 0.0 (Adaptive_guard.margin t);
        (* with margin 0, nothing can land strictly inside the band *)
        let band = Adaptive_guard.band t in
        let v = [| 0.5; 0.5 |] in
        Alcotest.(check bool) "no guard verdict" true
          (not (Guard_band.equal_verdict (Guard_band.classify band v) Guard_band.Guard)));
    Alcotest.test_case "clearly-bad devices do not ship" `Quick (fun () ->
        (* exercised through the production path (flow_verdict): devices
           failing a *measured* kept spec are binned Bad outright; only
           in-support devices consult the model, where the adaptive
           margin flags the uncertain ones *)
        let train = population 7 800 and test = population 8 4000 in
        let t = Adaptive_guard.train train ~dropped:[| 2 |] in
        let flow = Adaptive_guard.flow t in
        let bad_total = ref 0 and shipped = ref 0 in
        for i = 0 to Device_data.n_instances test - 1 do
          let row = Device_data.instance_row test i in
          if row.(2) > 2.95 || row.(2) < 1.05 then begin
            incr bad_total;
            if
              Guard_band.equal_verdict
                (Compaction.flow_verdict flow row)
                Guard_band.Good
            then incr shipped
          end
        done;
        Alcotest.(check bool) "population has clear bads" true (!bad_total > 10);
        Alcotest.(check int) "no clear bad ships" 0 !shipped);
  ]

let toy_device =
  {
    Montecarlo.device_name = "toy";
    params =
      [|
        Variation.uniform_pct "a" 1.0 ~pct:0.10;
        Variation.uniform_pct "b" 2.0 ~pct:0.10;
        Variation.uniform_pct "c" 3.0 ~pct:0.10;
      |];
    spec_count = 2;
    simulate = (fun v -> Some [| v.(0) +. v.(1); v.(2) |]);
  }

let process_model_tests =
  [
    Alcotest.test_case "correlated draws preserve marginal spread" `Quick
      (fun () ->
        let model =
          Process_model.correlated ~params:toy_device.Montecarlo.params
            ~die_correlation:0.6
        in
        let rng = Rng.create 9 in
        let draws = Array.init 20000 (fun _ -> Process_model.draw_correlated model rng) in
        let col j = Array.map (fun d -> d.(j)) draws in
        (* uniform ±10% has sigma = 0.1/sqrt(3) * nominal *)
        let expected_sigma = 0.1 /. sqrt 3.0 in
        Alcotest.(check (float 0.005)) "sigma a" expected_sigma
          (Stats.stddev (col 0) /. 1.0);
        Alcotest.(check (float 0.01)) "sigma b" (2.0 *. expected_sigma)
          (Stats.stddev (col 1)));
    Alcotest.test_case "die correlation shows up across parameters" `Quick
      (fun () ->
        let sample rho =
          let model =
            Process_model.correlated ~params:toy_device.Montecarlo.params
              ~die_correlation:rho
          in
          let rng = Rng.create 10 in
          let draws =
            Array.init 5000 (fun _ -> Process_model.draw_correlated model rng)
          in
          Stats.correlation
            (Array.map (fun d -> d.(0)) draws)
            (Array.map (fun d -> d.(1)) draws)
        in
        let c0 = sample 0.0 and c9 = sample 0.9 in
        Alcotest.(check bool) "independent near 0" true (Float.abs c0 < 0.05);
        Alcotest.(check bool) "correlated near 0.9" true (c9 > 0.8));
    Alcotest.test_case "rho bounds validated" `Quick (fun () ->
        (match
           Process_model.correlated ~params:toy_device.Montecarlo.params
             ~die_correlation:1.5
         with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "defect injection rate" `Quick (fun () ->
        let rng = Rng.create 11 in
        let model = { Process_model.rate = 0.3; severity = 3.0 } in
        let n = 5000 in
        let hits = ref 0 in
        for _ = 1 to n do
          let _, defective = Process_model.inject rng model [| 1.0; 1.0 |] in
          if defective then incr hits
        done;
        let rate = float_of_int !hits /. float_of_int n in
        Alcotest.(check (float 0.03)) "~30%" 0.3 rate);
    Alcotest.test_case "defect changes exactly one parameter grossly" `Quick
      (fun () ->
        let rng = Rng.create 12 in
        let model = { Process_model.rate = 1.0; severity = 3.0 } in
        let params = [| 1.0; 2.0; 4.0 |] in
        let defected, flag = Process_model.inject rng model params in
        Alcotest.(check bool) "flagged" true flag;
        let changed =
          Array.to_list (Array.mapi (fun i v -> (i, v)) defected)
          |> List.filter (fun (i, v) -> v <> params.(i))
        in
        (match changed with
         | [ (i, v) ] ->
           let ratio = v /. params.(i) in
           Alcotest.(check bool) "gross factor" true
             (Float.abs (ratio -. 3.0) < 1e-9 || Float.abs (ratio -. (1.0 /. 3.0)) < 1e-9)
         | _ -> Alcotest.fail "expected exactly one changed parameter"));
    Alcotest.test_case "zero rate never defects" `Quick (fun () ->
        let rng = Rng.create 13 in
        let model = { Process_model.rate = 0.0; severity = 2.0 } in
        for _ = 1 to 100 do
          let _, flag = Process_model.inject rng model [| 1.0 |] in
          Alcotest.(check bool) "clean" false flag
        done);
  ]

let parallel_tests =
  [
    Alcotest.test_case "parallel result independent of domain count" `Quick
      (fun () ->
        let a = Montecarlo.generate_parallel ~domains:1 ~seed:21 toy_device ~n:200 in
        let b = Montecarlo.generate_parallel ~domains:4 ~seed:21 toy_device ~n:200 in
        Alcotest.(check bool) "identical inputs" true
          (a.Montecarlo.inputs = b.Montecarlo.inputs);
        Alcotest.(check bool) "identical specs" true
          (a.Montecarlo.specs = b.Montecarlo.specs));
    Alcotest.test_case "parallel covers all instances" `Quick (fun () ->
        let d = Montecarlo.generate_parallel ~domains:3 ~seed:22 toy_device ~n:123 in
        Alcotest.(check int) "count" 123 (Array.length d.Montecarlo.inputs);
        Array.iter
          (fun row -> Alcotest.(check bool) "nonempty" true (Array.length row = 3))
          d.Montecarlo.inputs);
    Alcotest.test_case "parallel redraws failures deterministically" `Quick
      (fun () ->
        let flaky =
          {
            toy_device with
            Montecarlo.simulate =
              (fun v -> if v.(0) > 1.0 then None else Some [| v.(0); v.(2) |]);
          }
        in
        let a = Montecarlo.generate_parallel ~max_failure_ratio:10.0 ~domains:1
                  ~seed:23 flaky ~n:80
        in
        let b = Montecarlo.generate_parallel ~max_failure_ratio:10.0 ~domains:4
                  ~seed:23 flaky ~n:80
        in
        Alcotest.(check bool) "same data despite retries" true
          (a.Montecarlo.inputs = b.Montecarlo.inputs);
        Array.iter
          (fun row -> Alcotest.(check bool) "constraint holds" true (row.(0) <= 1.0))
          a.Montecarlo.inputs);
  ]

let suites =
  [
    ("ext.regression_baseline", regression_tests);
    ("ext.adaptive_guard", adaptive_tests);
    ("ext.process_model", process_model_tests);
    ("ext.parallel", parallel_tests);
  ]
