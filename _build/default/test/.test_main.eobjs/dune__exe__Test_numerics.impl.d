test/test_numerics.ml: Alcotest Array Complex Float Fun Gen List QCheck QCheck_alcotest Stc_numerics
