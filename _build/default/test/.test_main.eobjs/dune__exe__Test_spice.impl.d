test/test_spice.ml: Alcotest List Option Printf QCheck QCheck_alcotest Stc_circuit String
