test/test_core.ml: Alcotest Array Float List QCheck QCheck_alcotest Stc Stc_numerics String
