test/test_svm.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Stc_numerics Stc_svm
