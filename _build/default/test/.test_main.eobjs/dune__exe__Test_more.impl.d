test/test_more.ml: Alcotest Array Complex Float List Stc Stc_circuit Stc_numerics Stc_process
