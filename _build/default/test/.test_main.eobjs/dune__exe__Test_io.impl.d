test/test_io.ml: Alcotest Array List Stc Stc_numerics Stc_svm String
