test/test_integration.ml: Alcotest Array Lazy Printf Stc Stc_numerics
