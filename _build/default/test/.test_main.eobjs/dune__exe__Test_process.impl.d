test/test_process.ml: Alcotest Array QCheck QCheck_alcotest Stc_numerics Stc_process
