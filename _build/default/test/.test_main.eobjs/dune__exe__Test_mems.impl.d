test/test_mems.ml: Alcotest Array Complex Float Stc_mems Stc_numerics
