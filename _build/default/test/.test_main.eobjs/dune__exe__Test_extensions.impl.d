test/test_extensions.ml: Alcotest Array Float List Stc Stc_numerics Stc_process
