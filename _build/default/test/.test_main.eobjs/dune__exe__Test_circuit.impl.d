test/test_circuit.ml: Alcotest Array Complex Float List Stc_circuit Stc_numerics
