(* Serialisation round-trip tests: SVM models and tester lookup tables. *)

module Kernel = Stc_svm.Kernel
module Svr = Stc_svm.Svr
module Svc = Stc_svm.Svc
module Model_io = Stc_svm.Model_io
module Lookup = Stc.Lookup
module Guard_band = Stc.Guard_band
module Rng = Stc_numerics.Rng

let check_close tol = Alcotest.(check (float tol))

let training_data seed n =
  let rng = Rng.create seed in
  let x = Array.init n (fun _ -> [| Rng.uniform rng (-1.) 1.; Rng.uniform rng (-1.) 1. |]) in
  let labels = Array.map (fun xi -> if xi.(0) +. xi.(1) > 0.0 then 1 else -1) x in
  (x, labels)

let kernel_tests =
  [
    Alcotest.test_case "all kernels round-trip" `Quick (fun () ->
        List.iter
          (fun k ->
            match Model_io.kernel_of_string (Model_io.kernel_to_string k) with
            | Ok k' -> Alcotest.(check bool) "equal" true (k = k')
            | Error e -> Alcotest.fail e)
          [ Kernel.Linear; Kernel.rbf 0.35;
            Kernel.Polynomial { gamma = 0.5; coef0 = 1.0; degree = 3 };
            Kernel.Sigmoid { gamma = 0.1; coef0 = -0.2 } ]);
    Alcotest.test_case "garbage rejected" `Quick (fun () ->
        (match Model_io.kernel_of_string "quantum 3" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected error"));
  ]

let svr_tests =
  [
    Alcotest.test_case "svr predictions identical after reload" `Quick (fun () ->
        let x, labels = training_data 1 150 in
        let y = Array.map float_of_int labels in
        let m = Svr.train ~c:10.0 ~epsilon:0.1 ~x ~y () in
        let text = Model_io.svr_to_string m in
        (match Model_io.svr_of_string text with
         | Error e -> Alcotest.fail e
         | Ok m' ->
           Array.iter
             (fun xi ->
               check_close 0.0 "same prediction" (Svr.predict m xi) (Svr.predict m' xi))
             x);
        Alcotest.(check bool) "non-trivial model" true (Svr.n_support m > 0));
    Alcotest.test_case "svr header validated" `Quick (fun () ->
        (match Model_io.svr_of_string "stc-svc-1\nkernel linear\nbias 0\nnsv 0\n" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected tag mismatch"));
    Alcotest.test_case "sv count validated" `Quick (fun () ->
        let bogus = "stc-svr-1\nkernel linear\nbias 0\nnsv 2\n1.0 0.5\n" in
        (match Model_io.svr_of_string bogus with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected count mismatch"));
  ]

let svc_tests =
  [
    Alcotest.test_case "svc decisions identical after reload" `Quick (fun () ->
        let x, y = training_data 2 150 in
        let m = Svc.train ~c:5.0 ~x ~y () in
        let text = Model_io.svc_to_string m in
        (match Model_io.svc_of_string text with
         | Error e -> Alcotest.fail e
         | Ok m' ->
           Array.iter
             (fun xi ->
               check_close 0.0 "same decision" (Svc.decision m xi) (Svc.decision m' xi))
             x));
  ]

let lookup_tests =
  [
    Alcotest.test_case "lookup table round-trips" `Quick (fun () ->
        let classify v =
          if v.(0) +. v.(1) > 1.0 then Guard_band.Good
          else if v.(0) > 0.9 then Guard_band.Guard
          else Guard_band.Bad
        in
        let config = { Lookup.default_config with Lookup.resolution = 12 } in
        let table = Lookup.build ~config ~dim:2 classify in
        let text = Lookup.to_string table in
        (match Lookup.of_string text with
         | Error e -> Alcotest.fail e
         | Ok table' ->
           Alcotest.(check int) "cells" (Lookup.cells table) (Lookup.cells table');
           let rng = Rng.create 4 in
           for _ = 1 to 300 do
             let v = [| Rng.uniform rng (-1.) 2.; Rng.uniform rng (-1.) 2. |] in
             Alcotest.(check bool) "same verdict" true
               (Guard_band.equal_verdict (Lookup.lookup table v)
                  (Lookup.lookup table' v))
           done));
    Alcotest.test_case "corrupted cells rejected" `Quick (fun () ->
        let table = Lookup.build ~dim:1 (fun _ -> Guard_band.Good) in
        let text = Lookup.to_string table in
        let corrupted = String.map (fun c -> if c = 'G' then 'X' else c) text in
        (match Lookup.of_string corrupted with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected rejection"));
    Alcotest.test_case "truncated document rejected" `Quick (fun () ->
        (match Lookup.of_string "stc-lookup-1\ndim 2\n" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "expected rejection"));
  ]

let suites =
  [
    ("io.kernel", kernel_tests);
    ("io.svr", svr_tests);
    ("io.svc", svc_tests);
    ("io.lookup", lookup_tests);
  ]
