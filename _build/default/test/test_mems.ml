(* Tests for the MEMS accelerometer substrate. *)

module Material = Stc_mems.Material
module Beam = Stc_mems.Beam
module Geometry = Stc_mems.Geometry
module Accel_model = Stc_mems.Accel_model
module Measure_mems = Stc_mems.Measure_mems

let check_close tol = Alcotest.(check (float tol))

let room = Material.room_temperature

let material_tests =
  [
    Alcotest.test_case "young's modulus softens when hot" `Quick (fun () ->
        let e_room = Material.youngs_modulus room in
        let e_hot = Material.youngs_modulus 80.0 in
        let e_cold = Material.youngs_modulus (-40.0) in
        Alcotest.(check bool) "hot softer" true (e_hot < e_room);
        Alcotest.(check bool) "cold stiffer" true (e_cold > e_room));
    Alcotest.test_case "thermal strain sign" `Quick (fun () ->
        check_close 1e-15 "zero at room" 0.0 (Material.thermal_strain room);
        Alcotest.(check bool) "hot compressive" true (Material.thermal_strain 80.0 < 0.0);
        Alcotest.(check bool) "cold tensile" true (Material.thermal_strain (-40.0) > 0.0));
    Alcotest.test_case "viscosity increases with temperature" `Quick (fun () ->
        Alcotest.(check bool) "sutherland" true
          (Material.air_viscosity 80.0 > Material.air_viscosity (-40.0)));
  ]

let beam = { Beam.length = 260e-6; width = 2e-6; thickness = 5e-6 }

let beam_tests =
  [
    Alcotest.test_case "lateral stiffness formula" `Quick (fun () ->
        let k = Beam.lateral_stiffness ~strain:0.0 beam ~temp:room in
        let expected =
          Material.youngs_modulus room *. 5e-6 *. (2e-6 ** 3.0) /. (260e-6 ** 3.0)
        in
        check_close (expected *. 1e-9) "Etw3/L3" expected k);
    Alcotest.test_case "axial much stiffer than lateral" `Quick (fun () ->
        let ka = Beam.axial_stiffness beam ~temp:room in
        let kl = Beam.lateral_stiffness ~strain:0.0 beam ~temp:room in
        Alcotest.(check bool) "ratio ~ (L/w)^2" true (ka /. kl > 1000.0));
    Alcotest.test_case "folded axial between the two" `Quick (fun () ->
        let ka = Beam.axial_stiffness beam ~temp:room in
        let kf = Beam.folded_axial_stiffness beam ~temp:room in
        let kl = Beam.lateral_stiffness ~strain:0.0 beam ~temp:room in
        Alcotest.(check bool) "kl < kf < ka" true (kl < kf && kf < ka));
    Alcotest.test_case "tension stiffens, compression softens" `Quick (fun () ->
        let k0 = Beam.lateral_stiffness ~strain:0.0 beam ~temp:room in
        let kt = Beam.lateral_stiffness ~strain:1e-5 beam ~temp:room in
        let kc = Beam.lateral_stiffness ~strain:(-1e-5) beam ~temp:room in
        Alcotest.(check bool) "order" true (kc < k0 && k0 < kt));
    Alcotest.test_case "stiffness floor beyond buckling" `Quick (fun () ->
        let eps = -2.0 *. Beam.buckling_strain beam in
        let k = Beam.lateral_stiffness ~strain:eps beam ~temp:room in
        Alcotest.(check bool) "clamped positive" true (k > 0.0));
    Alcotest.test_case "buckling strain formula" `Quick (fun () ->
        let expected =
          Float.pi *. Float.pi *. 2e-6 *. 2e-6 /. (12.0 *. 260e-6 *. 260e-6)
        in
        check_close (expected *. 1e-9) "pi^2 w^2/12L^2" expected
          (Beam.buckling_strain beam));
  ]

let geometry_tests =
  [
    Alcotest.test_case "proof mass close to plate mass" `Quick (fun () ->
        let g = Geometry.nominal in
        let plate =
          2330.0 *. g.Geometry.plate_length *. g.Geometry.plate_width
          *. g.Geometry.thickness
        in
        let m = Geometry.proof_mass g in
        Alcotest.(check bool) "plate dominates" true (m > plate && m < 1.5 *. plate));
    Alcotest.test_case "rest capacitance positive" `Quick (fun () ->
        Alcotest.(check bool) "C0" true (Geometry.rest_capacitance Geometry.nominal > 0.0));
    Alcotest.test_case "damping grows with temperature" `Quick (fun () ->
        let g = Geometry.nominal in
        Alcotest.(check bool) "b(80) > b(-40)" true
          (Geometry.damping_coefficient g ~temp:80.0
           > Geometry.damping_coefficient g ~temp:(-40.0)));
  ]

let model_tests =
  [
    Alcotest.test_case "resonance matches sqrt(k/m)" `Quick (fun () ->
        let m = Accel_model.build Geometry.nominal ~temp:room in
        let kxx, _, _ = Accel_model.stiffness m in
        let f_expected = sqrt (kxx /. Accel_model.mass m) /. (2.0 *. Float.pi) in
        check_close 1e-6 "f0" f_expected (Accel_model.resonance m));
    Alcotest.test_case "dc displacement is F/k" `Quick (fun () ->
        let m = Accel_model.build Geometry.nominal ~temp:room in
        let kxx, kyy, kxy = Accel_model.stiffness m in
        let x = Accel_model.displacement m ~axis:Accel_model.X_axis ~freq:0.0 ~accel:9.81 in
        let f = Accel_model.mass m *. 9.81 in
        (* 2x2 static solve *)
        let det = (kxx *. kyy) -. (kxy *. kxy) in
        let expected = kyy *. f /. det in
        check_close (Float.abs expected *. 1e-6) "static" expected x.Complex.re);
    Alcotest.test_case "nominal cross coupling cancels" `Quick (fun () ->
        let m = Accel_model.build Geometry.nominal ~temp:room in
        let kxx, _, kxy = Accel_model.stiffness m in
        Alcotest.(check bool) "kxy tiny" true (Float.abs kxy < 1e-6 *. kxx));
    Alcotest.test_case "response peaks near resonance" `Quick (fun () ->
        let m = Accel_model.build Geometry.nominal ~temp:room in
        let f0 = Accel_model.resonance m in
        let dc = Accel_model.response_mv_per_v m ~axis:Accel_model.X_axis ~freq:0.0 in
        let at_peak = Accel_model.response_mv_per_v m ~axis:Accel_model.X_axis ~freq:f0 in
        let far = Accel_model.response_mv_per_v m ~axis:Accel_model.X_axis ~freq:(10.0 *. f0) in
        Alcotest.(check bool) "peaked" true (at_peak > dc && far < dc));
    Alcotest.test_case "hot softer resonance than cold" `Quick (fun () ->
        let hot = Accel_model.build Geometry.nominal ~temp:80.0 in
        let cold = Accel_model.build Geometry.nominal ~temp:(-40.0) in
        Alcotest.(check bool) "f_hot < f_cold" true
          (Accel_model.resonance hot < Accel_model.resonance cold));
  ]

let transient_tests =
  [
    Alcotest.test_case "step response settles to static deflection" `Quick
      (fun () ->
        let m = Accel_model.build Geometry.nominal ~temp:room in
        let f0 = Accel_model.resonance m in
        let w =
          Accel_model.step_response m ~axis:Accel_model.X_axis ~accel:9.81
            ~tstop:(20.0 /. f0) ~dt:(1.0 /. f0 /. 200.0)
        in
        let static =
          (Accel_model.displacement m ~axis:Accel_model.X_axis ~freq:0.0
             ~accel:9.81).Complex.re
        in
        let _, final = w.(Array.length w - 1) in
        check_close (Float.abs static *. 0.01) "final = F/k" static final);
    Alcotest.test_case "ring frequency matches damped resonance" `Quick
      (fun () ->
        let m = Accel_model.build Geometry.nominal ~temp:room in
        let f0 = Accel_model.resonance m in
        let q = Accel_model.quality_estimate m in
        let zeta = 1.0 /. (2.0 *. q) in
        let fd = f0 *. sqrt (1.0 -. (zeta *. zeta)) in
        let w =
          Accel_model.step_response m ~axis:Accel_model.X_axis ~accel:9.81
            ~tstop:(10.0 /. f0) ~dt:(1.0 /. f0 /. 500.0)
        in
        let static =
          (Accel_model.displacement m ~axis:Accel_model.X_axis ~freq:0.0
             ~accel:9.81).Complex.re
        in
        (* period between the first two downward crossings of the final
           value gives the damped ringing frequency *)
        let crossings =
          Stc_numerics.Interp.crossings w ~level:static ~direction:`Falling
        in
        (match crossings with
         | t1 :: t2 :: _ ->
           let measured = 1.0 /. (t2 -. t1) in
           check_close (fd *. 0.02) "damped frequency" fd measured
         | _ -> Alcotest.fail "expected at least two ring crossings"));
    Alcotest.test_case "overshoot consistent with Q" `Quick (fun () ->
        let m = Accel_model.build Geometry.nominal ~temp:room in
        let f0 = Accel_model.resonance m in
        let q = Accel_model.quality_estimate m in
        let zeta = 1.0 /. (2.0 *. q) in
        let expected =
          exp (-.zeta *. Float.pi /. sqrt (1.0 -. (zeta *. zeta)))
        in
        let w =
          Accel_model.step_response m ~axis:Accel_model.X_axis ~accel:9.81
            ~tstop:(20.0 /. f0) ~dt:(1.0 /. f0 /. 500.0)
        in
        let static =
          (Accel_model.displacement m ~axis:Accel_model.X_axis ~freq:0.0
             ~accel:9.81).Complex.re
        in
        let peak = Array.fold_left (fun acc (_, x) -> Float.max acc x) 0.0 w in
        let overshoot = (peak -. static) /. static in
        check_close 0.02 "classic 2nd-order overshoot" expected overshoot);
    Alcotest.test_case "cross-axis step excites x through coupling" `Quick
      (fun () ->
        let g = Geometry.nominal in
        let skewed =
          {
            g with
            Geometry.springs =
              Array.mapi
                (fun i s ->
                  { s with Geometry.angle = Geometry.ideal_angles.(i) +. 0.02 })
                g.Geometry.springs;
          }
        in
        let m = Accel_model.build skewed ~temp:room in
        let f0 = Accel_model.resonance m in
        let w =
          Accel_model.step_response m ~axis:Accel_model.Y_axis ~accel:9.81
            ~tstop:(20.0 /. f0) ~dt:(1.0 /. f0 /. 200.0)
        in
        let _, final = w.(Array.length w - 1) in
        Alcotest.(check bool) "nonzero coupled deflection" true
          (Float.abs final > 1e-13));
  ]

let measure_tests =
  [
    Alcotest.test_case "nominal lands near Table 2" `Quick (fun () ->
        let v = Measure_mems.measure Geometry.nominal ~temp:room in
        Alcotest.(check bool) "SF 5-30" true
          (v.Measure_mems.scale_factor > 5.0 && v.Measure_mems.scale_factor < 30.0);
        Alcotest.(check bool) "fp ~5.6k" true
          (v.Measure_mems.peak_freq > 5.0 && v.Measure_mems.peak_freq < 6.2);
        Alcotest.(check bool) "Q ~2.1" true
          (v.Measure_mems.quality > 1.5 && v.Measure_mems.quality < 2.8);
        Alcotest.(check (float 0.05)) "cross ~0" 0.0 v.Measure_mems.cross_axis);
    Alcotest.test_case "tri-temperature trends" `Quick (fun () ->
        let _, cold, hot = Measure_mems.tri_temperature Geometry.nominal in
        Alcotest.(check bool) "cold peak higher" true
          (cold.Measure_mems.peak_freq > hot.Measure_mems.peak_freq);
        Alcotest.(check bool) "cold Q higher (less damping)" true
          (cold.Measure_mems.quality > hot.Measure_mems.quality));
    Alcotest.test_case "bandwidth below peak for resonant part" `Quick (fun () ->
        let v = Measure_mems.measure Geometry.nominal ~temp:room in
        Alcotest.(check bool) "bw < fp" true
          (v.Measure_mems.bandwidth < v.Measure_mems.peak_freq));
    Alcotest.test_case "skewed springs produce cross-axis signal" `Quick (fun () ->
        let g = Geometry.nominal in
        (* break the pairwise cancellation: all skews the same sign *)
        let springs =
          Array.mapi
            (fun i s ->
              { s with Geometry.angle = Geometry.ideal_angles.(i) +. 0.01 })
            g.Geometry.springs
        in
        let v = Measure_mems.measure { g with Geometry.springs } ~temp:room in
        Alcotest.(check bool) "nonzero cross" true
          (Float.abs v.Measure_mems.cross_axis > 1e-4));
    Alcotest.test_case "measurement deterministic" `Quick (fun () ->
        let a = Measure_mems.measure Geometry.nominal ~temp:room in
        let b = Measure_mems.measure Geometry.nominal ~temp:room in
        Alcotest.(check (array (float 0.0))) "identical"
          (Measure_mems.to_array a) (Measure_mems.to_array b));
  ]

let suites =
  [
    ("mems.material", material_tests);
    ("mems.beam", beam_tests);
    ("mems.geometry", geometry_tests);
    ("mems.model", model_tests);
    ("mems.transient", transient_tests);
    ("mems.measure", measure_tests);
  ]
