(* Tests for the MNA circuit simulator: analytic circuits with known
   answers, plus the op-amp benches. *)

module Netlist = Stc_circuit.Netlist
module Wave = Stc_circuit.Wave
module Mosfet = Stc_circuit.Mosfet
module Mna = Stc_circuit.Mna
module Dc = Stc_circuit.Dc
module Ac = Stc_circuit.Ac
module Tran = Stc_circuit.Tran
module Waveform = Stc_circuit.Waveform
module Opamp = Stc_circuit.Opamp
module Measure_opamp = Stc_circuit.Measure_opamp

let check_close tol = Alcotest.(check (float tol))

(* ------------------------------ Wave ------------------------------ *)

let wave_tests =
  [
    Alcotest.test_case "dc" `Quick (fun () ->
        check_close 0.0 "value" 3.0 (Wave.value (Wave.Dc 3.0) 17.0));
    Alcotest.test_case "pulse profile" `Quick (fun () ->
        let p =
          Wave.Pulse
            { v1 = 0.0; v2 = 1.0; delay = 1.0; rise = 1.0; fall = 1.0;
              width = 2.0; period = 0.0 }
        in
        check_close 1e-12 "before" 0.0 (Wave.value p 0.5);
        check_close 1e-12 "mid-rise" 0.5 (Wave.value p 1.5);
        check_close 1e-12 "high" 1.0 (Wave.value p 3.0);
        check_close 1e-12 "mid-fall" 0.5 (Wave.value p 4.5);
        check_close 1e-12 "after" 0.0 (Wave.value p 6.0));
    Alcotest.test_case "pulse periodic repeats" `Quick (fun () ->
        let p =
          Wave.Pulse
            { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 0.1; fall = 0.1;
              width = 0.3; period = 1.0 }
        in
        check_close 1e-12 "second period high" 1.0 (Wave.value p 1.2));
    Alcotest.test_case "sine" `Quick (fun () ->
        let s = Wave.Sine { offset = 1.0; amplitude = 2.0; freq = 1.0; phase = 0.0 } in
        check_close 1e-9 "quarter" 3.0 (Wave.value s 0.25));
    Alcotest.test_case "pwl" `Quick (fun () ->
        let w = Wave.Pwl [| (0.0, 0.0); (1.0, 5.0) |] in
        check_close 1e-12 "interp" 2.5 (Wave.value w 0.5));
    Alcotest.test_case "breakpoints sorted within range" `Quick (fun () ->
        let p =
          Wave.Pulse
            { v1 = 0.0; v2 = 1.0; delay = 1.0; rise = 0.5; fall = 0.5;
              width = 1.0; period = 0.0 }
        in
        let bps = Wave.breakpoints p ~tmax:10.0 in
        Alcotest.(check (list (float 1e-12))) "edges" [ 1.0; 1.5; 2.5; 3.0 ] bps);
  ]

(* ----------------------------- Mosfet ----------------------------- *)

let mosfet_tests =
  [
    Alcotest.test_case "cutoff leaks only" `Quick (fun () ->
        let op = Mosfet.evaluate Mosfet.default_nmos ~w:10e-6 ~l:1e-6 ~vgs:0.0 ~vds:1.0 in
        Alcotest.(check bool) "cutoff" true (op.Mosfet.region = `Cutoff);
        Alcotest.(check bool) "tiny current" true (Float.abs op.Mosfet.ids < 1e-10));
    Alcotest.test_case "saturation square law" `Quick (fun () ->
        let p = { Mosfet.default_nmos with lambda = 0.0 } in
        let op = Mosfet.evaluate p ~w:10e-6 ~l:1e-6 ~vgs:1.7 ~vds:2.0 in
        Alcotest.(check bool) "sat" true (op.Mosfet.region = `Saturation);
        (* 0.5 * 110u * 10 * 1.0^2 *)
        check_close 1e-9 "ids" 550e-6 op.Mosfet.ids;
        check_close 1e-9 "gm = beta*vov" 1.1e-3 op.Mosfet.gm);
    Alcotest.test_case "triode conductance" `Quick (fun () ->
        let p = { Mosfet.default_nmos with lambda = 0.0 } in
        let op = Mosfet.evaluate p ~w:10e-6 ~l:1e-6 ~vgs:1.7 ~vds:0.1 in
        Alcotest.(check bool) "triode" true (op.Mosfet.region = `Triode));
    Alcotest.test_case "pmos mirrors nmos" `Quick (fun () ->
        let opn = Mosfet.evaluate Mosfet.default_nmos ~w:10e-6 ~l:1e-6 ~vgs:1.5 ~vds:1.5 in
        let p = { Mosfet.default_nmos with kind = Mosfet.Pmos } in
        let opp = Mosfet.evaluate p ~w:10e-6 ~l:1e-6 ~vgs:(-1.5) ~vds:(-1.5) in
        check_close 1e-12 "current mirrored" (-.opn.Mosfet.ids) opp.Mosfet.ids;
        check_close 1e-12 "gm preserved" opn.Mosfet.gm opp.Mosfet.gm);
    Alcotest.test_case "continuity at triode/sat edge" `Quick (fun () ->
        let p = Mosfet.default_nmos in
        let vov = 0.5 in
        let below = Mosfet.evaluate p ~w:10e-6 ~l:1e-6 ~vgs:(p.Mosfet.vt0 +. vov)
                      ~vds:(vov -. 1e-9) in
        let above = Mosfet.evaluate p ~w:10e-6 ~l:1e-6 ~vgs:(p.Mosfet.vt0 +. vov)
                      ~vds:(vov +. 1e-9) in
        check_close 1e-9 "ids continuous" below.Mosfet.ids above.Mosfet.ids);
    Alcotest.test_case "capacitances positive and scale with W" `Quick (fun () ->
        let p = Mosfet.default_nmos in
        let c1 = Mosfet.cgs p ~w:10e-6 ~l:1e-6 in
        let c2 = Mosfet.cgs p ~w:20e-6 ~l:1e-6 in
        Alcotest.(check bool) "positive" true (c1 > 0.0);
        Alcotest.(check bool) "monotone in W" true (c2 > c1));
  ]

(* --------------------------- DC analysis -------------------------- *)

let resistor_divider () =
  Netlist.of_elements
    [
      Netlist.vdc "v1" "in" "0" 10.0;
      Netlist.r "r1" "in" "mid" 1000.0;
      Netlist.r "r2" "mid" "0" 1000.0;
    ]

let dc_tests =
  [
    Alcotest.test_case "resistor divider" `Quick (fun () ->
        let sys = Mna.build (resistor_divider ()) in
        let x = Dc.solve sys in
        (* tolerances account for the intentional 1e-12 S gmin leak *)
        check_close 1e-6 "mid" 5.0 (Mna.node_voltage sys x "mid");
        (* branch current flows in -> 0 through the source: -(10/2k) *)
        check_close 1e-9 "source current" (-5e-3) (Mna.branch_current sys x "v1"));
    Alcotest.test_case "current source into resistor" `Quick (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [ Netlist.idc "i1" "0" "a" 1e-3; Netlist.r "r1" "a" "0" 2000.0 ])
        in
        let x = Dc.solve sys in
        check_close 1e-6 "v = IR" 2.0 (Mna.node_voltage sys x "a"));
    Alcotest.test_case "vcvs gain" `Quick (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vdc "vin" "a" "0" 1.0;
                 Netlist.Vcvs { name = "e1"; p = "b"; n = "0"; cp = "a"; cn = "0"; gain = 5.0 };
                 Netlist.r "rl" "b" "0" 1000.0;
               ])
        in
        let x = Dc.solve sys in
        check_close 1e-9 "amplified" 5.0 (Mna.node_voltage sys x "b"));
    Alcotest.test_case "vccs transconductance" `Quick (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vdc "vin" "a" "0" 2.0;
                 Netlist.Vccs { name = "g1"; p = "0"; n = "b"; cp = "a"; cn = "0"; gm = 1e-3 };
                 Netlist.r "rl" "b" "0" 1000.0;
               ])
        in
        let x = Dc.solve sys in
        (* current 2mA pushed into b through 1k: v = +2 V *)
        check_close 1e-6 "v" 2.0 (Mna.node_voltage sys x "b"));
    Alcotest.test_case "inductor is a DC short" `Quick (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vdc "v1" "a" "0" 3.0;
                 Netlist.l "l1" "a" "b" 1e-3;
                 Netlist.r "r1" "b" "0" 1000.0;
               ])
        in
        let x = Dc.solve sys in
        check_close 1e-9 "no drop" 3.0 (Mna.node_voltage sys x "b");
        check_close 1e-9 "current" 3e-3 (Mna.branch_current sys x "l1"));
    Alcotest.test_case "diode-connected mosfet bias" `Quick (fun () ->
        (* vdd -> R -> diode-connected NMOS: vgs solves the square law *)
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vdc "vdd" "vdd" "0" 5.0;
                 Netlist.r "r1" "vdd" "d" 100e3;
                 Netlist.nmos "m1" ~d:"d" ~g:"d" ~s:"0" ~w:10e-6 ~l:1e-6 ();
               ])
        in
        let x = Dc.solve sys in
        let vgs = Mna.node_voltage sys x "d" in
        Alcotest.(check bool) "above threshold" true (vgs > 0.7 && vgs < 1.5);
        (* KCL: resistor current equals device current per square law *)
        let ir = (5.0 -. vgs) /. 100e3 in
        let op =
          Mosfet.evaluate Mosfet.default_nmos ~w:10e-6 ~l:1e-6 ~vgs ~vds:vgs
        in
        check_close 1e-8 "currents match" ir op.Mosfet.ids);
    Alcotest.test_case "netlist validation" `Quick (fun () ->
        let bad =
          Netlist.of_elements
            [ Netlist.r "r1" "a" "0" 1.0; Netlist.r "r1" "a" "0" 2.0 ]
        in
        (match Netlist.validate bad with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "expected duplicate-name error");
        let negative = Netlist.of_elements [ Netlist.r "r1" "a" "0" (-5.0) ] in
        (match Netlist.validate negative with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "expected non-positive value error"));
  ]

(* --------------------------- AC analysis -------------------------- *)

let ac_tests =
  [
    Alcotest.test_case "rc low-pass -3dB at 1/(2 pi RC)" `Quick (fun () ->
        let r = 1000.0 and c = 1e-6 in
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vac "vin" "in" "0" ~dc:0.0 ~mag:1.0;
                 Netlist.r "r1" "in" "out" r;
                 Netlist.c "c1" "out" "0" c;
               ])
        in
        let op = Dc.solve sys in
        let fc = 1.0 /. (2.0 *. Float.pi *. r *. c) in
        let x = Ac.solve_one sys ~op ~freq:fc in
        let out = x.(Mna.node_index sys "out") in
        check_close 1e-6 "magnitude" (1.0 /. sqrt 2.0) (Complex.norm out);
        check_close 1e-4 "phase -45deg" (-45.0) (Ac.phase_deg out));
    Alcotest.test_case "rl high-pass via inductor branch" `Quick (fun () ->
        let r = 100.0 and l = 1e-3 in
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vac "vin" "in" "0" ~dc:0.0 ~mag:1.0;
                 Netlist.r "r1" "in" "out" r;
                 Netlist.l "l1" "out" "0" l;
               ])
        in
        let op = Dc.solve sys in
        let fc = r /. (2.0 *. Float.pi *. l) in
        let x = Ac.solve_one sys ~op ~freq:fc in
        let out = x.(Mna.node_index sys "out") in
        check_close 1e-6 "corner magnitude" (1.0 /. sqrt 2.0) (Complex.norm out));
    Alcotest.test_case "sweep is monotone for low-pass" `Quick (fun () ->
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vac "vin" "in" "0" ~dc:0.0 ~mag:1.0;
                 Netlist.r "r1" "in" "out" 1000.0;
                 Netlist.c "c1" "out" "0" 1e-6;
               ])
        in
        let op = Dc.solve sys in
        let freqs = Stc_numerics.Interp.logspace 1.0 1e6 25 in
        let pts = Ac.sweep sys ~op ~freqs in
        let mags =
          Array.map (fun (_, z) -> Complex.norm z) (Ac.node_response sys pts "out")
        in
        let ok = ref true in
        for i = 0 to Array.length mags - 2 do
          if mags.(i + 1) > mags.(i) +. 1e-12 then ok := false
        done;
        Alcotest.(check bool) "monotone decreasing" true !ok);
  ]

(* ------------------------- Transient analysis --------------------- *)

let tran_tests =
  [
    Alcotest.test_case "rc step response matches analytic" `Quick (fun () ->
        let r = 1000.0 and c = 1e-6 in
        let tau = r *. c in
        let step =
          Wave.Pulse
            { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 1e-9; fall = 1e-9;
              width = 1.0; period = 0.0 }
        in
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vwave "vin" "in" "0" step;
                 Netlist.r "r1" "in" "out" r;
                 Netlist.c "c1" "out" "0" c;
               ])
        in
        let result = Tran.run sys ~tstop:(5.0 *. tau) ~dt:(tau /. 100.0) in
        let w = Tran.node_waveform sys result "out" in
        let v_at_tau = Waveform.value_at w tau in
        check_close 2e-3 "1 - 1/e" (1.0 -. exp (-1.0)) v_at_tau;
        check_close 2e-3 "5 tau" (1.0 -. exp (-5.0)) (Waveform.final w));
    Alcotest.test_case "rl current rise" `Quick (fun () ->
        let r = 10.0 and l = 1e-3 in
        let tau = l /. r in
        let step =
          Wave.Pulse
            { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 1e-9; fall = 1e-9;
              width = 1.0; period = 0.0 }
        in
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vwave "vin" "in" "0" step;
                 Netlist.r "r1" "in" "a" r;
                 Netlist.l "l1" "a" "0" l;
               ])
        in
        let result = Tran.run sys ~tstop:(5.0 *. tau) ~dt:(tau /. 200.0) in
        let i = Tran.branch_waveform sys result "l1" in
        check_close 2e-3 "asymptote V/R" 0.1 (Waveform.final i));
    Alcotest.test_case "lc trapezoidal preserves oscillation" `Quick (fun () ->
        (* series RLC with tiny R: energy should persist over one period *)
        let l = 1e-3 and c = 1e-6 in
        let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (l *. c)) in
        let step =
          Wave.Pulse
            { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 1e-9; fall = 1e-9;
              width = 1.0; period = 0.0 }
        in
        let sys =
          Mna.build
            (Netlist.of_elements
               [
                 Netlist.vwave "vin" "in" "0" step;
                 Netlist.r "r1" "in" "a" 1.0;
                 Netlist.l "l1" "a" "b" l;
                 Netlist.c "c1" "b" "0" c;
               ])
        in
        let result = Tran.run sys ~tstop:(3.0 /. f0) ~dt:(1.0 /. f0 /. 400.0) in
        let w = Tran.node_waveform sys result "b" in
        let _, peak = Waveform.peak w in
        (* underdamped series RLC doubles the step at the first peak *)
        Alcotest.(check bool) "rings above 1.5" true (peak > 1.5));
  ]

(* ------------------------- Waveform measures ---------------------- *)

let waveform_tests =
  [
    Alcotest.test_case "rise time of a ramp" `Quick (fun () ->
        let w = Array.init 101 (fun i ->
            let t = float_of_int i /. 100.0 in
            (t, Float.min 1.0 (t *. 2.0)))
        in
        (match Waveform.rise_time w with
         | Some rt -> check_close 1e-6 "10-90 over slope 2" 0.4 rt
         | None -> Alcotest.fail "no rise time"));
    Alcotest.test_case "overshoot of damped sinusoid" `Quick (fun () ->
        let w = Array.init 2001 (fun i ->
            let t = float_of_int i /. 100.0 in
            (t, 1.0 -. (exp (-.t) *. cos (5.0 *. t))))
        in
        let os = Waveform.overshoot w in
        Alcotest.(check bool) "positive overshoot" true (os > 0.1 && os < 0.8));
    Alcotest.test_case "settling time" `Quick (fun () ->
        let w = Array.init 2001 (fun i ->
            let t = float_of_int i /. 200.0 in
            (t, 1.0 -. exp (-.t)))
        in
        (match Waveform.settling_time ~band:0.01 w with
         | Some ts -> check_close 0.05 "ln 100" (log 100.0) ts
         | None -> Alcotest.fail "no settling"));
    Alcotest.test_case "slew rate of a ramp" `Quick (fun () ->
        let w = Array.init 101 (fun i ->
            let t = float_of_int i /. 100.0 in
            (t, Float.min 1.0 (t *. 2.0)))
        in
        (match Waveform.slew_rate w with
         | Some s -> check_close 1e-6 "slope" 2.0 s
         | None -> Alcotest.fail "no slew"));
    Alcotest.test_case "zero-step waveform" `Quick (fun () ->
        let w = [| (0.0, 1.0); (1.0, 1.0) |] in
        Alcotest.(check bool) "no rise" true (Waveform.rise_time w = None);
        check_close 0.0 "overshoot 0" 0.0 (Waveform.overshoot w));
  ]

(* ------------------------------ Opamp ----------------------------- *)

let opamp_tests =
  [
    Alcotest.test_case "nominal specs are sane" `Slow (fun () ->
        let v = Measure_opamp.measure Opamp.nominal in
        Alcotest.(check bool) "gain" true
          (v.Measure_opamp.gain > 5000.0 && v.Measure_opamp.gain < 100000.0);
        Alcotest.(check bool) "ugf ~ 2 MHz" true
          (v.Measure_opamp.unity_gain_freq > 1.0 && v.Measure_opamp.unity_gain_freq < 5.0);
        Alcotest.(check bool) "bw < ugf" true
          (v.Measure_opamp.bandwidth_3db < v.Measure_opamp.unity_gain_freq *. 1e6);
        Alcotest.(check bool) "slew positive" true (v.Measure_opamp.slew_rate > 0.0);
        Alcotest.(check bool) "iq ~ 100uA" true
          (v.Measure_opamp.quiescent_current > 50.0
           && v.Measure_opamp.quiescent_current < 250.0);
        Alcotest.(check bool) "cm gain < open-loop gain" true
          (v.Measure_opamp.common_mode_gain < v.Measure_opamp.gain));
    Alcotest.test_case "gain-bandwidth consistency" `Slow (fun () ->
        (* single-pole model: gain * f3db ~ ugf *)
        let v = Measure_opamp.measure Opamp.nominal in
        let gbw = v.Measure_opamp.gain *. v.Measure_opamp.bandwidth_3db in
        let ugf_hz = v.Measure_opamp.unity_gain_freq *. 1e6 in
        Alcotest.(check bool) "within 30%" true
          (gbw > 0.7 *. ugf_hz && gbw < 1.3 *. ugf_hz));
    Alcotest.test_case "slew tracks tail current over cc" `Slow (fun () ->
        let p = Opamp.nominal in
        let v1 = Measure_opamp.measure p in
        let p2 = { p with Stc_circuit.Opamp.cc = p.Stc_circuit.Opamp.cc *. 1.3 } in
        let v2 = Measure_opamp.measure p2 in
        Alcotest.(check bool) "bigger cc slews slower" true
          (v2.Measure_opamp.slew_rate < v1.Measure_opamp.slew_rate));
    Alcotest.test_case "phase margin is healthy and load-sensitive" `Slow
      (fun () ->
        let pm = Measure_opamp.phase_margin Opamp.nominal in
        Alcotest.(check bool) "40..90 degrees" true (pm > 40.0 && pm < 90.0);
        let heavy =
          { Opamp.nominal with Stc_circuit.Opamp.cl =
              Opamp.nominal.Stc_circuit.Opamp.cl *. 3.0 }
        in
        let pm_heavy = Measure_opamp.phase_margin heavy in
        Alcotest.(check bool) "heavier load erodes margin" true (pm_heavy < pm));
    Alcotest.test_case "all benches build and validate" `Quick (fun () ->
        List.iter
          (fun bench ->
            let netlist = Opamp.netlist Opamp.nominal bench in
            match Netlist.validate netlist with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg)
          [ Opamp.Open_loop_gain; Opamp.Common_mode; Opamp.Power_supply;
            Opamp.Unity_small_step 0.1; Opamp.Unity_large_step 4.0;
            Opamp.Short_circuit ]);
  ]

let suites =
  [
    ("circuit.wave", wave_tests);
    ("circuit.mosfet", mosfet_tests);
    ("circuit.dc", dc_tests);
    ("circuit.ac", ac_tests);
    ("circuit.tran", tran_tests);
    ("circuit.waveform", waveform_tests);
    ("circuit.opamp", opamp_tests);
  ]
