(* Tests for the SPICE deck reader/writer. *)

module Spice = Stc_circuit.Spice
module Netlist = Stc_circuit.Netlist
module Wave = Stc_circuit.Wave
module Mosfet = Stc_circuit.Mosfet
module Mna = Stc_circuit.Mna
module Dc = Stc_circuit.Dc

let check_close tol = Alcotest.(check (float tol))

let value_tests =
  [
    Alcotest.test_case "plain numbers" `Quick (fun () ->
        check_close 0.0 "int" 42.0 (Option.get (Spice.parse_value "42"));
        check_close 0.0 "float" 3.5 (Option.get (Spice.parse_value "3.5"));
        check_close 0.0 "exponent" 1500.0 (Option.get (Spice.parse_value "1.5e3"));
        check_close 0.0 "negative" (-2.0) (Option.get (Spice.parse_value "-2")));
    Alcotest.test_case "engineering suffixes" `Quick (fun () ->
        check_close 1e-3 "k" 10e3 (Option.get (Spice.parse_value "10k"));
        check_close 1e-18 "u" 2.2e-6 (Option.get (Spice.parse_value "2.2u"));
        check_close 1e-24 "p" 5e-12 (Option.get (Spice.parse_value "5p"));
        check_close 1e-3 "meg" 5e6 (Option.get (Spice.parse_value "5MEG"));
        check_close 1e-21 "n" 1e-9 (Option.get (Spice.parse_value "1n"));
        check_close 1e-27 "f" 1e-15 (Option.get (Spice.parse_value "1f")));
    Alcotest.test_case "units after suffix ignored" `Quick (fun () ->
        check_close 1e-3 "kohm" 10e3 (Option.get (Spice.parse_value "10kOhm"));
        check_close 1e-9 "volts" 5.0 (Option.get (Spice.parse_value "5V")));
    Alcotest.test_case "garbage rejected" `Quick (fun () ->
        Alcotest.(check bool) "letters" true (Spice.parse_value "abc" = None);
        Alcotest.(check bool) "empty" true (Spice.parse_value "" = None));
  ]

let divider_deck =
  "simple divider\n\
   * a comment line\n\
   V1 in 0 DC 10\n\
   R1 in mid 1k\n\
   R2 mid 0 1k\n\
   .end\n"

let parse_tests =
  [
    Alcotest.test_case "divider parses and solves" `Quick (fun () ->
        match Spice.parse divider_deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          let sys = Mna.build netlist in
          let x = Dc.solve sys in
          check_close 1e-6 "mid" 5.0 (Mna.node_voltage sys x "mid"));
    Alcotest.test_case "continuation lines" `Quick (fun () ->
        let deck = "t\nR1 a 0\n+ 2k\n.end\n" in
        match Spice.parse deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          (match Netlist.find netlist "R1" with
           | Netlist.Resistor { r; _ } -> check_close 0.0 "value" 2000.0 r
           | _ -> Alcotest.fail "expected resistor"));
    Alcotest.test_case "pulse source" `Quick (fun () ->
        let deck = "t\nV1 in 0 PULSE(0 5 1u 10n 10n 2u 5u)\n.end\n" in
        match Spice.parse deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          (match Netlist.find netlist "V1" with
           | Netlist.Vsource { wave = Wave.Pulse { v2; period; _ }; _ } ->
             check_close 0.0 "v2" 5.0 v2;
             check_close 1e-18 "period" 5e-6 period
           | _ -> Alcotest.fail "expected pulse source"));
    Alcotest.test_case "sin and ac" `Quick (fun () ->
        let deck = "t\nV1 in 0 SIN(2.5 0.1 1k) AC 1\n.end\n" in
        match Spice.parse deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          (match Netlist.find netlist "V1" with
           | Netlist.Vsource { wave = Wave.Sine { freq; _ }; ac; _ } ->
             check_close 1e-9 "freq" 1000.0 freq;
             check_close 0.0 "ac" 1.0 ac
           | _ -> Alcotest.fail "expected sine source"));
    Alcotest.test_case "mosfet with model card" `Quick (fun () ->
        let deck =
          "t\n\
           .model mynmos NMOS (vto=0.6 kp=120u lambda=0.05)\n\
           M1 d g 0 0 mynmos W=20u L=2u\n\
           .end\n"
        in
        match Spice.parse deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          (match Netlist.find netlist "M1" with
           | Netlist.Mosfet { model; w; l; _ } ->
             check_close 1e-12 "vt0" 0.6 model.Mosfet.vt0;
             check_close 1e-12 "kp" 120e-6 model.Mosfet.kp;
             check_close 1e-12 "w" 20e-6 w;
             check_close 1e-12 "l" 2e-6 l
           | _ -> Alcotest.fail "expected mosfet"));
    Alcotest.test_case "default models available" `Quick (fun () ->
        let deck = "t\nM1 d g 0 0 pmos W=5u L=1u\n.end\n" in
        match Spice.parse deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          (match Netlist.find netlist "M1" with
           | Netlist.Mosfet { model; _ } ->
             Alcotest.(check bool) "pmos" true (model.Mosfet.kind = Mosfet.Pmos)
           | _ -> Alcotest.fail "expected mosfet"));
    Alcotest.test_case "vcvs and vccs" `Quick (fun () ->
        let deck = "t\nE1 out 0 a b 5\nG1 0 out a b 1m\nR1 out 0 1k\n.end\n" in
        match Spice.parse deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          Alcotest.(check int) "3 elements" 3 (List.length netlist.Netlist.elements));
    Alcotest.test_case "errors carry line numbers" `Quick (fun () ->
        let deck = "t\nR1 a 0 1k\nQ1 c b e model\n.end\n" in
        match Spice.parse deck with
        | Error msg ->
          Alcotest.(check bool) "mentions line 3" true
            (String.length msg >= 6 && String.sub msg 0 6 = "line 3")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "cards after .end ignored" `Quick (fun () ->
        let deck = "t\nR1 a 0 1k\n.end\nR1 a 0 2k\n" in
        match Spice.parse deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          Alcotest.(check int) "one element" 1 (List.length netlist.Netlist.elements));
    Alcotest.test_case "duplicate names rejected via validate" `Quick (fun () ->
        let deck = "t\nR1 a 0 1k\nR1 b 0 2k\n.end\n" in
        match Spice.parse deck with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected duplicate error");
  ]

let roundtrip_tests =
  [
    Alcotest.test_case "opamp bench round-trips" `Quick (fun () ->
        let original =
          Stc_circuit.Opamp.netlist Stc_circuit.Opamp.nominal
            Stc_circuit.Opamp.Open_loop_gain
        in
        let text = Spice.to_string original in
        match Spice.parse text with
        | Error msg -> Alcotest.fail msg
        | Ok reparsed ->
          Alcotest.(check int) "same element count"
            (List.length original.Netlist.elements)
            (List.length reparsed.Netlist.elements);
          (* and it still biases up to the same operating point *)
          let solve netlist =
            let sys = Mna.build netlist in
            let x0 =
              Stc_circuit.Opamp.initial_guess Stc_circuit.Opamp.nominal sys
            in
            let x = Dc.solve ~x0 sys in
            Mna.node_voltage sys x "out"
          in
          check_close 1e-6 "same output bias" (solve original) (solve reparsed));
    Alcotest.test_case "divider round-trips" `Quick (fun () ->
        match Spice.parse divider_deck with
        | Error msg -> Alcotest.fail msg
        | Ok netlist ->
          let text = Spice.to_string ~title:"* rt" netlist in
          (match Spice.parse text with
           | Error msg -> Alcotest.fail msg
           | Ok again ->
             Alcotest.(check int) "count" 3 (List.length again.Netlist.elements)));
  ]

let qtest = QCheck_alcotest.to_alcotest

let property_tests =
  [
    qtest
      (QCheck.Test.make ~name:"printed values re-parse exactly" ~count:300
         QCheck.(float_range (-1e9) 1e9)
         (fun v ->
           match Spice.parse_value (Printf.sprintf "%.17g" v) with
           | Some v' -> v' = v
           | None -> false));
    qtest
      (QCheck.Test.make ~name:"RC decks round-trip through the writer" ~count:50
         QCheck.(pair (float_range 1.0 1e6) (float_range 1e-12 1e-3))
         (fun (r, c) ->
           let netlist =
             Netlist.of_elements
               [
                 Netlist.vdc "v1" "in" "0" 5.0;
                 Netlist.r "r1" "in" "out" r;
                 Netlist.c "c1" "out" "0" c;
               ]
           in
           match Spice.parse (Spice.to_string netlist) with
           | Error _ -> false
           | Ok again ->
             (match (Netlist.find again "r1", Netlist.find again "c1") with
              | Netlist.Resistor { r = r'; _ }, Netlist.Capacitor { c = c'; _ } ->
                r' = r && c' = c
              | _ -> false)));
  ]

let suites =
  [
    ("spice.values", value_tests);
    ("spice.parse", parse_tests);
    ("spice.roundtrip", roundtrip_tests);
    ("spice.properties", property_tests);
  ]
