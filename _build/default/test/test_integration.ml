(* Integration tests: the full paper pipelines at reduced scale.
   The op-amp Monte-Carlo costs ~50 ms per instance, so these suites
   are kept small and marked `Slow where they exceed a second. *)

module Experiment = Stc.Experiment
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Cost = Stc.Cost
module Spec = Stc.Spec
module Order = Stc.Order

let opamp_data = lazy (Experiment.generate_opamp ~seed:101 ~n_train:80 ~n_test:40 ())

let mems_data = lazy (Experiment.generate_mems ~seed:102 ~n_train:400 ~n_test:400 ())

let opamp_tests =
  [
    Alcotest.test_case "calibrated population centred on Table 1" `Slow (fun () ->
        let train, _ = Lazy.force opamp_data in
        let specs = Device_data.specs train in
        (* the median of each calibrated spec should sit well inside its
           acceptability range *)
        Array.iteri
          (fun j spec ->
            let median = Stc_numerics.Stats.median (Device_data.spec_column train j) in
            Alcotest.(check bool)
              (Printf.sprintf "%s median in range" spec.Spec.name)
              true
              (Spec.passes spec median))
          specs);
    Alcotest.test_case "op-amp yield in the paper's regime" `Slow (fun () ->
        let train, test = Lazy.force opamp_data in
        let y_train = Device_data.yield_fraction train in
        let y_test = Device_data.yield_fraction test in
        Alcotest.(check bool) "train yield 50-97%" true (y_train > 0.5 && y_train < 0.97);
        Alcotest.(check bool) "test yield 50-97%" true (y_test > 0.5 && y_test < 0.97));
    Alcotest.test_case "some op-amp tests are redundant" `Slow (fun () ->
        let train, test = Lazy.force opamp_data in
        let result =
          Compaction.greedy
            ~order:(Order.Given Experiment.opamp_examination_order)
            Experiment.opamp_config ~train ~test
        in
        let n_dropped = Array.length result.Compaction.flow.Compaction.dropped in
        Alcotest.(check bool) "drops at least 3 of 11" true (n_dropped >= 3);
        let c = Compaction.evaluate_flow result.Compaction.flow test in
        Alcotest.(check bool) "escape+loss small" true
          (Metrics.prediction_error_pct c <= 5.0));
    Alcotest.test_case "dropping everything is not allowed implicitly" `Slow
      (fun () ->
        let train, test = Lazy.force opamp_data in
        let result =
          Compaction.greedy Experiment.opamp_config ~train ~test
        in
        Alcotest.(check bool) "keeps at least one test" true
          (Array.length result.Compaction.flow.Compaction.kept >= 1));
  ]

let mems_tests =
  [
    Alcotest.test_case "mems yield in the paper's regime" `Quick (fun () ->
        let train, test = Lazy.force mems_data in
        let y_train = Device_data.yield_fraction train in
        let y_test = Device_data.yield_fraction test in
        Alcotest.(check bool) "train yield 60-95%" true (y_train > 0.6 && y_train < 0.95);
        Alcotest.(check bool) "test yield 60-95%" true (y_test > 0.6 && y_test < 0.95));
    Alcotest.test_case "hot and cold tests are predictable" `Quick (fun () ->
        let train, test = Lazy.force mems_data in
        let both =
          Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
        in
        let counts, flow =
          Compaction.eliminate Experiment.mems_config ~train ~test ~dropped:both
        in
        Alcotest.(check int) "keeps the 5 room tests" 5
          (Array.length flow.Compaction.kept);
        Alcotest.(check bool) "escape < 1.5%" true (Metrics.escape_pct counts < 1.5);
        Alcotest.(check bool) "loss < 1.5%" true (Metrics.loss_pct counts < 1.5);
        Alcotest.(check bool) "guard below 20%" true (Metrics.guard_pct counts < 20.0));
    Alcotest.test_case "guard grows with more eliminated temperatures" `Quick
      (fun () ->
        let train, test = Lazy.force mems_data in
        let run dropped =
          let counts, _ =
            Compaction.eliminate Experiment.mems_config ~train ~test ~dropped
          in
          Metrics.guard_pct counts
        in
        let cold = run Experiment.mems_cold_indices in
        let both =
          run (Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices)
        in
        Alcotest.(check bool) "both >= cold" true (both >= cold -. 0.5));
    Alcotest.test_case "tri-temperature cost saving exceeds 40%" `Quick (fun () ->
        let train, test = Lazy.force mems_data in
        let both =
          Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
        in
        let counts, _ =
          Compaction.eliminate Experiment.mems_config ~train ~test ~dropped:both
        in
        let n = counts.Metrics.total in
        (* room_pass: devices passing the room block in the full flow *)
        let room_pass =
          let count = ref 0 in
          for i = 0 to Device_data.n_instances test - 1 do
            if
              Device_data.passes_subset test ~instance:i
                ~subset:(Array.init 5 (fun k -> k))
            then incr count
          done;
          !count
        in
        let r =
          Cost.tri_temperature ~n ~room_pass ~guard:counts.Metrics.guards ()
        in
        Alcotest.(check bool) "saving > 40%" true (r.Cost.saving_pct > 40.0));
    Alcotest.test_case "mems generation deterministic per seed" `Quick (fun () ->
        let a, _ = Experiment.generate_mems ~seed:55 ~n_train:20 ~n_test:5 () in
        let b, _ = Experiment.generate_mems ~seed:55 ~n_train:20 ~n_test:5 () in
        Alcotest.(check (float 0.0)) "same spec value"
          (Device_data.value a ~instance:7 ~spec:3)
          (Device_data.value b ~instance:7 ~spec:3));
  ]

let suites =
  [
    ("integration.opamp", opamp_tests);
    ("integration.mems", mems_tests);
  ]
