examples/mems_tritemp.ml: Array List Printf Stc
