examples/quickstart.mli:
