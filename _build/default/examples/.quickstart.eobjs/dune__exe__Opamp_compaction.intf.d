examples/opamp_compaction.mli:
