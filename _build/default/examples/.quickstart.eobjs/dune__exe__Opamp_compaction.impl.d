examples/opamp_compaction.ml: Array List Printf Stc
