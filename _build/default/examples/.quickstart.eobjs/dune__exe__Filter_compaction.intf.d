examples/filter_compaction.mli:
