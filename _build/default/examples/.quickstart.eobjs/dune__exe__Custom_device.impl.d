examples/custom_device.ml: Array List Printf Stc Stc_numerics Stc_process
