examples/quickstart.ml: Array List Printf Stc Stc_numerics
