examples/filter_compaction.ml: Array Complex Float List Printf Stc Stc_circuit Stc_numerics Stc_process
