examples/mems_tritemp.mli:
