(* Compaction on a third device class: a Sallen-Key low-pass filter,
   defined as a SPICE deck and measured with the AC engine. The two
   stop-band attenuation tests are functions of the cutoff and the
   filter order, so the compaction loop finds them redundant.

     dune exec examples/filter_compaction.exe *)

module Spice = Stc_circuit.Spice
module Mna = Stc_circuit.Mna
module Dc = Stc_circuit.Dc
module Ac = Stc_circuit.Ac
module Roots = Stc_numerics.Roots
module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Report = Stc.Report
module Variation = Stc_process.Variation
module Montecarlo = Stc_process.Montecarlo
module Rng = Stc_numerics.Rng

(* Unity-gain Sallen-Key low-pass, fc ~ 14 kHz, Q ~ 0.71; the buffer is
   a VCVS with large but finite (and process-dependent) gain. *)
let deck ~r1 ~r2 ~c1 ~c2 ~buffer_gain =
  Printf.sprintf
    "sallen-key low-pass\n\
     Vin in 0 DC 0 AC 1\n\
     R1 in x %g\n\
     R2 x y %g\n\
     C1 x out %g\n\
     C2 y 0 %g\n\
     * buffer: out = A (y - out) => out ~ y\n\
     Ebuf out 0 y out %g\n\
     .end\n"
    r1 r2 c1 c2 buffer_gain

let specs =
  [|
    Spec.make ~name:"dc gain" ~unit_label:"-" ~nominal:0.999 ~lower:0.95
      ~upper:1.05;
    Spec.make ~name:"cutoff frequency" ~unit_label:"kHz" ~nominal:14.0
      ~lower:12.7 ~upper:15.4;
    Spec.make ~name:"passband peaking" ~unit_label:"-" ~nominal:1.0 ~lower:0.0
      ~upper:1.03;
    Spec.make ~name:"attenuation @10fc" ~unit_label:"dB" ~nominal:40.0
      ~lower:35.0 ~upper:46.0;
    Spec.make ~name:"attenuation @30fc" ~unit_label:"dB" ~nominal:59.0
      ~lower:53.0 ~upper:65.0;
  |]

let measure params =
  match
    Spice.parse
      (deck ~r1:params.(0) ~r2:params.(1) ~c1:params.(2) ~c2:params.(3)
         ~buffer_gain:params.(4))
  with
  | Error _ -> None
  | Ok netlist ->
    let sys = Mna.build netlist in
    (match Dc.solve sys with
     | exception Dc.No_convergence _ -> None
     | op ->
       let mag freq =
         let x = Ac.solve_one sys ~op ~freq in
         Complex.norm x.(Mna.node_index sys "out")
       in
       let dc_gain = mag 10.0 in
       (* -3 dB crossing *)
       let target = dc_gain /. sqrt 2.0 in
       (match
          Roots.find_bracket (fun lf -> mag (10.0 ** lf) -. target) ~lo:3.0
            ~hi:6.0 ~steps:120
        with
        | None -> None
        | Some (a, b) ->
          let fc = 10.0 ** Roots.brent (fun lf -> mag (10.0 ** lf) -. target) a b in
          (* peaking: max response over the passband relative to DC *)
          let peaking =
            let best = ref 0.0 in
            for i = 0 to 60 do
              let f = 10.0 ** (2.0 +. (float_of_int i /. 60.0 *. (log10 fc -. 2.0))) in
              best := Float.max !best (mag f)
            done;
            !best /. dc_gain
          in
          let attenuation factor =
            20.0 *. log10 (dc_gain /. mag (14e3 *. factor))
          in
          Some
            [| dc_gain; fc /. 1e3; peaking; attenuation 10.0; attenuation 30.0 |]))

let device =
  {
    Montecarlo.device_name = "sallen-key filter";
    params =
      [|
        Variation.uniform_pct "r1" 1.6e3 ~pct:0.10;
        Variation.uniform_pct "r2" 1.6e3 ~pct:0.10;
        Variation.uniform_pct "c1" 10e-9 ~pct:0.10;
        Variation.uniform_pct "c2" 5e-9 ~pct:0.10;
        Variation.uniform_pct "buffer gain" 1000.0 ~pct:0.10;
      |];
    spec_count = Array.length specs;
    simulate = measure;
  }

let () =
  print_endline "simulating 1200 Sallen-Key filter instances via the SPICE deck...";
  let all = Montecarlo.generate (Rng.create 51) device ~n:1200 in
  let train_mc, test_mc = Montecarlo.split all ~at:800 in
  let train = Device_data.of_montecarlo ~specs train_mc in
  let test = Device_data.of_montecarlo ~specs test_mc in
  Printf.printf "train yield %.1f%%, test yield %.1f%%\n\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test);
  let config =
    { Compaction.default_config with Compaction.guard_fraction = 0.005 }
  in
  (* examine the expensive stop-band sweeps first *)
  let result =
    Compaction.greedy ~order:(Stc.Order.Given [| 4; 3; 2; 0; 1 |]) config
      ~train ~test
  in
  List.iter
    (fun s ->
      Printf.printf "candidate %-20s e_p = %.2f%%  %s\n"
        specs.(s.Compaction.spec_index).Spec.name
        (100.0 *. s.Compaction.error)
        (if s.Compaction.accepted then "ELIMINATED" else "kept"))
    result.Compaction.steps;
  let counts = Compaction.evaluate_flow result.Compaction.flow test in
  Printf.printf "\ncompacted flow: escape %s, loss %s, guard %s\n"
    (Report.pct (Metrics.escape_pct counts))
    (Report.pct (Metrics.loss_pct counts))
    (Report.pct (Metrics.guard_pct counts))
