(* The paper's second case study: eliminate the expensive hot (80 °C)
   and cold (−40 °C) MEMS accelerometer tests by predicting them from
   the room-temperature measurements (Tables 2–3, Sec. 5.2 cost).

     dune exec examples/mems_tritemp.exe *)

module Experiment = Stc.Experiment
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Cost = Stc.Cost
module Report = Stc.Report

let () =
  print_endline "simulating 2000 accelerometer instances at three temperatures...";
  let train, test = Experiment.generate_mems ~seed:11 ~n_train:1000 ~n_test:1000 () in
  Printf.printf "train yield %.1f%%, test yield %.1f%% (paper: 77.4%% / 79.3%%)\n\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test);

  let config = Experiment.mems_config in
  let both =
    Array.append Experiment.mems_cold_indices Experiment.mems_hot_indices
  in
  let rows =
    List.map
      (fun (name, dropped) ->
        let counts, _ = Compaction.eliminate config ~train ~test ~dropped in
        ( name,
          counts,
          [
            name;
            Report.pct (Metrics.escape_pct counts);
            Report.pct (Metrics.loss_pct counts);
            Report.pct (Metrics.guard_pct counts);
          ] ))
      [
        ("-40C", Experiment.mems_cold_indices);
        ("80C", Experiment.mems_hot_indices);
        ("both", both);
      ]
  in
  print_string
    (Report.table ~title:"Table 3 reproduction"
       ~header:[ "eliminated"; "escape"; "loss"; "guard band" ]
       (List.map (fun (_, _, row) -> row) rows));

  (* cost of the compacted flow: guard-band devices are fully retested *)
  (match rows with
   | [ _; _; ("both", counts, _) ] ->
     let room = Array.init 5 (fun k -> k) in
     let room_pass = ref 0 in
     for i = 0 to Device_data.n_instances test - 1 do
       if Device_data.passes_subset test ~instance:i ~subset:room then
         incr room_pass
     done;
     let r =
       Cost.tri_temperature ~n:counts.Metrics.total ~room_pass:!room_pass
         ~guard:counts.Metrics.guards ()
     in
     Printf.printf
       "\nat $1 per device per temperature:\n\
        full flow (room + hot + cold on room-passing parts): $%.0f\n\
        compacted (room only; %d guard parts fully retested): $%.0f\n\
        saving %.1f%% (paper: ~54%%)\n"
       r.Cost.full counts.Metrics.guards r.Cost.compacted r.Cost.saving_pct
   | _ -> assert false)
