(* The paper's first case study end-to-end: Monte-Carlo simulate the
   two-stage op-amp through its six test benches, then compact the
   eleven Table 1 specification tests.

   Sized down (300 + 150 instances, ~25 s of MNA simulation); the bench
   harness (bench/main.exe) runs the larger version.

     dune exec examples/opamp_compaction.exe *)

module Experiment = Stc.Experiment
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Order = Stc.Order
module Spec = Stc.Spec
module Report = Stc.Report

let () =
  print_endline "simulating 450 op-amp instances (DC + AC + 2 transients each)...";
  let train, test = Experiment.generate_opamp ~seed:7 ~n_train:300 ~n_test:150 () in
  let specs = Device_data.specs train in
  Printf.printf "train yield %.1f%%, test yield %.1f%% (paper: 75.4%% / 84.8%%)\n\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test);

  (* which specs actually reject devices in this population? *)
  let failures = Order.failure_counts train in
  Array.iteri
    (fun j count ->
      if count > 0 then
        Printf.printf "  %-24s rejects %3d / %d training devices\n"
          specs.(j).Spec.name count
          (Device_data.n_instances train))
    failures;
  print_newline ();

  (* the greedy loop in the paper's functional-analysis order *)
  let result =
    Compaction.greedy
      ~order:(Order.Given Experiment.opamp_examination_order)
      Experiment.opamp_config ~train ~test
  in
  List.iter
    (fun s ->
      Printf.printf "candidate %-24s e_p = %5.2f%%  %s\n"
        specs.(s.Compaction.spec_index).Spec.name
        (100.0 *. s.Compaction.error)
        (if s.Compaction.accepted then "ELIMINATED" else "kept"))
    result.Compaction.steps;

  let flow = result.Compaction.flow in
  Printf.printf "\nremaining tests:";
  Array.iter (fun j -> Printf.printf " %s;" specs.(j).Spec.name) flow.Compaction.kept;
  print_newline ();
  let counts = Compaction.evaluate_flow flow test in
  Printf.printf "compacted flow: escape %s, loss %s, guard band %s\n"
    (Report.pct (Metrics.escape_pct counts))
    (Report.pct (Metrics.loss_pct counts))
    (Report.pct (Metrics.guard_pct counts))
