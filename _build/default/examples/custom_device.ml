(* Using the public API on your own device.

   Any device can be plugged into the compaction flow by providing
   (a) its specification list, (b) a `Stc_process.Montecarlo.device`
   that simulates one instance from a drawn parameter vector. Here we
   model a bandgap voltage reference behaviourally: four underlying
   process parameters produce five correlated specifications, three of
   which turn out to be predictable from the other two.

     dune exec examples/custom_device.exe *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Metrics = Stc.Metrics
module Order = Stc.Order
module Tester = Stc.Tester
module Report = Stc.Report
module Variation = Stc_process.Variation
module Montecarlo = Stc_process.Montecarlo
module Rng = Stc_numerics.Rng

(* Bandgap behavioural model: vref = vbe + k·vt, its temperature
   coefficient, line regulation, startup time and supply current all
   derive from the same four process quantities. *)
let specs =
  [|
    Spec.make ~name:"vref" ~unit_label:"V" ~nominal:1.20 ~lower:1.14 ~upper:1.26;
    Spec.make ~name:"tempco" ~unit_label:"ppm/K" ~nominal:15.0 ~lower:0.0 ~upper:40.0;
    Spec.make ~name:"line regulation" ~unit_label:"mV/V" ~nominal:1.5 ~lower:0.0 ~upper:4.0;
    Spec.make ~name:"startup time" ~unit_label:"us" ~nominal:40.0 ~lower:5.0 ~upper:80.0;
    Spec.make ~name:"supply current" ~unit_label:"uA" ~nominal:28.0 ~lower:18.0 ~upper:38.0;
  |]

let device =
  {
    Montecarlo.device_name = "bandgap reference";
    params =
      [|
        Variation.param "vbe" 0.62 (Variation.Normal_relative 0.02);
        Variation.param "resistor ratio" 22.4 (Variation.Uniform_relative 0.02);
        Variation.param "mirror gain" 1.0 (Variation.Normal_relative 0.03);
        Variation.param "bias current" 4.0e-6 (Variation.Uniform_relative 0.10);
      |];
    spec_count = Array.length specs;
    simulate =
      (fun p ->
        let vbe = p.(0) and ratio = p.(1) and mirror = p.(2) and ibias = p.(3) in
        let vt = 0.02585 in
        let vref = vbe +. (ratio *. vt *. mirror) in
        (* first-order curvature error grows with ratio mismatch *)
        let tempco = 15.0 +. (300.0 *. (vref -. 1.20)) in
        let line_reg = 1.5 /. mirror in
        let startup = 40.0 *. 4.0e-6 /. ibias /. mirror in
        let supply = 1e6 *. ibias *. 7.0 *. mirror in
        Some [| vref; tempco; line_reg; startup; supply |]);
  }

let () =
  let rng = Rng.create 31 in
  let all = Montecarlo.generate rng device ~n:3000 in
  let train_mc, test_mc = Montecarlo.split all ~at:2000 in
  let train = Device_data.of_montecarlo ~specs train_mc in
  let test = Device_data.of_montecarlo ~specs test_mc in
  Printf.printf "bandgap population: train yield %.1f%%, test yield %.1f%%\n\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test);

  let config =
    { Compaction.default_config with Compaction.guard_fraction = 0.005 }
  in
  (* let the data decide the examination order this time *)
  let result = Compaction.greedy ~order:Order.By_correlation config ~train ~test in
  List.iter
    (fun s ->
      Printf.printf "candidate %-16s e_p = %.2f%%  %s\n"
        specs.(s.Compaction.spec_index).Spec.name
        (100.0 *. s.Compaction.error)
        (if s.Compaction.accepted then "ELIMINATED" else "kept"))
    result.Compaction.steps;

  let flow = result.Compaction.flow in
  let counts = Compaction.evaluate_flow flow test in
  Printf.printf "\nflow with %d of %d tests: escape %s, loss %s, guard %s\n"
    (Array.length flow.Compaction.kept)
    (Array.length specs)
    (Report.pct (Metrics.escape_pct counts))
    (Report.pct (Metrics.loss_pct counts))
    (Report.pct (Metrics.guard_pct counts));

  let _, summary = Tester.run flow test in
  Printf.printf
    "production: shipped %d / scrapped %d / %d guard parts fully retested\n"
    summary.Tester.shipped summary.Tester.scrapped summary.Tester.retested
