(* Quickstart: compaction on a synthetic device whose third
   specification is an exact function of the first two (s2 = s0 + s1),
   mirroring the paper's Fig. 3 illustration.

     dune exec examples/quickstart.exe *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Metrics = Stc.Metrics
module Tester = Stc.Tester
module Lookup = Stc.Lookup
module Report = Stc.Report
module Rng = Stc_numerics.Rng

(* 1. Declare the specifications: name, units, nominal, acceptability range. *)
let specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"V" ~nominal:2.0 ~lower:1.3 ~upper:2.5;
  |]

(* 2. Get measured spec values for a population of devices (here
   synthesised directly; in real use they come from Monte-Carlo
   simulation — see the op-amp and MEMS examples). *)
let population seed n =
  let rng = Rng.create seed in
  let values =
    Array.init n (fun _ ->
        let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
        [| a; b; a +. b |])
  in
  Device_data.make ~specs ~values

let () =
  let train = population 1 1500 in
  let test = population 2 1000 in
  Printf.printf "population yield: train %.1f%%, test %.1f%%\n\n"
    (100.0 *. Device_data.yield_fraction train)
    (100.0 *. Device_data.yield_fraction test);

  (* 3. Run the greedy compaction loop (Fig. 2 of the paper). *)
  (* e_T = 3 %: this population is dense near the pass/fail boundary, so
     the redundant test still costs a little prediction error. The
     sharper RBF (γ = 4) resolves the diagonal acceptance band. *)
  let config =
    {
      Compaction.default_config with
      Compaction.guard_fraction = 0.02;
      tolerance = 0.03;
      learner = Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = Some 4.0 };
    }
  in
  (* any one of the three is redundant (s2 = s0 + s1); examine s2 first
     so the expensive test is the one that gets eliminated *)
  let result =
    Compaction.greedy ~order:(Stc.Order.Given [| 2; 0; 1 |]) config ~train ~test
  in
  List.iter
    (fun s ->
      Printf.printf "candidate %-4s prediction error %.2f%% -> %s\n"
        specs.(s.Compaction.spec_index).Spec.name
        (100.0 *. s.Compaction.error)
        (if s.Compaction.accepted then "ELIMINATED" else "kept"))
    result.Compaction.steps;

  (* 4. Evaluate the compacted flow with its guard band. *)
  let flow = result.Compaction.flow in
  let counts = Compaction.evaluate_flow flow test in
  Printf.printf "\ncompacted flow on test data: %s escape, %s loss, %s guard\n"
    (Report.pct (Metrics.escape_pct counts))
    (Report.pct (Metrics.loss_pct counts))
    (Report.pct (Metrics.guard_pct counts));

  (* 5. Deploy: build the tester lookup table (Sec. 3.3) and bin parts. *)
  (match Tester.with_lookup flow ~resolution:48 with
   | None -> print_endline "no model needed (nothing was dropped)"
   | Some table ->
     let good, bad, guard = Lookup.verdict_counts table in
     Printf.printf
       "tester lookup table: %d cells (%d good / %d bad / %d guard)\n"
       (Lookup.cells table) good bad guard);
  let _, summary = Tester.run flow test in
  Printf.printf
    "production run: shipped %d, scrapped %d, retested %d (escapes shipped: %d)\n"
    summary.Tester.shipped summary.Tester.scrapped summary.Tester.retested
    summary.Tester.shipped_bad;

  (* 6. Visualise the derived acceptance region over (s0, s1) — the
     corners where s0 + s1 would violate s2 are carved away (Fig. 3). *)
  let samples = ref [] in
  for i = 0 to 69 do
    for j = 0 to 69 do
      let a = 0.3 +. (1.5 *. float_of_int i /. 69.0) in
      let b = 0.3 +. (1.5 *. float_of_int j /. 69.0) in
      if
        Guard_band.equal_verdict
          (Compaction.flow_verdict flow [| a; b; 0.0 |])
          Guard_band.Good
      then samples := (a, b) :: !samples
    done
  done;
  print_endline "\nderived acceptance region over (s0, s1):";
  print_string (Report.ascii_plot ~width:56 ~height:20 (Array.of_list !samples))
