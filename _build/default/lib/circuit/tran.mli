(** Transient analysis with Newton iteration per time point.

    Integration is trapezoidal for capacitors (accurate ringing /
    settling behaviour) with a backward-Euler option; inductor branches
    always use backward Euler. Time steps are fixed at [dt] but are
    shortened to land exactly on source-waveform breakpoints. *)

type method_ = Backward_euler | Trapezoidal

type options = {
  dt : float;
  method_ : method_;
  newton : Dc.options;
}

val default_options : dt:float -> options
(** Trapezoidal, default Newton settings. *)

type result = {
  times : float array;
  states : Stc_numerics.Vec.t array;  (** one solution vector per time *)
}

exception No_convergence of float
(** Carries the simulation time at which Newton failed. *)

val run : ?options:options -> Mna.t -> tstop:float -> dt:float -> result
(** Runs from a DC operating point at t=0 to [tstop]. [options]
    defaults to [default_options ~dt]. *)

val node_waveform : Mna.t -> result -> Netlist.node -> (float * float) array
(** (time, voltage) samples for one node. *)

val branch_waveform : Mna.t -> result -> string -> (float * float) array
(** (time, current) samples for a voltage-defined element. *)
