type kind = Nmos | Pmos

type params = {
  kind : kind;
  vt0 : float;
  kp : float;
  lambda : float;
  cox : float;
  cov : float;
  cj : float;
}

let default_nmos =
  {
    kind = Nmos;
    vt0 = 0.7;
    kp = 110e-6;
    lambda = 0.04;
    cox = 3.8e-3;
    cov = 0.35e-9;
    cj = 0.9e-9;
  }

let default_pmos =
  {
    kind = Pmos;
    vt0 = 0.8;
    kp = 38e-6;
    lambda = 0.05;
    cox = 3.8e-3;
    cov = 0.35e-9;
    cj = 1.1e-9;
  }

type op = {
  ids : float;
  gm : float;
  gds : float;
  vgs : float;
  vds : float;
  region : [ `Cutoff | `Triode | `Saturation ];
}

(* Evaluate the NMOS equations on (possibly mirrored) voltages; a small
   subthreshold conductance keeps the Jacobian nonsingular in cutoff. *)
let eval_nmos p ~beta ~vgs ~vds =
  let vov = vgs -. p.vt0 in
  if vov <= 0.0 then
    let gleak = 1e-12 in
    { ids = gleak *. vds; gm = 0.0; gds = gleak; vgs; vds; region = `Cutoff }
  else if vds < vov then begin
    (* triode *)
    let clm = 1.0 +. (p.lambda *. vds) in
    let ids = beta *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. clm in
    let gm = beta *. vds *. clm in
    let gds =
      (beta *. (vov -. vds) *. clm)
      +. (beta *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. p.lambda)
    in
    { ids; gm; gds; vgs; vds; region = `Triode }
  end
  else begin
    (* saturation *)
    let clm = 1.0 +. (p.lambda *. vds) in
    let ids = 0.5 *. beta *. vov *. vov *. clm in
    let gm = beta *. vov *. clm in
    let gds = 0.5 *. beta *. vov *. vov *. p.lambda in
    { ids; gm; gds; vgs; vds; region = `Saturation }
  end

let evaluate p ~w ~l ~vgs ~vds =
  assert (w > 0.0 && l > 0.0);
  let beta = p.kp *. w /. l in
  match p.kind with
  | Nmos -> eval_nmos p ~beta ~vgs ~vds
  | Pmos ->
    (* mirror voltages, evaluate as NMOS, mirror the current back *)
    let op = eval_nmos p ~beta ~vgs:(-.vgs) ~vds:(-.vds) in
    { op with ids = -.op.ids; vgs; vds }

let cgs p ~w ~l = ((2.0 /. 3.0) *. w *. l *. p.cox) +. (p.cov *. w)

let cgd p ~w ~l =
  ignore l;
  p.cov *. w

let cdb p ~w ~l =
  ignore l;
  p.cj *. w
