module Vec = Stc_numerics.Vec

type params = {
  w1 : float; l1 : float;
  w3 : float; l3 : float;
  w5 : float; l5 : float;
  w6 : float; l6 : float;
  w7 : float; l7 : float;
  w8 : float; l8 : float;
  cc : float;
  cl : float;
  rz : float;
  ibias : float;
  vdd : float;
  vcm : float;
}

(* Channel-length modulation raised above the library default so the
   open-loop gain lands near the paper's nominal of 14000. *)
let nmos_model = { Mosfet.default_nmos with lambda = 0.10 }
let pmos_model = { Mosfet.default_pmos with lambda = 0.12 }

let nominal =
  {
    w1 = 18e-6; l1 = 1e-6;
    w3 = 2e-6; l3 = 1e-6;
    w5 = 4e-6; l5 = 1e-6;
    w6 = 182e-6; l6 = 1e-6;
    w7 = 182e-6; l7 = 1e-6;
    w8 = 4e-6; l8 = 1e-6;
    cc = 5e-12;
    cl = 40e-12;
    rz = 850.0;
    ibias = 2.2e-6;
    vdd = 5.0;
    vcm = 2.5;
  }

type bench =
  | Open_loop_gain
  | Common_mode
  | Power_supply
  | Unity_small_step of float
  | Unity_large_step of float
  | Short_circuit

(* The amplifier core. [inm] is the name of the node wired to the
   inverting-input gate, so unity-feedback benches can pass "out". *)
let core p ~inm =
  let open Netlist in
  [
    nmos "m1" ~d:"d1" ~g:inm ~s:"tail" ~model:nmos_model ~w:p.w1 ~l:p.l1 ();
    nmos "m2" ~d:"d2" ~g:"inp" ~s:"tail" ~model:nmos_model ~w:p.w1 ~l:p.l1 ();
    pmos "m3" ~d:"d1" ~g:"d1" ~s:"vdd" ~model:pmos_model ~w:p.w3 ~l:p.l3 ();
    pmos "m4" ~d:"d2" ~g:"d1" ~s:"vdd" ~model:pmos_model ~w:p.w3 ~l:p.l3 ();
    nmos "m5" ~d:"tail" ~g:"bias" ~s:"0" ~model:nmos_model ~w:p.w5 ~l:p.l5 ();
    pmos "m6" ~d:"out" ~g:"d2" ~s:"vdd" ~model:pmos_model ~w:p.w6 ~l:p.l6 ();
    nmos "m7" ~d:"out" ~g:"bias" ~s:"0" ~model:nmos_model ~w:p.w7 ~l:p.l7 ();
    nmos "m8" ~d:"bias" ~g:"bias" ~s:"0" ~model:nmos_model ~w:p.w8 ~l:p.l8 ();
    Isource { name = "iref"; p = "vdd"; n = "bias"; wave = Wave.Dc p.ibias; ac = 0.0 };
    r "rz" "d2" "cz" p.rz;
    c "cc" "cz" "out" p.cc;
    c "cl" "out" "0" p.cl;
  ]

(* Values for the DC-servo bias network: the inductor closes the loop at
   DC only; the capacitor AC-grounds the inverting input. *)
let l_servo = 1e7
let c_servo = 1e-2

let netlist p bench =
  let open Netlist in
  let supply ac = Vsource { name = "vdd"; p = "vdd"; n = "0"; wave = Wave.Dc p.vdd; ac } in
  let elements =
    match bench with
    | Open_loop_gain ->
      supply 0.0
      :: vac "vip" "inp" "0" ~dc:p.vcm ~mag:1.0
      :: l "lfb" "out" "inm" l_servo
      :: c "cbig" "inm" "0" c_servo
      :: core p ~inm:"inm"
    | Common_mode ->
      supply 0.0
      :: vac "vip" "inp" "0" ~dc:p.vcm ~mag:1.0
      :: vac "vacm" "vx" "0" ~dc:0.0 ~mag:1.0
      :: l "lfb" "out" "inm" l_servo
      :: c "cbig" "inm" "vx" c_servo
      :: core p ~inm:"inm"
    | Power_supply ->
      supply 1.0
      :: vdc "vip" "inp" "0" p.vcm
      :: l "lfb" "out" "inm" l_servo
      :: c "cbig" "inm" "0" c_servo
      :: core p ~inm:"inm"
    | Unity_small_step amplitude ->
      let wave =
        Wave.Pulse
          {
            v1 = p.vcm -. (amplitude /. 2.0);
            v2 = p.vcm +. (amplitude /. 2.0);
            delay = 0.2e-6;
            rise = 10e-9;
            fall = 10e-9;
            width = 1.0;
            period = 0.0;
          }
      in
      supply 0.0 :: vwave "vip" "inp" "0" wave :: core p ~inm:"out"
    | Unity_large_step amplitude ->
      let wave =
        Wave.Pulse
          {
            v1 = p.vcm -. (amplitude /. 2.0);
            v2 = p.vcm +. (amplitude /. 2.0);
            delay = 0.5e-6;
            rise = 50e-9;
            fall = 50e-9;
            width = 1.0;
            period = 0.0;
          }
      in
      supply 0.0 :: vwave "vip" "inp" "0" wave :: core p ~inm:"out"
    | Short_circuit ->
      supply 0.0
      :: vdc "vip" "inp" "0" (p.vcm +. 1.0)
      :: vdc "vshort" "out" "0" p.vcm
      :: core p ~inm:"out"
  in
  of_elements elements

let initial_guess p sys =
  let x = Vec.create (Mna.size sys) 0.0 in
  let preset node value =
    match Mna.node_index sys node with
    | exception Not_found -> ()
    | -1 -> ()
    | i -> x.(i) <- value
  in
  preset "vdd" p.vdd;
  preset "inp" p.vcm;
  preset "inm" p.vcm;
  preset "out" p.vcm;
  preset "cz" p.vcm;
  preset "bias" 0.85;
  preset "tail" (p.vcm -. 0.9);
  preset "d1" (p.vdd -. 1.0);
  preset "d2" (p.vdd -. 1.0);
  x
