type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sine of { offset : float; amplitude : float; freq : float; phase : float }
  | Pwl of (float * float) array

let pulse_value p t =
  match p with
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
    if t < delay then v1
    else begin
      let tp =
        if period > 0.0 && Float.is_finite period then
          Float.rem (t -. delay) period
        else t -. delay
      in
      if tp < rise then
        if rise <= 0.0 then v2 else v1 +. ((v2 -. v1) *. tp /. rise)
      else if tp < rise +. width then v2
      else if tp < rise +. width +. fall then
        if fall <= 0.0 then v1
        else v2 +. ((v1 -. v2) *. (tp -. rise -. width) /. fall)
      else v1
    end
  | Dc _ | Sine _ | Pwl _ -> assert false

let value w t =
  match w with
  | Dc v -> v
  | Pulse _ -> pulse_value w t
  | Sine { offset; amplitude; freq; phase } ->
    offset +. (amplitude *. sin ((2.0 *. Float.pi *. freq *. t) +. phase))
  | Pwl points -> Stc_numerics.Interp.linear points t

let dc_value w = value w 0.0

let breakpoints w ~tmax =
  match w with
  | Dc _ -> []
  | Sine _ -> []
  | Pwl points ->
    Array.to_list points
    |> List.filter_map (fun (t, _) -> if t > 0.0 && t <= tmax then Some t else None)
  | Pulse { delay; rise; fall; width; period; _ } ->
    let edges_one t0 =
      [ t0; t0 +. rise; t0 +. rise +. width; t0 +. rise +. width +. fall ]
    in
    let rec collect t0 acc =
      if t0 > tmax then acc
      else begin
        let acc = List.rev_append (edges_one t0) acc in
        if period > 0.0 && Float.is_finite period then collect (t0 +. period) acc
        else acc
      end
    in
    collect delay []
    |> List.filter (fun t -> t > 0.0 && t <= tmax)
    |> List.sort_uniq compare
