(** The two-stage Miller-compensated CMOS op-amp used as the paper's
    first device under test, together with the test-bench circuits
    from which its eleven specifications are measured.

    Topology (Allen–Holberg style): NMOS differential pair (m1/m2) with
    PMOS mirror load (m3/m4) and NMOS tail (m5), PMOS common-source
    second stage (m6) with NMOS current-sink load (m7), diode-connected
    bias device (m8) fed by an ideal reference current, Miller
    compensation capacitor [cc] with nulling resistor [rz], load
    capacitor [cl]. *)

type params = {
  (* device geometry, metres *)
  w1 : float; l1 : float;   (** diff pair m1/m2 *)
  w3 : float; l3 : float;   (** mirror load m3/m4 *)
  w5 : float; l5 : float;   (** tail m5 *)
  w6 : float; l6 : float;   (** second stage m6 (PMOS) *)
  w7 : float; l7 : float;   (** output sink m7 *)
  w8 : float; l8 : float;   (** bias diode m8 *)
  cc : float;               (** compensation capacitor, F *)
  cl : float;               (** load capacitor, F *)
  rz : float;               (** nulling resistor, Ω *)
  ibias : float;            (** reference current, A *)
  vdd : float;              (** supply, V *)
  vcm : float;              (** input common mode, V *)
}

val nominal : params
(** Sizing that lands near the paper's Table 1 nominal column. *)

type bench =
  | Open_loop_gain    (** inverting input AC-grounded, DC servo via huge L *)
  | Common_mode      (** both inputs driven by the same AC phasor *)
  | Power_supply     (** AC source on VDD, inputs AC-grounded *)
  | Unity_small_step of float  (** step amplitude, V: overshoot/settling *)
  | Unity_large_step of float  (** step amplitude, V: slew/rise *)
  | Short_circuit    (** output clamped to VCM, input overdriven *)

val netlist : params -> bench -> Netlist.t
(** Builds the amplifier embedded in the requested test bench. Node
    ["out"] is the output; the supply source is named ["vdd"]; the
    output clamp in [Short_circuit] is named ["vshort"]. *)

val initial_guess : params -> Mna.t -> Stc_numerics.Vec.t
(** A bias-aware Newton starting point (supply and common-mode nodes
    preset), which makes the high-gain DC servo loops converge
    reliably. *)
