module Cmat = Stc_numerics.Cmat

type point = { freq : float; solution : Complex.t array }

let solve_at g c b freq =
  let omega = 2.0 *. Float.pi *. freq in
  let a = Cmat.combine g c omega in
  Cmat.solve a b

let sweep sys ~op ~freqs =
  let g, c, b = Mna.ac_matrices sys ~op in
  Array.map (fun freq -> { freq; solution = solve_at g c b freq }) freqs

let solve_one sys ~op ~freq =
  let g, c, b = Mna.ac_matrices sys ~op in
  solve_at g c b freq

let node_response sys points node =
  let idx = Mna.node_index sys node in
  Array.map
    (fun { freq; solution } ->
      let z = if idx < 0 then Complex.zero else solution.(idx) in
      (freq, z))
    points

let magnitude = Complex.norm

let db z =
  let m = Complex.norm z in
  if m <= 0.0 then Float.neg_infinity else 20.0 *. log10 m

let phase_deg z = Complex.arg z *. 180.0 /. Float.pi
