(** Measurements over sampled waveforms [(time, value)] — the analysis
    layer a bench engineer would call "measure statements". *)

type t = (float * float) array

val value_at : t -> float -> float
(** Linear interpolation, clamped at the ends. *)

val initial : t -> float
val final : t -> float

val rise_time :
  ?low_frac:float -> ?high_frac:float -> t -> float option
(** 10 %→90 % (defaults) transition time between the initial and final
    values. [None] if the waveform never crosses the thresholds. *)

val overshoot : t -> float
(** (peak − final) / |step|, where step = final − initial; 0 when the
    waveform never exceeds its final value or the step is zero. *)

val settling_time : ?band:float -> t -> float option
(** Time after which the waveform stays within [band] (default 0.01,
    i.e. ±1 %) of the final value, relative to the step magnitude.
    Measured from t = 0. *)

val max_slope : t -> float
(** Maximum |dv/dt| between consecutive samples. *)

val slew_rate : t -> float option
(** Average slope between the 20 % and 80 % crossings of the step — the
    robust large-signal slew measurement (immune to edge feedthrough
    spikes). [None] when the waveform never crosses the levels. *)

val peak : t -> float * float
(** (time, value) of the maximum value. *)

val crossing_time :
  t -> level:float -> direction:[ `Rising | `Falling | `Any ] -> float option
