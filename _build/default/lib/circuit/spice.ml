let suffix_scale suffix =
  let s = String.lowercase_ascii suffix in
  if s = "" then Some 1.0
  else if String.length s >= 3 && String.sub s 0 3 = "meg" then Some 1e6
  else
    match s.[0] with
    | 'f' -> Some 1e-15
    | 'p' -> Some 1e-12
    | 'n' -> Some 1e-9
    | 'u' -> Some 1e-6
    | 'm' -> Some 1e-3
    | 'k' -> Some 1e3
    | 'g' -> Some 1e9
    | 't' -> Some 1e12
    | 'a' .. 'e' | 'h' .. 'j' | 'l' | 'o' .. 's' | 'v' .. 'z' ->
      (* a bare unit like "ohm" or "v": no scaling *)
      Some 1.0
    | '0' .. '9' | _ -> None

let parse_value text =
  let n = String.length text in
  if n = 0 then None
  else begin
    (* longest numeric prefix, treating e/E as an exponent only when
       followed by a digit or sign *)
    let rec numeric_end i =
      if i >= n then i
      else
        match text.[i] with
        | '0' .. '9' | '.' -> numeric_end (i + 1)
        | '+' | '-' when i = 0 -> numeric_end (i + 1)
        | ('e' | 'E')
          when i + 1 < n
               && (match text.[i + 1] with
                   | '0' .. '9' -> true
                   | ('+' | '-')
                     when i + 2 < n
                          && (match text.[i + 2] with '0' .. '9' -> true | _ -> false)
                     ->
                     true
                   | _ -> false) ->
          (* skip the exponent marker and optional sign *)
          let j = if text.[i + 1] = '+' || text.[i + 1] = '-' then i + 2 else i + 1 in
          numeric_end j
        | _ -> i
    in
    let stop = numeric_end 0 in
    if stop = 0 then None
    else
      match float_of_string_opt (String.sub text 0 stop) with
      | None -> None
      | Some base ->
        (match suffix_scale (String.sub text stop (n - stop)) with
         | None -> None
         | Some scale -> Some (base *. scale))
  end

(* ------------------------------ parsing --------------------------- *)

type model_card = { kind : Mosfet.kind; vt0 : float; kp : float; lambda : float }

let logical_lines text =
  (* split, join + continuations, drop comments/blank; keep line numbers *)
  let raw = String.split_on_char '\n' text in
  let numbered = List.mapi (fun i line -> (i + 1, String.trim line)) raw in
  let rec join acc = function
    | [] -> List.rev acc
    | (num, line) :: rest ->
      if line = "" || line.[0] = '*' then join acc rest
      else if line.[0] = '+' then begin
        match acc with
        | (anum, aline) :: acc_rest ->
          join ((anum, aline ^ " " ^ String.sub line 1 (String.length line - 1)) :: acc_rest) rest
        | [] -> join acc rest (* stray continuation: ignore *)
      end
      else join ((num, line) :: acc) rest
  in
  join [] numbered

let tokenize line =
  (* parentheses and '=' become spaces so PULSE(...) and W=10u split *)
  let cleaned =
    String.map (fun c -> match c with '(' | ')' | '=' | ',' -> ' ' | _ -> c) line
  in
  String.split_on_char ' ' cleaned |> List.filter (fun t -> t <> "")

exception Parse_error of int * string

let fail num fmt = Printf.ksprintf (fun s -> raise (Parse_error (num, s))) fmt

let value_exn num token =
  match parse_value token with
  | Some v -> v
  | None -> fail num "bad numeric value %S" token

(* source card tail: [DC v] [AC mag] [PULSE ...|SIN ...|PWL ...] or bare value *)
let parse_source num tail =
  let dc = ref 0.0 and ac = ref 0.0 and wave = ref None in
  (* split the numeric prefix of a token list (waveform parameters stop
     at the next keyword, e.g. "SIN(...) AC 1") *)
  let numeric_prefix tokens =
    let rec go acc = function
      | token :: rest when parse_value token <> None ->
        go (value_exn num token :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    go [] tokens
  in
  let rec consume = function
    | [] -> ()
    | token :: rest ->
      (match String.lowercase_ascii token with
       | "dc" ->
         (match rest with
          | v :: rest' ->
            dc := value_exn num v;
            consume rest'
          | [] -> fail num "DC without value")
       | "ac" ->
         (match rest with
          | v :: rest' ->
            ac := value_exn num v;
            consume rest'
          | [] -> fail num "AC without value")
       | "pulse" ->
         let values, rest' = numeric_prefix rest in
         (match values with
          | [ v1; v2; delay; rise; fall; width ] ->
            wave := Some (Wave.Pulse { v1; v2; delay; rise; fall; width; period = 0.0 })
          | [ v1; v2; delay; rise; fall; width; period ] ->
            wave := Some (Wave.Pulse { v1; v2; delay; rise; fall; width; period })
          | _ -> fail num "PULSE needs 6 or 7 parameters");
         consume rest'
       | "sin" ->
         let values, rest' = numeric_prefix rest in
         (match values with
          | [ offset; amplitude; freq ] | [ offset; amplitude; freq; _ ] ->
            wave := Some (Wave.Sine { offset; amplitude; freq; phase = 0.0 })
          | _ -> fail num "SIN needs 3 or 4 parameters");
         consume rest'
       | "pwl" ->
         let values, rest' = numeric_prefix rest in
         let rec pairs = function
           | [] -> []
           | t :: v :: more -> (t, v) :: pairs more
           | [ _ ] -> fail num "PWL needs an even number of values"
         in
         wave := Some (Wave.Pwl (Array.of_list (pairs values)));
         consume rest'
       | _ ->
         (* bare leading number = DC *)
         dc := value_exn num token;
         consume rest)
  in
  consume tail;
  let wave = match !wave with Some w -> w | None -> Wave.Dc !dc in
  (* an explicit DC with a wave is unusual; the wave wins, as in SPICE *)
  (wave, !ac)

let parse_model num tokens =
  match tokens with
  | name :: kind :: params ->
    let kind =
      match String.lowercase_ascii kind with
      | "nmos" -> Mosfet.Nmos
      | "pmos" -> Mosfet.Pmos
      | other -> fail num "unknown model type %S" other
    in
    let base =
      match kind with
      | Mosfet.Nmos -> Mosfet.default_nmos
      | Mosfet.Pmos -> Mosfet.default_pmos
    in
    let card = ref { kind; vt0 = base.Mosfet.vt0; kp = base.Mosfet.kp;
                     lambda = base.Mosfet.lambda }
    in
    let rec assign = function
      | [] -> ()
      | key :: v :: rest ->
        let value = value_exn num v in
        (match String.lowercase_ascii key with
         | "vto" | "vt0" -> card := { !card with vt0 = Float.abs value }
         | "kp" -> card := { !card with kp = value }
         | "lambda" -> card := { !card with lambda = value }
         | "level" -> ()
         | other -> fail num "unknown model parameter %S" other);
        assign rest
      | [ key ] -> fail num "model parameter %S without value" key
    in
    assign params;
    (String.lowercase_ascii name, !card)
  | _ -> fail num ".model needs a name and a type"

let mosfet_params models num name =
  match List.assoc_opt (String.lowercase_ascii name) models with
  | Some card ->
    let base =
      match card.kind with
      | Mosfet.Nmos -> Mosfet.default_nmos
      | Mosfet.Pmos -> Mosfet.default_pmos
    in
    { base with Mosfet.vt0 = card.vt0; kp = card.kp; lambda = card.lambda }
  | None ->
    (match String.lowercase_ascii name with
     | "nmos" -> Mosfet.default_nmos
     | "pmos" -> Mosfet.default_pmos
     | other -> fail num "undefined model %S" other)

let parse text =
  let lines = logical_lines text in
  (* the first logical line is the title unless it looks like a card *)
  let is_card line =
    match line.[0] with
    | 'r' | 'R' | 'c' | 'C' | 'l' | 'L' | 'v' | 'V' | 'i' | 'I' | 'e' | 'E'
    | 'g' | 'G' | 'm' | 'M' | '.' ->
      true
    | _ -> false
  in
  let lines =
    match lines with
    | (_, first) :: rest when not (is_card first) -> rest
    | other -> other
  in
  try
    (* first pass: models *)
    let models =
      List.filter_map
        (fun (num, line) ->
          match tokenize line with
          | directive :: rest when String.lowercase_ascii directive = ".model" ->
            Some (parse_model num rest)
          | _ -> None)
        lines
    in
    let elements = ref [] in
    let stopped = ref false in
    List.iter
      (fun (num, line) ->
        if not !stopped then begin
          match tokenize line with
          | [] -> ()
          | name :: args ->
            let lower = String.lowercase_ascii name in
            if lower = ".end" then stopped := true
            else if String.length lower >= 6 && String.sub lower 0 6 = ".model" then ()
            else if lower.[0] = '.' then fail num "unsupported directive %S" name
            else begin
              let element =
                match (lower.[0], args) with
                | 'r', [ p; n; v ] -> Netlist.r name p n (value_exn num v)
                | 'c', [ p; n; v ] -> Netlist.c name p n (value_exn num v)
                | 'l', [ p; n; v ] -> Netlist.l name p n (value_exn num v)
                | 'v', p :: n :: tail ->
                  let wave, ac = parse_source num tail in
                  Netlist.Vsource { name; p; n; wave; ac }
                | 'i', p :: n :: tail ->
                  let wave, ac = parse_source num tail in
                  Netlist.Isource { name; p; n; wave; ac }
                | 'e', [ p; n; cp; cn; gain ] ->
                  Netlist.Vcvs { name; p; n; cp; cn; gain = value_exn num gain }
                | 'g', [ p; n; cp; cn; gm ] ->
                  Netlist.Vccs { name; p; n; cp; cn; gm = value_exn num gm }
                | 'm', d :: g :: s :: rest ->
                  (* optional bulk terminal: detect by checking whether
                     the 4th token is followed by a model name (i.e. the
                     list has >= 2 entries before W/L pairs) *)
                  let bulk_dropped =
                    match rest with
                    | b :: model :: _
                      when (match String.lowercase_ascii model with
                            | "w" | "l" -> false
                            | _ -> parse_value b = None || parse_value model = None)
                           && String.lowercase_ascii b <> "w"
                           && String.lowercase_ascii b <> "l" ->
                      (* b looks like a node, model like a model name *)
                      List.tl rest
                    | _ -> rest
                  in
                  (match bulk_dropped with
                   | model :: wl ->
                     let w = ref 10e-6 and l_ = ref 1e-6 in
                     let rec assign = function
                       | [] -> ()
                       | key :: v :: rest' ->
                         (match String.lowercase_ascii key with
                          | "w" -> w := value_exn num v
                          | "l" -> l_ := value_exn num v
                          | other -> fail num "unknown MOS parameter %S" other);
                         assign rest'
                       | [ k ] -> fail num "MOS parameter %S without value" k
                     in
                     assign wl;
                     Netlist.Mosfet
                       {
                         name;
                         d;
                         g;
                         s;
                         model = mosfet_params models num model;
                         w = !w;
                         l = !l_;
                       }
                   | [] -> fail num "MOS card needs a model")
                | ('r' | 'c' | 'l' | 'e' | 'g' | 'm'), _ ->
                  fail num "wrong number of arguments for %S" name
                | _ -> fail num "unknown element %S" name
              in
              elements := element :: !elements
            end
        end)
      lines;
    let netlist = Netlist.of_elements (List.rev !elements) in
    (match Netlist.validate netlist with
     | Ok () -> Ok netlist
     | Error msg -> Error msg)
  with Parse_error (num, msg) -> Error (Printf.sprintf "line %d: %s" num msg)

(* ------------------------------ writing --------------------------- *)

(* shortest representation that re-parses to exactly the same float *)
let num v =
  let short = Printf.sprintf "%g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let format_wave buffer wave ac =
  (match wave with
   | Wave.Dc v -> Buffer.add_string buffer (Printf.sprintf " DC %s" (num v))
   | Wave.Pulse { v1; v2; delay; rise; fall; width; period } ->
     Buffer.add_string buffer
       (Printf.sprintf " PULSE(%s %s %s %s %s %s %s)" (num v1) (num v2)
          (num delay) (num rise) (num fall) (num width) (num period))
   | Wave.Sine { offset; amplitude; freq; phase = _ } ->
     Buffer.add_string buffer
       (Printf.sprintf " SIN(%s %s %s)" (num offset) (num amplitude) (num freq))
   | Wave.Pwl points ->
     Buffer.add_string buffer " PWL(";
     Array.iteri
       (fun i (t, v) ->
         if i > 0 then Buffer.add_char buffer ' ';
         Buffer.add_string buffer (Printf.sprintf "%s %s" (num t) (num v)))
       points;
     Buffer.add_char buffer ')');
  if ac <> 0.0 then Buffer.add_string buffer (Printf.sprintf " AC %s" (num ac))

let to_string ?(title = "* netlist written by stc_circuit") netlist =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer title;
  Buffer.add_char buffer '\n';
  (* collect distinct MOS models and emit .model cards *)
  let models = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match e with
      | Netlist.Mosfet { model; _ } ->
        let key =
          Printf.sprintf "m_%s_%g_%g_%g"
            (match model.Mosfet.kind with Mosfet.Nmos -> "n" | Mosfet.Pmos -> "p")
            model.Mosfet.vt0 model.Mosfet.kp model.Mosfet.lambda
        in
        if not (Hashtbl.mem models key) then Hashtbl.add models key model
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
      | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Vcvs _ | Netlist.Vccs _ ->
        ())
    netlist.Netlist.elements;
  Hashtbl.iter
    (fun key model ->
      Buffer.add_string buffer
        (Printf.sprintf ".model %s %s (vto=%g kp=%g lambda=%g)\n" key
           (match model.Mosfet.kind with Mosfet.Nmos -> "NMOS" | Mosfet.Pmos -> "PMOS")
           model.Mosfet.vt0 model.Mosfet.kp model.Mosfet.lambda))
    models;
  let model_key model =
    Printf.sprintf "m_%s_%g_%g_%g"
      (match model.Mosfet.kind with Mosfet.Nmos -> "n" | Mosfet.Pmos -> "p")
      model.Mosfet.vt0 model.Mosfet.kp model.Mosfet.lambda
  in
  List.iter
    (fun e ->
      (match e with
       | Netlist.Resistor { name; p; n; r } ->
         Buffer.add_string buffer (Printf.sprintf "%s %s %s %s" name p n (num r))
       | Netlist.Capacitor { name; p; n; c } ->
         Buffer.add_string buffer (Printf.sprintf "%s %s %s %s" name p n (num c))
       | Netlist.Inductor { name; p; n; l } ->
         Buffer.add_string buffer (Printf.sprintf "%s %s %s %s" name p n (num l))
       | Netlist.Vsource { name; p; n; wave; ac } ->
         Buffer.add_string buffer (Printf.sprintf "%s %s %s" name p n);
         format_wave buffer wave ac
       | Netlist.Isource { name; p; n; wave; ac } ->
         Buffer.add_string buffer (Printf.sprintf "%s %s %s" name p n);
         format_wave buffer wave ac
       | Netlist.Vcvs { name; p; n; cp; cn; gain } ->
         Buffer.add_string buffer
           (Printf.sprintf "%s %s %s %s %s %s" name p n cp cn (num gain))
       | Netlist.Vccs { name; p; n; cp; cn; gm } ->
         Buffer.add_string buffer
           (Printf.sprintf "%s %s %s %s %s %s" name p n cp cn (num gm))
       | Netlist.Mosfet { name; d; g; s; model; w; l } ->
         Buffer.add_string buffer
           (Printf.sprintf "%s %s %s %s %s %s W=%s L=%s" name d g s s
              (model_key model) (num w) (num l)));
      Buffer.add_char buffer '\n')
    netlist.Netlist.elements;
  Buffer.add_string buffer ".end\n";
  Buffer.contents buffer
