module Vec = Stc_numerics.Vec
module Mat = Stc_numerics.Mat
module Lu = Stc_numerics.Lu

type method_ = Backward_euler | Trapezoidal

type options = {
  dt : float;
  method_ : method_;
  newton : Dc.options;
}

let default_options ~dt = { dt; method_ = Trapezoidal; newton = Dc.default_options }

type result = {
  times : float array;
  states : Vec.t array;
}

exception No_convergence of float

type cap_state = {
  cap : Mna.cap;
  mutable v_prev : float;
  mutable i_prev : float;
}

let cap_voltage x (c : Mna.cap) =
  let vp = if c.Mna.cp >= 0 then x.(c.Mna.cp) else 0.0 in
  let vn = if c.Mna.cn >= 0 then x.(c.Mna.cn) else 0.0 in
  vp -. vn

(* companion conductance and rhs current for one capacitor *)
let companion opts h (cs : cap_state) =
  let c = cs.cap.Mna.value in
  match opts.method_ with
  | Backward_euler ->
    let geq = c /. h in
    (geq, -.(geq *. cs.v_prev))
  | Trapezoidal ->
    let geq = 2.0 *. c /. h in
    (geq, -.(geq *. cs.v_prev) -. cs.i_prev)

let newton_step opts sys ~time ~h ~caps ~prev =
  let nopts = opts.newton in
  let x = Vec.copy prev in
  let i_prev name = Mna.branch_current sys prev name in
  let rec iterate k =
    if k >= nopts.max_iter then raise (No_convergence time);
    let g, b =
      Mna.stamp_resistive sys ~x ~time ~gmin:nopts.gmin ~source_scale:1.0
        ~inductors:(Mna.Companion { h; i_prev })
    in
    Array.iter
      (fun cs ->
        let geq, ieq = companion opts h cs in
        let { Mna.cp; cn; _ } = cs.cap in
        if cp >= 0 then Mat.add_to g cp cp geq;
        if cn >= 0 then Mat.add_to g cn cn geq;
        if cp >= 0 && cn >= 0 then begin
          Mat.add_to g cp cn (-.geq);
          Mat.add_to g cn cp (-.geq)
        end;
        if cp >= 0 then b.(cp) <- b.(cp) -. ieq;
        if cn >= 0 then b.(cn) <- b.(cn) +. ieq)
      caps;
    match Lu.factor g with
    | exception Lu.Singular _ -> raise (No_convergence time)
    | fact ->
      let x_new = Lu.solve fact b in
      let delta = ref 0.0 in
      for i = 0 to Vec.dim x - 1 do
        delta := Float.max !delta (Float.abs (x_new.(i) -. x.(i)))
      done;
      let scale =
        if !delta > nopts.max_step then nopts.max_step /. !delta else 1.0
      in
      for i = 0 to Vec.dim x - 1 do
        x.(i) <- x.(i) +. (scale *. (x_new.(i) -. x.(i)))
      done;
      if not (Array.for_all Float.is_finite x) then raise (No_convergence time);
      if !delta *. scale < nopts.tol then x else iterate (k + 1)
  in
  iterate 0

let breakpoints sys ~tstop =
  let netlist = Mna.netlist sys in
  List.concat_map
    (fun e ->
      match e with
      | Netlist.Vsource { wave; _ } | Netlist.Isource { wave; _ } ->
        Wave.breakpoints wave ~tmax:tstop
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
      | Netlist.Vcvs _ | Netlist.Vccs _ | Netlist.Mosfet _ ->
        [])
    netlist.Netlist.elements
  |> List.sort_uniq compare

let run ?options sys ~tstop ~dt =
  let opts = match options with Some o -> o | None -> default_options ~dt in
  if tstop <= 0.0 then invalid_arg "Tran.run: tstop must be positive";
  if dt <= 0.0 then invalid_arg "Tran.run: dt must be positive";
  let op = Dc.solve_at ~options:opts.newton ~time:0.0 sys in
  let caps =
    Array.map
      (fun cap -> { cap; v_prev = 0.0; i_prev = 0.0 })
      (Mna.capacitances sys ~op)
  in
  Array.iter (fun cs -> cs.v_prev <- cap_voltage op cs.cap) caps;
  let bps = ref (breakpoints sys ~tstop) in
  let times = ref [ 0.0 ] and states = ref [ op ] in
  let t = ref 0.0 and x = ref op in
  while !t < tstop -. 1e-18 do
    (* drop stale breakpoints, then step to min(t+dt, next bp, tstop) *)
    while (match !bps with b :: _ when b <= !t +. 1e-18 -> true | _ -> false) do
      bps := List.tl !bps
    done;
    let target = Float.min (!t +. opts.dt) tstop in
    let target =
      match !bps with b :: _ when b < target -> b | _ -> target
    in
    let h = target -. !t in
    let x_new = newton_step opts sys ~time:target ~h ~caps ~prev:!x in
    (* refresh capacitor companions from the accepted step *)
    Array.iter
      (fun cs ->
        let v_new = cap_voltage x_new cs.cap in
        let geq, ieq = companion opts h cs in
        cs.i_prev <- (geq *. v_new) +. ieq;
        cs.v_prev <- v_new)
      caps;
    t := target;
    x := x_new;
    times := target :: !times;
    states := x_new :: !states
  done;
  {
    times = Array.of_list (List.rev !times);
    states = Array.of_list (List.rev !states);
  }

let node_waveform sys result node =
  let idx = Mna.node_index sys node in
  Array.mapi
    (fun i t ->
      let v = if idx < 0 then 0.0 else result.states.(i).(idx) in
      (t, v))
    result.times

let branch_waveform sys result name =
  Array.mapi
    (fun i t -> (t, Mna.branch_current sys result.states.(i) name))
    result.times
