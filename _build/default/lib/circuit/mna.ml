module Vec = Stc_numerics.Vec
module Mat = Stc_numerics.Mat
module Cmat = Stc_numerics.Cmat

type t = {
  netlist : Netlist.t;
  node_of_name : (string, int) Hashtbl.t;
  branch_of_name : (string, int) Hashtbl.t;
  size : int;
}

let needs_branch = function
  | Netlist.Vsource _ | Netlist.Vcvs _ | Netlist.Inductor _ -> true
  | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Isource _
  | Netlist.Vccs _ | Netlist.Mosfet _ ->
    false

let build netlist =
  (match Netlist.validate netlist with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Mna.build: " ^ msg));
  let node_of_name = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace node_of_name n i) (Netlist.nodes netlist);
  let n_nodes = Hashtbl.length node_of_name in
  let branch_of_name = Hashtbl.create 8 in
  let next = ref n_nodes in
  List.iter
    (fun e ->
      if needs_branch e then begin
        Hashtbl.replace branch_of_name (Netlist.element_name e) !next;
        incr next
      end)
    netlist.Netlist.elements;
  { netlist; node_of_name; branch_of_name; size = !next }

let size t = t.size

let netlist t = t.netlist

let node_index t name =
  if Netlist.is_ground name then -1
  else
    match Hashtbl.find_opt t.node_of_name name with
    | Some i -> i
    | None -> raise Not_found

let node_voltage t x name =
  let i = node_index t name in
  if i < 0 then 0.0 else x.(i)

let branch_current t x name =
  match Hashtbl.find_opt t.branch_of_name name with
  | Some i -> x.(i)
  | None -> raise Not_found

type cap = { cp : int; cn : int; value : float }

let capacitances t ~op =
  ignore op;
  let out = ref [] in
  List.iter
    (fun e ->
      match e with
      | Netlist.Capacitor { p; n; c; _ } ->
        out := { cp = node_index t p; cn = node_index t n; value = c } :: !out
      | Netlist.Mosfet { d; g; s; model; w; l; _ } ->
        let id = node_index t d and ig = node_index t g and is = node_index t s in
        out :=
          { cp = ig; cn = is; value = Mosfet.cgs model ~w ~l }
          :: { cp = ig; cn = id; value = Mosfet.cgd model ~w ~l }
          :: { cp = id; cn = -1; value = Mosfet.cdb model ~w ~l }
          :: !out
      | Netlist.Resistor _ | Netlist.Inductor _ | Netlist.Vsource _
      | Netlist.Isource _ | Netlist.Vcvs _ | Netlist.Vccs _ ->
        ())
    t.netlist.Netlist.elements;
  Array.of_list (List.rev !out)

(* Accumulate [v] into G at (i, j), skipping ground rows/columns. *)
let gadd g i j v = if i >= 0 && j >= 0 then Mat.add_to g i j v

let badd b i v = if i >= 0 then b.(i) <- b.(i) +. v

type inductor_treatment =
  | Short
  | Companion of { h : float; i_prev : string -> float }

let stamp_conductance g p n value =
  gadd g p p value;
  gadd g n n value;
  gadd g p n (-.value);
  gadd g n p (-.value)

(* VCCS: current [gm * (v cp - v cn)] flowing p -> n through the element. *)
let stamp_vccs g p n cp cn gm =
  gadd g p cp gm;
  gadd g p cn (-.gm);
  gadd g n cp (-.gm);
  gadd g n cn gm

let stamp_mosfet g b t x ~name:_ ~d ~gate ~s ~model ~w ~l =
  let vd = if d >= 0 then x.(d) else 0.0 in
  let vg = if gate >= 0 then x.(gate) else 0.0 in
  let vs = if s >= 0 then x.(s) else 0.0 in
  let op = Mosfet.evaluate model ~w ~l ~vgs:(vg -. vs) ~vds:(vd -. vs) in
  ignore t;
  (* linearised drain current: i = ids0 + gm*(vgs - vgs0) + gds*(vds - vds0) *)
  let ieq = op.Mosfet.ids -. (op.Mosfet.gm *. op.Mosfet.vgs)
            -. (op.Mosfet.gds *. op.Mosfet.vds)
  in
  stamp_vccs g d s gate s op.Mosfet.gm;
  stamp_conductance g d s op.Mosfet.gds;
  badd b d (-.ieq);
  badd b s ieq

let stamp_resistive t ~x ~time ~gmin ~source_scale ~inductors =
  let n = t.size in
  let g = Mat.create n n 0.0 in
  let b = Vec.create n 0.0 in
  let branch name = Hashtbl.find t.branch_of_name name in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { p; n = np; r; _ } ->
        stamp_conductance g (node_index t p) (node_index t np) (1.0 /. r)
      | Netlist.Capacitor _ -> ()
      | Netlist.Inductor { name; p; n = np; l; _ } ->
        let ip = node_index t p and inn = node_index t np in
        let br = branch name in
        (* KCL: branch current leaves p, enters n *)
        gadd g ip br 1.0;
        gadd g inn br (-1.0);
        (* branch equation *)
        gadd g br ip 1.0;
        gadd g br inn (-1.0);
        (match inductors with
         | Short -> ()
         | Companion { h; i_prev } ->
           (* backward Euler: v = (L/h) (i - i_prev) *)
           gadd g br br (-.(l /. h));
           badd b br (-.(l /. h *. i_prev name)))
      | Netlist.Vsource { name; p; n = np; wave; _ } ->
        let ip = node_index t p and inn = node_index t np in
        let br = branch name in
        gadd g ip br 1.0;
        gadd g inn br (-1.0);
        gadd g br ip 1.0;
        gadd g br inn (-1.0);
        badd b br (source_scale *. Wave.value wave time)
      | Netlist.Isource { p; n = np; wave; _ } ->
        let i = source_scale *. Wave.value wave time in
        badd b (node_index t p) (-.i);
        badd b (node_index t np) i
      | Netlist.Vcvs { name; p; n = np; cp; cn; gain; _ } ->
        let ip = node_index t p and inn = node_index t np in
        let icp = node_index t cp and icn = node_index t cn in
        let br = branch name in
        gadd g ip br 1.0;
        gadd g inn br (-1.0);
        gadd g br ip 1.0;
        gadd g br inn (-1.0);
        gadd g br icp (-.gain);
        gadd g br icn gain
      | Netlist.Vccs { p; n = np; cp; cn; gm; _ } ->
        stamp_vccs g (node_index t p) (node_index t np) (node_index t cp)
          (node_index t cn) gm
      | Netlist.Mosfet { name; d; g = gate; s; model; w; l } ->
        stamp_mosfet g b t x ~name ~d:(node_index t d) ~gate:(node_index t gate)
          ~s:(node_index t s) ~model ~w ~l)
    t.netlist.Netlist.elements;
  (* gmin from every node voltage unknown to ground *)
  if gmin > 0.0 then begin
    let n_nodes = Hashtbl.length t.node_of_name in
    for i = 0 to n_nodes - 1 do
      Mat.add_to g i i gmin
    done
  end;
  (g, b)

let ac_matrices t ~op =
  let n = t.size in
  (* resistive small-signal part: reuse the DC stamper with sources off,
     then overwrite the source rows' rhs with AC magnitudes *)
  let g, _ = stamp_resistive t ~x:op ~time:0.0 ~gmin:1e-12 ~source_scale:0.0
               ~inductors:Short
  in
  (* the DC stamper shorted the inductors; the branch equation row needs
     the -L term in the C matrix, which we add below, so G rows are fine *)
  let c = Mat.create n n 0.0 in
  let cadd i j v = if i >= 0 && j >= 0 then Mat.add_to c i j v in
  let b = Array.make n Complex.zero in
  List.iter
    (fun e ->
      match e with
      | Netlist.Capacitor { p; n = np; c = cv; _ } ->
        let ip = node_index t p and inn = node_index t np in
        cadd ip ip cv;
        cadd inn inn cv;
        cadd ip inn (-.cv);
        cadd inn ip (-.cv)
      | Netlist.Inductor { name; l; _ } ->
        let br = Hashtbl.find t.branch_of_name name in
        cadd br br (-.l)
      | Netlist.Vsource { name; ac; _ } ->
        if ac <> 0.0 then begin
          let br = Hashtbl.find t.branch_of_name name in
          b.(br) <- { Complex.re = ac; im = 0.0 }
        end
      | Netlist.Isource { p; n = np; ac; _ } ->
        if ac <> 0.0 then begin
          let ip = node_index t p and inn = node_index t np in
          if ip >= 0 then b.(ip) <- Complex.sub b.(ip) { Complex.re = ac; im = 0.0 };
          if inn >= 0 then b.(inn) <- Complex.add b.(inn) { Complex.re = ac; im = 0.0 }
        end
      | Netlist.Mosfet { d; g = gate; s; model; w; l; _ } ->
        let id = node_index t d and ig = node_index t gate and is = node_index t s in
        let stamp_c2 p n cv =
          cadd p p cv;
          cadd n n cv;
          cadd p n (-.cv);
          cadd n p (-.cv)
        in
        stamp_c2 ig is (Mosfet.cgs model ~w ~l);
        stamp_c2 ig id (Mosfet.cgd model ~w ~l);
        cadd id id (Mosfet.cdb model ~w ~l)
      | Netlist.Resistor _ | Netlist.Vcvs _ | Netlist.Vccs _ -> ())
    t.netlist.Netlist.elements;
  ignore Cmat.create;
  (g, c, b)
