(** Extraction of the paper's eleven op-amp specifications (Table 1)
    from simulation, in the paper's units. *)

type values = {
  gain : float;            (** open-loop DC gain, dimensionless *)
  bandwidth_3db : float;   (** Hz *)
  unity_gain_freq : float; (** MHz *)
  slew_rate : float;       (** V/µs *)
  rise_time : float;       (** µs *)
  overshoot : float;       (** fraction of the step, dimensionless *)
  settling_time : float;   (** ns, ±1 % band *)
  quiescent_current : float; (** µA *)
  common_mode_gain : float;  (** dimensionless *)
  power_supply_gain : float; (** dimensionless *)
  short_circuit_current : float; (** mA *)
}

val names : string array
(** The eleven spec names in Table 1 order. *)

val units : string array

val to_array : values -> float array
(** Values in the {!names} order. *)

exception Measurement_failed of string

val measure : Opamp.params -> values
(** Runs all six test benches and extracts every spec. Raises
    [Measurement_failed] when a bench does not converge or a response
    never crosses a required threshold (e.g. a broken instance whose
    gain never reaches unity). *)

val phase_margin : Opamp.params -> float
(** Open-loop phase margin in degrees: 180° + ∠H(f_unity). Not one of
    the paper's eleven specs, but the designer-facing stability number
    behind the overshoot/settling behaviour. Raises
    [Measurement_failed] like {!measure}. *)
