lib/circuit/wave.mli:
