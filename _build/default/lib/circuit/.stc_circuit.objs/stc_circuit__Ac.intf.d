lib/circuit/ac.mli: Complex Mna Netlist Stc_numerics
