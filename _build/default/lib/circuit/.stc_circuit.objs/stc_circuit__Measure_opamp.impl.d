lib/circuit/measure_opamp.ml: Ac Array Complex Dc Float Mna Opamp Printf Seq Stc_numerics Tran Waveform
