lib/circuit/netlist.mli: Mosfet Wave
