lib/circuit/mosfet.ml:
