lib/circuit/dc.ml: Array Float List Mna Netlist Stc_numerics Wave
