lib/circuit/netlist.ml: List Mosfet Printf Wave
