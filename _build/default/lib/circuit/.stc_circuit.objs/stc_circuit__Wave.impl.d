lib/circuit/wave.ml: Array Float List Stc_numerics
