lib/circuit/spice.ml: Array Buffer Float Hashtbl List Mosfet Netlist Printf String Wave
