lib/circuit/mosfet.mli:
