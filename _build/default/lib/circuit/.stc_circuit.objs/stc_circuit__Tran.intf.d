lib/circuit/tran.mli: Dc Mna Netlist Stc_numerics
