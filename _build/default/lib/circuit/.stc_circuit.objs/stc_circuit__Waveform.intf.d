lib/circuit/waveform.mli:
