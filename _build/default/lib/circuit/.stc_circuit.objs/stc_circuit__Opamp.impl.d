lib/circuit/opamp.ml: Array Mna Mosfet Netlist Stc_numerics Wave
