lib/circuit/mna.mli: Complex Netlist Stc_numerics
