lib/circuit/dc.mli: Mna Stc_numerics
