lib/circuit/mna.ml: Array Complex Hashtbl List Mosfet Netlist Stc_numerics Wave
