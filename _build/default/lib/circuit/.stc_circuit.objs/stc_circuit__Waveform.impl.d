lib/circuit/waveform.ml: Array Float Stc_numerics
