lib/circuit/measure_opamp.mli: Opamp
