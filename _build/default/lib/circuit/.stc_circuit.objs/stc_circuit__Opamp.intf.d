lib/circuit/opamp.mli: Mna Netlist Stc_numerics
