lib/circuit/tran.ml: Array Dc Float List Mna Netlist Stc_numerics Wave
