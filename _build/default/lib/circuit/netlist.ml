type node = string

type element =
  | Resistor of { name : string; p : node; n : node; r : float }
  | Capacitor of { name : string; p : node; n : node; c : float }
  | Inductor of { name : string; p : node; n : node; l : float }
  | Vsource of { name : string; p : node; n : node; wave : Wave.t; ac : float }
  | Isource of { name : string; p : node; n : node; wave : Wave.t; ac : float }
  | Vcvs of { name : string; p : node; n : node; cp : node; cn : node; gain : float }
  | Vccs of { name : string; p : node; n : node; cp : node; cn : node; gm : float }
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      model : Mosfet.params;
      w : float;
      l : float;
    }

type t = { elements : element list }

let empty = { elements = [] }

let add t e = { elements = t.elements @ [ e ] }

let of_elements elements = { elements }

let is_ground node = node = "0" || node = "gnd"

let element_nodes = function
  | Resistor { p; n; _ } | Capacitor { p; n; _ } | Inductor { p; n; _ }
  | Vsource { p; n; _ } | Isource { p; n; _ } ->
    [ p; n ]
  | Vcvs { p; n; cp; cn; _ } | Vccs { p; n; cp; cn; _ } -> [ p; n; cp; cn ]
  | Mosfet { d; g; s; _ } -> [ d; g; s ]

let element_name = function
  | Resistor { name; _ } | Capacitor { name; _ } | Inductor { name; _ }
  | Vsource { name; _ } | Isource { name; _ } | Vcvs { name; _ }
  | Vccs { name; _ } | Mosfet { name; _ } ->
    name

let nodes t =
  t.elements
  |> List.concat_map element_nodes
  |> List.filter (fun n -> not (is_ground n))
  |> List.sort_uniq compare

let find t name =
  match List.find_opt (fun e -> element_name e = name) t.elements with
  | Some e -> e
  | None -> raise Not_found

let validate t =
  let names = List.map element_name t.elements in
  let dup =
    let sorted = List.sort compare names in
    let rec first_dup = function
      | a :: (b :: _ as rest) -> if a = b then Some a else first_dup rest
      | [ _ ] | [] -> None
    in
    first_dup sorted
  in
  match dup with
  | Some name -> Error (Printf.sprintf "duplicate element name %S" name)
  | None ->
    let bad =
      List.find_opt
        (fun e ->
          match e with
          | Resistor { r; _ } -> r <= 0.0
          | Capacitor { c; _ } -> c <= 0.0
          | Inductor { l; _ } -> l <= 0.0
          | Mosfet { w; l; _ } -> w <= 0.0 || l <= 0.0
          | Vsource _ | Isource _ | Vcvs _ | Vccs _ -> false)
        t.elements
    in
    (match bad with
     | Some e ->
       Error (Printf.sprintf "element %S has a non-positive value" (element_name e))
     | None -> Ok ())

let r name p n r = Resistor { name; p; n; r }
let c name p n c = Capacitor { name; p; n; c }
let l name p n l = Inductor { name; p; n; l }
let vdc name p n v = Vsource { name; p; n; wave = Wave.Dc v; ac = 0.0 }
let vac name p n ~dc ~mag = Vsource { name; p; n; wave = Wave.Dc dc; ac = mag }
let vwave name p n wave = Vsource { name; p; n; wave; ac = 0.0 }
let idc name p n v = Isource { name; p; n; wave = Wave.Dc v; ac = 0.0 }

let nmos name ~d ~g ~s ?(model = Mosfet.default_nmos) ~w ~l () =
  Mosfet { name; d; g; s; model; w; l }

let pmos name ~d ~g ~s ?(model = Mosfet.default_pmos) ~w ~l () =
  Mosfet { name; d; g; s; model; w; l }
