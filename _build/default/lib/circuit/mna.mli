(** Modified nodal analysis: unknown numbering and element stamping.

    Unknowns are the non-ground node voltages followed by one branch
    current per voltage-defined element (voltage sources, VCVS,
    inductors). Sign conventions:

    - KCL rows read "sum of currents leaving the node = injections".
    - A branch current is the current flowing from the element's [p]
      terminal through the element to its [n] terminal; for a supply
      [Vsource p:"vdd" n:"0"] the current *delivered* to the circuit is
      the negative of the branch current. *)

type t

val build : Netlist.t -> t
(** Numbers the unknowns. Raises [Invalid_argument] if the netlist
    fails {!Netlist.validate}. *)

val size : t -> int
(** Total number of unknowns. *)

val netlist : t -> Netlist.t

val node_index : t -> Netlist.node -> int
(** Index of a node voltage unknown; -1 for ground. Raises [Not_found]
    for unknown node names. *)

val node_voltage : t -> Stc_numerics.Vec.t -> Netlist.node -> float
(** Reads a node voltage out of a solution vector (0 for ground). *)

val branch_current : t -> Stc_numerics.Vec.t -> string -> float
(** Branch current of a voltage-defined element, by element name. *)

type cap = { cp : int; cn : int; value : float }
(** A (possibly device-internal) linear capacitance between two
    unknown indices (-1 = ground). *)

val capacitances : t -> op:Stc_numerics.Vec.t -> cap array
(** All capacitances: explicit capacitors plus MOSFET cgs/cgd/cdb.
    [op] is unused by the level-1 model (constant caps) but kept in the
    signature so a bias-dependent model can slot in. *)

type inductor_treatment =
  | Short  (** DC: inductors are 0 V branches *)
  | Companion of { h : float; i_prev : string -> float }
      (** transient backward-Euler companion *)

val stamp_resistive :
  t ->
  x:Stc_numerics.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  inductors:inductor_treatment ->
  Stc_numerics.Mat.t * Stc_numerics.Vec.t
(** Assembles the resistive (non-capacitive) part of the linearised MNA
    system around candidate solution [x]: conductances, linearised
    MOSFET companion models, independent sources evaluated at [time]
    and scaled by [source_scale] (for source-stepping homotopy), and a
    [gmin] leak from every node to ground. *)

val ac_matrices :
  t -> op:Stc_numerics.Vec.t ->
  Stc_numerics.Mat.t * Stc_numerics.Mat.t * Complex.t array
(** [ac_matrices sys ~op] returns [(g, c, b)] such that the small-signal
    phasor solution at angular frequency ω is [(g + jωc) x = b]:
    [g] holds conductances and MOSFET gm/gds linearised at the
    operating point [op], [c] holds capacitances and inductances, [b]
    holds the AC source magnitudes. *)
