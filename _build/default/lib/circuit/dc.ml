module Vec = Stc_numerics.Vec
module Lu = Stc_numerics.Lu

type options = {
  max_iter : int;
  tol : float;
  gmin : float;
  max_step : float;
}

let default_options = { max_iter = 150; tol = 1e-9; gmin = 1e-12; max_step = 0.5 }

exception No_convergence of string

(* One damped Newton solve at fixed gmin and source scale. Returns the
   solution or None if it fails to converge (or hits a singular matrix). *)
let newton opts sys ~time ~gmin ~source_scale ~x0 =
  let x = Vec.copy x0 in
  let rec iterate k =
    if k >= opts.max_iter then None
    else begin
      let g, b = Mna.stamp_resistive sys ~x ~time ~gmin ~source_scale
                   ~inductors:Mna.Short
      in
      match Lu.factor g with
      | exception Lu.Singular _ -> None
      | fact ->
        let x_new = Lu.solve fact b in
        (* clamp the update to keep the square-law model in range *)
        let delta = ref 0.0 in
        for i = 0 to Vec.dim x - 1 do
          let d = x_new.(i) -. x.(i) in
          delta := Float.max !delta (Float.abs d)
        done;
        let scale = if !delta > opts.max_step then opts.max_step /. !delta else 1.0 in
        for i = 0 to Vec.dim x - 1 do
          x.(i) <- x.(i) +. (scale *. (x_new.(i) -. x.(i)))
        done;
        let converged = !delta *. scale < opts.tol in
        let finite = Array.for_all Float.is_finite x in
        if not finite then None
        else if converged then Some x
        else iterate (k + 1)
    end
  in
  iterate 0

let gmin_ladder = [ 1e-3; 1e-4; 1e-6; 1e-8; 1e-10; 1e-12 ]

let source_ladder = [ 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

let solve_at ?(options = default_options) ?x0 ~time sys =
  let n = Mna.size sys in
  let x0 = match x0 with Some x -> x | None -> Vec.create n 0.0 in
  match newton options sys ~time ~gmin:options.gmin ~source_scale:1.0 ~x0 with
  | Some x -> x
  | None ->
    (* gmin stepping: solve with a heavy leak and tighten progressively *)
    let via_gmin =
      List.fold_left
        (fun acc gmin ->
          match acc with
          | None -> None
          | Some x ->
            newton options sys ~time ~gmin ~source_scale:1.0 ~x0:x)
        (Some x0) gmin_ladder
    in
    (match via_gmin with
     | Some x -> x
     | None ->
       (* source stepping from a dead circuit *)
       let via_src =
         List.fold_left
           (fun acc scale ->
             match acc with
             | None -> None
             | Some x ->
               newton options sys ~time ~gmin:options.gmin ~source_scale:scale
                 ~x0:x)
           (Some (Vec.create n 0.0))
           source_ladder
       in
       (match via_src with
        | Some x -> x
        | None -> raise (No_convergence "DC operating point did not converge")))

let solve ?options ?x0 sys = solve_at ?options ?x0 ~time:0.0 sys

let sweep ?options sys ~source ~values =
  let netlist = Mna.netlist sys in
  (match Netlist.find netlist source with
   | Netlist.Vsource { wave = Wave.Dc _; _ } -> ()
   | Netlist.Vsource _ ->
     invalid_arg "Dc.sweep: swept source must have a DC waveform"
   | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
   | Netlist.Isource _ | Netlist.Vcvs _ | Netlist.Vccs _ | Netlist.Mosfet _ ->
     invalid_arg "Dc.sweep: source must name a voltage source");
  let with_value v =
    let elements =
      List.map
        (fun e ->
          match e with
          | Netlist.Vsource { name; p; n; wave = _; ac } when name = source ->
            Netlist.Vsource { name; p; n; wave = Wave.Dc v; ac }
          | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
          | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Vcvs _
          | Netlist.Vccs _ | Netlist.Mosfet _ ->
            e)
        netlist.Netlist.elements
    in
    Mna.build (Netlist.of_elements elements)
  in
  let previous = ref None in
  Array.map
    (fun v ->
      let sys_v = with_value v in
      let x = solve ?options ?x0:!previous sys_v in
      previous := Some x;
      (v, x))
    values
