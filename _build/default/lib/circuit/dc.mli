(** DC operating-point analysis: damped Newton–Raphson with gmin and
    source-stepping continuation fallbacks. *)

type options = {
  max_iter : int;          (** Newton iterations per attempt (default 150) *)
  tol : float;             (** convergence on |Δx|∞ (default 1e-9) *)
  gmin : float;            (** baseline leak conductance (default 1e-12) *)
  max_step : float;        (** Newton update clamp in volts (default 0.5) *)
}

val default_options : options

exception No_convergence of string

val solve : ?options:options -> ?x0:Stc_numerics.Vec.t -> Mna.t ->
  Stc_numerics.Vec.t
(** Operating point at [time = 0]. Tries plain Newton from [x0] (zeros
    by default), then gmin stepping, then source stepping. Raises
    [No_convergence] if all fail. *)

val solve_at : ?options:options -> ?x0:Stc_numerics.Vec.t -> time:float ->
  Mna.t -> Stc_numerics.Vec.t
(** Operating point with time-dependent sources frozen at [time];
    used by the transient engine for its initial condition. *)

val sweep :
  ?options:options ->
  Mna.t ->
  source:string ->
  values:float array ->
  (float * Stc_numerics.Vec.t) array
(** DC transfer-curve analysis: re-solves the operating point for each
    value of the named DC voltage source, using the previous solution
    as the Newton starting point (source-value continuation). Raises
    [Not_found] if [source] does not name a voltage source,
    [Invalid_argument] if its waveform is not DC. *)
