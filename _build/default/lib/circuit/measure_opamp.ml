module Roots = Stc_numerics.Roots

type values = {
  gain : float;
  bandwidth_3db : float;
  unity_gain_freq : float;
  slew_rate : float;
  rise_time : float;
  overshoot : float;
  settling_time : float;
  quiescent_current : float;
  common_mode_gain : float;
  power_supply_gain : float;
  short_circuit_current : float;
}

let names =
  [|
    "gain"; "3-dB bandwidth"; "unity gain frequency"; "slew rate"; "rise time";
    "overshoot"; "settling time"; "quiescent current"; "common mode gain";
    "power supply gain"; "short circuit current";
  |]

let units =
  [| "-"; "Hz"; "MHz"; "V/us"; "us"; "-"; "ns"; "uA"; "-"; "-"; "mA" |]

let to_array v =
  [|
    v.gain; v.bandwidth_3db; v.unity_gain_freq; v.slew_rate; v.rise_time;
    v.overshoot; v.settling_time; v.quiescent_current; v.common_mode_gain;
    v.power_supply_gain; v.short_circuit_current;
  |]

exception Measurement_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Measurement_failed s)) fmt

let solve_dc p bench =
  let sys = Mna.build (Opamp.netlist p bench) in
  let x0 = Opamp.initial_guess p sys in
  match Dc.solve ~x0 sys with
  | op -> (sys, op)
  | exception Dc.No_convergence msg -> fail "DC (%s)" msg

(* |vout| at [freq] for a bench whose AC drive has magnitude 1 *)
let response_mag sys ~op ~freq =
  let x = Ac.solve_one sys ~op ~freq in
  let idx = Mna.node_index sys "out" in
  Complex.norm x.(idx)

(* Find the frequency at which the response magnitude falls to [target],
   scanning a log grid for a bracket and refining with Brent on log f. *)
let crossing_freq sys ~op ~target ~f_lo ~f_hi =
  let g logf = response_mag sys ~op ~freq:(10.0 ** logf) -. target in
  match Roots.find_bracket g ~lo:(log10 f_lo) ~hi:(log10 f_hi) ~steps:60 with
  | None -> None
  | Some (a, b) -> Some (10.0 ** Roots.brent ~tol:1e-6 g a b)

let measure_open_loop p =
  let sys, op = solve_dc p Opamp.Open_loop_gain in
  let iq = -.Mna.branch_current sys op "vdd" in
  let gain = response_mag sys ~op ~freq:1.0 in
  if gain <= 1.0 then fail "open-loop gain below unity (%.3g)" gain;
  let bw =
    match
      crossing_freq sys ~op ~target:(gain /. sqrt 2.0) ~f_lo:1.0 ~f_hi:1e6
    with
    | Some f -> f
    | None -> fail "no 3-dB point found"
  in
  let ugf =
    match crossing_freq sys ~op ~target:1.0 ~f_lo:bw ~f_hi:1e9 with
    | Some f -> f
    | None -> fail "no unity-gain crossing found"
  in
  (gain, bw, ugf, iq)

let measure_mag p bench ~freq =
  let sys, op = solve_dc p bench in
  response_mag sys ~op ~freq

(* Trim a step-response waveform so that t = 0 is the start of the input
   edge; measurements are then relative to the stimulus. *)
let step_window waveform ~t_step =
  let trimmed =
    Array.of_seq
      (Seq.filter (fun (t, _) -> t >= t_step) (Array.to_seq waveform))
  in
  if Array.length trimmed < 8 then fail "transient window too short";
  Array.map (fun (t, v) -> (t -. t_step, v)) trimmed

let run_transient p bench ~tstop ~dt =
  let sys = Mna.build (Opamp.netlist p bench) in
  match Tran.run sys ~tstop ~dt with
  | result -> Tran.node_waveform sys result "out"
  | exception Tran.No_convergence t -> fail "transient diverged at t=%.3g" t
  | exception Dc.No_convergence msg -> fail "transient DC (%s)" msg

let measure_small_step p =
  let amplitude = 0.1 in
  let t_step = 0.2e-6 in
  let tstop = 4.0e-6 in
  let w = run_transient p (Opamp.Unity_small_step amplitude) ~tstop ~dt:(tstop /. 1200.0) in
  let w = step_window w ~t_step in
  let overshoot = Waveform.overshoot w in
  let settling =
    match Waveform.settling_time ~band:0.01 w with
    | Some t -> t
    | None -> fail "output never settles"
  in
  (overshoot, settling)

let measure_large_step p =
  let amplitude = 4.0 in
  let t_step = 0.5e-6 in
  let tstop = 18.0e-6 in
  let w = run_transient p (Opamp.Unity_large_step amplitude) ~tstop ~dt:(tstop /. 1200.0) in
  let w = step_window w ~t_step in
  let slew =
    match Waveform.slew_rate w with
    | Some s -> s
    | None -> fail "no 20-80%% slew window found"
  in
  let rise =
    match Waveform.rise_time w with
    | Some t -> t
    | None -> fail "no 10-90%% rise found"
  in
  (slew, rise)

let measure_short_circuit p =
  let sys, op = solve_dc p Opamp.Short_circuit in
  Float.abs (Mna.branch_current sys op "vshort")

let phase_margin p =
  let sys, op = solve_dc p Opamp.Open_loop_gain in
  let gain = response_mag sys ~op ~freq:1.0 in
  if gain <= 1.0 then fail "open-loop gain below unity (%.3g)" gain;
  let ugf =
    match crossing_freq sys ~op ~target:1.0 ~f_lo:1.0 ~f_hi:1e9 with
    | Some f -> f
    | None -> fail "no unity-gain crossing found"
  in
  let x = Ac.solve_one sys ~op ~freq:ugf in
  let out = x.(Mna.node_index sys "out") in
  (* the bench inverts through two stages: the open-loop phase starts at
     180 deg (positive output for positive input at DC after the servo);
     margin = 180 + phase relative to the DC phase *)
  let phase_dc =
    let x0 = Ac.solve_one sys ~op ~freq:1.0 in
    Ac.phase_deg x0.(Mna.node_index sys "out")
  in
  let rel = Ac.phase_deg out -. phase_dc in
  (* unwrap into (-360, 0] *)
  let rel = if rel > 0.0 then rel -. 360.0 else rel in
  180.0 +. rel

let measure p =
  let gain, bw, ugf, iq = measure_open_loop p in
  let cm = measure_mag p Opamp.Common_mode ~freq:10.0 in
  let ps = measure_mag p Opamp.Power_supply ~freq:10.0 in
  let overshoot, settling = measure_small_step p in
  let slew, rise = measure_large_step p in
  let isc = measure_short_circuit p in
  {
    gain;
    bandwidth_3db = bw;
    unity_gain_freq = ugf /. 1e6;
    slew_rate = slew /. 1e6;
    rise_time = rise *. 1e6;
    overshoot;
    settling_time = settling *. 1e9;
    quiescent_current = iq *. 1e6;
    common_mode_gain = cm;
    power_supply_gain = ps;
    short_circuit_current = isc *. 1e3;
  }
