(** Small-signal AC analysis around a DC operating point. *)

type point = {
  freq : float;                      (** Hz *)
  solution : Complex.t array;        (** phasor node/branch unknowns *)
}

val sweep :
  Mna.t -> op:Stc_numerics.Vec.t -> freqs:float array -> point array
(** Solves [(G + jωC) x = b] at each frequency. *)

val node_response : Mna.t -> point array -> Netlist.node -> (float * Complex.t) array
(** Extracts the phasor at a node across the sweep as (freq, phasor). *)

val magnitude : Complex.t -> float
val db : Complex.t -> float
(** 20·log10 |z|; -inf for 0. *)

val phase_deg : Complex.t -> float

val solve_one : Mna.t -> op:Stc_numerics.Vec.t -> freq:float -> Complex.t array
(** Single-frequency convenience. *)
