(** Circuit description: named nodes and elements.

    Node ["0"] (alias ["gnd"]) is ground. A netlist is immutable once
    built; analyses never mutate it. *)

type node = string

type element =
  | Resistor of { name : string; p : node; n : node; r : float }
  | Capacitor of { name : string; p : node; n : node; c : float }
  | Inductor of { name : string; p : node; n : node; l : float }
  | Vsource of { name : string; p : node; n : node; wave : Wave.t; ac : float }
  | Isource of { name : string; p : node; n : node; wave : Wave.t; ac : float }
      (** current flows p → n through the source when positive *)
  | Vcvs of { name : string; p : node; n : node; cp : node; cn : node; gain : float }
  | Vccs of { name : string; p : node; n : node; cp : node; cn : node; gm : float }
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      model : Mosfet.params;
      w : float;
      l : float;
    }

type t = { elements : element list }

val empty : t
val add : t -> element -> t
val of_elements : element list -> t

val nodes : t -> node list
(** All non-ground nodes, sorted, deduplicated. *)

val is_ground : node -> bool

val element_name : element -> string

val find : t -> string -> element
(** Find an element by name; raises [Not_found]. *)

val validate : t -> (unit, string) result
(** Structural checks: unique names, positive R/C/L values, positive
    MOS geometry. *)

(* Convenience constructors *)

val r : string -> node -> node -> float -> element
val c : string -> node -> node -> float -> element
val l : string -> node -> node -> float -> element
val vdc : string -> node -> node -> float -> element
val vac : string -> node -> node -> dc:float -> mag:float -> element
val vwave : string -> node -> node -> Wave.t -> element
val idc : string -> node -> node -> float -> element
val nmos : string -> d:node -> g:node -> s:node -> ?model:Mosfet.params ->
  w:float -> l:float -> unit -> element
val pmos : string -> d:node -> g:node -> s:node -> ?model:Mosfet.params ->
  w:float -> l:float -> unit -> element
