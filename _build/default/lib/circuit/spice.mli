(** SPICE-format netlist reader and writer (a practical subset).

    Supported cards, case-insensitive, with [+] continuation lines and
    [*] comments; the first line is treated as the title:

    - [Rxxx n1 n2 value], [Cxxx n1 n2 value], [Lxxx n1 n2 value]
    - [Vxxx n+ n- [DC v] [AC mag] [PULSE(v1 v2 td tr tf pw per)]
       [SIN(off ampl freq)] [PWL(t1 v1 t2 v2 ...)]]
      (a bare number is DC); [Ixxx] likewise
    - [Exxx p n cp cn gain] (VCVS), [Gxxx p n cp cn gm] (VCCS)
    - [Mxxx d g s b model W=.. L=..] (bulk terminal accepted, ignored)
    - [.model name NMOS|PMOS (vto=.. kp=.. lambda=..)]
    - [.end] stops parsing

    Engineering suffixes: f p n u m k meg g t (e.g. [10k], [2.2u],
    [5MEG]); trailing units are ignored ([10kOhm]). *)

val parse_value : string -> float option
(** Numeric literal with optional engineering suffix. *)

val parse : string -> (Netlist.t, string) result
(** Parses a complete deck. The error string carries the line number. *)

val to_string : ?title:string -> Netlist.t -> string
(** Renders a netlist as a SPICE deck that {!parse} accepts
    (round-trip safe for the supported subset). *)
