(** Level-1 (square-law) MOSFET model with channel-length modulation.

    This is the classic Shichman–Hodges model: simple, smooth enough for
    Newton, and it reproduces the first-order dependencies that matter
    for the op-amp specification correlations (gm ∝ √(W/L·Id),
    Id,sat ∝ W/L·(Vgs−Vt)², ro ∝ 1/(λId)). *)

type kind = Nmos | Pmos

type params = {
  kind : kind;
  vt0 : float;     (** threshold voltage, V (positive magnitude for both kinds) *)
  kp : float;      (** transconductance parameter µCox, A/V² *)
  lambda : float;  (** channel-length modulation, 1/V *)
  cox : float;     (** gate oxide capacitance per area, F/m² *)
  cov : float;     (** gate overlap capacitance per width, F/m *)
  cj : float;      (** junction capacitance per width (lumped), F/m *)
}

val default_nmos : params
val default_pmos : params
(** Representative 0.5 µm-era parameters. *)

type op = {
  ids : float;  (** drain current, drain→source for NMOS convention *)
  gm : float;   (** ∂Id/∂Vgs at the operating point *)
  gds : float;  (** ∂Id/∂Vds *)
  vgs : float;
  vds : float;
  region : [ `Cutoff | `Triode | `Saturation ];
}

val evaluate : params -> w:float -> l:float -> vgs:float -> vds:float -> op
(** Evaluates the device. For PMOS pass terminal voltages as-is
    (vgs, vds negative in normal operation); the model internally
    mirrors them. Currents returned follow the NMOS sign convention
    mirrored back, i.e. [ids] is the current flowing drain→source. *)

val cgs : params -> w:float -> l:float -> float
(** Gate–source capacitance (2/3 W L Cox + overlap). *)

val cgd : params -> w:float -> l:float -> float
(** Gate–drain overlap capacitance. *)

val cdb : params -> w:float -> l:float -> float
(** Drain–bulk junction capacitance (lumped to ground). *)
