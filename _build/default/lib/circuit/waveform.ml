module Interp = Stc_numerics.Interp

type t = (float * float) array

let require_nonempty name w =
  if Array.length w = 0 then invalid_arg ("Waveform." ^ name ^ ": empty waveform")

let value_at w t = Interp.linear w t

let initial w =
  require_nonempty "initial" w;
  snd w.(0)

let final w =
  require_nonempty "final" w;
  snd w.(Array.length w - 1)

let rise_time ?(low_frac = 0.1) ?(high_frac = 0.9) w =
  require_nonempty "rise_time" w;
  let v0 = initial w and v1 = final w in
  let step = v1 -. v0 in
  if step = 0.0 then None
  else begin
    let low = v0 +. (low_frac *. step) in
    let high = v0 +. (high_frac *. step) in
    let dir = if step > 0.0 then `Rising else `Falling in
    match
      ( Interp.crossing w ~level:low ~direction:dir,
        Interp.crossing w ~level:high ~direction:dir )
    with
    | Some t_low, Some t_high when t_high >= t_low -> Some (t_high -. t_low)
    | Some _, Some _ | Some _, None | None, Some _ | None, None -> None
  end

let overshoot w =
  require_nonempty "overshoot" w;
  let v0 = initial w and v1 = final w in
  let step = v1 -. v0 in
  if step = 0.0 then 0.0
  else begin
    (* peak excursion beyond the final value, in the step direction *)
    let worst = ref 0.0 in
    Array.iter
      (fun (_, v) ->
        let excess = if step > 0.0 then v -. v1 else v1 -. v in
        if excess > !worst then worst := excess)
      w;
    !worst /. Float.abs step
  end

let settling_time ?(band = 0.01) w =
  require_nonempty "settling_time" w;
  let v0 = initial w and v1 = final w in
  let step = Float.abs (v1 -. v0) in
  if step = 0.0 then Some 0.0
  else begin
    let tolerance = band *. step in
    (* scan backwards for the last time the waveform leaves the band *)
    let n = Array.length w in
    let rec last_escape i =
      if i < 0 then None
      else begin
        let _, v = w.(i) in
        if Float.abs (v -. v1) > tolerance then Some i else last_escape (i - 1)
      end
    in
    match last_escape (n - 1) with
    | None -> Some (fst w.(0))
    | Some i when i = n - 1 -> None (* never settles *)
    | Some i ->
      (* interpolate the band re-entry between samples i and i+1 *)
      let t0, va = w.(i) and t1, vb = w.(i + 1) in
      let target =
        if va > v1 +. tolerance then v1 +. tolerance else v1 -. tolerance
      in
      if vb = va then Some t1
      else Some (t0 +. ((t1 -. t0) *. (target -. va) /. (vb -. va)))
  end

let max_slope w =
  require_nonempty "max_slope" w;
  let worst = ref 0.0 in
  for i = 0 to Array.length w - 2 do
    let t0, v0 = w.(i) and t1, v1 = w.(i + 1) in
    if t1 > t0 then begin
      let slope = Float.abs ((v1 -. v0) /. (t1 -. t0)) in
      if slope > !worst then worst := slope
    end
  done;
  !worst

let slew_rate w =
  require_nonempty "slew_rate" w;
  let v0 = initial w and v1 = final w in
  let step = v1 -. v0 in
  if step = 0.0 then None
  else begin
    let low = v0 +. (0.2 *. step) and high = v0 +. (0.8 *. step) in
    let dir = if step > 0.0 then `Rising else `Falling in
    match
      ( Interp.crossing w ~level:low ~direction:dir,
        Interp.crossing w ~level:high ~direction:dir )
    with
    | Some t_low, Some t_high when t_high > t_low ->
      Some (Float.abs ((high -. low) /. (t_high -. t_low)))
    | Some _, Some _ | Some _, None | None, Some _ | None, None -> None
  end

let peak w =
  require_nonempty "peak" w;
  Array.fold_left
    (fun (tb, vb) (t, v) -> if v > vb then (t, v) else (tb, vb))
    w.(0) w

let crossing_time w ~level ~direction = Interp.crossing w ~level ~direction
