(** Time-domain source waveforms (SPICE-like). *)

type t =
  | Dc of float
  | Pulse of {
      v1 : float;       (** initial level *)
      v2 : float;       (** pulsed level *)
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;   (** 0 or infinite means single pulse *)
    }
  | Sine of { offset : float; amplitude : float; freq : float; phase : float }
  | Pwl of (float * float) array
      (** piecewise linear (time, value), times ascending *)

val value : t -> float -> float
(** [value w t] evaluates the waveform at time [t] (t >= 0). *)

val dc_value : t -> float
(** Value at t = 0, used for the DC operating point. *)

val breakpoints : t -> tmax:float -> float list
(** Times in [0, tmax] at which the waveform has slope discontinuities;
    the transient engine aligns steps with these. *)
