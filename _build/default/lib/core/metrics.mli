(** Outcome accounting, with the paper's Sec. 5.1 definitions:
    yield loss = good devices the flow binned bad, defect escape = bad
    devices binned good, guard = devices sent to full (adaptive) test.
    Percentages are over all tested devices, matching Table 3. *)

type counts = {
  total : int;
  truth_good : int;
  truth_bad : int;
  escapes : int;       (** truth bad, binned Good *)
  losses : int;        (** truth good, binned Bad *)
  guards : int;        (** binned Guard *)
  correct_good : int;  (** truth good, binned Good *)
  correct_bad : int;   (** truth bad, binned Bad *)
}

val empty : counts

val record : counts -> truth_good:bool -> Guard_band.verdict -> counts

val tally : truth:bool array -> verdicts:Guard_band.verdict array -> counts

val escape_pct : counts -> float
val loss_pct : counts -> float
val guard_pct : counts -> float
val yield_pct : counts -> float
(** Truth yield of the population. *)

val prediction_error_pct : counts -> float
(** (escapes + losses) / total · 100. *)

val pp : Format.formatter -> counts -> unit
