type verdict = Good | Bad | Guard

type classifier = float array -> int

type t = {
  tight : classifier;
  loose : classifier;
}

let make ~tight ~loose = { tight; loose }

let single c = { tight = c; loose = c }

let classify t features =
  let pt = t.tight features and pl = t.loose features in
  match (pt, pl) with
  | 1, 1 -> Good
  | -1, -1 -> Bad
  | 1, -1 | -1, 1 -> Guard
  | _ -> invalid_arg "Guard_band.classify: classifier returned non-±1"

let verdict_to_string = function
  | Good -> "good"
  | Bad -> "bad"
  | Guard -> "guard"

let equal_verdict a b =
  match (a, b) with
  | Good, Good | Bad, Bad | Guard, Guard -> true
  | (Good | Bad | Guard), (Good | Bad | Guard) -> false
