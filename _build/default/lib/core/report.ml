let table ?title ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Report.table: row arity mismatch")
    rows;
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun j cell ->
         widths.(j) <- Stdlib.max widths.(j) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  (match title with
   | Some t ->
     Buffer.add_string buf t;
     Buffer.add_char buf '\n'
   | None -> ());
  let render_row row =
    List.iteri
      (fun j cell ->
        if j > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(j) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row header;
  let rule = List.init ncols (fun j -> String.make widths.(j) '-') in
  render_row rule;
  List.iter render_row rows;
  Buffer.contents buf

let series ?title ~x_label ~x columns =
  List.iter
    (fun (_, col) ->
      if List.length col <> List.length x then
        invalid_arg "Report.series: column length mismatch")
    columns;
  let header = x_label :: List.map fst columns in
  let rows =
    List.mapi
      (fun i xi ->
        xi :: List.map (fun (_, col) -> Printf.sprintf "%.3g" (List.nth col i))
                columns)
      x
  in
  table ?title ~header rows

let pct v = Printf.sprintf "%.2f%%" v

let g3 v = Printf.sprintf "%.3g" v

let ascii_plot ?(width = 60) ?(height = 24) points =
  if Array.length points = 0 then "(no points)\n"
  else begin
    let xs = Array.map fst points and ys = Array.map snd points in
    let x0 = Stc_numerics.Stats.min xs and x1 = Stc_numerics.Stats.max xs in
    let y0 = Stc_numerics.Stats.min ys and y1 = Stc_numerics.Stats.max ys in
    let dx = if x1 > x0 then x1 -. x0 else 1.0 in
    let dy = if y1 > y0 then y1 -. y0 else 1.0 in
    let grid = Array.make_matrix height width 0 in
    Array.iter
      (fun (x, y) ->
        let cx =
          Stdlib.min (width - 1)
            (int_of_float ((x -. x0) /. dx *. float_of_int (width - 1)))
        in
        let cy =
          Stdlib.min (height - 1)
            (int_of_float ((y -. y0) /. dy *. float_of_int (height - 1)))
        in
        grid.(height - 1 - cy).(cx) <- grid.(height - 1 - cy).(cx) + 1)
      points;
    let buf = Buffer.create (height * (width + 1)) in
    Array.iter
      (fun row ->
        Array.iter
          (fun count ->
            let ch =
              if count = 0 then ' '
              else if count < 2 then '.'
              else if count < 5 then '+'
              else '#'
            in
            Buffer.add_char buf ch)
          row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.contents buf
  end
