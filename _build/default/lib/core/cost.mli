(** Test-cost accounting (Sec. 5.2).

    The paper's MEMS arithmetic: testing one device for all specs at
    one temperature costs one unit; the full flow tests every device at
    room temperature and the room-passing devices at hot and cold
    ($1000 + 774·2 = $2548 for 1000 devices at 77.4 % room yield); the
    compacted flow tests everything at room only, re-testing the
    guard-band devices at all three temperatures
    ($916 + 84·3 = $1168). *)

type tri_temp = {
  full : float;       (** cost of the complete tri-temperature flow *)
  compacted : float;  (** cost with hot/cold predicted, guard retested *)
  saving_pct : float;
}

val tri_temperature :
  ?unit_cost:float ->
  n:int ->
  room_pass:int ->
  guard:int ->
  unit ->
  tri_temp
(** [n] devices, [room_pass] of them pass the room-temperature tests in
    the full flow, [guard] land in the guard band of the compacted
    flow. Requires [0 ≤ room_pass ≤ n] and [0 ≤ guard ≤ n]. *)

type per_spec = {
  spec_costs : float array;
  full_cost : float;        (** per device, all specs measured *)
  compacted_cost : float;   (** per device, kept specs only *)
  retest_overhead : float;  (** expected extra cost of guard retests *)
  expected_cost : float;    (** compacted + overhead, per device *)
  saving_fraction : float;
}

val per_spec_flow :
  spec_costs:float array ->
  kept:int array ->
  guard_rate:float ->
  per_spec
(** General per-specification cost model: each spec has its own test
    cost; a guard-band device pays the full test again. [guard_rate] is
    the expected guard fraction per device. *)
