type counts = {
  total : int;
  truth_good : int;
  truth_bad : int;
  escapes : int;
  losses : int;
  guards : int;
  correct_good : int;
  correct_bad : int;
}

let empty =
  {
    total = 0;
    truth_good = 0;
    truth_bad = 0;
    escapes = 0;
    losses = 0;
    guards = 0;
    correct_good = 0;
    correct_bad = 0;
  }

let record c ~truth_good verdict =
  let c =
    {
      c with
      total = c.total + 1;
      truth_good = c.truth_good + (if truth_good then 1 else 0);
      truth_bad = c.truth_bad + (if truth_good then 0 else 1);
    }
  in
  match (verdict, truth_good) with
  | Guard_band.Guard, _ -> { c with guards = c.guards + 1 }
  | Guard_band.Good, true -> { c with correct_good = c.correct_good + 1 }
  | Guard_band.Good, false -> { c with escapes = c.escapes + 1 }
  | Guard_band.Bad, false -> { c with correct_bad = c.correct_bad + 1 }
  | Guard_band.Bad, true -> { c with losses = c.losses + 1 }

let tally ~truth ~verdicts =
  if Array.length truth <> Array.length verdicts then
    invalid_arg "Metrics.tally: length mismatch";
  let c = ref empty in
  Array.iteri (fun i t -> c := record !c ~truth_good:t verdicts.(i)) truth;
  !c

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let escape_pct c = pct c.escapes c.total
let loss_pct c = pct c.losses c.total
let guard_pct c = pct c.guards c.total
let yield_pct c = pct c.truth_good c.total
let prediction_error_pct c = pct (c.escapes + c.losses) c.total

let pp fmt c =
  Format.fprintf fmt
    "n=%d yield=%.1f%% escape=%.2f%% loss=%.2f%% guard=%.2f%%" c.total
    (yield_pct c) (escape_pct c) (loss_pct c) (guard_pct c)
