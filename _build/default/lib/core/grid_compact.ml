type config = {
  resolution : int;
  clip_lo : float;
  clip_hi : float;
}

let default_config = { resolution = 8; clip_lo = -0.5; clip_hi = 1.5 }

type result = {
  features : float array array;
  labels : int array;
  kept_original : int;
  merged_cells : int;
}

type cell = {
  mutable goods : int;
  mutable bads : int;
  mutable members : int list;
  coords : int array;
}

let cell_key coords = String.concat "," (Array.to_list (Array.map string_of_int coords))

let compact ?(config = default_config) ~features ~labels () =
  let n = Array.length features in
  if Array.length labels <> n then
    invalid_arg "Grid_compact.compact: features/labels length mismatch";
  if config.resolution <= 0 then
    invalid_arg "Grid_compact.compact: resolution must be positive";
  if n = 0 then { features = [||]; labels = [||]; kept_original = 0; merged_cells = 0 }
  else begin
    let dim = Array.length features.(0) in
    let span = config.clip_hi -. config.clip_lo in
    let cell_of v =
      let raw =
        int_of_float
          (Float.floor
             ((v -. config.clip_lo) /. span *. float_of_int config.resolution))
      in
      Stdlib.max 0 (Stdlib.min (config.resolution - 1) raw)
    in
    let table : (string, cell) Hashtbl.t = Hashtbl.create 256 in
    for i = 0 to n - 1 do
      let coords = Array.map cell_of features.(i) in
      let key = cell_key coords in
      let cell =
        match Hashtbl.find_opt table key with
        | Some c -> c
        | None ->
          let c = { goods = 0; bads = 0; members = []; coords } in
          Hashtbl.add table key c;
          c
      in
      if labels.(i) = 1 then cell.goods <- cell.goods + 1
      else cell.bads <- cell.bads + 1;
      cell.members <- i :: cell.members
    done;
    let centre coords =
      Array.init dim (fun d ->
          config.clip_lo
          +. ((float_of_int coords.(d) +. 0.5)
              /. float_of_int config.resolution *. span))
    in
    let out_f = ref [] and out_l = ref [] in
    let kept = ref 0 and merged = ref 0 in
    Hashtbl.iter
      (fun _ cell ->
        if cell.goods > 0 && cell.bads > 0 then
          (* mixed cell: boundary territory, keep every point *)
          List.iter
            (fun i ->
              out_f := features.(i) :: !out_f;
              out_l := labels.(i) :: !out_l;
              incr kept)
            cell.members
        else begin
          incr merged;
          out_f := centre cell.coords :: !out_f;
          out_l := (if cell.goods > 0 then 1 else -1) :: !out_l
        end)
      table;
    {
      features = Array.of_list !out_f;
      labels = Array.of_list !out_l;
      kept_original = !kept;
      merged_cells = !merged;
    }
  end
