module Svr = Stc_svm.Svr
module Kernel = Stc_svm.Kernel

type config = {
  c : float;
  epsilon : float;
  gamma : float option;
}

let default_config = { c = 10.0; epsilon = 0.01; gamma = None }

type t = {
  specs : Spec.t array;
  kept_indices : int array;
  dropped_indices : int array;
  models : Svr.model array;  (* one per dropped spec, normalised targets *)
}

let complement ~k dropped =
  let is_dropped = Array.make k false in
  Array.iter
    (fun j ->
      if j < 0 || j >= k then invalid_arg "Regression_baseline: bad spec index";
      if is_dropped.(j) then
        invalid_arg "Regression_baseline: duplicate dropped index";
      is_dropped.(j) <- true)
    dropped;
  let kept = ref [] in
  for j = k - 1 downto 0 do
    if not is_dropped.(j) then kept := j :: !kept
  done;
  Array.of_list !kept

let train ?(config = default_config) data ~dropped =
  if Array.length dropped = 0 then
    invalid_arg "Regression_baseline.train: empty dropped set";
  let specs = Device_data.specs data in
  let k = Array.length specs in
  let kept_indices = complement ~k dropped in
  let features = Device_data.features data ~keep:kept_indices in
  let dim = Array.length kept_indices in
  ignore dim;
  let kernel =
    Kernel.rbf
      (match config.gamma with
       | Some g -> g
       | None -> Kernel.median_gamma features)
  in
  let models =
    Array.map
      (fun j ->
        let spec = specs.(j) in
        let y =
          Array.map
            (fun row -> Spec.normalize spec row.(j))
            (Device_data.values data)
        in
        Svr.train ~c:config.c ~epsilon:config.epsilon ~kernel ~x:features ~y ())
      dropped
  in
  { specs; kept_indices; dropped_indices = Array.copy dropped; models }

let predict_values t features =
  Array.mapi
    (fun i j ->
      let normalised = Svr.predict t.models.(i) features in
      Spec.denormalize t.specs.(j) normalised)
    t.dropped_indices

let classify t features =
  let values = predict_values t features in
  let ok = ref true in
  Array.iteri
    (fun i j -> if not (Spec.passes t.specs.(j) values.(i)) then ok := false)
    t.dropped_indices;
  if !ok then 1 else -1

let prediction_error t data =
  let n = Device_data.n_instances data in
  if n = 0 then 0.0
  else begin
    let wrong = ref 0 in
    for i = 0 to n - 1 do
      let truth =
        if Device_data.passes_subset data ~instance:i ~subset:t.dropped_indices
        then 1
        else -1
      in
      let features =
        Device_data.normalized_row data ~instance:i ~keep:t.kept_indices
      in
      if classify t features <> truth then incr wrong
    done;
    float_of_int !wrong /. float_of_int n
  end

let dropped t = Array.copy t.dropped_indices
let kept t = Array.copy t.kept_indices
