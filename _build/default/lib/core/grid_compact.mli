(** Training-data compaction over a grid (Sec. 4.3): the normalised
    training space is cut into cells; cells containing both good and
    bad instances keep all their points (they carry boundary shape),
    pure cells are merged into a single representative at the cell
    centre. *)

type config = {
  resolution : int;   (** cells per dimension over the clip window *)
  clip_lo : float;    (** window lower corner in normalised units *)
  clip_hi : float;
}

val default_config : config
(** resolution 8 over [-0.5, 1.5] (one range-width of margin around the
    normalised acceptance box). *)

type result = {
  features : float array array;
  labels : int array;
  kept_original : int;   (** original points retained (mixed cells) *)
  merged_cells : int;    (** pure cells collapsed to their centre *)
}

val compact : ?config:config -> features:float array array ->
  labels:int array -> unit -> result
(** [labels] are ±1. Points outside the clip window are clamped into
    the edge cells for cell assignment but retain their true
    coordinates if kept. *)
