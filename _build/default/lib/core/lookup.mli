(** Grid lookup table for the tester (Sec. 3.3, Fig. 3): the space of
    the remaining (compacted) specifications is cut into cells, each
    assigned a verdict sampled from the statistical model at its
    centre. The tester then bins a part with one table access instead
    of evaluating the SVM. *)

type config = {
  resolution : int;
  clip_lo : float;  (** window corners in normalised spec units *)
  clip_hi : float;
}

val default_config : config

type t

val build : ?config:config -> dim:int ->
  (float array -> Guard_band.verdict) -> t
(** Tabulates the classifier at every cell centre. The table has
    [resolution^dim] cells; raises [Invalid_argument] when that exceeds
    2²² cells (≈4 M) — at tester-relevant dimensions (2–6 kept specs)
    this is never hit. *)

val lookup : t -> float array -> Guard_band.verdict
(** Verdict of the cell containing the (normalised) measurement vector;
    out-of-window values are clamped into the edge cells, which is
    conservative because the window edge cells are bad/guard in
    practice. *)

val dim : t -> int
val cells : t -> int

val verdict_counts : t -> int * int * int
(** (good, bad, guard) cell counts — table audit. *)

val agreement : t -> (float array -> Guard_band.verdict) ->
  points:float array array -> float
(** Fraction of [points] on which the table reproduces the model. *)

val to_string : t -> string
(** Serialises the table (one character per cell) so the compacted test
    program can be shipped to the tester. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)
