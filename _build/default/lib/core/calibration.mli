(** Per-specification measurement calibration.

    The paper's exact transistor sizing is not published, so our
    simulated nominal device does not land exactly on the Table 1/2
    nominal column. A calibration maps each measured spec onto the
    paper's scale so the published acceptability ranges apply
    unchanged. The map is monotone affine per spec, so pass/fail
    topology and inter-spec correlations are preserved. *)

type mode =
  | Scale  (** value' = k·value, for ratio-scale specs (gains, currents…) *)
  | Shift  (** value' = value + d, for offset-like specs whose nominal
               is at or near zero (overshoot, cross-axis sensitivity) *)

type t

val fit : mode -> measured_nominal:float -> target_nominal:float -> t
(** [Scale] falls back to [Shift] when [measured_nominal] is too close
    to zero for a stable ratio. *)

val identity : t

val apply : t -> float -> float

val apply_all : t array -> float array -> float array
(** Element-wise; lengths must match. *)

val describe : t -> string
