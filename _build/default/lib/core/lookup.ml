type config = {
  resolution : int;
  clip_lo : float;
  clip_hi : float;
}

let default_config = { resolution = 16; clip_lo = -0.5; clip_hi = 1.5 }

type t = {
  config : config;
  dim : int;
  table : Guard_band.verdict array;  (* row-major over dim digits *)
}

let max_cells = 1 lsl 22

let build ?(config = default_config) ~dim classify =
  if dim <= 0 then invalid_arg "Lookup.build: dim must be positive";
  if config.resolution <= 0 then invalid_arg "Lookup.build: bad resolution";
  let cells =
    let rec power acc k = if k = 0 then acc else power (acc * config.resolution) (k - 1) in
    power 1 dim
  in
  if cells > max_cells then
    invalid_arg
      (Printf.sprintf "Lookup.build: %d^%d cells exceed the %d cap"
         config.resolution dim max_cells);
  let span = config.clip_hi -. config.clip_lo in
  let centre idx =
    (* decode the flat index into per-dimension digits *)
    let coords = Array.make dim 0 in
    let rest = ref idx in
    for d = dim - 1 downto 0 do
      coords.(d) <- !rest mod config.resolution;
      rest := !rest / config.resolution
    done;
    Array.map
      (fun c ->
        config.clip_lo
        +. ((float_of_int c +. 0.5) /. float_of_int config.resolution *. span))
      coords
  in
  let table = Array.init cells (fun idx -> classify (centre idx)) in
  { config; dim; table }

let cell_index t v =
  if Array.length v <> t.dim then invalid_arg "Lookup.lookup: dimension mismatch";
  let span = t.config.clip_hi -. t.config.clip_lo in
  let idx = ref 0 in
  for d = 0 to t.dim - 1 do
    let raw =
      int_of_float
        (Float.floor
           ((v.(d) -. t.config.clip_lo) /. span *. float_of_int t.config.resolution))
    in
    let c = Stdlib.max 0 (Stdlib.min (t.config.resolution - 1) raw) in
    idx := (!idx * t.config.resolution) + c
  done;
  !idx

let lookup t v = t.table.(cell_index t v)

let dim t = t.dim

let cells t = Array.length t.table

let verdict_counts t =
  Array.fold_left
    (fun (g, b, u) v ->
      match v with
      | Guard_band.Good -> (g + 1, b, u)
      | Guard_band.Bad -> (g, b + 1, u)
      | Guard_band.Guard -> (g, b, u + 1))
    (0, 0, 0) t.table

let to_string t =
  let buffer = Buffer.create (Array.length t.table + 128) in
  Buffer.add_string buffer "stc-lookup-1\n";
  Buffer.add_string buffer
    (Printf.sprintf "dim %d\nresolution %d\nclip %.17g %.17g\ncells "
       t.dim t.config.resolution t.config.clip_lo t.config.clip_hi);
  Array.iter
    (fun v ->
      Buffer.add_char buffer
        (match v with
         | Guard_band.Good -> 'G'
         | Guard_band.Bad -> 'B'
         | Guard_band.Guard -> 'U'))
    t.table;
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [ "stc-lookup-1"; dim_line; res_line; clip_line; cells_line ] ->
    let field prefix line =
      let p = prefix ^ " " in
      let n = String.length p in
      if String.length line > n && String.sub line 0 n = p then
        Some (String.sub line n (String.length line - n))
      else None
    in
    (match
       ( Option.bind (field "dim" dim_line) int_of_string_opt,
         Option.bind (field "resolution" res_line) int_of_string_opt,
         field "clip" clip_line,
         field "cells" cells_line )
     with
     | Some dim, Some resolution, Some clip, Some cells ->
       (match
          String.split_on_char ' ' clip
          |> List.filter (fun s -> s <> "")
          |> List.map float_of_string_opt
        with
        | [ Some clip_lo; Some clip_hi ] ->
          let expected =
            let rec power acc k = if k = 0 then acc else power (acc * resolution) (k - 1) in
            power 1 dim
          in
          if String.length cells <> expected then
            Error "cell count does not match dim/resolution"
          else begin
            let table = Array.make expected Guard_band.Guard in
            let ok = ref true in
            String.iteri
              (fun i c ->
                match c with
                | 'G' -> table.(i) <- Guard_band.Good
                | 'B' -> table.(i) <- Guard_band.Bad
                | 'U' -> table.(i) <- Guard_band.Guard
                | _ -> ok := false)
              cells;
            if not !ok then Error "unknown cell character"
            else Ok { config = { resolution; clip_lo; clip_hi }; dim; table }
          end
        | _ -> Error "bad clip line")
     | _ -> Error "missing or malformed header fields")
  | _ -> Error "expected a 5-line stc-lookup-1 document"

let agreement t classify ~points =
  if Array.length points = 0 then 1.0
  else begin
    let same = ref 0 in
    Array.iter
      (fun p ->
        if Guard_band.equal_verdict (lookup t p) (classify p) then incr same)
      points;
    float_of_int !same /. float_of_int (Array.length points)
  end
