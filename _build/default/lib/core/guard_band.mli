(** Guard-banded three-way classification (Sec. 4.2, Fig. 4).

    Two models are trained from acceptability ranges perturbed outward
    (loose) and inward (tight) by the guard fraction. Agreement gives a
    confident Good/Bad; disagreement places the device in the
    guard-band region, to be routed to full test. *)

type verdict = Good | Bad | Guard

type classifier = float array -> int
(** ±1 predictor over a feature vector. *)

type t

val make : tight:classifier -> loose:classifier -> t

val single : classifier -> t
(** Degenerate guard band: both models identical (never yields
    [Guard]); useful for ablations. *)

val classify : t -> float array -> verdict
(** [Good] iff both predict +1, [Bad] iff both predict −1, else
    [Guard]. A device inside the tight range is necessarily inside the
    loose one, so with consistent models the tight prediction +1 and
    loose −1 cannot co-occur; if it does (model noise) the verdict is
    still [Guard]. *)

val verdict_to_string : verdict -> string

val equal_verdict : verdict -> verdict -> bool
