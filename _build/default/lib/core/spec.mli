(** Device specifications: a named performance parameter with an
    acceptability range (Sec. 2.1 of the paper). *)

type range = {
  lower : float;
  upper : float;
}

type t = {
  name : string;
  unit_label : string;
  nominal : float;
  range : range;
}

val make : name:string -> unit_label:string -> nominal:float ->
  lower:float -> upper:float -> t
(** Raises [Invalid_argument] unless [lower < upper]. *)

val within : range -> float -> bool
(** Inclusive on both bounds. *)

val passes : t -> float -> bool

val width : range -> float

val normalize : t -> float -> float
(** Maps the range to [0,1] (Sec. 4.3): lower bound ↦ 0, upper ↦ 1.
    Good values land inside [0,1], bad values outside. *)

val denormalize : t -> float -> float

val perturb : t -> fraction:float -> t
(** [perturb spec ~fraction] moves each boundary outward by
    [fraction]·|boundary| (inward for negative [fraction]) — the
    paper's "±1 % of the acceptability range boundaries" (Sec. 5.1).
    A zero boundary does not move. Raises [Invalid_argument] if the
    perturbed range collapses. *)

val distance_to_boundary : t -> float -> float
(** Distance from a value to the nearest range boundary, as a fraction
    of that boundary's magnitude (range width for zero boundaries).
    Used for proximity-based guard banding. *)

val pp : Format.formatter -> t -> unit
