(** Distribution-based guard banding — the paper's future-work item
    "estimate the guard-band region based on the device distribution as
    opposed to a fixed value" (Sec. 6).

    Instead of perturbing the acceptability ranges by a preset ±δ and
    training two models, a single model is trained and the guard band
    is the region where its decision value is small: the margin is set
    to the empirical quantile of |f(X)| over the training population so
    that an expected [target_guard] fraction of production devices is
    routed to full test. *)

type config = {
  learner : Compaction.learner;
  target_guard : float;  (** desired guard fraction, e.g. 0.05 *)
}

val default_config : config
(** ε-SVR (C = 10, ε = 0.1, γ = 1/dim) targeting 5 % guard volume. *)

type t

val train : ?config:config -> Device_data.t -> dropped:int array -> t
(** Trains the decision function on pass/fail of [dropped] and fits the
    margin on the same training data. *)

val margin : t -> float
(** The fitted decision-value margin. *)

val band : t -> Guard_band.t
(** Good iff f(x) ≥ margin, Bad iff f(x) ≤ −margin, Guard otherwise. *)

val flow : t -> Compaction.flow
(** Packages the adaptive band as a production flow (no
    measured-proximity guarding — the margin already encodes the
    distribution). *)
