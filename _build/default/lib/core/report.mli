(** Plain-text rendering of tables and series for the bench harness and
    CLI — the "regenerate the paper's tables" output layer. *)

val table : ?title:string -> header:string list -> string list list -> string
(** Column-aligned ASCII table. All rows must have the header's arity. *)

val series :
  ?title:string -> x_label:string -> x:string list ->
  (string * float list) list -> string
(** A figure rendered as a table: one row per x value, one column per
    curve. Column lists must match the length of [x]. *)

val pct : float -> string
(** Formats a percentage with two decimals, e.g. "0.60%". *)

val g3 : float -> string
(** Compact %g with 3 significant digits. *)

val ascii_plot :
  ?width:int -> ?height:int -> (float * float) array -> string
(** Quick scatter/level plot of a 2-D region sample set for the Fig. 3
    illustration: points are binned to a character grid; density shown
    as characters. *)
