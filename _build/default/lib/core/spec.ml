type range = {
  lower : float;
  upper : float;
}

type t = {
  name : string;
  unit_label : string;
  nominal : float;
  range : range;
}

let make ~name ~unit_label ~nominal ~lower ~upper =
  if not (lower < upper) then
    invalid_arg (Printf.sprintf "Spec.make %s: lower must be < upper" name);
  { name; unit_label; nominal; range = { lower; upper } }

let within r v = v >= r.lower && v <= r.upper

let passes t v = within t.range v

let width r = r.upper -. r.lower

let normalize t v = (v -. t.range.lower) /. width t.range

let denormalize t u = t.range.lower +. (u *. width t.range)

let perturb t ~fraction =
  let lower = t.range.lower -. (fraction *. Float.abs t.range.lower) in
  let upper = t.range.upper +. (fraction *. Float.abs t.range.upper) in
  if not (lower < upper) then
    invalid_arg (Printf.sprintf "Spec.perturb %s: range collapsed" t.name);
  { t with range = { lower; upper } }

let distance_to_boundary t v =
  let relative bound =
    let scale =
      if Float.abs bound > 0.0 then Float.abs bound else width t.range
    in
    Float.abs (v -. bound) /. scale
  in
  Float.min (relative t.range.lower) (relative t.range.upper)

let pp fmt t =
  Format.fprintf fmt "%s [%s]: nominal %g, range %g..%g" t.name t.unit_label
    t.nominal t.range.lower t.range.upper
