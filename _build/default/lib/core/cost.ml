type tri_temp = {
  full : float;
  compacted : float;
  saving_pct : float;
}

let tri_temperature ?(unit_cost = 1.0) ~n ~room_pass ~guard () =
  if n < 0 || room_pass < 0 || room_pass > n || guard < 0 || guard > n then
    invalid_arg "Cost.tri_temperature: inconsistent counts";
  let f = float_of_int in
  let full = unit_cost *. (f n +. (2.0 *. f room_pass)) in
  let compacted = unit_cost *. (f (n - guard) +. (3.0 *. f guard)) in
  let saving_pct = if full = 0.0 then 0.0 else 100.0 *. (1.0 -. (compacted /. full)) in
  { full; compacted; saving_pct }

type per_spec = {
  spec_costs : float array;
  full_cost : float;
  compacted_cost : float;
  retest_overhead : float;
  expected_cost : float;
  saving_fraction : float;
}

let per_spec_flow ~spec_costs ~kept ~guard_rate =
  if guard_rate < 0.0 || guard_rate > 1.0 then
    invalid_arg "Cost.per_spec_flow: guard_rate outside [0,1]";
  Array.iter
    (fun c -> if c < 0.0 then invalid_arg "Cost.per_spec_flow: negative cost")
    spec_costs;
  let full_cost = Array.fold_left ( +. ) 0.0 spec_costs in
  let compacted_cost =
    Array.fold_left (fun acc j -> acc +. spec_costs.(j)) 0.0 kept
  in
  let retest_overhead = guard_rate *. full_cost in
  let expected_cost = compacted_cost +. retest_overhead in
  let saving_fraction =
    if full_cost = 0.0 then 0.0 else 1.0 -. (expected_cost /. full_cost)
  in
  {
    spec_costs;
    full_cost;
    compacted_cost;
    retest_overhead;
    expected_cost;
    saving_fraction;
  }
