type mode = Scale | Shift

type t =
  | Factor of float
  | Offset of float

let fit mode ~measured_nominal ~target_nominal =
  match mode with
  | Scale ->
    if Float.abs measured_nominal < 1e-30 then
      Offset (target_nominal -. measured_nominal)
    else Factor (target_nominal /. measured_nominal)
  | Shift -> Offset (target_nominal -. measured_nominal)

let identity = Factor 1.0

let apply t v =
  match t with
  | Factor k -> k *. v
  | Offset d -> v +. d

let apply_all ts vs =
  if Array.length ts <> Array.length vs then
    invalid_arg "Calibration.apply_all: length mismatch";
  Array.mapi (fun i v -> apply ts.(i) v) vs

let describe = function
  | Factor k -> Printf.sprintf "x%.6g" k
  | Offset d -> Printf.sprintf "%+.6g" d
