(** The regression-based alternative that Sec. 4.1 of the paper argues
    against: instead of classifying pass/fail of the dropped set
    directly, train one ε-SVR *value* regressor per dropped
    specification, predict the spec values, and apply the acceptability
    ranges to the predictions.

    This is the approach of the alternate-test literature the paper
    cites; it needs to model the full response surface rather than just
    the class boundary, which is why the paper prefers classification.
    Implemented here as a baseline for the comparison ablation. *)

type config = {
  c : float;
  epsilon : float;
  gamma : float option;  (** None = 1/dim *)
}

val default_config : config
(** C = 10, ε = 0.01 (in normalised units), γ = 1/dim. *)

type t

val train : ?config:config -> Device_data.t -> dropped:int array -> t
(** One regressor per dropped spec, each mapping the normalised kept
    features to the dropped spec's *normalised* value. *)

val predict_values : t -> float array -> float array
(** [predict_values t features] returns the predicted (denormalised)
    values of the dropped specs, in [dropped] order. *)

val classify : t -> float array -> int
(** +1 iff every predicted dropped-spec value falls inside its
    acceptability range — the drop-in replacement for the
    classification model in the compaction flow. *)

val prediction_error : t -> Device_data.t -> float
(** Fraction of instances whose dropped-set pass/fail the thresholded
    regression mispredicts (same metric as
    {!Compaction.prediction_error}). *)

val dropped : t -> int array
val kept : t -> int array
