lib/core/calibration.mli:
