lib/core/compaction.mli: Device_data Grid_compact Guard_band Metrics Order Spec
