lib/core/metrics.mli: Format Guard_band
