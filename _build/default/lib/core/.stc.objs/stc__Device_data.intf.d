lib/core/device_data.mli: Spec Stc_process
