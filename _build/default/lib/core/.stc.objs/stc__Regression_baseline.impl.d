lib/core/regression_baseline.ml: Array Device_data Spec Stc_svm
