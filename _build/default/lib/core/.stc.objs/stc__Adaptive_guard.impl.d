lib/core/adaptive_guard.ml: Array Compaction Device_data Float Guard_band Spec Stc_numerics Stc_svm
