lib/core/device_data.ml: Array Printf Spec Stc_process
