lib/core/lookup.mli: Guard_band
