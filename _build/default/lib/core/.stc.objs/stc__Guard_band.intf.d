lib/core/guard_band.mli:
