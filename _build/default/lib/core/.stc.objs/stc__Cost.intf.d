lib/core/cost.mli:
