lib/core/grid_compact.mli:
