lib/core/spec.ml: Float Format Printf
