lib/core/experiment.mli: Compaction Device_data Spec Stc_process
