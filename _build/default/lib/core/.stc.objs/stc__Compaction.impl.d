lib/core/compaction.ml: Array Device_data Grid_compact Guard_band List Metrics Order Spec Stc_svm
