lib/core/regression_baseline.mli: Device_data
