lib/core/order.mli: Device_data
