lib/core/experiment.ml: Array Calibration Compaction Device_data Lazy List Printf Spec Stc_circuit Stc_mems Stc_numerics Stc_process
