lib/core/guard_band.ml:
