lib/core/report.ml: Array Buffer List Printf Stc_numerics Stdlib String
