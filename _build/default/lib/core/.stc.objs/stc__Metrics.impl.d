lib/core/metrics.ml: Array Format Guard_band
