lib/core/grid_compact.ml: Array Float Hashtbl List Stdlib String
