lib/core/report.mli:
