lib/core/order.ml: Array Device_data Float Hashtbl List Option Spec Stc_numerics
