lib/core/tester.ml: Array Compaction Device_data Guard_band Lookup Metrics Spec
