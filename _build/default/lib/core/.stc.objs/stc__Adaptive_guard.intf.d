lib/core/adaptive_guard.mli: Compaction Device_data Guard_band
