lib/core/cost.ml: Array
