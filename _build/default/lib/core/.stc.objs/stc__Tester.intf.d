lib/core/tester.mli: Compaction Device_data Guard_band Lookup Metrics
