lib/core/calibration.ml: Array Float Printf
