lib/core/lookup.ml: Array Buffer Float Guard_band List Option Printf Stdlib String
