(** Deterministic, splittable pseudo-random generator (splitmix64).

    All stochastic behaviour in the library flows through an explicit
    [Rng.t] so that every experiment is reproducible from a seed, and
    independent sub-streams (e.g. one per Monte-Carlo instance) can be
    derived with {!split} without correlation. *)

type t

val create : int -> t
(** [create seed] initialises a generator from a seed. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). Requires [lo <= hi]. *)

val normal : t -> float
(** Standard normal via Box–Muller (fresh pair per call as needed). *)

val gaussian : t -> mean:float -> sigma:float -> float

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on empty arrays. *)
