(** Polynomials with float coefficients, lowest degree first. *)

type t = float array
(** [c.(k)] is the coefficient of x^k. The zero polynomial is [||]. *)

val eval : t -> float -> float
(** Horner evaluation. *)

val derive : t -> t

val add : t -> t -> t
val mul : t -> t -> t

val fit : (float * float) array -> degree:int -> t
(** Least-squares polynomial fit through the given points. Requires
    more points than [degree]. *)

val roots_in : t -> lo:float -> hi:float -> steps:int -> float list
(** Real roots located by sign-change scanning plus Brent refinement;
    resolution limited by [steps]. *)
