let linear points x =
  let n = Array.length points in
  if n = 0 then invalid_arg "Interp.linear: no points";
  let x0, y0 = points.(0) and xn, yn = points.(n - 1) in
  if x <= x0 then y0
  else if x >= xn then yn
  else begin
    (* binary search for the segment containing x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      let xm, _ = points.(mid) in
      if xm <= x then lo := mid else hi := mid
    done;
    let xa, ya = points.(!lo) and xb, yb = points.(!hi) in
    if xb = xa then ya
    else ya +. ((yb -. ya) *. (x -. xa) /. (xb -. xa))
  end

let segment_crossing (xa, ya) (xb, yb) ~level ~direction =
  let da = ya -. level and db = yb -. level in
  let qualifies =
    match direction with
    | `Rising -> da < 0.0 && db >= 0.0
    | `Falling -> da > 0.0 && db <= 0.0
    | `Any -> (da < 0.0 && db >= 0.0) || (da > 0.0 && db <= 0.0)
  in
  if not qualifies then None
  else if db = da then Some xa
  else Some (xa +. ((xb -. xa) *. (-.da /. (db -. da))))

let crossings points ~level ~direction =
  let out = ref [] in
  for i = 0 to Array.length points - 2 do
    match segment_crossing points.(i) points.(i + 1) ~level ~direction with
    | Some x -> out := x :: !out
    | None -> ()
  done;
  List.rev !out

let crossing points ~level ~direction =
  match crossings points ~level ~direction with
  | [] -> None
  | x :: _ -> Some x

let linspace lo hi n =
  if n < 2 then invalid_arg "Interp.linspace: need at least 2 points";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let logspace lo hi n =
  if lo <= 0.0 then invalid_arg "Interp.logspace: lo must be positive";
  if hi <= lo then invalid_arg "Interp.logspace: hi must exceed lo";
  if n < 2 then invalid_arg "Interp.logspace: need at least 2 points";
  let llo = log10 lo and lhi = log10 hi in
  Array.init n (fun i ->
      10.0 ** (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))
