(** Complex dense matrices and a complex LU solver, used by the AC
    (small-signal frequency-domain) analysis where the MNA system is
    [(G + jωC) x = b]. *)

type t = {
  rows : int;
  cols : int;
  data : Complex.t array;  (** row-major *)
}

val create : int -> int -> Complex.t -> t
val init : int -> int -> (int -> int -> Complex.t) -> t
val copy : t -> t

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val add_to : t -> int -> int -> Complex.t -> unit

val of_real : Mat.t -> t
(** Embeds a real matrix (zero imaginary parts). *)

val combine : Mat.t -> Mat.t -> float -> t
(** [combine g c omega] is the complex matrix [G + jωC]; [g] and [c]
    must have identical dimensions. *)

val mul_vec : t -> Complex.t array -> Complex.t array

exception Singular of int

val solve : t -> Complex.t array -> Complex.t array
(** Gaussian elimination with partial pivoting (by modulus). Raises
    [Singular] on a numerically singular system. The inputs are not
    modified. *)
