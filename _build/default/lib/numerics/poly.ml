type t = float array

let eval c x =
  let acc = ref 0.0 in
  for k = Array.length c - 1 downto 0 do
    acc := (!acc *. x) +. c.(k)
  done;
  !acc

let derive c =
  let n = Array.length c in
  if n <= 1 then [||]
  else Array.init (n - 1) (fun k -> float_of_int (k + 1) *. c.(k + 1))

let add a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  Array.init n (fun k ->
      (if k < Array.length a then a.(k) else 0.0)
      +. if k < Array.length b then b.(k) else 0.0)

let mul a b =
  if Array.length a = 0 || Array.length b = 0 then [||]
  else begin
    let c = Array.make (Array.length a + Array.length b - 1) 0.0 in
    Array.iteri
      (fun i ai ->
        Array.iteri (fun j bj -> c.(i + j) <- c.(i + j) +. (ai *. bj)) b)
      a;
    c
  end

let fit points ~degree =
  if degree < 0 then invalid_arg "Poly.fit: negative degree";
  if Array.length points <= degree then
    invalid_arg "Poly.fit: not enough points for requested degree";
  let m = Array.length points in
  let a = Mat.init m (degree + 1) (fun i k -> fst points.(i) ** float_of_int k) in
  let b = Array.map snd points in
  Lu.least_squares a b

let roots_in c ~lo ~hi ~steps =
  let f = eval c in
  let h = (hi -. lo) /. float_of_int steps in
  let out = ref [] in
  for i = 0 to steps - 1 do
    let a = lo +. (h *. float_of_int i) in
    let b = a +. h in
    let fa = f a and fb = f b in
    if fa = 0.0 then out := a :: !out
    else if (fa < 0.0 && fb > 0.0) || (fa > 0.0 && fb < 0.0) then
      out := Roots.brent f a b :: !out
  done;
  List.rev !out
