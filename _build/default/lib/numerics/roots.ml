let opposite_signs fa fb = (fa <= 0.0 && fb >= 0.0) || (fa >= 0.0 && fb <= 0.0)

let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if not (opposite_signs fa fb) then
    invalid_arg "Roots.bisect: f(a) and f(b) must have opposite signs";
  let rec loop a fa b iter =
    let m = 0.5 *. (a +. b) in
    if b -. a < tol || iter >= max_iter then m
    else begin
      let fm = f m in
      if fm = 0.0 then m
      else if opposite_signs fa fm then loop a fa m (iter + 1)
      else loop m fm b (iter + 1)
    end
  in
  if a <= b then loop a fa b 0 else loop b fb a 0

(* Brent's method as in Numerical Recipes; falls back to bisection when the
   interpolation step is not contracting fast enough. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if not (opposite_signs fa fb) then
    invalid_arg "Roots.brent: f(a) and f(b) must have opposite signs";
  let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
  if Float.abs !fa < Float.abs !fb then begin
    let t = !a in a := !b; b := t;
    let t = !fa in fa := !fb; fb := t
  end;
  let c = ref !a and fc = ref !fa in
  let d = ref (!b -. !a) and e = ref (!b -. !a) in
  let result = ref !b in
  (try
     for _ = 1 to max_iter do
       if (!fb > 0.0 && !fc > 0.0) || (!fb < 0.0 && !fc < 0.0) then begin
         c := !a; fc := !fa; d := !b -. !a; e := !d
       end;
       if Float.abs !fc < Float.abs !fb then begin
         a := !b; b := !c; c := !a;
         fa := !fb; fb := !fc; fc := !fa
       end;
       let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
       let xm = 0.5 *. (!c -. !b) in
       if Float.abs xm <= tol1 || !fb = 0.0 then begin
         result := !b;
         raise Exit
       end;
       if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
         let s = !fb /. !fa in
         let p, q =
           if !a = !c then
             let p = 2.0 *. xm *. s in
             (p, 1.0 -. s)
           else begin
             let q = !fa /. !fc and r = !fb /. !fc in
             let p = s *. ((2.0 *. xm *. q *. (q -. r))
                           -. ((!b -. !a) *. (r -. 1.0))) in
             (p, (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0))
           end
         in
         let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
         let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
         let min2 = Float.abs (!e *. q) in
         if 2.0 *. p < Float.min min1 min2 then begin
           e := !d;
           d := p /. q
         end else begin
           d := xm;
           e := !d
         end
       end else begin
         d := xm;
         e := !d
       end;
       a := !b;
       fa := !fb;
       if Float.abs !d > tol1 then b := !b +. !d
       else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
       fb := f !b
     done;
     result := !b
   with Exit -> ());
  !result

let find_bracket f ~lo ~hi ~steps =
  if steps <= 0 then invalid_arg "Roots.find_bracket: steps must be positive";
  let h = (hi -. lo) /. float_of_int steps in
  let rec scan i prev_x prev_f =
    if i > steps then None
    else begin
      let x = lo +. (h *. float_of_int i) in
      let fx = f x in
      if opposite_signs prev_f fx then Some (prev_x, x)
      else scan (i + 1) x fx
    end
  in
  scan 1 lo (f lo)
