(** Scalar root finding, used for spec extraction (e.g. locating the
    -3 dB crossing of a frequency response). *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [a, b]. Requires
    [f a] and [f b] of opposite (or zero) sign, else
    [Invalid_argument]. Default [tol] 1e-12 (on the interval width),
    [max_iter] 200. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method (inverse quadratic interpolation with bisection
    fallback); same contract as {!bisect}, faster convergence. *)

val find_bracket :
  (float -> float) -> lo:float -> hi:float -> steps:int ->
  (float * float) option
(** Scans [lo, hi] in [steps] equal segments and returns the first
    sub-interval over which [f] changes sign. *)
