exception Singular of int

type t = {
  lu : Mat.t;          (* packed L (unit diagonal, below) and U (on/above) *)
  perm : int array;    (* row permutation *)
  sign : float;        (* permutation parity, for det *)
}

(* Doolittle LU with partial pivoting. Entries below the diagonal hold L,
   the diagonal and above hold U. *)
let factor a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Lu.factor: matrix not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* pivot search in column k *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot k) then
        pivot := i
    done;
    if Float.abs (Mat.get lu !pivot k) < 1e-300 then raise (Singular k);
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !pivot j);
        Mat.set lu !pivot j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- t;
      sign := -. !sign
    end;
    let pk = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let lik = Mat.get lu i k /. pk in
      Mat.set lu i k lik;
      if lik <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (lik *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_in_place f b =
  let n, _ = Mat.dims f.lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  (* apply permutation *)
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  (* forward substitution, L has unit diagonal *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get f.lu i i
  done;
  Array.blit x 0 b 0 n

let solve f b =
  let x = Vec.copy b in
  solve_in_place f x;
  x

let det f =
  let n, _ = Mat.dims f.lu in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let solve_system a b = solve (factor a) b

let least_squares a b =
  let at = Mat.transpose a in
  let ata = Mat.mul at a in
  let atb = Mat.mul_vec at b in
  solve_system ata atb
