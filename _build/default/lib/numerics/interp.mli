(** Interpolation and sweep-point generation. *)

val linear : (float * float) array -> float -> float
(** [linear points x] interpolates linearly on [points] (sorted by
    ascending abscissa); clamps outside the range. Requires at least
    one point. *)

val crossing :
  (float * float) array -> level:float -> direction:[ `Rising | `Falling | `Any ] ->
  float option
(** First abscissa at which the piecewise-linear curve crosses [level]
    in the given direction. *)

val crossings :
  (float * float) array -> level:float -> direction:[ `Rising | `Falling | `Any ] ->
  float list
(** All crossings, in order. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n] equally spaced points, endpoints
    included. Requires [n >= 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace lo hi n]: [n] points logarithmically spaced between
    [lo] and [hi]. Requires [0 < lo], [lo < hi], [n >= 2]. *)
