lib/numerics/interp.mli:
