lib/numerics/mat.ml: Array Format Printf
