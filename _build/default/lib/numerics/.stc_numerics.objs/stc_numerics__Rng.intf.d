lib/numerics/rng.mli:
