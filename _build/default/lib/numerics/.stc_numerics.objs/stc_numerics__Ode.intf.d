lib/numerics/ode.mli: Vec
