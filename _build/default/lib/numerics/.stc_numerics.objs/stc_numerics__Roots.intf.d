lib/numerics/roots.mli:
