lib/numerics/poly.ml: Array List Lu Mat Roots Stdlib
