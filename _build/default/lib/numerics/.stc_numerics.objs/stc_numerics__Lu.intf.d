lib/numerics/lu.mli: Mat Vec
