lib/numerics/cmat.mli: Complex Mat
