lib/numerics/poly.mli:
