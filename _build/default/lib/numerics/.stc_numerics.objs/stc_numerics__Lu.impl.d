lib/numerics/lu.ml: Array Float Mat Vec
