lib/numerics/stats.mli:
