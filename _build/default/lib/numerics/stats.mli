(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Raises [Invalid_argument] on the empty array. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for arrays of length < 2. *)

val stddev : float array -> float

val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [0,1]; linear interpolation between
    order statistics. The input is not modified. *)

val median : float array -> float

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either input is constant. *)

val covariance : float array -> float array -> float

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
(** Counts per bin over [lo, hi); values outside the range are clamped
    into the first/last bin. Requires [bins > 0] and [lo < hi]. *)

val summary : float array -> string
(** One-line "n mean sd min med max" description for logs. *)
