(** Explicit ODE integration for the MEMS mechanical transient model. *)

type derivative = float -> Vec.t -> Vec.t
(** [f t y] returns dy/dt. *)

val rk4_step : derivative -> float -> Vec.t -> float -> Vec.t
(** [rk4_step f t y h] advances one classical Runge–Kutta step. *)

val integrate :
  derivative -> t0:float -> t1:float -> dt:float -> y0:Vec.t ->
  (float * Vec.t) array
(** Fixed-step RK4 from [t0] to [t1] (inclusive endpoint, last step may
    be shortened). Returns the full trajectory including the initial
    point. Requires [dt > 0] and [t1 >= t0]. *)

val integrate_final :
  derivative -> t0:float -> t1:float -> dt:float -> y0:Vec.t -> Vec.t
(** As {!integrate} but keeps only the final state (no trajectory
    allocation). *)
