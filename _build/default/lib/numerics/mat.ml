type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  let m = create rows cols 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let copy m = { m with data = Array.copy m.data }

let get m i j =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j)

let set m i j x =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j) <- x

let add_to m i j x =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  let k = (i * m.cols) + j in
  m.data.(k) <- m.data.(k) +. x

let dims m = (m.rows, m.cols)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: dimension mismatch" name)

let add a b =
  check_same "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  let c = create a.rows b.cols 0.0 in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          let idx = (i * c.cols) + j in
          c.data.(idx) <- c.data.(idx) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec m x =
  if m.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. x.(j))
      done;
      !acc)

let row m i = Array.init m.cols (fun j -> get m i j)

let col m j = Array.init m.rows (fun i -> get m i j)

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then create 0 0 0.0
  else begin
    let c = Array.length rows.(0) in
    Array.iter
      (fun rw ->
        if Array.length rw <> c then invalid_arg "Mat.of_rows: ragged rows")
      rows;
    init r c (fun i j -> rows.(i).(j))
  end

let to_rows m = Array.init m.rows (fun i -> row m i)

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "|";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt " %10.4g" (get m i j)
    done;
    Format.fprintf fmt " |@\n"
  done
