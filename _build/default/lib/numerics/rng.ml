(* splitmix64: tiny, fast, passes BigCrush on its 64-bit outputs, and is
   trivially splittable, which is what Monte-Carlo instance streams need. *)

type t = { mutable state : int64; mutable cached_normal : float option }

let golden = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; cached_normal = None }

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

let mix z0 =
  let z = Int64.mul (Int64.logxor z0 (Int64.shift_right_logical z0 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uint64 t = mix (next_state t)

let split t =
  { state = uint64 t; cached_normal = None }

let copy t = { state = t.state; cached_normal = t.cached_normal }

(* Take the top 53 bits for a uniform double in [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let normal t =
  match t.cached_normal with
  | Some z ->
    t.cached_normal <- None;
    z
  | None ->
    (* Box-Muller; u1 must avoid 0 for the log *)
    let rec nonzero () =
      let u = float t in
      if u > 0.0 then u else nonzero ()
    in
    let u1 = nonzero () and u2 = float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.cached_normal <- Some (r *. sin theta);
    r *. cos theta

let gaussian t ~mean ~sigma = mean +. (sigma *. normal t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* modulo bias is negligible for the small bounds used here, but reject
     anyway to keep the distribution exact *)
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int (Int64.of_int n)) in
  let rec draw () =
    let x = Int64.shift_right_logical (uint64 t) 1 in
    if x >= limit then draw () else Int64.to_int (Int64.rem x (Int64.of_int n))
  in
  draw ()

let bool t = Int64.logand (uint64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
