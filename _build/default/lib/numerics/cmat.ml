type t = { rows : int; cols : int; data : Complex.t array }

exception Singular of int

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Cmat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  let m = create rows cols Complex.zero in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }

let get m i j =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j)

let set m i j x =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j) <- x

let add_to m i j x =
  let k = (i * m.cols) + j in
  m.data.(k) <- Complex.add m.data.(k) x

let of_real g =
  let rows, cols = Mat.dims g in
  init rows cols (fun i j -> { Complex.re = Mat.get g i j; im = 0.0 })

let combine g c omega =
  let rows, cols = Mat.dims g in
  let rc, cc = Mat.dims c in
  if rc <> rows || cc <> cols then invalid_arg "Cmat.combine: dimension mismatch";
  init rows cols (fun i j ->
      { Complex.re = Mat.get g i j; im = omega *. Mat.get c i j })

let mul_vec m x =
  if m.cols <> Array.length x then invalid_arg "Cmat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref Complex.zero in
      for j = 0 to m.cols - 1 do
        acc := Complex.add !acc (Complex.mul m.data.((i * m.cols) + j) x.(j))
      done;
      !acc)

(* In-place Gaussian elimination on copies; partial pivoting by modulus. *)
let solve a b0 =
  let n = a.rows in
  if a.cols <> n then invalid_arg "Cmat.solve: matrix not square";
  if Array.length b0 <> n then invalid_arg "Cmat.solve: rhs dimension mismatch";
  let m = copy a in
  let b = Array.copy b0 in
  for k = 0 to n - 1 do
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm (get m i k) > Complex.norm (get m !pivot k) then pivot := i
    done;
    if Complex.norm (get m !pivot k) < 1e-300 then raise (Singular k);
    if !pivot <> k then begin
      for j = k to n - 1 do
        let t = get m k j in
        set m k j (get m !pivot j);
        set m !pivot j t
      done;
      let t = b.(k) in
      b.(k) <- b.(!pivot);
      b.(!pivot) <- t
    end;
    let pk = get m k k in
    for i = k + 1 to n - 1 do
      let f = Complex.div (get m i k) pk in
      if f <> Complex.zero then begin
        for j = k to n - 1 do
          set m i j (Complex.sub (get m i j) (Complex.mul f (get m k j)))
        done;
        b.(i) <- Complex.sub b.(i) (Complex.mul f b.(k))
      end
    done
  done;
  let x = Array.make n Complex.zero in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := Complex.sub !acc (Complex.mul (get m i j) x.(j))
    done;
    x.(i) <- Complex.div !acc (get m i i)
  done;
  x
