type t = float array

let create n x = Array.make n x

let init = Array.init

let copy = Array.copy

let dim = Array.length

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)"
                   name (Array.length x) (Array.length y))

let add x y =
  check_dims "add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_dims "sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0.0 x

let dist2 x y =
  check_dims "dist2" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let sum x = Array.fold_left ( +. ) 0.0 x

let map = Array.map

let map2 f x y =
  check_dims "map2" x y;
  Array.mapi (fun i xi -> f xi y.(i)) x

let max_index x =
  if Array.length x = 0 then invalid_arg "Vec.max_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let of_list = Array.of_list

let to_list = Array.to_list

let pp fmt x =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i xi ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%.6g" xi)
    x;
  Format.fprintf fmt "]"
