type derivative = float -> Vec.t -> Vec.t

let rk4_step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.0)) (Vec.add y (Vec.scale (h /. 2.0) k1)) in
  let k3 = f (t +. (h /. 2.0)) (Vec.add y (Vec.scale (h /. 2.0) k2)) in
  let k4 = f (t +. h) (Vec.add y (Vec.scale h k3)) in
  let incr =
    Vec.add (Vec.add k1 (Vec.scale 2.0 k2)) (Vec.add (Vec.scale 2.0 k3) k4)
  in
  Vec.add y (Vec.scale (h /. 6.0) incr)

let check ~t0 ~t1 ~dt =
  if dt <= 0.0 then invalid_arg "Ode.integrate: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0"

let integrate f ~t0 ~t1 ~dt ~y0 =
  check ~t0 ~t1 ~dt;
  let steps = int_of_float (Float.ceil ((t1 -. t0) /. dt)) in
  let out = Array.make (steps + 1) (t0, y0) in
  let t = ref t0 and y = ref y0 in
  for i = 1 to steps do
    let h = Float.min dt (t1 -. !t) in
    y := rk4_step f !t !y h;
    t := !t +. h;
    out.(i) <- (!t, !y)
  done;
  out

let integrate_final f ~t0 ~t1 ~dt ~y0 =
  check ~t0 ~t1 ~dt;
  let t = ref t0 and y = ref y0 in
  while !t < t1 -. 1e-15 do
    let h = Float.min dt (t1 -. !t) in
    y := rk4_step f !t !y h;
    t := !t +. h
  done;
  !y
