(** Dense float vectors.

    A vector is a plain [float array]; this module gathers the numeric
    operations used across the simulators and the SVM solver so callers
    never re-implement loops. All binary operations require equal
    lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a fresh vector of [n] copies of [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val copy : t -> t

val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute entry; 0 for the empty vector. *)

val dist2 : t -> t -> float
(** [dist2 x y] is the squared Euclidean distance between [x] and [y]. *)

val sum : t -> float

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val max_index : t -> int
(** Index of the largest entry (first on ties). Raises
    [Invalid_argument] on the empty vector. *)

val of_list : float list -> t
val to_list : t -> float list

val pp : Format.formatter -> t -> unit
(** Prints as [[x0; x1; ...]] with 6 significant digits. *)
