(** LU factorisation with partial pivoting, the linear solver behind DC,
    transient and least-squares computations. *)

exception Singular of int
(** Raised when a pivot column [i] has no usable pivot (matrix is
    numerically singular). *)

type t
(** A factorisation of a square matrix. *)

val factor : Mat.t -> t
(** [factor a] computes PA = LU. Raises [Singular] if [a] is singular,
    [Invalid_argument] if [a] is not square. [a] is not modified. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] solves [A x = b]. *)

val solve_in_place : t -> Vec.t -> unit
(** As {!solve} but overwrites [b] with the solution. *)

val det : t -> float
(** Determinant of the factored matrix. *)

val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve]. *)

val least_squares : Mat.t -> Vec.t -> Vec.t
(** [least_squares a b] solves the normal equations [Aᵀ A x = Aᵀ b];
    suitable for small well-conditioned fitting problems. *)
