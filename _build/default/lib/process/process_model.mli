(** Richer manufacturing-process models — the paper's future-work item
    "generate training instances that model the manufacturing process
    in a more accurate fashion" (Sec. 6).

    {1 Correlated (die-level + local) variation}

    Real process variation decomposes into a die-level component shared
    by every device parameter on the die and an independent local
    (mismatch) component. [correlated] preserves each parameter's
    marginal spread but splits its variance: relative deviation
    [d_i = √ρ·G + √(1−ρ)·L_i] with [G] one standard normal per
    instance, [L_i] independent standard normals.

    {1 Defect injection}

    "test instances that also contain real defects": with probability
    [rate] a drawn instance receives one gross parametric defect — a
    randomly chosen parameter is multiplied or divided by [severity],
    modelling a short/open-like structural fault far outside normal
    variation. *)

type correlated

val correlated :
  params:Variation.param array -> die_correlation:float -> correlated
(** [die_correlation] ρ ∈ [0,1]; ρ = 0 reduces to independent Gaussian
    variation with each parameter's own spread (uniform distributions
    are matched by variance). *)

val draw_correlated : correlated -> Stc_numerics.Rng.t -> float array

val correlated_device :
  Stc_numerics.Rng.t -> Montecarlo.device -> die_correlation:float -> n:int ->
  Montecarlo.dataset
(** Convenience: {!Montecarlo.generate_with} under the correlated model. *)

type defect_model = {
  rate : float;      (** probability an instance is defective *)
  severity : float;  (** gross multiplier, e.g. 3.0 *)
}

val default_defect_model : defect_model
(** 2 % defect rate, ×/÷ 3 severity. *)

val inject :
  Stc_numerics.Rng.t -> defect_model -> float array -> float array * bool
(** [inject rng model params] returns the (possibly) defected parameter
    vector and whether a defect was applied. *)

val defective_draws :
  Stc_numerics.Rng.t -> Montecarlo.device -> defect_model -> n:int ->
  Montecarlo.dataset
(** Monte-Carlo generation where each draw passes through {!inject}. *)
