(** Manufacturing-variation descriptions for device parameters. *)

type distribution =
  | Uniform_relative of float
      (** ±fraction of nominal, uniform (the paper's ±10 % draws) *)
  | Normal_relative of float
      (** σ as a fraction of nominal, Gaussian *)
  | Uniform_absolute of float * float  (** explicit [lo, hi] *)
  | Normal_absolute of float           (** absolute σ around nominal *)
  | Fixed                              (** no variation *)

type param = {
  name : string;
  nominal : float;
  dist : distribution;
}

val param : string -> float -> distribution -> param

val uniform_pct : string -> float -> pct:float -> param
(** [uniform_pct name nominal ~pct:0.10] = ±10 % uniform. *)

val sample : Stc_numerics.Rng.t -> param -> float

val sample_all : Stc_numerics.Rng.t -> param array -> float array

val nominal_values : param array -> float array

val pp : Format.formatter -> param -> unit
