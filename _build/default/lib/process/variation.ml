module Rng = Stc_numerics.Rng

type distribution =
  | Uniform_relative of float
  | Normal_relative of float
  | Uniform_absolute of float * float
  | Normal_absolute of float
  | Fixed

type param = {
  name : string;
  nominal : float;
  dist : distribution;
}

let param name nominal dist = { name; nominal; dist }

let uniform_pct name nominal ~pct = param name nominal (Uniform_relative pct)

let sample rng p =
  match p.dist with
  | Uniform_relative f ->
    let half = Float.abs (p.nominal *. f) in
    Rng.uniform rng (p.nominal -. half) (p.nominal +. half)
  | Normal_relative f -> Rng.gaussian rng ~mean:p.nominal ~sigma:(Float.abs (p.nominal *. f))
  | Uniform_absolute (lo, hi) -> Rng.uniform rng lo hi
  | Normal_absolute sigma -> Rng.gaussian rng ~mean:p.nominal ~sigma
  | Fixed -> p.nominal

let sample_all rng params = Array.map (sample rng) params

let nominal_values params = Array.map (fun p -> p.nominal) params

let pp fmt p =
  let describe =
    match p.dist with
    | Uniform_relative f -> Printf.sprintf "U(±%g%%)" (100.0 *. f)
    | Normal_relative f -> Printf.sprintf "N(σ=%g%%)" (100.0 *. f)
    | Uniform_absolute (lo, hi) -> Printf.sprintf "U[%g, %g]" lo hi
    | Normal_absolute s -> Printf.sprintf "N(σ=%g)" s
    | Fixed -> "fixed"
  in
  Format.fprintf fmt "%s = %g %s" p.name p.nominal describe
