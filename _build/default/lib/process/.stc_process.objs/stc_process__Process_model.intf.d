lib/process/process_model.mli: Montecarlo Stc_numerics Variation
