lib/process/process_model.ml: Array Float Montecarlo Stc_numerics Variation
