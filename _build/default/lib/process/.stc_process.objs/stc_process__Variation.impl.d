lib/process/variation.ml: Array Float Format Printf Stc_numerics
