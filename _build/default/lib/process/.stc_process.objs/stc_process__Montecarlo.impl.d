lib/process/montecarlo.ml: Array Atomic Domain List Printf Stc_numerics Stdlib Variation
