lib/process/montecarlo.mli: Stc_numerics Variation
