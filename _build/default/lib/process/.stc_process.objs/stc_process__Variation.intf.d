lib/process/variation.mli: Format Stc_numerics
