module Rng = Stc_numerics.Rng

type correlated = {
  params : Variation.param array;
  rho : float;
  sigmas : float array;  (* relative sigma per parameter *)
}

(* relative standard deviation implied by a variation description *)
let relative_sigma (p : Variation.param) =
  match p.Variation.dist with
  | Variation.Uniform_relative f -> Float.abs f /. sqrt 3.0
  | Variation.Normal_relative f -> Float.abs f
  | Variation.Uniform_absolute (lo, hi) ->
    if p.Variation.nominal = 0.0 then 0.0
    else Float.abs ((hi -. lo) /. p.Variation.nominal) /. (2.0 *. sqrt 3.0)
  | Variation.Normal_absolute s ->
    if p.Variation.nominal = 0.0 then 0.0
    else Float.abs (s /. p.Variation.nominal)
  | Variation.Fixed -> 0.0

let correlated ~params ~die_correlation =
  if die_correlation < 0.0 || die_correlation > 1.0 then
    invalid_arg "Process_model.correlated: die_correlation outside [0,1]";
  {
    params;
    rho = die_correlation;
    sigmas = Array.map relative_sigma params;
  }

let draw_correlated t rng =
  let die = Rng.normal rng in
  let wg = sqrt t.rho and wl = sqrt (1.0 -. t.rho) in
  Array.mapi
    (fun i p ->
      let deviation = (wg *. die) +. (wl *. Rng.normal rng) in
      p.Variation.nominal *. (1.0 +. (t.sigmas.(i) *. deviation)))
    t.params

let correlated_device rng device ~die_correlation ~n =
  let model = correlated ~params:device.Montecarlo.params ~die_correlation in
  Montecarlo.generate_with rng device ~draw:(draw_correlated model) ~n

type defect_model = {
  rate : float;
  severity : float;
}

let default_defect_model = { rate = 0.02; severity = 3.0 }

let inject rng model params =
  if model.rate < 0.0 || model.rate > 1.0 then
    invalid_arg "Process_model.inject: rate outside [0,1]";
  if model.severity <= 1.0 then
    invalid_arg "Process_model.inject: severity must exceed 1";
  if Rng.float rng >= model.rate then (params, false)
  else begin
    let defected = Array.copy params in
    let victim = Rng.int rng (Array.length params) in
    let factor = if Rng.bool rng then model.severity else 1.0 /. model.severity in
    defected.(victim) <- defected.(victim) *. factor;
    (defected, true)
  end

let defective_draws rng device model ~n =
  let draw rng =
    let params = Variation.sample_all rng device.Montecarlo.params in
    fst (inject rng model params)
  in
  (* gross defects make simulation failures likelier; allow more retries *)
  Montecarlo.generate_with ~max_failure_ratio:2.0 rng device ~draw ~n
