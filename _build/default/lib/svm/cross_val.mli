(** k-fold cross-validation and hyper-parameter grid search for the
    classifiers. *)

val kfold_indices :
  Stc_numerics.Rng.t -> n:int -> folds:int -> int array array
(** Shuffled fold assignment: [folds] arrays of indices partitioning
    [0, n). Requires [2 <= folds <= n]. *)

val svc_accuracy :
  ?c:float -> ?kernel:Kernel.t ->
  Stc_numerics.Rng.t ->
  x:float array array -> y:int array -> folds:int -> float
(** Mean held-out accuracy of {!Svc.train} over the folds. *)

val svr_sign_accuracy :
  ?c:float -> ?epsilon:float -> ?kernel:Kernel.t ->
  Stc_numerics.Rng.t ->
  x:float array array -> y:float array -> folds:int -> float
(** Mean held-out sign-agreement of {!Svr} used as a classifier. *)

type grid_result = { c : float; gamma : float; accuracy : float }

val grid_search_svc :
  Stc_numerics.Rng.t ->
  x:float array array -> y:int array -> folds:int ->
  cs:float array -> gammas:float array -> grid_result
(** Best (C, RBF γ) by cross-validated accuracy; ties go to the first
    combination scanned. *)
