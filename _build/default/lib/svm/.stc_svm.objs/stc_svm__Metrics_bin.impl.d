lib/svm/metrics_bin.ml: Array
