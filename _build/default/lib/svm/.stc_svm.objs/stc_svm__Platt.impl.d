lib/svm/platt.ml: Array Float Svc
