lib/svm/row_cache.mli:
