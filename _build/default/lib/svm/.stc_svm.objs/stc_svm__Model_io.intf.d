lib/svm/model_io.mli: Kernel Svc Svr
