lib/svm/kernel.mli: Format
