lib/svm/scale.ml: Array Stc_numerics
