lib/svm/smo.mli:
