lib/svm/scale.mli:
