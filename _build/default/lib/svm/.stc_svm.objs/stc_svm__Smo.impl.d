lib/svm/smo.ml: Array Float Stdlib
