lib/svm/cross_val.mli: Kernel Stc_numerics
