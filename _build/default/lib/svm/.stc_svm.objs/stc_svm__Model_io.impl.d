lib/svm/model_io.ml: Array Buffer Kernel List Option Printf String Svc Svr
