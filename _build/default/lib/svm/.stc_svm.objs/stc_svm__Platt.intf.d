lib/svm/platt.mli: Svc
