lib/svm/cross_val.ml: Array Kernel Stc_numerics Svc Svr
