lib/svm/kernel.ml: Array Format Stc_numerics Stdlib
