lib/svm/row_cache.ml: Hashtbl Queue Stdlib
