lib/svm/metrics_bin.mli:
