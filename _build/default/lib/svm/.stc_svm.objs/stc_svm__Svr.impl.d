lib/svm/svr.ml: Array Kernel Row_cache Smo
