lib/svm/svr.mli: Kernel
