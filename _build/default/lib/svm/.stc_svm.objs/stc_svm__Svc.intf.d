lib/svm/svc.mli: Kernel
