lib/svm/svc.ml: Array Kernel Row_cache Smo
