(** Binary-classification metrics over ±1 labels. *)

type confusion = {
  tp : int;  (** truth +1, predicted +1 *)
  tn : int;
  fp : int;  (** truth −1, predicted +1 *)
  fn : int;
}

val confusion : truth:int array -> predicted:int array -> confusion

val accuracy : confusion -> float
val error_rate : confusion -> float
val precision : confusion -> float
val recall : confusion -> float
val f1 : confusion -> float

val total : confusion -> int
