(** Per-feature affine scaling fitted on training data and replayed on
    test data (never fit scaling on test data). *)

type t

val fit_minmax : ?lo:float -> ?hi:float -> float array array -> t
(** Maps each feature's observed [min, max] to [lo, hi] (default
    [0, 1]). Constant features map to the midpoint. *)

val fit_standard : float array array -> t
(** Zero mean, unit variance per feature (constant features are left
    centred). *)

val apply : t -> float array -> float array
val apply_all : t -> float array array -> float array array

val dim : t -> int
