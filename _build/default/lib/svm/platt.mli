(** Platt scaling: maps raw SVM decision values to calibrated
    pass probabilities through a fitted sigmoid
    [P(y = +1 | f) = 1 / (1 + exp(A·f + B))].

    The fit is the regularised Newton method of Lin, Lin & Weng (2007),
    as implemented in libsvm. A probability output lets a test flow set
    the guard band by confidence (e.g. route parts with
    0.05 < P < 0.95 to full test) instead of by range perturbation. *)

type t

val fit : decision_values:float array -> labels:int array -> t
(** [labels] are ±1. Raises [Invalid_argument] on length mismatch or
    empty input; single-class inputs produce a (valid) saturated
    sigmoid. *)

val probability : t -> float -> float
(** P(y = +1) for a raw decision value; always in (0, 1). *)

val parameters : t -> float * float
(** The fitted (A, B). A is negative when larger decision values mean
    higher pass probability (the normal case). *)

val calibrate_svc :
  Svc.model -> x:float array array -> y:int array -> t
(** Fits on the model's decision values over a calibration set (use a
    held-out split, not the training data, when possible). *)

val classify_at : t -> threshold:float -> float -> int
(** +1 iff {!probability} exceeds [threshold] — the building block for
    probability-threshold guard bands (Good when P ≥ high, Bad when
    P ≤ low, guard between). *)
