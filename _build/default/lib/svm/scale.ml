type t = {
  offset : float array; (* x' = (x - offset) * factor + base *)
  factor : float array;
  base : float array;
}

let feature_column x j = Array.map (fun row -> row.(j)) x

let check_input name x =
  if Array.length x = 0 then invalid_arg ("Scale." ^ name ^ ": empty data");
  Array.length x.(0)

let fit_minmax ?(lo = 0.0) ?(hi = 1.0) x =
  let dim = check_input "fit_minmax" x in
  let offset = Array.make dim 0.0 in
  let factor = Array.make dim 0.0 in
  let base = Array.make dim 0.0 in
  for j = 0 to dim - 1 do
    let col = feature_column x j in
    let mn = Stc_numerics.Stats.min col and mx = Stc_numerics.Stats.max col in
    if mx > mn then begin
      offset.(j) <- mn;
      factor.(j) <- (hi -. lo) /. (mx -. mn);
      base.(j) <- lo
    end
    else begin
      offset.(j) <- mn;
      factor.(j) <- 0.0;
      base.(j) <- (lo +. hi) /. 2.0
    end
  done;
  { offset; factor; base }

let fit_standard x =
  let dim = check_input "fit_standard" x in
  let offset = Array.make dim 0.0 in
  let factor = Array.make dim 0.0 in
  let base = Array.make dim 0.0 in
  for j = 0 to dim - 1 do
    let col = feature_column x j in
    let m = Stc_numerics.Stats.mean col in
    let sd = Stc_numerics.Stats.stddev col in
    offset.(j) <- m;
    factor.(j) <- (if sd > 0.0 then 1.0 /. sd else 0.0);
    base.(j) <- 0.0
  done;
  { offset; factor; base }

let dim t = Array.length t.offset

let apply t row =
  if Array.length row <> dim t then invalid_arg "Scale.apply: dimension mismatch";
  Array.mapi
    (fun j v -> ((v -. t.offset.(j)) *. t.factor.(j)) +. t.base.(j))
    row

let apply_all t x = Array.map (apply t) x
