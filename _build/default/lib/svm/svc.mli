(** Soft-margin C-support-vector classification. *)

type model

val train :
  ?c:float ->
  ?kernel:Kernel.t ->
  ?eps:float ->
  x:float array array ->
  y:int array ->
  unit ->
  model
(** Trains on inputs [x] with labels [y] (each ±1). Defaults:
    [c = 1.0], RBF kernel with γ = 1/dim, [eps = 1e-3]. Raises
    [Invalid_argument] on empty data, ragged rows, or labels outside
    {−1, +1}. *)

val decision : model -> float array -> float
(** Signed distance-like decision value f(x). *)

val predict : model -> float array -> int
(** sign of {!decision}: +1 or −1 (0.0 maps to +1). *)

val n_support : model -> int
val support_vectors : model -> float array array
val bias : model -> float
val kernel : model -> Kernel.t

val dual_coefs : model -> float array
(** yᵢαᵢ for each support vector, aligned with {!support_vectors}. *)

type raw = {
  raw_kernel : Kernel.t;
  raw_sv : float array array;
  raw_coef : float array;
  raw_b : float;
}
(** The model's internal representation, exposed for serialisation
    ({!Model_io}). *)

val to_raw : model -> raw

val of_raw : raw -> model
(** Rebuilds a model; no validation beyond array-length agreement
    (raises [Invalid_argument] on mismatch). *)
