(** Text serialisation of trained models (SVMlight-style flat format),
    so a compacted test program can be trained once and shipped to the
    tester.

    Format: a header line per field, then one support vector per line
    ([coef v1 v2 ...]); everything round-trips through [%.17g] so
    decisions are bit-identical after reload. *)

val svr_to_string : Svr.model -> string
val svr_of_string : string -> (Svr.model, string) result

val svc_to_string : Svc.model -> string
val svc_of_string : string -> (Svc.model, string) result

val kernel_to_string : Kernel.t -> string
val kernel_of_string : string -> (Kernel.t, string) result
