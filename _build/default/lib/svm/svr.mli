(** ε-support-vector regression — the paper's "ε-SVM". The compaction
    flow trains it on ±1 pass/fail targets and classifies by the sign
    of the regression function (Sec. 2.2 of the paper). *)

type model

val train :
  ?c:float ->
  ?epsilon:float ->
  ?kernel:Kernel.t ->
  ?eps:float ->
  x:float array array ->
  y:float array ->
  unit ->
  model
(** [epsilon] is the insensitive-tube half-width (default 0.1);
    [eps] the SMO stopping tolerance (default 1e-3); other defaults as
    in {!Svc.train}. *)

val predict : model -> float array -> float
(** The regression estimate f(x). *)

val classify : model -> float array -> int
(** sign of {!predict}: +1 or −1. *)

val n_support : model -> int
val bias : model -> float
val kernel : model -> Kernel.t

type raw = {
  raw_kernel : Kernel.t;
  raw_sv : float array array;
  raw_coef : float array;
  raw_b : float;
}
(** The model's internal representation, exposed for serialisation
    ({!Model_io}). *)

val to_raw : model -> raw

val of_raw : raw -> model
(** Rebuilds a model; no validation beyond array-length agreement
    (raises [Invalid_argument] on mismatch). *)
