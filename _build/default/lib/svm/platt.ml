(* Port of libsvm's sigmoid_train (Lin, Lin & Weng 2007): regularised
   maximum-likelihood fit of A, B in P = 1/(1 + exp(A f + B)) with a
   Newton iteration and backtracking line search. *)

type t = { a : float; b : float }

let fit ~decision_values ~labels =
  let l = Array.length decision_values in
  if Array.length labels <> l then invalid_arg "Platt.fit: length mismatch";
  if l = 0 then invalid_arg "Platt.fit: empty input";
  Array.iter
    (fun y -> if y <> 1 && y <> -1 then invalid_arg "Platt.fit: labels must be ±1")
    labels;
  let prior1 = Array.fold_left (fun n y -> if y > 0 then n + 1 else n) 0 labels in
  let prior0 = l - prior1 in
  let hi_target = (float_of_int prior1 +. 1.0) /. (float_of_int prior1 +. 2.0) in
  let lo_target = 1.0 /. (float_of_int prior0 +. 2.0) in
  let target =
    Array.map (fun y -> if y > 0 then hi_target else lo_target) labels
  in
  let max_iter = 100 in
  let min_step = 1e-10 in
  let sigma = 1e-12 in
  let eps = 1e-5 in
  let a = ref 0.0 in
  let b = ref (log ((float_of_int prior0 +. 1.0) /. (float_of_int prior1 +. 1.0))) in
  let objective av bv =
    let fval = ref 0.0 in
    for i = 0 to l - 1 do
      let fapb = (decision_values.(i) *. av) +. bv in
      if fapb >= 0.0 then
        fval := !fval +. (target.(i) *. fapb) +. log (1.0 +. exp (-.fapb))
      else
        fval := !fval +. ((target.(i) -. 1.0) *. fapb) +. log (1.0 +. exp fapb)
    done;
    !fval
  in
  let fval = ref (objective !a !b) in
  (try
     for _ = 1 to max_iter do
       (* gradient and Hessian *)
       let h11 = ref sigma and h22 = ref sigma and h21 = ref 0.0 in
       let g1 = ref 0.0 and g2 = ref 0.0 in
       for i = 0 to l - 1 do
         let fapb = (decision_values.(i) *. !a) +. !b in
         let p, q =
           if fapb >= 0.0 then
             let e = exp (-.fapb) in
             (e /. (1.0 +. e), 1.0 /. (1.0 +. e))
           else begin
             let e = exp fapb in
             (1.0 /. (1.0 +. e), e /. (1.0 +. e))
           end
         in
         let d2 = p *. q in
         h11 := !h11 +. (decision_values.(i) *. decision_values.(i) *. d2);
         h22 := !h22 +. d2;
         h21 := !h21 +. (decision_values.(i) *. d2);
         let d1 = target.(i) -. p in
         g1 := !g1 +. (decision_values.(i) *. d1);
         g2 := !g2 +. d1
       done;
       if Float.abs !g1 < eps && Float.abs !g2 < eps then raise Exit;
       (* Newton direction *)
       let det = (!h11 *. !h22) -. (!h21 *. !h21) in
       let da = -.(((!h22 *. !g1) -. (!h21 *. !g2)) /. det) in
       let db = -.(((-. !h21 *. !g1) +. (!h11 *. !g2)) /. det) in
       let gd = (!g1 *. da) +. (!g2 *. db) in
       (* backtracking line search *)
       let step = ref 1.0 in
       let advanced = ref false in
       while (not !advanced) && !step >= min_step do
         let new_a = !a +. (!step *. da) in
         let new_b = !b +. (!step *. db) in
         let new_f = objective new_a new_b in
         if new_f < !fval +. (0.0001 *. !step *. gd) then begin
           a := new_a;
           b := new_b;
           fval := new_f;
           advanced := true
         end
         else step := !step /. 2.0
       done;
       if not !advanced then raise Exit
     done
   with Exit -> ());
  { a = !a; b = !b }

let probability t f =
  let fapb = (t.a *. f) +. t.b in
  if fapb >= 0.0 then begin
    let e = exp (-.fapb) in
    e /. (1.0 +. e)
  end
  else 1.0 /. (1.0 +. exp fapb)

let parameters t = (t.a, t.b)

let calibrate_svc model ~x ~y =
  let decision_values = Array.map (Svc.decision model) x in
  fit ~decision_values ~labels:y

let classify_at t ~threshold f = if probability t f >= threshold then 1 else -1
