module Rng = Stc_numerics.Rng

let kfold_indices rng ~n ~folds =
  if folds < 2 || folds > n then invalid_arg "Cross_val.kfold_indices: bad folds";
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  Array.init folds (fun f ->
      (* fold f takes positions f, f+folds, f+2*folds, ... *)
      let count = ((n - f - 1) / folds) + 1 in
      Array.init count (fun k -> order.(f + (k * folds))))

let split_fold x y fold_idx n =
  let in_fold = Array.make n false in
  Array.iter (fun i -> in_fold.(i) <- true) fold_idx;
  let train_x = ref [] and train_y = ref [] in
  for i = n - 1 downto 0 do
    if not in_fold.(i) then begin
      train_x := x.(i) :: !train_x;
      train_y := y.(i) :: !train_y
    end
  done;
  (Array.of_list !train_x, Array.of_list !train_y)

let mean_over_folds rng ~n ~folds evaluate =
  let assignments = kfold_indices rng ~n ~folds in
  let total = Array.fold_left (fun acc f -> acc +. evaluate f) 0.0 assignments in
  total /. float_of_int folds

let svc_accuracy ?c ?kernel rng ~x ~y ~folds =
  let n = Array.length x in
  let evaluate fold_idx =
    let train_x, train_y = split_fold x y fold_idx n in
    let model = Svc.train ?c ?kernel ~x:train_x ~y:train_y () in
    let correct =
      Array.fold_left
        (fun acc i -> if Svc.predict model x.(i) = y.(i) then acc + 1 else acc)
        0 fold_idx
    in
    float_of_int correct /. float_of_int (Array.length fold_idx)
  in
  mean_over_folds rng ~n ~folds evaluate

let svr_sign_accuracy ?c ?epsilon ?kernel rng ~x ~y ~folds =
  let n = Array.length x in
  let evaluate fold_idx =
    let train_x, train_y = split_fold x y fold_idx n in
    let model = Svr.train ?c ?epsilon ?kernel ~x:train_x ~y:train_y () in
    let correct =
      Array.fold_left
        (fun acc i ->
          let sign = if y.(i) >= 0.0 then 1 else -1 in
          if Svr.classify model x.(i) = sign then acc + 1 else acc)
        0 fold_idx
    in
    float_of_int correct /. float_of_int (Array.length fold_idx)
  in
  mean_over_folds rng ~n ~folds evaluate

type grid_result = { c : float; gamma : float; accuracy : float }

let grid_search_svc rng ~x ~y ~folds ~cs ~gammas =
  if Array.length cs = 0 || Array.length gammas = 0 then
    invalid_arg "Cross_val.grid_search_svc: empty grid";
  let best = ref None in
  Array.iter
    (fun c ->
      Array.iter
        (fun gamma ->
          (* copy the rng so every grid point sees identical folds *)
          let rng' = Rng.copy rng in
          let accuracy =
            svc_accuracy ~c ~kernel:(Kernel.rbf gamma) rng' ~x ~y ~folds
          in
          match !best with
          | Some b when b.accuracy >= accuracy -> ()
          | Some _ | None -> best := Some { c; gamma; accuracy })
        gammas)
    cs;
  match !best with
  | Some b -> b
  | None -> assert false
