(** FIFO cache for kernel-matrix rows: SMO touches rows repeatedly, and
    recomputing a row costs O(l·d). *)

type t

val create : size:int -> row_bytes:int -> ?budget_bytes:int ->
  (int -> float array) -> t
(** [create ~size ~row_bytes f] caches results of [f] for keys in
    [0, size). At most [budget_bytes / row_bytes] rows are kept
    (default budget 64 MB, at least 16 rows). *)

val get : t -> int -> float array

val hits : t -> int
val misses : t -> int
