let fp = Printf.sprintf "%.17g"

let kernel_to_string = function
  | Kernel.Linear -> "linear"
  | Kernel.Rbf { gamma } -> Printf.sprintf "rbf %s" (fp gamma)
  | Kernel.Polynomial { gamma; coef0; degree } ->
    Printf.sprintf "poly %s %s %d" (fp gamma) (fp coef0) degree
  | Kernel.Sigmoid { gamma; coef0 } ->
    Printf.sprintf "sigmoid %s %s" (fp gamma) (fp coef0)

let kernel_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "linear" ] -> Ok Kernel.Linear
  | [ "rbf"; g ] ->
    (match float_of_string_opt g with
     | Some gamma -> Ok (Kernel.Rbf { gamma })
     | None -> Error "bad rbf gamma")
  | [ "poly"; g; c0; d ] ->
    (match (float_of_string_opt g, float_of_string_opt c0, int_of_string_opt d) with
     | Some gamma, Some coef0, Some degree ->
       Ok (Kernel.Polynomial { gamma; coef0; degree })
     | _ -> Error "bad poly parameters")
  | [ "sigmoid"; g; c0 ] ->
    (match (float_of_string_opt g, float_of_string_opt c0) with
     | Some gamma, Some coef0 -> Ok (Kernel.Sigmoid { gamma; coef0 })
     | _ -> Error "bad sigmoid parameters")
  | _ -> Error "unknown kernel"

(* shared flat format for both model families *)
let raw_to_string ~tag ~kernel ~sv ~coef ~b =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (Printf.sprintf "%s\n" tag);
  Buffer.add_string buffer (Printf.sprintf "kernel %s\n" (kernel_to_string kernel));
  Buffer.add_string buffer (Printf.sprintf "bias %s\n" (fp b));
  Buffer.add_string buffer (Printf.sprintf "nsv %d\n" (Array.length sv));
  Array.iteri
    (fun i row ->
      Buffer.add_string buffer (fp coef.(i));
      Array.iter
        (fun v ->
          Buffer.add_char buffer ' ';
          Buffer.add_string buffer (fp v))
        row;
      Buffer.add_char buffer '\n')
    sv;
  Buffer.contents buffer

let raw_of_string ~tag text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: rest when header = tag ->
    let rec parse_headers kernel bias nsv = function
      | line :: more ->
        (match String.index_opt line ' ' with
         | Some i ->
           let key = String.sub line 0 i in
           let value = String.sub line (i + 1) (String.length line - i - 1) in
           (match key with
            | "kernel" ->
              (match kernel_of_string value with
               | Ok k -> parse_headers (Some k) bias nsv more
               | Error e -> Error e)
            | "bias" ->
              (match float_of_string_opt value with
               | Some b -> parse_headers kernel (Some b) nsv more
               | None -> Error "bad bias")
            | "nsv" ->
              (match int_of_string_opt value with
               | Some n -> Ok (kernel, bias, n, more)
               | None -> Error "bad nsv")
            | _ -> Error (Printf.sprintf "unknown header %S" key))
         | None -> Error (Printf.sprintf "malformed header line %S" line))
      | [] -> Error "missing headers"
    in
    (match parse_headers None None 0 rest with
     | Error e -> Error e
     | Ok (kernel, bias, nsv, body) ->
       (match (kernel, bias) with
        | Some kernel, Some b ->
          if List.length body <> nsv then Error "support-vector count mismatch"
          else begin
            let rows =
              List.map
                (fun line ->
                  String.split_on_char ' ' line
                  |> List.filter (fun t -> t <> "")
                  |> List.map float_of_string_opt)
                body
            in
            if
              List.exists
                (fun row -> List.exists (fun v -> v = None) row || row = [])
                rows
            then Error "malformed support-vector line"
            else begin
              let rows = List.map (List.map Option.get) rows in
              let coef = Array.of_list (List.map List.hd rows) in
              let sv =
                Array.of_list
                  (List.map (fun row -> Array.of_list (List.tl row)) rows)
              in
              Ok (kernel, sv, coef, b)
            end
          end
        | _ -> Error "missing kernel or bias header"))
  | header :: _ -> Error (Printf.sprintf "expected %S header, got %S" tag header)
  | [] -> Error "empty model text"

let svr_to_string m =
  let r = Svr.to_raw m in
  raw_to_string ~tag:"stc-svr-1" ~kernel:r.Svr.raw_kernel ~sv:r.Svr.raw_sv
    ~coef:r.Svr.raw_coef ~b:r.Svr.raw_b

let svr_of_string text =
  match raw_of_string ~tag:"stc-svr-1" text with
  | Error e -> Error e
  | Ok (kernel, sv, coef, b) ->
    Ok (Svr.of_raw { Svr.raw_kernel = kernel; raw_sv = sv; raw_coef = coef; raw_b = b })

let svc_to_string m =
  let r = Svc.to_raw m in
  raw_to_string ~tag:"stc-svc-1" ~kernel:r.Svc.raw_kernel ~sv:r.Svc.raw_sv
    ~coef:r.Svc.raw_coef ~b:r.Svc.raw_b

let svc_of_string text =
  match raw_of_string ~tag:"stc-svc-1" text with
  | Error e -> Error e
  | Ok (kernel, sv, coef, b) ->
    Ok (Svc.of_raw { Svc.raw_kernel = kernel; raw_sv = sv; raw_coef = coef; raw_b = b })
