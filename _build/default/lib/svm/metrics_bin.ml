type confusion = {
  tp : int;
  tn : int;
  fp : int;
  fn : int;
}

let confusion ~truth ~predicted =
  if Array.length truth <> Array.length predicted then
    invalid_arg "Metrics_bin.confusion: length mismatch";
  let c = ref { tp = 0; tn = 0; fp = 0; fn = 0 } in
  Array.iteri
    (fun i t ->
      let p = predicted.(i) in
      c :=
        (match (t, p) with
         | 1, 1 -> { !c with tp = !c.tp + 1 }
         | -1, -1 -> { !c with tn = !c.tn + 1 }
         | -1, 1 -> { !c with fp = !c.fp + 1 }
         | 1, -1 -> { !c with fn = !c.fn + 1 }
         | _ -> invalid_arg "Metrics_bin.confusion: labels must be +/-1"))
    truth;
  !c

let total c = c.tp + c.tn + c.fp + c.fn

let accuracy c =
  let n = total c in
  if n = 0 then 0.0 else float_of_int (c.tp + c.tn) /. float_of_int n

let error_rate c = 1.0 -. accuracy c

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let precision c = ratio c.tp (c.tp + c.fp)

let recall c = ratio c.tp (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)
