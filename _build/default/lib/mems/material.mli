(** Material and environment properties for the polysilicon surface-
    micromachined accelerometer. Temperatures are in °C throughout the
    MEMS library (matching the paper's -40/14.85/80 test points). *)

val room_temperature : float
(** 14.85 °C (= 288.0 K), the paper's room-temperature test point. *)

val youngs_modulus : float -> float
(** [youngs_modulus temp] in Pa; linear temperature coefficient around
    room temperature (~ -60 ppm/K for poly-Si). *)

val density : float
(** kg/m³ of poly-Si. *)

val cte_mismatch : float
(** Effective CTE mismatch between the structural film and the
    substrate, 1/K. This is the knob that converts a temperature
    excursion into anchor displacement and hence residual axial strain
    in the flexures (the paper's "anchors move towards or away from the
    center" model). Calibrated so a ±60 K excursion shifts the resonance
    by a few percent, as Fedder-style CMOS-MEMS devices exhibit. *)

val thermal_strain : float -> float
(** [thermal_strain temp] is the residual axial strain in the flexures
    at [temp]: positive = tension (cold), negative = compression (hot).
    Zero at room temperature. *)

val air_viscosity : float -> float
(** [air_viscosity temp] dynamic viscosity of air in Pa·s, Sutherland's
    law. *)

val gravity : float
(** Standard gravity, m/s², used to express accelerations in g. *)
