let room_temperature = 14.85

let youngs_modulus_room = 160e9

let youngs_modulus_tc = -60e-6 (* 1/K *)

let youngs_modulus temp =
  youngs_modulus_room *. (1.0 +. (youngs_modulus_tc *. (temp -. room_temperature)))

let density = 2330.0

let cte_mismatch = 0.05e-6

(* Hot: the substrate expands more than the film, anchors move outward,
   beams go into compression (negative strain). *)
let thermal_strain temp = -.(cte_mismatch *. (temp -. room_temperature))

(* Sutherland's law for air. *)
let air_viscosity temp =
  let t = temp +. 273.15 in
  let t0 = 291.15 and mu0 = 1.827e-5 and s = 120.0 in
  mu0 *. ((t0 +. s) /. (t +. s)) *. ((t /. t0) ** 1.5)

let gravity = 9.80665
