module Roots = Stc_numerics.Roots

type values = {
  scale_factor : float;
  cross_axis : float;
  peak_freq : float;
  quality : float;
  bandwidth : float;
}

let names =
  [| "scale factor"; "cross-axis sensitivity"; "peak frequency";
     "quality factor"; "3-dB bandwidth" |]

let units = [| "mV/V"; "mV/V"; "kHz"; "-"; "kHz" |]

let to_array v =
  [| v.scale_factor; v.cross_axis; v.peak_freq; v.quality; v.bandwidth |]

exception Measurement_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Measurement_failed s)) fmt

let cold_temp = -40.0

let hot_temp = 80.0

(* Golden-section maximisation of |H| on a log-frequency axis. *)
let find_peak model ~f_lo ~f_hi =
  let h logf = Accel_model.response_mv_per_v model ~axis:Accel_model.X_axis
                 ~freq:(10.0 ** logf)
  in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  (* interior probes x1 < x2 in [a, c]; keep the half containing the max *)
  let rec shrink a c x1 f1 x2 f2 iter =
    if iter > 100 || c -. a < 1e-8 then 10.0 ** (0.5 *. (a +. c))
    else if f1 > f2 then begin
      let c' = x2 in
      let x1' = c' -. (phi *. (c' -. a)) in
      shrink a c' x1' (h x1') x1 f1 (iter + 1)
    end
    else begin
      let a' = x1 in
      let x2' = a' +. (phi *. (c -. a')) in
      shrink a' c x2 f2 x2' (h x2') (iter + 1)
    end
  in
  (* coarse scan to bracket the global peak before refining *)
  let best = ref (log10 f_lo) and best_v = ref (h (log10 f_lo)) in
  let steps = 120 in
  for i = 1 to steps do
    let lf = log10 f_lo
             +. ((log10 f_hi -. log10 f_lo) *. float_of_int i /. float_of_int steps)
    in
    let v = h lf in
    if v > !best_v then begin
      best := lf;
      best_v := v
    end
  done;
  let span = (log10 f_hi -. log10 f_lo) /. float_of_int steps in
  let a = !best -. span and c = !best +. span in
  let x1 = c -. (phi *. (c -. a)) and x2 = a +. (phi *. (c -. a)) in
  shrink a c x1 (h x1) x2 (h x2) 0

let measure geometry ~temp =
  let model = Accel_model.build geometry ~temp in
  let sf0 = Accel_model.response_mv_per_v model ~axis:Accel_model.X_axis ~freq:0.0 in
  if not (Float.is_finite sf0) || sf0 <= 0.0 then fail "degenerate scale factor";
  let cross =
    let x =
      Accel_model.displacement model ~axis:Accel_model.Y_axis ~freq:0.0
        ~accel:Material.gravity
    in
    Accel_model.readout_mv_per_v model ~x:x.Complex.re
  in
  let fp = find_peak model ~f_lo:500.0 ~f_hi:50e3 in
  let sf_peak =
    Accel_model.response_mv_per_v model ~axis:Accel_model.X_axis ~freq:fp
  in
  let response f =
    Accel_model.response_mv_per_v model ~axis:Accel_model.X_axis ~freq:f
  in
  (* Quality factor from the resonant peaking ratio r = |H|peak/|H|dc:
     for a second-order system r = 1/(2ζ√(1-ζ²)), so
     ζ² = (1 - √(1 - 1/r²))/2 and Q = 1/(2ζ). This stays smooth and
     well defined across the whole Monte-Carlo population, unlike the
     half-power width, which ceases to exist below Q ≈ 1.2. *)
  let quality =
    let r = sf_peak /. sf0 in
    if r <= 1.0001 then Accel_model.quality_estimate model
    else begin
      let zeta2 = (1.0 -. sqrt (Float.max 0.0 (1.0 -. (1.0 /. (r *. r))))) /. 2.0 in
      1.0 /. (2.0 *. sqrt zeta2)
    end
  in
  (* +3 dB flat-band edge; overdamped parts use the -3 dB crossing *)
  let bandwidth =
    let plus3 f = response f -. (sf0 *. sqrt 2.0) in
    match Roots.find_bracket plus3 ~lo:100.0 ~hi:fp ~steps:300 with
    | Some (a, b) -> Roots.brent plus3 a b
    | None ->
      let minus3 f = response f -. (sf0 /. sqrt 2.0) in
      (match Roots.find_bracket minus3 ~lo:fp ~hi:(fp *. 20.0) ~steps:300 with
       | Some (a, b) -> Roots.brent minus3 a b
       | None -> fail "no 3-dB point")
  in
  {
    scale_factor = sf0;
    cross_axis = cross;
    peak_freq = fp /. 1e3;
    quality;
    bandwidth = bandwidth /. 1e3;
  }

let tri_temperature geometry =
  let room = measure geometry ~temp:Material.room_temperature in
  let cold = measure geometry ~temp:cold_temp in
  let hot = measure geometry ~temp:hot_temp in
  (room, cold, hot)
