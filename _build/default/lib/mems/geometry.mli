(** Accelerometer geometry: proof-mass plate, four folded-flexure
    suspension springs, and a differential comb-finger readout.

    The sense axis is x. Springs are described by their beam geometry
    and an orientation angle: a spring whose axis lies along y
    (angle = ±90°) is compliant in x; angle misalignment couples the
    x and y modes, which is what the cross-axis-sensitivity
    specification measures. *)

type spring = {
  beam : Beam.t;
  angle : float;  (** orientation of the beam axis, radians *)
}

type t = {
  plate_length : float;   (** m *)
  plate_width : float;    (** m *)
  thickness : float;      (** m, structural film *)
  springs : spring array; (** the four suspension flexures *)
  finger_count : int;     (** differential comb fingers per side *)
  finger_overlap : float; (** m *)
  finger_gap : float;     (** m, nominal electrode gap *)
  substrate_gap : float;  (** m, plate-to-substrate gap (damping) *)
  damping_factor : float; (** calibration multiplier on film damping *)
}

val nominal : t
(** Sized so the room-temperature specs land near the paper's Table 2:
    peak frequency ≈ 5.6 kHz, quality factor ≈ 2.1, scale factor
    ≈ 9.5 mV/V. *)

val nominal_skew : float
(** Per-spring angular skew from the ideal ±90° orientation, radians
    (0.5°). The nominal device alternates its sign so the net
    cross-axis coupling cancels; process variation on the individual
    skews breaks the cancellation. *)

val ideal_angles : float array
(** The four ideal spring orientations (±90°). *)

val proof_mass : t -> float
(** Plate mass plus the effective (1/2) comb and (13/35) beam
    contributions, kg. *)

val rest_capacitance : t -> float
(** One-sided comb capacitance at rest, F. *)

val damping_coefficient : t -> temp:float -> float
(** Viscous damping b (kg/s): Couette shear film under the plate plus
    comb-gap shear, times the calibration factor. *)
