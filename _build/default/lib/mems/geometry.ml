type spring = {
  beam : Beam.t;
  angle : float;
}

type t = {
  plate_length : float;
  plate_width : float;
  thickness : float;
  springs : spring array;
  finger_count : int;
  finger_overlap : float;
  finger_gap : float;
  substrate_gap : float;
  damping_factor : float;
}

let half_pi = Float.pi /. 2.0

(* Nominal per-spring skew from the ideal ±90° orientation (a release /
   lithography bias); the alternating sign cancels the net cross-axis
   coupling of the nominal device. *)
let nominal_skew = 0.00873 (* 0.5 degrees *)

let ideal_angles = [| half_pi; half_pi; -.half_pi; -.half_pi |]

let nominal =
  let beam = { Beam.length = 260e-6; width = 2.13e-6; thickness = 5e-6 } in
  {
    plate_length = 300e-6;
    plate_width = 300e-6;
    thickness = 5e-6;
    springs =
      [|
        { beam; angle = half_pi +. nominal_skew };
        { beam; angle = half_pi -. nominal_skew };
        { beam; angle = -.half_pi +. nominal_skew };
        { beam; angle = -.half_pi -. nominal_skew };
      |];
    finger_count = 60;
    finger_overlap = 100e-6;
    finger_gap = 1.5e-6;
    substrate_gap = 2.0e-6;
    (* calibrated so the nominal quality factor is ~2.1, standing in for
       the NODAS squeeze-film model we do not reproduce in detail *)
    damping_factor = 14.6;
  }

let proof_mass g =
  let plate = Material.density *. g.plate_length *. g.plate_width *. g.thickness in
  let fingers =
    Material.density *. float_of_int (2 * g.finger_count) *. g.finger_overlap
    *. 3e-6 *. g.thickness
  in
  let beams =
    Array.fold_left (fun acc s -> acc +. Beam.mass s.beam) 0.0 g.springs
  in
  plate +. (0.5 *. fingers) +. ((13.0 /. 35.0) *. beams)

let epsilon0 = 8.854e-12

let rest_capacitance g =
  float_of_int g.finger_count *. epsilon0 *. g.finger_overlap *. g.thickness
  /. g.finger_gap

let damping_coefficient g ~temp =
  let mu = Material.air_viscosity temp in
  let plate_area = g.plate_length *. g.plate_width in
  let couette = mu *. plate_area /. g.substrate_gap in
  let comb_area =
    float_of_int (2 * g.finger_count) *. g.finger_overlap *. g.thickness
  in
  let comb = mu *. comb_area /. g.finger_gap in
  g.damping_factor *. (couette +. comb)
