(** Two-degree-of-freedom (x sense, y cross) lumped dynamics of the
    accelerometer at a given temperature, with capacitive readout.

    The model solves [(K − ω²M + jωB) X = F] where [K] assembles the
    four suspension springs (axial + lateral stiffness along each
    spring's orientation, including thermal stress stiffening), [M] is
    the proof mass, [B] the film damping, and [F = m·a·ê] the inertial
    force of an acceleration [a] along the unit axis [ê]. *)

type t

val build : Geometry.t -> temp:float -> t
(** Assembles the system matrices at [temp] (°C). *)

val stiffness : t -> float * float * float
(** (kxx, kyy, kxy) of the assembled stiffness matrix, N/m. *)

val mass : t -> float
val damping : t -> float

val resonance : t -> float
(** Undamped x-mode natural frequency √(kxx/m)/2π, Hz. *)

val quality_estimate : t -> float
(** √(kxx·m)/b, the textbook Q (the measured one comes from the
    response curve). *)

type axis = X_axis | Y_axis

val displacement : t -> axis:axis -> freq:float -> accel:float -> Complex.t
(** Phasor x-displacement (the sense direction) for a sinusoidal
    acceleration of amplitude [accel] (m/s²) along [axis] at [freq] Hz.
    [freq = 0] gives the static deflection. *)

val readout_mv_per_v : t -> x:float -> float
(** Converts an x-displacement (m) into the differential capacitive
    bridge output in mV per volt of modulation: [1000·2x/gap] with the
    temperature-corrected gap. *)

val response_mv_per_v : t -> axis:axis -> freq:float -> float
(** Magnitude of the readout for a 1 g acceleration along [axis]:
    the scale-factor transfer curve, mV/V. *)

val step_response :
  t -> axis:axis -> accel:float -> tstop:float -> dt:float ->
  (float * float) array
(** Time-domain integration (RK4) of the full 2-DOF system under an
    acceleration step of [accel] m/s² applied at t = 0 from rest;
    returns the x-displacement waveform. Cross-validates the
    frequency-domain solution: the ring frequency equals the damped
    resonance and the final value equals the static deflection. *)
