type t = {
  length : float;
  width : float;
  thickness : float;
}

let check b =
  assert (b.length > 0.0 && b.width > 0.0 && b.thickness > 0.0)

let buckling_strain b =
  check b;
  Float.pi *. Float.pi *. b.width *. b.width /. (12.0 *. b.length *. b.length)

let lateral_stiffness ?strain b ~temp =
  check b;
  let e = Material.youngs_modulus temp in
  let k0 = e *. b.thickness *. (b.width ** 3.0) /. (b.length ** 3.0) in
  let eps = match strain with Some s -> s | None -> Material.thermal_strain temp in
  let factor = 1.0 +. (eps /. buckling_strain b) in
  k0 *. Float.max 0.05 factor

let axial_stiffness b ~temp =
  check b;
  Material.youngs_modulus temp *. b.thickness *. b.width /. b.length

let folded_axial_stiffness ?(fold_ratio = 100.0) b ~temp =
  check b;
  let e = Material.youngs_modulus temp in
  fold_ratio *. e *. b.thickness *. (b.width ** 3.0) /. (b.length ** 3.0)

let mass b =
  check b;
  Material.density *. b.length *. b.width *. b.thickness
