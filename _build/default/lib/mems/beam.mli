(** Folded-flexure suspension beams: Euler–Bernoulli stiffness with
    axial-load (stress) stiffening.

    Each flexure is modelled as a fixed–guided beam of length [length],
    in-plane width [width] and out-of-plane thickness [thickness]; the
    compliant direction is perpendicular to the beam axis, in plane. *)

type t = {
  length : float;     (** m *)
  width : float;      (** m *)
  thickness : float;  (** m *)
}

val lateral_stiffness : ?strain:float -> t -> temp:float -> float
(** In-plane bending stiffness, N/m: [E t w³ / L³] times the axial-load
    stiffening factor [1 + 12 ε (L/w)² / π²] where ε is the axial
    strain ([strain] overrides the thermal strain of the material at
    [temp]; tension ε > 0 stiffens, compression softens). Result is
    clamped at a small positive floor — a beam past buckling no longer
    follows the linear model, and clamping keeps downstream analyses
    defined. *)

val axial_stiffness : t -> temp:float -> float
(** Axial (stretching) stiffness of a straight beam [E t w / L], N/m. *)

val folded_axial_stiffness : ?fold_ratio:float -> t -> temp:float -> float
(** Stiff-direction stiffness of the *folded* suspension: the load path
    runs through bending of the folding truss, not axial stretch, so it
    is a multiple of the lateral stiffness rather than [E t w / L].
    Default [fold_ratio] 100 (typical folded-flexure anisotropy). *)

val buckling_strain : t -> float
(** Compressive strain magnitude at which the lateral stiffness would
    reach zero: [π² w² / (12 L²)]. *)

val mass : t -> float
(** Beam mass, kg. *)
