lib/mems/measure_mems.mli: Geometry
