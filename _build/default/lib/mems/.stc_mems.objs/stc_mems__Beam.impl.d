lib/mems/beam.ml: Float Material
