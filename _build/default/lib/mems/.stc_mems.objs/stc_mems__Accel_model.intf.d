lib/mems/accel_model.mli: Complex Geometry
