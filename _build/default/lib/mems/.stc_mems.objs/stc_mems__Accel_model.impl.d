lib/mems/accel_model.ml: Array Beam Complex Float Geometry Material Stc_numerics
