lib/mems/measure_mems.ml: Accel_model Complex Float Material Printf Stc_numerics
