lib/mems/beam.mli:
