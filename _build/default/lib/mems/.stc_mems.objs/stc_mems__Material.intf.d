lib/mems/material.mli:
