lib/mems/geometry.ml: Array Beam Float Material
