lib/mems/geometry.mli: Beam
