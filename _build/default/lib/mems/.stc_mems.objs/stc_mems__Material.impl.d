lib/mems/material.ml:
