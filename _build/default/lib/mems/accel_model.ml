type t = {
  geometry : Geometry.t;
  temp : float;
  kxx : float;
  kyy : float;
  kxy : float;
  m : float;
  b : float;
  gap : float;  (* temperature-corrected finger gap *)
}

let cte_film = 2.6e-6

let build geometry ~temp =
  let kxx = ref 0.0 and kyy = ref 0.0 and kxy = ref 0.0 in
  Array.iter
    (fun { Geometry.beam; angle } ->
      let ka = Beam.folded_axial_stiffness beam ~temp in
      let kl = Beam.lateral_stiffness beam ~temp in
      let cx = cos angle and sy = sin angle in
      (* K = ka·uuᵀ + kl·(I − uuᵀ) with u = (cx, sy) *)
      kxx := !kxx +. (ka *. cx *. cx) +. (kl *. sy *. sy);
      kyy := !kyy +. (ka *. sy *. sy) +. (kl *. cx *. cx);
      kxy := !kxy +. ((ka -. kl) *. cx *. sy))
    geometry.Geometry.springs;
  let gap =
    geometry.Geometry.finger_gap
    *. (1.0 +. (cte_film *. (temp -. Material.room_temperature)))
  in
  {
    geometry;
    temp;
    kxx = !kxx;
    kyy = !kyy;
    kxy = !kxy;
    m = Geometry.proof_mass geometry;
    b = Geometry.damping_coefficient geometry ~temp;
    gap;
  }

let stiffness t = (t.kxx, t.kyy, t.kxy)

let mass t = t.m

let damping t = t.b

let resonance t = sqrt (t.kxx /. t.m) /. (2.0 *. Float.pi)

let quality_estimate t = sqrt (t.kxx *. t.m) /. t.b

type axis = X_axis | Y_axis

(* Solve the 2x2 complex system (K - w²M + jwB) X = F directly. *)
let displacement t ~axis ~freq ~accel =
  let w = 2.0 *. Float.pi *. freq in
  let diag k = { Complex.re = k -. (w *. w *. t.m); im = w *. t.b } in
  let a11 = diag t.kxx and a22 = diag t.kyy in
  let a12 = { Complex.re = t.kxy; im = 0.0 } in
  let f = t.m *. accel in
  let f1, f2 =
    match axis with
    | X_axis -> ({ Complex.re = f; im = 0.0 }, Complex.zero)
    | Y_axis -> (Complex.zero, { Complex.re = f; im = 0.0 })
  in
  let det = Complex.sub (Complex.mul a11 a22) (Complex.mul a12 a12) in
  (* x = (a22 f1 - a12 f2) / det *)
  Complex.div (Complex.sub (Complex.mul a22 f1) (Complex.mul a12 f2)) det

let readout_mv_per_v t ~x = 1000.0 *. 2.0 *. x /. t.gap

(* state vector [x; y; vx; vy] *)
let step_response t ~axis ~accel ~tstop ~dt =
  let fx, fy =
    match axis with
    | X_axis -> (t.m *. accel, 0.0)
    | Y_axis -> (0.0, t.m *. accel)
  in
  let derivative _ s =
    let x = s.(0) and y = s.(1) and vx = s.(2) and vy = s.(3) in
    [|
      vx;
      vy;
      (fx -. (t.b *. vx) -. (t.kxx *. x) -. (t.kxy *. y)) /. t.m;
      (fy -. (t.b *. vy) -. (t.kxy *. x) -. (t.kyy *. y)) /. t.m;
    |]
  in
  let trajectory =
    Stc_numerics.Ode.integrate derivative ~t0:0.0 ~t1:tstop ~dt
      ~y0:[| 0.0; 0.0; 0.0; 0.0 |]
  in
  Array.map (fun (time, s) -> (time, s.(0))) trajectory

let response_mv_per_v t ~axis ~freq =
  let x = displacement t ~axis ~freq ~accel:Material.gravity in
  readout_mv_per_v t ~x:(Complex.norm x)
