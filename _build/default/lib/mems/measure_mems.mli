(** Extraction of the paper's five accelerometer specifications
    (Table 2) at one temperature, and the 15-value tri-temperature
    test suite. *)

type values = {
  scale_factor : float;      (** mV/V per g, at DC *)
  cross_axis : float;        (** mV/V per g of cross-axis acceleration,
                                 signed by the coupling direction *)
  peak_freq : float;         (** kHz *)
  quality : float;           (** dimensionless, from the half-power width *)
  bandwidth : float;         (** kHz, +3 dB flat-band edge (−3 dB
                                 low-pass crossing for overdamped parts) *)
}

val names : string array
val units : string array

val to_array : values -> float array

exception Measurement_failed of string

val measure : Geometry.t -> temp:float -> values

val cold_temp : float
(** -40 °C *)

val hot_temp : float
(** 80 °C *)

val tri_temperature : Geometry.t -> values * values * values
(** (room, cold, hot) measurements. *)
