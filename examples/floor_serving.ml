(* Floor serving: train a compacted flow once, persist it, reload it in
   a "production" process and bin a stream of devices in parallel
   batches, escalating guard-band parts to full test.

     dune exec examples/floor_serving.exe *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Tester = Stc.Tester
module Flow_io = Stc_floor.Flow_io
module Device_csv = Stc_floor.Device_csv
module Floor = Stc_floor.Floor
module Rng = Stc_numerics.Rng

let specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"V" ~nominal:2.0 ~lower:1.3 ~upper:2.5;
  |]

let population seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      [| a; b; a +. b |])

let () =
  (* --- training side: compact the test set and save the flow -------- *)
  let train = Device_data.make ~specs ~values:(population 1 1500) in
  let test = Device_data.make ~specs ~values:(population 2 800) in
  let config =
    {
      Compaction.default_config with
      Compaction.guard_fraction = 0.02;
      tolerance = 0.03;
      learner = Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = Some 4.0 };
    }
  in
  let result =
    Compaction.greedy ~order:(Stc.Order.Given [| 2; 0; 1 |]) config ~train ~test
  in
  let flow_path = Filename.temp_file "stc_flow" ".stc" in
  (match Flow_io.save ~path:flow_path result.Compaction.flow with
   | Ok () -> Printf.printf "trained flow saved to %s\n" flow_path
   | Error e -> failwith e);

  (* --- production side: reload and serve a device stream ------------ *)
  let flow =
    match Flow_io.load ~path:flow_path with
    | Ok flow -> flow
    | Error e -> failwith e
  in
  Printf.printf "reloaded flow measures %d of %d specs\n\n"
    (Array.length flow.Compaction.kept)
    (Array.length flow.Compaction.specs);
  let stream = population 3 20_000 in
  (* guard-band parts get the full specification test *)
  let full_test row = Array.for_all2 Spec.passes specs row in
  Floor.with_engine
    ~config:{ Floor.batch_size = 512; domains = 4 }
    flow
    (fun engine ->
      let outcomes = Floor.process ~retest:full_test engine stream in
      print_string (Floor.report engine);
      (* every verdict matches the in-memory flow, whatever the batching *)
      let mismatches = ref 0 in
      Array.iteri
        (fun i o ->
          if
            not
              (Guard_band.equal_verdict o.Floor.verdict
                 (Compaction.flow_verdict flow stream.(i)))
          then incr mismatches)
        outcomes;
      Printf.printf "\nverdict mismatches vs flow_verdict: %d\n" !mismatches);
  Sys.remove flow_path
