(* Network serving: train a compacted flow, publish it from an in-process
   TCP server, and bin devices from a client over the line protocol —
   with a zero-downtime hot reload and a live METRICS scrape on the way.

     dune exec examples/net_serving.exe *)

module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Flow_io = Stc_floor.Flow_io
module Floor = Stc_floor.Floor
module Rng = Stc_numerics.Rng
module Registry = Stc_net.Registry
module Server = Stc_net.Server
module Client = Stc_net.Client
module Protocol = Stc_net.Protocol

let specs =
  [|
    Spec.make ~name:"s0" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s1" ~unit_label:"V" ~nominal:1.0 ~lower:0.5 ~upper:1.5;
    Spec.make ~name:"s2" ~unit_label:"V" ~nominal:2.0 ~lower:1.3 ~upper:2.5;
  |]

let population seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let a = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      let b = Rng.gaussian rng ~mean:1.0 ~sigma:0.25 in
      [| a; b; a +. b |])

let () =
  (* --- training side: compact the test set and save the flow -------- *)
  let train = Device_data.make ~specs ~values:(population 1 1500) in
  let test = Device_data.make ~specs ~values:(population 2 800) in
  let config =
    {
      Compaction.default_config with
      Compaction.guard_fraction = 0.02;
      tolerance = 0.03;
      learner =
        Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = Some 4.0 };
    }
  in
  let result =
    Compaction.greedy ~order:(Stc.Order.Given [| 2; 0; 1 |]) config ~train ~test
  in
  let flow_path = Filename.temp_file "stc_flow" ".stc" in
  (match Flow_io.save ~path:flow_path result.Compaction.flow with
   | Ok () -> Printf.printf "trained flow saved to %s\n" flow_path
   | Error e -> failwith e);

  (* --- serving side: a registry + server, a client over loopback ---- *)
  let registry = Registry.create () in
  (match Registry.load registry ~name:"opamp" ~path:flow_path with
   | Ok _ -> ()
   | Error e -> failwith e);
  Server.with_server registry (fun server ->
      let port = Server.port server in
      Printf.printf "serving on 127.0.0.1:%d\n" port;
      let c = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.quit c)
        (fun () ->
          let devices = population 3 200 in
          (match Client.bin_batch c ~flow:"opamp" devices with
           | Error e -> failwith e
           | Ok outcomes ->
             let count p = Array.length (Array.of_seq (Seq.filter p (Array.to_seq outcomes))) in
             Printf.printf "binned %d devices: %d ship, %d scrap, %d retest\n"
               (Array.length outcomes)
               (count (fun o -> o.Floor.bin = Stc.Tester.Ship))
               (count (fun o -> o.Floor.bin = Stc.Tester.Scrap))
               (count (fun o -> o.Floor.bin = Stc.Tester.Retest)));

          (* hot reload: re-saving the identical flow is a no-op... *)
          (match Client.reload c ~flow:"opamp" () with
           | Ok (`Unchanged, detail) -> Printf.printf "reload: %s\n" detail
           | Ok (`Reloaded, detail) -> Printf.printf "reload: %s\n" detail
           | Error e -> failwith e);
          (* ...while a changed file swaps atomically, mid-traffic *)
          (match
             Flow_io.save ~path:flow_path (Compaction.identity_flow specs)
           with
           | Ok () -> ()
           | Error e -> failwith e);
          (match Client.reload c ~flow:"opamp" () with
           | Ok (_, detail) -> Printf.printf "reload: %s\n" detail
           | Error e -> failwith e);

          (* live metrics, straight off the wire *)
          match Client.metrics c () with
          | Error e -> failwith e
          | Ok text ->
            let interesting line =
              List.exists
                (fun p ->
                  String.length line >= String.length p
                  && String.sub line 0 (String.length p) = p)
                [ "counter stc_net_"; "gauge stc_net_" ]
            in
            List.iter
              (fun l -> if interesting l then Printf.printf "  %s\n" l)
              (String.split_on_char '\n' text)));
  Registry.shutdown registry;
  Sys.remove flow_path;
  print_endline "done."
