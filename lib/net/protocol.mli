(** The [stc-net-1] wire protocol: newline-delimited requests and
    replies over a plain TCP stream, so any tester-floor data logger
    that can speak "one line out, read lines back" can bin devices
    against a served flow.

    Shape: every request is one line, space-separated; device rows
    travel as comma-separated decimal floats (the {!Stc_floor.Device_csv}
    cell syntax, full spec width — the server reads only kept columns
    for the model verdict and all columns for guard escalation). Every
    reply line is either [OK ...], [ERR <code> <message>], or a
    deferred [BIN <bin> <verdict>] binning verdict.

    Request/reply pairing: [BIN] replies are {e deferred} — the server
    accumulates pipelined rows and answers them in request order when
    the connection's batch flushes (size or deadline policy, or an
    explicit [FLUSH]). Every non-[BIN] request forces a flush first, so
    replies never overtake each other: a client that writes
    [BIN]*n + [FLUSH] reads exactly n verdict lines and then
    [OK flushed n].

    Multi-line payloads ([METRICS]) are byte-counted by their [OK]
    header, so a client can read the payload without sniffing for a
    terminator. *)

type format = Text | Json

type request =
  | Ping
  | Flows                                  (** list registry contents *)
  | Info of string                         (** one flow's description *)
  | Bin of string * float array            (** deferred: flow, row *)
  | Batch of string * int                  (** [n] row lines follow *)
  | Flush                                  (** answer pending [Bin]s now *)
  | Metrics of format                      (** live registry export *)
  | Stats of string                        (** one flow's engine counters *)
  | Reload of { flow : string; path : string option }
  | Health of string option
      (** readiness probe: whole server ([None] — [ERR draining] while
          the server drains) or one flow's breaker state ([Some name]) *)
  | Quit                                   (** close this connection *)
  | Shutdown                               (** drain, then stop the server *)

val max_line_bytes : int
(** Upper bound on one request line (1 MiB); the server drops a
    connection that exceeds it mid-line rather than buffering without
    bound. *)

val flow_name_ok : string -> bool
(** Registry names are 1–64 chars of [A-Za-z0-9_.:-] — unambiguous in
    a space-separated line and safe in a metrics label. *)

val parse_request : string -> (request, string) result
(** Parses one request line (already stripped of its newline; a
    trailing [\r] is tolerated). Errors name the problem, not just the
    line. *)

val format_request : request -> string
(** The canonical line for a request (no newline) —
    [parse_request (format_request r) = Ok r]. A [Bin] row prints via
    {!format_row}. *)

val parse_row : string -> (float array, string) result
(** Comma-separated finite floats; the empty string is no cells (width
    0), which a width check then rejects against any real flow. *)

val format_row : float array -> string
(** [%.17g] cells, so verdicts survive the wire bit-for-bit. *)

val format_outcome : Stc_floor.Floor.outcome -> string
(** ["BIN <SHIP|SCRAP|RETEST> <GOOD|BAD|GUARD>"]. *)

val parse_outcome : string -> (Stc_floor.Floor.outcome, string) result

val ok_line : string -> string
(** ["OK " ^ detail]. *)

val err_line : code:string -> string -> string
(** ["ERR <code> <message>"], the message flattened to one line. *)

val parse_reply : string -> ([ `Ok of string | `Err of string * string ], string) result
(** Splits a non-[BIN] reply line into its [OK] detail or
    [ERR (code, message)]. *)
