module Floor = Stc_floor.Floor
module Tester = Stc.Tester
module Guard_band = Stc.Guard_band

type format = Text | Json

type request =
  | Ping
  | Flows
  | Info of string
  | Bin of string * float array
  | Batch of string * int
  | Flush
  | Metrics of format
  | Stats of string
  | Reload of { flow : string; path : string option }
  | Health of string option
  | Quit
  | Shutdown

let max_line_bytes = 1 lsl 20

let flow_name_ok name =
  let n = String.length name in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | ':' | '-' -> true
         | _ -> false)
       name

let fp = Printf.sprintf "%.17g"

let format_row row =
  String.concat "," (Array.to_list (Array.map fp row))

let parse_row line =
  if line = "" then Ok [||]
  else begin
    let cells = String.split_on_char ',' line in
    let row = Array.make (List.length cells) 0.0 in
    let rec fill col = function
      | [] -> Ok row
      | cell :: more -> (
        match float_of_string_opt cell with
        | None -> Error (Printf.sprintf "column %d: non-numeric cell %S" (col + 1) cell)
        | Some v when not (Float.is_finite v) ->
          Error
            (Printf.sprintf
               "column %d: non-finite cell %S (NaN/inf measurements are \
                rejected)"
               (col + 1) cell)
        | Some v ->
          row.(col) <- v;
          fill (col + 1) more)
    in
    fill 0 cells
  end

(* one line, flattened: reply lines must never embed a frame break *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let check_name name k =
  if flow_name_ok name then k ()
  else Error (Printf.sprintf "invalid flow name %S" name)

let parse_request line =
  let line = strip_cr line in
  match String.split_on_char ' ' line with
  | [ "PING" ] -> Ok Ping
  | [ "FLOWS" ] -> Ok Flows
  | [ "INFO"; name ] -> check_name name (fun () -> Ok (Info name))
  | [ "BIN"; name; cells ] ->
    check_name name (fun () ->
        match parse_row cells with
        | Ok row -> Ok (Bin (name, row))
        | Error e -> Error ("bad row: " ^ e))
  | [ "BATCH"; name; n ] ->
    check_name name (fun () ->
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok (Batch (name, n))
        | Some _ -> Error "BATCH count must be >= 0"
        | None -> Error (Printf.sprintf "malformed BATCH count %S" n))
  | [ "FLUSH" ] -> Ok Flush
  | [ "METRICS" ] | [ "METRICS"; "text" ] -> Ok (Metrics Text)
  | [ "METRICS"; "json" ] -> Ok (Metrics Json)
  | [ "METRICS"; fmt ] -> Error (Printf.sprintf "unknown METRICS format %S" fmt)
  | [ "STATS"; name ] -> check_name name (fun () -> Ok (Stats name))
  | [ "RELOAD"; name ] ->
    check_name name (fun () -> Ok (Reload { flow = name; path = None }))
  | "RELOAD" :: name :: path :: rest ->
    (* the path is the whole remainder: file names may contain spaces *)
    check_name name (fun () ->
        Ok (Reload { flow = name; path = Some (String.concat " " (path :: rest)) }))
  | [ "HEALTH" ] -> Ok (Health None)
  | [ "HEALTH"; name ] -> check_name name (fun () -> Ok (Health (Some name)))
  | [ "QUIT" ] -> Ok Quit
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | [] | [ "" ] -> Error "empty request"
  | verb :: _ -> Error (Printf.sprintf "unknown request %S" verb)

let format_request = function
  | Ping -> "PING"
  | Flows -> "FLOWS"
  | Info name -> "INFO " ^ name
  | Bin (name, row) -> Printf.sprintf "BIN %s %s" name (format_row row)
  | Batch (name, n) -> Printf.sprintf "BATCH %s %d" name n
  | Flush -> "FLUSH"
  | Metrics Text -> "METRICS text"
  | Metrics Json -> "METRICS json"
  | Stats name -> "STATS " ^ name
  | Reload { flow; path = None } -> "RELOAD " ^ flow
  | Reload { flow; path = Some p } -> Printf.sprintf "RELOAD %s %s" flow p
  | Health None -> "HEALTH"
  | Health (Some name) -> "HEALTH " ^ name
  | Quit -> "QUIT"
  | Shutdown -> "SHUTDOWN"

let bin_to_string = function
  | Tester.Ship -> "SHIP"
  | Tester.Scrap -> "SCRAP"
  | Tester.Retest -> "RETEST"

let bin_of_string = function
  | "SHIP" -> Some Tester.Ship
  | "SCRAP" -> Some Tester.Scrap
  | "RETEST" -> Some Tester.Retest
  | _ -> None

let verdict_to_string = function
  | Guard_band.Good -> "GOOD"
  | Guard_band.Bad -> "BAD"
  | Guard_band.Guard -> "GUARD"

let verdict_of_string = function
  | "GOOD" -> Some Guard_band.Good
  | "BAD" -> Some Guard_band.Bad
  | "GUARD" -> Some Guard_band.Guard
  | _ -> None

let format_outcome (o : Floor.outcome) =
  Printf.sprintf "BIN %s %s" (bin_to_string o.Floor.bin)
    (verdict_to_string o.Floor.verdict)

let parse_outcome line =
  match String.split_on_char ' ' (strip_cr line) with
  | [ "BIN"; bin; verdict ] -> (
    match (bin_of_string bin, verdict_of_string verdict) with
    | Some bin, Some verdict -> Ok { Floor.bin; verdict }
    | _ -> Error (Printf.sprintf "malformed BIN reply %S" line))
  | _ -> Error (Printf.sprintf "expected a BIN reply, got %S" line)

let ok_line detail = "OK " ^ one_line detail

let err_line ~code msg = Printf.sprintf "ERR %s %s" code (one_line msg)

let parse_reply line =
  let line = strip_cr line in
  if String.length line >= 3 && String.sub line 0 3 = "OK " then
    Ok (`Ok (String.sub line 3 (String.length line - 3)))
  else if line = "OK" then Ok (`Ok "")
  else if String.length line >= 4 && String.sub line 0 4 = "ERR " then begin
    let rest = String.sub line 4 (String.length line - 4) in
    match String.index_opt rest ' ' with
    | Some i ->
      Ok (`Err (String.sub rest 0 i,
                String.sub rest (i + 1) (String.length rest - i - 1)))
    | None -> Ok (`Err (rest, ""))
  end
  else Error (Printf.sprintf "malformed reply line %S" line)
