module P = Protocol

type t = {
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.TCP_NODELAY true;
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd;
    closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc;
    close_in_noerr t.ic
  end

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t = input_line t.ic

(* one request frame -> the `Ok detail / `Err pair of the reply *)
let roundtrip t req =
  send_line t (P.format_request req);
  match P.parse_reply (recv_line t) with
  | Ok (`Ok detail) -> Ok detail
  | Ok (`Err (code, msg)) -> Error (Printf.sprintf "%s: %s" code msg)
  | Error e -> Error e

let ping t = Result.map (fun _ -> ()) (roundtrip t P.Ping)

(* Drains [n] reply lines even when one of them is an ERR, so a bad row
   never desyncs the stream; the first error wins. *)
let read_outcomes t n =
  let outcomes = Array.make n { Stc_floor.Floor.bin = Stc.Tester.Scrap;
                                verdict = Stc.Guard_band.Bad } in
  let first_error = ref None in
  for i = 0 to n - 1 do
    let line = recv_line t in
    match P.parse_outcome line with
    | Ok o -> outcomes.(i) <- o
    | Error _ ->
      if !first_error = None then
        first_error :=
          Some
            (match P.parse_reply line with
             | Ok (`Err (code, msg)) ->
               Printf.sprintf "row %d: %s: %s" i code msg
             | _ -> Printf.sprintf "row %d: unexpected reply %S" i line)
  done;
  match !first_error with None -> Ok outcomes | Some e -> Error e

let bin_batch t ~flow rows =
  let n = Array.length rows in
  send_line t (P.format_request (P.Batch (flow, n)));
  Array.iter (fun row -> send_line t (P.format_row row)) rows;
  match P.parse_reply (recv_line t) with
  | Ok (`Ok _) -> read_outcomes t n
  | Ok (`Err (code, msg)) -> Error (Printf.sprintf "%s: %s" code msg)
  | Error e -> Error e

let stream t ~flow rows =
  let n = Array.length rows in
  Array.iter
    (fun row -> send_line t (P.format_request (P.Bin (flow, row))))
    rows;
  send_line t (P.format_request P.Flush);
  match read_outcomes t n with
  | Error _ as e ->
    (* the FLUSH ack is still on the wire *)
    (try ignore (recv_line t) with End_of_file -> ());
    e
  | Ok outcomes -> (
    match P.parse_reply (recv_line t) with
    | Ok (`Ok _) -> Ok outcomes
    | Ok (`Err (code, msg)) -> Error (Printf.sprintf "%s: %s" code msg)
    | Error e -> Error e)

let metrics t ?(format = P.Text) () =
  match roundtrip t (P.Metrics format) with
  | Error _ as e -> e
  | Ok detail -> (
    match String.split_on_char ' ' detail with
    | [ "metrics"; bytes ] -> (
      match int_of_string_opt bytes with
      | Some n when n >= 0 ->
        let buf = Bytes.create n in
        really_input t.ic buf 0 n;
        Ok (Bytes.to_string buf)
      | _ -> Error (Printf.sprintf "malformed metrics byte count %S" bytes))
    | _ -> Error (Printf.sprintf "malformed METRICS reply %S" detail))

let flows t =
  match roundtrip t P.Flows with
  | Error _ as e -> e
  | Ok detail -> (
    match String.split_on_char ' ' detail with
    | [ "flows"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> Ok (List.init n (fun _ -> recv_line t))
      | _ -> Error (Printf.sprintf "malformed FLOWS count %S" detail))
    | _ -> Error (Printf.sprintf "malformed FLOWS reply %S" detail))

let info t ~flow = roundtrip t (P.Info flow)
let stats t ~flow = roundtrip t (P.Stats flow)
let health t ?flow () = roundtrip t (P.Health flow)

let reload t ~flow ?path () =
  match roundtrip t (P.Reload { flow; path }) with
  | Error _ as e -> e
  | Ok detail ->
    if String.length detail >= 8 && String.sub detail 0 8 = "reloaded" then
      Ok (`Reloaded, detail)
    else if String.length detail >= 9 && String.sub detail 0 9 = "unchanged"
    then Ok (`Unchanged, detail)
    else Error (Printf.sprintf "malformed RELOAD reply %S" detail)

let quit t =
  (try
     send_line t (P.format_request P.Quit);
     ignore (recv_line t)
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  close t

let shutdown t = Result.map (fun _ -> ()) (roundtrip t P.Shutdown)
