module Obs = Stc_obs.Registry
module Clock = Stc_obs.Clock
module Floor = Stc_floor.Floor
module Retry = Stc_floor.Retry
module P = Protocol

(* Process-wide serving counters; scraped live via METRICS. *)
let m_connections = Obs.counter "stc_net_connections_total"
let m_rejected = Obs.counter "stc_net_rejected_connections_total"
let m_shed = Obs.counter "stc_net_shed_total"
let m_drain_rejected = Obs.counter "stc_net_drain_rejected_total"
let m_accept_errors = Obs.counter "stc_net_accept_errors_total"
let g_active = Obs.gauge "stc_net_active_connections"
let g_draining = Obs.gauge "stc_net_draining"
let m_requests = Obs.counter "stc_net_requests_total"
let m_rows = Obs.counter "stc_net_rows_total"
let m_batches = Obs.counter "stc_net_batches_total"
let m_flushes = Obs.counter "stc_net_flushes_total"
let m_deadline_flushes = Obs.counter "stc_net_deadline_flushes_total"
let m_backpressure = Obs.counter "stc_net_backpressure_stalls_total"
let m_idle_reaped = Obs.counter "stc_net_idle_reaped_total"
let m_write_timeouts = Obs.counter "stc_net_write_timeouts_total"
let m_errors = Obs.counter "stc_net_errors_total"
let m_disconnects = Obs.counter "stc_net_disconnects_total"
let m_torn_frames = Obs.counter "stc_net_torn_frames_total"
let h_flush = Obs.histogram "stc_net_flush_s"

type config = {
  host : string;
  port : int;
  backlog : int;
  max_connections : int;
  flush_rows : int;
  flush_deadline_s : float;
  max_pending : int;
  idle_timeout_s : float;
  write_timeout_s : float;
  drain_deadline_s : float;
  sndbuf_bytes : int option;
  escalate : bool;
  retry : Stc_floor.Retry.policy option;
  batch_deadline_s : float option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    max_connections = 64;
    flush_rows = 256;
    flush_deadline_s = 0.05;
    max_pending = 4096;
    idle_timeout_s = 300.0;
    write_timeout_s = 30.0;
    drain_deadline_s = 5.0;
    sndbuf_bytes = None;
    escalate = true;
    retry = None;
    batch_deadline_s = None;
  }

type t = {
  registry : Registry.t;
  config : config;
  lock : Mutex.t;
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int;
  mutable accept_thread : Thread.t option;
  threads : (int, Thread.t) Hashtbl.t;  (* live handlers, by conn id *)
  mutable dead_threads : Thread.t list; (* finished, awaiting a join *)
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable next_conn_id : int;
  stop_flag : bool Atomic.t;
  shutdown_req : bool Atomic.t;
  drain_flag : bool Atomic.t;
  drain_until : float Atomic.t;  (* monotonic; valid once drain_flag is set *)
  mutable started : bool;
  mutable stopped : bool;
}

let create ?(config = default_config) registry =
  if config.flush_rows < 1 then
    invalid_arg "Server.create: flush_rows must be >= 1";
  if config.flush_deadline_s <= 0.0 then
    invalid_arg "Server.create: flush_deadline_s must be positive";
  if config.max_pending < 1 then
    invalid_arg "Server.create: max_pending must be >= 1";
  if config.max_connections < 1 then
    invalid_arg "Server.create: max_connections must be >= 1";
  if config.drain_deadline_s < 0.0 then
    invalid_arg "Server.create: drain_deadline_s must be >= 0";
  (match config.sndbuf_bytes with
   | Some n when n < 1 ->
     invalid_arg "Server.create: sndbuf_bytes must be >= 1"
   | _ -> ());
  {
    registry;
    config;
    lock = Mutex.create ();
    listen_fd = None;
    bound_port = -1;
    accept_thread = None;
    threads = Hashtbl.create 16;
    dead_threads = [];
    conns = Hashtbl.create 16;
    next_conn_id = 0;
    stop_flag = Atomic.make false;
    shutdown_req = Atomic.make false;
    drain_flag = Atomic.make false;
    drain_until = Atomic.make 0.0;
    started = false;
    stopped = false;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let draining t = Atomic.get t.drain_flag

let drain ?deadline_s t =
  if not (Atomic.get t.drain_flag) then begin
    let d =
      match deadline_s with Some d -> d | None -> t.config.drain_deadline_s
    in
    (* deadline first: a reader that observes the flag must find a
       valid deadline behind it *)
    Atomic.set t.drain_until (Clock.now () +. Stdlib.max 0.0 d);
    Atomic.set t.drain_flag true;
    Obs.Gauge.set g_draining 1.0
  end

(* ------------------------- connection I/O ------------------------- *)

exception Conn_closed
exception Reaped          (* idle deadline: silent client cut loose *)
exception Drain_expired   (* drain deadline: stop serving this client *)

(* [true] when [fd] turns readable within [timeout_s] (negative =
   forever); EINTR retries with the remaining time. *)
let wait_io ~write fd timeout_s =
  let deadline =
    if timeout_s < 0.0 then None else Some (Clock.now () +. timeout_s)
  in
  let rec go () =
    let t =
      match deadline with
      | None -> -1.0
      | Some d -> Stdlib.max 0.0 (d -. Clock.now ())
    in
    let rd, wr = if write then ([], [ fd ]) else ([ fd ], []) in
    match Unix.select rd wr [] t with
    | [], [], _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait_readable fd timeout_s = wait_io ~write:false fd timeout_s
let wait_writable fd timeout_s = wait_io ~write:true fd timeout_s

(* Connection sockets are non-blocking so a reply write can carry a
   deadline: a client that stops reading (dead peer behind a live TCP
   window) stalls in EAGAIN, and once [timeout_s] elapses the
   connection is torn down instead of wedging its handler thread
   forever. [timeout_s <= 0] waits without bound. *)
let write_all ~timeout_s fd s =
  let deadline =
    if timeout_s <= 0.0 then None else Some (Clock.now () +. timeout_s)
  in
  let await () =
    match deadline with
    | None -> if not (wait_writable fd (-1.0)) then raise Conn_closed
    | Some d ->
      let remaining = d -. Clock.now () in
      if remaining <= 0.0 || not (wait_writable fd remaining) then begin
        Obs.Counter.incr m_write_timeouts;
        raise Conn_closed
      end
  in
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write_substring fd s !pos (n - !pos) with
    | written -> pos := !pos + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      await ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      ->
      raise Conn_closed
  done

type pending_item =
  | Row of Registry.entry * float array
  | Deferred_reply of string  (* a full reply line, e.g. ERR unknown-flow *)

type conn = {
  fd : Unix.file_descr;
  lines : string Queue.t;       (* complete frames not yet handled *)
  mutable leftover : string;    (* bytes after the last newline *)
  mutable eof : bool;
  pending : pending_item Queue.t;
  mutable first_pending_t : float;
  mutable last_activity : float;  (* monotonic; bumped on received bytes *)
  write_timeout_s : float;
}

let conn_write conn s = write_all ~timeout_s:conn.write_timeout_s conn.fd s

let recv_into conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
    (* an RST discards the receive queue, so this is an abnormal
       teardown even when it is the first thing the handler sees *)
    raise Conn_closed
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> conn.eof <- true
  | 0 -> conn.eof <- true
  | n ->
    conn.last_activity <- Clock.now ();
    let data = conn.leftover ^ Bytes.sub_string chunk 0 n in
    let pieces = String.split_on_char '\n' data in
    let rec push = function
      | [] -> conn.leftover <- ""
      | [ last ] -> conn.leftover <- last
      | line :: rest ->
        Queue.push line conn.lines;
        push rest
    in
    push pieces;
    if String.length conn.leftover > P.max_line_bytes then begin
      Obs.Counter.incr m_errors;
      conn_write conn
        (P.err_line ~code:"frame-too-long"
           (Printf.sprintf "request line exceeds %d bytes" P.max_line_bytes)
        ^ "\n");
      raise Conn_closed
    end

(* ------------------------------ flushing -------------------------- *)

let registry_process server entry rows =
  Registry.process ~escalate:server.config.escalate ?retry:server.config.retry
    ?batch_deadline_s:server.config.batch_deadline_s entry rows

(* Answer every pending row, in request order, sharding maximal runs of
   same-flow rows into one engine batch each. *)
let flush_pending server conn reason =
  let n = Queue.length conn.pending in
  if n > 0 then begin
    let t0 = Clock.now () in
    let items = Array.make n (Deferred_reply "") in
    for i = 0 to n - 1 do
      items.(i) <- Queue.pop conn.pending
    done;
    Obs.Counter.incr m_flushes;
    if reason = `Deadline then Obs.Counter.incr m_deadline_flushes;
    let replies = Array.make n "" in
    let i = ref 0 in
    while !i < n do
      match items.(!i) with
      | Deferred_reply line ->
        replies.(!i) <- line;
        incr i
      | Row (entry, _) ->
        let start = !i in
        let stop = ref !i in
        (* widen to the maximal same-entry run *)
        while
          !stop < n
          && match items.(!stop) with
             | Row (e, _) -> e == entry
             | Deferred_reply _ -> false
        do
          incr stop
        done;
        let rows =
          Array.init (!stop - start) (fun j ->
              match items.(start + j) with
              | Row (_, row) -> row
              | Deferred_reply _ -> assert false)
        in
        (match registry_process server entry rows with
         | Ok outcomes ->
           Array.iteri
             (fun j o -> replies.(start + j) <- P.format_outcome o)
             outcomes
         | Error e ->
           Obs.Counter.incr m_errors;
           let line = P.err_line ~code:"bad-row" e in
           for j = start to !stop - 1 do
             replies.(j) <- line
           done);
        i := !stop
    done;
    Obs.Counter.add m_rows n;
    let buf = Buffer.create (n * 16) in
    Array.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      replies;
    conn_write conn (Buffer.contents buf);
    Obs.Histogram.observe h_flush (Clock.now () -. t0)
  end;
  n

(* The next complete frame, or [None] at end of stream. The wait is
   never unbounded: it is clipped to the nearest of the flush deadline
   (pending rows must be answered within [flush_deadline_s]), the idle
   deadline (a connection that sends nothing for [idle_timeout_s] is
   reaped — slow-loris openers cannot pin handler threads), the drain
   deadline, and a 0.1 s poll so a stop is noticed promptly. *)
let rec next_line server conn =
  if not (Queue.is_empty conn.lines) then Some (Queue.pop conn.lines)
  else if conn.eof then None
  else if Atomic.get server.stop_flag then None
  else begin
    let now = Clock.now () in
    let flush_d =
      if Queue.is_empty conn.pending then None
      else Some (conn.first_pending_t +. server.config.flush_deadline_s)
    in
    let idle_d =
      if server.config.idle_timeout_s <= 0.0 then None
      else Some (conn.last_activity +. server.config.idle_timeout_s)
    in
    let drain_d =
      if Atomic.get server.drain_flag then
        Some (Atomic.get server.drain_until)
      else None
    in
    let due = function Some d when now >= d -> true | _ -> false in
    if due flush_d then begin
      ignore (flush_pending server conn `Deadline);
      next_line server conn
    end
    else if due drain_d then begin
      (* answer what is already queued before giving up on the client *)
      ignore (flush_pending server conn `Request);
      raise Drain_expired
    end
    else if due idle_d then begin
      Obs.Counter.incr m_idle_reaped;
      (try
         conn_write conn
           (P.err_line ~code:"idle-timeout"
              (Printf.sprintf "no request in %gs" server.config.idle_timeout_s)
           ^ "\n")
       with Conn_closed -> ());
      raise Reaped
    end
    else begin
      let timeout =
        List.fold_left
          (fun acc d ->
            match d with
            | None -> acc
            | Some d -> Stdlib.min acc (Stdlib.max 0.0 (d -. now)))
          0.1
          [ flush_d; idle_d; drain_d ]
      in
      if wait_readable conn.fd timeout then recv_into conn;
      next_line server conn
    end
  end

(* ------------------------------ requests -------------------------- *)

exception Quit_conn

let reply conn line = conn_write conn (line ^ "\n")

let err_draining = P.err_line ~code:"draining" "server is draining"

let status_fields (st : Registry.status) =
  Printf.sprintf
    "version %d fingerprint %s specs %d kept %d dropped %d degraded %d \
     breaker %s trips %d"
    st.Registry.version st.Registry.fingerprint st.Registry.specs
    st.Registry.kept
    (st.Registry.specs - st.Registry.kept)
    (if st.Registry.degraded then 1 else 0)
    (Registry.breaker_state_to_string st.Registry.breaker)
    st.Registry.breaker_trips

let handle_batch server conn name count =
  match Registry.find server.registry name with
  | None ->
    Obs.Counter.incr m_errors;
    reply conn (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name))
  | Some _ when count > server.config.max_pending ->
    (* refusing without draining the declared rows would desync the
       stream, and draining an unbounded count is an attack surface:
       drop the connection instead *)
    Obs.Counter.incr m_errors;
    reply conn
      (P.err_line ~code:"overflow"
         (Printf.sprintf "BATCH of %d exceeds the %d-row bound" count
            server.config.max_pending));
    raise Quit_conn
  | Some entry ->
    let rows = Array.make count [||] in
    let row_errors = Array.make count None in
    let received = ref 0 in
    (* if the drain deadline lands mid-batch the rows already received
       are accepted devices and still get verdicts; the rows the client
       never sent are answered [ERR draining] and the connection closes *)
    (try
       for i = 0 to count - 1 do
         (match next_line server conn with
          | None -> raise Conn_closed  (* mid-batch disconnect *)
          | Some line -> (
            match P.parse_row line with
            | Ok row -> rows.(i) <- row
            | Error e -> row_errors.(i) <- Some e));
         received := i + 1
       done
     with Drain_expired -> ());
    let got = !received in
    let valid_idx =
      Array.to_list
        (Array.of_seq
           (Seq.filter
              (fun i -> row_errors.(i) = None)
              (Seq.init got Fun.id)))
    in
    let valid_rows = Array.of_list (List.map (fun i -> rows.(i)) valid_idx) in
    let replies = Array.make count "" in
    for i = got to count - 1 do
      replies.(i) <- err_draining
    done;
    Array.iteri
      (fun i e ->
        match e with
        | Some msg -> if i < got then replies.(i) <- P.err_line ~code:"bad-row" msg
        | None -> ())
      row_errors;
    (match registry_process server entry valid_rows with
     | Ok outcomes ->
       List.iteri
         (fun j i -> replies.(i) <- P.format_outcome outcomes.(j))
         valid_idx
     | Error e ->
       Obs.Counter.incr m_errors;
       let line = P.err_line ~code:"bad-row" e in
       List.iter (fun i -> replies.(i) <- line) valid_idx);
    Obs.Counter.add m_rows got;
    Obs.Counter.incr m_batches;
    let buf = Buffer.create (count * 16 + 32) in
    Buffer.add_string buf (P.ok_line (Printf.sprintf "batch %d" count));
    Buffer.add_char buf '\n';
    Array.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      replies;
    conn_write conn (Buffer.contents buf);
    if got < count then raise Quit_conn

let handle_request server conn req =
  let flush () = ignore (flush_pending server conn `Request) in
  let is_draining () = Atomic.get server.drain_flag in
  match req with
  | P.Bin (name, row) ->
    if Queue.length conn.pending >= server.config.max_pending then begin
      (* bounded queue: flush before accepting more — with the reply
         written only now, the client's own read loop is the brake *)
      Obs.Counter.incr m_backpressure;
      ignore (flush_pending server conn `Size)
    end;
    if Queue.is_empty conn.pending then
      conn.first_pending_t <- Clock.now ();
    (if is_draining () then begin
       (* new work is refused, but through the deferred-reply queue so
          replies still come back in request order *)
       Obs.Counter.incr m_drain_rejected;
       Queue.push (Deferred_reply err_draining) conn.pending
     end
     else
       match Registry.find server.registry name with
       | None ->
         Obs.Counter.incr m_errors;
         Queue.push
           (Deferred_reply
              (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name)))
           conn.pending
       | Some entry -> Queue.push (Row (entry, row)) conn.pending);
    if Queue.length conn.pending >= server.config.flush_rows then
      ignore (flush_pending server conn `Size)
  | P.Flush ->
    let n = flush_pending server conn `Explicit in
    reply conn (P.ok_line (Printf.sprintf "flushed %d" n))
  | P.Ping ->
    flush ();
    reply conn (P.ok_line "pong")
  | P.Flows ->
    flush ();
    let statuses = Registry.list server.registry in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (P.ok_line (Printf.sprintf "flows %d" (List.length statuses)));
    Buffer.add_char buf '\n';
    List.iter
      (fun (st : Registry.status) ->
        Buffer.add_string buf
          (Printf.sprintf "FLOW %s %d %s %d/%d\n" st.Registry.name
             st.Registry.version st.Registry.fingerprint st.Registry.kept
             st.Registry.specs))
      statuses;
    conn_write conn (Buffer.contents buf)
  | P.Info name ->
    flush ();
    (match Registry.find server.registry name with
     | None ->
       Obs.Counter.incr m_errors;
       reply conn
         (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name))
     | Some entry ->
       let st = Registry.status entry in
       reply conn
         (P.ok_line (Printf.sprintf "flow %s %s" name (status_fields st))))
  | P.Health None ->
    flush ();
    if is_draining () then reply conn err_draining
    else begin
      let statuses = Registry.list server.registry in
      let open_breakers =
        List.length
          (List.filter
             (fun (st : Registry.status) -> st.Registry.breaker <> Registry.Closed)
             statuses)
      in
      reply conn
        (P.ok_line
           (Printf.sprintf "health serving flows %d breakers-open %d"
              (List.length statuses) open_breakers))
    end
  | P.Health (Some name) ->
    flush ();
    (match Registry.find server.registry name with
     | None ->
       Obs.Counter.incr m_errors;
       reply conn
         (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name))
     | Some entry ->
       let st = Registry.status entry in
       reply conn
         (P.ok_line
            (Printf.sprintf
               "health flow %s breaker %s failures %d trips %d degraded %d \
                version %d"
               name
               (Registry.breaker_state_to_string st.Registry.breaker)
               st.Registry.breaker_failures st.Registry.breaker_trips
               (if st.Registry.degraded then 1 else 0)
               st.Registry.version)))
  | P.Stats name ->
    flush ();
    (match Registry.find server.registry name with
     | None ->
       Obs.Counter.incr m_errors;
       reply conn
         (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name))
     | Some entry ->
       let st = Registry.status entry in
       let s = st.Registry.stats in
       reply conn
         (P.ok_line
            (Printf.sprintf
               "stats devices %d shipped %d scrapped %d retested %d retries \
                %d degraded %d batches %d degraded_mode %d version %d"
               s.Floor.devices s.Floor.shipped s.Floor.scrapped s.Floor.retested
               s.Floor.retries s.Floor.degraded s.Floor.batches
               (if st.Registry.degraded then 1 else 0)
               st.Registry.version)))
  | P.Batch (name, count) ->
    flush ();
    if is_draining () then begin
      (* the declared rows will never be read; closing is the only way
         to keep the stream in sync *)
      Obs.Counter.incr m_drain_rejected;
      reply conn err_draining;
      raise Quit_conn
    end
    else handle_batch server conn name count
  | P.Metrics fmt ->
    flush ();
    let payload =
      match fmt with P.Text -> Obs.to_text () | P.Json -> Obs.to_json ()
    in
    let payload =
      if String.length payload > 0 && payload.[String.length payload - 1] = '\n'
      then payload
      else payload ^ "\n"
    in
    reply conn (P.ok_line (Printf.sprintf "metrics %d" (String.length payload)));
    conn_write conn payload
  | P.Reload { flow; path } ->
    flush ();
    (match Registry.reload ?path server.registry ~name:flow with
     | Ok (`Reloaded st) ->
       reply conn
         (P.ok_line
            (Printf.sprintf "reloaded %s version %d fingerprint %s" flow
               st.Registry.version st.Registry.fingerprint))
     | Ok (`Unchanged st) ->
       reply conn
         (P.ok_line
            (Printf.sprintf "unchanged %s version %d fingerprint %s" flow
               st.Registry.version st.Registry.fingerprint))
     | Error e ->
       Obs.Counter.incr m_errors;
       reply conn (P.err_line ~code:"reload" e))
  | P.Quit ->
    flush ();
    reply conn (P.ok_line "bye");
    raise Quit_conn
  | P.Shutdown ->
    flush ();
    (* latch before the ack: a client that saw [OK bye] must observe
       [shutdown_requested] as true *)
    Atomic.set server.shutdown_req true;
    reply conn (P.ok_line "bye");
    raise Quit_conn

(* ---------------------------- connections ------------------------- *)

let handle_conn server conn =
  let rec loop () =
    match next_line server conn with
    | None ->
      (* end of stream; a partial frame left behind is a torn frame *)
      if conn.leftover <> "" then Obs.Counter.incr m_torn_frames
    | Some line ->
      Obs.Counter.incr m_requests;
      (match P.parse_request line with
       | Ok req -> handle_request server conn req
       | Error e ->
         Obs.Counter.incr m_errors;
         ignore (flush_pending server conn `Request);
         reply conn (P.err_line ~code:"bad-request" e));
      loop ()
  in
  loop ()

let conn_main server id fd =
  let conn =
    {
      fd;
      lines = Queue.create ();
      leftover = "";
      eof = false;
      pending = Queue.create ();
      first_pending_t = 0.0;
      last_activity = Clock.now ();
      write_timeout_s = server.config.write_timeout_s;
    }
  in
  (try handle_conn server conn with
   | Quit_conn | Reaped -> ()
   | Drain_expired ->
     (try conn_write conn (err_draining ^ "\n") with Conn_closed -> ())
   | Conn_closed ->
     (* the peer vanished mid-conversation (EPIPE/ECONNRESET on write,
        eof mid-batch, or a blown write deadline): per-connection
        teardown, not an error *)
     Obs.Counter.incr m_disconnects
   | Unix.Unix_error _ -> Obs.Counter.incr m_errors
   | _ -> Obs.Counter.incr m_errors);
  with_lock server.lock (fun () ->
      if Hashtbl.mem server.conns id then begin
        Hashtbl.remove server.conns id;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end;
      (* hand the thread handle to the accept loop's reaper: a
         long-lived server must not accumulate one Thread.t per
         connection it ever served *)
      match Hashtbl.find_opt server.threads id with
      | Some th ->
        Hashtbl.remove server.threads id;
        server.dead_threads <- th :: server.dead_threads
      | None -> ());
  Obs.Gauge.add g_active (-1.0)

(* Jittered backoff for transient accept failures (EMFILE, ENFILE,
   ENOBUFS, ...): hammering a fd-exhausted accept in a tight loop only
   starves the handlers that would release fds. Deterministic jitter,
   same as the floor's retry schedule. *)
let accept_backoff =
  { Retry.default_policy with base_delay_s = 0.01; max_delay_s = 0.5 }

let reap_dead_threads server =
  let dead =
    with_lock server.lock (fun () ->
        let d = server.dead_threads in
        server.dead_threads <- [];
        d)
  in
  List.iter Thread.join dead

let accept_loop server lfd =
  let consecutive_errors = ref 0 in
  while not (Atomic.get server.stop_flag) do
    reap_dead_threads server;
    if wait_readable lfd 0.2 then begin
      match Unix.accept lfd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
        (* the peer hung up between SYN and accept: their failure *)
        Obs.Counter.incr m_accept_errors
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        Atomic.set server.stop_flag true
      | exception Unix.Unix_error (_, _, _) ->
        (* EMFILE/ENFILE/ENOMEM/ENOBUFS and anything else transient:
           the listener must survive — count, back off, keep going *)
        Obs.Counter.incr m_accept_errors;
        incr consecutive_errors;
        Thread.delay
          (Retry.delay_s accept_backoff
             ~retry:(Stdlib.min 8 !consecutive_errors))
      | fd, _addr ->
        consecutive_errors := 0;
        Obs.Counter.incr m_connections;
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        (match server.config.sndbuf_bytes with
         | Some n -> (
           try Unix.setsockopt_int fd Unix.SO_SNDBUF n
           with Unix.Unix_error _ -> ())
         | None -> ());
        let verdict =
          with_lock server.lock (fun () ->
              if Atomic.get server.stop_flag then `Draining
              else if Atomic.get server.drain_flag then `Draining
              else if
                Hashtbl.length server.conns >= server.config.max_connections
              then `Busy
              else begin
                let id = server.next_conn_id in
                server.next_conn_id <- id + 1;
                Hashtbl.add server.conns id fd;
                let thread =
                  Thread.create (fun () -> conn_main server id fd) ()
                in
                Hashtbl.replace server.threads id thread;
                `Accepted
              end)
        in
        (match verdict with
         | `Accepted -> Obs.Gauge.add g_active 1.0
         | (`Busy | `Draining) as r ->
           (* load shedding: one line telling the client why, then a
              clean close — never a silent drop, never a hung accept *)
           Obs.Counter.incr m_shed;
           let line =
             match r with
             | `Busy ->
               Obs.Counter.incr m_rejected;
               P.err_line ~code:"busy" "connection limit reached"
             | `Draining ->
               Obs.Counter.incr m_drain_rejected;
               err_draining
           in
           (try write_all ~timeout_s:1.0 fd (line ^ "\n")
            with Conn_closed -> ());
           (try Unix.close fd with Unix.Unix_error _ -> ()))
    end
  done

(* ------------------------------ lifecycle ------------------------- *)

(* Writing to a socket whose peer already disconnected raises SIGPIPE,
   whose default disposition kills the whole process before the
   [Unix_error EPIPE] that [write_all] handles can even be raised — one
   client dropping mid-reply must not take the server down for every
   other tenant. Ignoring the signal turns those writes into plain
   EPIPE errors. Idempotent; guarded for platforms without SIGPIPE. *)
let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ | Sys_error _ -> ()

let start t =
  with_lock t.lock (fun () ->
      if t.started then invalid_arg "Server.start: already started";
      t.started <- true);
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     let addr = Unix.inet_addr_of_string t.config.host in
     Unix.bind fd (Unix.ADDR_INET (addr, t.config.port));
     Unix.listen fd t.config.backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> port
    | Unix.ADDR_UNIX _ -> assert false
  in
  t.listen_fd <- Some fd;
  t.bound_port <- port;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t fd) ())

let port t =
  if t.bound_port < 0 then invalid_arg "Server.port: server not started";
  t.bound_port

let running t = t.started && not t.stopped

let shutdown_requested t = Atomic.get t.shutdown_req

let active_connections t =
  with_lock t.lock (fun () -> Hashtbl.length t.conns)

let stop t =
  let proceed =
    with_lock t.lock (fun () ->
        if t.stopped || not t.started then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if proceed then begin
    Atomic.set t.stop_flag true;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.listen_fd with
     | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
     | None -> ());
    t.listen_fd <- None;
    (* wake every connection handler out of its blocking read; the fd
       itself is closed by its own thread (or below if that thread is
       already gone) *)
    with_lock t.lock (fun () ->
        Hashtbl.iter
          (fun _ fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.conns);
    let threads =
      with_lock t.lock (fun () ->
          let live =
            Hashtbl.fold (fun _ th acc -> th :: acc) t.threads []
          in
          Hashtbl.reset t.threads;
          let all = List.rev_append t.dead_threads live in
          t.dead_threads <- [];
          all)
    in
    List.iter Thread.join threads;
    with_lock t.lock (fun () ->
        Hashtbl.iter
          (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          t.conns;
        Hashtbl.reset t.conns);
    Obs.Gauge.set g_draining 0.0
  end

let wait ?(poll_s = 0.1) ?(on_tick = fun () -> ()) t =
  let rec go () =
    if t.stopped then ()
    else if Atomic.get t.shutdown_req && not (Atomic.get t.drain_flag) then begin
      (* a SHUTDOWN request is an orderly exit: drain first so every
         in-flight batch is answered, then stop *)
      drain t;
      go ()
    end
    else if
      Atomic.get t.drain_flag
      && (Clock.now () >= Atomic.get t.drain_until
          || active_connections t = 0)
    then stop t
    else begin
      on_tick ();
      Thread.delay poll_s;
      go ()
    end
  in
  go ()

let with_server ?config registry f =
  let t = create ?config registry in
  start t;
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
