module Obs = Stc_obs.Registry
module Floor = Stc_floor.Floor
module P = Protocol

(* Process-wide serving counters; scraped live via METRICS. *)
let m_connections = Obs.counter "stc_net_connections_total"
let m_rejected = Obs.counter "stc_net_rejected_connections_total"
let g_active = Obs.gauge "stc_net_active_connections"
let m_requests = Obs.counter "stc_net_requests_total"
let m_rows = Obs.counter "stc_net_rows_total"
let m_batches = Obs.counter "stc_net_batches_total"
let m_flushes = Obs.counter "stc_net_flushes_total"
let m_deadline_flushes = Obs.counter "stc_net_deadline_flushes_total"
let m_backpressure = Obs.counter "stc_net_backpressure_stalls_total"
let m_errors = Obs.counter "stc_net_errors_total"
let m_disconnects = Obs.counter "stc_net_disconnects_total"
let m_torn_frames = Obs.counter "stc_net_torn_frames_total"
let h_flush = Obs.histogram "stc_net_flush_s"

type config = {
  host : string;
  port : int;
  backlog : int;
  max_connections : int;
  flush_rows : int;
  flush_deadline_s : float;
  max_pending : int;
  escalate : bool;
  retry : Stc_floor.Retry.policy option;
  batch_deadline_s : float option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    max_connections = 64;
    flush_rows = 256;
    flush_deadline_s = 0.05;
    max_pending = 4096;
    escalate = true;
    retry = None;
    batch_deadline_s = None;
  }

type t = {
  registry : Registry.t;
  config : config;
  lock : Mutex.t;
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable next_conn_id : int;
  stop_flag : bool Atomic.t;
  shutdown_req : bool Atomic.t;
  mutable started : bool;
  mutable stopped : bool;
}

let create ?(config = default_config) registry =
  if config.flush_rows < 1 then
    invalid_arg "Server.create: flush_rows must be >= 1";
  if config.flush_deadline_s <= 0.0 then
    invalid_arg "Server.create: flush_deadline_s must be positive";
  if config.max_pending < 1 then
    invalid_arg "Server.create: max_pending must be >= 1";
  if config.max_connections < 1 then
    invalid_arg "Server.create: max_connections must be >= 1";
  {
    registry;
    config;
    lock = Mutex.create ();
    listen_fd = None;
    bound_port = -1;
    accept_thread = None;
    conn_threads = [];
    conns = Hashtbl.create 16;
    next_conn_id = 0;
    stop_flag = Atomic.make false;
    shutdown_req = Atomic.make false;
    started = false;
    stopped = false;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------- connection I/O ------------------------- *)

exception Conn_closed

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write_substring fd s !pos (n - !pos) with
    | written -> pos := !pos + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      ->
      raise Conn_closed
  done

(* [true] when [fd] turns readable within [timeout_s] (negative =
   forever); EINTR retries with the remaining time. *)
let wait_readable fd timeout_s =
  let deadline =
    if timeout_s < 0.0 then None else Some (Unix.gettimeofday () +. timeout_s)
  in
  let rec go () =
    let t =
      match deadline with
      | None -> -1.0
      | Some d -> Stdlib.max 0.0 (d -. Unix.gettimeofday ())
    in
    match Unix.select [ fd ] [] [] t with
    | [], _, _ -> false
    | _ :: _, _, _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

type pending_item =
  | Row of Registry.entry * float array
  | Deferred_reply of string  (* a full reply line, e.g. ERR unknown-flow *)

type conn = {
  fd : Unix.file_descr;
  lines : string Queue.t;       (* complete frames not yet handled *)
  mutable leftover : string;    (* bytes after the last newline *)
  mutable eof : bool;
  pending : pending_item Queue.t;
  mutable first_pending_t : float;
}

let recv_into conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
    conn.eof <- true
  | 0 -> conn.eof <- true
  | n ->
    let data = conn.leftover ^ Bytes.sub_string chunk 0 n in
    let pieces = String.split_on_char '\n' data in
    let rec push = function
      | [] -> conn.leftover <- ""
      | [ last ] -> conn.leftover <- last
      | line :: rest ->
        Queue.push line conn.lines;
        push rest
    in
    push pieces;
    if String.length conn.leftover > P.max_line_bytes then begin
      Obs.Counter.incr m_errors;
      write_all conn.fd
        (P.err_line ~code:"frame-too-long"
           (Printf.sprintf "request line exceeds %d bytes" P.max_line_bytes)
        ^ "\n");
      raise Conn_closed
    end

(* ------------------------------ flushing -------------------------- *)

let registry_process server entry rows =
  Registry.process ~escalate:server.config.escalate ?retry:server.config.retry
    ?batch_deadline_s:server.config.batch_deadline_s entry rows

(* Answer every pending row, in request order, sharding maximal runs of
   same-flow rows into one engine batch each. *)
let flush_pending server conn reason =
  let n = Queue.length conn.pending in
  if n > 0 then begin
    let t0 = Unix.gettimeofday () in
    let items = Array.make n (Deferred_reply "") in
    for i = 0 to n - 1 do
      items.(i) <- Queue.pop conn.pending
    done;
    Obs.Counter.incr m_flushes;
    if reason = `Deadline then Obs.Counter.incr m_deadline_flushes;
    let replies = Array.make n "" in
    let i = ref 0 in
    while !i < n do
      match items.(!i) with
      | Deferred_reply line ->
        replies.(!i) <- line;
        incr i
      | Row (entry, _) ->
        let start = !i in
        let stop = ref !i in
        (* widen to the maximal same-entry run *)
        while
          !stop < n
          && match items.(!stop) with
             | Row (e, _) -> e == entry
             | Deferred_reply _ -> false
        do
          incr stop
        done;
        let rows =
          Array.init (!stop - start) (fun j ->
              match items.(start + j) with
              | Row (_, row) -> row
              | Deferred_reply _ -> assert false)
        in
        (match registry_process server entry rows with
         | Ok outcomes ->
           Array.iteri
             (fun j o -> replies.(start + j) <- P.format_outcome o)
             outcomes
         | Error e ->
           Obs.Counter.incr m_errors;
           let line = P.err_line ~code:"bad-row" e in
           for j = start to !stop - 1 do
             replies.(j) <- line
           done);
        i := !stop
    done;
    Obs.Counter.add m_rows n;
    let buf = Buffer.create (n * 16) in
    Array.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      replies;
    write_all conn.fd (Buffer.contents buf);
    Obs.Histogram.observe h_flush (Unix.gettimeofday () -. t0)
  end;
  n

(* The next complete frame. While rows are pending the wait is bounded
   by the flush deadline — a trickling client still gets its verdicts
   within [flush_deadline_s]. [None] at end of stream. *)
let rec next_line server conn =
  if not (Queue.is_empty conn.lines) then Some (Queue.pop conn.lines)
  else if conn.eof then None
  else begin
    let timeout =
      if Queue.is_empty conn.pending then -1.0
      else
        let age = Unix.gettimeofday () -. conn.first_pending_t in
        Stdlib.max 0.0 (server.config.flush_deadline_s -. age)
    in
    if timeout = 0.0 then begin
      ignore (flush_pending server conn `Deadline);
      next_line server conn
    end
    else if wait_readable conn.fd timeout then begin
      recv_into conn;
      next_line server conn
    end
    else begin
      ignore (flush_pending server conn `Deadline);
      next_line server conn
    end
  end

(* ------------------------------ requests -------------------------- *)

exception Quit_conn

let reply conn line = write_all conn.fd (line ^ "\n")

let status_fields (st : Registry.status) =
  Printf.sprintf
    "version %d fingerprint %s specs %d kept %d dropped %d degraded %d"
    st.Registry.version st.Registry.fingerprint st.Registry.specs
    st.Registry.kept
    (st.Registry.specs - st.Registry.kept)
    (if st.Registry.degraded then 1 else 0)

let handle_batch server conn name count =
  match Registry.find server.registry name with
  | None ->
    Obs.Counter.incr m_errors;
    reply conn (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name))
  | Some _ when count > server.config.max_pending ->
    (* refusing without draining the declared rows would desync the
       stream, and draining an unbounded count is an attack surface:
       drop the connection instead *)
    Obs.Counter.incr m_errors;
    reply conn
      (P.err_line ~code:"overflow"
         (Printf.sprintf "BATCH of %d exceeds the %d-row bound" count
            server.config.max_pending));
    raise Quit_conn
  | Some entry ->
    let rows = Array.make count [||] in
    let row_errors = Array.make count None in
    for i = 0 to count - 1 do
      match next_line server conn with
      | None -> raise Conn_closed  (* mid-batch disconnect *)
      | Some line -> (
        match P.parse_row line with
        | Ok row -> rows.(i) <- row
        | Error e -> row_errors.(i) <- Some e)
    done;
    let valid_idx =
      Array.to_list
        (Array.of_seq
           (Seq.filter
              (fun i -> row_errors.(i) = None)
              (Seq.init count Fun.id)))
    in
    let valid_rows = Array.of_list (List.map (fun i -> rows.(i)) valid_idx) in
    let replies = Array.make count "" in
    Array.iteri
      (fun i e ->
        match e with
        | Some msg -> replies.(i) <- P.err_line ~code:"bad-row" msg
        | None -> ())
      row_errors;
    (match registry_process server entry valid_rows with
     | Ok outcomes ->
       List.iteri
         (fun j i -> replies.(i) <- P.format_outcome outcomes.(j))
         valid_idx
     | Error e ->
       Obs.Counter.incr m_errors;
       let line = P.err_line ~code:"bad-row" e in
       List.iter (fun i -> replies.(i) <- line) valid_idx);
    Obs.Counter.add m_rows count;
    Obs.Counter.incr m_batches;
    let buf = Buffer.create (count * 16 + 32) in
    Buffer.add_string buf (P.ok_line (Printf.sprintf "batch %d" count));
    Buffer.add_char buf '\n';
    Array.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      replies;
    write_all conn.fd (Buffer.contents buf)

let handle_request server conn req =
  let flush () = ignore (flush_pending server conn `Request) in
  match req with
  | P.Bin (name, row) ->
    if Queue.length conn.pending >= server.config.max_pending then begin
      (* bounded queue: flush before accepting more — with the reply
         written only now, the client's own read loop is the brake *)
      Obs.Counter.incr m_backpressure;
      ignore (flush_pending server conn `Size)
    end;
    if Queue.is_empty conn.pending then
      conn.first_pending_t <- Unix.gettimeofday ();
    (match Registry.find server.registry name with
     | None ->
       Obs.Counter.incr m_errors;
       Queue.push
         (Deferred_reply
            (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name)))
         conn.pending
     | Some entry -> Queue.push (Row (entry, row)) conn.pending);
    if Queue.length conn.pending >= server.config.flush_rows then
      ignore (flush_pending server conn `Size)
  | P.Flush ->
    let n = flush_pending server conn `Explicit in
    reply conn (P.ok_line (Printf.sprintf "flushed %d" n))
  | P.Ping ->
    flush ();
    reply conn (P.ok_line "pong")
  | P.Flows ->
    flush ();
    let statuses = Registry.list server.registry in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (P.ok_line (Printf.sprintf "flows %d" (List.length statuses)));
    Buffer.add_char buf '\n';
    List.iter
      (fun (st : Registry.status) ->
        Buffer.add_string buf
          (Printf.sprintf "FLOW %s %d %s %d/%d\n" st.Registry.name
             st.Registry.version st.Registry.fingerprint st.Registry.kept
             st.Registry.specs))
      statuses;
    write_all conn.fd (Buffer.contents buf)
  | P.Info name ->
    flush ();
    (match Registry.find server.registry name with
     | None ->
       Obs.Counter.incr m_errors;
       reply conn
         (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name))
     | Some entry ->
       let st = Registry.status entry in
       reply conn
         (P.ok_line (Printf.sprintf "flow %s %s" name (status_fields st))))
  | P.Stats name ->
    flush ();
    (match Registry.find server.registry name with
     | None ->
       Obs.Counter.incr m_errors;
       reply conn
         (P.err_line ~code:"unknown-flow" (Printf.sprintf "flow %S" name))
     | Some entry ->
       let st = Registry.status entry in
       let s = st.Registry.stats in
       reply conn
         (P.ok_line
            (Printf.sprintf
               "stats devices %d shipped %d scrapped %d retested %d retries \
                %d degraded %d batches %d degraded_mode %d version %d"
               s.Floor.devices s.Floor.shipped s.Floor.scrapped s.Floor.retested
               s.Floor.retries s.Floor.degraded s.Floor.batches
               (if st.Registry.degraded then 1 else 0)
               st.Registry.version)))
  | P.Batch (name, count) ->
    flush ();
    handle_batch server conn name count
  | P.Metrics fmt ->
    flush ();
    let payload =
      match fmt with P.Text -> Obs.to_text () | P.Json -> Obs.to_json ()
    in
    let payload =
      if String.length payload > 0 && payload.[String.length payload - 1] = '\n'
      then payload
      else payload ^ "\n"
    in
    reply conn (P.ok_line (Printf.sprintf "metrics %d" (String.length payload)));
    write_all conn.fd payload
  | P.Reload { flow; path } ->
    flush ();
    (match Registry.reload ?path server.registry ~name:flow with
     | Ok (`Reloaded st) ->
       reply conn
         (P.ok_line
            (Printf.sprintf "reloaded %s version %d fingerprint %s" flow
               st.Registry.version st.Registry.fingerprint))
     | Ok (`Unchanged st) ->
       reply conn
         (P.ok_line
            (Printf.sprintf "unchanged %s version %d fingerprint %s" flow
               st.Registry.version st.Registry.fingerprint))
     | Error e ->
       Obs.Counter.incr m_errors;
       reply conn (P.err_line ~code:"reload" e))
  | P.Quit ->
    flush ();
    reply conn (P.ok_line "bye");
    raise Quit_conn
  | P.Shutdown ->
    flush ();
    reply conn (P.ok_line "bye");
    Atomic.set server.shutdown_req true;
    raise Quit_conn

(* ---------------------------- connections ------------------------- *)

let handle_conn server conn =
  let rec loop () =
    match next_line server conn with
    | None ->
      (* end of stream; a partial frame left behind is a torn frame *)
      if conn.leftover <> "" then Obs.Counter.incr m_torn_frames
    | Some line ->
      Obs.Counter.incr m_requests;
      (match P.parse_request line with
       | Ok req -> handle_request server conn req
       | Error e ->
         Obs.Counter.incr m_errors;
         ignore (flush_pending server conn `Request);
         reply conn (P.err_line ~code:"bad-request" e));
      loop ()
  in
  loop ()

let conn_main server id fd =
  let conn =
    {
      fd;
      lines = Queue.create ();
      leftover = "";
      eof = false;
      pending = Queue.create ();
      first_pending_t = 0.0;
    }
  in
  (try handle_conn server conn with
   | Quit_conn -> ()
   | Conn_closed ->
     (* the peer vanished mid-conversation (EPIPE/ECONNRESET on write,
        or eof mid-batch): per-connection teardown, not an error *)
     Obs.Counter.incr m_disconnects
   | Unix.Unix_error _ -> Obs.Counter.incr m_errors
   | _ -> Obs.Counter.incr m_errors);
  with_lock server.lock (fun () ->
      if Hashtbl.mem server.conns id then begin
        Hashtbl.remove server.conns id;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end);
  Obs.Gauge.add g_active (-1.0)

let accept_loop server lfd =
  while not (Atomic.get server.stop_flag) do
    if wait_readable lfd 0.2 then begin
      match Unix.accept lfd with
      | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        Atomic.set server.stop_flag true
      | fd, _addr ->
        Obs.Counter.incr m_connections;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let accepted =
          with_lock server.lock (fun () ->
              if
                Atomic.get server.stop_flag
                || Hashtbl.length server.conns >= server.config.max_connections
              then false
              else begin
                let id = server.next_conn_id in
                server.next_conn_id <- id + 1;
                Hashtbl.add server.conns id fd;
                let thread = Thread.create (fun () -> conn_main server id fd) () in
                server.conn_threads <- thread :: server.conn_threads;
                true
              end)
        in
        if accepted then Obs.Gauge.add g_active 1.0
        else begin
          Obs.Counter.incr m_rejected;
          (try
             write_all fd
               (P.err_line ~code:"busy" "connection limit reached" ^ "\n")
           with Conn_closed -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
    end
  done

(* ------------------------------ lifecycle ------------------------- *)

(* Writing to a socket whose peer already disconnected raises SIGPIPE,
   whose default disposition kills the whole process before the
   [Unix_error EPIPE] that [write_all] handles can even be raised — one
   client dropping mid-reply must not take the server down for every
   other tenant. Ignoring the signal turns those writes into plain
   EPIPE errors. Idempotent; guarded for platforms without SIGPIPE. *)
let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ | Sys_error _ -> ()

let start t =
  with_lock t.lock (fun () ->
      if t.started then invalid_arg "Server.start: already started";
      t.started <- true);
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     let addr = Unix.inet_addr_of_string t.config.host in
     Unix.bind fd (Unix.ADDR_INET (addr, t.config.port));
     Unix.listen fd t.config.backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> port
    | Unix.ADDR_UNIX _ -> assert false
  in
  t.listen_fd <- Some fd;
  t.bound_port <- port;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t fd) ())

let port t =
  if t.bound_port < 0 then invalid_arg "Server.port: server not started";
  t.bound_port

let running t = t.started && not t.stopped

let shutdown_requested t = Atomic.get t.shutdown_req

let stop t =
  let proceed =
    with_lock t.lock (fun () ->
        if t.stopped || not t.started then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if proceed then begin
    Atomic.set t.stop_flag true;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.listen_fd with
     | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
     | None -> ());
    t.listen_fd <- None;
    (* wake every connection handler out of its blocking read; the fd
       itself is closed by its own thread (or below if that thread is
       already gone) *)
    with_lock t.lock (fun () ->
        Hashtbl.iter
          (fun _ fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.conns);
    let threads =
      with_lock t.lock (fun () ->
          let ts = t.conn_threads in
          t.conn_threads <- [];
          ts)
    in
    List.iter Thread.join threads;
    with_lock t.lock (fun () ->
        Hashtbl.iter
          (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          t.conns;
        Hashtbl.reset t.conns)
  end

let wait ?(poll_s = 0.1) ?(on_tick = fun () -> ()) t =
  let rec go () =
    if t.stopped then ()
    else if Atomic.get t.shutdown_req then stop t
    else begin
      on_tick ();
      Thread.delay poll_s;
      go ()
    end
  in
  go ()

let with_server ?config registry f =
  let t = create ?config registry in
  start t;
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
