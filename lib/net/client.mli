(** A small blocking client for the {!Protocol} line protocol — the
    reference implementation the tests, the smoke harness, the bench
    driver and [stc flow] tooling all speak through.

    One [t] is one TCP connection; calls are synchronous and must not
    be interleaved from multiple threads (use one client per thread —
    the server is built for many concurrent connections, not for
    multiplexed ones). Every call that touches the wire returns
    [Error] rather than raising on a server-side [ERR] reply; broken
    sockets raise [Unix.Unix_error] / [End_of_file] like any channel. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** Default host ["127.0.0.1"]. *)

val close : t -> unit
(** Closes the socket without the [QUIT] handshake; idempotent. *)

val send_line : t -> string -> unit
(** Low-level: one raw frame (the newline is appended). The QA fault
    harness uses this to send torn and malformed frames. *)

val recv_line : t -> string
(** Low-level: the next reply frame. Raises [End_of_file] when the
    server closed the stream. *)

val ping : t -> (unit, string) result

val bin_batch :
  t -> flow:string -> float array array -> (Stc_floor.Floor.outcome array, string) result
(** One [BATCH] request: header, the rows, then the per-row replies in
    order. A row the server refused surfaces as [Error] carrying that
    row's [ERR] message (remaining replies are still drained, so the
    connection stays usable). *)

val stream :
  t -> flow:string -> float array array -> (Stc_floor.Floor.outcome array, string) result
(** The same devices through the pipelined path: one [BIN] frame per
    row, then [FLUSH], then the deferred replies — this is the path
    that exercises the server's batching and backpressure machinery. *)

val metrics : t -> ?format:Protocol.format -> unit -> (string, string) result
(** The byte-counted metrics payload (default {!Protocol.Text}). *)

val flows : t -> (string list, string) result
(** The [FLOW ...] description lines, one per registered flow. *)

val info : t -> flow:string -> (string, string) result
(** The [OK] detail line for one flow. *)

val stats : t -> flow:string -> (string, string) result

val health : t -> ?flow:string -> unit -> (string, string) result
(** Readiness probe: [HEALTH] (whole server; [Error] while draining) or
    [HEALTH <flow>] (that flow's breaker state). Returns the [OK]
    detail line. *)

val reload :
  t -> flow:string -> ?path:string -> unit ->
  ([ `Reloaded | `Unchanged ] * string, string) result
(** The reload verdict plus the server's detail line. *)

val quit : t -> unit
(** [QUIT] handshake then {!close}; never raises. *)

val shutdown : t -> (unit, string) result
(** Asks the server process to stop (the connection closes with it). *)
