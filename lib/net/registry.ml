module Compaction = Stc.Compaction
module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Retry = Stc_floor.Retry
module Obs = Stc_obs.Registry

let m_reloads = Obs.counter "stc_net_reloads_total"
let m_reload_failures = Obs.counter "stc_net_reload_failures_total"
let g_flows = Obs.gauge "stc_net_flows"

type entry = {
  name : string;
  lock : Mutex.t;
      (* serialises [process] against [reload]'s swap: holding it means
         the current engine has no in-flight batch *)
  mutable flow : Compaction.flow;
  mutable engine : Floor.t;
  mutable version : int;
  mutable fingerprint : string;
  mutable source : string option;
}

type t = {
  floor_config : Floor.config;
  entries : (string, entry) Hashtbl.t;
  registry_lock : Mutex.t;  (* guards the table, never held during I/O *)
  mutable closed : bool;
}

type status = {
  name : string;
  version : int;
  fingerprint : string;
  source : string option;
  specs : int;
  kept : int;
  degraded : bool;
  stats : Floor.stats;
}

let create ?(floor_config = Floor.default_config) () =
  {
    floor_config;
    entries = Hashtbl.create 8;
    registry_lock = Mutex.create ();
    closed = false;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let add t ~name ?source flow =
  if not (Protocol.flow_name_ok name) then
    Error (Printf.sprintf "invalid flow name %S" name)
  else
    match Flow_io.fingerprint flow with
    | Error e -> Error (Printf.sprintf "flow %S cannot be served: %s" name e)
    | Ok fingerprint ->
      with_lock t.registry_lock (fun () ->
          if t.closed then Error "registry is shut down"
          else if Hashtbl.mem t.entries name then
            Error (Printf.sprintf "flow %S is already registered" name)
          else begin
            let entry =
              {
                name;
                lock = Mutex.create ();
                flow;
                engine = Floor.create ~config:t.floor_config flow;
                version = 1;
                fingerprint;
                source;
              }
            in
            Hashtbl.add t.entries name entry;
            Obs.Gauge.set g_flows (float_of_int (Hashtbl.length t.entries));
            Ok entry
          end)

let load t ~name ~path =
  match Flow_io.load ~path with
  | Error e -> Error (Printf.sprintf "cannot load flow %S from %s: %s" name path e)
  | Ok flow -> add t ~name ~source:path flow

let find t name =
  with_lock t.registry_lock (fun () -> Hashtbl.find_opt t.entries name)

let names t =
  with_lock t.registry_lock (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.entries []))

let status (e : entry) =
  (* a racing reload can swap flow/engine between these reads; each
     field is still a consistent value and the fingerprint names the
     version the caller observed *)
  {
    name = e.name;
    version = e.version;
    fingerprint = e.fingerprint;
    source = e.source;
    specs = Array.length e.flow.Compaction.specs;
    kept = Array.length e.flow.Compaction.kept;
    degraded = Floor.degraded e.engine;
    stats = Floor.stats e.engine;
  }

let list t =
  List.filter_map (fun n -> Option.map status (find t n)) (names t)

let name (e : entry) = e.name
let flow (e : entry) = e.flow

let reload ?(force = false) ?path t ~name =
  match find t name with
  | None ->
    Obs.Counter.incr m_reload_failures;
    Error (Printf.sprintf "unknown flow %S" name)
  | Some entry -> (
    let source = match path with Some _ -> path | None -> entry.source in
    match source with
    | None ->
      Obs.Counter.incr m_reload_failures;
      Error (Printf.sprintf "flow %S has no source path to reload from" name)
    | Some src -> (
      (* parse + fingerprint the candidate entirely before touching the
         live entry: a bad file must leave serving untouched *)
      match Flow_io.load ~path:src with
      | Error e ->
        Obs.Counter.incr m_reload_failures;
        Error (Printf.sprintf "reload of flow %S from %s failed: %s" name src e)
      | Ok candidate -> (
        match Flow_io.fingerprint candidate with
        | Error e ->
          Obs.Counter.incr m_reload_failures;
          Error (Printf.sprintf "reload of flow %S: %s" name e)
        | Ok fingerprint ->
          if fingerprint = entry.fingerprint && not force then begin
            (* same canonical bytes: re-saving the current flow is a
               no-op, not an engine churn *)
            entry.source <- Some src;
            Ok (`Unchanged (status entry))
          end
          else begin
            let replacement = Floor.create ~config:t.floor_config candidate in
            let old_engine =
              (* the entry lock is held by any in-flight batch, so
                 locking it here IS the drain: the swap waits for the
                 running batch, and the next batch sees the new flow *)
              with_lock entry.lock (fun () ->
                  let old = entry.engine in
                  entry.flow <- candidate;
                  entry.engine <- replacement;
                  entry.fingerprint <- fingerprint;
                  entry.version <- entry.version + 1;
                  entry.source <- Some src;
                  old)
            in
            Floor.shutdown old_engine;
            Obs.Counter.incr m_reloads;
            Ok (`Reloaded (status entry))
          end)))

let process ?(escalate = true) ?retry ?batch_deadline_s (entry : entry) rows =
  with_lock entry.lock (fun () ->
      let flow = entry.flow in
      let width = Array.length flow.Compaction.specs in
      match
        Array.find_opt (fun row -> Array.length row <> width) rows
      with
      | Some bad ->
        Error
          (Printf.sprintf
             "row width %d does not match flow %S (%d specs, version %d)"
             (Array.length bad) entry.name width entry.version)
      | None -> (
        let retest = if escalate then Some (Floor.full_test flow) else None in
        match
          Floor.process ?retest ?retry ?batch_deadline_s entry.engine rows
        with
        | outcomes -> Ok outcomes
        | exception Invalid_argument e -> Error e))

let shutdown t =
  let entries =
    with_lock t.registry_lock (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
        end)
  in
  List.iter
    (fun e -> with_lock e.lock (fun () -> Floor.shutdown e.engine))
    entries
