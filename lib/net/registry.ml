module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Tester = Stc.Tester
module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Retry = Stc_floor.Retry
module Obs = Stc_obs.Registry
module Clock = Stc_obs.Clock

let m_reloads = Obs.counter "stc_net_reloads_total"
let m_reload_failures = Obs.counter "stc_net_reload_failures_total"
let g_flows = Obs.gauge "stc_net_flows"
let m_breaker_trips = Obs.counter "stc_net_breaker_trips_total"
let m_breaker_recycles = Obs.counter "stc_net_breaker_recycles_total"
let m_breaker_shed_rows = Obs.counter "stc_net_breaker_shed_rows_total"
let g_breaker_open = Obs.gauge "stc_net_breaker_open"

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker_config = {
  failure_threshold : int;
  cooldown_s : float;
  cooldown_backoff : float;
  max_cooldown_s : float;
}

let default_breaker =
  {
    failure_threshold = 3;
    cooldown_s = 0.25;
    cooldown_backoff = 2.0;
    max_cooldown_s = 30.0;
  }

type entry = {
  name : string;
  lock : Mutex.t;
      (* serialises [process] against [reload]'s swap: holding it means
         the current engine has no in-flight batch *)
  floor_config : Floor.config;
  breaker_config : breaker_config;
  mutable flow : Compaction.flow;
  mutable engine : Floor.t;
  mutable version : int;
  mutable fingerprint : string;
  mutable source : string option;
  (* breaker state; all under [lock] *)
  mutable breaker : breaker_state;
  mutable failures : int;      (* consecutive engine failures *)
  mutable trips : int;         (* lifetime trips; drives the cooldown backoff *)
  mutable open_until : float;  (* monotonic deadline while [Open] *)
  mutable inject_faults : int; (* chaos failpoint: crash the next N batches *)
}

type t = {
  floor_config : Floor.config;
  breaker : breaker_config;
  entries : (string, entry) Hashtbl.t;
  registry_lock : Mutex.t;  (* guards the table, never held during I/O *)
  mutable closed : bool;
}

type status = {
  name : string;
  version : int;
  fingerprint : string;
  source : string option;
  specs : int;
  kept : int;
  degraded : bool;
  breaker : breaker_state;
  breaker_failures : int;
  breaker_trips : int;
  stats : Floor.stats;
}

let create ?(floor_config = Floor.default_config) ?(breaker = default_breaker)
    () =
  if breaker.failure_threshold < 1 then
    invalid_arg "Registry.create: failure_threshold must be >= 1";
  if breaker.cooldown_s <= 0.0 || breaker.max_cooldown_s < breaker.cooldown_s
  then invalid_arg "Registry.create: cooldown must be positive and <= max";
  if breaker.cooldown_backoff < 1.0 then
    invalid_arg "Registry.create: cooldown_backoff must be >= 1";
  {
    floor_config;
    breaker;
    entries = Hashtbl.create 8;
    registry_lock = Mutex.create ();
    closed = false;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let add t ~name ?source flow =
  if not (Protocol.flow_name_ok name) then
    Error (Printf.sprintf "invalid flow name %S" name)
  else
    match Flow_io.fingerprint flow with
    | Error e -> Error (Printf.sprintf "flow %S cannot be served: %s" name e)
    | Ok fingerprint ->
      with_lock t.registry_lock (fun () ->
          if t.closed then Error "registry is shut down"
          else if Hashtbl.mem t.entries name then
            Error (Printf.sprintf "flow %S is already registered" name)
          else begin
            let entry =
              {
                name;
                lock = Mutex.create ();
                floor_config = t.floor_config;
                breaker_config = t.breaker;
                flow;
                engine = Floor.create ~config:t.floor_config flow;
                version = 1;
                fingerprint;
                source;
                breaker = Closed;
                failures = 0;
                trips = 0;
                open_until = 0.0;
                inject_faults = 0;
              }
            in
            Hashtbl.add t.entries name entry;
            Obs.Gauge.set g_flows (float_of_int (Hashtbl.length t.entries));
            Ok entry
          end)

let load t ~name ~path =
  match Flow_io.load ~path with
  | Error e -> Error (Printf.sprintf "cannot load flow %S from %s: %s" name path e)
  | Ok flow -> add t ~name ~source:path flow

let find t name =
  with_lock t.registry_lock (fun () -> Hashtbl.find_opt t.entries name)

let names t =
  with_lock t.registry_lock (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.entries []))

let status (e : entry) =
  (* a racing reload can swap flow/engine between these reads; each
     field is still a consistent value and the fingerprint names the
     version the caller observed *)
  {
    name = e.name;
    version = e.version;
    fingerprint = e.fingerprint;
    source = e.source;
    specs = Array.length e.flow.Compaction.specs;
    kept = Array.length e.flow.Compaction.kept;
    degraded = Floor.degraded e.engine;
    breaker = e.breaker;
    breaker_failures = e.failures;
    breaker_trips = e.trips;
    stats = Floor.stats e.engine;
  }

let list t =
  List.filter_map (fun n -> Option.map status (find t n)) (names t)

let name (e : entry) = e.name
let flow (e : entry) = e.flow
let breaker (e : entry) = e.breaker

(* ---------------------------- circuit breaker --------------------- *)

(* A device the engine could not judge is never dropped: it is served
   [Retest]/[Guard] for a later full-test station, the same shedding
   convention {!Floor}'s sticky degraded mode uses for guard rows. *)
let shed_outcome = { Floor.bin = Tester.Retest; verdict = Guard_band.Guard }

(* under [e.lock] *)
let close_breaker (e : entry) =
  if e.breaker <> Closed then Obs.Gauge.add g_breaker_open (-1.0);
  e.breaker <- Closed;
  e.failures <- 0

(* under [e.lock] *)
let trip (e : entry) =
  if e.breaker = Closed then Obs.Gauge.add g_breaker_open 1.0;
  e.breaker <- Open;
  e.trips <- e.trips + 1;
  e.failures <- 0;
  let cooldown =
    Stdlib.min e.breaker_config.max_cooldown_s
      (e.breaker_config.cooldown_s
      *. (e.breaker_config.cooldown_backoff ** float_of_int (e.trips - 1)))
  in
  e.open_until <- Clock.now () +. cooldown;
  Obs.Counter.incr m_breaker_trips

(* under [e.lock]: swap in a fresh engine built from the current flow;
   the caller shuts the stale engine down off the lock *)
let swap_engine (e : entry) =
  let stale = e.engine in
  e.engine <- Floor.create ~config:e.floor_config e.flow;
  Obs.Counter.incr m_breaker_recycles;
  stale

let recycle (e : entry) =
  let stale =
    with_lock e.lock (fun () ->
        let stale = swap_engine e in
        close_breaker e;
        e.trips <- 0;
        stale)
  in
  Floor.shutdown stale

let inject_engine_faults (e : entry) n =
  if n < 0 then invalid_arg "Registry.inject_engine_faults: n must be >= 0";
  with_lock e.lock (fun () -> e.inject_faults <- n)

let reload ?(force = false) ?path t ~name =
  match find t name with
  | None ->
    Obs.Counter.incr m_reload_failures;
    Error (Printf.sprintf "unknown flow %S" name)
  | Some entry -> (
    let source = match path with Some _ -> path | None -> entry.source in
    match source with
    | None ->
      Obs.Counter.incr m_reload_failures;
      Error (Printf.sprintf "flow %S has no source path to reload from" name)
    | Some src -> (
      (* parse + fingerprint the candidate entirely before touching the
         live entry: a bad file must leave serving untouched *)
      match Flow_io.load ~path:src with
      | Error e ->
        Obs.Counter.incr m_reload_failures;
        Error (Printf.sprintf "reload of flow %S from %s failed: %s" name src e)
      | Ok candidate -> (
        match Flow_io.fingerprint candidate with
        | Error e ->
          Obs.Counter.incr m_reload_failures;
          Error (Printf.sprintf "reload of flow %S: %s" name e)
        | Ok fingerprint ->
          if fingerprint = entry.fingerprint && not force then begin
            (* same canonical bytes: re-saving the current flow is a
               no-op, not an engine churn *)
            entry.source <- Some src;
            Ok (`Unchanged (status entry))
          end
          else begin
            let replacement = Floor.create ~config:t.floor_config candidate in
            let old_engine =
              (* the entry lock is held by any in-flight batch, so
                 locking it here IS the drain: the swap waits for the
                 running batch, and the next batch sees the new flow *)
              with_lock entry.lock (fun () ->
                  let old = entry.engine in
                  entry.flow <- candidate;
                  entry.engine <- replacement;
                  entry.fingerprint <- fingerprint;
                  entry.version <- entry.version + 1;
                  entry.source <- Some src;
                  (* a fresh engine starts with a clean slate: failures
                     of the replaced engine say nothing about it *)
                  close_breaker entry;
                  entry.trips <- 0;
                  old)
            in
            Floor.shutdown old_engine;
            Obs.Counter.incr m_reloads;
            Ok (`Reloaded (status entry))
          end)))

let process ?(escalate = true) ?retry ?batch_deadline_s (entry : entry) rows =
  let stale = ref None in
  let result =
    with_lock entry.lock (fun () ->
        (* cooldown elapsed: auto-recycle the engine (fresh pool, clean
           degraded flag) and probe with this very batch *)
        (match entry.breaker with
         | Open when Clock.now () >= entry.open_until ->
           stale := Some (swap_engine entry);
           entry.breaker <- Half_open
         | _ -> ());
        match entry.breaker with
        | Open ->
          (* tripped: shed without touching the engine *)
          Obs.Counter.add m_breaker_shed_rows (Array.length rows);
          Ok (Array.map (fun _ -> shed_outcome) rows)
        | Closed | Half_open -> (
          let flow = entry.flow in
          let width = Array.length flow.Compaction.specs in
          match
            Array.find_opt (fun row -> Array.length row <> width) rows
          with
          | Some bad ->
            Error
              (Printf.sprintf
                 "row width %d does not match flow %S (%d specs, version %d)"
                 (Array.length bad) entry.name width entry.version)
          | None -> (
            let retest =
              if escalate then Some (Floor.full_test flow) else None
            in
            let inject = entry.inject_faults > 0 in
            if inject then entry.inject_faults <- entry.inject_faults - 1;
            match
              if inject then
                failwith "injected engine fault (chaos failpoint)"
              else
                Floor.process ?retest ?retry ?batch_deadline_s entry.engine
                  rows
            with
            | outcomes ->
              (* a successful probe (or any healthy batch) closes *)
              close_breaker entry;
              Ok outcomes
            | exception Invalid_argument e ->
              (* caller misuse (bad rows, config): not an engine crash *)
              Error e
            | exception _ ->
              (* the engine itself raised: count it, trip on repeat (or
                 instantly when the half-open probe fails), and still
                 answer every accepted device *)
              entry.failures <- entry.failures + 1;
              if
                entry.breaker = Half_open
                || entry.failures >= entry.breaker_config.failure_threshold
              then trip entry;
              Obs.Counter.add m_breaker_shed_rows (Array.length rows);
              Ok (Array.map (fun _ -> shed_outcome) rows))))
  in
  (* joining the crashed engine's pool happens off the entry lock, like
     reload's swap, so serving never blocks on the teardown *)
  (match !stale with Some engine -> Floor.shutdown engine | None -> ());
  result

let shutdown t =
  let entries =
    with_lock t.registry_lock (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
        end)
  in
  List.iter
    (fun e -> with_lock e.lock (fun () -> Floor.shutdown e.engine))
    entries
