(** The server's versioned flow registry: many named trained flows
    (op-amp, MEMS-per-temperature, ...), each behind its own
    {!Stc_floor.Floor} engine — and therefore its own supervised
    {!Stc_process.Pool} — so one flow's batches never queue behind
    another's.

    {b Hot reload atomicity.} [reload] parses the {e whole} new
    [stc-flow-1] file and computes its {!Stc_floor.Flow_io.fingerprint}
    before anything observable changes; a parse error leaves the
    current flow serving untouched. When the fingerprint equals the
    live one the reload is a no-op ([`Unchanged] — re-saving the same
    flow never churns engines) unless [force]d. A genuine swap builds
    the replacement engine first, then takes the entry's process lock —
    which an in-flight batch holds — so the old flow {e drains}: the
    swap waits for the running batch, every batch flushed before the
    swap is answered entirely by the old flow, every one after it
    entirely by the new flow, and no batch ever straddles the two. The
    old engine's pool is joined after the swap, off the lock.

    {b Circuit breaker.} Every entry carries a per-flow breaker over
    its engine. An engine exception during [process] counts as one
    failure; [failure_threshold] {e consecutive} failures trip the
    breaker to [Open]. While open, batches are not run at all: every
    row is answered [RETEST]/[GUARD] — the same shedding convention as
    {!Stc_floor.Floor}'s degraded mode, so no accepted device is ever
    dropped — and counted in [stc_net_breaker_shed_rows_total]. When
    the cooldown (exponential: [cooldown_s * backoff^(trips-1)], capped
    at [max_cooldown_s]) elapses, the next batch {e auto-recycles} the
    engine (fresh {!Stc_floor.Floor.create}, stale pool joined off the
    lock) and runs as a [Half_open] probe: success closes the breaker,
    another exception re-trips it instantly. Failed batches still get a
    full set of replies; [Invalid_argument] (caller misuse) is reported
    as [Error] and never counts as an engine failure.

    Thread-safety: every operation may be called from any connection
    thread. Entries are never removed (a name is a stable route), so an
    [entry] handle stays valid for the registry's lifetime. *)

type t

type entry
(** One named flow slot; processing always uses the slot's {e current}
    flow and engine. *)

type breaker_state = Closed | Open | Half_open

val breaker_state_to_string : breaker_state -> string
(** ["closed" | "open" | "half-open"] — the wire/metrics spelling. *)

type breaker_config = {
  failure_threshold : int;  (** consecutive failures before tripping *)
  cooldown_s : float;       (** first cooldown *)
  cooldown_backoff : float; (** cooldown multiplier per lifetime trip *)
  max_cooldown_s : float;   (** cooldown ceiling *)
}

val default_breaker : breaker_config
(** 3 failures, 0.25 s cooldown doubling up to 30 s. *)

type status = {
  name : string;
  version : int;        (** 1 at [add]/[load], +1 per genuine reload *)
  fingerprint : string; (** of the current flow's canonical bytes *)
  source : string option;  (** the path reloads re-read *)
  specs : int;
  kept : int;
  degraded : bool;
  breaker : breaker_state;
  breaker_failures : int;  (** consecutive failures so far (resets on success) *)
  breaker_trips : int;     (** lifetime trips (resets on reload/recycle) *)
  stats : Stc_floor.Floor.stats;
}

val create :
  ?floor_config:Stc_floor.Floor.config ->
  ?breaker:breaker_config ->
  unit ->
  t
(** [floor_config] (default {!Stc_floor.Floor.default_config}) is used
    for every engine the registry builds; [breaker] (default
    {!default_breaker}) for every entry's circuit breaker. Raises
    [Invalid_argument] on a non-positive threshold/cooldown or a
    backoff below 1. *)

val add : t -> name:string -> ?source:string -> Stc.Compaction.flow ->
  (entry, string) result
(** Registers a flow under [name] and spins up its engine. [Error] on a
    duplicate or invalid name, or a flow that cannot be fingerprinted
    (opaque band). *)

val load : t -> name:string -> path:string -> (entry, string) result
(** {!Stc_floor.Flow_io.load} + {!add} with [source = path]. *)

val find : t -> string -> entry option

val names : t -> string list
(** Sorted. *)

val list : t -> status list
(** One {!status} per entry, sorted by name. *)

val status : entry -> status

val name : entry -> string
val flow : entry -> Stc.Compaction.flow
(** The current flow (a reload may swap it between two calls). *)

val breaker : entry -> breaker_state
(** The breaker state as last written; an auto-recycle happens only
    inside [process], so [Open] may read [Open] even after the cooldown
    elapsed. *)

val recycle : entry -> unit
(** Manual engine recycle: swaps in a fresh engine built from the
    current flow (waiting for any in-flight batch), closes the breaker
    and resets its trip history, then joins the old engine's pool off
    the lock. Counted in [stc_net_breaker_recycles_total]. *)

val inject_engine_faults : entry -> int -> unit
(** Chaos failpoint: the next [n] [process] calls raise inside the
    engine attempt instead of binning, exactly as a crashing engine
    would — the batches are shed and the breaker sees real failures.
    [n = 0] clears the failpoint. Raises [Invalid_argument] on a
    negative [n]. Test harness API; never set in production paths. *)

val reload : ?force:bool -> ?path:string -> t -> name:string ->
  ([ `Reloaded of status | `Unchanged of status ], string) result
(** Re-reads the entry's flow file ([path] overrides, and on success
    replaces, the stored source) and swaps as described above. [force]
    (default false) swaps even when the fingerprint is unchanged —
    useful to prove the drain path or recycle an engine in place. A
    genuine swap also closes the breaker and resets its trip history:
    the old engine's failures say nothing about the fresh one.
    [Error] when the file cannot be read or parsed, when the entry has
    no source path, or on an unknown name; the serving state is then
    exactly as before. Counted in [stc_net_reloads_total] /
    [stc_net_reload_failures_total]. *)

val process :
  ?escalate:bool ->
  ?retry:Stc_floor.Retry.policy ->
  ?batch_deadline_s:float ->
  entry ->
  float array array ->
  (Stc_floor.Floor.outcome array, string) result
(** Bins one batch under the entry's process lock (batches from
    concurrent connections serialise per flow; different flows run in
    parallel). [escalate] (default true) runs {!Stc_floor.Floor.full_test}
    on guard-band rows — wire rows carry the full spec width — with
    [retry] / [batch_deadline_s] passed through to
    {!Stc_floor.Floor.process}. Rows whose width does not match the
    current flow produce [Error] (the whole batch is refused before any
    row is binned, mirroring [Floor.process]'s all-or-nothing width
    check). An engine exception feeds the circuit breaker (see above)
    and the batch is answered with [RETEST]/[GUARD] shed outcomes —
    still [Ok], still one reply per row. *)

val shutdown : t -> unit
(** Shuts down every engine. Idempotent; [process] afterwards returns
    [Error]. *)
