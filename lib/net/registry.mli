(** The server's versioned flow registry: many named trained flows
    (op-amp, MEMS-per-temperature, ...), each behind its own
    {!Stc_floor.Floor} engine — and therefore its own supervised
    {!Stc_process.Pool} — so one flow's batches never queue behind
    another's.

    {b Hot reload atomicity.} [reload] parses the {e whole} new
    [stc-flow-1] file and computes its {!Stc_floor.Flow_io.fingerprint}
    before anything observable changes; a parse error leaves the
    current flow serving untouched. When the fingerprint equals the
    live one the reload is a no-op ([`Unchanged] — re-saving the same
    flow never churns engines) unless [force]d. A genuine swap builds
    the replacement engine first, then takes the entry's process lock —
    which an in-flight batch holds — so the old flow {e drains}: the
    swap waits for the running batch, every batch flushed before the
    swap is answered entirely by the old flow, every one after it
    entirely by the new flow, and no batch ever straddles the two. The
    old engine's pool is joined after the swap, off the lock.

    Thread-safety: every operation may be called from any connection
    thread. Entries are never removed (a name is a stable route), so an
    [entry] handle stays valid for the registry's lifetime. *)

type t

type entry
(** One named flow slot; processing always uses the slot's {e current}
    flow and engine. *)

type status = {
  name : string;
  version : int;        (** 1 at [add]/[load], +1 per genuine reload *)
  fingerprint : string; (** of the current flow's canonical bytes *)
  source : string option;  (** the path reloads re-read *)
  specs : int;
  kept : int;
  degraded : bool;
  stats : Stc_floor.Floor.stats;
}

val create : ?floor_config:Stc_floor.Floor.config -> unit -> t
(** [floor_config] (default {!Stc_floor.Floor.default_config}) is used
    for every engine the registry builds. *)

val add : t -> name:string -> ?source:string -> Stc.Compaction.flow ->
  (entry, string) result
(** Registers a flow under [name] and spins up its engine. [Error] on a
    duplicate or invalid name, or a flow that cannot be fingerprinted
    (opaque band). *)

val load : t -> name:string -> path:string -> (entry, string) result
(** {!Stc_floor.Flow_io.load} + {!add} with [source = path]. *)

val find : t -> string -> entry option

val names : t -> string list
(** Sorted. *)

val list : t -> status list
(** One {!status} per entry, sorted by name. *)

val status : entry -> status

val name : entry -> string
val flow : entry -> Stc.Compaction.flow
(** The current flow (a reload may swap it between two calls). *)

val reload : ?force:bool -> ?path:string -> t -> name:string ->
  ([ `Reloaded of status | `Unchanged of status ], string) result
(** Re-reads the entry's flow file ([path] overrides, and on success
    replaces, the stored source) and swaps as described above. [force]
    (default false) swaps even when the fingerprint is unchanged —
    useful to prove the drain path or recycle an engine in place.
    [Error] when the file cannot be read or parsed, when the entry has
    no source path, or on an unknown name; the serving state is then
    exactly as before. Counted in [stc_net_reloads_total] /
    [stc_net_reload_failures_total]. *)

val process :
  ?escalate:bool ->
  ?retry:Stc_floor.Retry.policy ->
  ?batch_deadline_s:float ->
  entry ->
  float array array ->
  (Stc_floor.Floor.outcome array, string) result
(** Bins one batch under the entry's process lock (batches from
    concurrent connections serialise per flow; different flows run in
    parallel). [escalate] (default true) runs {!Stc_floor.Floor.full_test}
    on guard-band rows — wire rows carry the full spec width — with
    [retry] / [batch_deadline_s] passed through to
    {!Stc_floor.Floor.process}. Rows whose width does not match the
    current flow produce [Error] (the whole batch is refused before any
    row is binned, mirroring [Floor.process]'s all-or-nothing width
    check). *)

val shutdown : t -> unit
(** Shuts down every engine. Idempotent; [process] afterwards returns
    [Error]. *)
