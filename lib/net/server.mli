(** The persistent multi-client flow server: a long-lived TCP listener
    speaking the {!Protocol} line protocol, one blocking handler thread
    per connection, batches sharded across the {!Registry}'s per-flow
    engines.

    {b Batching.} Pipelined [BIN] rows accumulate per connection and
    flush as one {!Stc_floor.Floor} batch when (a) [flush_rows] rows
    are pending, (b) the oldest pending row is [flush_deadline_s] old
    (the handler waits in [select] with exactly that much timeout, so a
    trickling client still gets answers), or (c) any non-[BIN] request
    arrives. Replies preserve request order.

    {b Backpressure.} The pending queue is bounded by [max_pending]:
    reaching the bound forces a flush before the next read (counted in
    [stc_net_backpressure_stalls_total]), so a client that pipelines
    faster than the engine bins is throttled by TCP itself — the server
    simply stops reading — and per-connection memory stays bounded.

    {b Resilience.} Guard-band escalation runs under the server's
    {!Stc_floor.Retry} policy and batch deadline, with
    {!Stc_floor.Floor}'s sticky degraded mode per flow engine: a
    failing full-test path sheds guard devices as [RETEST] bins — every
    row always gets a reply line; no device is ever dropped. Torn
    frames, oversized lines and mid-batch disconnects kill only their
    own connection.

    A [SHUTDOWN] request latches {!shutdown_requested}; the owner (CLI
    main loop, test harness) observes it via {!wait} and calls
    {!stop}, which closes the listener, shuts each live connection
    down, and joins every thread. *)

type config = {
  host : string;            (** bind address, default ["127.0.0.1"] *)
  port : int;               (** 0 picks an ephemeral port (see {!port}) *)
  backlog : int;            (** listen queue, default 64 *)
  max_connections : int;    (** concurrent clients, default 64 *)
  flush_rows : int;         (** batch flush threshold, default 256 *)
  flush_deadline_s : float; (** max age of a pending row, default 0.05 *)
  max_pending : int;        (** bounded pending-row queue, default 4096 *)
  escalate : bool;          (** full-test guard rows (default true) *)
  retry : Stc_floor.Retry.policy option;  (** escalation retry policy *)
  batch_deadline_s : float option;  (** per-batch escalation bound *)
}

val default_config : config

type t

val create : ?config:config -> Registry.t -> t
(** The registry is shared, not owned: {!stop} does not shut it down.
    Raises [Invalid_argument] on non-positive [flush_rows],
    [flush_deadline_s], [max_pending] or [max_connections]. *)

val start : t -> unit
(** Binds, listens, and spawns the accept thread; returns immediately.
    Raises [Unix.Unix_error] when the address cannot be bound, and
    [Invalid_argument] if already started. Also sets the process-wide
    SIGPIPE disposition to ignore, so a client that disconnects
    mid-reply surfaces as [EPIPE] (per-connection teardown, counted in
    [stc_net_disconnects_total]) instead of killing the process. *)

val port : t -> int
(** The bound port (resolves [port = 0]); raises [Invalid_argument]
    before {!start}. *)

val running : t -> bool

val shutdown_requested : t -> bool
(** True once a client has sent [SHUTDOWN]. *)

val wait : ?poll_s:float -> ?on_tick:(unit -> unit) -> t -> unit
(** Blocks until {!stop} is called or a [SHUTDOWN] request arrives (in
    which case it calls {!stop} itself). [on_tick] (with [poll_s]
    period, default 0.1 s) runs between polls on the waiting thread —
    the CLI uses it to service signal-driven reloads outside signal
    context. *)

val stop : t -> unit
(** Stops accepting, shuts down every live connection socket, joins the
    accept and connection threads. Idempotent; safe from any thread
    except a connection handler's own. *)

val with_server : ?config:config -> Registry.t -> (t -> 'a) -> 'a
(** [create] + [start], run the callback, always [stop]. *)
