(** The persistent multi-client flow server: a long-lived TCP listener
    speaking the {!Protocol} line protocol, one blocking handler thread
    per connection, batches sharded across the {!Registry}'s per-flow
    engines.

    {b Batching.} Pipelined [BIN] rows accumulate per connection and
    flush as one {!Stc_floor.Floor} batch when (a) [flush_rows] rows
    are pending, (b) the oldest pending row is [flush_deadline_s] old
    (the handler waits in [select] with exactly that much timeout, so a
    trickling client still gets answers), or (c) any non-[BIN] request
    arrives. Replies preserve request order.

    {b Backpressure.} The pending queue is bounded by [max_pending]:
    reaching the bound forces a flush before the next read (counted in
    [stc_net_backpressure_stalls_total]), so a client that pipelines
    faster than the engine bins is throttled by TCP itself — the server
    simply stops reading — and per-connection memory stays bounded.

    {b Admission control and slow clients.} Connections beyond
    [max_connections] are shed with one [ERR busy] line and a clean
    close (counted in [stc_net_shed_total]); transient accept failures
    (EMFILE, ENFILE, ENOBUFS, ...) never kill the listener — they are
    counted in [stc_net_accept_errors_total] and retried under jittered
    backoff. A connection that sends nothing for [idle_timeout_s] is
    reaped ([ERR idle-timeout], [stc_net_idle_reaped_total]), so
    slow-loris openers cannot pin handler threads; a client that stops
    {e reading} is torn down when a reply write makes no progress for
    [write_timeout_s] ([stc_net_write_timeouts_total]).

    {b Graceful drain.} {!drain} (or a client [SHUTDOWN], via {!wait})
    stops admitting connections and new work, but keeps answering:
    pending rows flush, an in-flight [BATCH] keeps reading and binning
    until the drain deadline, and only rows the client never delivered
    are answered [ERR draining] — no accepted device is ever dropped.
    Once every connection has ended, or [drain_deadline_s] elapses,
    {!wait} calls {!stop} and returns.

    {b Resilience.} Guard-band escalation runs under the server's
    {!Stc_floor.Retry} policy and batch deadline, with
    {!Stc_floor.Floor}'s sticky degraded mode per flow engine, and each
    flow sits behind the {!Registry}'s circuit breaker: a crashing
    engine is shed around ([RETEST] bins) and auto-recycled after a
    cooldown — every row always gets a reply line. Torn frames,
    oversized lines and mid-batch disconnects kill only their own
    connection.

    All deadlines (flush, idle, write, drain) are computed on
    {!Stc_obs.Clock.now}, so a wall-clock step (NTP, DST) never fires
    or starves them. *)

type config = {
  host : string;            (** bind address, default ["127.0.0.1"] *)
  port : int;               (** 0 picks an ephemeral port (see {!port}) *)
  backlog : int;            (** listen queue, default 64 *)
  max_connections : int;    (** concurrent clients, default 64 *)
  flush_rows : int;         (** batch flush threshold, default 256 *)
  flush_deadline_s : float; (** max age of a pending row, default 0.05 *)
  max_pending : int;        (** bounded pending-row queue, default 4096 *)
  idle_timeout_s : float;
      (** reap a connection with no request for this long (default
          300 s; [<= 0] disables) *)
  write_timeout_s : float;
      (** tear down a client whose replies make no progress for this
          long (default 30 s; [<= 0] disables) *)
  drain_deadline_s : float; (** drain budget, default 5 s (see {!drain}) *)
  sndbuf_bytes : int option;
      (** per-connection SO_SNDBUF (default [None]: OS default); tests
          shrink it to exercise the write deadline without megabytes of
          backlog *)
  escalate : bool;          (** full-test guard rows (default true) *)
  retry : Stc_floor.Retry.policy option;  (** escalation retry policy *)
  batch_deadline_s : float option;  (** per-batch escalation bound *)
}

val default_config : config

type t

val create : ?config:config -> Registry.t -> t
(** The registry is shared, not owned: {!stop} does not shut it down.
    Raises [Invalid_argument] on non-positive [flush_rows],
    [flush_deadline_s], [max_pending], [max_connections] or
    [sndbuf_bytes], or a negative [drain_deadline_s]. *)

val start : t -> unit
(** Binds, listens, and spawns the accept thread; returns immediately.
    Raises [Unix.Unix_error] when the address cannot be bound, and
    [Invalid_argument] if already started. Also sets the process-wide
    SIGPIPE disposition to ignore, so a client that disconnects
    mid-reply surfaces as [EPIPE] (per-connection teardown, counted in
    [stc_net_disconnects_total]) instead of killing the process. *)

val port : t -> int
(** The bound port (resolves [port = 0]); raises [Invalid_argument]
    before {!start}. *)

val running : t -> bool

val active_connections : t -> int
(** Currently-admitted connections. *)

val shutdown_requested : t -> bool
(** True once a client has sent [SHUTDOWN]. *)

val drain : ?deadline_s:float -> t -> unit
(** Enters drain state (idempotent): new connections and new work get
    [ERR draining], in-flight work keeps flushing, and {!wait} stops
    the server when the last connection ends or after [deadline_s]
    (default [config.drain_deadline_s]), whichever is first. Safe from
    any thread and from signal context (two atomic stores). *)

val draining : t -> bool

val wait : ?poll_s:float -> ?on_tick:(unit -> unit) -> t -> unit
(** Blocks until {!stop} is called, or a [SHUTDOWN] request / {!drain}
    completes (in which case it calls {!stop} itself once the drain
    deadline passes or every connection has ended). [on_tick] (with
    [poll_s] period, default 0.1 s) runs between polls on the waiting
    thread — the CLI uses it to service signal-driven reloads and
    drains outside signal context. *)

val stop : t -> unit
(** Stops accepting, shuts down every live connection socket, joins the
    accept and connection threads. Idempotent; safe from any thread
    except a connection handler's own. *)

val with_server : ?config:config -> Registry.t -> (t -> 'a) -> 'a
(** [create] + [start], run the callback, always [stop]. *)
