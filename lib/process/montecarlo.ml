type device = {
  device_name : string;
  params : Variation.param array;
  spec_count : int;
  simulate : float array -> float array option;
}

type dataset = {
  inputs : float array array;
  specs : float array array;
  weights : float array;
  discarded : int;
}

exception Too_many_failures of string

let uniform_weights n = Array.make n 1.0

let check_spec_count device values =
  if Array.length values <> device.spec_count then
    invalid_arg "Montecarlo: simulate returned wrong spec count"

let max_failures_for ratio n = Stdlib.max 10 (int_of_float (ratio *. float_of_int n))

let too_many_failures device ~failed ~n =
  raise
    (Too_many_failures
       (Printf.sprintf "%s: %d failed draws for %d requested instances"
          device.device_name failed n))

let generate_with ?(max_failure_ratio = 0.5) rng device ~draw ~n =
  if n <= 0 then invalid_arg "Montecarlo.generate: n must be positive";
  let max_failures = max_failures_for max_failure_ratio n in
  let inputs = ref [] and specs = ref [] in
  let produced = ref 0 and failed = ref 0 in
  while !produced < n do
    let params = draw rng in
    match device.simulate params with
    | Some values ->
      check_spec_count device values;
      inputs := params :: !inputs;
      specs := values :: !specs;
      incr produced
    | None ->
      incr failed;
      (* abort at the threshold: both the serial and the parallel
         generator stop launching simulations the moment the cap is
         crossed (pinned by test_process "failure cap is prompt") *)
      if !failed > max_failures then too_many_failures device ~failed:!failed ~n
  done;
  {
    inputs = Array.of_list (List.rev !inputs);
    specs = Array.of_list (List.rev !specs);
    weights = uniform_weights n;
    discarded = !failed;
  }

let generate ?max_failure_ratio rng device ~n =
  generate_with ?max_failure_ratio rng device
    ~draw:(fun rng -> Variation.sample_all rng device.params)
    ~n

(* Per-instance deterministic generator: mixes the experiment seed with
   the instance index and attempt number, so parallel scheduling cannot
   change the data. *)
let instance_rng ~seed ~index ~attempt =
  Stc_numerics.Rng.create
    (seed + (index * 0x9E3779B1) + (attempt * 0x85EBCA77))

let resolve_domains = function
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Montecarlo: domains must be >= 1"
  | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let generate_parallel ?(max_failure_ratio = 0.5) ?domains ~seed device ~n =
  if n <= 0 then invalid_arg "Montecarlo.generate_parallel: n must be positive";
  let domains = resolve_domains domains in
  let max_failures = max_failures_for max_failure_ratio n in
  let inputs = Array.make n [||] in
  let specs = Array.make n [||] in
  let failures = Atomic.make 0 in
  let simulate_instance i =
    (* retry draws within this instance's private sub-streams; like the
       serial generator, no further simulation is launched once the
       failure cap has been crossed *)
    let rec attempt_loop attempt =
      if Atomic.get failures > max_failures then ()
      else begin
        let rng = instance_rng ~seed ~index:i ~attempt in
        let params = Variation.sample_all rng device.params in
        match device.simulate params with
        | Some values ->
          check_spec_count device values;
          inputs.(i) <- params;
          specs.(i) <- values
        | None ->
          Atomic.incr failures;
          attempt_loop (attempt + 1)
      end
    in
    attempt_loop 0
  in
  Pool.with_pool ~domains (fun pool -> Pool.run pool ~n simulate_instance);
  if Atomic.get failures > max_failures then
    too_many_failures device ~failed:(Atomic.get failures) ~n;
  { inputs; specs; weights = uniform_weights n; discarded = Atomic.get failures }

(* [discarded] is population-level simulation-yield accounting; a slice
   carries its proportional share (rounded down) so that the two halves
   of a [split] sum exactly to the original count. *)
let discarded_share d n =
  let total = Array.length d.inputs in
  if total = 0 then 0 else d.discarded * n / total

let take d n =
  if n < 0 || n > Array.length d.inputs then
    invalid_arg "Montecarlo.take: out of range";
  {
    inputs = Array.sub d.inputs 0 n;
    specs = Array.sub d.specs 0 n;
    weights = Array.sub d.weights 0 n;
    discarded = discarded_share d n;
  }

let split d ~at =
  let total = Array.length d.inputs in
  if at < 0 || at > total then invalid_arg "Montecarlo.split: out of range";
  let left = take d at in
  ( left,
    {
      inputs = Array.sub d.inputs at (total - at);
      specs = Array.sub d.specs at (total - at);
      weights = Array.sub d.weights at (total - at);
      discarded = d.discarded - left.discarded;
    } )

let spec_column d j = Array.map (fun row -> row.(j)) d.specs
