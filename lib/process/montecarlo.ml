type device = {
  device_name : string;
  params : Variation.param array;
  spec_count : int;
  simulate : float array -> float array option;
}

type dataset = {
  inputs : float array array;
  specs : float array array;
  discarded : int;
}

exception Too_many_failures of string

let check_spec_count device values =
  if Array.length values <> device.spec_count then
    invalid_arg "Montecarlo: simulate returned wrong spec count"

let generate_with ?(max_failure_ratio = 0.5) rng device ~draw ~n =
  if n <= 0 then invalid_arg "Montecarlo.generate: n must be positive";
  let max_failures =
    Stdlib.max 10 (int_of_float (max_failure_ratio *. float_of_int n))
  in
  let inputs = ref [] and specs = ref [] in
  let produced = ref 0 and failed = ref 0 in
  while !produced < n do
    let params = draw rng in
    match device.simulate params with
    | Some values ->
      check_spec_count device values;
      inputs := params :: !inputs;
      specs := values :: !specs;
      incr produced
    | None ->
      incr failed;
      if !failed > max_failures then
        raise
          (Too_many_failures
             (Printf.sprintf "%s: %d failed draws for %d requested instances"
                device.device_name !failed n))
  done;
  {
    inputs = Array.of_list (List.rev !inputs);
    specs = Array.of_list (List.rev !specs);
    discarded = !failed;
  }

let generate ?max_failure_ratio rng device ~n =
  generate_with ?max_failure_ratio rng device
    ~draw:(fun rng -> Variation.sample_all rng device.params)
    ~n

(* Per-instance deterministic generator: mixes the experiment seed with
   the instance index and attempt number, so parallel scheduling cannot
   change the data. *)
let instance_rng ~seed ~index ~attempt =
  Stc_numerics.Rng.create
    (seed + (index * 0x9E3779B1) + (attempt * 0x85EBCA77))

let generate_parallel ?(max_failure_ratio = 0.5) ?domains ~seed device ~n =
  if n <= 0 then invalid_arg "Montecarlo.generate_parallel: n must be positive";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Montecarlo.generate_parallel: domains must be >= 1"
    | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1)
  in
  let max_failures =
    Stdlib.max 10 (int_of_float (max_failure_ratio *. float_of_int n))
  in
  let inputs = Array.make n [||] in
  let specs = Array.make n [||] in
  let failures = Atomic.make 0 in
  let simulate_instance i =
    (* retry draws within this instance's private sub-streams *)
    let rec attempt_loop attempt =
      if Atomic.get failures > max_failures then ()
      else begin
        let rng = instance_rng ~seed ~index:i ~attempt in
        let params = Variation.sample_all rng device.params in
        match device.simulate params with
        | Some values ->
          check_spec_count device values;
          inputs.(i) <- params;
          specs.(i) <- values
        | None ->
          Atomic.incr failures;
          attempt_loop (attempt + 1)
      end
    in
    attempt_loop 0
  in
  Pool.with_pool ~domains (fun pool -> Pool.run pool ~n simulate_instance);
  if Atomic.get failures > max_failures then
    raise
      (Too_many_failures
         (Printf.sprintf "%s: %d failed draws for %d requested instances"
            device.device_name (Atomic.get failures) n));
  { inputs; specs; discarded = Atomic.get failures }

let take d n =
  if n < 0 || n > Array.length d.inputs then
    invalid_arg "Montecarlo.take: out of range";
  {
    inputs = Array.sub d.inputs 0 n;
    specs = Array.sub d.specs 0 n;
    discarded = 0;
  }

let split d ~at =
  let total = Array.length d.inputs in
  if at < 0 || at > total then invalid_arg "Montecarlo.split: out of range";
  ( take d at,
    {
      inputs = Array.sub d.inputs at (total - at);
      specs = Array.sub d.specs at (total - at);
      discarded = 0;
    } )

let spec_column d j = Array.map (fun row -> row.(j)) d.specs
