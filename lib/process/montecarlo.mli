(** Monte-Carlo training/test instance generation — the Figure 1 flow
    of the paper: draw a parameter vector from the process model,
    simulate the device, record the measured specification values. *)

type device = {
  device_name : string;
  params : Variation.param array;
  spec_count : int;
  simulate : float array -> float array option;
      (** [simulate params] returns the measured spec values, or [None]
          when the instance fails to simulate (e.g. a broken bias
          point); such draws are discarded and redrawn, like a die that
          shorts out on the tester. *)
}

type dataset = {
  inputs : float array array;  (** parameter vectors, one per instance *)
  specs : float array array;   (** measured spec values, one per instance *)
  weights : float array;
      (** importance weights, one per instance; all 1.0 for uniform
          sampling, set by {!Enrich} for boundary-biased populations so
          that weighted statistics stay unbiased *)
  discarded : int;             (** draws rejected because simulation failed *)
}

exception Too_many_failures of string

val generate : ?max_failure_ratio:float -> Stc_numerics.Rng.t -> device ->
  n:int -> dataset
(** Draws until [n] instances simulate successfully. Raises
    [Too_many_failures] as soon as failures exceed
    [max_failure_ratio]·n (default 0.5, floor of 10) — a guard against
    a device that never simulates. Serial and parallel generation share
    the same abort-at-threshold semantics: no further simulation is
    launched once the cap is crossed. *)

val generate_with :
  ?max_failure_ratio:float ->
  Stc_numerics.Rng.t ->
  device ->
  draw:(Stc_numerics.Rng.t -> float array) ->
  n:int ->
  dataset
(** As {!generate} but with a custom parameter sampler — used by the
    correlated process model and defect injection of {!Process_model}. *)

val instance_rng : seed:int -> index:int -> attempt:int -> Stc_numerics.Rng.t
(** The splittable per-instance stream used by {!generate_parallel}:
    a private generator for draw [attempt] of instance [index] under
    [seed]. Exposed so {!Enrich} can bias the sampler while keeping the
    stream deterministic at any domain count. *)

val generate_parallel :
  ?max_failure_ratio:float ->
  ?domains:int ->
  seed:int ->
  device ->
  n:int ->
  dataset
(** Multicore {!generate}: instance [i] is drawn from
    [instance_rng ~seed ~index:i], so the result is identical regardless
    of [domains] (default: [Domain.recommended_domain_count]) — and also
    identical to [generate_parallel ~domains:1]. Note the stream
    differs from the sequential {!generate}. Each failed draw for an
    instance advances that instance's private attempt counter. *)

val split : dataset -> at:int -> dataset * dataset
(** Splits into the first [at] instances and the rest. [discarded] is
    apportioned proportionally: the left half carries
    [discarded·at/total] (rounded down) and the right half the
    remainder, so the two sides always sum to the original count. *)

val take : dataset -> int -> dataset
(** First [n] instances, carrying the proportional share of
    [discarded] (see {!split}). *)

val spec_column : dataset -> int -> float array
