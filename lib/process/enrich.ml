(* Boundary-biased sequential enrichment (ISSUE 8 tentpole).

   A cheap uniform pilot population is used to fit one linear surrogate
   per specification; the remaining simulation budget is then drawn by
   rejection sampling with acceptance probability peaked where the
   surrogate predicts the device sits near its acceptance boundary.
   Every kept instance records an importance weight w = Z / a(x) so the
   self-normalised weighted statistics over the full population remain
   unbiased estimators of the uniform-sampling statistics.

   Determinism: enriched slot [i] consumes only the private streams
   [Montecarlo.instance_rng ~seed ~index:i ~attempt], so the dataset is
   bit-identical at any domain count, exactly like
   [Montecarlo.generate_parallel]. *)

module Obs = Stc_obs.Registry

let m_pilot = Obs.counter "stc_enrich_pilot_total"
let m_enriched = Obs.counter "stc_enrich_enriched_total"
let m_proposals = Obs.counter "stc_enrich_proposals_total"
let g_boundary = Obs.gauge "stc_enrich_boundary_hit_rate"

type config = {
  boundary_width : float;
  floor_probability : float;
  max_failure_ratio : float;
}

let default_config =
  { boundary_width = 1.0; floor_probability = 0.05; max_failure_ratio = 0.5 }

type stats = {
  pilot : int;
  enriched : int;
  proposals : int;
  sim_failures : int;
  acceptance_rate : float;
  boundary_hit_rate : float;
  surrogate_ok : bool;
}

(* --- surrogate ----------------------------------------------------- *)

type surrogate = {
  betas : float array array;  (* per spec: param coefficients ++ intercept *)
  sigmas : float array;       (* per spec: pilot spread (quantile-robust) *)
}

let finite x = Float.is_finite x

let all_finite xs = Array.for_all finite xs

let spec_sigmas (d : Montecarlo.dataset) =
  let spec_count =
    if Array.length d.specs = 0 then 0 else Array.length d.specs.(0)
  in
  Array.init spec_count (fun j ->
      Stc_numerics.Stats.stddev (Montecarlo.spec_column d j))

(* Least-squares fit of spec_j ~ [params; 1]·beta on the pilot; [None]
   when the pilot is too small, numerically singular, or produces
   non-finite coefficients — callers degrade to uniform sampling. *)
let fit_surrogate (pilot : Montecarlo.dataset) =
  let n = Array.length pilot.inputs in
  if n = 0 then None
  else begin
    let p = Array.length pilot.inputs.(0) in
    let spec_count = Array.length pilot.specs.(0) in
    if n < p + 2 then None
    else begin
      let a =
        Stc_numerics.Mat.init n (p + 1) (fun i j ->
            if j < p then pilot.inputs.(i).(j) else 1.0)
      in
      let sigmas = spec_sigmas pilot in
      try
        let betas =
          Array.init spec_count (fun j ->
              Stc_numerics.Lu.least_squares a (Montecarlo.spec_column pilot j))
        in
        if
          Array.for_all all_finite betas
          && Array.for_all (fun s -> finite s && s > 0.0) sigmas
        then Some { betas; sigmas }
        else None
      with Stc_numerics.Lu.Singular _ | Invalid_argument _ -> None
    end
  end

let predict_spec beta params =
  let p = Array.length params in
  let acc = ref beta.(p) in
  for k = 0 to p - 1 do
    acc := !acc +. (beta.(k) *. params.(k))
  done;
  !acc

(* Signed normalised margin of one spec vector: the worst (smallest)
   per-spec distance to a limit in pilot-sigma units. Near zero means
   near the acceptance boundary; one-sided specs contribute [infinity]
   on their unbounded side. *)
let margin_of_specs ~limits ~sigmas values =
  let m = ref infinity in
  Array.iteri
    (fun j v ->
      let lo, hi = limits.(j) in
      let s = sigmas.(j) in
      let d_lo = if lo = neg_infinity then infinity else (v -. lo) /. s in
      let d_hi = if hi = infinity then infinity else (hi -. v) /. s in
      let d = Float.min d_lo d_hi in
      if d < !m then m := d)
    values;
  !m

let predicted_margin surrogate ~limits params =
  let predicted = Array.map (fun beta -> predict_spec beta params) surrogate.betas in
  margin_of_specs ~limits ~sigmas:surrogate.sigmas predicted

(* Acceptance probability: a Gaussian bump of width [boundary_width]
   around the predicted boundary, floored so that no region of the
   process space is ever starved (which keeps weights bounded by
   Z / floor_probability). *)
let acceptance config margin =
  let t = margin /. config.boundary_width in
  let bump = exp (-0.5 *. t *. t) in
  config.floor_probability +. ((1.0 -. config.floor_probability) *. bump)

let boundary_fraction ~limits ~sigmas ~width (d : Montecarlo.dataset) =
  let n = Array.length d.specs in
  if n = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iter
      (fun values ->
        let m = margin_of_specs ~limits ~sigmas values in
        if Float.abs m <= width then incr hits)
      d.specs;
    float_of_int !hits /. float_of_int n
  end

(* --- generation ---------------------------------------------------- *)

let resolve_domains = function
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Enrich: domains must be >= 1"
  | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let generate ?(config = default_config) ?domains ~seed ~pilot
    (device : Montecarlo.device) ~limits ~n =
  if pilot <= 0 then invalid_arg "Enrich.generate: pilot must be positive";
  if pilot >= n then invalid_arg "Enrich.generate: pilot must be < n";
  if Array.length limits <> device.spec_count then
    invalid_arg "Enrich.generate: limits length must match spec_count";
  if config.boundary_width <= 0.0 then
    invalid_arg "Enrich.generate: boundary_width must be positive";
  if config.floor_probability <= 0.0 || config.floor_probability > 1.0 then
    invalid_arg "Enrich.generate: floor_probability outside (0,1]";
  let domains = resolve_domains domains in
  (* Phase 1: uniform pilot on instance streams 0 .. pilot-1. *)
  let pilot_data =
    Montecarlo.generate_parallel ~max_failure_ratio:config.max_failure_ratio
      ~domains ~seed device ~n:pilot
  in
  let surrogate = fit_surrogate pilot_data in
  (* Phase 2: boundary-biased rejection sampling on streams
     pilot .. n-1. With no usable surrogate this degrades to uniform
     sampling with unit weights. *)
  let n_enriched = n - pilot in
  let inputs = Array.make n [||] in
  let specs = Array.make n [||] in
  let weights = Array.make n 1.0 in
  Array.blit pilot_data.inputs 0 inputs 0 pilot;
  Array.blit pilot_data.specs 0 specs 0 pilot;
  let max_failures =
    Stdlib.max 10
      (int_of_float (config.max_failure_ratio *. float_of_int n_enriched))
  in
  let failures = Atomic.make 0 in
  let proposals = Atomic.make 0 in
  let accepted = Atomic.make 0 in
  let fill_instance k =
    let index = pilot + k in
    let rec attempt_loop attempt =
      if Atomic.get failures > max_failures then ()
      else begin
        let rng = Montecarlo.instance_rng ~seed ~index ~attempt in
        let params = Variation.sample_all rng device.params in
        match surrogate with
        | None -> begin
          (* uniform fallback: every proposal is accepted *)
          Atomic.incr proposals;
          Atomic.incr accepted;
          match device.simulate params with
          | Some values ->
            inputs.(index) <- params;
            specs.(index) <- values
          | None ->
            Atomic.incr failures;
            attempt_loop (attempt + 1)
        end
        | Some s -> begin
          Atomic.incr proposals;
          let a = acceptance config (predicted_margin s ~limits params) in
          let u = Stc_numerics.Rng.float rng in
          if u >= a then attempt_loop (attempt + 1)
          else begin
            Atomic.incr accepted;
            match device.simulate params with
            | Some values ->
              inputs.(index) <- params;
              specs.(index) <- values;
              weights.(index) <- 1.0 /. a
            | None ->
              Atomic.incr failures;
              attempt_loop (attempt + 1)
          end
        end
      end
    in
    attempt_loop 0
  in
  Pool.with_pool ~domains (fun pool -> Pool.run pool ~n:n_enriched fill_instance);
  if Atomic.get failures > max_failures then
    raise
      (Montecarlo.Too_many_failures
         (Printf.sprintf "%s: %d failed draws for %d enriched instances"
            device.device_name (Atomic.get failures) n_enriched));
  (* Normalise: raw weights are 1/a; the density actually sampled is
     p(x)·a(x)/Z with Z = E_p[a], estimated by accepted/proposals. Both
     counts are per-instance deterministic, so Z — and therefore every
     weight — is identical at any domain count. *)
  let z =
    float_of_int (Atomic.get accepted) /. float_of_int (Atomic.get proposals)
  in
  (match surrogate with
  | Some _ ->
    for i = pilot to n - 1 do
      weights.(i) <- weights.(i) *. z
    done
  | None -> ());
  let dataset : Montecarlo.dataset =
    {
      inputs;
      specs;
      weights;
      discarded = pilot_data.discarded + Atomic.get failures;
    }
  in
  let boundary_hit_rate =
    match surrogate with
    | Some s ->
      boundary_fraction ~limits ~sigmas:s.sigmas ~width:config.boundary_width
        dataset
    | None -> 0.0
  in
  Obs.Counter.add m_pilot pilot;
  Obs.Counter.add m_enriched n_enriched;
  Obs.Counter.add m_proposals (Atomic.get proposals);
  Obs.Gauge.set g_boundary boundary_hit_rate;
  let stats =
    {
      pilot;
      enriched = n_enriched;
      proposals = Atomic.get proposals;
      sim_failures = Atomic.get failures;
      acceptance_rate = z;
      boundary_hit_rate;
      surrogate_ok = surrogate <> None;
    }
  in
  (dataset, stats)
