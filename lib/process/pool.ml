exception Timeout

module Obs = Stc_obs.Registry
module Clock = Stc_obs.Clock

(* Process-wide pool metrics; the per-pool supervision counters behind
   [stats] are separate standalone atomics so one pool's story is not
   polluted by another's. *)
let m_jobs = Obs.counter "stc_pool_jobs_total"
let m_tasks = Obs.counter "stc_pool_tasks_total"
let m_timeouts = Obs.counter "stc_pool_timeouts_total"
let m_respawned = Obs.counter "stc_pool_respawned_total"
let h_queue_wait = Obs.histogram "stc_pool_queue_wait_s"
let h_job = Obs.histogram "stc_pool_job_s"

type job = {
  f : int -> unit;
  n : int;
  next : int Atomic.t;
  gen : int;
  mutable pending : int;  (* workers still executing this job; under mutex *)
  submitted : float;  (* monotonic Clock.now of submission, for the queue-wait metric *)
  unclaimed : bool Atomic.t;  (* true until the first task claim *)
}

type worker = {
  mutable domain : unit Domain.t option;
  mutable busy_gen : int;  (* generation being executed, 0 = idle; under mutex *)
  mutable zombie : bool;   (* abandoned: park as a spare when the task returns *)
  mutable active : bool;   (* false = parked spare, takes no jobs; under mutex *)
  mutable heartbeat : float;  (* last task claim (monotonic); written by owner *)
}

type stats = {
  timeouts : int;
  respawned : int;
}

type t = {
  total : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable abandoned : int;  (* generations <= abandoned were timed out *)
  mutable error : exn option;  (* first exception raised by any live task *)
  mutable stop : bool;
  mutable workers : worker list;  (* live helpers; zombies are removed *)
  mutable spares : worker list;  (* ex-zombie domains parked for reuse *)
  timeouts : Obs.Counter.t;  (* atomic: incremented at deadline, read anywhere *)
  respawned : Obs.Counter.t;
}

(* Work stealing by atomic index claim: any domain grabs the next
   undone task, so load imbalance between tasks self-corrects. Each
   claim stamps the worker's heartbeat, so a supervisor can tell a
   stalled worker (stuck inside one task) from a busy one. *)
let exec t w job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      w.heartbeat <- Clock.now ();
      if
        Atomic.get job.unclaimed
        && Atomic.compare_and_set job.unclaimed true false
      then Obs.Histogram.observe h_queue_wait (w.heartbeat -. job.submitted);
      (try job.f i
       with e ->
         Mutex.lock t.mutex;
         (* a zombie finishing long after its job was abandoned must
            not poison the error slot of whatever runs now *)
         if t.error = None && job.gen > t.abandoned then t.error <- Some e;
         Mutex.unlock t.mutex;
         (* drain the remaining tasks so everyone returns promptly *)
         Atomic.set job.next job.n);
      claim ()
    end
  in
  claim ()

let helper_loop t w initial_seen =
  let seen = ref initial_seen in
  let live = ref true in
  while !live do
    Mutex.lock t.mutex;
    (* [t.job = None] with an advanced generation means the job was
       abandoned at a deadline before this helper woke (a parked helper,
       or a domain still mid-spawn when the timeout fired): keep parking
       until the next submission rather than dereferencing the cleared
       slot. [seen] then skips the abandoned generation entirely.
       Spares ([active = false]) park the same way until a respawn pass
       reactivates them. *)
    while
      (not t.stop) && (t.generation = !seen || t.job = None || not w.active)
    do
      Condition.wait t.start t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      live := false
    end
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      w.busy_gen <- job.gen;
      Mutex.unlock t.mutex;
      exec t w job;
      Mutex.lock t.mutex;
      w.busy_gen <- 0;
      job.pending <- job.pending - 1;
      if job.pending = 0 then Condition.broadcast t.finished;
      (* zombied while stuck inside the abandoned job: a replacement
         took this worker's place, so park as a spare for the next
         respawn pass to reuse. Never terminating helper domains
         mid-run also keeps domain creation and domain termination from
         overlapping, which the OCaml 5.1 runtime tolerates poorly
         under churn (rare but real deadlocks in the domain machinery). *)
      if w.zombie then begin
        w.zombie <- false;
        w.active <- false;
        t.spares <- w :: t.spares
      end;
      Mutex.unlock t.mutex
    end
  done

let spawn_worker t initial_seen =
  let w =
    {
      domain = None;
      busy_gen = 0;
      zombie = false;
      active = true;
      heartbeat = Clock.now ();
    }
  in
  w.domain <- Some (Domain.spawn (fun () -> helper_loop t w initial_seen));
  w

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      total = domains;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      abandoned = 0;
      error = None;
      stop = false;
      workers = [];
      spares = [];
      timeouts = Obs.Counter.make ();
      respawned = Obs.Counter.make ();
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> spawn_worker t 0);
  t

let domains t = t.total

let stats t =
  {
    timeouts = Obs.Counter.get t.timeouts;
    respawned = Obs.Counter.get t.respawned;
  }

let heartbeat_ages t =
  let now = Clock.now () in
  Mutex.lock t.mutex;
  let ages = List.map (fun w -> now -. w.heartbeat) t.workers in
  Mutex.unlock t.mutex;
  Array.of_list ages

let submit_locked t ~pending f n =
  t.error <- None;
  t.generation <- t.generation + 1;
  let job =
    {
      f;
      n;
      next = Atomic.make 0;
      gen = t.generation;
      pending;
      submitted = Clock.now ();
      unclaimed = Atomic.make true;
    }
  in
  t.job <- Some job;
  Condition.broadcast t.start;
  job

let check_runnable t n =
  if n < 0 then invalid_arg "Pool.run: n must be >= 0";
  if t.stop then invalid_arg "Pool.run: pool is shut down"

(* ----------------------- unsupervised mode ------------------------ *)

let run_participating t ~n f =
  let submitter =
    {
      domain = None;
      busy_gen = 0;
      zombie = false;
      active = true;
      heartbeat = Clock.now ();
    }
  in
  Mutex.lock t.mutex;
  if t.job <> None then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.run: a job is already in flight"
  end;
  let job = submit_locked t ~pending:(List.length t.workers) f n in
  Mutex.unlock t.mutex;
  (* the submitting domain works too: domains=1 means no helpers *)
  exec t submitter job;
  Mutex.lock t.mutex;
  while job.pending > 0 do
    Condition.wait t.finished t.mutex
  done;
  t.job <- None;
  let error = t.error in
  t.error <- None;
  Mutex.unlock t.mutex;
  match error with None -> () | Some e -> raise e

(* ------------------------ supervised mode ------------------------- *)

(* Healthy workers finish their current task in well under this; a
   worker still inside the abandoned generation afterwards is stalled. *)
let grace_s = 0.05
let poll_s = 0.0005

let run_supervised t ~n ~deadline_s f =
  if deadline_s <= 0.0 then
    invalid_arg "Pool.run: deadline_s must be positive";
  Mutex.lock t.mutex;
  if t.job <> None then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.run: a job is already in flight"
  end;
  (* the submitter must stay preemptible, so tasks run only on helper
     domains: grow the helper set to [domains] on first supervised use,
     keeping task parallelism at the configured level while the
     supervisor only watches. Spawning happens with the mutex released
     so parked helpers are never blocked on a lock held across the
     runtime's domain-creation machinery. *)
  let rec grow () =
    (* mutex held on entry and exit *)
    let missing = t.total - List.length t.workers in
    if missing > 0 then begin
      let gen = t.generation in
      Mutex.unlock t.mutex;
      let fresh = List.init missing (fun _ -> spawn_worker t gen) in
      Mutex.lock t.mutex;
      t.workers <- fresh @ t.workers;
      grow ()
    end
  in
  grow ();
  let job = submit_locked t ~pending:(List.length t.workers) f n in
  Mutex.unlock t.mutex;
  let deadline = Clock.now () +. deadline_s in
  (* short jobs finish in microseconds: yield to the helpers for a
     while before paying the scheduler's full sleep quantum, so
     supervision stays cheap on jobs of any size *)
  let yields = ref 2000 in
  let rec wait_done () =
    Mutex.lock t.mutex;
    if job.pending = 0 then begin
      t.job <- None;
      let error = t.error in
      t.error <- None;
      Mutex.unlock t.mutex;
      match error with None -> () | Some e -> raise e
    end
    else if Clock.now () >= deadline then timeout ()
    else begin
      Mutex.unlock t.mutex;
      if !yields > 0 then begin
        decr yields;
        Unix.sleepf 0.0 (* sched_yield: let helpers run *)
      end
      else Unix.sleepf poll_s;
      wait_done ()
    end
  and timeout () =
    (* holding the mutex *)
    t.abandoned <- job.gen;
    t.job <- None;
    t.error <- None;
    Obs.Counter.incr t.timeouts;
    Obs.Counter.incr m_timeouts;
    (* drain unclaimed tasks so healthy workers return promptly *)
    Atomic.set job.next job.n;
    Mutex.unlock t.mutex;
    (* a short grace: workers mid-task but healthy finish and go idle *)
    let grace_deadline = Clock.now () +. grace_s in
    let rec grace () =
      Mutex.lock t.mutex;
      if job.pending = 0 then Mutex.unlock t.mutex
      else if Clock.now () >= grace_deadline then begin
        (* whoever is still inside the abandoned generation is stalled:
           cut it loose and replace it, so the pool stays serviceable.
           Parked spares (ex-zombies whose stalled task eventually
           returned) are reactivated first; only the shortfall costs a
           fresh domain, spawned with the mutex released. *)
        let stalled, healthy =
          List.partition (fun w -> w.busy_gen = job.gen) t.workers
        in
        List.iter (fun w -> w.zombie <- true) stalled;
        let rec reuse n reused spares =
          match spares with
          | w :: rest when n > 0 ->
            w.active <- true;
            reuse (n - 1) (w :: reused) rest
          | _ -> (reused, spares)
        in
        let reused, spares = reuse (List.length stalled) [] t.spares in
        t.spares <- spares;
        t.workers <- healthy @ reused;
        Obs.Counter.add t.respawned (List.length stalled);
        Obs.Counter.add m_respawned (List.length stalled);
        let missing = List.length stalled - List.length reused in
        let gen = t.generation in
        Mutex.unlock t.mutex;
        if missing > 0 then begin
          let fresh = List.init missing (fun _ -> spawn_worker t gen) in
          Mutex.lock t.mutex;
          t.workers <- fresh @ t.workers;
          Mutex.unlock t.mutex
        end
      end
      else begin
        Mutex.unlock t.mutex;
        Unix.sleepf poll_s;
        grace ()
      end
    in
    grace ();
    raise Timeout
  in
  wait_done ()

let run ?deadline_s t ~n f =
  check_runnable t n;
  if n > 0 then begin
    Obs.Counter.incr m_jobs;
    Obs.Counter.add m_tasks n;
    Obs.Histogram.time h_job (fun () ->
        match deadline_s with
        | None -> run_participating t ~n f
        | Some d -> run_supervised t ~n ~deadline_s:d f)
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.start;
    let joinable =
      List.filter_map (fun w -> w.domain) (t.workers @ t.spares)
    in
    t.workers <- [];
    t.spares <- [];
    Mutex.unlock t.mutex;
    List.iter Domain.join joinable
  end
  else Mutex.unlock t.mutex

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
