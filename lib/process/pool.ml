type job = {
  f : int -> unit;
  n : int;
  next : int Atomic.t;
}

type t = {
  total : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable running : int;        (* helpers still executing the current job *)
  mutable error : exn option;   (* first exception raised by any task *)
  mutable stop : bool;
  mutable helpers : unit Domain.t array;
}

(* Work stealing by atomic index claim: any domain grabs the next
   undone task, so load imbalance between tasks self-corrects. *)
let exec t job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (try job.f i
       with e ->
         Mutex.lock t.mutex;
         if t.error = None then t.error <- Some e;
         Mutex.unlock t.mutex;
         (* drain the remaining tasks so everyone returns promptly *)
         Atomic.set job.next job.n);
      claim ()
    end
  in
  claim ()

let helper_loop t =
  let seen = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.start t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      live := false
    end
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      exec t job;
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      total = domains;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      running = 0;
      error = None;
      stop = false;
      helpers = [||];
    }
  in
  t.helpers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> helper_loop t));
  t

let domains t = t.total

let run t ~n f =
  if n < 0 then invalid_arg "Pool.run: n must be >= 0";
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  if n > 0 then begin
    let job = { f; n; next = Atomic.make 0 } in
    Mutex.lock t.mutex;
    if t.job <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: a job is already in flight"
    end;
    t.error <- None;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.running <- Array.length t.helpers;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    (* the submitting domain works too: domains=1 means no helpers *)
    exec t job;
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let error = t.error in
    t.error <- None;
    Mutex.unlock t.mutex;
    match error with None -> () | Some e -> raise e
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.helpers;
    t.helpers <- [||]
  end
  else Mutex.unlock t.mutex

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
