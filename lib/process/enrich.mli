(** Boundary-biased sequential enrichment with importance weights.

    A uniform pilot population fits one linear surrogate per
    specification; the remaining budget is drawn by rejection sampling
    concentrated where the surrogate predicts the device lies near its
    acceptance boundary. Each kept instance carries an importance
    weight so self-normalised weighted statistics over the population
    (see [Stc.Metrics] weighted tallies) are unbiased estimates of the
    uniform-sampling statistics.

    Enriched instance [i] consumes only the private streams
    [Montecarlo.instance_rng ~seed ~index:i ~attempt], so the dataset
    is bit-identical at any domain count. *)

type config = {
  boundary_width : float;
      (** τ: half-width of the target boundary band, in pilot-sigma
          units (default 1.0) *)
  floor_probability : float;
      (** minimum acceptance probability, keeping weights bounded and
          every region reachable (default 0.05) *)
  max_failure_ratio : float;
      (** failed-simulation budget for the enriched phase, as in
          {!Montecarlo.generate} (default 0.5) *)
}

val default_config : config

type stats = {
  pilot : int;             (** uniform pilot instances *)
  enriched : int;          (** boundary-biased instances *)
  proposals : int;         (** rejection-sampling proposals drawn *)
  sim_failures : int;      (** failed simulations in the enriched phase *)
  acceptance_rate : float; (** Ẑ = accepted / proposals *)
  boundary_hit_rate : float;
      (** fraction of all kept instances whose true normalised margin
          lies within [boundary_width] of the boundary *)
  surrogate_ok : bool;
      (** false when the pilot fit was singular or non-finite and the
          enriched phase degraded to uniform sampling *)
}

val generate :
  ?config:config ->
  ?domains:int ->
  seed:int ->
  pilot:int ->
  Montecarlo.device ->
  limits:(float * float) array ->
  n:int ->
  Montecarlo.dataset * stats
(** [generate ~seed ~pilot device ~limits ~n] draws [pilot] uniform
    instances, then [n - pilot] boundary-biased ones, for [n] total.
    [limits.(j)] is the [(lower, upper)] acceptance range of spec [j]
    (use [neg_infinity]/[infinity] for one-sided specs). Requires
    [0 < pilot < n]. Raises [Montecarlo.Too_many_failures] under the
    same abort-at-threshold semantics as {!Montecarlo.generate}. *)

(** {1 Margin helpers}

    Shared by the bench harness and the QA oracles to measure boundary
    density on arbitrary datasets. *)

val spec_sigmas : Montecarlo.dataset -> float array
(** Per-spec standard deviation of the measured values. *)

val margin_of_specs :
  limits:(float * float) array -> sigmas:float array -> float array -> float
(** Worst signed distance of one spec vector to its limits, in sigma
    units; near zero means near the acceptance boundary. *)

val boundary_fraction :
  limits:(float * float) array ->
  sigmas:float array ->
  width:float ->
  Montecarlo.dataset ->
  float
(** Fraction of instances whose absolute margin is at most [width]. *)
