(** A supervised multicore worker pool over OCaml 5 domains.

    One pool owns [domains - 1] helper domains parked on a condition
    variable. In unsupervised runs the submitting domain participates
    in every job, so [domains = 1] degrades to plain sequential
    execution with no domain spawned. Tasks are claimed by atomic index
    increment (work stealing), so the assignment of task index to
    domain is nondeterministic — callers must make each task's effect
    depend only on its index (as {!Montecarlo.generate_parallel} does
    with per-instance RNG streams) for results to be reproducible.

    Supervision: [run ~deadline_s] bounds how long a job may take.
    Every task claim stamps the claiming worker's heartbeat; when the
    deadline passes, the job's remaining tasks are drained, workers
    still stuck inside a task after a short grace are cut loose (a
    domain cannot be killed) and replaced, and {!Timeout} is raised.
    A cut-loose domain whose task eventually returns parks as a spare
    and is reused by a later replacement pass, so repeated timeouts do
    not leak a domain per stall; only a shortfall of spares costs a
    fresh [Domain.spawn]. Helper domains are therefore never terminated
    mid-run — deliberate, as overlapping domain creation with domain
    termination can deadlock the OCaml 5.1 runtime under churn. The
    pool stays serviceable: the next [run] finds a full complement of
    workers (verified by [Stc_qa.Faults.check_pool_deadline]).

    Generalises the hand-rolled [Domain.spawn] loop that used to live in
    [Montecarlo]; also drives the floor serving engine's batches
    ([Stc_floor.Floor]), which reuses one pool across many batches
    instead of paying domain spawn latency per batch. *)

type t

exception Timeout
(** A [run ~deadline_s] job exceeded its deadline. The job's effects on
    completed tasks stand; unclaimed tasks never ran. *)

type stats = {
  timeouts : int;   (** jobs abandoned at their deadline *)
  respawned : int;  (** stalled workers cut loose and replaced *)
}

val create : domains:int -> t
(** Spawns [domains - 1] helper domains immediately. Raises
    [Invalid_argument] when [domains < 1]. *)

val domains : t -> int
(** Total parallelism including the submitting domain. *)

val run : ?deadline_s:float -> t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] executes [f 0 .. f (n-1)] across the pool and returns
    when all have finished. [n = 0] is a no-op. If any task raises, the
    first exception is re-raised in the submitter after the remaining
    tasks are drained; the failure is not sticky — the pool stays
    usable and the next [run] starts with a clean error slot (verified
    by [Stc_qa.Faults.check_pool_worker_failure]). Not reentrant: one
    job at a time per pool. Raises [Invalid_argument] after
    {!shutdown}.

    With [deadline_s] the job runs supervised: tasks execute only on
    helper domains while the submitter stays preemptible — it spins
    briefly, then sleep-polls for completion. The first supervised run
    grows the helper set to [domains], so supervised task parallelism
    matches the configured level (later plain runs then have the
    submitter plus [domains] helpers claiming tasks). If the job
    is not done within [deadline_s] seconds it is abandoned and
    {!Timeout} is raised, within the deadline plus a small fixed grace.
    A worker still stuck inside a task at that point is replaced (by a
    parked spare when one is available, else a fresh domain), so a
    stalled (non-cooperative) task cannot brick the pool; the stuck
    domain parks as a spare if its task ever returns. Raises
    [Invalid_argument] when [deadline_s <= 0]. *)

val stats : t -> stats
(** Cumulative supervision counters since [create]. Backed by atomic
    counters ([Stc_obs.Registry.Counter]), so reads are lock-free and
    concurrent increments are never lost. The same events also feed the
    process-wide metrics [stc_pool_timeouts_total] /
    [stc_pool_respawned_total]; every [run] additionally records
    [stc_pool_jobs_total], [stc_pool_tasks_total] and the
    [stc_pool_queue_wait_s] / [stc_pool_job_s] latency histograms in
    {!Stc_obs.Registry.global}. *)

val heartbeat_ages : t -> float array
(** Seconds since each live helper last claimed a task (or was
    spawned); one entry per helper, in no particular order. An entry
    much older than its peers during a run marks the stalled worker. *)

val shutdown : t -> unit
(** Joins the live helper domains and parked spares (a cut-loose worker
    still stuck inside its task is not waited for). Idempotent; the
    pool cannot be reused. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run the callback, always [shutdown]. *)
