(** A reusable multicore worker pool over OCaml 5 domains.

    One pool owns [domains - 1] helper domains parked on a condition
    variable; the submitting domain participates in every job, so
    [domains = 1] degrades to plain sequential execution with no domain
    spawned. Tasks are claimed by atomic index increment (work
    stealing), so the assignment of task index to domain is
    nondeterministic — callers must make each task's effect depend only
    on its index (as {!Montecarlo.generate_parallel} does with
    per-instance RNG streams) for results to be reproducible.

    Generalises the hand-rolled [Domain.spawn] loop that used to live in
    [Montecarlo]; also drives the floor serving engine's batches
    ([Stc_floor.Floor]), which reuses one pool across many batches
    instead of paying domain spawn latency per batch. *)

type t

val create : domains:int -> t
(** Spawns [domains - 1] helper domains immediately. Raises
    [Invalid_argument] when [domains < 1]. *)

val domains : t -> int
(** Total parallelism including the submitting domain. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] executes [f 0 .. f (n-1)] across the pool and returns
    when all have finished. [n = 0] is a no-op. If any task raises, the
    first exception is re-raised in the submitter after the remaining
    tasks are drained; the failure is not sticky — the pool stays
    usable and the next [run] starts with a clean error slot (verified
    by [Stc_qa.Faults.check_pool_worker_failure]). Not reentrant: one
    job at a time per pool. Raises [Invalid_argument] after
    {!shutdown}. *)

val shutdown : t -> unit
(** Joins the helper domains. Idempotent; the pool cannot be reused. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run the callback, always [shutdown]. *)
