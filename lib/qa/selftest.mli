(** The one-command QA sweep behind [stc selftest] and [make qa]:
    replays every property and fault class — the floor differential
    oracle, SVM decision oracles and dual-feasibility, serialisation
    round trips, and the {!Faults} injection suite — from a single
    seed, and reports per-section pass/fail counts.

    The default scale (1000 flows × {1, 7, 64} batch sizes × {1, 4}
    domain counts) is the acceptance bar for serving-path changes:
    run it before and after touching [Stc_floor], [Stc_svm.Smo] or
    [Stc_process.Pool]. *)

type section = {
  name : string;
  cases : int;          (** property instances or fault trials run *)
  failures : int;
  detail : string;      (** first counterexample, or a short summary *)
  elapsed_s : float;
}

type report = {
  seed : int;
  sections : section list;
}

val run :
  ?seed:int ->
  ?flows:int ->
  ?rows_per_flow:int ->
  ?progress:(string -> unit) ->
  unit ->
  report
(** Defaults: [seed = 2005], [flows = 1000], [rows_per_flow = 16],
    no progress output. Every failure detail embeds the seed so the run
    reproduces exactly. *)

val ok : report -> bool

val render : report -> string
(** A {!Stc.Report.table} of section results plus a verdict line. *)
