(** Differential oracles: independent reference implementations that
    the production code paths must agree with.

    Three families:
    - a naive reference binner — sequential, unbatched, closure-based —
      that {!Stc_floor.Floor} must match bit-for-bit under any batch
      size and domain count;
    - brute-force SVM decision functions recomputed from the raw model
      data with an independent kernel evaluation, checked against
      {!Stc_svm.Svc}/{!Stc_svm.Svr}, plus dual-feasibility checks on
      what the SMO solver produced;
    - round-trip laws for {!Stc_floor.Flow_io}, {!Stc_svm.Model_io} and
      {!Stc_floor.Device_csv}: parse ∘ print = id and
      print ∘ parse = canonicalise.

    Every check returns [(unit, string) result] with a human-readable
    counterexample description, so qcheck failures and {!Selftest}
    reports read the same. *)

(* ----------------------- reference binner ------------------------- *)

val reference_outcomes :
  ?retest:(float array -> bool) ->
  Stc.Compaction.flow ->
  float array array ->
  Stc_floor.Floor.outcome array
(** Bins the rows one by one in order, with the flow's classifiers
    bound once as closures — a from-scratch reimplementation of the
    verdict semantics ({!Stc.Compaction.flow_verdict} plus
    {!Stc_floor.Floor}'s bin mapping) sharing only the primitive float
    operations, so a batching, scheduling, or escalation-order bug in
    the engine cannot also hide here. *)

val floor_matches :
  ?retest:(float array -> bool) ->
  batch_sizes:int list ->
  domain_counts:int list ->
  Stc.Compaction.flow ->
  float array array ->
  (unit, string) result
(** Runs a fresh {!Stc_floor.Floor} engine for every batch-size ×
    domain-count combination and demands verdicts and bins identical to
    {!reference_outcomes}, and engine counters that partition the
    devices. [Error] names the first mismatching configuration and
    row. *)

(* --------------------- reference SVM decision --------------------- *)

val flat_kernel_agrees :
  Stc_svm.Kernel.t list -> float array array -> (unit, string) result
(** Differential oracle for the flat-storage kernel path: for every
    kernel and every (i, j) row pair, [Kernel.eval_rows] (and
    [eval_row_vec]) over contiguous {!Stc_svm.Flat} storage must equal
    the boxed [Kernel.eval] bit-for-bit (IEEE bit pattern, no
    tolerance). This is the contract that lets the SMO hot path use
    flat storage without perturbing a single trained model. *)

val kernel_ref : Stc_svm.Kernel.t -> float array -> float array -> float
(** Independent kernel evaluation (index loops, no shared helpers). *)

val svc_decision_ref : Stc_svm.Svc.model -> float array -> float
(** b + Σ coefᵢ·K(svᵢ, x) recomputed from {!Stc_svm.Svc.to_raw}. *)

val svr_predict_ref : Stc_svm.Svr.model -> float array -> float

val svc_agrees :
  ?tol:float -> Stc_svm.Svc.model -> float array -> (unit, string) result
(** Decision values agree within [tol] (default 1e-9, scaled by
    magnitude) and the ±1 classifications agree whenever the decision
    is not within [tol] of zero. *)

val svr_agrees :
  ?tol:float -> Stc_svm.Svr.model -> float array -> (unit, string) result

val svc_dual_feasible :
  c:float -> Stc_svm.Svc.model -> (unit, string) result
(** The trained dual coefficients satisfy the box constraint
    |yᵢαᵢ| ≤ C and the equality constraint Σ yᵢαᵢ = 0 — what any
    correct SMO fixed point must satisfy, independent of the
    working-set strategy. *)

val svr_dual_feasible :
  c:float -> Stc_svm.Svr.model -> (unit, string) result
(** Each net coefficient [alpha_i - alpha_i'] lies in [[-C, C]] and
    they sum to zero. *)

(* -------------------------- round trips --------------------------- *)

val flow_roundtrips : Stc.Compaction.flow -> (unit, string) result
(** print → parse → print is byte-identical (the format's canonicality
    law). *)

val flow_verdicts_survive :
  Stc.Compaction.flow -> float array array -> (unit, string) result
(** The reloaded flow reproduces every row's verdict bit-for-bit. *)

val svr_roundtrips : Stc_svm.Svr.model -> (unit, string) result
val svc_roundtrips : Stc_svm.Svc.model -> (unit, string) result

val csv_roundtrips :
  specs:Stc.Spec.t array -> rows:float array array -> (unit, string) result
(** Writes to a fresh temp file, reads back, demands bit-identical
    cells and header names; the temp file is always removed. *)

(* ------------------------ enrichment oracles ---------------------- *)

val enrichment_deterministic :
  ?domain_counts:int list ->
  seed:int ->
  pilot:int ->
  n:int ->
  Stc_process.Montecarlo.device ->
  limits:(float * float) array ->
  (unit, string) result
(** Runs {!Stc_process.Enrich.generate} once per domain count (default
    [1; 2; 4]) and demands bit-identical datasets — inputs, measured
    specs, importance weights (IEEE bit patterns, no tolerance),
    discarded count — and identical run statistics. This is the
    contract that lets enriched populations fan out across cores. *)

val enrichment_unbiased :
  ?tolerance_sigmas:float ->
  seed:int ->
  pilot:int ->
  n:int ->
  Stc_process.Montecarlo.device ->
  limits:(float * float) array ->
  (unit, string) result
(** The weighted-vs-unweighted statistics oracle: the self-normalised
    weighted yield of an enriched population must match the plain yield
    of an independent uniform population of the same size within
    [tolerance_sigmas] (default 5) combined standard errors — the
    enriched side's error computed at its Kish effective sample size —
    plus a 0.01 absolute slack. Also rejects any non-finite or
    non-positive importance weight. *)
