(** Differential oracles: independent reference implementations that
    the production code paths must agree with.

    Three families:
    - a naive reference binner — sequential, unbatched, closure-based —
      that {!Stc_floor.Floor} must match bit-for-bit under any batch
      size and domain count;
    - brute-force SVM decision functions recomputed from the raw model
      data with an independent kernel evaluation, checked against
      {!Stc_svm.Svc}/{!Stc_svm.Svr}, plus dual-feasibility checks on
      what the SMO solver produced;
    - round-trip laws for {!Stc_floor.Flow_io}, {!Stc_svm.Model_io} and
      {!Stc_floor.Device_csv}: parse ∘ print = id and
      print ∘ parse = canonicalise.

    Every check returns [(unit, string) result] with a human-readable
    counterexample description, so qcheck failures and {!Selftest}
    reports read the same. *)

(* ----------------------- reference binner ------------------------- *)

val reference_outcomes :
  ?retest:(float array -> bool) ->
  Stc.Compaction.flow ->
  float array array ->
  Stc_floor.Floor.outcome array
(** Bins the rows one by one in order, with the flow's classifiers
    bound once as closures — a from-scratch reimplementation of the
    verdict semantics ({!Stc.Compaction.flow_verdict} plus
    {!Stc_floor.Floor}'s bin mapping) sharing only the primitive float
    operations, so a batching, scheduling, or escalation-order bug in
    the engine cannot also hide here. *)

val floor_matches :
  ?retest:(float array -> bool) ->
  batch_sizes:int list ->
  domain_counts:int list ->
  Stc.Compaction.flow ->
  float array array ->
  (unit, string) result
(** Runs a fresh {!Stc_floor.Floor} engine for every batch-size ×
    domain-count combination and demands verdicts and bins identical to
    {!reference_outcomes}, and engine counters that partition the
    devices. [Error] names the first mismatching configuration and
    row. *)

(* --------------------- reference SVM decision --------------------- *)

val flat_kernel_agrees :
  Stc_svm.Kernel.t list -> float array array -> (unit, string) result
(** Differential oracle for the flat-storage kernel path: for every
    kernel and every (i, j) row pair, [Kernel.eval_rows] (and
    [eval_row_vec]) over contiguous {!Stc_svm.Flat} storage must equal
    the boxed [Kernel.eval] bit-for-bit (IEEE bit pattern, no
    tolerance). This is the contract that lets the SMO hot path use
    flat storage without perturbing a single trained model. *)

val kernel_ref : Stc_svm.Kernel.t -> float array -> float array -> float
(** Independent kernel evaluation (index loops, no shared helpers). *)

val svc_decision_ref : Stc_svm.Svc.model -> float array -> float
(** b + Σ coefᵢ·K(svᵢ, x) recomputed from {!Stc_svm.Svc.to_raw}. *)

val svr_predict_ref : Stc_svm.Svr.model -> float array -> float

val svc_agrees :
  ?tol:float -> Stc_svm.Svc.model -> float array -> (unit, string) result
(** Decision values agree within [tol] (default 1e-9, scaled by
    magnitude) and the ±1 classifications agree whenever the decision
    is not within [tol] of zero. *)

val svr_agrees :
  ?tol:float -> Stc_svm.Svr.model -> float array -> (unit, string) result

val svc_dual_feasible :
  c:float -> Stc_svm.Svc.model -> (unit, string) result
(** The trained dual coefficients satisfy the box constraint
    |yᵢαᵢ| ≤ C and the equality constraint Σ yᵢαᵢ = 0 — what any
    correct SMO fixed point must satisfy, independent of the
    working-set strategy. *)

val svr_dual_feasible :
  c:float -> Stc_svm.Svr.model -> (unit, string) result
(** Each net coefficient [alpha_i - alpha_i'] lies in [[-C, C]] and
    they sum to zero. *)

(* -------------------------- round trips --------------------------- *)

val flow_roundtrips : Stc.Compaction.flow -> (unit, string) result
(** print → parse → print is byte-identical (the format's canonicality
    law). *)

val flow_verdicts_survive :
  Stc.Compaction.flow -> float array array -> (unit, string) result
(** The reloaded flow reproduces every row's verdict bit-for-bit. *)

val svr_roundtrips : Stc_svm.Svr.model -> (unit, string) result
val svc_roundtrips : Stc_svm.Svc.model -> (unit, string) result

val csv_roundtrips :
  specs:Stc.Spec.t array -> rows:float array array -> (unit, string) result
(** Writes to a fresh temp file, reads back, demands bit-identical
    cells and header names; the temp file is always removed. *)

(* ------------------------- learner oracles ------------------------ *)

val mlp_forward_ref : Stc_learn.Mlp.model -> float array -> float
(** Brute-force forward pass recomputed from
    {!Stc_learn.Mlp.to_raw} with plain iterators. *)

val mlp_agrees :
  ?tol:float -> Stc_learn.Mlp.model -> float array -> (unit, string) result
(** {!Stc_learn.Mlp.predict} matches {!mlp_forward_ref} within [tol]
    (default 1e-9, magnitude-scaled), and the ±1 classification
    matches whenever the output is not within [tol] of zero. *)

val mlp_roundtrips : Stc_learn.Mlp.model -> (unit, string) result
(** The [stc-mlp-1] canonicality law: print → parse → print is
    byte-identical. *)

val mi_matches_ref :
  ?bins:int -> labels:int array -> float array -> (unit, string) result
(** {!Stc_learn.Mi.score} must equal — IEEE bit pattern, no
    tolerance — a reference that recounts every (bin, label) cell with
    a separate full scan of the data. *)

val mi_permutation_invariant :
  ?bins:int ->
  permutation:int array ->
  labels:int array ->
  float array ->
  (unit, string) result
(** Applying one permutation to values and labels together may not
    change the score by a single bit (the score is a function of
    integer counts only). *)

(* ------------------------ enrichment oracles ---------------------- *)

val enrichment_deterministic :
  ?domain_counts:int list ->
  seed:int ->
  pilot:int ->
  n:int ->
  Stc_process.Montecarlo.device ->
  limits:(float * float) array ->
  (unit, string) result
(** Runs {!Stc_process.Enrich.generate} once per domain count (default
    [1; 2; 4]) and demands bit-identical datasets — inputs, measured
    specs, importance weights (IEEE bit patterns, no tolerance),
    discarded count — and identical run statistics. This is the
    contract that lets enriched populations fan out across cores. *)

val enrichment_unbiased :
  ?tolerance_sigmas:float ->
  seed:int ->
  pilot:int ->
  n:int ->
  Stc_process.Montecarlo.device ->
  limits:(float * float) array ->
  (unit, string) result
(** The weighted-vs-unweighted statistics oracle: the self-normalised
    weighted yield of an enriched population must match the plain yield
    of an independent uniform population of the same size within
    [tolerance_sigmas] (default 5) combined standard errors — the
    enriched side's error computed at its Kish effective sample size —
    plus a 0.01 absolute slack. Also rejects any non-finite or
    non-positive importance weight. *)

val mlp_deterministic :
  ?domain_counts:int list ->
  ?config:Stc_learn.Mlp.config ->
  seed:int ->
  n:int ->
  Stc_process.Montecarlo.device ->
  limits:(float * float) array ->
  (unit, string) result
(** Determinism-of-training contract for the MLP: generate the same
    population at each domain count (default [1; 2; 4]), train, and
    demand byte-identical serialised models — plus a repeat run at the
    first count to catch hidden global state. *)

(* ------------------------- promotion gate ------------------------- *)

type promotion = {
  baseline : string;
  candidate : string;
  baseline_dropped : int;
  candidate_dropped : int;
  baseline_escape_pct : float;
  candidate_escape_pct : float;
  baseline_loss_pct : float;
  candidate_loss_pct : float;
}

val learner_promotes :
  ?slack_pct:float ->
  ?order:Stc.Order.strategy ->
  candidate:Stc.Compaction.learner ->
  Stc.Compaction.config ->
  train:Stc.Device_data.t ->
  test:Stc.Device_data.t ->
  (promotion, string) result
(** The differential promotion gate: runs the full greedy compaction
    twice at equal tolerance — once with [config]'s learner (the
    baseline, normally ε-SVR) and once with [candidate] — and admits
    the candidate only if (a) it actually compacts whenever the
    baseline does (a learner whose predictions never clear the
    tolerance drops nothing and would otherwise score a trivial zero
    escape), and (b) its test escape and yield-loss percentages do not
    exceed the baseline's by more than [slack_pct] percentage points
    (default 0). [Ok] carries both sides' numbers for reporting. *)
