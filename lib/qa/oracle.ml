module Spec = Stc.Spec
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Tester = Stc.Tester
module Kernel = Stc_svm.Kernel
module Svr = Stc_svm.Svr
module Svc = Stc_svm.Svc
module Model_io = Stc_svm.Model_io
module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Device_csv = Stc_floor.Device_csv

let errorf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ----------------------- reference binner ------------------------- *)

(* A from-scratch reimplementation of the flow-verdict semantics with
   everything bound up front as closures: the perturbed ranges are
   computed once, the band sides become two plain [float array -> int]
   functions, and rows are binned strictly in order with no batching.
   Shares only Spec's primitive float operations with the production
   path, so the arithmetic is bit-identical while the control flow is
   independent. *)
let reference_outcomes ?retest (flow : Compaction.flow) rows =
  let delta =
    if flow.Compaction.measured_guard then flow.Compaction.guard_fraction
    else 0.0
  in
  let kept = flow.Compaction.kept in
  let kept_specs = Array.map (fun j -> flow.Compaction.specs.(j)) kept in
  let loose_specs =
    if delta = 0.0 then kept_specs
    else Array.map (fun s -> Spec.perturb s ~fraction:delta) kept_specs
  in
  let tight_specs =
    if delta = 0.0 then kept_specs
    else Array.map (fun s -> Spec.perturb s ~fraction:(-.delta)) kept_specs
  in
  let model_verdict =
    match flow.Compaction.band with
    | None -> fun _ -> Guard_band.Good
    | Some band ->
      let tight = Guard_band.predict (Guard_band.tight_model band) in
      let loose = Guard_band.predict (Guard_band.loose_model band) in
      fun features ->
        (match (tight features, loose features) with
         | 1, 1 -> Guard_band.Good
         | -1, -1 -> Guard_band.Bad
         | 1, -1 | -1, 1 -> Guard_band.Guard
         | _ -> invalid_arg "Oracle: classifier returned non-±1")
  in
  let bin_one row =
    (* measured (kept-spec) three-way verdict *)
    let measured = ref Guard_band.Good in
    Array.iteri
      (fun p j ->
        let v = row.(j) in
        if not (Spec.passes loose_specs.(p) v) then measured := Guard_band.Bad
        else if
          (not (Spec.passes tight_specs.(p) v))
          && !measured = Guard_band.Good
        then measured := Guard_band.Guard)
      kept;
    let verdict =
      match !measured with
      | Guard_band.Bad -> Guard_band.Bad
      | (Guard_band.Good | Guard_band.Guard) as m ->
        let features =
          Array.mapi (fun p j -> Spec.normalize kept_specs.(p) row.(j)) kept
        in
        (match (m, model_verdict features) with
         | Guard_band.Good, mv -> mv
         | Guard_band.Guard, Guard_band.Bad -> Guard_band.Bad
         | Guard_band.Guard, (Guard_band.Good | Guard_band.Guard) ->
           Guard_band.Guard
         | Guard_band.Bad, _ -> assert false)
    in
    let bin =
      match verdict with
      | Guard_band.Good -> Tester.Ship
      | Guard_band.Bad -> Tester.Scrap
      | Guard_band.Guard ->
        (match retest with
         | None -> Tester.Retest
         | Some full_test -> if full_test row then Tester.Ship else Tester.Scrap)
    in
    { Floor.bin; verdict }
  in
  Array.map bin_one rows

let bin_name = function
  | Tester.Ship -> "ship"
  | Tester.Scrap -> "scrap"
  | Tester.Retest -> "retest"

let floor_matches ?retest ~batch_sizes ~domain_counts flow rows =
  let expected = reference_outcomes ?retest flow rows in
  let check_config batch_size domains =
    Floor.with_engine ~config:{ Floor.batch_size; domains } flow (fun engine ->
        let got = Floor.process ?retest engine rows in
        let mismatch = ref (Ok ()) in
        Array.iteri
          (fun i (o : Floor.outcome) ->
            if !mismatch = Ok () then begin
              let e = expected.(i) in
              if
                (not (Guard_band.equal_verdict o.Floor.verdict e.Floor.verdict))
                || o.Floor.bin <> e.Floor.bin
              then
                mismatch :=
                  errorf
                    "batch %d, domains %d, row %d: engine %s/%s but reference \
                     %s/%s"
                    batch_size domains i
                    (Guard_band.verdict_to_string o.Floor.verdict)
                    (bin_name o.Floor.bin)
                    (Guard_band.verdict_to_string e.Floor.verdict)
                    (bin_name e.Floor.bin)
            end)
          got;
        match !mismatch with
        | Error _ as e -> e
        | Ok () ->
          let s = Floor.stats engine in
          let n = Array.length rows in
          if s.Floor.devices <> n then
            errorf "batch %d, domains %d: %d devices counted, %d submitted"
              batch_size domains s.Floor.devices n
          else begin
            (* with a retest callback a guard part is counted both as
               retested and as shipped/scrapped; without one the three
               bins partition the stream *)
            let binned = s.Floor.shipped + s.Floor.scrapped in
            let consistent =
              match retest with
              | None -> binned + s.Floor.retested = n
              | Some _ -> binned = n
            in
            if consistent then Ok ()
            else
              errorf
                "batch %d, domains %d: counters do not partition (%d + %d + %d \
                 vs %d)"
                batch_size domains s.Floor.shipped s.Floor.scrapped
                s.Floor.retested n
          end)
  in
  List.fold_left
    (fun acc batch_size ->
      List.fold_left
        (fun acc domains ->
          match acc with
          | Error _ as e -> e
          | Ok () -> check_config batch_size domains)
        acc domain_counts)
    (Ok ()) batch_sizes

(* --------------------- reference SVM decision --------------------- *)

let dot_ref x y =
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let sqdist_ref x y =
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let kernel_ref k x y =
  match k with
  | Kernel.Linear -> dot_ref x y
  | Kernel.Rbf { gamma } -> exp (-.gamma *. sqdist_ref x y)
  | Kernel.Polynomial { gamma; coef0; degree } ->
    let base = (gamma *. dot_ref x y) +. coef0 in
    let acc = ref 1.0 in
    for _ = 1 to degree do
      acc := !acc *. base
    done;
    !acc
  | Kernel.Sigmoid { gamma; coef0 } -> tanh ((gamma *. dot_ref x y) +. coef0)

(* Differential oracle for the flat-storage kernel path: every kernel
   value computed over contiguous [Flat] storage must be bit-for-bit
   the value the boxed [Kernel.eval] path computes — compared on the
   IEEE bit pattern, not with a tolerance. *)
let flat_kernel_agrees kernels rows =
  let bits = Int64.bits_of_float in
  let fx = Stc_svm.Flat.of_rows rows in
  let n = Array.length rows in
  let mismatch what k i j boxed flat =
    errorf "flat kernel %s: %s rows (%d,%d): boxed %.17g flat %.17g" what
      (Format.asprintf "%a" Kernel.pp k)
      i j boxed flat
  in
  List.fold_left
    (fun acc k ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
        let pairwise = ref (Ok ()) in
        (try
           for i = 0 to n - 1 do
             for j = 0 to n - 1 do
               let boxed = Kernel.eval k rows.(i) rows.(j) in
               let flat = Kernel.eval_rows k fx i j in
               if bits boxed <> bits flat then begin
                 pairwise := mismatch "eval_rows" k i j boxed flat;
                 raise Exit
               end;
               let vec = Kernel.eval_row_vec k fx i rows.(j) in
               if bits boxed <> bits vec then begin
                 pairwise := mismatch "eval_row_vec" k i j boxed vec;
                 raise Exit
               end
             done
           done
         with Exit -> ());
        !pairwise)
    (Ok ()) kernels

let raw_decision ~kernel ~sv ~coef ~b x =
  let acc = ref b in
  Array.iteri (fun i s -> acc := !acc +. (coef.(i) *. kernel_ref kernel s x)) sv;
  !acc

let svc_decision_ref m x =
  let r = Svc.to_raw m in
  raw_decision ~kernel:r.Svc.raw_kernel ~sv:r.Svc.raw_sv ~coef:r.Svc.raw_coef
    ~b:r.Svc.raw_b x

let svr_predict_ref m x =
  let r = Svr.to_raw m in
  raw_decision ~kernel:r.Svr.raw_kernel ~sv:r.Svr.raw_sv ~coef:r.Svr.raw_coef
    ~b:r.Svr.raw_b x

let agree ~what ~tol ~fast ~ref_ ~fast_sign ~ref_sign =
  let scale = 1.0 +. Float.abs fast +. Float.abs ref_ in
  if Float.abs (fast -. ref_) > tol *. scale then
    errorf "%s decision %.17g but reference %.17g" what fast ref_
  else if Float.abs ref_ > tol *. scale && fast_sign <> ref_sign then
    errorf "%s classifies %+d but reference sign is %+d (f = %.17g)" what
      fast_sign ref_sign ref_
  else Ok ()

let svc_agrees ?(tol = 1e-9) m x =
  let ref_ = svc_decision_ref m x in
  agree ~what:"svc" ~tol ~fast:(Svc.decision m x) ~ref_
    ~fast_sign:(Svc.predict m x)
    ~ref_sign:(if ref_ >= 0.0 then 1 else -1)

let svr_agrees ?(tol = 1e-9) m x =
  let ref_ = svr_predict_ref m x in
  agree ~what:"svr" ~tol ~fast:(Svr.predict m x) ~ref_
    ~fast_sign:(Svr.classify m x)
    ~ref_sign:(if ref_ >= 0.0 then 1 else -1)

let dual_feasible ~what ~c coef =
  let slack = 1e-6 *. (1.0 +. c) in
  let bad =
    Array.to_seq coef
    |> Seq.mapi (fun i a -> (i, a))
    |> Seq.filter (fun (_, a) -> Float.abs a > c +. slack)
    |> List.of_seq
  in
  match bad with
  | (i, a) :: _ ->
    errorf "%s support vector %d: |coef| = %.17g exceeds C = %g" what i
      (Float.abs a) c
  | [] ->
    let sum = Array.fold_left ( +. ) 0.0 coef in
    let scale = Array.fold_left (fun s a -> s +. Float.abs a) 1.0 coef in
    if Float.abs sum > 1e-6 *. scale then
      errorf "%s equality constraint violated: sum coef = %.17g" what sum
    else Ok ()

let svc_dual_feasible ~c m = dual_feasible ~what:"svc" ~c (Svc.dual_coefs m)

let svr_dual_feasible ~c m =
  dual_feasible ~what:"svr" ~c (Svr.to_raw m).Svr.raw_coef

(* -------------------------- round trips --------------------------- *)

let flow_roundtrips flow =
  match Flow_io.to_string flow with
  | Error e -> errorf "to_string failed: %s" e
  | Ok text ->
    (match Flow_io.of_string text with
     | Error e -> errorf "printed flow does not parse: %s" e
     | Ok reloaded ->
       (match Flow_io.to_string reloaded with
        | Error e -> errorf "reloaded flow does not print: %s" e
        | Ok text' ->
          if String.equal text text' then Ok ()
          else errorf "print ∘ parse not canonical:\n--- first\n%s--- second\n%s" text text'))

let flow_verdicts_survive flow rows =
  match Flow_io.to_string flow with
  | Error e -> errorf "to_string failed: %s" e
  | Ok text ->
    (match Flow_io.of_string text with
     | Error e -> errorf "printed flow does not parse: %s" e
     | Ok reloaded ->
       let mismatch = ref (Ok ()) in
       Array.iteri
         (fun i row ->
           if !mismatch = Ok () then begin
             let a = Compaction.flow_verdict flow row in
             let b = Compaction.flow_verdict reloaded row in
             if not (Guard_band.equal_verdict a b) then
               mismatch :=
                 errorf "row %d: verdict %s before save, %s after reload" i
                   (Guard_band.verdict_to_string a)
                   (Guard_band.verdict_to_string b)
           end)
         rows;
       !mismatch)

let model_roundtrips ~what ~to_string ~of_string m =
  let text = to_string m in
  match of_string text with
  | Error e -> errorf "printed %s model does not parse: %s" what e
  | Ok m' ->
    let text' = to_string m' in
    if String.equal text text' then Ok ()
    else errorf "%s print ∘ parse not canonical:\n%s\nvs\n%s" what text text'

let svr_roundtrips m =
  model_roundtrips ~what:"svr" ~to_string:Model_io.svr_to_string
    ~of_string:Model_io.svr_of_string m

let svc_roundtrips m =
  model_roundtrips ~what:"svc" ~to_string:Model_io.svc_to_string
    ~of_string:Model_io.svc_of_string m

let csv_roundtrips ~specs ~rows =
  let path = Filename.temp_file "stc_qa" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Device_csv.write ~path ~specs ~rows with
      | exception Invalid_argument e -> errorf "write rejected rows: %s" e
      | () ->
        (match Device_csv.read ~path with
         | Error e -> errorf "written CSV does not read: %s" e
         | Ok (names, rows') ->
           if Array.length names <> Array.length specs then
             errorf "header has %d names for %d specs" (Array.length names)
               (Array.length specs)
           else if
             not
               (Array.for_all2
                  (fun n (s : Spec.t) -> String.equal n s.Spec.name)
                  names specs)
           then errorf "header names differ from spec names"
           else if Array.length rows' <> Array.length rows then
             errorf "%d rows read back for %d written" (Array.length rows')
               (Array.length rows)
           else begin
             let mismatch = ref (Ok ()) in
             Array.iteri
               (fun i row ->
                 Array.iteri
                   (fun j v ->
                     if !mismatch = Ok () && not (Float.equal v rows'.(i).(j))
                     then
                       mismatch :=
                         errorf "cell (%d, %d): wrote %.17g, read %.17g" i j v
                           rows'.(i).(j))
                   row)
               rows;
             !mismatch
           end))

(* ------------------------- learner oracles ------------------------ *)

module Mlp = Stc_learn.Mlp
module Mi = Stc_learn.Mi

(* Independent forward pass recomputed from the raw weights with plain
   iterators — shares only tanh with the production path. *)
let mlp_forward_ref m x =
  let r = Mlp.to_raw m in
  let acc = ref r.Mlp.raw_out_b in
  Array.iteri
    (fun i wi ->
      let s = ref r.Mlp.raw_hidden_b.(i) in
      Array.iteri (fun j w -> s := !s +. (w *. x.(j))) wi;
      acc := !acc +. (r.Mlp.raw_out_w.(i) *. tanh !s))
    r.Mlp.raw_hidden_w;
  !acc

let mlp_agrees ?(tol = 1e-9) m x =
  let ref_ = mlp_forward_ref m x in
  agree ~what:"mlp" ~tol ~fast:(Mlp.predict m x) ~ref_
    ~fast_sign:(Mlp.classify m x)
    ~ref_sign:(if ref_ >= 0.0 then 1 else -1)

let mlp_roundtrips m =
  model_roundtrips ~what:"mlp" ~to_string:Mlp.to_string
    ~of_string:Mlp.of_string m

(* Reference MI: one full scan of the data per (bin, label) cell —
   O(bins · n) scans instead of one counting pass — with the bin rule
   and the p·log accumulation recomputed inline in the same order, so
   the production score must match bit-for-bit. *)
let mi_matches_ref ?(bins = Mi.default_bins) ~labels values =
  let n = Array.length values in
  if n = 0 || Array.length labels <> n then
    errorf "mi_matches_ref: bad input shape"
  else begin
    let lo = Array.fold_left min values.(0) values in
    let hi = Array.fold_left max values.(0) values in
    let bin_of v =
      if hi <= lo then 0
      else begin
        let b =
          int_of_float (float_of_int bins *. ((v -. lo) /. (hi -. lo)))
        in
        if b < 0 then 0 else if b >= bins then bins - 1 else b
      end
    in
    let count pred =
      let c = ref 0 in
      for i = 0 to n - 1 do
        if pred i then incr c
      done;
      !c
    in
    let fn = float_of_int n in
    let expected = ref 0.0 in
    for b = 0 to bins - 1 do
      for l = 0 to 1 do
        let in_cell i =
          bin_of values.(i) = b && (if labels.(i) > 0 then 1 else 0) = l
        in
        let c = count in_cell in
        if c > 0 then begin
          let cb = count (fun i -> bin_of values.(i) = b) in
          let cl = count (fun i -> (if labels.(i) > 0 then 1 else 0) = l) in
          let p_bl = float_of_int c /. fn in
          let p_b = float_of_int cb /. fn in
          let p_l = float_of_int cl /. fn in
          expected := !expected +. (p_bl *. log (p_bl /. (p_b *. p_l)))
        end
      done
    done;
    let expected = if !expected < 0.0 then 0.0 else !expected in
    let got = Mi.score ~bins ~labels values in
    if Int64.bits_of_float got <> Int64.bits_of_float expected then
      errorf "mi score %.17g but reference %.17g" got expected
    else Ok ()
  end

(* MI is computed from integer counts, so applying one permutation to
   values and labels together may not change a single bit. *)
let mi_permutation_invariant ?bins ~permutation ~labels values =
  let n = Array.length values in
  if Array.length permutation <> n || Array.length labels <> n then
    errorf "mi_permutation_invariant: bad input shape"
  else begin
    let pv = Array.map (fun i -> values.(i)) permutation in
    let pl = Array.map (fun i -> labels.(i)) permutation in
    let a = Mi.score ?bins ~labels values in
    let b = Mi.score ?bins ~labels:pl pv in
    if Int64.bits_of_float a <> Int64.bits_of_float b then
      errorf "mi score %.17g changed to %.17g under permutation" a b
    else Ok ()
  end

(* ------------------------ enrichment oracles ---------------------- *)

module Montecarlo = Stc_process.Montecarlo
module Enrich = Stc_process.Enrich

let same_float_matrix ~what a b =
  if Array.length a <> Array.length b then
    errorf "%s: %d rows vs %d" what (Array.length a) (Array.length b)
  else begin
    let bad = ref (Ok ()) in
    Array.iteri
      (fun i row ->
        if !bad = Ok () then begin
          if Array.length row <> Array.length b.(i) then
            bad := errorf "%s: row %d width differs" what i
          else
            Array.iteri
              (fun j v ->
                (* IEEE bit pattern, no tolerance: the determinism
                   contract is bit-identity *)
                if
                  !bad = Ok ()
                  && Int64.bits_of_float v <> Int64.bits_of_float b.(i).(j)
                then
                  bad :=
                    errorf "%s: (%d, %d) %.17g vs %.17g" what i j v b.(i).(j))
              row
        end)
      a;
    !bad
  end

let same_dataset ~what (a : Montecarlo.dataset) (b : Montecarlo.dataset) =
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let* () = same_float_matrix ~what:(what ^ " inputs") a.inputs b.inputs in
  let* () = same_float_matrix ~what:(what ^ " specs") a.specs b.specs in
  let* () =
    same_float_matrix ~what:(what ^ " weights") [| a.weights |] [| b.weights |]
  in
  if a.discarded <> b.discarded then
    errorf "%s: discarded %d vs %d" what a.discarded b.discarded
  else Ok ()

let enrichment_deterministic ?(domain_counts = [ 1; 2; 4 ]) ~seed ~pilot ~n
    device ~limits =
  match domain_counts with
  | [] -> Ok ()
  | d0 :: rest ->
    let gen d = Enrich.generate ~domains:d ~seed ~pilot device ~limits ~n in
    let reference, ref_stats = gen d0 in
    let rec check = function
      | [] -> Ok ()
      | d :: rest -> (
        let got, stats = gen d in
        let what = Printf.sprintf "domains %d vs %d" d d0 in
        match same_dataset ~what reference got with
        | Error _ as e -> e
        | Ok () ->
          if stats <> ref_stats then errorf "%s: stats differ" what
          else check rest)
    in
    check rest

let passes_limits limits values =
  let ok = ref true in
  Array.iteri
    (fun j v ->
      let lo, hi = limits.(j) in
      if v < lo || v > hi then ok := false)
    values;
  !ok

let weighted_yield ~limits (d : Montecarlo.dataset) =
  let good = ref 0.0 and total = ref 0.0 in
  Array.iteri
    (fun i values ->
      let w = d.weights.(i) in
      total := !total +. w;
      if passes_limits limits values then good := !good +. w)
    d.specs;
  if !total = 0.0 then 0.0 else !good /. !total

(* Kish effective sample size: the variance of a self-normalised
   weighted mean of n draws matches an unweighted mean of
   (Σw)²/Σw² draws. *)
let effective_sample_size weights =
  let s = ref 0.0 and s2 = ref 0.0 in
  Array.iter
    (fun w ->
      s := !s +. w;
      s2 := !s2 +. (w *. w))
    weights;
  if !s2 = 0.0 then 0.0 else !s *. !s /. !s2

let enrichment_unbiased ?(tolerance_sigmas = 5.0) ~seed ~pilot ~n device
    ~limits =
  let enriched, _stats = Enrich.generate ~seed ~pilot device ~limits ~n in
  (* an independent uniform reference population of the same size *)
  let uniform =
    Montecarlo.generate_parallel ~seed:(seed + 0x2545F491) device ~n
  in
  let y_w = weighted_yield ~limits enriched in
  let y_u = weighted_yield ~limits uniform in
  let n_eff = Stdlib.max 1.0 (effective_sample_size enriched.weights) in
  let se p m = sqrt (Stdlib.max 1e-12 (p *. (1.0 -. p) /. m)) in
  let tol =
    (tolerance_sigmas *. (se y_u (float_of_int n) +. se y_w n_eff)) +. 0.01
  in
  let bad_weight = ref None in
  Array.iteri
    (fun i w ->
      if !bad_weight = None && (not (Float.is_finite w) || w <= 0.0) then
        bad_weight := Some (i, w))
    enriched.weights;
  match !bad_weight with
  | Some (i, w) -> errorf "weight %d is %.17g (not finite positive)" i w
  | None ->
    if Float.abs (y_w -. y_u) > tol then
      errorf
        "weighted yield %.4f vs uniform %.4f differ by %.4f > tolerance %.4f \
         (n_eff %.1f)"
        y_w y_u
        (Float.abs (y_w -. y_u))
        tol n_eff
    else Ok ()

(* -------------------- MLP training determinism -------------------- *)

let mlp_deterministic ?(domain_counts = [ 1; 2; 4 ]) ?config ~seed ~n device
    ~limits =
  let train_once domains =
    let d = Montecarlo.generate_parallel ~domains ~seed device ~n in
    let x = d.Montecarlo.specs in
    let y =
      Array.map
        (fun row -> if passes_limits limits row then 1.0 else -1.0)
        d.Montecarlo.specs
    in
    Mlp.to_string (Mlp.train ?config ~x ~y ())
  in
  match domain_counts with
  | [] -> Ok ()
  | d0 :: rest ->
    let reference = train_once d0 in
    if train_once d0 <> reference then
      errorf "two identical training runs produced different models"
    else begin
      let rec check = function
        | [] -> Ok ()
        | d :: rest ->
          if train_once d <> reference then
            errorf "training on %d domains differs from %d domains" d d0
          else check rest
      in
      check rest
    end

(* ------------------------- promotion gate ------------------------- *)

type promotion = {
  baseline : string;
  candidate : string;
  baseline_dropped : int;
  candidate_dropped : int;
  baseline_escape_pct : float;
  candidate_escape_pct : float;
  baseline_loss_pct : float;
  candidate_loss_pct : float;
}

let learner_promotes ?(slack_pct = 0.0) ?order ~candidate config ~train ~test =
  let run learner =
    let result =
      Compaction.greedy ?order
        { config with Compaction.learner }
        ~train ~test
    in
    let flow = result.Compaction.flow in
    (Array.length flow.Compaction.dropped, Compaction.evaluate_flow flow test)
  in
  let baseline_dropped, base = run config.Compaction.learner in
  let candidate_dropped, cand = run candidate in
  let p =
    {
      baseline = Stc.Learner.name config.Compaction.learner;
      candidate = Stc.Learner.name candidate;
      baseline_dropped;
      candidate_dropped;
      baseline_escape_pct = Stc.Metrics.escape_pct base;
      candidate_escape_pct = Stc.Metrics.escape_pct cand;
      baseline_loss_pct = Stc.Metrics.loss_pct base;
      candidate_loss_pct = Stc.Metrics.loss_pct cand;
    }
  in
  if baseline_dropped > 0 && candidate_dropped = 0 then
    errorf
      "%s compacts nothing where %s drops %d specs — a learner that never \
       accepts a candidate trivially scores zero escape"
      p.candidate p.baseline baseline_dropped
  else if p.candidate_escape_pct > p.baseline_escape_pct +. slack_pct then
    errorf "%s escape %.3f%% exceeds %s escape %.3f%% (+%.3f%% slack)"
      p.candidate p.candidate_escape_pct p.baseline p.baseline_escape_pct
      slack_pct
  else if p.candidate_loss_pct > p.baseline_loss_pct +. slack_pct then
    errorf "%s yield loss %.3f%% exceeds %s yield loss %.3f%% (+%.3f%% slack)"
      p.candidate p.candidate_loss_pct p.baseline p.baseline_loss_pct slack_pct
  else Ok p
