module Spec = Stc.Spec
module Device_data = Stc.Device_data
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Kernel = Stc_svm.Kernel
module Svr = Stc_svm.Svr
module Svc = Stc_svm.Svc
module Mlp = Stc_learn.Mlp
module G = QCheck.Gen

let ( let* ) = G.( >>= )

let state ~seed = Random.State.make [| seed; 0x5743 |]
let run ~seed g = g (state ~seed)

(* ------------------------- specs and rows ------------------------- *)

(* Spaces and '%' exercise Flow_io's field encoding; commas and
   newlines are excluded because Device_csv does not escape them. *)
let field_char =
  G.frequency
    [
      (8, G.char_range 'a' 'z');
      (2, G.char_range 'A' 'Z');
      (2, G.char_range '0' '9');
      (2, G.return ' ');
      (1, G.return '%');
      (1, G.return '/');
      (1, G.return '-');
    ]

let name = G.string_size ~gen:field_char (G.int_range 1 12)
let unit_label = G.string_size ~gen:field_char (G.int_range 0 6)

(* Width >= 1 and |bounds| <= ~25 guarantee that a <= 1 % guard
   perturbation moves each boundary by < 0.5, so tight ranges can never
   collapse (Spec.perturb would raise inside flow_verdict otherwise). *)
let spec =
  let* name = name in
  let* unit_label = unit_label in
  let* center = G.float_range (-20.0) 20.0 in
  let* width = G.float_range 1.0 8.0 in
  let* nominal = G.float_range (center -. (0.25 *. width)) (center +. (0.25 *. width)) in
  G.return
    (Spec.make ~name ~unit_label ~nominal ~lower:(center -. (0.5 *. width))
       ~upper:(center +. (0.5 *. width)))

let specs ?(min_specs = 1) ?(max_specs = 6) () =
  G.array_size (G.int_range min_specs max_specs) spec

let row specs =
  let cell (s : Spec.t) =
    let w = Spec.width s.Spec.range in
    G.float_range (s.Spec.range.Spec.lower -. w) (s.Spec.range.Spec.upper +. w)
  in
  fun st -> Array.map (fun s -> cell s st) specs

let rows specs ~n = G.array_size (G.return n) (row specs)

let device_data ?min_specs ?max_specs ~n () =
  let* sp = specs ?min_specs ?max_specs () in
  let* values = rows sp ~n in
  G.return (Device_data.make ~specs:sp ~values)

(* ------------------------ enrichment devices ---------------------- *)

(* A synthetic analytic device for the enrichment oracles: each spec is
   a linear function of the varied parameters, so the boundary-biased
   sampler's linear surrogate is exact and the uniform-sampling yield
   has a known spread. Limits are placed from the propagated spread so
   the yield lands away from 0 %/100 % (a boundary exists to enrich). *)
let enrich_device =
  let* n_params = G.int_range 2 5 in
  let* n_specs = G.int_range 1 4 in
  let* nominals = G.array_size (G.return n_params) (G.float_range 1.0 10.0) in
  let* coeffs =
    G.array_size (G.return n_specs)
      (G.array_size (G.return n_params)
         (let* mag = G.float_range 0.3 2.0 in
          let* sign = G.bool in
          G.return (if sign then mag else -.mag)))
  in
  let* intercepts = G.array_size (G.return n_specs) (G.float_range (-5.0) 5.0) in
  let* widths =
    G.array_size (G.return n_specs)
      (G.pair (G.float_range 0.8 2.5) (G.float_range 0.8 2.5))
  in
  let* one_sided = G.array_size (G.return n_specs) (G.int_range 0 5) in
  let params =
    Array.mapi
      (fun i v ->
        Stc_process.Variation.uniform_pct (Printf.sprintf "p%d" i) v ~pct:0.10)
      nominals
  in
  let predict k x =
    let acc = ref intercepts.(k) in
    Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) coeffs.(k);
    !acc
  in
  (* uniform on ±10 % of nominal v has sd 0.2·v/√12 *)
  let sigma k =
    sqrt
      (Array.fold_left ( +. ) 0.0
         (Array.mapi
            (fun j c ->
              let s = 0.2 *. nominals.(j) /. sqrt 12.0 in
              c *. s *. (c *. s))
            coeffs.(k)))
  in
  let limits =
    Array.init n_specs (fun k ->
        let mu = predict k nominals and s = sigma k in
        let lo_w, hi_w = widths.(k) in
        (* occasionally one-sided: the sampler must cope with an
           unbounded side contributing an infinite margin *)
        match one_sided.(k) with
        | 0 -> (neg_infinity, mu +. (hi_w *. s))
        | 1 -> (mu -. (lo_w *. s), infinity)
        | _ -> (mu -. (lo_w *. s), mu +. (hi_w *. s)))
  in
  let device =
    {
      Stc_process.Montecarlo.device_name = "qa linear device";
      params;
      spec_count = n_specs;
      simulate = (fun x -> Some (Array.init n_specs (fun k -> predict k x)));
    }
  in
  G.return (device, limits)

(* ----------------------------- models ----------------------------- *)

let kernel =
  let gamma = G.float_range 0.05 4.0 in
  G.frequency
    [
      (2, G.return Kernel.Linear);
      (4, G.map (fun gamma -> Kernel.Rbf { gamma }) gamma);
      ( 1,
        let* gamma = gamma in
        let* coef0 = G.float_range (-1.0) 1.0 in
        let* degree = G.int_range 2 3 in
        G.return (Kernel.Polynomial { gamma; coef0; degree }) );
      ( 1,
        let* gamma = gamma in
        let* coef0 = G.float_range (-1.0) 1.0 in
        G.return (Kernel.Sigmoid { gamma; coef0 }) );
    ]

(* Feature vectors are normalised kept-spec values, mostly in [-1, 2]
   (in-range devices land in [0, 1]); support vectors live there too. *)
let sv_coord = G.float_range (-1.0) 2.0

let raw_parts ~dim =
  let* kernel = kernel in
  let* nsv = G.int_range 1 6 in
  let* sv = G.array_size (G.return nsv) (G.array_size (G.return dim) sv_coord) in
  let* coef =
    G.array_size (G.return nsv)
      (let* mag = G.float_range 0.05 3.0 in
       let* sign = G.bool in
       G.return (if sign then mag else -.mag))
  in
  let* b = G.float_range (-1.5) 1.5 in
  G.return (kernel, sv, coef, b)

let svr ~dim =
  let* kernel, sv, coef, b = raw_parts ~dim in
  G.return (Svr.of_raw { Svr.raw_kernel = kernel; raw_sv = sv; raw_coef = coef; raw_b = b })

let svc ~dim =
  let* kernel, sv, coef, b = raw_parts ~dim in
  G.return (Svc.of_raw { Svc.raw_kernel = kernel; raw_sv = sv; raw_coef = coef; raw_b = b })

(* Two separated blobs with ~10 % label noise, so the SMO solver sees a
   realistic soft-margin problem. The first two points are clean, one
   per class — the solvers reject single-class data. *)
let two_class_points ~dim ~n st =
  let point label =
    let c = if label > 0 then 0.75 else 0.25 in
    Array.init dim (fun _ -> c +. G.float_range (-0.2) 0.2 st)
  in
  let x = Array.make n [||] and y = Array.make n 0 in
  for i = 0 to n - 1 do
    let base = if i mod 2 = 0 then 1 else -1 in
    x.(i) <- point base;
    y.(i) <-
      (if i > 1 && G.float_range 0.0 1.0 st < 0.1 then -base else base)
  done;
  (x, y)

let trained_svc ~dim ~n =
  let* c = G.float_range 0.5 10.0 in
  let* x, y = two_class_points ~dim ~n in
  let* gamma = G.float_range 0.2 2.0 in
  G.return (c, Svc.train ~c ~kernel:(Kernel.rbf gamma) ~x ~y ())

let trained_svr ~dim ~n =
  let* c = G.float_range 0.5 10.0 in
  let* x, y = two_class_points ~dim ~n in
  let* gamma = G.float_range 0.2 2.0 in
  let yf = Array.map float_of_int y in
  G.return (c, Svr.train ~c ~epsilon:0.1 ~kernel:(Kernel.rbf gamma) ~x ~y:yf ())

(* Synthesised raw weights rather than a training run: cheaper, and
   covers weight patterns no SGD trajectory would reach. *)
let mlp ~dim =
  let* hidden = G.int_range 1 4 in
  let row = G.array_size (G.return dim) (G.float_range (-1.5) 1.5) in
  let* raw_hidden_w = G.array_size (G.return hidden) row in
  let* raw_hidden_b =
    G.array_size (G.return hidden) (G.float_range (-0.5) 0.5)
  in
  let* raw_out_w = G.array_size (G.return hidden) (G.float_range (-1.5) 1.5) in
  let* raw_out_b = G.float_range (-0.5) 0.5 in
  G.return
    (Mlp.of_raw { Mlp.raw_hidden_w; raw_hidden_b; raw_out_w; raw_out_b })

let model ~dim =
  G.frequency
    [
      (1, G.map (fun pos -> Guard_band.constant (if pos then 1 else -1)) G.bool);
      (3, G.map (fun m -> Guard_band.Svr m) (svr ~dim));
      (3, G.map (fun m -> Guard_band.Svc m) (svc ~dim));
      (2, G.map (fun m -> Guard_band.Mlp m) (mlp ~dim));
    ]

let band ~dim =
  let* single = G.frequency [ (1, G.return true); (3, G.return false) ] in
  if single then G.map Guard_band.single_model (model ~dim)
  else
    let* tight = model ~dim in
    let* loose = model ~dim in
    G.return (Guard_band.of_models ~tight ~loose)

(* ---------------------------- journals ---------------------------- *)

let fingerprint =
  let hex_char =
    G.frequency [ (10, G.char_range '0' '9'); (6, G.char_range 'a' 'f') ]
  in
  G.string_size ~gen:hex_char (G.return 16)

let journal_entry =
  let* spec_index = G.int_range 0 19 in
  let* accepted = G.bool in
  let* error = G.float_range 0.0 0.5 in
  G.return { Stc.Journal.spec_index; accepted; error }

let journal =
  let* fingerprint = fingerprint in
  let* n = G.int_range 0 8 in
  let* entries = G.array_size (G.return n) journal_entry in
  let* complete = G.bool in
  G.return { Stc.Journal.fingerprint; entries; complete }

(* ------------------------------ flows ----------------------------- *)

let subset ~n =
  (* each index dropped with probability 1/2 — covers empty and total *)
  let* mask = G.array_size (G.return n) G.bool in
  G.return
    (Array.of_list
       (List.filteri (fun i _ -> mask.(i)) (List.init n (fun i -> i))))

let flow =
  let* sp = specs () in
  let n = Array.length sp in
  let* dropped = subset ~n in
  let kept =
    Array.of_list
      (List.filter
         (fun i -> not (Array.mem i dropped))
         (List.init n (fun i -> i)))
  in
  let* guard_fraction = G.frequency [ (1, G.return 0.0); (3, G.float_range 0.001 0.01) ] in
  let* measured_guard = G.bool in
  let* band =
    if Array.length dropped = 0 then G.return None
    else G.map Option.some (band ~dim:(Array.length kept))
  in
  G.return
    {
      Compaction.specs = sp;
      kept;
      dropped;
      band;
      guard_fraction = (if band = None then 0.0 else guard_fraction);
      measured_guard;
    }

let flow_with_rows ~rows_per_flow =
  let* f = flow in
  let* r = rows f.Compaction.specs ~n:rows_per_flow in
  G.return (f, r)

(* --------------------- qcheck arbitraries ------------------------- *)

let print_flow f =
  match Stc_floor.Flow_io.to_string f with
  | Ok text -> text
  | Error e -> Printf.sprintf "<unserialisable flow: %s>" e

let print_rows rows =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat " "
              (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
          rows))

(* Shrink a band model towards Constant 1, via ever fewer support
   vectors: mismatch reports stay small enough to read. *)
let shrink_model m yield =
  match m with
  | Guard_band.Constant 1 -> ()
  | Guard_band.Constant _ -> yield (Guard_band.Constant 1)
  | Guard_band.Opaque _ -> ()
  | Guard_band.Svr m ->
    yield (Guard_band.Constant 1);
    let r = Svr.to_raw m in
    let nsv = Array.length r.Svr.raw_sv in
    if nsv > 1 then
      yield
        (Guard_band.Svr
           (Svr.of_raw
              {
                r with
                Svr.raw_sv = Array.sub r.Svr.raw_sv 0 (nsv / 2);
                raw_coef = Array.sub r.Svr.raw_coef 0 (nsv / 2);
              }))
  | Guard_band.Svc m ->
    yield (Guard_band.Constant 1);
    let r = Svc.to_raw m in
    let nsv = Array.length r.Svc.raw_sv in
    if nsv > 1 then
      yield
        (Guard_band.Svc
           (Svc.of_raw
              {
                r with
                Svc.raw_sv = Array.sub r.Svc.raw_sv 0 (nsv / 2);
                raw_coef = Array.sub r.Svc.raw_coef 0 (nsv / 2);
              }))
  | Guard_band.Mlp m ->
    yield (Guard_band.Constant 1);
    let r = Mlp.to_raw m in
    let h = Array.length r.Mlp.raw_hidden_w in
    if h > 1 then
      yield
        (Guard_band.Mlp
           (Mlp.of_raw
              {
                Mlp.raw_hidden_w = Array.sub r.Mlp.raw_hidden_w 0 (h / 2);
                raw_hidden_b = Array.sub r.Mlp.raw_hidden_b 0 (h / 2);
                raw_out_w = Array.sub r.Mlp.raw_out_w 0 (h / 2);
                raw_out_b = r.Mlp.raw_out_b;
              }))

let shrink_flow (f : Compaction.flow) yield =
  match f.Compaction.band with
  | None -> ()
  | Some band ->
    let tight = Guard_band.tight_model band
    and loose = Guard_band.loose_model band in
    if not (Guard_band.is_single band) then
      yield { f with Compaction.band = Some (Guard_band.single_model tight) };
    shrink_model tight (fun m ->
        yield
          {
            f with
            Compaction.band =
              Some
                (if Guard_band.is_single band then Guard_band.single_model m
                 else Guard_band.of_models ~tight:m ~loose);
          });
    if not (Guard_band.is_single band) then
      shrink_model loose (fun m ->
          yield
            { f with Compaction.band = Some (Guard_band.of_models ~tight ~loose:m) })

let arb_flow = QCheck.make ~print:print_flow ~shrink:shrink_flow flow

let arb_flow_with_rows ~rows_per_flow =
  let print (f, rows) = print_flow f ^ "rows:\n" ^ print_rows rows in
  let shrink (f, rows) yield =
    QCheck.Shrink.array rows (fun rows' -> yield (f, rows'));
    shrink_flow f (fun f' -> yield (f', rows))
  in
  QCheck.make ~print ~shrink (flow_with_rows ~rows_per_flow)
