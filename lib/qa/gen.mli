(** Seeded qcheck generators for every value the compaction → serving
    pipeline consumes: specs and acceptance ranges, device measurement
    rows, raw and trained SVR/SVC models, guard bands, and full
    {!Stc.Compaction.flow} values.

    All generators are plain {!QCheck.Gen.t} values, so the same
    machinery drives qcheck properties (via {!arb_flow} etc.) and the
    standalone {!Selftest} sweep (via {!run} with an explicit seed).

    Invariants guaranteed by construction, so generated values exercise
    the pipeline rather than its argument validation:
    - spec ranges satisfy [lower < upper] with width ≥ 1 and bounded
      magnitude, and guard fractions are ≤ 1 %, so {!Stc.Spec.perturb}
      can never collapse a range;
    - all floats are finite (fault injection, not generation, is where
      NaN/inf enter — see {!Faults});
    - a flow's band models take feature vectors of exactly the kept
      dimensionality, and [band = None] iff nothing was dropped;
    - spec names avoid commas and newlines (the CSV interchange format
      does not escape them) but do contain spaces and percent signs to
      exercise {!Stc_floor.Flow_io}'s field encoding. *)

val run : seed:int -> 'a QCheck.Gen.t -> 'a
(** Draw one value deterministically from a seed. *)

val state : seed:int -> Random.State.t
(** The qcheck random state for a seed — pass to repeated [Gen] calls
    when a whole sweep must replay from one seed. *)

(* ------------------------- specs and rows ------------------------- *)

val spec : Stc.Spec.t QCheck.Gen.t

val specs : ?min_specs:int -> ?max_specs:int -> unit ->
  Stc.Spec.t array QCheck.Gen.t
(** Defaults: 1 to 6 specs. *)

val row : Stc.Spec.t array -> float array QCheck.Gen.t
(** One device: each cell lands in the spec's range widened by one
    range-width, so pass, fail and near-boundary cells all occur. *)

val rows : Stc.Spec.t array -> n:int -> float array array QCheck.Gen.t

val device_data : ?min_specs:int -> ?max_specs:int -> n:int -> unit ->
  Stc.Device_data.t QCheck.Gen.t

(* ------------------------ enrichment devices ---------------------- *)

val enrich_device :
  (Stc_process.Montecarlo.device * (float * float) array) QCheck.Gen.t
(** A pure analytic device (2–5 varied parameters, 1–4 specs that are
    linear in the parameters, never a failed simulation) together with
    acceptance limits placed a random 0.8–2.5 propagated sigmas from
    the nominal response — occasionally one-sided — so the uniform
    yield sits away from 0 %/100 % and a boundary exists for
    {!Stc_process.Enrich} to enrich. *)

(* ----------------------------- models ----------------------------- *)

val kernel : Stc_svm.Kernel.t QCheck.Gen.t
(** Any of the four kernel families, with finite positive [gamma]. *)

val svr : dim:int -> Stc_svm.Svr.model QCheck.Gen.t
(** A structurally valid model built through {!Stc_svm.Svr.of_raw}
    (1–6 support vectors), cheap enough to generate by the thousand.
    Use {!trained_svr} when solver output is required. *)

val svc : dim:int -> Stc_svm.Svc.model QCheck.Gen.t

val trained_svr : dim:int -> n:int ->
  (float * Stc_svm.Svr.model) QCheck.Gen.t
(** Actually runs the SMO solver on a generated two-class dataset of
    [n] points; returns the box constraint [c] used, for dual-feasibility
    checks ({!Oracle.svr_dual_feasible}). *)

val trained_svc : dim:int -> n:int ->
  (float * Stc_svm.Svc.model) QCheck.Gen.t

val mlp : dim:int -> Stc_learn.Mlp.model QCheck.Gen.t
(** Structurally valid raw weights (1–4 hidden units) through
    {!Stc_learn.Mlp.of_raw} — no SGD run, so weight patterns no
    training trajectory reaches are covered too. *)

val model : dim:int -> Stc.Guard_band.model QCheck.Gen.t
(** [Constant], [Svr], [Svc] or [Mlp]; never [Opaque] (those cannot be
    serialised, and the serialisable subset is what the floor ships). *)

val band : dim:int -> Stc.Guard_band.t QCheck.Gen.t
(** Single-model or tight/loose pair. *)

(* ---------------------------- journals ---------------------------- *)

val fingerprint : string QCheck.Gen.t
(** 16 lowercase hex digits — the shape {!Stc.Journal} requires. *)

val journal_entry : Stc.Journal.entry QCheck.Gen.t
(** Finite error in [0, 0.5], spec index in [0, 19]. *)

val journal : Stc.Journal.replay QCheck.Gen.t
(** 0–8 entries, complete or interrupted — both legal on-disk shapes
    of a journal. *)

(* ------------------------------ flows ----------------------------- *)

val flow : Stc.Compaction.flow QCheck.Gen.t
(** A full serialisable flow: generated specs, a random (possibly
    empty, possibly total) dropped subset, a band of matching
    dimensionality iff the dropped set is non-empty, guard fraction in
    [0, 0.01], random [measured_guard]. *)

val flow_with_rows : rows_per_flow:int ->
  (Stc.Compaction.flow * float array array) QCheck.Gen.t

(* --------------------- qcheck arbitraries ------------------------- *)

val arb_flow : Stc.Compaction.flow QCheck.arbitrary
(** Prints through {!Stc_floor.Flow_io.to_string}; shrinks by
    simplifying band models (drop support vectors, collapse a side to
    [Constant 1]) so failing flows minimise to readable ones. *)

val arb_flow_with_rows : rows_per_flow:int ->
  (Stc.Compaction.flow * float array array) QCheck.arbitrary
(** Shrinks the device rows (fewer rows first, then the flow's band) —
    the shape oracle counterexamples shrink along. *)
