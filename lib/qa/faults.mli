(** Deterministic fault injection for the compaction → serving stack.

    Three fault surfaces, each driven by an explicit {!Stc_numerics.Rng}
    seed so every failure replays:
    - serialized flows: truncation, byte mutation, line deletion or
      duplication, version skew;
    - device rows: NaN / ±inf cells, empty and ragged rows, both as raw
      arrays fed to {!Stc_floor.Floor} and as CSV text fed to
      {!Stc_floor.Device_csv};
    - pool workers: tasks that raise mid-job or stall, submitted to
      {!Stc_process.Pool}.

    Every check asserts the contract the stack must keep under attack:
    a typed [Error _] / documented [Invalid_argument], or graceful
    degradation (deterministic verdicts, a reusable pool) — never an
    uncaught exception out of the public API. Checks return
    [(unit, string) result] so they compose with {!Oracle} checks in
    qcheck properties and {!Selftest}. *)

module Rng = Stc_numerics.Rng

(* ------------------------- corrupted flows ------------------------ *)

type flow_fault =
  | Truncate of int        (** keep only the first [n] bytes *)
  | Mutate_byte of int * char  (** overwrite byte [i] *)
  | Delete_line of int
  | Duplicate_line of int
  | Version_skew of string (** replace the header line *)

val describe_flow_fault : flow_fault -> string

val apply_flow_fault : flow_fault -> string -> string

val random_flow_fault : Rng.t -> string -> flow_fault
(** A fault valid for the given serialized text (offsets in range). *)

val check_flow_corruption :
  Rng.t -> trials:int -> Stc.Compaction.flow -> (int * int, string) result
(** Applies [trials] random faults to the flow's serialized form and
    feeds each to {!Stc_floor.Flow_io.of_string}. Every outcome must be
    a typed [Error] (counted first) or — when the mutation happens to
    leave a well-formed file — an [Ok] flow that re-serialises
    canonically (counted second). Any raised exception, or an accepted
    flow that fails the canonicality law, fails the check. *)

val check_version_skew : Stc.Compaction.flow -> (unit, string) result
(** A future version header must be rejected with an error that names
    the unsupported version, and a truncated file with one that says
    the file is truncated. *)

val random_journal_fault : Rng.t -> string -> flow_fault
(** As {!random_flow_fault}, with journal version strings — journals
    share the line-oriented text shape, so the fault algebra is the
    same. *)

val check_journal_corruption :
  Rng.t -> trials:int -> Stc.Journal.replay -> (int * int, string) result
(** Applies [trials] random faults to the journal's serialized form and
    feeds each to {!Stc.Journal.of_string}: typed [Error] (counted
    first) or a canonically re-serialising [Ok] (counted second; cuts
    at record boundaries are legal crash artefacts and land here) —
    never an exception. *)

val check_journal_truncation : unit -> (unit, string) result
(** The journal loader's contract at its edges, on a fixed 3-entry
    journal: a future version header is rejected naming the version; a
    cut at a record boundary loads as an incomplete run; a cut inside a
    record and an out-of-order step sequence are rejected with line
    numbers. *)

(* --------------------------- device rows -------------------------- *)

type row_fault =
  | Nan_cell of int
  | Pos_inf_cell of int
  | Neg_inf_cell of int
  | Empty_row
  | Ragged of int  (** resize the row to [n] cells *)

val describe_row_fault : row_fault -> string

val apply_row_fault : row_fault -> float array -> float array

val random_row_fault : Rng.t -> width:int -> row_fault

val check_csv_rejects_bad_rows :
  Rng.t -> trials:int -> specs:Stc.Spec.t array -> rows:float array array ->
  (unit, string) result
(** Hand-writes CSV text containing faulted rows;
    {!Stc_floor.Device_csv.read} must return a typed [Error] naming the
    offending line for every non-finite, ragged, or non-numeric row
    (empty rows are documented to be skipped as blank lines). *)

val check_floor_bad_rows :
  Rng.t -> trials:int -> Stc.Compaction.flow -> (unit, string) result
(** Feeds faulted rows straight to {!Stc_floor.Floor.process}: width
    mismatches must raise [Invalid_argument] (the documented typed
    error); non-finite cells must either be rejected by
    [~strict:true] or, by default, degrade to a deterministic verdict —
    the same verdict on every repeat, equal to the reference binner's. *)

(* --------------------------- pool workers ------------------------- *)

val check_pool_worker_failure : domains:int -> (unit, string) result
(** A task raising mid-job must surface as that exception (not a hang,
    not a crash of the helper domain), the remaining tasks must drain,
    and the same pool must then run a clean job of a different shape to
    completion. *)

val check_pool_worker_delay : domains:int -> delay_s:float -> (unit, string) result
(** A stalling task must not lose or duplicate work: every task still
    runs exactly once and the pool stays reusable. *)

val check_pool_misuse : unit -> (unit, string) result
(** Zero-task jobs are no-ops; [run] after [shutdown] and invalid
    domain counts raise [Invalid_argument]; [shutdown] is idempotent. *)

val check_pool_deadline : domains:int -> (unit, string) result
(** The supervision contract of [Pool.run ~deadline_s]: an in-time
    supervised job runs every task exactly once; a job with a stalled
    (1.5 s sleeping) task raises [Pool.Timeout] long before the stall
    clears; the timeout and the respawned worker show in [Pool.stats];
    and the same pool then runs both a plain and a supervised job to
    completion while the abandoned domain is still asleep. *)

(* ------------------------ degraded serving ------------------------ *)

val check_floor_flaky_retest : fail_first:int -> (unit, string) result
(** A retest callback that raises on its first [fail_first] calls and
    then succeeds: with a retry budget of [fail_first + 2] the device
    must ship, [stats.retries] must equal [fail_first], and the engine
    must not be degraded. *)

val check_floor_degraded : classify_permanent:bool -> (unit, string) result
(** A retest callback that always raises: every guard device is binned
    [Retest] (none dropped), counted [degraded], the engine latches
    degraded mode with positive throughput, later batches shed without
    calling the dead station, and [reset_stats] restores normal
    operation with zeroed counters. With [classify_permanent] the
    policy stops at the first attempt (no retries); otherwise the
    transient budget is exhausted first. *)

val check_floor_batch_deadline : unit -> (unit, string) result
(** A slow (30 ms) but healthy retest against a 50 ms batch deadline:
    early devices ship, devices past the deadline are shed as
    [degraded], nothing is dropped, and the deadline does not latch
    degraded mode. *)
