module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Protocol = Stc_net.Protocol
module Registry = Stc_net.Registry
module Server = Stc_net.Server
module Client = Stc_net.Client

let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f ()

(* what the server must reproduce bit-identically: the offline engine
   with the server's default escalation (full test on guard rows) *)
let offline_reference flow rows =
  Floor.with_engine flow (fun engine ->
      Floor.process ~retest:(Floor.full_test flow) engine rows)

let same_outcomes ~what reference got =
  if Array.length got <> Array.length reference then
    Error
      (Printf.sprintf "%s: %d replies for %d rows" what (Array.length got)
         (Array.length reference))
  else begin
    let mismatch = ref None in
    Array.iteri
      (fun i (o : Floor.outcome) ->
        if !mismatch = None && o <> reference.(i) then
          mismatch :=
            Some
              (Printf.sprintf "%s: row %d got %S, reference %S" what i
                 (Protocol.format_outcome o)
                 (Protocol.format_outcome reference.(i))))
      got;
    match !mismatch with None -> Ok () | Some e -> Error e
  end

let flow_route = "dut"

let with_loopback_server flow f =
  let registry = Registry.create () in
  match Registry.add registry ~name:flow_route flow with
  | Error e -> Error ("registry add: " ^ e)
  | Ok entry ->
    Fun.protect
      ~finally:(fun () -> Registry.shutdown registry)
      (fun () ->
        let config =
          { Server.default_config with Server.flush_deadline_s = 0.02 }
        in
        Server.with_server ~config registry (fun server ->
            f ~port:(Server.port server) ~registry ~entry))

let connect_raw port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let send_all fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* one byte per syscall: the framing layer must reassemble the frame *)
let dribble fd s =
  String.iter (fun c -> send_all fd (String.make 1 c)) s

let expect_prefix ~what prefix line =
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Ok ()
  else Error (Printf.sprintf "%s: expected %S..., got %S" what prefix line)

let fresh_client_matches ~what ~port flow rows reference =
  let c = Client.connect ~port () in
  Fun.protect
    ~finally:(fun () -> Client.quit c)
    (fun () ->
      match Client.bin_batch c ~flow rows with
      | Error e -> Error (Printf.sprintf "%s: fresh client: %s" what e)
      | Ok got -> same_outcomes ~what reference got)

let check_torn_frames (flow, rows) =
  let reference = offline_reference flow rows in
  with_loopback_server flow @@ fun ~port ~registry:_ ~entry:_ ->
  let fd = connect_raw port in
  let ic = Unix.in_channel_of_descr fd in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  dribble fd "PING\n";
  let* () = expect_prefix ~what:"dribbled PING" "OK pong" (input_line ic) in
  send_all fd "XYZZY definitely not a request\n";
  let* () =
    expect_prefix ~what:"garbage verb" "ERR bad-request" (input_line ic)
  in
  (* the abused connection must still work... *)
  dribble fd "PING\n";
  let* () = expect_prefix ~what:"PING after garbage" "OK pong" (input_line ic) in
  (* ...and a frame torn by a disconnect must only kill its own
     connection *)
  let torn = connect_raw port in
  send_all torn ("BIN " ^ flow_route ^ " 1.5,2.5");
  Unix.close torn;
  fresh_client_matches ~what:"after torn frame" ~port flow_route rows reference

let check_mid_batch_disconnect (flow, rows) =
  let n = Array.length rows in
  if n < 2 then Ok ()
  else begin
    let reference = offline_reference flow rows in
    with_loopback_server flow @@ fun ~port ~registry:_ ~entry:_ ->
    let fd = connect_raw port in
    send_all fd (Printf.sprintf "BATCH %s %d\n" flow_route n);
    for i = 0 to (n / 2) - 1 do
      send_all fd (Protocol.format_row rows.(i) ^ "\n")
    done;
    Unix.close fd;
    fresh_client_matches ~what:"after mid-batch disconnect" ~port flow_route
      rows reference
  end

(* The SIGPIPE regression: a client that sends a full batch plus a tail
   of PINGs and closes without reading a single reply. SO_LINGER 0
   turns the close into an immediate RST, so the handler's replies meet
   a dead socket deterministically — which, before SIGPIPE was ignored
   at server startup, raised the default-fatal signal and killed the
   whole process instead of the EPIPE that [write_all] maps to a
   per-connection teardown. *)
let check_write_after_close (flow, rows) =
  let n = Array.length rows in
  if n = 0 then Ok ()
  else begin
    let reference = offline_reference flow rows in
    with_loopback_server flow @@ fun ~port ~registry:_ ~entry:_ ->
    let fd = connect_raw port in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "BATCH %s %d\n" flow_route n);
    Array.iter
      (fun r -> Buffer.add_string buf (Protocol.format_row r ^ "\n"))
      rows;
    for _ = 1 to 32 do
      Buffer.add_string buf "PING\n"
    done;
    send_all fd (Buffer.contents buf);
    Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
    Unix.close fd;
    (* let the handler chew through its replies into the dead socket *)
    Thread.delay 0.05;
    fresh_client_matches ~what:"after write-after-close" ~port flow_route rows
      reference
  end

let check_reload_inflight (flow, rows) =
  let reference = offline_reference flow rows in
  let path = Filename.temp_file "stc_qa_net" ".flow" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Flow_io.save ~path flow with
      | Error e -> Error ("save flow: " ^ e)
      | Ok () ->
        with_loopback_server flow @@ fun ~port ~registry ~entry ->
        let iters = 4 in
        let client_errors = ref [] in
        let finished = Atomic.make false in
        let client_thread =
          Thread.create
            (fun () ->
              Fun.protect
                ~finally:(fun () -> Atomic.set finished true)
                (fun () ->
                  let c = Client.connect ~port () in
                  Fun.protect
                    ~finally:(fun () -> Client.quit c)
                    (fun () ->
                      for iter = 1 to iters do
                        match Client.bin_batch c ~flow:flow_route rows with
                        | Error e ->
                          client_errors :=
                            Printf.sprintf "iteration %d: %s" iter e
                            :: !client_errors
                        | Ok got -> (
                          match
                            same_outcomes
                              ~what:(Printf.sprintf "iteration %d" iter)
                              reference got
                          with
                          | Ok () -> ()
                          | Error e -> client_errors := e :: !client_errors)
                      done)))
            ()
        in
        (* hammer forced swaps of a semantically identical flow while
           the client streams: the drain must keep every batch on one
           engine *)
        let reloads = ref 0 in
        let reload_failure = ref None in
        while not (Atomic.get finished) && !reload_failure = None do
          (match Registry.reload ~force:true ~path registry ~name:flow_route with
           | Ok (`Reloaded _) -> incr reloads
           | Ok (`Unchanged _) ->
             reload_failure := Some "forced reload reported `Unchanged"
           | Error e -> reload_failure := Some ("reload: " ^ e));
          Thread.delay 0.001
        done;
        Thread.join client_thread;
        let* () =
          match !reload_failure with None -> Ok () | Some e -> Error e
        in
        let* () =
          match !client_errors with
          | [] -> Ok ()
          | e :: _ -> Error ("under reload: " ^ e)
        in
        let version = (Registry.status entry).Registry.version in
        if version <> 1 + !reloads then
          Error
            (Printf.sprintf "version %d after %d forced reloads (expected %d)"
               version !reloads (1 + !reloads))
        else if !reloads = 0 then
          Error "no reload completed while the client streamed"
        else Ok ())
