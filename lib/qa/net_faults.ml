module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Protocol = Stc_net.Protocol
module Registry = Stc_net.Registry
module Server = Stc_net.Server
module Client = Stc_net.Client

let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f ()

(* what the server must reproduce bit-identically: the offline engine
   with the server's default escalation (full test on guard rows) *)
let offline_reference flow rows =
  Floor.with_engine flow (fun engine ->
      Floor.process ~retest:(Floor.full_test flow) engine rows)

let same_outcomes ~what reference got =
  if Array.length got <> Array.length reference then
    Error
      (Printf.sprintf "%s: %d replies for %d rows" what (Array.length got)
         (Array.length reference))
  else begin
    let mismatch = ref None in
    Array.iteri
      (fun i (o : Floor.outcome) ->
        if !mismatch = None && o <> reference.(i) then
          mismatch :=
            Some
              (Printf.sprintf "%s: row %d got %S, reference %S" what i
                 (Protocol.format_outcome o)
                 (Protocol.format_outcome reference.(i))))
      got;
    match !mismatch with None -> Ok () | Some e -> Error e
  end

let flow_route = "dut"

let default_loopback_config =
  { Server.default_config with Server.flush_deadline_s = 0.02 }

let with_loopback_server ?(config = default_loopback_config) ?breaker flow f =
  let registry = Registry.create ?breaker () in
  match Registry.add registry ~name:flow_route flow with
  | Error e -> Error ("registry add: " ^ e)
  | Ok entry ->
    Fun.protect
      ~finally:(fun () -> Registry.shutdown registry)
      (fun () ->
        Server.with_server ~config registry (fun server ->
            f ~port:(Server.port server) ~registry ~entry))

(* the process-global metrics registry: checks assert deltas, never
   absolute values, because earlier checks in the same process also
   bump these counters *)
let counter_value name =
  let text = Stc_obs.Registry.to_text () in
  let value = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.split_on_char ' ' line with
         | [ "counter"; n; v ] when n = name ->
           (match int_of_string_opt v with Some v -> value := v | None -> ())
         | _ -> ());
  !value

let await ~what ~timeout_s pred =
  let deadline = Stc_obs.Clock.now () +. timeout_s in
  let rec go () =
    if pred () then Ok ()
    else if Stc_obs.Clock.now () >= deadline then
      Error (Printf.sprintf "%s: not observed within %gs" what timeout_s)
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let connect_raw port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let send_all fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* one byte per syscall: the framing layer must reassemble the frame *)
let dribble fd s =
  String.iter (fun c -> send_all fd (String.make 1 c)) s

let expect_prefix ~what prefix line =
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Ok ()
  else Error (Printf.sprintf "%s: expected %S..., got %S" what prefix line)

let fresh_client_matches ~what ~port flow rows reference =
  let c = Client.connect ~port () in
  Fun.protect
    ~finally:(fun () -> Client.quit c)
    (fun () ->
      match Client.bin_batch c ~flow rows with
      | Error e -> Error (Printf.sprintf "%s: fresh client: %s" what e)
      | Ok got -> same_outcomes ~what reference got)

let check_torn_frames (flow, rows) =
  let reference = offline_reference flow rows in
  with_loopback_server flow @@ fun ~port ~registry:_ ~entry:_ ->
  let fd = connect_raw port in
  let ic = Unix.in_channel_of_descr fd in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  dribble fd "PING\n";
  let* () = expect_prefix ~what:"dribbled PING" "OK pong" (input_line ic) in
  send_all fd "XYZZY definitely not a request\n";
  let* () =
    expect_prefix ~what:"garbage verb" "ERR bad-request" (input_line ic)
  in
  (* the abused connection must still work... *)
  dribble fd "PING\n";
  let* () = expect_prefix ~what:"PING after garbage" "OK pong" (input_line ic) in
  (* ...and a frame torn by a disconnect must only kill its own
     connection *)
  let torn = connect_raw port in
  send_all torn ("BIN " ^ flow_route ^ " 1.5,2.5");
  Unix.close torn;
  fresh_client_matches ~what:"after torn frame" ~port flow_route rows reference

let check_mid_batch_disconnect (flow, rows) =
  let n = Array.length rows in
  if n < 2 then Ok ()
  else begin
    let reference = offline_reference flow rows in
    with_loopback_server flow @@ fun ~port ~registry:_ ~entry:_ ->
    let fd = connect_raw port in
    send_all fd (Printf.sprintf "BATCH %s %d\n" flow_route n);
    for i = 0 to (n / 2) - 1 do
      send_all fd (Protocol.format_row rows.(i) ^ "\n")
    done;
    Unix.close fd;
    fresh_client_matches ~what:"after mid-batch disconnect" ~port flow_route
      rows reference
  end

(* The SIGPIPE regression: a client that sends a full batch plus a tail
   of PINGs and closes without reading a single reply. SO_LINGER 0
   turns the close into an immediate RST, so the handler's replies meet
   a dead socket deterministically — which, before SIGPIPE was ignored
   at server startup, raised the default-fatal signal and killed the
   whole process instead of the EPIPE that [write_all] maps to a
   per-connection teardown. *)
let check_write_after_close (flow, rows) =
  let n = Array.length rows in
  if n = 0 then Ok ()
  else begin
    let reference = offline_reference flow rows in
    with_loopback_server flow @@ fun ~port ~registry:_ ~entry:_ ->
    let fd = connect_raw port in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "BATCH %s %d\n" flow_route n);
    Array.iter
      (fun r -> Buffer.add_string buf (Protocol.format_row r ^ "\n"))
      rows;
    for _ = 1 to 32 do
      Buffer.add_string buf "PING\n"
    done;
    send_all fd (Buffer.contents buf);
    Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
    Unix.close fd;
    (* let the handler chew through its replies into the dead socket *)
    Thread.delay 0.05;
    fresh_client_matches ~what:"after write-after-close" ~port flow_route rows
      reference
  end

let check_reload_inflight (flow, rows) =
  let reference = offline_reference flow rows in
  let path = Filename.temp_file "stc_qa_net" ".flow" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Flow_io.save ~path flow with
      | Error e -> Error ("save flow: " ^ e)
      | Ok () ->
        with_loopback_server flow @@ fun ~port ~registry ~entry ->
        let iters = 4 in
        let client_errors = ref [] in
        let finished = Atomic.make false in
        let client_thread =
          Thread.create
            (fun () ->
              Fun.protect
                ~finally:(fun () -> Atomic.set finished true)
                (fun () ->
                  let c = Client.connect ~port () in
                  Fun.protect
                    ~finally:(fun () -> Client.quit c)
                    (fun () ->
                      for iter = 1 to iters do
                        match Client.bin_batch c ~flow:flow_route rows with
                        | Error e ->
                          client_errors :=
                            Printf.sprintf "iteration %d: %s" iter e
                            :: !client_errors
                        | Ok got -> (
                          match
                            same_outcomes
                              ~what:(Printf.sprintf "iteration %d" iter)
                              reference got
                          with
                          | Ok () -> ()
                          | Error e -> client_errors := e :: !client_errors)
                      done)))
            ()
        in
        (* hammer forced swaps of a semantically identical flow while
           the client streams: the drain must keep every batch on one
           engine *)
        let reloads = ref 0 in
        let reload_failure = ref None in
        while not (Atomic.get finished) && !reload_failure = None do
          (match Registry.reload ~force:true ~path registry ~name:flow_route with
           | Ok (`Reloaded _) -> incr reloads
           | Ok (`Unchanged _) ->
             reload_failure := Some "forced reload reported `Unchanged"
           | Error e -> reload_failure := Some ("reload: " ^ e));
          Thread.delay 0.001
        done;
        Thread.join client_thread;
        let* () =
          match !reload_failure with None -> Ok () | Some e -> Error e
        in
        let* () =
          match !client_errors with
          | [] -> Ok ()
          | e :: _ -> Error ("under reload: " ^ e)
        in
        let version = (Registry.status entry).Registry.version in
        if version <> 1 + !reloads then
          Error
            (Printf.sprintf "version %d after %d forced reloads (expected %d)"
               version !reloads (1 + !reloads))
        else if !reloads = 0 then
          Error "no reload completed while the client streamed"
        else Ok ())

(* ------------------------------ chaos ----------------------------- *)

(* [send_all] is fine for the small frames above; the chaos attackers
   push hundreds of kilobytes and must survive partial writes *)
let send_string fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write_substring fd s !pos (n - !pos) with
    | written -> pos := !pos + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* drain one connection to EOF, returning the lines seen (bounded) *)
let read_until_eof ?(max_lines = 64) ic =
  let lines = ref [] in
  (try
     for _ = 1 to max_lines do
       lines := input_line ic :: !lines
     done
   with End_of_file | Sys_error _ -> ());
  List.rev !lines

let check_slow_loris (flow, rows) =
  let reference = offline_reference flow rows in
  let config =
    { default_loopback_config with Server.idle_timeout_s = 0.25 }
  in
  with_loopback_server ~config flow @@ fun ~port ~registry:_ ~entry:_ ->
  let reaped0 = counter_value "stc_net_idle_reaped_total" in
  (* a classic slow loris: open, trickle a partial frame, go silent *)
  let fd = connect_raw port in
  let ic = Unix.in_channel_of_descr fd in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  send_all fd "PIN";  (* never finished *)
  let* () =
    await ~what:"idle reap counter" ~timeout_s:5.0 (fun () ->
        counter_value "stc_net_idle_reaped_total" > reaped0)
  in
  (* the server must have told us why and closed the stream *)
  let lines = read_until_eof ic in
  let* () =
    match lines with
    | line :: _ -> expect_prefix ~what:"slow-loris reply" "ERR idle-timeout" line
    | [] -> Error "slow-loris: connection closed without an ERR idle-timeout"
  in
  (* ...while a live client on the same server is untouched *)
  fresh_client_matches ~what:"after slow-loris reap" ~port flow_route rows
    reference

let check_reply_ignorer (flow, rows) =
  let n = Array.length rows in
  if n = 0 then Ok ()
  else begin
    let reference = offline_reference flow rows in
    let count = 16384 in
    let config =
      {
        default_loopback_config with
        Server.write_timeout_s = 0.25;
        max_pending = count;
        (* shrink the server's send buffer so the unread replies fill
           it in kilobytes, not megabytes *)
        sndbuf_bytes = Some 4096;
      }
    in
    with_loopback_server ~config flow @@ fun ~port ~registry:_ ~entry:_ ->
    let timeouts0 = counter_value "stc_net_write_timeouts_total" in
    let fd = connect_raw port in
    (* a tiny receive window: the attacker's kernel stops ACKing new
       reply bytes almost immediately *)
    (try Unix.setsockopt_int fd Unix.SO_RCVBUF 4096
     with Unix.Unix_error _ -> ());
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let buf = Buffer.create (count * 32) in
    Buffer.add_string buf (Printf.sprintf "BATCH %s %d\n" flow_route count);
    for i = 0 to count - 1 do
      Buffer.add_string buf (Protocol.format_row rows.(i mod n) ^ "\n")
    done;
    send_string fd (Buffer.contents buf);
    (* ...and never read a single reply byte *)
    let* () =
      await ~what:"write timeout counter" ~timeout_s:10.0 (fun () ->
          counter_value "stc_net_write_timeouts_total" > timeouts0)
    in
    fresh_client_matches ~what:"after reply-ignoring client" ~port flow_route
      rows reference
  end

let check_connection_flood (flow, rows) =
  let reference = offline_reference flow rows in
  let max_conns = 8 in
  let flood = 4 * max_conns in
  let config =
    { default_loopback_config with Server.max_connections = max_conns }
  in
  with_loopback_server ~config flow @@ fun ~port ~registry:_ ~entry:_ ->
  let shed0 = counter_value "stc_net_shed_total" in
  let fds = Array.init flood (fun _ -> connect_raw port) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        fds)
  @@ fun () ->
  (* every connection asks for proof of life; the admitted ones get
     [OK pong], the shed ones one [ERR busy] line and a clean close *)
  Array.iter (fun fd -> send_all fd "PING\n") fds;
  let admitted = ref 0 and shed = ref 0 and odd = ref [] in
  Array.iter
    (fun fd ->
      let ic = Unix.in_channel_of_descr fd in
      match input_line ic with
      | line when String.length line >= 2 && String.sub line 0 2 = "OK" ->
        incr admitted
      | line when String.length line >= 8 && String.sub line 0 8 = "ERR busy"
        ->
        incr shed
      | line -> odd := line :: !odd
      | exception (End_of_file | Sys_error _) ->
        odd := "<closed without a reply line>" :: !odd)
    fds;
  let* () =
    match !odd with
    | [] -> Ok ()
    | line :: _ ->
      Error (Printf.sprintf "flood: unexpected first reply %S" line)
  in
  let* () =
    if !admitted = max_conns && !shed = flood - max_conns then Ok ()
    else
      Error
        (Printf.sprintf
           "flood of %d against max-conns %d: %d admitted, %d shed" flood
           max_conns !admitted !shed)
  in
  let* () =
    if counter_value "stc_net_shed_total" - shed0 >= flood - max_conns then
      Ok ()
    else Error "flood: stc_net_shed_total did not count the shed connections"
  in
  (* free the slots, then the server must serve untouched *)
  Array.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  let* () =
    await ~what:"flood slots released" ~timeout_s:5.0 (fun () ->
        match
          let c = Client.connect ~port () in
          Fun.protect ~finally:(fun () -> Client.quit c) (fun () ->
              Client.ping c)
        with
        | Ok () -> true
        | Error _ -> false
        | exception _ -> false)
  in
  fresh_client_matches ~what:"after connection flood" ~port flow_route rows
    reference

(* the breaker contract, end to end over the wire: repeated engine
   crashes degrade the flow to RETEST verdicts instead of killing
   connections, HEALTH tracks closed -> open -> closed, and after the
   cooldown the auto-recycled engine serves bit-identical verdicts *)
let check_breaker_cycle (flow, rows) =
  let n = Array.length rows in
  if n = 0 then Ok ()
  else begin
    let reference = offline_reference flow rows in
    let all_retest got =
      if
        Array.for_all
          (fun (o : Floor.outcome) ->
            o.Floor.bin = Stc.Tester.Retest
            && o.Floor.verdict = Stc.Guard_band.Guard)
          got
      then Ok ()
      else Error "breaker: a crashed batch leaked a non-RETEST verdict"
    in
    let contains ~needle hay =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        if i + nn > nh then false
        else String.sub hay i nn = needle || go (i + 1)
      in
      nn = 0 || go 0
    in
    let breaker =
      {
        Registry.failure_threshold = 2;
        cooldown_s = 1.0;
        cooldown_backoff = 1.0;
        max_cooldown_s = 1.0;
      }
    in
    with_loopback_server ~breaker flow @@ fun ~port ~registry:_ ~entry ->
    let c = Client.connect ~port () in
    Fun.protect ~finally:(fun () -> Client.quit c) @@ fun () ->
    let health_is ~what state =
      match Client.health c ~flow:flow_route () with
      | Error e -> Error (Printf.sprintf "%s: HEALTH: %s" what e)
      | Ok detail ->
        let want = Printf.sprintf "breaker %s" state in
        if contains ~needle:(want ^ " ") (detail ^ " ") then Ok ()
        else
          Error
            (Printf.sprintf "%s: HEALTH says %S, expected %S" what detail want)
    in
    let batch what =
      match Client.bin_batch c ~flow:flow_route rows with
      | Error e -> Error (Printf.sprintf "%s: %s" what e)
      | Ok got -> Ok got
    in
    (* healthy serving first *)
    let* () = health_is ~what:"before faults" "closed" in
    let* () =
      match batch "healthy batch" with
      | Error _ as e -> e
      | Ok got -> same_outcomes ~what:"healthy batch" reference got
    in
    (* two consecutive crashes trip the threshold-2 breaker; both
       batches are still answered, row for row, as RETEST *)
    Registry.inject_engine_faults entry 2;
    let* () =
      match batch "first crash" with Error _ as e -> e | Ok got -> all_retest got
    in
    let* () =
      match batch "second crash" with
      | Error _ as e -> e
      | Ok got -> all_retest got
    in
    let* () = health_is ~what:"after tripping" "open" in
    (* while open the engine is not even asked *)
    let* () =
      match batch "while open" with Error _ as e -> e | Ok got -> all_retest got
    in
    (* cooldown passes; the half-open probe meets a healthy engine,
       closes the breaker, and the verdicts are bit-identical again *)
    Thread.delay 1.2;
    let* () =
      match batch "half-open probe" with
      | Error _ as e -> e
      | Ok got -> same_outcomes ~what:"half-open probe" reference got
    in
    let* () = health_is ~what:"after recovery" "closed" in
    if (Registry.status entry).Registry.breaker_trips < 1 then
      Error "breaker: status never recorded a trip"
    else Ok ()
  end
