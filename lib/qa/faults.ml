module Spec = Stc.Spec
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Pool = Stc_process.Pool
module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Device_csv = Stc_floor.Device_csv
module Rng = Stc_numerics.Rng

let errorf fmt = Printf.ksprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------- corrupted flows ------------------------ *)

type flow_fault =
  | Truncate of int
  | Mutate_byte of int * char
  | Delete_line of int
  | Duplicate_line of int
  | Version_skew of string

let describe_flow_fault = function
  | Truncate n -> Printf.sprintf "truncate to %d bytes" n
  | Mutate_byte (i, c) -> Printf.sprintf "overwrite byte %d with %C" i c
  | Delete_line i -> Printf.sprintf "delete line %d" i
  | Duplicate_line i -> Printf.sprintf "duplicate line %d" i
  | Version_skew v -> Printf.sprintf "rewrite header to %S" v

let split_lines text = String.split_on_char '\n' text

let join_lines lines = String.concat "\n" lines

let apply_flow_fault fault text =
  match fault with
  | Truncate n -> String.sub text 0 (Stdlib.min n (String.length text))
  | Mutate_byte (i, c) ->
    if i >= String.length text then text
    else begin
      let b = Bytes.of_string text in
      Bytes.set b i c;
      Bytes.to_string b
    end
  | Delete_line i ->
    join_lines (List.filteri (fun j _ -> j <> i) (split_lines text))
  | Duplicate_line i ->
    join_lines
      (List.concat_map
         (fun (j, l) -> if j = i then [ l; l ] else [ l ])
         (List.mapi (fun j l -> (j, l)) (split_lines text)))
  | Version_skew v ->
    (match split_lines text with
     | _ :: rest -> join_lines (v :: rest)
     | [] -> v)

(* Mutations are drawn from the characters the format itself uses, so a
   fair share of them produce files that are wrong in content rather
   than obviously unparsable — the harder case for the loader. *)
let mutation_chars = "0123456789-+. eEnaif%kspdrvcbml\n"

let random_text_fault rng ~versions text =
  let len = Stdlib.max 1 (String.length text) in
  let n_lines = List.length (split_lines text) in
  match Rng.int rng 5 with
  | 0 -> Truncate (Rng.int rng len)
  | 1 ->
    Mutate_byte
      ( Rng.int rng len,
        mutation_chars.[Rng.int rng (String.length mutation_chars)] )
  | 2 -> Delete_line (Rng.int rng n_lines)
  | 3 -> Duplicate_line (Rng.int rng n_lines)
  | _ -> Version_skew (Rng.pick rng versions)

let random_flow_fault rng text =
  random_text_fault rng text
    ~versions:[| "stc-flow-3"; "stc-flow-0"; "STC-FLOW-1"; "stc-floww-1"; "" |]

let random_journal_fault rng text =
  random_text_fault rng text
    ~versions:
      [| "stc-journal-2"; "stc-journal-0"; "STC-JOURNAL-1"; "stc-journall-1"; "" |]

let canonical_or_reject text =
  match Flow_io.of_string text with
  | exception e ->
    errorf "of_string raised %s instead of returning a typed error"
      (Printexc.to_string e)
  | Error _ -> Ok `Rejected
  | Ok flow ->
    (* a harmless mutation may still parse — then the canonicality law
       must hold for what was accepted *)
    (match Flow_io.to_string flow with
     | exception e ->
       errorf "accepted corrupted flow fails to print: %s" (Printexc.to_string e)
     | Error e -> errorf "accepted corrupted flow fails to print: %s" e
     | Ok printed ->
       (match Flow_io.of_string printed with
        | Ok again ->
          if Flow_io.to_string again = Ok printed then Ok `Accepted
          else Error "accepted flow's canonical form is not a fixed point"
        | Error e -> errorf "accepted flow's canonical form does not reparse: %s" e
        | exception e ->
          errorf "canonical reparse raised %s" (Printexc.to_string e)))

let check_flow_corruption rng ~trials flow =
  match Flow_io.to_string flow with
  | Error e -> errorf "flow does not serialise: %s" e
  | Ok text ->
    let rejected = ref 0 and accepted = ref 0 in
    let rec go i =
      if i >= trials then Ok (!rejected, !accepted)
      else begin
        let fault = random_flow_fault rng text in
        let corrupted = apply_flow_fault fault text in
        match canonical_or_reject corrupted with
        | Error e -> errorf "fault %S: %s" (describe_flow_fault fault) e
        | Ok `Rejected ->
          incr rejected;
          go (i + 1)
        | Ok `Accepted ->
          incr accepted;
          go (i + 1)
      end
    in
    go 0

let check_version_skew flow =
  match Flow_io.to_string flow with
  | Error e -> errorf "flow does not serialise: %s" e
  | Ok text ->
    let* () =
      match Flow_io.of_string (apply_flow_fault (Version_skew "stc-flow-3") text) with
      | Ok _ -> Error "a stc-flow-3 file was accepted by the stc-flow-1/2 loader"
      | Error e ->
        if contains ~sub:"unsupported flow version" e then Ok ()
        else errorf "version-skew error does not name the version: %S" e
      | exception e -> errorf "version skew raised %s" (Printexc.to_string e)
    in
    (* cut at a line boundary so the parser hits end-of-input cleanly *)
    let truncated =
      match split_lines text with
      | a :: b :: c :: _ -> String.concat "\n" [ a; b; c ] ^ "\n"
      | _ -> text
    in
    (match Flow_io.of_string truncated with
     | Ok _ -> Error "a truncated flow was accepted"
     | Error e ->
       if contains ~sub:"truncated" e then Ok ()
       else errorf "truncation error does not mention truncation: %S" e
     | exception e -> errorf "truncated parse raised %s" (Printexc.to_string e))

(* --------------------------- device rows -------------------------- *)

type row_fault =
  | Nan_cell of int
  | Pos_inf_cell of int
  | Neg_inf_cell of int
  | Empty_row
  | Ragged of int

let describe_row_fault = function
  | Nan_cell i -> Printf.sprintf "NaN in cell %d" i
  | Pos_inf_cell i -> Printf.sprintf "+inf in cell %d" i
  | Neg_inf_cell i -> Printf.sprintf "-inf in cell %d" i
  | Empty_row -> "empty row"
  | Ragged n -> Printf.sprintf "resize row to %d cells" n

let apply_row_fault fault row =
  let poke i v =
    let r = Array.copy row in
    if Array.length r > 0 then r.(i mod Array.length r) <- v;
    r
  in
  match fault with
  | Nan_cell i -> poke i Float.nan
  | Pos_inf_cell i -> poke i Float.infinity
  | Neg_inf_cell i -> poke i Float.neg_infinity
  | Empty_row -> [||]
  | Ragged n -> Array.init n (fun i -> if i < Array.length row then row.(i) else 0.5)

let random_row_fault rng ~width =
  match Rng.int rng 5 with
  | 0 -> Nan_cell (Rng.int rng (Stdlib.max 1 width))
  | 1 -> Pos_inf_cell (Rng.int rng (Stdlib.max 1 width))
  | 2 -> Neg_inf_cell (Rng.int rng (Stdlib.max 1 width))
  | 3 -> Empty_row
  | _ ->
    (* never 0 cells (that is Empty_row, a blank CSV line) and never
       exactly [width] (that would not be a fault at all) *)
    let n = 1 + Rng.int rng (width + 1) in
    Ragged (if n = width then width + 1 else n)

let fp = Printf.sprintf "%.17g"

let csv_text ~specs ~rows =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (String.concat ","
       (Array.to_list (Array.map (fun (s : Spec.t) -> s.Spec.name) specs)));
  Buffer.add_char buffer '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buffer
        (String.concat "," (Array.to_list (Array.map fp row)));
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let with_temp_text text f =
  let path = Filename.temp_file "stc_qa" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text);
      f path)

let check_csv_rejects_bad_rows rng ~trials ~specs ~rows =
  if Array.length rows = 0 then Error "need at least one row to corrupt"
  else begin
    let width = Array.length specs in
    let rec go i =
      if i >= trials then Ok ()
      else begin
        let fault = random_row_fault rng ~width in
        let victim = Rng.int rng (Array.length rows) in
        let faulted =
          Array.mapi
            (fun j row -> if j = victim then apply_row_fault fault row else row)
            rows
        in
        let text = csv_text ~specs ~rows:faulted in
        let outcome =
          match with_temp_text text (fun path -> Device_csv.read ~path) with
          | r -> `Result r
          | exception e -> `Raised e
        in
        let verdict =
          match (fault, outcome) with
          | _, `Raised e ->
            errorf "Device_csv.read raised %s on %s" (Printexc.to_string e)
              (describe_row_fault fault)
          | Empty_row, `Result (Ok (_, rows')) ->
            (* documented degradation: a blank line is skipped *)
            if Array.length rows' = Array.length rows - 1 then Ok ()
            else
              errorf "blank row: expected %d surviving rows, read %d"
                (Array.length rows - 1) (Array.length rows')
          | Empty_row, `Result (Error e) ->
            errorf "blank row rejected outright: %s" e
          | ( (Nan_cell _ | Pos_inf_cell _ | Neg_inf_cell _ | Ragged _),
              `Result (Ok _) ) ->
            errorf "CSV with %s was accepted" (describe_row_fault fault)
          | ( (Nan_cell _ | Pos_inf_cell _ | Neg_inf_cell _ | Ragged _),
              `Result (Error e) ) ->
            if contains ~sub:"line" e then Ok ()
            else errorf "error for %s does not locate the line: %S"
                   (describe_row_fault fault) e
        in
        let* () = verdict in
        go (i + 1)
      end
    in
    go 0
  end

let check_floor_bad_rows rng ~trials flow =
  let k = Array.length flow.Compaction.specs in
  let kept = flow.Compaction.kept in
  let base_row () =
    Array.init k (fun j ->
        let s = flow.Compaction.specs.(j) in
        Rng.uniform rng s.Spec.range.Spec.lower s.Spec.range.Spec.upper)
  in
  Floor.with_engine flow (fun engine ->
      let rec go i =
        if i >= trials then Ok ()
        else begin
          let fault = random_row_fault rng ~width:k in
          let row = apply_row_fault fault (base_row ()) in
          let verdict =
            match fault with
            | Empty_row when k = 0 -> Ok ()
            | Empty_row | Ragged _ ->
              (* width mismatch: the documented typed error *)
              (match Floor.process engine [| row |] with
               | exception Invalid_argument _ -> Ok ()
               | exception e ->
                 errorf "%s raised %s, not Invalid_argument"
                   (describe_row_fault fault) (Printexc.to_string e)
               | _ -> errorf "%s was accepted" (describe_row_fault fault))
            | Nan_cell _ | Pos_inf_cell _ | Neg_inf_cell _ ->
              let faulted_kept =
                Array.exists (fun j -> not (Float.is_finite row.(j))) kept
              in
              let* () =
                (* strict mode rejects any non-finite cell the flow reads *)
                if not faulted_kept then Ok ()
                else begin
                  match Floor.process ~strict:true engine [| row |] with
                  | exception Invalid_argument _ -> Ok ()
                  | exception e ->
                    errorf "strict mode raised %s" (Printexc.to_string e)
                  | _ -> errorf "strict mode accepted %s" (describe_row_fault fault)
                end
              in
              (* default mode: graceful, deterministic degradation *)
              (match
                 ( Floor.process engine [| row |],
                   Floor.process engine [| row |],
                   Oracle.reference_outcomes flow [| row |] )
               with
               | exception e ->
                 errorf "default mode raised %s on %s" (Printexc.to_string e)
                   (describe_row_fault fault)
               | a, b, r ->
                 if
                   Guard_band.equal_verdict a.(0).Floor.verdict
                     b.(0).Floor.verdict
                   && Guard_band.equal_verdict a.(0).Floor.verdict
                        r.(0).Floor.verdict
                 then Ok ()
                 else
                   errorf "%s: verdict not deterministic or diverges from the \
                           reference binner"
                     (describe_row_fault fault))
          in
          let* () = verdict in
          go (i + 1)
        end
      in
      go 0)

(* ----------------------------- journals --------------------------- *)

module Journal = Stc.Journal

let journal_canonical_or_reject text =
  match Journal.of_string text with
  | exception e ->
    errorf "Journal.of_string raised %s instead of returning a typed error"
      (Printexc.to_string e)
  | Error _ -> Ok `Rejected
  | Ok replay ->
    let printed = Journal.to_string replay in
    (match Journal.of_string printed with
     | Ok again ->
       if Journal.to_string again = printed then Ok `Accepted
       else Error "accepted journal's canonical form is not a fixed point"
     | Error e ->
       errorf "accepted journal's canonical form does not reparse: %s" e
     | exception e ->
       errorf "canonical journal reparse raised %s" (Printexc.to_string e))

let check_journal_corruption rng ~trials replay =
  let text = Journal.to_string replay in
  let rejected = ref 0 and accepted = ref 0 in
  let rec go i =
    if i >= trials then Ok (!rejected, !accepted)
    else begin
      let fault = random_journal_fault rng text in
      let corrupted = apply_flow_fault fault text in
      match journal_canonical_or_reject corrupted with
      | Error e -> errorf "fault %S: %s" (describe_flow_fault fault) e
      | Ok `Rejected ->
        incr rejected;
        go (i + 1)
      | Ok `Accepted ->
        incr accepted;
        go (i + 1)
    end
  in
  go 0

let check_journal_truncation () =
  let entry i =
    {
      Journal.spec_index = i * 2;
      accepted = i mod 2 = 0;
      error = 0.25 /. float_of_int (i + 1);
    }
  in
  let replay =
    {
      Journal.fingerprint = "0123456789abcdef";
      entries = Array.init 3 entry;
      complete = true;
    }
  in
  let text = Journal.to_string replay in
  let* () =
    match
      Journal.of_string (apply_flow_fault (Version_skew "stc-journal-2") text)
    with
    | Ok _ ->
      Error "a stc-journal-2 file was accepted by the stc-journal-1 loader"
    | Error e ->
      if contains ~sub:"unsupported journal version" e then Ok ()
      else errorf "version-skew error does not name the version: %S" e
    | exception e -> errorf "version skew raised %s" (Printexc.to_string e)
  in
  (* a cut at a record boundary is the legal crash artefact: the
     journal must load as an incomplete run, not be rejected *)
  let lines = split_lines text in
  let boundary =
    (* header (2 lines) + one whole entry (one step line) *)
    join_lines (List.filteri (fun i _ -> i < 3) lines) ^ "\n"
  in
  let* () =
    match Journal.of_string boundary with
    | Ok r ->
      if (not r.Journal.complete) && Array.length r.Journal.entries = 1 then
        Ok ()
      else
        errorf "boundary cut loaded as complete=%b with %d entries"
          r.Journal.complete
          (Array.length r.Journal.entries)
    | Error e -> errorf "boundary cut rejected outright: %s" e
    | exception e -> errorf "boundary cut raised %s" (Printexc.to_string e)
  in
  (* a cut inside a record is corruption and must carry a line number *)
  let* () =
    match Journal.of_string (String.sub text 0 (String.length text - 2)) with
    | Ok _ -> Error "a mid-record cut was accepted"
    | Error e ->
      if contains ~sub:"line" e then Ok ()
      else errorf "mid-record cut error has no line number: %S" e
    | exception e -> errorf "mid-record cut raised %s" (Printexc.to_string e)
  in
  (* a reordered sequence number must be rejected with its line *)
  let reseq =
    join_lines
      (List.map
         (fun l ->
           if String.length l >= 7 && String.sub l 0 7 = "step 1 " then
             "step 7 " ^ String.sub l 7 (String.length l - 7)
           else l)
         lines)
  in
  (match Journal.of_string reseq with
   | Ok _ -> Error "an out-of-order step sequence was accepted"
   | Error e ->
     if contains ~sub:"line" e && contains ~sub:"out of order" e then Ok ()
     else errorf "reseq error does not locate the bad step: %S" e
   | exception e -> errorf "reseq parse raised %s" (Printexc.to_string e))

(* --------------------------- pool workers ------------------------- *)

exception Injected_failure

let check_pool_worker_failure ~domains =
  Pool.with_pool ~domains (fun pool ->
      let* () =
        match Pool.run pool ~n:64 (fun i -> if i = 13 then raise Injected_failure)
        with
        | exception Injected_failure -> Ok ()
        | exception e ->
          errorf "expected the injected exception, got %s" (Printexc.to_string e)
        | () -> Error "a worker failure was silently swallowed"
      in
      (* the pool must survive the failed job and run a different one *)
      let acc = Atomic.make 0 in
      match Pool.run pool ~n:200 (fun i -> ignore (Atomic.fetch_and_add acc i))
      with
      | exception e ->
        errorf "pool unusable after a worker failure: %s" (Printexc.to_string e)
      | () ->
        let total = Atomic.get acc in
        if total = 199 * 200 / 2 then Ok ()
        else errorf "post-failure job lost work: sum %d" total)

let check_pool_worker_delay ~domains ~delay_s =
  Pool.with_pool ~domains (fun pool ->
      let hits = Array.make 48 0 in
      let* () =
        match
          Pool.run pool ~n:48 (fun i ->
              if i = 0 then Unix.sleepf delay_s;
              hits.(i) <- hits.(i) + 1)
        with
        | exception e ->
          errorf "delayed job raised %s" (Printexc.to_string e)
        | () ->
          if Array.for_all (fun h -> h = 1) hits then Ok ()
          else Error "a stalled worker lost or duplicated tasks"
      in
      match Pool.run pool ~n:16 ignore with
      | exception e ->
        errorf "pool unusable after a stalled job: %s" (Printexc.to_string e)
      | () -> Ok ())

let check_pool_misuse () =
  let* () =
    Pool.with_pool ~domains:2 (fun pool ->
        match Pool.run pool ~n:0 (fun _ -> failwith "must not run") with
        | () -> Ok ()
        | exception e ->
          errorf "zero-task job was not a no-op: %s" (Printexc.to_string e))
  in
  let* () =
    match Pool.create ~domains:0 with
    | exception Invalid_argument _ -> Ok ()
    | pool ->
      Pool.shutdown pool;
      Error "domains = 0 was accepted"
  in
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.run pool ~n:4 ignore with
  | exception Invalid_argument _ -> Ok ()
  | exception e ->
    errorf "run after shutdown raised %s, not Invalid_argument"
      (Printexc.to_string e)
  | () -> Error "run after shutdown succeeded"

let check_pool_deadline ~domains =
  Pool.with_pool ~domains (fun pool ->
      (* a supervised job that finishes in time is just a job *)
      let hits = Array.make 32 0 in
      let* () =
        match Pool.run ~deadline_s:30.0 pool ~n:32 (fun i -> hits.(i) <- hits.(i) + 1)
        with
        | exception e ->
          errorf "in-time supervised job raised %s" (Printexc.to_string e)
        | () ->
          if Array.for_all (fun h -> h = 1) hits then Ok ()
          else Error "a supervised job lost or duplicated tasks"
      in
      (* a stalled worker must trip the deadline, promptly *)
      let deadline_s = 0.15 in
      let t0 = Unix.gettimeofday () in
      let* () =
        match
          Pool.run ~deadline_s pool ~n:8 (fun i ->
              if i = 0 then Unix.sleepf 1.5)
        with
        | exception Pool.Timeout ->
          let dt = Unix.gettimeofday () -. t0 in
          (* the stalled task sleeps 1.5 s: returning in far less shows
             the supervisor did not wait for it *)
          if dt < 1.0 then Ok ()
          else errorf "Timeout took %.2f s against a %.2f s deadline" dt deadline_s
        | exception e ->
          errorf "stalled job raised %s, not Timeout" (Printexc.to_string e)
        | () -> Error "a stalled job beat a deadline it could not meet"
      in
      let s = Pool.stats pool in
      let* () =
        if s.Pool.timeouts >= 1 then Ok ()
        else errorf "timeout not counted: %d" s.Pool.timeouts
      in
      let* () =
        if s.Pool.respawned >= 1 then Ok ()
        else errorf "stalled worker not respawned: %d" s.Pool.respawned
      in
      (* the pool must accept the next job while the zombie still sleeps *)
      let acc = Atomic.make 0 in
      let* () =
        match Pool.run pool ~n:100 (fun i -> ignore (Atomic.fetch_and_add acc i))
        with
        | exception e ->
          errorf "pool unusable after a timeout: %s" (Printexc.to_string e)
        | () ->
          let total = Atomic.get acc in
          if total = 99 * 100 / 2 then Ok ()
          else errorf "post-timeout job lost work: sum %d" total
      in
      match Pool.run ~deadline_s:30.0 pool ~n:16 ignore with
      | exception e ->
        errorf "supervised run after a timeout raised %s" (Printexc.to_string e)
      | () -> Ok ())

(* ------------------------ degraded serving ------------------------ *)

module Floor_retry = Stc_floor.Retry

(* A flow whose model verdict is Guard for every in-range device: the
   tight side votes fail, the loose side votes pass. Every row is then
   escalated to the retest callback, the surface under test. *)
let always_guard_flow () =
  let spec name =
    Spec.make ~name ~unit_label:"" ~nominal:0.5 ~lower:0.0 ~upper:1.0
  in
  {
    Compaction.specs = [| spec "kept"; spec "dropped" |];
    kept = [| 0 |];
    dropped = [| 1 |];
    band =
      Some
        (Guard_band.of_models
           ~tight:(Guard_band.constant (-1))
           ~loose:(Guard_band.constant 1));
    guard_fraction = 0.01;
    measured_guard = false;
  }

let guard_rows n = Array.init n (fun _ -> [| 0.5; 0.5 |])

let quick_retry ~attempts =
  {
    Floor_retry.default_policy with
    Floor_retry.attempts;
    base_delay_s = 1e-4;
    max_delay_s = 1e-3;
  }

exception Station_down

let check_floor_flaky_retest ~fail_first =
  Floor.with_engine (always_guard_flow ()) (fun engine ->
      let calls = ref 0 in
      let retest _row =
        incr calls;
        if !calls <= fail_first then raise Station_down;
        true
      in
      let retry = quick_retry ~attempts:(fail_first + 2) in
      match Floor.process ~retest ~retry engine (guard_rows 1) with
      | exception e ->
        errorf "flaky retest leaked %s through the retry policy"
          (Printexc.to_string e)
      | out ->
        let s = Floor.stats engine in
        if out.(0).Floor.bin <> Stc.Tester.Ship then
          errorf "device not shipped after %d transient failures" fail_first
        else if s.Floor.retries <> fail_first then
          errorf "expected %d retries counted, got %d" fail_first
            s.Floor.retries
        else if s.Floor.degraded <> 0 || Floor.degraded engine then
          Error "a recovered retest left the engine degraded"
        else Ok ())

let check_floor_degraded ~classify_permanent =
  Floor.with_engine (always_guard_flow ()) (fun engine ->
      let calls = ref 0 in
      let retest _row =
        incr calls;
        raise Station_down
      in
      let retry =
        let p = quick_retry ~attempts:3 in
        if classify_permanent then
          { p with Floor_retry.classify = (fun _ -> Floor_retry.Permanent) }
        else p
      in
      let n = 4 in
      match Floor.process ~retest ~retry engine (guard_rows n) with
      | exception e ->
        errorf "failing retest leaked %s instead of degrading"
          (Printexc.to_string e)
      | out ->
        let s = Floor.stats engine in
        let* () =
          if Array.for_all (fun o -> o.Floor.bin = Stc.Tester.Retest) out then
            Ok ()
          else Error "a device was dropped or mis-binned under failure"
        in
        let* () =
          if s.Floor.devices = n && s.Floor.degraded = n then Ok ()
          else
            errorf "expected %d devices all degraded, got %d devices, %d degraded"
              n s.Floor.devices s.Floor.degraded
        in
        let* () =
          if Floor.degraded engine then Ok ()
          else Error "engine not flagged degraded after a permanent failure"
        in
        let* () =
          (* permanent classification must not retry; transient must *)
          let expected_retries = if classify_permanent then 0 else 2 in
          if s.Floor.retries = expected_retries then Ok ()
          else
            errorf "expected %d retries, got %d" expected_retries
              s.Floor.retries
        in
        let* () =
          if Floor.throughput engine > 0.0 then Ok ()
          else Error "throughput not positive under degradation"
        in
        (* degraded mode sheds without hammering the dead station *)
        let before = !calls in
        let _ = Floor.process ~retest ~retry engine (guard_rows 2) in
        let* () =
          if !calls = before then Ok ()
          else Error "degraded mode still calls the failed station"
        in
        let* () =
          if (Floor.stats engine).Floor.degraded = n + 2 then Ok ()
          else Error "devices shed in degraded mode not counted"
        in
        Floor.reset_stats engine;
        let* () =
          if Floor.degraded engine then Error "reset_stats kept degraded mode"
          else Ok ()
        in
        if Floor.stats engine = Floor.empty_stats then Ok ()
        else Error "reset_stats left counters behind")

let check_floor_batch_deadline () =
  Floor.with_engine (always_guard_flow ()) (fun engine ->
      let retest _row =
        Unix.sleepf 0.03;
        true
      in
      let n = 8 in
      match
        Floor.process ~retest ~batch_deadline_s:0.05 engine (guard_rows n)
      with
      | exception e ->
        errorf "batch deadline raised %s" (Printexc.to_string e)
      | out ->
        let s = Floor.stats engine in
        let* () =
          if Array.length out = n then Ok ()
          else Error "devices dropped at the batch deadline"
        in
        let* () =
          if s.Floor.shipped >= 1 then Ok ()
          else Error "no device served before the deadline"
        in
        let* () =
          if s.Floor.degraded >= 1 then Ok ()
          else Error "no device shed after the deadline"
        in
        let* () =
          if s.Floor.shipped + s.Floor.degraded = n then Ok ()
          else errorf "shipped %d + shed %d does not cover %d devices"
                 s.Floor.shipped s.Floor.degraded n
        in
        if Floor.degraded engine then
          Error "a batch deadline must not latch degraded mode"
        else Ok ())
