module Spec = Stc.Spec
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Pool = Stc_process.Pool
module Floor = Stc_floor.Floor
module Flow_io = Stc_floor.Flow_io
module Device_csv = Stc_floor.Device_csv
module Rng = Stc_numerics.Rng

let errorf fmt = Printf.ksprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------- corrupted flows ------------------------ *)

type flow_fault =
  | Truncate of int
  | Mutate_byte of int * char
  | Delete_line of int
  | Duplicate_line of int
  | Version_skew of string

let describe_flow_fault = function
  | Truncate n -> Printf.sprintf "truncate to %d bytes" n
  | Mutate_byte (i, c) -> Printf.sprintf "overwrite byte %d with %C" i c
  | Delete_line i -> Printf.sprintf "delete line %d" i
  | Duplicate_line i -> Printf.sprintf "duplicate line %d" i
  | Version_skew v -> Printf.sprintf "rewrite header to %S" v

let split_lines text = String.split_on_char '\n' text

let join_lines lines = String.concat "\n" lines

let apply_flow_fault fault text =
  match fault with
  | Truncate n -> String.sub text 0 (Stdlib.min n (String.length text))
  | Mutate_byte (i, c) ->
    if i >= String.length text then text
    else begin
      let b = Bytes.of_string text in
      Bytes.set b i c;
      Bytes.to_string b
    end
  | Delete_line i ->
    join_lines (List.filteri (fun j _ -> j <> i) (split_lines text))
  | Duplicate_line i ->
    join_lines
      (List.concat_map
         (fun (j, l) -> if j = i then [ l; l ] else [ l ])
         (List.mapi (fun j l -> (j, l)) (split_lines text)))
  | Version_skew v ->
    (match split_lines text with
     | _ :: rest -> join_lines (v :: rest)
     | [] -> v)

(* Mutations are drawn from the characters the format itself uses, so a
   fair share of them produce files that are wrong in content rather
   than obviously unparsable — the harder case for the loader. *)
let mutation_chars = "0123456789-+. eEnaif%kspdrvcbml\n"

let random_flow_fault rng text =
  let len = Stdlib.max 1 (String.length text) in
  let n_lines = List.length (split_lines text) in
  match Rng.int rng 5 with
  | 0 -> Truncate (Rng.int rng len)
  | 1 ->
    Mutate_byte
      ( Rng.int rng len,
        mutation_chars.[Rng.int rng (String.length mutation_chars)] )
  | 2 -> Delete_line (Rng.int rng n_lines)
  | 3 -> Duplicate_line (Rng.int rng n_lines)
  | _ ->
    Version_skew
      (Rng.pick rng
         [| "stc-flow-2"; "stc-flow-0"; "STC-FLOW-1"; "stc-floww-1"; "" |])

let canonical_or_reject text =
  match Flow_io.of_string text with
  | exception e ->
    errorf "of_string raised %s instead of returning a typed error"
      (Printexc.to_string e)
  | Error _ -> Ok `Rejected
  | Ok flow ->
    (* a harmless mutation may still parse — then the canonicality law
       must hold for what was accepted *)
    (match Flow_io.to_string flow with
     | exception e ->
       errorf "accepted corrupted flow fails to print: %s" (Printexc.to_string e)
     | Error e -> errorf "accepted corrupted flow fails to print: %s" e
     | Ok printed ->
       (match Flow_io.of_string printed with
        | Ok again ->
          if Flow_io.to_string again = Ok printed then Ok `Accepted
          else Error "accepted flow's canonical form is not a fixed point"
        | Error e -> errorf "accepted flow's canonical form does not reparse: %s" e
        | exception e ->
          errorf "canonical reparse raised %s" (Printexc.to_string e)))

let check_flow_corruption rng ~trials flow =
  match Flow_io.to_string flow with
  | Error e -> errorf "flow does not serialise: %s" e
  | Ok text ->
    let rejected = ref 0 and accepted = ref 0 in
    let rec go i =
      if i >= trials then Ok (!rejected, !accepted)
      else begin
        let fault = random_flow_fault rng text in
        let corrupted = apply_flow_fault fault text in
        match canonical_or_reject corrupted with
        | Error e -> errorf "fault %S: %s" (describe_flow_fault fault) e
        | Ok `Rejected ->
          incr rejected;
          go (i + 1)
        | Ok `Accepted ->
          incr accepted;
          go (i + 1)
      end
    in
    go 0

let check_version_skew flow =
  match Flow_io.to_string flow with
  | Error e -> errorf "flow does not serialise: %s" e
  | Ok text ->
    let* () =
      match Flow_io.of_string (apply_flow_fault (Version_skew "stc-flow-2") text) with
      | Ok _ -> Error "a stc-flow-2 file was accepted by the stc-flow-1 loader"
      | Error e ->
        if contains ~sub:"unsupported flow version" e then Ok ()
        else errorf "version-skew error does not name the version: %S" e
      | exception e -> errorf "version skew raised %s" (Printexc.to_string e)
    in
    (* cut at a line boundary so the parser hits end-of-input cleanly *)
    let truncated =
      match split_lines text with
      | a :: b :: c :: _ -> String.concat "\n" [ a; b; c ] ^ "\n"
      | _ -> text
    in
    (match Flow_io.of_string truncated with
     | Ok _ -> Error "a truncated flow was accepted"
     | Error e ->
       if contains ~sub:"truncated" e then Ok ()
       else errorf "truncation error does not mention truncation: %S" e
     | exception e -> errorf "truncated parse raised %s" (Printexc.to_string e))

(* --------------------------- device rows -------------------------- *)

type row_fault =
  | Nan_cell of int
  | Pos_inf_cell of int
  | Neg_inf_cell of int
  | Empty_row
  | Ragged of int

let describe_row_fault = function
  | Nan_cell i -> Printf.sprintf "NaN in cell %d" i
  | Pos_inf_cell i -> Printf.sprintf "+inf in cell %d" i
  | Neg_inf_cell i -> Printf.sprintf "-inf in cell %d" i
  | Empty_row -> "empty row"
  | Ragged n -> Printf.sprintf "resize row to %d cells" n

let apply_row_fault fault row =
  let poke i v =
    let r = Array.copy row in
    if Array.length r > 0 then r.(i mod Array.length r) <- v;
    r
  in
  match fault with
  | Nan_cell i -> poke i Float.nan
  | Pos_inf_cell i -> poke i Float.infinity
  | Neg_inf_cell i -> poke i Float.neg_infinity
  | Empty_row -> [||]
  | Ragged n -> Array.init n (fun i -> if i < Array.length row then row.(i) else 0.5)

let random_row_fault rng ~width =
  match Rng.int rng 5 with
  | 0 -> Nan_cell (Rng.int rng (Stdlib.max 1 width))
  | 1 -> Pos_inf_cell (Rng.int rng (Stdlib.max 1 width))
  | 2 -> Neg_inf_cell (Rng.int rng (Stdlib.max 1 width))
  | 3 -> Empty_row
  | _ ->
    (* never 0 cells (that is Empty_row, a blank CSV line) and never
       exactly [width] (that would not be a fault at all) *)
    let n = 1 + Rng.int rng (width + 1) in
    Ragged (if n = width then width + 1 else n)

let fp = Printf.sprintf "%.17g"

let csv_text ~specs ~rows =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (String.concat ","
       (Array.to_list (Array.map (fun (s : Spec.t) -> s.Spec.name) specs)));
  Buffer.add_char buffer '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buffer
        (String.concat "," (Array.to_list (Array.map fp row)));
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let with_temp_text text f =
  let path = Filename.temp_file "stc_qa" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text);
      f path)

let check_csv_rejects_bad_rows rng ~trials ~specs ~rows =
  if Array.length rows = 0 then Error "need at least one row to corrupt"
  else begin
    let width = Array.length specs in
    let rec go i =
      if i >= trials then Ok ()
      else begin
        let fault = random_row_fault rng ~width in
        let victim = Rng.int rng (Array.length rows) in
        let faulted =
          Array.mapi
            (fun j row -> if j = victim then apply_row_fault fault row else row)
            rows
        in
        let text = csv_text ~specs ~rows:faulted in
        let outcome =
          match with_temp_text text (fun path -> Device_csv.read ~path) with
          | r -> `Result r
          | exception e -> `Raised e
        in
        let verdict =
          match (fault, outcome) with
          | _, `Raised e ->
            errorf "Device_csv.read raised %s on %s" (Printexc.to_string e)
              (describe_row_fault fault)
          | Empty_row, `Result (Ok (_, rows')) ->
            (* documented degradation: a blank line is skipped *)
            if Array.length rows' = Array.length rows - 1 then Ok ()
            else
              errorf "blank row: expected %d surviving rows, read %d"
                (Array.length rows - 1) (Array.length rows')
          | Empty_row, `Result (Error e) ->
            errorf "blank row rejected outright: %s" e
          | ( (Nan_cell _ | Pos_inf_cell _ | Neg_inf_cell _ | Ragged _),
              `Result (Ok _) ) ->
            errorf "CSV with %s was accepted" (describe_row_fault fault)
          | ( (Nan_cell _ | Pos_inf_cell _ | Neg_inf_cell _ | Ragged _),
              `Result (Error e) ) ->
            if contains ~sub:"line" e then Ok ()
            else errorf "error for %s does not locate the line: %S"
                   (describe_row_fault fault) e
        in
        let* () = verdict in
        go (i + 1)
      end
    in
    go 0
  end

let check_floor_bad_rows rng ~trials flow =
  let k = Array.length flow.Compaction.specs in
  let kept = flow.Compaction.kept in
  let base_row () =
    Array.init k (fun j ->
        let s = flow.Compaction.specs.(j) in
        Rng.uniform rng s.Spec.range.Spec.lower s.Spec.range.Spec.upper)
  in
  Floor.with_engine flow (fun engine ->
      let rec go i =
        if i >= trials then Ok ()
        else begin
          let fault = random_row_fault rng ~width:k in
          let row = apply_row_fault fault (base_row ()) in
          let verdict =
            match fault with
            | Empty_row when k = 0 -> Ok ()
            | Empty_row | Ragged _ ->
              (* width mismatch: the documented typed error *)
              (match Floor.process engine [| row |] with
               | exception Invalid_argument _ -> Ok ()
               | exception e ->
                 errorf "%s raised %s, not Invalid_argument"
                   (describe_row_fault fault) (Printexc.to_string e)
               | _ -> errorf "%s was accepted" (describe_row_fault fault))
            | Nan_cell _ | Pos_inf_cell _ | Neg_inf_cell _ ->
              let faulted_kept =
                Array.exists (fun j -> not (Float.is_finite row.(j))) kept
              in
              let* () =
                (* strict mode rejects any non-finite cell the flow reads *)
                if not faulted_kept then Ok ()
                else begin
                  match Floor.process ~strict:true engine [| row |] with
                  | exception Invalid_argument _ -> Ok ()
                  | exception e ->
                    errorf "strict mode raised %s" (Printexc.to_string e)
                  | _ -> errorf "strict mode accepted %s" (describe_row_fault fault)
                end
              in
              (* default mode: graceful, deterministic degradation *)
              (match
                 ( Floor.process engine [| row |],
                   Floor.process engine [| row |],
                   Oracle.reference_outcomes flow [| row |] )
               with
               | exception e ->
                 errorf "default mode raised %s on %s" (Printexc.to_string e)
                   (describe_row_fault fault)
               | a, b, r ->
                 if
                   Guard_band.equal_verdict a.(0).Floor.verdict
                     b.(0).Floor.verdict
                   && Guard_band.equal_verdict a.(0).Floor.verdict
                        r.(0).Floor.verdict
                 then Ok ()
                 else
                   errorf "%s: verdict not deterministic or diverges from the \
                           reference binner"
                     (describe_row_fault fault))
          in
          let* () = verdict in
          go (i + 1)
        end
      in
      go 0)

(* --------------------------- pool workers ------------------------- *)

exception Injected_failure

let check_pool_worker_failure ~domains =
  Pool.with_pool ~domains (fun pool ->
      let* () =
        match Pool.run pool ~n:64 (fun i -> if i = 13 then raise Injected_failure)
        with
        | exception Injected_failure -> Ok ()
        | exception e ->
          errorf "expected the injected exception, got %s" (Printexc.to_string e)
        | () -> Error "a worker failure was silently swallowed"
      in
      (* the pool must survive the failed job and run a different one *)
      let acc = Atomic.make 0 in
      match Pool.run pool ~n:200 (fun i -> ignore (Atomic.fetch_and_add acc i))
      with
      | exception e ->
        errorf "pool unusable after a worker failure: %s" (Printexc.to_string e)
      | () ->
        let total = Atomic.get acc in
        if total = 199 * 200 / 2 then Ok ()
        else errorf "post-failure job lost work: sum %d" total)

let check_pool_worker_delay ~domains ~delay_s =
  Pool.with_pool ~domains (fun pool ->
      let hits = Array.make 48 0 in
      let* () =
        match
          Pool.run pool ~n:48 (fun i ->
              if i = 0 then Unix.sleepf delay_s;
              hits.(i) <- hits.(i) + 1)
        with
        | exception e ->
          errorf "delayed job raised %s" (Printexc.to_string e)
        | () ->
          if Array.for_all (fun h -> h = 1) hits then Ok ()
          else Error "a stalled worker lost or duplicated tasks"
      in
      match Pool.run pool ~n:16 ignore with
      | exception e ->
        errorf "pool unusable after a stalled job: %s" (Printexc.to_string e)
      | () -> Ok ())

let check_pool_misuse () =
  let* () =
    Pool.with_pool ~domains:2 (fun pool ->
        match Pool.run pool ~n:0 (fun _ -> failwith "must not run") with
        | () -> Ok ()
        | exception e ->
          errorf "zero-task job was not a no-op: %s" (Printexc.to_string e))
  in
  let* () =
    match Pool.create ~domains:0 with
    | exception Invalid_argument _ -> Ok ()
    | pool ->
      Pool.shutdown pool;
      Error "domains = 0 was accepted"
  in
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.run pool ~n:4 ignore with
  | exception Invalid_argument _ -> Ok ()
  | exception e ->
    errorf "run after shutdown raised %s, not Invalid_argument"
      (Printexc.to_string e)
  | () -> Error "run after shutdown succeeded"
