(** Fault injection for the {!Stc_net} serving stack: a real loopback
    server under attack from misbehaving clients.

    Each check boots a throwaway registry + server on an ephemeral
    loopback port, runs its attack, and asserts the server contract:
    abuse kills at most the abusing connection — a fresh client must
    still get verdicts {e bit-identical} to an offline
    {!Stc_floor.Floor.process} run over the same flow, and the process
    must never see an uncaught exception. Checks return
    [(unit, string) result] so they compose with {!Faults} checks in
    {!Selftest}. *)

val check_torn_frames :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Dribbles a valid request one byte at a time (the framing layer must
    reassemble it), sends a garbage verb (typed [ERR bad-request], the
    connection stays usable), and abandons a connection mid-frame with
    no trailing newline (counted as a torn frame, nothing else
    disturbed). The surviving connection's verdicts must equal the
    offline reference. *)

val check_mid_batch_disconnect :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Declares [BATCH n] and disconnects after sending fewer than [n]
    rows. Only that connection dies: a fresh client then runs the full
    batch and must match the offline reference. *)

val check_write_after_close :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Sends a complete batch plus a tail of PINGs, then closes without
    reading any reply — forcing the server to write into a socket whose
    peer is gone. The writes must surface as [EPIPE] (per-connection
    teardown, counted as a disconnect), {e not} as a process-fatal
    SIGPIPE; a fresh client must then still match the offline
    reference. *)

val check_reload_inflight :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Hammers forced hot reloads (same file, so the flow is semantically
    identical) from the serving thread while a client streams batches
    concurrently. Every row must be answered, every verdict must equal
    the offline reference (the swap drains — no batch straddles two
    engines), and the entry's version must have advanced by exactly the
    number of successful reloads. *)

val check_slow_loris :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Opens a connection, trickles a partial frame, then goes silent
    against a server with a short idle deadline. The connection must be
    reaped ([ERR idle-timeout] then a close, counted in
    [stc_net_idle_reaped_total]) while a live client on the same server
    still matches the offline reference. *)

val check_reply_ignorer :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Sends a huge batch and never reads a reply byte, with the server's
    send buffer and the attacker's receive window both squeezed so the
    replies jam quickly. The server must tear the connection down via
    its write deadline ([stc_net_write_timeouts_total]) instead of
    wedging a handler thread, and a fresh client must still match the
    offline reference. *)

val check_connection_flood :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Opens 4x [max_connections] at once. Exactly [max_connections] are
    admitted (they answer [PING]); every surplus connection is shed
    with one [ERR busy] line and a clean close, counted in
    [stc_net_shed_total]. Once the flood releases its slots a fresh
    client must be admitted and match the offline reference. *)

val check_breaker_cycle :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Drives the per-flow circuit breaker through a full cycle over the
    wire using the registry's crash failpoint: consecutive engine
    crashes answer every row [RETEST]/[GUARD] (never an error, never a
    dropped device) and trip the breaker; [HEALTH] reports
    [closed -> open -> closed]; after the cooldown the auto-recycled
    engine's half-open probe succeeds and verdicts are again
    bit-identical to the offline reference. *)
