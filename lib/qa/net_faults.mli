(** Fault injection for the {!Stc_net} serving stack: a real loopback
    server under attack from misbehaving clients.

    Each check boots a throwaway registry + server on an ephemeral
    loopback port, runs its attack, and asserts the server contract:
    abuse kills at most the abusing connection — a fresh client must
    still get verdicts {e bit-identical} to an offline
    {!Stc_floor.Floor.process} run over the same flow, and the process
    must never see an uncaught exception. Checks return
    [(unit, string) result] so they compose with {!Faults} checks in
    {!Selftest}. *)

val check_torn_frames :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Dribbles a valid request one byte at a time (the framing layer must
    reassemble it), sends a garbage verb (typed [ERR bad-request], the
    connection stays usable), and abandons a connection mid-frame with
    no trailing newline (counted as a torn frame, nothing else
    disturbed). The surviving connection's verdicts must equal the
    offline reference. *)

val check_mid_batch_disconnect :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Declares [BATCH n] and disconnects after sending fewer than [n]
    rows. Only that connection dies: a fresh client then runs the full
    batch and must match the offline reference. *)

val check_write_after_close :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Sends a complete batch plus a tail of PINGs, then closes without
    reading any reply — forcing the server to write into a socket whose
    peer is gone. The writes must surface as [EPIPE] (per-connection
    teardown, counted as a disconnect), {e not} as a process-fatal
    SIGPIPE; a fresh client must then still match the offline
    reference. *)

val check_reload_inflight :
  Stc.Compaction.flow * float array array -> (unit, string) result
(** Hammers forced hot reloads (same file, so the flow is semantically
    identical) from the serving thread while a client streams batches
    concurrently. Every row must be answered, every verdict must equal
    the offline reference (the swap drains — no batch straddles two
    engines), and the entry's version must have advanced by exactly the
    number of successful reloads. *)
