module Report = Stc.Report
module Rng = Stc_numerics.Rng

type section = {
  name : string;
  cases : int;
  failures : int;
  detail : string;
  elapsed_s : float;
}

type report = {
  seed : int;
  sections : section list;
}

(* Each section folds a check over [cases] generated instances,
   recording the first counterexample but still counting the rest, so
   one bad case does not hide how widespread the breakage is. *)
let section ~name ~cases check =
  let t0 = Unix.gettimeofday () in
  let failures = ref 0 in
  let detail = ref "" in
  for i = 0 to cases - 1 do
    match check i with
    | Ok () -> ()
    | Error e ->
      incr failures;
      if !detail = "" then detail := Printf.sprintf "case %d: %s" i e
    | exception e ->
      incr failures;
      if !detail = "" then
        detail := Printf.sprintf "case %d raised %s" i (Printexc.to_string e)
  done;
  {
    name;
    cases;
    failures = !failures;
    detail = (if !detail = "" then "ok" else !detail);
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let batch_sizes = [ 1; 7; 64 ]
let domain_counts = [ 1; 4 ]

let run ?(seed = 2005) ?(flows = 1000) ?(rows_per_flow = 16)
    ?(progress = fun _ -> ()) () =
  let st = Gen.state ~seed in
  let rng = Rng.create seed in
  let flow_pool =
    Array.init (Stdlib.max 1 (flows / 10)) (fun _ ->
        Gen.flow_with_rows ~rows_per_flow st)
  in
  let next_pooled i = flow_pool.(i mod Array.length flow_pool) in
  let sections = ref [] in
  let push s =
    progress
      (Printf.sprintf "%-28s %4d cases, %d failures (%.2f s)" s.name s.cases
         s.failures s.elapsed_s);
    sections := s :: !sections
  in

  (* 1. the acceptance bar: Floor vs the naive reference binner over
     every batch-size × domain-count combination, with and without a
     retest callback *)
  push
    (section ~name:"floor differential oracle" ~cases:flows (fun i ->
         let flow, rows = Gen.flow_with_rows ~rows_per_flow st in
         let retest =
           (* deterministic full-test stand-in: judge the complete row *)
           if i mod 2 = 0 then None
           else
             Some
               (fun row ->
                 Array.for_all2 Stc.Spec.passes flow.Stc.Compaction.specs row)
         in
         Oracle.floor_matches ?retest ~batch_sizes ~domain_counts flow rows));

  (* 2. persistence: print/parse/print canonicality and verdict
     stability across the disk format *)
  push
    (section ~name:"flow round trips" ~cases:flows (fun i ->
         let flow, rows = next_pooled i in
         match Oracle.flow_roundtrips flow with
         | Error _ as e -> e
         | Ok () -> Oracle.flow_verdicts_survive flow rows));

  (* 3. model serialisation and the brute-force decision oracle *)
  push
    (section ~name:"svm decision oracle" ~cases:(Stdlib.max 50 (flows / 4))
       (fun _ ->
         let dim = 1 + Rng.int rng 5 in
         let probe =
           Array.init dim (fun _ -> Rng.uniform rng (-1.5) 2.5)
         in
         let svr = Gen.svr ~dim st and svc = Gen.svc ~dim st in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () = Oracle.svr_agrees svr probe in
         let* () = Oracle.svc_agrees svc probe in
         let* () = Oracle.svr_roundtrips svr in
         Oracle.svc_roundtrips svc));

  push
    (section ~name:"svm: flat kernel" ~cases:(Stdlib.max 25 (flows / 8))
       (fun _ ->
         let dim = 1 + Rng.int rng 6 in
         let n = 2 + Rng.int rng 24 in
         let rows =
           Array.init n (fun _ ->
               Array.init dim (fun _ -> Rng.uniform rng (-3.0) 3.0))
         in
         let gamma = Rng.uniform rng 0.05 2.0 in
         let coef0 = Rng.uniform rng (-1.0) 1.0 in
         let kernels =
           [
             Stc_svm.Kernel.linear;
             Stc_svm.Kernel.rbf gamma;
             Stc_svm.Kernel.Polynomial
               { gamma; coef0; degree = 2 + Rng.int rng 3 };
             Stc_svm.Kernel.Sigmoid { gamma; coef0 };
           ]
         in
         Oracle.flat_kernel_agrees kernels rows));

  push
    (section ~name:"smo dual feasibility" ~cases:12 (fun _ ->
         let dim = 1 + Rng.int rng 3 in
         let c_svc, svc = Gen.trained_svc ~dim ~n:40 st in
         let c_svr, svr = Gen.trained_svr ~dim ~n:40 st in
         let probe = Array.init dim (fun _ -> Rng.uniform rng (-0.5) 1.5) in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () = Oracle.svc_dual_feasible ~c:c_svc svc in
         let* () = Oracle.svr_dual_feasible ~c:c_svr svr in
         let* () = Oracle.svc_agrees svc probe in
         Oracle.svr_agrees svr probe));

  (* 4. CSV interchange *)
  push
    (section ~name:"device CSV round trips" ~cases:(Stdlib.max 20 (flows / 20))
       (fun _ ->
         let specs = Gen.specs () st in
         let rows = Gen.rows specs ~n:(1 + Rng.int rng 20) st in
         Oracle.csv_roundtrips ~specs ~rows));

  (* 5. fault injection *)
  push
    (section ~name:"fault: corrupted flows" ~cases:(Stdlib.max 5 (flows / 50))
       (fun i ->
         let flow, _ = next_pooled i in
         match Faults.check_flow_corruption rng ~trials:20 flow with
         | Ok (_rejected, _accepted) -> Ok ()
         | Error _ as e -> e));

  push
    (section ~name:"fault: version skew" ~cases:5 (fun i ->
         let flow, _ = next_pooled i in
         Faults.check_version_skew flow));

  push
    (section ~name:"fault: bad device rows" ~cases:(Stdlib.max 5 (flows / 50))
       (fun i ->
         let flow, rows = next_pooled i in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () =
           Faults.check_csv_rejects_bad_rows rng ~trials:10
             ~specs:flow.Stc.Compaction.specs ~rows
         in
         Faults.check_floor_bad_rows rng ~trials:10 flow));

  push
    (section ~name:"fault: pool workers" ~cases:4 (fun i ->
         let domains = if i mod 2 = 0 then 1 else 4 in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () = Faults.check_pool_worker_failure ~domains in
         let* () = Faults.check_pool_worker_delay ~domains ~delay_s:0.02 in
         Faults.check_pool_misuse ()));

  (* 6. resilience: journals, supervised deadlines, degraded serving *)
  push
    (section ~name:"fault: corrupted journals"
       ~cases:(Stdlib.max 5 (flows / 50)) (fun _ ->
         let replay = Gen.journal st in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () =
           match Faults.check_journal_corruption rng ~trials:20 replay with
           | Ok (_rejected, _accepted) -> Ok ()
           | Error _ as e -> e
         in
         Faults.check_journal_truncation ()));

  push
    (section ~name:"fault: pool deadlines" ~cases:2 (fun i ->
         Faults.check_pool_deadline ~domains:(if i = 0 then 1 else 4)));

  push
    (section ~name:"fault: degraded serving" ~cases:3 (fun i ->
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () = Faults.check_floor_flaky_retest ~fail_first:(1 + i) in
         let* () = Faults.check_floor_degraded ~classify_permanent:(i mod 2 = 0) in
         Faults.check_floor_batch_deadline ()));

  push
    (section ~name:"fault: network serving" ~cases:2 (fun i ->
         let pooled = next_pooled i in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () = Net_faults.check_torn_frames pooled in
         let* () = Net_faults.check_mid_batch_disconnect pooled in
         let* () = Net_faults.check_write_after_close pooled in
         Net_faults.check_reload_inflight pooled));

  (* 6c. chaos: overload, slow clients, crashing engines — the server
     must shed, reap, and self-heal without ever dropping an accepted
     device or letting a fresh client diverge from the offline engine *)
  push
    (section ~name:"chaos: overload and self-healing" ~cases:1 (fun i ->
         let pooled = next_pooled i in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () = Net_faults.check_connection_flood pooled in
         let* () = Net_faults.check_slow_loris pooled in
         let* () = Net_faults.check_reply_ignorer pooled in
         Net_faults.check_breaker_cycle pooled));

  (* 6b. boundary-biased enrichment: bit-identical at any domain count,
     and the importance-weighted yield agrees with an independent
     uniform population (the weighted-vs-unweighted statistics oracle) *)
  push
    (section ~name:"enrichment oracle" ~cases:4 (fun i ->
         let device, limits = Gen.enrich_device st in
         let seed = seed + (31 * i) in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let* () =
           Oracle.enrichment_deterministic ~seed ~pilot:40 ~n:160 device
             ~limits
         in
         Oracle.enrichment_unbiased ~seed ~pilot:60 ~n:400 device ~limits));

  (* 6d. the learner zoo: MLP forward pass vs brute force, stc-mlp-1
     round trips, determinism of training across domain counts, and
     the MI ranker vs its full-rescan reference — including
     permutation invariance (the score depends on counts only) *)
  push
    (section ~name:"learner oracle" ~cases:(Stdlib.max 20 (flows / 20))
       (fun i ->
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         let dim = 1 + Rng.int rng 4 in
         let mlp = Gen.mlp ~dim st in
         let probe = Array.init dim (fun _ -> Rng.uniform rng (-2.0) 2.0) in
         let* () = Oracle.mlp_agrees mlp probe in
         let* () = Oracle.mlp_roundtrips mlp in
         let n = 8 + Rng.int rng 48 in
         let values = Array.init n (fun _ -> Rng.uniform rng (-2.0) 2.0) in
         let labels =
           Array.init n (fun j ->
               if values.(j) > Rng.uniform rng (-1.0) 1.0 then 1 else -1)
         in
         let bins = 1 + Rng.int rng 12 in
         let* () = Oracle.mi_matches_ref ~bins ~labels values in
         let permutation = Array.init n (fun j -> j) in
         Rng.shuffle rng permutation;
         let* () =
           Oracle.mi_permutation_invariant ~bins ~permutation ~labels values
         in
         if i >= 4 then Ok ()
         else
           (* the expensive contract — training determinism across 1/2/4
              domains — on a handful of generated devices only *)
           let device, limits = Gen.enrich_device st in
           let config =
             { Stc_learn.Mlp.default_config with Stc_learn.Mlp.epochs = 40 }
           in
           Oracle.mlp_deterministic ~config ~seed:(seed + (17 * i)) ~n:60
             device ~limits));

  (* 7. observability: metric-exporter round trips and span nesting *)
  push
    (section ~name:"observability" ~cases:(Stdlib.max 20 (flows / 20))
       (fun i ->
         let module Obs = Stc_obs.Registry in
         let module Trace = Stc_obs.Trace in
         let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
         (* a scratch registry with random contents must survive the
            text exporter exactly *)
         let r = Obs.create () in
         let c = Obs.counter ~registry:r "stc_qa_cases_total" in
         let g = Obs.gauge ~registry:r "stc_qa_level" in
         let h = Obs.histogram ~registry:r "stc_qa_latency_s" in
         for _ = 0 to Rng.int rng 20 do
           Obs.Counter.add c (Rng.int rng 1000);
           Obs.Gauge.set g (Rng.uniform rng (-1e6) 1e6);
           Obs.Histogram.observe h (Rng.uniform rng 0.0 200.0)
         done;
         let* () =
           match Obs.parse_text (Obs.to_text ~registry:r ()) with
           | Error e -> Error ("metrics export does not parse: " ^ e)
           | Ok parsed ->
             if parsed = Obs.flatten ~registry:r () then Ok ()
             else Error "parsed metrics differ from the flatten view"
         in
         (* spans recorded around nested work must nest well-formedly
            and survive the trace-text round trip *)
         let was = Trace.enabled () in
         Trace.set_enabled true;
         Trace.clear ();
         Fun.protect
           ~finally:(fun () ->
             Trace.clear ();
             Trace.set_enabled was)
           (fun () ->
             let rec nest d =
               Trace.with_span
                 (Printf.sprintf "qa.depth.%d" d)
                 (fun () -> if d > 0 then nest (d - 1))
             in
             nest (1 + (i mod 4));
             let spans = Trace.spans () in
             let* () = Trace.check_well_formed spans in
             match Trace.parse (Trace.to_text ()) with
             | Error e -> Error ("trace export does not parse: " ^ e)
             | Ok parsed ->
               if parsed = spans then Ok ()
               else Error "parsed trace differs from retained spans")));

  { seed; sections = List.rev !sections }

let ok r = List.for_all (fun s -> s.failures = 0) r.sections

let render r =
  let rows =
    List.map
      (fun s ->
        [
          s.name;
          string_of_int s.cases;
          (if s.failures = 0 then "pass" else Printf.sprintf "%d FAIL" s.failures);
          Printf.sprintf "%.2f s" s.elapsed_s;
        ])
      r.sections
  in
  let table =
    Report.table
      ~title:(Printf.sprintf "stc selftest (seed %d)" r.seed)
      ~header:[ "section"; "cases"; "result"; "time" ]
      rows
  in
  let failures =
    List.filter_map
      (fun s -> if s.failures = 0 then None else Some (s.name ^ ": " ^ s.detail))
      r.sections
  in
  let verdict =
    if failures = [] then "selftest: all sections passed\n"
    else
      Printf.sprintf "selftest: FAILURES (reproduce with --seed %d)\n%s\n"
        r.seed
        (String.concat "\n" (List.map (fun f -> "  " ^ f) failures))
  in
  table ^ verdict
