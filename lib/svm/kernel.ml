module Vec = Stc_numerics.Vec

type t =
  | Linear
  | Polynomial of { gamma : float; coef0 : float; degree : int }
  | Rbf of { gamma : float }
  | Sigmoid of { gamma : float; coef0 : float }

let rbf gamma = Rbf { gamma }

let linear = Linear

let eval k x y =
  match k with
  | Linear -> Vec.dot x y
  | Polynomial { gamma; coef0; degree } ->
    ((gamma *. Vec.dot x y) +. coef0) ** float_of_int degree
  | Rbf { gamma } -> exp (-.gamma *. Vec.dist2 x y)
  | Sigmoid { gamma; coef0 } -> tanh ((gamma *. Vec.dot x y) +. coef0)

let eval_rows k rows i j =
  match k with
  | Linear -> Flat.dot rows i j
  | Polynomial { gamma; coef0; degree } ->
    ((gamma *. Flat.dot rows i j) +. coef0) ** float_of_int degree
  | Rbf { gamma } -> exp (-.gamma *. Flat.dist2 rows i j)
  | Sigmoid { gamma; coef0 } -> tanh ((gamma *. Flat.dot rows i j) +. coef0)

let eval_row_vec k rows i v =
  match k with
  | Linear -> Flat.dot_vec rows i v
  | Polynomial { gamma; coef0; degree } ->
    ((gamma *. Flat.dot_vec rows i v) +. coef0) ** float_of_int degree
  | Rbf { gamma } -> exp (-.gamma *. Flat.dist2_vec rows i v)
  | Sigmoid { gamma; coef0 } -> tanh ((gamma *. Flat.dot_vec rows i v) +. coef0)

let default_gamma ~dim =
  if dim <= 0 then invalid_arg "Kernel.default_gamma: dim must be positive";
  1.0 /. float_of_int dim

let median_gamma x =
  let n = Array.length x in
  if n < 2 then 1.0
  else begin
    let dim = Array.length x.(0) in
    (* deterministic sample of pairs: stride through (i, i + step) *)
    let budget = 2048 in
    let distances = ref [] in
    let count = ref 0 in
    let step = Stdlib.max 1 (n / 64) in
    (try
       for offset = 1 to n - 1 do
         if offset mod step = 0 || offset < 8 then
           for i = 0 to n - 1 - offset do
             if !count < budget then begin
               let d2 = Vec.dist2 x.(i) x.(i + offset) in
               if d2 > 0.0 then begin
                 distances := d2 :: !distances;
                 incr count
               end
             end
             else raise Exit
           done
       done
     with Exit -> ());
    match !distances with
    | [] -> default_gamma ~dim:(Stdlib.max 1 dim)
    | ds ->
      let arr = Array.of_list ds in
      Array.sort compare arr;
      let median = arr.(Array.length arr / 2) in
      if median <= 0.0 then default_gamma ~dim:(Stdlib.max 1 dim)
      else 1.0 /. median
  end

let pp fmt = function
  | Linear -> Format.fprintf fmt "linear"
  | Polynomial { gamma; coef0; degree } ->
    Format.fprintf fmt "poly(gamma=%g, coef0=%g, degree=%d)" gamma coef0 degree
  | Rbf { gamma } -> Format.fprintf fmt "rbf(gamma=%g)" gamma
  | Sigmoid { gamma; coef0 } ->
    Format.fprintf fmt "sigmoid(gamma=%g, coef0=%g)" gamma coef0
